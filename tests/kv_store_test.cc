// Replicated key-value namespace on a weighted-voting suite.

#include "src/kv/kv_store.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (int i = 0; i < 3; ++i) {
      cluster_->AddRepresentative("rep-" + std::to_string(i));
    }
    config_ = SuiteConfig::MakeUniform("kv", {"rep-0", "rep-1", "rep-2"}, 2, 2);
    ASSERT_TRUE(cluster_->CreateSuite(config_, "").ok());
    client_ = cluster_->AddClient("app", config_);
    kv_ = std::make_unique<ReplicatedKvStore>(client_);
  }

  std::optional<std::string> Get(const std::string& key) {
    Result<std::optional<std::string>> r = cluster_->RunTask(kv_->Get(key));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : std::nullopt;
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
  std::unique_ptr<ReplicatedKvStore> kv_;
};

TEST_F(KvStoreTest, GetMissingIsNullopt) { EXPECT_EQ(Get("ghost"), std::nullopt); }

TEST_F(KvStoreTest, PutThenGet) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("name", "gifford")).ok());
  EXPECT_EQ(Get("name"), "gifford");
}

TEST_F(KvStoreTest, PutOverwrites) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("k", "v1")).ok());
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("k", "v2")).ok());
  EXPECT_EQ(Get("k"), "v2");
}

TEST_F(KvStoreTest, DeleteRemoves) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("k", "v")).ok());
  ASSERT_TRUE(cluster_->RunTask(kv_->Delete("k")).ok());
  EXPECT_EQ(Get("k"), std::nullopt);
}

TEST_F(KvStoreTest, DeleteMissingSucceeds) {
  EXPECT_TRUE(cluster_->RunTask(kv_->Delete("ghost")).ok());
}

TEST_F(KvStoreTest, PutManyIsAtomic) {
  std::vector<std::pair<std::string, std::string>> batch = {
      {"a", "1"}, {"b", "2"}, {"c", "3"}};
  ASSERT_TRUE(cluster_->RunTask(kv_->PutMany(batch)).ok());
  EXPECT_EQ(Get("a"), "1");
  EXPECT_EQ(Get("b"), "2");
  EXPECT_EQ(Get("c"), "3");
  // One batch = one suite version bump.
  SuiteTransaction txn = client_->Begin();
  Result<VersionedValue> vv = cluster_->RunTask(txn.ReadVersioned());
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(vv.value().version, 2u);
  cluster_->RunTask(txn.Commit());
}

TEST_F(KvStoreTest, ListKeysSorted) {
  for (const char* k : {"zebra", "alpha", "mid"}) {
    ASSERT_TRUE(cluster_->RunTask(kv_->Put(k, "x")).ok());
  }
  Result<std::vector<std::string>> keys = cluster_->RunTask(kv_->ListKeys());
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value(), (std::vector<std::string>{"alpha", "mid", "zebra"}));
}

TEST_F(KvStoreTest, CheckAndSetMatches) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("k", "old")).ok());
  EXPECT_TRUE(cluster_->RunTask(kv_->CheckAndSet("k", std::string("old"), "new")).ok());
  EXPECT_EQ(Get("k"), "new");
}

TEST_F(KvStoreTest, CheckAndSetMismatchFails) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("k", "actual")).ok());
  Status st = cluster_->RunTask(kv_->CheckAndSet("k", std::string("guess"), "new"));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Get("k"), "actual");
  EXPECT_EQ(kv_->stats().cas_failures, 1u);
}

TEST_F(KvStoreTest, CheckAndSetExpectAbsent) {
  EXPECT_TRUE(cluster_->RunTask(kv_->CheckAndSet("fresh", std::nullopt, "created")).ok());
  EXPECT_EQ(Get("fresh"), "created");
  EXPECT_EQ(cluster_->RunTask(kv_->CheckAndSet("fresh", std::nullopt, "again")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(KvStoreTest, ConcurrentWritersAllLand) {
  ReplicatedKvStore kv2(cluster_->AddClient("app-2", config_));
  auto writer = [](ReplicatedKvStore* kv, std::string prefix, int n,
                   std::shared_ptr<int> oks) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      if ((co_await kv->Put(prefix + std::to_string(i), "v")).ok()) {
        ++*oks;
      }
    }
  };
  auto oks = std::make_shared<int>(0);
  std::function<Task<void>(ReplicatedKvStore*, std::string, int, std::shared_ptr<int>)>
      writer_fn = writer;
  Spawn(writer_fn(kv_.get(), "a-", 10, oks));
  Spawn(writer_fn(&kv2, "b-", 10, oks));
  cluster_->sim().Run();
  EXPECT_EQ(*oks, 20);
  Result<std::vector<std::string>> keys = cluster_->RunTask(kv_->ListKeys());
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value().size(), 20u);  // no lost updates
}

TEST_F(KvStoreTest, ConcurrentCasExactlyOneWins) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("leader", "none")).ok());
  ReplicatedKvStore kv2(cluster_->AddClient("app-2", config_));
  auto contender = [](ReplicatedKvStore* kv, std::string who,
                      std::shared_ptr<int> wins) -> Task<void> {
    Status st = co_await kv->CheckAndSet("leader", std::string("none"), who);
    if (st.ok()) {
      ++*wins;
    }
  };
  auto wins = std::make_shared<int>(0);
  std::function<Task<void>(ReplicatedKvStore*, std::string, std::shared_ptr<int>)>
      contender_fn = contender;
  Spawn(contender_fn(kv_.get(), "alice", wins));
  Spawn(contender_fn(&kv2, "bob", wins));
  cluster_->sim().Run();
  EXPECT_EQ(*wins, 1);
  std::optional<std::string> leader = Get("leader");
  EXPECT_TRUE(leader == "alice" || leader == "bob");
}

TEST_F(KvStoreTest, SurvivesMinorityCrash) {
  ASSERT_TRUE(cluster_->RunTask(kv_->Put("k", "v")).ok());
  cluster_->net().FindHost("rep-2")->Crash();
  EXPECT_TRUE(cluster_->RunTask(kv_->Put("k2", "v2")).ok());
  EXPECT_EQ(Get("k"), "v");
  EXPECT_EQ(Get("k2"), "v2");
}

TEST_F(KvStoreTest, MapSerializationRoundTrip) {
  std::map<std::string, std::string> map = {{"a", "1"}, {"empty", ""}, {"big", std::string(4096, 'x')}};
  Result<std::map<std::string, std::string>> parsed =
      ReplicatedKvStore::ParseMap(ReplicatedKvStore::SerializeMap(map));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), map);
}

TEST_F(KvStoreTest, EmptyBytesParseAsEmptyMap) {
  Result<std::map<std::string, std::string>> parsed = ReplicatedKvStore::ParseMap("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST_F(KvStoreTest, GarbageBytesRejected) {
  EXPECT_FALSE(ReplicatedKvStore::ParseMap("garbage!").ok());
}

}  // namespace
}  // namespace wvote
