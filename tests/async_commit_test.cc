// Asynchronous phase-2 commit: the client's success ack precedes the
// commit fan-out, so a committed write costs two round trips instead of
// three — and every crash between the durable decision and phase-2
// delivery must still converge all participants to the committed value.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/txn/coordinator.h"
#include "src/txn/participant.h"
#include "src/trace/trace.h"
#include "src/workload/fault_injector.h"

namespace wvote {
namespace {

struct Node {
  Host* host = nullptr;
  std::unique_ptr<RpcEndpoint> rpc;
  std::unique_ptr<StableStore> store;
  std::unique_ptr<Participant> participant;
};

class AsyncCommitTest : public ::testing::Test {
 protected:
  AsyncCommitTest() : sim_(1), net_(&sim_), trace_log_(&sim_, 256) {
    net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(5)));
    // Background phase-2 work records kPhase2Completed breadcrumbs here;
    // the causality tests below assert on them by owning txn id.
    net_.SetTraceLog(&trace_log_);
    for (int i = 0; i < 3; ++i) {
      auto node = std::make_unique<Node>();
      node->host = net_.AddHost("p" + std::to_string(i));
      node->rpc = std::make_unique<RpcEndpoint>(&net_, node->host);
      node->store = std::make_unique<StableStore>(&sim_, node->host,
                                                  LatencyModel::Fixed(Duration::Millis(2)),
                                                  LatencyModel::Fixed(Duration::Millis(1)));
      ParticipantOptions popts;
      popts.indoubt_resolution_timeout = Duration::Seconds(15);
      node->participant =
          std::make_unique<Participant>(node->rpc.get(), node->store.get(), popts);
      nodes_.push_back(std::move(node));
    }
    client_host_ = net_.AddHost("client");
    client_rpc_ = std::make_unique<RpcEndpoint>(&net_, client_host_);
    client_store_ = std::make_unique<StableStore>(&sim_, client_host_,
                                                  LatencyModel::Fixed(Duration::Millis(2)),
                                                  LatencyModel::Fixed(Duration::Millis(1)));
    coordinator_ = std::make_unique<Coordinator>(client_rpc_.get(), client_store_.get());
  }

  // Timeline with these latencies (5ms hop, 2ms disk write): prepare lands
  // at ~7ms, its ack at ~12ms, the decision is durable at ~14ms. The
  // asynchronous commit acks the client there; the CommitReq reaches a
  // participant at ~19ms and the apply finishes at ~23ms.

  Status LockAt(int i, TxnId txn, const std::string& key) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](RpcEndpoint* rpc, HostId to, TxnId txn, std::string key,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      Result<Ack> r = co_await rpc->Call<LockReq, Ack>(
          to, LockReq(txn, std::move(key), LockMode::kExclusive), Duration::Seconds(30));
      *out = r.ok() ? Status::Ok() : r.status();
    };
    Spawn(runner(client_rpc_.get(), nodes_[static_cast<size_t>(i)]->host->id(), txn, key,
                 out));
    sim_.RunFor(Duration::Seconds(1));
    return out->has_value() ? **out : InternalError("lock still pending");
  }

  // Spawns CommitTransaction without running the simulator, so tests can
  // observe the exact moment the client ack arrives.
  std::shared_ptr<std::optional<Status>> SpawnCommit(
      TxnId txn, std::map<HostId, std::vector<WriteIntent>> writes) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](Coordinator* coord, TxnId txn,
                     std::map<HostId, std::vector<WriteIntent>> writes,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      *out = co_await coord->CommitTransaction(txn, std::move(writes), {});
    };
    Spawn(runner(coordinator_.get(), txn, std::move(writes), out));
    return out;
  }

  HostId Hid(int i) { return nodes_[static_cast<size_t>(i)]->host->id(); }
  Participant& P(int i) { return *nodes_[static_cast<size_t>(i)]->participant; }

  std::string CommittedAt(int i, const std::string& key) {
    Result<std::string> r = P(i).PeekCommitted(key);
    return r.ok() ? r.value() : "<" + std::string(StatusCodeName(r.status().code())) + ">";
  }

  Simulator sim_;
  Network net_;
  TraceLog trace_log_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Host* client_host_ = nullptr;
  std::unique_ptr<RpcEndpoint> client_rpc_;
  std::unique_ptr<StableStore> client_store_;
  std::unique_ptr<Coordinator> coordinator_;
};

TEST_F(AsyncCommitTest, ClientAckPrecedesPhase2Delivery) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  auto out = SpawnCommit(txn, std::move(writes));

  // 15ms covers prepare + decision log (ack at ~14ms) but not the commit
  // message (arrives ~19ms): the client holds success while the participant
  // has not yet installed.
  sim_.RunFor(Duration::Millis(15));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->ok()) << (*out)->ToString();
  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>");
  EXPECT_EQ(coordinator_->stats().async_phase2_spawned, 1u);
  EXPECT_EQ(coordinator_->stats().async_phase2_completed, 0u);
  // Causality, not just counters: at ack time the background fan-out has
  // recorded no completion event yet.
  EXPECT_EQ(trace_log_.CountOf(TraceKind::kPhase2Completed), 0u);

  // Draining the background fan-out installs the value everywhere.
  sim_.RunFor(Duration::Seconds(2));
  EXPECT_EQ(CommittedAt(0, "x"), "v");
  EXPECT_EQ(coordinator_->stats().async_phase2_completed, 1u);
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
  // ... and afterwards exactly one completion event names the owning
  // transaction, attributed to the coordinator host.
  std::vector<TraceEvent> done = trace_log_.OfKind(TraceKind::kPhase2Completed);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NE(done[0].detail.find(txn.ToString()), std::string::npos) << done[0].detail;
  EXPECT_NE(done[0].detail.find("fanout"), std::string::npos);
  EXPECT_EQ(done[0].host, client_host_->id());
}

TEST_F(AsyncCommitTest, SyncModePaysTheThirdRoundTrip) {
  coordinator_->set_sync_phase2(true);
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  auto out = SpawnCommit(txn, std::move(writes));

  // At 15ms the decision is durable but the synchronous commit is still
  // waiting for participant acknowledgements.
  sim_.RunFor(Duration::Millis(15));
  EXPECT_FALSE(out->has_value());

  sim_.RunFor(Duration::Seconds(2));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->ok());
  // By the time the client hears success the value is already installed.
  EXPECT_EQ(CommittedAt(0, "x"), "v");
  EXPECT_EQ(coordinator_->stats().async_phase2_spawned, 0u);
}

TEST_F(AsyncCommitTest, CoordinatorCrashAfterAckConvergesViaWatchdog) {
  // The correctness bar: the client holds a success ack but phase 2 never
  // reaches the participant. Instead of guessing the window with wall-clock
  // offsets, arm a phase-targeted one-shot crash on the kDecisionLogged
  // breadcrumb: the coordinator host dies at the exact instant the decision
  // is durable and before any CommitReq is sent, so no retrier survives.
  // The participant never restarts, so the only convergence path is its
  // in-doubt watchdog inquiring at the restarted coordinator host, whose
  // durable decision log answers COMMIT.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  FaultInjectorStats fault_stats;
  ArmPhaseCrash(&sim_, &trace_log_, client_host_, TraceKind::kDecisionLogged,
                /*downtime=*/Duration::Millis(100), &fault_stats);

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "survives")};
  auto out = SpawnCommit(txn, std::move(writes));
  sim_.RunFor(Duration::Millis(30));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->ok()) << "decision was durable before the crash: the ack stands";
  EXPECT_EQ(fault_stats.phase_crashes, 1u);
  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>") << "no CommitReq ever left the coordinator";

  // The host restarted after its 100ms downtime; the participant never
  // restarts. The watchdog armed at prepare time fires after 15s and
  // resolves through the durable decision log.
  sim_.RunFor(Duration::Seconds(30));

  EXPECT_EQ(CommittedAt(0, "x"), "survives");
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
  EXPECT_GE(P(0).stats().indoubt_timer_fired, 1u);
}

TEST_F(AsyncCommitTest, ParticipantDownDuringPhase2ConvergesOnRestart) {
  // One writer is down when the commit fan-out reaches it; the coordinator's
  // retrier (and the participant's own recovery inquiry) deliver the
  // decision once the host returns.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  ASSERT_TRUE(LockAt(1, txn, "x").ok());

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  writes[Hid(1)] = {WriteIntent("x", "v")};
  auto out = SpawnCommit(txn, std::move(writes));
  sim_.Schedule(Duration::Millis(15), [this] { nodes_[1]->host->Crash(); });
  sim_.RunFor(Duration::Seconds(2));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->ok()) << "prepared everywhere: the decision is commit";
  EXPECT_EQ(CommittedAt(0, "x"), "v");

  nodes_[1]->host->Restart();
  sim_.RunFor(Duration::Seconds(60));
  EXPECT_EQ(CommittedAt(1, "x"), "v");
  EXPECT_EQ(P(1).locks().num_locked_keys(), 0u);

  // The 2s outage is shorter than the fan-out's bounded retries, so the
  // fan-out itself converged; its completion breadcrumb names the txn.
  bool fanout_done = false;
  for (const TraceEvent& ev : trace_log_.OfKind(TraceKind::kPhase2Completed)) {
    fanout_done |= ev.detail.find(txn.ToString()) != std::string::npos &&
                   ev.detail.find("fanout") != std::string::npos;
  }
  EXPECT_TRUE(fanout_done);
}

TEST_F(AsyncCommitTest, RetrierRecordsCompletionForTheOwningTxn) {
  // Keep the participant down past the fan-out's bounded retries (3 x 5s
  // rpc timeout), so the coordinator hands it to a background retrier; the
  // retrier's eventual delivery must leave a breadcrumb naming the owning
  // transaction and the participant it converged.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  auto out = SpawnCommit(txn, std::move(writes));
  sim_.Schedule(Duration::Millis(15), [this] { nodes_[0]->host->Crash(); });
  sim_.Schedule(Duration::Seconds(20), [this] { nodes_[0]->host->Restart(); });
  sim_.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->ok()) << "decision was durable before the crash";
  EXPECT_EQ(CommittedAt(0, "x"), "v");

  bool retrier_done = false;
  for (const TraceEvent& ev : trace_log_.OfKind(TraceKind::kPhase2Completed)) {
    retrier_done |= ev.detail.find(txn.ToString()) != std::string::npos &&
                    ev.detail.find("retrier participant=" +
                                   std::to_string(Hid(0))) != std::string::npos;
  }
  EXPECT_TRUE(retrier_done);
}

TEST_F(AsyncCommitTest, AckedWritesAreNeverLostOrReorderedUnderFaults) {
  // Five acked commits to the same key, with the participant crashed and
  // restarted mid-sequence (including once between an ack and its apply).
  // After every fault drains, the surviving value is the last ack — no
  // acked write is lost, none applies out of order.
  std::string last_acked;
  for (int i = 1; i <= 5; ++i) {
    TxnId txn = coordinator_->Begin();
    ASSERT_TRUE(LockAt(0, txn, "x").ok()) << "write " << i;
    const std::string value = "v" + std::to_string(i);
    std::map<HostId, std::vector<WriteIntent>> writes;
    writes[Hid(0)] = {WriteIntent("x", value)};
    auto out = SpawnCommit(txn, std::move(writes));
    if (i == 3) {
      // Crash after the ack (14ms) but before the apply (23ms), then
      // restart; recovery resolves the in-doubt record to COMMIT.
      sim_.Schedule(Duration::Millis(16), [this] { nodes_[0]->host->Crash(); });
      sim_.Schedule(Duration::Millis(200), [this] { nodes_[0]->host->Restart(); });
    }
    sim_.RunFor(Duration::Seconds(30));
    ASSERT_TRUE(out->has_value()) << "write " << i;
    ASSERT_TRUE((*out)->ok()) << "write " << i << ": " << (*out)->ToString();
    last_acked = value;
    EXPECT_EQ(CommittedAt(0, "x"), last_acked) << "after write " << i;
  }
  EXPECT_EQ(CommittedAt(0, "x"), "v5");
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
}

TEST_F(AsyncCommitTest, WatchdogLeavesDecidedTransactionsAlone) {
  // Healthy path: phase 2 lands long before the watchdog's timeout, so the
  // timer observes a decided transaction and stands down.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  auto out = SpawnCommit(txn, std::move(writes));
  sim_.RunFor(Duration::Seconds(60));
  ASSERT_TRUE(out->has_value());
  EXPECT_TRUE((*out)->ok());
  EXPECT_EQ(CommittedAt(0, "x"), "v");
  EXPECT_EQ(P(0).stats().indoubt_timer_fired, 0u);
}

}  // namespace
}  // namespace wvote
