#include "src/sim/latency.h"

#include <gtest/gtest.h>

namespace wvote {
namespace {

TEST(LatencyModelTest, FixedAlwaysReturnsValue) {
  Rng rng(1);
  LatencyModel m = LatencyModel::Fixed(Duration::Millis(42));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.Sample(rng), Duration::Millis(42));
  }
  EXPECT_EQ(m.Mean(), Duration::Millis(42));
}

TEST(LatencyModelTest, DefaultIsZero) {
  Rng rng(1);
  LatencyModel m;
  EXPECT_EQ(m.Sample(rng), Duration::Zero());
  EXPECT_EQ(m.Mean(), Duration::Zero());
}

TEST(LatencyModelTest, UniformStaysInBounds) {
  Rng rng(2);
  LatencyModel m = LatencyModel::Uniform(Duration::Millis(10), Duration::Millis(20));
  int64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const Duration d = m.Sample(rng);
    EXPECT_GE(d, Duration::Millis(10));
    EXPECT_LE(d, Duration::Millis(20));
    sum += d.ToMicros();
  }
  EXPECT_NEAR(static_cast<double>(sum) / 10000.0, 15000.0, 300.0);
  EXPECT_EQ(m.Mean(), Duration::Millis(15));
}

TEST(LatencyModelTest, ShiftedExponentialRespectsFloor) {
  Rng rng(3);
  LatencyModel m =
      LatencyModel::ShiftedExponential(Duration::Millis(5), Duration::Millis(25));
  int64_t sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const Duration d = m.Sample(rng);
    EXPECT_GE(d, Duration::Millis(5));
    sum += d.ToMicros();
  }
  EXPECT_NEAR(static_cast<double>(sum) / 20000.0, 25000.0, 1000.0);
  EXPECT_EQ(m.Mean(), Duration::Millis(25));
}

TEST(LatencyModelTest, ShiftedExponentialDegenerate) {
  Rng rng(4);
  LatencyModel m =
      LatencyModel::ShiftedExponential(Duration::Millis(10), Duration::Millis(10));
  EXPECT_EQ(m.Sample(rng), Duration::Millis(10));
}

TEST(LatencyModelTest, ToStringNamesKind) {
  EXPECT_EQ(LatencyModel::Fixed(Duration::Millis(1)).ToString(), "fixed(1ms)");
  EXPECT_NE(LatencyModel::Uniform(Duration::Zero(), Duration::Millis(1))
                .ToString()
                .find("uniform"),
            std::string::npos);
}

}  // namespace
}  // namespace wvote
