#include "src/core/weak_rep.h"

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace wvote {
namespace {

class WeakRepTest : public ::testing::Test {
 protected:
  WeakRepTest() : sim_(1), net_(&sim_), host_(net_.AddHost("h")), cache_(host_) {}

  Simulator sim_;
  Network net_;
  Host* host_;
  WeakRepresentative cache_;
};

TEST_F(WeakRepTest, MissOnEmpty) {
  EXPECT_EQ(cache_.Lookup("s", 1), nullptr);
  EXPECT_EQ(cache_.stats().misses, 1u);
}

TEST_F(WeakRepTest, HitOnlyAtExactCurrentVersion) {
  cache_.Update("s", 3, "v3");
  EXPECT_EQ(cache_.Lookup("s", 3) != nullptr, true);
  EXPECT_EQ(*cache_.Lookup("s", 3), "v3");
  EXPECT_EQ(cache_.Lookup("s", 4), nullptr);  // stale
  EXPECT_EQ(cache_.Lookup("s", 2), nullptr);  // cache is ahead?! still no
}

TEST_F(WeakRepTest, UpdateKeepsNewest) {
  cache_.Update("s", 3, "v3");
  cache_.Update("s", 2, "v2-late");  // older: ignored
  EXPECT_NE(cache_.Lookup("s", 3), nullptr);
  cache_.Update("s", 5, "v5");
  EXPECT_NE(cache_.Lookup("s", 5), nullptr);
  EXPECT_EQ(cache_.stats().updates, 2u);
}

TEST_F(WeakRepTest, EqualVersionUpdateRefreshes) {
  cache_.Update("s", 3, "a");
  cache_.Update("s", 3, "b");
  EXPECT_EQ(*cache_.Lookup("s", 3), "b");
}

TEST_F(WeakRepTest, SuitesAreIndependent) {
  cache_.Update("s1", 1, "one");
  cache_.Update("s2", 9, "nine");
  EXPECT_EQ(*cache_.Lookup("s1", 1), "one");
  EXPECT_EQ(*cache_.Lookup("s2", 9), "nine");
  EXPECT_EQ(cache_.Lookup("s1", 9), nullptr);
}

TEST_F(WeakRepTest, InvalidateDropsEntry) {
  cache_.Update("s", 3, "v3");
  cache_.Invalidate("s");
  EXPECT_EQ(cache_.Lookup("s", 3), nullptr);
}

TEST_F(WeakRepTest, HostCrashClearsCache) {
  cache_.Update("s", 3, "v3");
  host_->Crash();
  host_->Restart();
  EXPECT_EQ(cache_.Lookup("s", 3), nullptr);  // caches are volatile
}

}  // namespace
}  // namespace wvote
