// Two-phase commit across participants: happy path, vote-no, crash
// recovery, decision inquiry, presumed abort.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/txn/coordinator.h"
#include "src/txn/participant.h"

namespace wvote {
namespace {

struct Node {
  Host* host = nullptr;
  std::unique_ptr<RpcEndpoint> rpc;
  std::unique_ptr<StableStore> store;
  std::unique_ptr<Participant> participant;
};

class TwoPhaseCommitTest : public ::testing::Test {
 protected:
  TwoPhaseCommitTest() : sim_(1), net_(&sim_) {
    net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(5)));
    for (int i = 0; i < 3; ++i) {
      auto node = std::make_unique<Node>();
      node->host = net_.AddHost("p" + std::to_string(i));
      node->rpc = std::make_unique<RpcEndpoint>(&net_, node->host);
      node->store = std::make_unique<StableStore>(&sim_, node->host,
                                                  LatencyModel::Fixed(Duration::Millis(2)),
                                                  LatencyModel::Fixed(Duration::Millis(1)));
      node->participant = std::make_unique<Participant>(node->rpc.get(), node->store.get());
      nodes_.push_back(std::move(node));
    }
    client_host_ = net_.AddHost("client");
    client_rpc_ = std::make_unique<RpcEndpoint>(&net_, client_host_);
    client_store_ = std::make_unique<StableStore>(&sim_, client_host_,
                                                  LatencyModel::Fixed(Duration::Millis(2)),
                                                  LatencyModel::Fixed(Duration::Millis(1)));
    // These tests exercise the literal synchronous protocol (commit
    // returns only after phase 2); async-phase-2 behavior is covered in
    // async_commit_test.cc.
    CoordinatorOptions copts;
    copts.sync_phase2 = true;
    coordinator_ =
        std::make_unique<Coordinator>(client_rpc_.get(), client_store_.get(), copts);
  }

  // Locks `key` exclusively at participant `i` on behalf of txn.
  Status LockAt(int i, TxnId txn, const std::string& key) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](RpcEndpoint* rpc, HostId to, TxnId txn, std::string key,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      Result<Ack> r = co_await rpc->Call<LockReq, Ack>(
          to, LockReq(txn, std::move(key), LockMode::kExclusive), Duration::Seconds(30));
      *out = r.ok() ? Status::Ok() : r.status();
    };
    Spawn(runner(client_rpc_.get(), nodes_[static_cast<size_t>(i)]->host->id(), txn, key,
                 out));
    sim_.RunFor(Duration::Seconds(1));
    return out->has_value() ? **out : InternalError("lock still pending");
  }

  Status Commit2PC(TxnId txn, std::map<HostId, std::vector<WriteIntent>> writes,
                   std::vector<HostId> read_only = {}) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](Coordinator* coord, TxnId txn,
                     std::map<HostId, std::vector<WriteIntent>> writes,
                     std::vector<HostId> ro,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      *out = co_await coord->CommitTransaction(txn, std::move(writes), std::move(ro));
    };
    Spawn(runner(coordinator_.get(), txn, std::move(writes), std::move(read_only), out));
    sim_.RunFor(Duration::Seconds(60));
    return out->has_value() ? **out : InternalError("commit still pending");
  }

  HostId Hid(int i) { return nodes_[static_cast<size_t>(i)]->host->id(); }
  Participant& P(int i) { return *nodes_[static_cast<size_t>(i)]->participant; }

  std::string CommittedAt(int i, const std::string& key) {
    Result<std::string> r = P(i).PeekCommitted(key);
    return r.ok() ? r.value() : "<" + std::string(StatusCodeName(r.status().code())) + ">";
  }

  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Host* client_host_ = nullptr;
  std::unique_ptr<RpcEndpoint> client_rpc_;
  std::unique_ptr<StableStore> client_store_;
  std::unique_ptr<Coordinator> coordinator_;
};

TEST_F(TwoPhaseCommitTest, CommitInstallsAtEveryWriter) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  ASSERT_TRUE(LockAt(1, txn, "x").ok());

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "committed-value")};
  writes[Hid(1)] = {WriteIntent("x", "committed-value")};
  ASSERT_TRUE(Commit2PC(txn, std::move(writes)).ok());

  EXPECT_EQ(CommittedAt(0, "x"), "committed-value");
  EXPECT_EQ(CommittedAt(1, "x"), "committed-value");
  EXPECT_EQ(CommittedAt(2, "x"), "<NOT_FOUND>");  // not a writer
  EXPECT_EQ(coordinator_->stats().committed, 1u);
}

TEST_F(TwoPhaseCommitTest, CommitReleasesLocks) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  ASSERT_TRUE(Commit2PC(txn, std::move(writes)).ok());
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
}

TEST_F(TwoPhaseCommitTest, PrepareWithoutLockVotesNo) {
  TxnId txn = coordinator_->Begin();
  // No lock acquired at participant 0: its Prepare must refuse.
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  Status st = Commit2PC(txn, std::move(writes));
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>");
  EXPECT_EQ(P(0).stats().prepares_refused, 1u);
}

TEST_F(TwoPhaseCommitTest, OneNoVoteAbortsEverywhere) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());  // participant 1 not locked
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  writes[Hid(1)] = {WriteIntent("x", "v")};
  Status st = Commit2PC(txn, std::move(writes));
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  // Neither participant installs, including the one that voted yes.
  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>");
  EXPECT_EQ(CommittedAt(1, "x"), "<NOT_FOUND>");
  // And its prepared record is gone (aborted).
  EXPECT_TRUE(P(0).locks().num_locked_keys() == 0u);
}

TEST_F(TwoPhaseCommitTest, ReadOnlyParticipantsJustReleaseLocks) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(2, txn, "x").ok());
  Status st = Commit2PC(txn, {}, {Hid(2)});
  EXPECT_TRUE(st.ok());
  sim_.RunFor(Duration::Seconds(1));  // async release lands
  EXPECT_EQ(P(2).locks().num_locked_keys(), 0u);
}

TEST_F(TwoPhaseCommitTest, DownParticipantAbortsCommit) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  nodes_[0]->host->Crash();
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  Status st = Commit2PC(txn, std::move(writes));
  EXPECT_EQ(st.code(), StatusCode::kAborted);
}

TEST_F(TwoPhaseCommitTest, ParticipantCrashAfterPrepareRecoversToCommit) {
  // Participant 0 prepares, then crashes before receiving the commit. On
  // restart, recovery finds the in-doubt record and asks the coordinator,
  // whose durable decision log says COMMIT.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  // Crash participant 0 just after its prepare completes (prepare takes one
  // 5ms hop + 2ms log write; 9ms is after the vote is durable, before the
  // 5ms-away commit message arrives).
  sim_.Schedule(Duration::Millis(9), [this] { nodes_[0]->host->Crash(); });

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "recovered")};
  auto out = std::make_shared<std::optional<Status>>();
  auto runner = [](Coordinator* coord, TxnId txn,
                   std::map<HostId, std::vector<WriteIntent>> writes,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await coord->CommitTransaction(txn, std::move(writes), {});
  };
  Spawn(runner(coordinator_.get(), txn, std::move(writes), out));
  sim_.RunFor(Duration::Seconds(2));

  // Restart: recovery should resolve the in-doubt record to COMMIT.
  nodes_[0]->host->Restart();
  sim_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(CommittedAt(0, "x"), "recovered");
  EXPECT_GE(P(0).stats().recovered_in_doubt, 1u);
}

TEST_F(TwoPhaseCommitTest, PresumedAbortWhenCoordinatorNeverDecided) {
  // Participant 0 holds a prepared record, but the coordinator's stable
  // store has no decision (it "crashed" before logging). Recovery must
  // abort the branch.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  auto preparer = [](Participant* p, TxnId txn) -> Task<void> {
    std::vector<WriteIntent> writes;
    writes.push_back(WriteIntent("x", "should-not-survive"));
    EXPECT_TRUE((co_await p->Prepare(txn, std::move(writes))).ok());
  };
  Spawn(preparer(&P(0), txn));
  sim_.RunFor(Duration::Seconds(1));

  nodes_[0]->host->Crash();
  nodes_[0]->host->Restart();
  sim_.RunFor(Duration::Seconds(30));

  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>");
  EXPECT_EQ(P(0).stats().aborts, 1u);
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
}

TEST_F(TwoPhaseCommitTest, CommitIsIdempotent) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "once")};
  ASSERT_TRUE(Commit2PC(txn, std::move(writes)).ok());

  // A duplicate CommitReq (late retransmission) must be harmless.
  auto dup = [](RpcEndpoint* rpc, HostId to, TxnId txn) -> Task<void> {
    Result<Ack> r = co_await rpc->Call<CommitReq, Ack>(to, CommitReq(txn), Duration::Seconds(5));
    EXPECT_TRUE(r.ok());
  };
  Spawn(dup(client_rpc_.get(), Hid(0), txn));
  sim_.RunFor(Duration::Seconds(1));
  EXPECT_EQ(CommittedAt(0, "x"), "once");
}

TEST_F(TwoPhaseCommitTest, CrashDuringApplyReappliesOnRecovery) {
  // Crash the participant while it is applying the committed intents; the
  // committed record survives and recovery finishes the apply.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "big").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("big", std::string(1000, 'z'))};

  // Timeline: lock done by ~10ms (RunFor in LockAt). Prepare: 5ms hop + 2ms
  // log; commit req: 5ms back + 5ms there + 2ms commit-record + apply 2ms...
  // Crash in the middle of the apply window.
  auto out = std::make_shared<std::optional<Status>>();
  auto runner = [](Coordinator* coord, TxnId txn,
                   std::map<HostId, std::vector<WriteIntent>> writes,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await coord->CommitTransaction(txn, std::move(writes), {});
  };
  Spawn(runner(coordinator_.get(), txn, std::move(writes), out));
  sim_.Schedule(Duration::Millis(20), [this] { nodes_[0]->host->Crash(); });
  sim_.RunFor(Duration::Seconds(2));

  nodes_[0]->host->Restart();
  sim_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(CommittedAt(0, "big"), std::string(1000, 'z'));
}

TEST_F(TwoPhaseCommitTest, DecisionInquiryAnswersFromDurableLog) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "v")};
  ASSERT_TRUE(Commit2PC(txn, std::move(writes)).ok());

  auto ask = [](RpcEndpoint* rpc, HostId coord, TxnId txn,
                std::shared_ptr<std::optional<TxnDecision>> out) -> Task<void> {
    Result<DecisionResp> r = co_await rpc->Call<DecisionInquiryReq, DecisionResp>(
        coord, DecisionInquiryReq(txn), Duration::Seconds(5));
    EXPECT_TRUE(r.ok());  // ASSERT would `return` — illegal in a coroutine
    if (r.ok()) {
      *out = r.value().decision;
    }
  };
  auto committed = std::make_shared<std::optional<TxnDecision>>();
  Spawn(ask(nodes_[0]->rpc.get(), client_host_->id(), txn, committed));

  TxnId unknown = coordinator_->Begin();
  auto aborted = std::make_shared<std::optional<TxnDecision>>();
  Spawn(ask(nodes_[0]->rpc.get(), client_host_->id(), unknown, aborted));

  sim_.RunFor(Duration::Seconds(2));
  EXPECT_EQ(*committed, TxnDecision::kCommitted);
  EXPECT_EQ(*aborted, TxnDecision::kAborted);  // presumed abort
}

TEST_F(TwoPhaseCommitTest, CoordinatorCrashBeforeDecisionAbortsViaPresumption) {
  // The participant prepares; the coordinator crashes before logging its
  // decision. After both sides recover, the inquiry finds no decision
  // record -> presumed abort, locks released, no data installed.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "never")};
  auto out = std::make_shared<std::optional<Status>>();
  auto runner = [](Coordinator* coord, TxnId txn,
                   std::map<HostId, std::vector<WriteIntent>> writes,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await coord->CommitTransaction(txn, std::move(writes), {});
  };
  Spawn(runner(coordinator_.get(), txn, std::move(writes), out));
  // Prepare lands at ~12ms (5ms hop + 2ms log + 5ms back). Crash the
  // coordinator before the decision write completes (decision logging
  // starts at ~12ms, takes 2ms).
  sim_.Schedule(Duration::Millis(13), [this] { client_host_->Crash(); });
  // And crash the participant so it must recover through the inquiry path.
  sim_.Schedule(Duration::Millis(30), [this] { nodes_[0]->host->Crash(); });
  sim_.RunFor(Duration::Seconds(2));

  client_host_->Restart();
  nodes_[0]->host->Restart();
  sim_.RunFor(Duration::Seconds(30));

  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>");
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
}

TEST_F(TwoPhaseCommitTest, CoordinatorCrashAfterDecisionCommitsViaInquiry) {
  // The decision record is durable on the coordinator's host; even though
  // the coordinator process never finishes phase 2 (its host crashes), the
  // prepared participant learns COMMIT from the restarted host's log.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());

  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("x", "decided")};
  auto out = std::make_shared<std::optional<Status>>();
  auto runner = [](Coordinator* coord, TxnId txn,
                   std::map<HostId, std::vector<WriteIntent>> writes,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await coord->CommitTransaction(txn, std::move(writes), {});
  };
  Spawn(runner(coordinator_.get(), txn, std::move(writes), out));
  // Decision write finishes ~14ms; the commit message to the participant is
  // in flight when both hosts crash at 15ms (the message is lost).
  sim_.Schedule(Duration::Millis(15), [this] {
    client_host_->Crash();
    nodes_[0]->host->Crash();
  });
  sim_.RunFor(Duration::Seconds(2));

  client_host_->Restart();
  nodes_[0]->host->Restart();
  sim_.RunFor(Duration::Seconds(30));

  EXPECT_EQ(CommittedAt(0, "x"), "decided");
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
}

TEST_F(TwoPhaseCommitTest, InDoubtParticipantBlocksConflictingAccessUntilResolved) {
  // While a prepared transaction is unresolved (coordinator down), its keys
  // stay exclusively locked at the recovered participant.
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "x").ok());
  auto preparer = [](Participant* p, TxnId txn) -> Task<void> {
    std::vector<WriteIntent> writes;
    writes.push_back(WriteIntent("x", "in doubt"));
    EXPECT_TRUE((co_await p->Prepare(txn, std::move(writes))).ok());
  };
  Spawn(preparer(&P(0), txn));
  sim_.RunFor(Duration::Seconds(1));

  client_host_->Crash();  // coordinator unreachable: txn stays in doubt
  nodes_[0]->host->Crash();
  nodes_[0]->host->Restart();
  sim_.RunFor(Duration::Seconds(3));

  // The recovered participant holds the in-doubt lock; a newer conflicting
  // transaction cannot take it.
  EXPECT_TRUE(P(0).locks().Holds(txn, Participant::DataKey("x"), LockMode::kExclusive));

  // The coordinator's host returns; presumed abort resolves the branch.
  client_host_->Restart();
  sim_.RunFor(Duration::Seconds(30));
  EXPECT_EQ(P(0).locks().num_locked_keys(), 0u);
  EXPECT_EQ(CommittedAt(0, "x"), "<NOT_FOUND>");
}

TEST_F(TwoPhaseCommitTest, MultiKeyAtomicity) {
  TxnId txn = coordinator_->Begin();
  ASSERT_TRUE(LockAt(0, txn, "a").ok());
  ASSERT_TRUE(LockAt(0, txn, "b").ok());
  std::map<HostId, std::vector<WriteIntent>> writes;
  writes[Hid(0)] = {WriteIntent("a", "1"), WriteIntent("b", "2")};
  ASSERT_TRUE(Commit2PC(txn, std::move(writes)).ok());
  EXPECT_EQ(CommittedAt(0, "a"), "1");
  EXPECT_EQ(CommittedAt(0, "b"), "2");
}

}  // namespace
}  // namespace wvote
