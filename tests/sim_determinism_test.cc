// Determinism pins across simulator-core rebuilds.
//
// The simulator's scheduling contract — events fire in (timestamp, seq)
// order, same seed means same schedule — is load-bearing for the chaos
// harness's replayable artifacts and for every committed BENCH trajectory.
// These tests pin the contract to golden files generated *before* the timer
// wheel / pooled-event rebuild, so a rebuild that silently reorders
// same-timestamp events or perturbs an rng stream fails here instead of
// surfacing as an unreproducible chaos artifact months later.
//
// Regenerating the goldens (only when a pin is *intentionally* obsolete):
//   WVOTE_REGEN_PIN=1 ./sim_determinism_test
// writes the files the test compares against. Never regenerate to make a
// red build green: a diff here means the event schedule changed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/runner.h"
#include "src/core/cluster.h"

namespace wvote {
namespace {

// Golden files live next to the test sources so they are committed and
// reviewed like code. WVOTE_TEST_DATA_DIR is baked in by tests/CMakeLists.
std::string DataPath(const std::string& name) {
#ifdef WVOTE_TEST_DATA_DIR
  return std::string(WVOTE_TEST_DATA_DIR) + "/" + name;
#else
  return "tests/data/" + name;
#endif
}

bool RegenRequested() { return std::getenv("WVOTE_REGEN_PIN") != nullptr; }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (generate with WVOTE_REGEN_PIN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
  out << contents;
}

// Serializes a TraceLog snapshot byte-stably: one event per line, exactly
// the fields that define the protocol-level schedule.
std::string SerializeTrace(const TraceLog& log) {
  std::ostringstream out;
  for (const TraceEvent& ev : log.Snapshot()) {
    out << ev.at.ToMicros() << "|" << ev.host << "|" << TraceKindName(ev.kind) << "|"
        << ev.detail << "\n";
  }
  return out.str();
}

// One seeded cluster's worth of adversarial traffic: three weighted reps,
// two clients, lossy/duplicating/spiking links, and a crash-restart in the
// middle of a mixed read/write stream. Every drop, retry, prepare, commit,
// and recovery lands in the TraceLog in schedule order.
std::string RunTracedScenario(uint64_t seed) {
  ClusterOptions opts;
  opts.seed = seed;
  opts.default_link = LatencyModel::Uniform(Duration::Millis(2), Duration::Millis(9));
  Cluster cluster(opts);
  for (const char* name : {"pin-a", "pin-b", "pin-c"}) {
    cluster.AddRepresentative(name);
  }
  SuiteConfig config;
  config.suite_name = "pin";
  config.representatives = {
      RepresentativeInfo{"pin-a", 2},
      RepresentativeInfo{"pin-b", 1},
      RepresentativeInfo{"pin-c", 1},
  };
  config.read_quorum = 2;
  config.write_quorum = 3;
  EXPECT_TRUE(cluster.CreateSuite(config, "genesis").ok());
  SuiteClient* c1 = cluster.AddClient("pin-client-1", config);
  SuiteClient* c2 = cluster.AddClient("pin-client-2", config);

  LinkKnobs rough;
  rough.loss_probability = 0.08;
  rough.dup_probability = 0.08;
  rough.delay_spike_probability = 0.10;
  rough.delay_spike = Duration::Millis(25);
  cluster.net().SetAllLinkKnobs(rough);

  cluster.sim().Schedule(Duration::Millis(140),
                         [&cluster] { cluster.net().FindHost("pin-b")->Crash(); });
  cluster.sim().Schedule(Duration::Millis(520),
                         [&cluster] { cluster.net().FindHost("pin-b")->Restart(); });

  for (int i = 0; i < 24; ++i) {
    SuiteClient* client = (i % 2 == 0) ? c1 : c2;
    if (i % 3 == 2) {
      cluster.RunTaskFor(client->WriteOnce("pin-v" + std::to_string(i)),
                         Duration::Seconds(4));
    } else {
      cluster.RunTaskFor(client->ReadOnce(), Duration::Seconds(4));
    }
  }
  cluster.sim().RunFor(Duration::Seconds(5));  // drain retriers / phase 2
  return SerializeTrace(cluster.trace());
}

// The schedule of a seeded multi-cluster run — two independent clusters,
// different seeds, adversarial links — must be byte-identical before and
// after any simulator-core change.
TEST(SimDeterminismPin, MultiClusterTraceLogMatchesGolden) {
  std::string got = "=== cluster seed 9001 ===\n" + RunTracedScenario(9001) +
                    "=== cluster seed 417 ===\n" + RunTracedScenario(417);
  // The scenario must actually exercise the interesting machinery, or the
  // pin pins nothing.
  EXPECT_NE(got.find("message-dropped"), std::string::npos);
  EXPECT_NE(got.find("host-crashed"), std::string::npos);
  EXPECT_NE(got.find("txn-committed"), std::string::npos);

  const std::string path = DataPath("trace_pin.golden");
  if (RegenRequested()) {
    WriteFileOrDie(path, got);
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string want = ReadFileOrDie(path);
  ASSERT_EQ(want.size(), got.size()) << "trace schedule diverged from pre-rebuild golden";
  EXPECT_EQ(want, got) << "trace schedule diverged from pre-rebuild golden";
}

// A fixed-seed chaos run — schedule expansion, fault application, client
// histories with sim timestamps — replayed bit-for-bit. This is the pin the
// chaos harness's replayable artifacts depend on: if it breaks, every
// artifact recorded before the core change stops reproducing.
TEST(SimDeterminismPin, ChaosHistoryMatchesGolden) {
  ChaosRunSpec spec;
  spec.seed = 7;
  spec.schedule_template = "crash_churn";
  spec.suite = DefaultSuiteSpecs().front();
  spec.clients = 3;
  spec.ops_per_client = 18;
  ChaosRunOutcome outcome = RunChaos(spec);
  EXPECT_TRUE(outcome.check.ok()) << outcome.check.Report(outcome.schedule);

  std::ostringstream pin;
  pin << "schedule:\n" << outcome.schedule.Serialize();
  pin << "final_read_ok: " << (outcome.final_read_ok ? 1 : 0) << "\n";
  pin << "history:\n";
  for (const ChaosOp& op : outcome.history) {
    pin << op.ToString() << "\n";
  }
  const std::string got = pin.str();

  const std::string path = DataPath("chaos_pin.golden");
  if (RegenRequested()) {
    WriteFileOrDie(path, got);
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string want = ReadFileOrDie(path);
  ASSERT_EQ(want.size(), got.size()) << "chaos run diverged from pre-rebuild golden";
  EXPECT_EQ(want, got) << "chaos run diverged from pre-rebuild golden";
}

// A pre-rebuild chaos failure artifact (the negative-control counterexample,
// dumped by the old priority-queue core) must still parse and replay to the
// exact same checker verdict on the current core.
TEST(SimDeterminismPin, PreRebuildArtifactReplaysBitForBit) {
  const std::string path = DataPath("chaos_artifact_pin.txt");
  if (RegenRequested()) {
    // Find a failing negative-control run, minimize it, and dump the full
    // artifact — the same flow bench_chaos and the CI sweep use.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      ChaosRunSpec spec;
      spec.seed = seed;
      spec.schedule_template = "partitions";
      spec.suite = NegativeControlSuite();
      ChaosRunOutcome outcome = RunChaos(spec);
      if (outcome.check.ok()) {
        continue;
      }
      FaultSchedule minimized = MinimizeSchedule(spec, outcome.schedule);
      ChaosRunOutcome final_outcome = RunChaosWithSchedule(spec, minimized);
      ASSERT_FALSE(final_outcome.check.ok());
      WriteFileOrDie(path, DumpArtifact(spec, minimized, final_outcome));
      GTEST_SKIP() << "regenerated " << path;
    }
    FAIL() << "no failing negative-control seed found while regenerating";
  }

  const std::string artifact = ReadFileOrDie(path);
  Result<ChaosReplayFile> replay = ParseArtifact(artifact);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ChaosRunOutcome replayed =
      RunChaosWithSchedule(replay.value().spec, replay.value().schedule);
  // The artifact records the counterexample the old core found; the new
  // core must reproduce the identical violation, histories and all.
  EXPECT_FALSE(replayed.check.ok());
  const std::string report = replayed.check.Report(replay.value().schedule);
  EXPECT_NE(artifact.find(report), std::string::npos)
      << "replayed checker report is not the one recorded in the artifact:\n"
      << report;
  std::ostringstream history;
  for (const ChaosOp& op : replayed.history) {
    history << op.ToString() << "\n";
  }
  EXPECT_NE(artifact.find(history.str()), std::string::npos)
      << "replayed history diverged from the recorded artifact";
}

}  // namespace
}  // namespace wvote
