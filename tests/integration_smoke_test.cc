// End-to-end smoke tests: a three-representative suite on a simulated
// network, exercised through the full stack (client -> RPC -> locks ->
// intentions log -> 2PC -> stable storage).

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

SuiteConfig ThreeRepConfig() {
  SuiteConfig cfg = SuiteConfig::MakeUniform("alpha", {"rep-a", "rep-b", "rep-c"},
                                             /*r=*/2, /*w=*/2);
  return cfg;
}

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
      cluster_->AddRepresentative(name);
    }
    config_ = ThreeRepConfig();
    ASSERT_TRUE(config_.Validate().ok());
    ASSERT_TRUE(cluster_->CreateSuite(config_, "genesis").ok());
    client_ = cluster_->AddClient("client-1", config_);
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
};

TEST_F(SmokeTest, ReadInitialContents) {
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value(), "genesis");
}

TEST_F(SmokeTest, WriteThenRead) {
  Status st = cluster_->RunTask(client_->WriteOnce("v2 contents"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value(), "v2 contents");
}

TEST_F(SmokeTest, WriteInstallsAtAWriteQuorum) {
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("payload")).ok());
  // The client ack precedes phase-2 delivery (async commit); drain the
  // simulation so the installs land before inspecting replica state.
  cluster_->sim().RunFor(Duration::Seconds(1));
  int current = 0;
  for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
    Result<VersionedValue> value = cluster_->representative(name)->CurrentValue("alpha");
    ASSERT_TRUE(value.ok());
    if (value.value().version == 2) {
      EXPECT_EQ(value.value().contents, "payload");
      ++current;
    }
  }
  EXPECT_GE(current, 2);  // at least w representatives current
}

TEST_F(SmokeTest, VersionsAdvanceMonotonically) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("gen " + std::to_string(i))).ok());
  }
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "gen 4");
  Version max_version = 0;
  for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
    Result<VersionedValue> value = cluster_->representative(name)->CurrentValue("alpha");
    ASSERT_TRUE(value.ok());
    max_version = std::max(max_version, value.value().version);
  }
  EXPECT_EQ(max_version, 6u);  // bootstrap=1 plus five writes
}

TEST_F(SmokeTest, ReadWriteTransactionIsAtomic) {
  SuiteTransaction txn = client_->Begin();
  Result<std::string> before = cluster_->RunTask(txn.Read());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(txn.Write(before.value() + "+appended").ok());
  Status st = cluster_->RunTask(txn.Commit());
  ASSERT_TRUE(st.ok()) << st.ToString();

  Result<std::string> after = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "genesis+appended");
}

TEST_F(SmokeTest, SurvivesMinorityCrash) {
  cluster_->net().FindHost("rep-c")->Crash();
  Status st = cluster_->RunTask(client_->WriteOnce("despite crash"));
  EXPECT_TRUE(st.ok()) << st.ToString();
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value(), "despite crash");
}

TEST_F(SmokeTest, MajorityCrashBlocksWrites) {
  cluster_->net().FindHost("rep-b")->Crash();
  cluster_->net().FindHost("rep-c")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(200);
  SuiteClient* impatient = cluster_->AddClient("client-2", config_, fast);
  Status st = cluster_->RunTask(impatient->WriteOnce("should fail", /*retries=*/1));
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace wvote
