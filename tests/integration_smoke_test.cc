// End-to-end smoke tests: a three-representative suite on a simulated
// network, exercised through the full stack (client -> RPC -> locks ->
// intentions log -> 2PC -> stable storage).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/core/cluster.h"

namespace wvote {
namespace {

SuiteConfig ThreeRepConfig() {
  SuiteConfig cfg = SuiteConfig::MakeUniform("alpha", {"rep-a", "rep-b", "rep-c"},
                                             /*r=*/2, /*w=*/2);
  return cfg;
}

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
      cluster_->AddRepresentative(name);
    }
    config_ = ThreeRepConfig();
    ASSERT_TRUE(config_.Validate().ok());
    ASSERT_TRUE(cluster_->CreateSuite(config_, "genesis").ok());
    client_ = cluster_->AddClient("client-1", config_);
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
};

TEST_F(SmokeTest, ReadInitialContents) {
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value(), "genesis");
}

TEST_F(SmokeTest, WriteThenRead) {
  Status st = cluster_->RunTask(client_->WriteOnce("v2 contents"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value(), "v2 contents");
}

TEST_F(SmokeTest, WriteInstallsAtAWriteQuorum) {
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("payload")).ok());
  // The client ack precedes phase-2 delivery (async commit); drain the
  // simulation so the installs land before inspecting replica state.
  cluster_->sim().RunFor(Duration::Seconds(1));
  int current = 0;
  for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
    Result<VersionedValue> value = cluster_->representative(name)->CurrentValue("alpha");
    ASSERT_TRUE(value.ok());
    if (value.value().version == 2) {
      EXPECT_EQ(value.value().contents, "payload");
      ++current;
    }
  }
  EXPECT_GE(current, 2);  // at least w representatives current
}

TEST_F(SmokeTest, VersionsAdvanceMonotonically) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("gen " + std::to_string(i))).ok());
  }
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "gen 4");
  Version max_version = 0;
  for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
    Result<VersionedValue> value = cluster_->representative(name)->CurrentValue("alpha");
    ASSERT_TRUE(value.ok());
    max_version = std::max(max_version, value.value().version);
  }
  EXPECT_EQ(max_version, 6u);  // bootstrap=1 plus five writes
}

TEST_F(SmokeTest, ReadWriteTransactionIsAtomic) {
  SuiteTransaction txn = client_->Begin();
  Result<std::string> before = cluster_->RunTask(txn.Read());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(txn.Write(before.value() + "+appended").ok());
  Status st = cluster_->RunTask(txn.Commit());
  ASSERT_TRUE(st.ok()) << st.ToString();

  Result<std::string> after = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "genesis+appended");
}

TEST_F(SmokeTest, SurvivesMinorityCrash) {
  cluster_->net().FindHost("rep-c")->Crash();
  Status st = cluster_->RunTask(client_->WriteOnce("despite crash"));
  EXPECT_TRUE(st.ok()) << st.ToString();
  Result<std::string> contents = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value(), "despite crash");
}

TEST_F(SmokeTest, MajorityCrashBlocksWrites) {
  cluster_->net().FindHost("rep-b")->Crash();
  cluster_->net().FindHost("rep-c")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(200);
  SuiteClient* impatient = cluster_->AddClient("client-2", config_, fast);
  Status st = cluster_->RunTask(impatient->WriteOnce("should fail", /*retries=*/1));
  EXPECT_FALSE(st.ok());
}

TEST_F(SmokeTest, EveryCommittedWriteProducesACompleteSpanTree) {
  cluster_->tracer().Enable(true);
  const int kWrites = 3;
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("w" + std::to_string(i))).ok());
  }
  cluster_->sim().RunFor(Duration::Seconds(1));  // drain the async phase 2

  std::vector<Span> spans = cluster_->tracer().Snapshot();
  std::map<uint64_t, const Span*> by_id;
  std::map<uint64_t, std::vector<const Span*>> children;
  std::vector<const Span*> roots;
  for (const Span& s : spans) {
    by_id[s.span_id] = &s;
    children[s.parent_id].push_back(&s);
    if (s.parent_id == 0 && s.name == "client.write") {
      roots.push_back(&s);
    }
  }
  ASSERT_EQ(roots.size(), static_cast<size_t>(kWrites));

  for (const Span* root : roots) {
    EXPECT_FALSE(root->open);
    // Healthy cluster: exactly one attempt per write.
    ASSERT_EQ(children[root->span_id].size(), 1u);
    const Span* txn = children[root->span_id][0];
    ASSERT_EQ(txn->name, "client.txn");

    // The attempt decomposes into the protocol phases, each exactly once.
    std::map<std::string, int> phases;
    int64_t phase_micros = 0;
    for (const Span* c : children[txn->span_id]) {
      if (c->name.rfind("phase.", 0) == 0) {
        ++phases[c->name];
        phase_micros += c->duration().ToMicros();
      }
    }
    EXPECT_EQ(phases["phase.gather"], 1);
    EXPECT_EQ(phases["phase.prepare"], 1);
    EXPECT_EQ(phases["phase.disk"], 1);
    EXPECT_EQ(phases["phase.commit_ack"], 1);

    // Per-phase latency attribution must account for the whole operation:
    // simulated time only advances at awaits, and the phases ARE the
    // attempt's awaits, so their durations tile the attempt span. Allow 5%
    // for any bookkeeping gaps.
    const int64_t txn_micros = txn->duration().ToMicros();
    ASSERT_GT(txn_micros, 0);
    EXPECT_LE(std::abs(phase_micros - txn_micros), txn_micros / 20)
        << "phases sum to " << phase_micros << "us, attempt took " << txn_micros
        << "us:\n"
        << cluster_->tracer().DumpTree(root->trace_id);

    // Every RPC issued on behalf of the write shows up in the tree: walk the
    // whole trace, count client-side rpc.* spans, and require each to have
    // its server-side handle.* child.
    int rpcs = 0;
    for (const Span& s : spans) {
      if (s.trace_id != root->trace_id || s.name.rfind("rpc.", 0) != 0) {
        continue;
      }
      ++rpcs;
      bool handled = false;
      for (const Span* c : children[s.span_id]) {
        handled |= c->name.rfind("handle.", 0) == 0;
      }
      EXPECT_TRUE(handled) << s.name << " has no server-side handle span";
    }
    // At least: two version probes (w=2), two prepares, two commits.
    EXPECT_GE(rpcs, 6) << cluster_->tracer().DumpTree(root->trace_id);

    // The background fan-out is causally attached to the attempt, not to a
    // fresh root.
    bool has_background = false;
    for (const Span* c : children[txn->span_id]) {
      has_background |= c->name == "phase2.background";
    }
    EXPECT_TRUE(has_background);
  }
}

}  // namespace
}  // namespace wvote
