// Stable storage: crash-atomicity of the two-slot careful-write scheme.

#include "src/storage/stable_store.h"

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace wvote {
namespace {

class StableStoreTest : public ::testing::Test {
 protected:
  StableStoreTest()
      : sim_(1),
        net_(&sim_),
        host_(net_.AddHost("disk-host")),
        store_(&sim_, host_, LatencyModel::Fixed(Duration::Millis(10)),
               LatencyModel::Fixed(Duration::Millis(5))) {}

  Status RunWrite(const std::string& key, const std::string& value) {
    auto holder = std::make_shared<Status>(InternalError("pending"));
    Spawn(CaptureWrite(&store_, key, value, holder));
    sim_.Run();
    return *holder;
  }

  Result<std::string> RunRead(const std::string& key) {
    auto holder = std::make_shared<Result<std::string>>(InternalError("pending"));
    Spawn(CaptureRead(&store_, key, holder));
    sim_.Run();
    return *holder;
  }

  static Task<void> CaptureWrite(StableStore* store, std::string key, std::string value,
                                 std::shared_ptr<Status> out) {
    *out = co_await store->Write(std::move(key), std::move(value));
  }
  static Task<void> CaptureRead(StableStore* store, std::string key,
                                std::shared_ptr<Result<std::string>> out) {
    *out = co_await store->Read(std::move(key));
  }
  static Task<void> CaptureWriteBatch(StableStore* store,
                                      std::vector<std::pair<std::string, std::string>> entries,
                                      std::shared_ptr<Status> out) {
    *out = co_await store->WriteBatch(std::move(entries));
  }

  Simulator sim_;
  Network net_;
  Host* host_;
  StableStore store_;
};

TEST_F(StableStoreTest, WriteThenReadRoundTrip) {
  EXPECT_TRUE(RunWrite("k", "value-1").ok());
  Result<std::string> r = RunRead("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "value-1");
}

TEST_F(StableStoreTest, OverwriteKeepsLatest) {
  ASSERT_TRUE(RunWrite("k", "v1").ok());
  ASSERT_TRUE(RunWrite("k", "v2").ok());
  ASSERT_TRUE(RunWrite("k", "v3").ok());
  EXPECT_EQ(RunRead("k").value(), "v3");
}

TEST_F(StableStoreTest, MissingKeyIsNotFound) {
  EXPECT_EQ(RunRead("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_.ReadCommitted("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(store_.Contains("ghost"));
}

TEST_F(StableStoreTest, CrashDuringWritePreservesOldValue) {
  ASSERT_TRUE(RunWrite("k", "stable").ok());

  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "torn", status));
  sim_.Schedule(Duration::Millis(5), [this] { host_->Crash(); });  // mid-write
  sim_.Run();
  EXPECT_EQ(status->code(), StatusCode::kAborted);
  EXPECT_EQ(store_.stats().writes_torn, 1u);

  host_->Restart();
  EXPECT_EQ(store_.ReadCommitted("k").value(), "stable");
}

TEST_F(StableStoreTest, CrashDuringFirstEverWriteLeavesNothing) {
  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "fresh", "partial", status));
  sim_.Schedule(Duration::Millis(5), [this] { host_->Crash(); });
  sim_.Run();
  host_->Restart();
  EXPECT_FALSE(store_.Contains("fresh"));
}

TEST_F(StableStoreTest, WriteAfterCrashRecoveryWorks) {
  ASSERT_TRUE(RunWrite("k", "v1").ok());
  host_->Crash();
  host_->Restart();
  ASSERT_TRUE(RunWrite("k", "v2").ok());
  EXPECT_EQ(RunRead("k").value(), "v2");
}

TEST_F(StableStoreTest, WriteWhileDownAborts) {
  host_->Crash();
  EXPECT_EQ(RunWrite("k", "x").code(), StatusCode::kAborted);
  host_->Restart();
}

TEST_F(StableStoreTest, ReadWhileDownAborts) {
  ASSERT_TRUE(RunWrite("k", "x").ok());
  host_->Crash();
  EXPECT_EQ(RunRead("k").status().code(), StatusCode::kAborted);
  host_->Restart();
}

TEST_F(StableStoreTest, DeleteRemovesDurably) {
  ASSERT_TRUE(RunWrite("k", "x").ok());
  auto status = std::make_shared<Status>(InternalError("pending"));
  auto deleter = [](StableStore* store, std::shared_ptr<Status> out) -> Task<void> {
    *out = co_await store->Delete("k");
  };
  Spawn(deleter(&store_, status));
  sim_.Run();
  EXPECT_TRUE(status->ok());
  EXPECT_FALSE(store_.Contains("k"));
}

TEST_F(StableStoreTest, KeysListsOnlyCommitted) {
  ASSERT_TRUE(RunWrite("a/1", "x").ok());
  ASSERT_TRUE(RunWrite("a/2", "y").ok());
  ASSERT_TRUE(RunWrite("b/1", "z").ok());
  EXPECT_EQ(store_.Keys().size(), 3u);
  EXPECT_EQ(store_.KeysWithPrefix("a/").size(), 2u);
  EXPECT_EQ(store_.KeysWithPrefix("b/").size(), 1u);
  EXPECT_EQ(store_.KeysWithPrefix("c/").size(), 0u);
}

TEST_F(StableStoreTest, WriteLatencyIsSimulated) {
  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "v", status));
  sim_.Run();
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(10));
}

TEST_F(StableStoreTest, ManyKeysSurviveManyCrashes) {
  for (int round = 0; round < 5; ++round) {
    for (int k = 0; k < 10; ++k) {
      ASSERT_TRUE(
          RunWrite("key-" + std::to_string(k), "round-" + std::to_string(round)).ok());
    }
    host_->Crash();
    host_->Restart();
  }
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(store_.ReadCommitted("key-" + std::to_string(k)).value(), "round-4");
  }
}

TEST_F(StableStoreTest, StatsTrackActivity) {
  ASSERT_TRUE(RunWrite("k", "v").ok());
  (void)RunRead("k");
  EXPECT_EQ(store_.stats().writes_started, 1u);
  EXPECT_EQ(store_.stats().writes_completed, 1u);
  EXPECT_EQ(store_.stats().reads, 1u);
}

// --- Group commit -----------------------------------------------------------

TEST_F(StableStoreTest, ConcurrentWritesCoalesceIntoOneFlush) {
  auto s0 = std::make_shared<Status>(InternalError("pending"));
  auto s1 = std::make_shared<Status>(InternalError("pending"));
  auto s2 = std::make_shared<Status>(InternalError("pending"));
  auto s3 = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "a", "va", s0));
  Spawn(CaptureWrite(&store_, "b", "vb", s1));
  Spawn(CaptureWrite(&store_, "c", "vc", s2));
  Spawn(CaptureWrite(&store_, "d", "vd", s3));
  sim_.Run();

  // All four writes succeed but the disk was charged exactly once.
  for (const auto& s : {s0, s1, s2, s3}) {
    EXPECT_TRUE(s->ok()) << s->ToString();
  }
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(10));
  EXPECT_EQ(store_.stats().group_commit_batches, 1u);
  EXPECT_EQ(store_.stats().group_commit_coalesced, 3u);
  EXPECT_EQ(store_.stats().writes_completed, 4u);
  EXPECT_EQ(store_.ReadCommitted("a").value(), "va");
  EXPECT_EQ(store_.ReadCommitted("d").value(), "vd");
}

TEST_F(StableStoreTest, SequentialWritesDoNotCoalesce) {
  ASSERT_TRUE(RunWrite("a", "v1").ok());
  ASSERT_TRUE(RunWrite("b", "v2").ok());
  EXPECT_EQ(store_.stats().group_commit_batches, 2u);
  EXPECT_EQ(store_.stats().group_commit_coalesced, 0u);
}

TEST_F(StableStoreTest, SameKeyCoalescingKeepsLastStagedValue) {
  auto s0 = std::make_shared<Status>(InternalError("pending"));
  auto s1 = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "first", s0));
  Spawn(CaptureWrite(&store_, "k", "second", s1));
  sim_.Run();
  EXPECT_TRUE(s0->ok());
  EXPECT_TRUE(s1->ok());
  // The racers are adjacent in the serial order; only the final window
  // state becomes durable.
  EXPECT_EQ(store_.ReadCommitted("k").value(), "second");
  EXPECT_EQ(store_.stats().writes_started, 2u);
  EXPECT_EQ(store_.stats().writes_completed, 1u);
}

TEST_F(StableStoreTest, JoinerFinishesWithTheLeaderWindow) {
  auto leader = std::make_shared<Status>(InternalError("pending"));
  auto joiner = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "a", "va", leader));
  // Arrive 4ms into the leader's 10ms window: the joiner completes when the
  // window does (t=10ms), not a full latency later.
  sim_.Schedule(Duration::Millis(4), [this, joiner] {
    Spawn(CaptureWrite(&store_, "b", "vb", joiner));
  });
  sim_.Run();
  EXPECT_TRUE(leader->ok());
  EXPECT_TRUE(joiner->ok());
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(10));
  EXPECT_EQ(store_.stats().group_commit_batches, 1u);
  EXPECT_EQ(store_.stats().group_commit_coalesced, 1u);
}

TEST_F(StableStoreTest, CrashTearsTheWholeBatch) {
  ASSERT_TRUE(RunWrite("k", "stable").ok());

  auto s0 = std::make_shared<Status>(InternalError("pending"));
  auto s1 = std::make_shared<Status>(InternalError("pending"));
  auto s2 = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "torn", s0));
  Spawn(CaptureWrite(&store_, "fresh-1", "x", s1));
  Spawn(CaptureWrite(&store_, "fresh-2", "y", s2));
  sim_.Schedule(Duration::Millis(5), [this] { host_->Crash(); });  // mid-window
  sim_.Run();

  // Nothing in the batch was acknowledged, so losing all of it is
  // crash-atomic: every waiter aborts, every staged page stays torn.
  for (const auto& s : {s0, s1, s2}) {
    EXPECT_EQ(s->code(), StatusCode::kAborted);
  }
  EXPECT_EQ(store_.stats().writes_torn, 3u);

  host_->Restart();
  EXPECT_EQ(store_.ReadCommitted("k").value(), "stable");
  EXPECT_FALSE(store_.Contains("fresh-1"));
  EXPECT_FALSE(store_.Contains("fresh-2"));
}

TEST_F(StableStoreTest, WriteBatchInstallsAllEntriesWithOneCharge) {
  std::vector<std::pair<std::string, std::string>> entries = {
      {"x", "1"}, {"y", "2"}, {"z", "3"}};
  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWriteBatch(&store_, std::move(entries), status));
  sim_.Run();
  EXPECT_TRUE(status->ok());
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(10));
  EXPECT_EQ(store_.stats().group_commit_batches, 1u);
  EXPECT_EQ(store_.stats().writes_completed, 3u);
  EXPECT_EQ(store_.ReadCommitted("x").value(), "1");
  EXPECT_EQ(store_.ReadCommitted("y").value(), "2");
  EXPECT_EQ(store_.ReadCommitted("z").value(), "3");
}

TEST_F(StableStoreTest, CrashDuringWriteBatchLosesAllOrNothing) {
  ASSERT_TRUE(RunWrite("x", "old").ok());
  std::vector<std::pair<std::string, std::string>> entries = {
      {"x", "new"}, {"w", "fresh"}};
  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWriteBatch(&store_, std::move(entries), status));
  sim_.Schedule(Duration::Millis(5), [this] { host_->Crash(); });
  sim_.Run();
  EXPECT_EQ(status->code(), StatusCode::kAborted);
  host_->Restart();
  EXPECT_EQ(store_.ReadCommitted("x").value(), "old");
  EXPECT_FALSE(store_.Contains("w"));
}

TEST_F(StableStoreTest, InjectedWriteFailureIsCleanAndCounted) {
  ASSERT_TRUE(RunWrite("k", "old").ok());
  StoreFaults faults;
  faults.write_fail_probability = 1.0;
  store_.SetFaults(faults);
  Status st = RunWrite("k", "new");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(store_.stats().injected_write_failures, 1u);
  // Clean refusal: the failure happened before the careful-write window, so
  // the committed slot is untouched — no restart needed to read it.
  EXPECT_EQ(store_.ReadCommitted("k").value(), "old");
  store_.SetFaults(StoreFaults{});
  ASSERT_TRUE(RunWrite("k", "new").ok());
  EXPECT_EQ(store_.ReadCommitted("k").value(), "new");
}

TEST_F(StableStoreTest, InjectedTornFlushSurfacesOldValueNeverTornMix) {
  ASSERT_TRUE(RunWrite("k", "old").ok());
  StoreFaults faults;
  faults.tear_next_flush = true;
  store_.SetFaults(faults);
  Status st = RunWrite("k", "new");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(store_.stats().injected_torn_flushes, 1u);
  EXPECT_EQ(store_.stats().writes_torn, 1u);
  // Two-slot careful write: the torn flush never reached the committed
  // slot, so recovery sees the complete old value — not a torn mix.
  EXPECT_EQ(store_.ReadCommitted("k").value(), "old");
  EXPECT_FALSE(store_.faults().tear_next_flush);  // one-shot, consumed
  // The next flush is healthy again and installs the complete new value.
  ASSERT_TRUE(RunWrite("k", "new").ok());
  EXPECT_EQ(store_.ReadCommitted("k").value(), "new");
}

TEST_F(StableStoreTest, InjectedTearHitsTheWholeGroupCommitWindow) {
  ASSERT_TRUE(RunWrite("k", "stable").ok());
  StoreFaults faults;
  faults.tear_next_flush = true;
  store_.SetFaults(faults);
  auto s0 = std::make_shared<Status>(InternalError("pending"));
  auto s1 = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "torn", s0));
  Spawn(CaptureWrite(&store_, "fresh", "x", s1));  // joins the open batch
  sim_.Run();
  // The one-shot tear is crash-atomic across the batch: every joiner fails
  // with the leader, nothing was acknowledged, nothing installed.
  EXPECT_EQ(s0->code(), StatusCode::kUnavailable);
  EXPECT_EQ(s1->code(), StatusCode::kUnavailable);
  EXPECT_EQ(store_.stats().writes_torn, 2u);
  EXPECT_EQ(store_.ReadCommitted("k").value(), "stable");
  EXPECT_FALSE(store_.Contains("fresh"));
  // One-shot: a rewrite of the same batch content now succeeds completely.
  ASSERT_TRUE(RunWrite("k", "after").ok());
  ASSERT_TRUE(RunWrite("fresh", "x").ok());
  EXPECT_EQ(store_.ReadCommitted("k").value(), "after");
  EXPECT_EQ(store_.ReadCommitted("fresh").value(), "x");
}

}  // namespace
}  // namespace wvote
