// Stable storage: crash-atomicity of the two-slot careful-write scheme.

#include "src/storage/stable_store.h"

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace wvote {
namespace {

class StableStoreTest : public ::testing::Test {
 protected:
  StableStoreTest()
      : sim_(1),
        net_(&sim_),
        host_(net_.AddHost("disk-host")),
        store_(&sim_, host_, LatencyModel::Fixed(Duration::Millis(10)),
               LatencyModel::Fixed(Duration::Millis(5))) {}

  Status RunWrite(const std::string& key, const std::string& value) {
    auto holder = std::make_shared<Status>(InternalError("pending"));
    Spawn(CaptureWrite(&store_, key, value, holder));
    sim_.Run();
    return *holder;
  }

  Result<std::string> RunRead(const std::string& key) {
    auto holder = std::make_shared<Result<std::string>>(InternalError("pending"));
    Spawn(CaptureRead(&store_, key, holder));
    sim_.Run();
    return *holder;
  }

  static Task<void> CaptureWrite(StableStore* store, std::string key, std::string value,
                                 std::shared_ptr<Status> out) {
    *out = co_await store->Write(std::move(key), std::move(value));
  }
  static Task<void> CaptureRead(StableStore* store, std::string key,
                                std::shared_ptr<Result<std::string>> out) {
    *out = co_await store->Read(std::move(key));
  }

  Simulator sim_;
  Network net_;
  Host* host_;
  StableStore store_;
};

TEST_F(StableStoreTest, WriteThenReadRoundTrip) {
  EXPECT_TRUE(RunWrite("k", "value-1").ok());
  Result<std::string> r = RunRead("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "value-1");
}

TEST_F(StableStoreTest, OverwriteKeepsLatest) {
  ASSERT_TRUE(RunWrite("k", "v1").ok());
  ASSERT_TRUE(RunWrite("k", "v2").ok());
  ASSERT_TRUE(RunWrite("k", "v3").ok());
  EXPECT_EQ(RunRead("k").value(), "v3");
}

TEST_F(StableStoreTest, MissingKeyIsNotFound) {
  EXPECT_EQ(RunRead("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_.ReadCommitted("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(store_.Contains("ghost"));
}

TEST_F(StableStoreTest, CrashDuringWritePreservesOldValue) {
  ASSERT_TRUE(RunWrite("k", "stable").ok());

  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "torn", status));
  sim_.Schedule(Duration::Millis(5), [this] { host_->Crash(); });  // mid-write
  sim_.Run();
  EXPECT_EQ(status->code(), StatusCode::kAborted);
  EXPECT_EQ(store_.stats().writes_torn, 1u);

  host_->Restart();
  EXPECT_EQ(store_.ReadCommitted("k").value(), "stable");
}

TEST_F(StableStoreTest, CrashDuringFirstEverWriteLeavesNothing) {
  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "fresh", "partial", status));
  sim_.Schedule(Duration::Millis(5), [this] { host_->Crash(); });
  sim_.Run();
  host_->Restart();
  EXPECT_FALSE(store_.Contains("fresh"));
}

TEST_F(StableStoreTest, WriteAfterCrashRecoveryWorks) {
  ASSERT_TRUE(RunWrite("k", "v1").ok());
  host_->Crash();
  host_->Restart();
  ASSERT_TRUE(RunWrite("k", "v2").ok());
  EXPECT_EQ(RunRead("k").value(), "v2");
}

TEST_F(StableStoreTest, WriteWhileDownAborts) {
  host_->Crash();
  EXPECT_EQ(RunWrite("k", "x").code(), StatusCode::kAborted);
  host_->Restart();
}

TEST_F(StableStoreTest, ReadWhileDownAborts) {
  ASSERT_TRUE(RunWrite("k", "x").ok());
  host_->Crash();
  EXPECT_EQ(RunRead("k").status().code(), StatusCode::kAborted);
  host_->Restart();
}

TEST_F(StableStoreTest, DeleteRemovesDurably) {
  ASSERT_TRUE(RunWrite("k", "x").ok());
  auto status = std::make_shared<Status>(InternalError("pending"));
  auto deleter = [](StableStore* store, std::shared_ptr<Status> out) -> Task<void> {
    *out = co_await store->Delete("k");
  };
  Spawn(deleter(&store_, status));
  sim_.Run();
  EXPECT_TRUE(status->ok());
  EXPECT_FALSE(store_.Contains("k"));
}

TEST_F(StableStoreTest, KeysListsOnlyCommitted) {
  ASSERT_TRUE(RunWrite("a/1", "x").ok());
  ASSERT_TRUE(RunWrite("a/2", "y").ok());
  ASSERT_TRUE(RunWrite("b/1", "z").ok());
  EXPECT_EQ(store_.Keys().size(), 3u);
  EXPECT_EQ(store_.KeysWithPrefix("a/").size(), 2u);
  EXPECT_EQ(store_.KeysWithPrefix("b/").size(), 1u);
  EXPECT_EQ(store_.KeysWithPrefix("c/").size(), 0u);
}

TEST_F(StableStoreTest, WriteLatencyIsSimulated) {
  auto status = std::make_shared<Status>(InternalError("pending"));
  Spawn(CaptureWrite(&store_, "k", "v", status));
  sim_.Run();
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(10));
}

TEST_F(StableStoreTest, ManyKeysSurviveManyCrashes) {
  for (int round = 0; round < 5; ++round) {
    for (int k = 0; k < 10; ++k) {
      ASSERT_TRUE(
          RunWrite("key-" + std::to_string(k), "round-" + std::to_string(round)).ok());
    }
    host_->Crash();
    host_->Restart();
  }
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(store_.ReadCommitted("key-" + std::to_string(k)).value(), "round-4");
  }
}

TEST_F(StableStoreTest, StatsTrackActivity) {
  ASSERT_TRUE(RunWrite("k", "v").ok());
  (void)RunRead("k");
  EXPECT_EQ(store_.stats().writes_started, 1u);
  EXPECT_EQ(store_.stats().writes_completed, 1u);
  EXPECT_EQ(store_.stats().reads, 1u);
}

}  // namespace
}  // namespace wvote
