// Protocol tracing: ring semantics and end-to-end event capture.

#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

TEST(TraceLogTest, RecordsInOrder) {
  Simulator sim(1);
  TraceLog trace(&sim, 16);
  trace.Record(1, TraceKind::kCustom, "first");
  sim.RunFor(Duration::Millis(5));
  trace.Record(2, TraceKind::kCustom, "second");
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "first");
  EXPECT_EQ(events[1].detail, "second");
  EXPECT_LT(events[0].at, events[1].at);
}

TEST(TraceLogTest, RingKeepsNewest) {
  Simulator sim(1);
  TraceLog trace(&sim, 4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(0, TraceKind::kCustom, std::to_string(i));
  }
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].detail, "6");
  EXPECT_EQ(events[3].detail, "9");
  EXPECT_EQ(trace.total_recorded(), 10u);
}

TEST(TraceLogTest, CountsPerKindSurviveRingEviction) {
  Simulator sim(1);
  TraceLog trace(&sim, 2);
  for (int i = 0; i < 7; ++i) {
    trace.Record(0, TraceKind::kHostCrashed, "");
  }
  EXPECT_EQ(trace.CountOf(TraceKind::kHostCrashed), 7u);
}

TEST(TraceLogTest, FiltersByHostAndKind) {
  Simulator sim(1);
  TraceLog trace(&sim, 16);
  trace.Record(1, TraceKind::kHostCrashed, "a");
  trace.Record(2, TraceKind::kHostCrashed, "b");
  trace.Record(1, TraceKind::kHostRestarted, "a");
  EXPECT_EQ(trace.ForHost(1).size(), 2u);
  EXPECT_EQ(trace.OfKind(TraceKind::kHostCrashed).size(), 2u);
}

TEST(TraceLogTest, ClearResets) {
  Simulator sim(1);
  TraceLog trace(&sim, 4);
  trace.Record(0, TraceKind::kCustom, "x");
  trace.Clear();
  EXPECT_TRUE(trace.Snapshot().empty());
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_EQ(trace.CountOf(TraceKind::kCustom), 0u);
}

TEST(TraceLogTest, DumpMentionsKindNames) {
  Simulator sim(1);
  TraceLog trace(&sim, 4);
  trace.Record(3, TraceKind::kTxnCommitted, "txn(1.1@0)");
  const std::string dump = trace.Dump();
  EXPECT_NE(dump.find("txn-committed"), std::string::npos);
  EXPECT_NE(dump.find("txn(1.1@0)"), std::string::npos);
}

TEST(TraceLogTest, ObserversRunSynchronouslyAndMayReenter) {
  Simulator sim(1);
  TraceLog trace(&sim, 16);
  std::vector<std::string> seen;
  trace.AddObserver([&](const TraceEvent& ev) {
    seen.push_back(ev.detail);
    // Re-entrant Record from inside an observer must not corrupt the event
    // being observed (the chaos nemesis crashes hosts from observers, which
    // records kHostCrashed while the triggering event is still in flight).
    if (ev.kind == TraceKind::kCustom && ev.detail == "trigger") {
      trace.Record(9, TraceKind::kHostCrashed, "from-observer");
    }
  });
  trace.Record(1, TraceKind::kCustom, "trigger");
  EXPECT_EQ(seen, (std::vector<std::string>{"trigger", "from-observer"}));
  EXPECT_EQ(trace.CountOf(TraceKind::kHostCrashed), 1u);
}

TEST(TraceIntegrationTest, ClusterCapturesProtocolEvents) {
  Cluster cluster;
  for (int i = 0; i < 3; ++i) {
    cluster.AddRepresentative("rep-" + std::to_string(i));
  }
  SuiteConfig config = SuiteConfig::MakeUniform("t", {"rep-0", "rep-1", "rep-2"}, 2, 2);
  ASSERT_TRUE(cluster.CreateSuite(config, "x").ok());
  SuiteClient* client = cluster.AddClient("client", config);

  ASSERT_TRUE(cluster.RunTask(client->WriteOnce("y")).ok());
  cluster.sim().RunFor(Duration::Seconds(1));  // drain the async phase 2
  // The write prepared and committed at two representatives.
  EXPECT_EQ(cluster.trace().CountOf(TraceKind::kTxnPrepared), 2u);
  EXPECT_EQ(cluster.trace().CountOf(TraceKind::kTxnCommitted), 2u);

  // Crash/restart shows up attributed to the right host.
  Host* rep2 = cluster.net().FindHost("rep-2");
  rep2->Crash();
  rep2->Restart();
  EXPECT_EQ(cluster.trace().CountOf(TraceKind::kHostCrashed), 1u);
  EXPECT_EQ(cluster.trace().ForHost(rep2->id()).size(), 3u);  // crash+restart+recovery

  // A failed quorum is recorded.
  cluster.net().FindHost("rep-0")->Crash();
  cluster.net().FindHost("rep-1")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(100);
  SuiteClient* impatient = cluster.AddClient("impatient", config, fast);
  (void)cluster.RunTask(impatient->ReadOnce(/*retries=*/1));
  EXPECT_GE(cluster.trace().CountOf(TraceKind::kQuorumFailed), 1u);
  EXPECT_GE(cluster.trace().CountOf(TraceKind::kMessageDropped), 1u);
}

TEST(TraceIntegrationTest, ReconfigurationIsTraced) {
  Cluster cluster;
  for (int i = 0; i < 3; ++i) {
    cluster.AddRepresentative("rep-" + std::to_string(i));
  }
  SuiteConfig config = SuiteConfig::MakeUniform("t", {"rep-0", "rep-1", "rep-2"}, 2, 2);
  ASSERT_TRUE(cluster.CreateSuite(config, "x").ok());
  SuiteClient* admin = cluster.AddClient("admin", config);
  ASSERT_TRUE(cluster
                  .RunTask(admin->Reconfigure(
                      SuiteConfig::MakeUniform("t", {"rep-0", "rep-1", "rep-2"}, 1, 3)))
                  .ok());
  EXPECT_EQ(cluster.trace().CountOf(TraceKind::kReconfigured), 1u);
}

}  // namespace
}  // namespace wvote
