// RPC layer: request/response, timeouts, retransmission, crash semantics.

#include "src/rpc/rpc.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace wvote {
namespace {

struct EchoReq {
  std::string text;
  EchoReq() = default;
  explicit EchoReq(std::string t) : text(std::move(t)) {}
};
struct EchoResp {
  std::string text;
  EchoResp() = default;
  explicit EchoResp(std::string t) : text(std::move(t)) {}
};
struct SlowReq {
  int delay_ms = 0;
  SlowReq() = default;
  explicit SlowReq(int d) : delay_ms(d) {}
};
struct CountReq {
  CountReq() = default;
};
struct CountResp {
  int count = 0;
  CountResp() = default;
  explicit CountResp(int c) : count(c) {}
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : sim_(1), net_(&sim_) {
    net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(5)));
    server_host_ = net_.AddHost("server");
    client_host_ = net_.AddHost("client");
    server_ = std::make_unique<RpcEndpoint>(&net_, server_host_);
    client_ = std::make_unique<RpcEndpoint>(&net_, client_host_);

    server_->Handle<EchoReq, EchoResp>(
        [](HostId from, EchoReq req) -> Task<Result<EchoResp>> {
          co_return EchoResp(req.text + "!");
        });
    server_->Handle<SlowReq, EchoResp>(
        [this](HostId from, SlowReq req) -> Task<Result<EchoResp>> {
          co_await sim_.Sleep(Duration::Millis(req.delay_ms));
          co_return EchoResp("slow done");
        });
    server_->Handle<CountReq, CountResp>(
        [this](HostId from, CountReq) -> Task<Result<CountResp>> {
          co_return CountResp(++count_);
        });
  }

  template <typename Req, typename Resp>
  Result<Resp> Call(Req req, Duration timeout) {
    auto out = std::make_shared<Result<Resp>>(InternalError("pending"));
    auto runner = [](RpcEndpoint* client, HostId to, Req req, Duration timeout,
                     std::shared_ptr<Result<Resp>> out) -> Task<void> {
      *out = co_await client->Call<Req, Resp>(to, std::move(req), timeout);
    };
    Spawn(runner(client_.get(), server_host_->id(), std::move(req), timeout, out));
    sim_.Run();
    return *out;
  }

  Simulator sim_;
  Network net_;
  Host* server_host_;
  Host* client_host_;
  std::unique_ptr<RpcEndpoint> server_;
  std::unique_ptr<RpcEndpoint> client_;
  int count_ = 0;
};

TEST_F(RpcTest, RoundTrip) {
  Result<EchoResp> r = Call<EchoReq, EchoResp>(EchoReq("hi"), Duration::Seconds(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().text, "hi!");
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(10));  // two 5ms hops
}

TEST_F(RpcTest, SlowHandlerIncludesProcessingTime) {
  Result<EchoResp> r = Call<SlowReq, EchoResp>(SlowReq(100), Duration::Seconds(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sim_.Now(), TimePoint() + Duration::Millis(110));
}

TEST_F(RpcTest, TimesOutWhenServerTooSlow) {
  Result<EchoResp> r = Call<SlowReq, EchoResp>(SlowReq(5000), Duration::Millis(50));
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(RpcTest, TimesOutWhenServerDown) {
  server_host_->Crash();
  Result<EchoResp> r = Call<EchoReq, EchoResp>(EchoReq("x"), Duration::Millis(50));
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(RpcTest, ServerCrashMidHandlerMeansTimeout) {
  sim_.Schedule(Duration::Millis(20), [this] { server_host_->Crash(); });
  Result<EchoResp> r = Call<SlowReq, EchoResp>(SlowReq(100), Duration::Millis(500));
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(RpcTest, UnknownRequestTypeTimesOut) {
  struct UnknownReq {};
  Result<EchoResp> r = Call<UnknownReq, EchoResp>(UnknownReq{}, Duration::Millis(50));
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(RpcTest, CallerDownAborts) {
  client_host_->Crash();
  Result<EchoResp> r = Call<EchoReq, EchoResp>(EchoReq("x"), Duration::Millis(50));
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
}

TEST_F(RpcTest, ClientCrashAbortsOutstandingCalls) {
  auto out = std::make_shared<Result<EchoResp>>(InternalError("pending"));
  auto runner = [](RpcEndpoint* client, HostId to,
                   std::shared_ptr<Result<EchoResp>> out) -> Task<void> {
    *out = co_await client->Call<SlowReq, EchoResp>(to, SlowReq(1000), Duration::Seconds(10));
  };
  Spawn(runner(client_.get(), server_host_->id(), out));
  sim_.Schedule(Duration::Millis(20), [this] { client_host_->Crash(); });
  sim_.Run();
  EXPECT_EQ(out->status().code(), StatusCode::kAborted);
}

TEST_F(RpcTest, RetrySucceedsAfterTransientServerOutage) {
  server_host_->Crash();
  sim_.Schedule(Duration::Millis(120), [this] { server_host_->Restart(); });
  auto out = std::make_shared<Result<EchoResp>>(InternalError("pending"));
  auto runner = [](RpcEndpoint* client, HostId to,
                   std::shared_ptr<Result<EchoResp>> out) -> Task<void> {
    *out = co_await client->CallWithRetry<EchoReq, EchoResp>(to, EchoReq("r"),
                                                             Duration::Millis(100),
                                                             /*attempts=*/5);
  };
  Spawn(runner(client_.get(), server_host_->id(), out));
  sim_.Run();
  ASSERT_TRUE(out->ok());
  EXPECT_EQ(out->value().text, "r!");
}

TEST_F(RpcTest, RetryGivesUpAfterAttempts) {
  server_host_->Crash();
  auto out = std::make_shared<Result<EchoResp>>(InternalError("pending"));
  auto runner = [](RpcEndpoint* client, HostId to,
                   std::shared_ptr<Result<EchoResp>> out) -> Task<void> {
    *out = co_await client->CallWithRetry<EchoReq, EchoResp>(to, EchoReq("r"),
                                                             Duration::Millis(50),
                                                             /*attempts=*/3);
  };
  Spawn(runner(client_.get(), server_host_->id(), out));
  sim_.Run();
  EXPECT_EQ(out->status().code(), StatusCode::kTimeout);
  EXPECT_EQ(client_->stats().calls_timeout, 3u);
}

TEST_F(RpcTest, ConcurrentCallsCorrelateCorrectly) {
  auto out1 = std::make_shared<Result<EchoResp>>(InternalError("pending"));
  auto out2 = std::make_shared<Result<EchoResp>>(InternalError("pending"));
  auto runner = [](RpcEndpoint* client, HostId to, std::string text,
                   std::shared_ptr<Result<EchoResp>> out) -> Task<void> {
    *out = co_await client->Call<EchoReq, EchoResp>(to, EchoReq(std::move(text)),
                                                    Duration::Seconds(1));
  };
  Spawn(runner(client_.get(), server_host_->id(), "one", out1));
  Spawn(runner(client_.get(), server_host_->id(), "two", out2));
  sim_.Run();
  EXPECT_EQ(out1->value().text, "one!");
  EXPECT_EQ(out2->value().text, "two!");
}

TEST_F(RpcTest, HandlerRunsOncePerRequest) {
  (void)Call<CountReq, CountResp>(CountReq{}, Duration::Seconds(1));
  Result<CountResp> r = Call<CountReq, CountResp>(CountReq{}, Duration::Seconds(1));
  EXPECT_EQ(r.value().count, 2);
  EXPECT_EQ(server_->stats().requests_handled, 2u);
}

TEST_F(RpcTest, DuplicatingLinkDeliversOneReplyPerCall) {
  // A link that duplicates every packet re-delivers both the request and the
  // reply. The handler legitimately runs once per received request copy (the
  // transport promises at-least-once; idempotency is the application's job),
  // but Call() must consume exactly one reply per call and drop the echoes.
  LinkKnobs knobs;
  knobs.dup_probability = 1.0;
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(5)), knobs);
  Result<CountResp> first = Call<CountReq, CountResp>(CountReq{}, Duration::Seconds(1));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().count, 1);
  Result<CountResp> second = Call<CountReq, CountResp>(CountReq{}, Duration::Seconds(1));
  ASSERT_TRUE(second.ok());
  // Each call's request arrived twice, so the counter advanced by two per
  // call — and each Call returned exactly once, with its own first reply.
  EXPECT_EQ(second.value().count, 3);
  EXPECT_EQ(server_->stats().requests_handled, 4u);
  EXPECT_EQ(client_->stats().calls_ok, 2u);
  EXPECT_GT(net_.stats().duplicated, 0u);
}

TEST_F(RpcTest, StatsDistinguishOutcomes) {
  (void)Call<EchoReq, EchoResp>(EchoReq("a"), Duration::Seconds(1));
  (void)Call<SlowReq, EchoResp>(SlowReq(5000), Duration::Millis(10));
  EXPECT_EQ(client_->stats().calls_ok, 1u);
  EXPECT_EQ(client_->stats().calls_timeout, 1u);
}

TEST_F(RpcTest, DuplicateHandlerRegistrationAborts) {
  std::function<Task<Result<EchoResp>>(HostId, EchoReq)> handler =
      [](HostId, EchoReq) -> Task<Result<EchoResp>> { co_return EchoResp(""); };
  auto reregister = [&] { server_->Handle<EchoReq, EchoResp>(handler); };
  EXPECT_DEATH(reregister(), "duplicate");
}

}  // namespace
}  // namespace wvote
