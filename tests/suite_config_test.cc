#include "src/core/suite_config.h"

#include <gtest/gtest.h>

#include "src/core/types.h"

namespace wvote {
namespace {

SuiteConfig Valid() {
  SuiteConfig cfg = SuiteConfig::MakeUniform("s", {"a", "b", "c"}, 2, 2);
  return cfg;
}

TEST(SuiteConfigTest, ValidConfigPasses) { EXPECT_TRUE(Valid().Validate().ok()); }

TEST(SuiteConfigTest, TotalAndVotingCounts) {
  SuiteConfig cfg;
  cfg.suite_name = "s";
  cfg.AddRepresentative("a", 2);
  cfg.AddRepresentative("b", 1);
  cfg.AddWeakRepresentative("cache");
  EXPECT_EQ(cfg.TotalVotes(), 3);
  EXPECT_EQ(cfg.NumVotingReps(), 2);
  EXPECT_TRUE(cfg.representatives[2].weak());
}

TEST(SuiteConfigTest, RejectsEmptyName) {
  SuiteConfig cfg = Valid();
  cfg.suite_name.clear();
  EXPECT_EQ(cfg.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SuiteConfigTest, RejectsNoRepresentatives) {
  SuiteConfig cfg;
  cfg.suite_name = "s";
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(SuiteConfigTest, RejectsAllWeak) {
  SuiteConfig cfg;
  cfg.suite_name = "s";
  cfg.AddWeakRepresentative("a");
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(SuiteConfigTest, RejectsNegativeVotes) {
  SuiteConfig cfg = Valid();
  cfg.representatives[0].votes = -1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(SuiteConfigTest, RejectsEmptyHostName) {
  SuiteConfig cfg = Valid();
  cfg.representatives[0].host_name.clear();
  EXPECT_FALSE(cfg.Validate().ok());
}

// Exhaustive sweep over (r, w) for V=5: exactly the pairs satisfying both
// r + w > V and 2w > V validate.
class QuorumPairSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QuorumPairSweep, ValidityMatchesInvariants) {
  const int r = std::get<0>(GetParam());
  const int w = std::get<1>(GetParam());
  SuiteConfig cfg = SuiteConfig::MakeUniform("s", {"a", "b", "c", "d", "e"}, r, w);
  const bool expect_valid = r >= 1 && w >= 1 && r <= 5 && w <= 5 && r + w > 5 && 2 * w > 5;
  EXPECT_EQ(cfg.Validate().ok(), expect_valid)
      << "r=" << r << " w=" << w << ": " << cfg.Validate().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllPairs, QuorumPairSweep,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 7)));

TEST(SuiteConfigTest, SerializeParseRoundTrip) {
  SuiteConfig cfg;
  cfg.suite_name = "catalog";
  cfg.config_version = 42;
  cfg.AddRepresentative("host-one", 3);
  cfg.AddRepresentative("host-two", 1);
  cfg.AddWeakRepresentative("cache-host");
  cfg.read_quorum = 2;
  cfg.write_quorum = 3;

  Result<SuiteConfig> parsed = SuiteConfig::Parse(cfg.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().suite_name, "catalog");
  EXPECT_EQ(parsed.value().config_version, 42u);
  EXPECT_EQ(parsed.value().read_quorum, 2);
  EXPECT_EQ(parsed.value().write_quorum, 3);
  ASSERT_EQ(parsed.value().representatives.size(), 3u);
  EXPECT_EQ(parsed.value().representatives[0].host_name, "host-one");
  EXPECT_EQ(parsed.value().representatives[0].votes, 3);
  EXPECT_TRUE(parsed.value().representatives[2].weak());
}

TEST(SuiteConfigTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SuiteConfig::Parse("junk").ok());
  EXPECT_FALSE(SuiteConfig::Parse("").ok());
}

TEST(SuiteConfigTest, ToStringMentionsEverything) {
  const std::string s = Valid().ToString();
  EXPECT_NE(s.find("r=2"), std::string::npos);
  EXPECT_NE(s.find("w=2"), std::string::npos);
  EXPECT_NE(s.find("a:1"), std::string::npos);
}

TEST(VersionedValueTest, RoundTrip) {
  VersionedValue v{7, std::string(100, 'v')};
  Result<VersionedValue> parsed = VersionedValue::Parse(v.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().version, 7u);
  EXPECT_EQ(parsed.value().contents, std::string(100, 'v'));
}

TEST(VersionedValueTest, ParseRejectsGarbage) {
  EXPECT_FALSE(VersionedValue::Parse("x").ok());
}

TEST(VersionedValueTest, KeysAreNamespaced) {
  EXPECT_EQ(SuiteValueKey("f"), "suite/f");
  EXPECT_EQ(SuitePrefixKey("f"), "prefix/f");
  EXPECT_NE(SuiteValueKey("f"), SuitePrefixKey("f"));
}

}  // namespace
}  // namespace wvote
