#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace wvote {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextInRange(5, 5), 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBernoulli(0.3)) {
      ++heads;
    }
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(14);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.NextExponential(250.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 250.0, 10.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child does not replay the parent's stream.
  Rng parent_copy(21);
  (void)parent_copy.NextUint64();  // consume the value Fork() used
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent_copy.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, Uint64CoversHighBits) {
  Rng rng(22);
  uint64_t ors = 0;
  for (int i = 0; i < 100; ++i) {
    ors |= rng.NextUint64();
  }
  EXPECT_EQ(ors & (1ULL << 63), 1ULL << 63);  // top bit seen
}

}  // namespace
}  // namespace wvote
