#include "src/common/status.h"

#include <gtest/gtest.h>

#include <type_traits>

namespace wvote {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = TimeoutError("deadline passed");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_EQ(st.message(), "deadline passed");
  EXPECT_EQ(st.ToString(), "TIMEOUT: deadline passed");
}

TEST(StatusTest, IsTriviallyCopyable) {
  EXPECT_TRUE(std::is_trivially_copyable_v<Status>);
}

TEST(StatusTest, LongMessagesTruncateSafely) {
  const std::string long_message(500, 'x');
  Status st = InternalError(long_message);
  EXPECT_EQ(st.message().size(), Status::kMaxMessage);
  EXPECT_EQ(st.message(), long_message.substr(0, Status::kMaxMessage));
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(TimeoutError("a"), TimeoutError("b"));
  EXPECT_FALSE(TimeoutError("a") == AbortedError("a"));
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(TimeoutError("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(ConflictError("x").code(), StatusCode::kConflict);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CorruptionError("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConflict), "CONFLICT");
  EXPECT_STRNE(StatusCodeName(StatusCode::kTimeout), StatusCodeName(StatusCode::kAborted));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, StringValueRoundTrip) {
  Result<std::string> r = std::string(1000, 'q');
  ASSERT_TRUE(r.ok());
  Result<std::string> copy = r;
  EXPECT_EQ(copy.value(), r.value());
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = []() -> Status { return AbortedError("inner"); };
  auto outer = [&]() -> Status {
    WVOTE_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kAborted);
}

TEST(ReturnIfErrorTest, PassesOk) {
  auto succeeds = []() -> Status { return Status::Ok(); };
  auto outer = [&]() -> Status {
    WVOTE_RETURN_IF_ERROR(succeeds());
    return InternalError("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace wvote
