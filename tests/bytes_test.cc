#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace wvote {
namespace {

TEST(BytesTest, ScalarRoundTrip) {
  BufferWriter w;
  w.WriteU8(200);
  w.WriteU32(123456);
  w.WriteU64(0xdeadbeefcafebabeULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteBool(false);

  BufferReader r(w.str());
  EXPECT_EQ(r.ReadU8(), 200);
  EXPECT_EQ(r.ReadU32(), 123456u);
  EXPECT_EQ(r.ReadU64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.25);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_FALSE(r.ReadBool());
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StringRoundTrip) {
  BufferWriter w;
  w.WriteString("hello");
  w.WriteString("");
  w.WriteString(std::string(10000, 'z'));

  BufferReader r(w.str());
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadString(), std::string(10000, 'z'));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StringWithEmbeddedNuls) {
  std::string s = "a";
  s.push_back('\0');
  s += "b";
  BufferWriter w;
  w.WriteString(s);
  BufferReader r(w.str());
  EXPECT_EQ(r.ReadString(), s);
}

TEST(BytesTest, ReadPastEndFails) {
  BufferWriter w;
  w.WriteU32(7);
  BufferReader r(w.str());
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_EQ(r.ReadU64(), 0u);  // past end: zero + failed
  EXPECT_TRUE(r.failed());
}

TEST(BytesTest, BadLengthPrefixFails) {
  BufferWriter w;
  w.WriteU32(1000000);  // claims a huge string, no bytes follow
  BufferReader r(w.str());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.failed());
}

TEST(BytesTest, FailureIsSticky) {
  const std::string two_bytes("ab");
  BufferReader r(two_bytes);
  (void)r.ReadU64();
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.ReadU8(), 0);
  EXPECT_TRUE(r.failed());
}

TEST(BytesTest, EmptyBufferAtEnd) {
  // BufferReader holds a reference; the buffer must outlive it.
  const std::string empty;
  BufferReader r(empty);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.failed());
}

TEST(BytesTest, TakeMovesBuffer) {
  BufferWriter w;
  w.WriteString("payload");
  std::string taken = w.Take();
  EXPECT_FALSE(taken.empty());
}

TEST(Fnv1aTest, KnownValues) {
  // FNV-1a 64-bit of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  // Different inputs hash differently.
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(Fnv1aTest, Deterministic) {
  EXPECT_EQ(Fnv1a64("stable storage"), Fnv1a64("stable storage"));
}

}  // namespace
}  // namespace wvote
