#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <tuple>
#include <vector>

namespace wvote {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim(1);
  EXPECT_EQ(sim.Now(), TimePoint());
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, EventsRunInTimestampOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.Schedule(Duration::Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Duration::Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Duration::Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), TimePoint() + Duration::Millis(30));
}

TEST(SimulatorTest, TiesRunInScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Duration::Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ClockAdvancesOnlyThroughEvents) {
  Simulator sim(1);
  sim.Schedule(Duration::Millis(10), [&] { EXPECT_EQ(sim.Now().ToMicros(), 10000); });
  sim.Schedule(Duration::Millis(50), [&] { EXPECT_EQ(sim.Now().ToMicros(), 50000); });
  sim.Run();
}

TEST(SimulatorTest, EventsMayScheduleEvents) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] {
    sim.Schedule(Duration::Millis(1), [&] {
      ++fired;
      sim.Schedule(Duration::Millis(1), [&] { ++fired; });
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(1);
  bool ran = false;
  EventHandle handle = sim.Schedule(Duration::Millis(5), [&] { ran = true; });
  handle.Cancel();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterRunIsHarmless) {
  Simulator sim(1);
  EventHandle handle = sim.Schedule(Duration::Millis(5), [] {});
  sim.Run();
  handle.Cancel();  // no crash
}

TEST(SimulatorTest, DefaultEventHandleIsInert) {
  EventHandle handle;
  handle.Cancel();  // no crash
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(10), [&] { ++fired; });
  sim.Schedule(Duration::Millis(30), [&] { ++fired; });
  const size_t n = sim.RunUntil(TimePoint() + Duration::Millis(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), TimePoint() + Duration::Millis(20));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(20), [&] { ++fired; });
  sim.RunUntil(TimePoint() + Duration::Millis(20));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim(1);
  sim.RunFor(Duration::Millis(10));
  sim.RunFor(Duration::Millis(10));
  EXPECT_EQ(sim.Now(), TimePoint() + Duration::Millis(20));
}

TEST(SimulatorTest, StepOneProcessesExactlyOne) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] { ++fired; });
  sim.Schedule(Duration::Millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.StepOne());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.StepOne());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.StepOne());
}

TEST(SimulatorTest, PendingCount) {
  Simulator sim(1);
  sim.Schedule(Duration::Millis(1), [] {});
  sim.Schedule(Duration::Millis(2), [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.Run();
  EXPECT_EQ(sim.events_pending(), 0u);
}

// --- Timer-wheel specific coverage: ordering across levels, far-future
// overflow, cancellation races against the pooled/recycled nodes. ---

TEST(SimulatorTest, SameTimestampFifoSurvivesCascade) {
  // Events parked in a coarse wheel level get re-dealt into finer levels as
  // the clock approaches; ties must still run in scheduling order.
  Simulator sim(1);
  std::vector<int> order;
  const Duration far = Duration::Seconds(70);  // several levels up
  for (int i = 0; i < 32; ++i) {
    sim.Schedule(far, [&order, i] { order.push_back(i); });
  }
  // An intermediate event forces at least one cascade before the tied ones.
  sim.Schedule(Duration::Seconds(1), [] {});
  sim.Run();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, InterleavedNearAndFarEventsRunInOrder) {
  Simulator sim(1);
  std::vector<int64_t> fire_times;
  // Delays spanning every wheel level, scheduled in scrambled order.
  const int64_t delays_us[] = {70'000'000'000, 3, 900'000, 64, 1,       12'000'000,
                               4095,           65'536,     0,  250'000, 7};
  for (int64_t d : delays_us) {
    sim.Schedule(Duration::Micros(d), [&fire_times, &sim] {
      fire_times.push_back(sim.Now().ToMicros());
    });
  }
  sim.Run();
  ASSERT_EQ(fire_times.size(), std::size(delays_us));
  for (size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
  }
  EXPECT_EQ(fire_times.back(), 70'000'000'000);
}

TEST(SimulatorTest, FarFutureEventDoesNotOverflowTheWheel) {
  // Duration::Infinite() is ~292k years of microseconds; it must park in the
  // top level and stay there, not wrap into some near slot.
  Simulator sim(1);
  bool far_fired = false;
  bool near_fired = false;
  sim.Schedule(Duration::Infinite(), [&] { far_fired = true; });
  sim.Schedule(Duration::Millis(1), [&] { near_fired = true; });
  sim.RunFor(Duration::Seconds(3600));
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(far_fired);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.Run();  // draining does reach it eventually
  EXPECT_TRUE(far_fired);
}

TEST(SimulatorTest, CancelThenFireReapsWithoutRunning) {
  Simulator sim(1);
  bool ran = false;
  EventHandle handle = sim.Schedule(Duration::Millis(5), [&] { ran = true; });
  sim.Schedule(Duration::Millis(10), [] {});
  handle.Cancel();
  EXPECT_EQ(sim.events_pending(), 2u);  // cancellation is lazy
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_processed(), 1u);  // reaping is not processing
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorTest, ReapingCancelledEventsDoesNotAdvanceClock) {
  Simulator sim(1);
  EventHandle handle = sim.Schedule(Duration::Millis(5), [] {});
  handle.Cancel();
  sim.Schedule(Duration::Millis(20), [] {});
  // StepOne must skip the cancelled 5ms event and land on the 20ms one.
  EXPECT_TRUE(sim.StepOne());
  EXPECT_EQ(sim.Now().ToMicros(), 20'000);
}

TEST(SimulatorTest, SchedulingBelowAReapedCancelledEventStillFires) {
  // Regression: reaping a trailing cancelled event cascades the wheel toward
  // its far-future slot; a subsequent insert at a nearer timestamp must not
  // land behind the wheel's advanced position.
  Simulator sim(1);
  EventHandle far = sim.Schedule(Duration::Seconds(1000), [] {});
  far.Cancel();
  EXPECT_FALSE(sim.StepOne());  // reaps the cancelled node, wheel now empty
  EXPECT_EQ(sim.Now(), TimePoint());
  bool ran = false;
  sim.Schedule(Duration::Millis(5), [&] { ran = true; });
  EXPECT_TRUE(sim.StepOne());
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now().ToMicros(), 5'000);
}

TEST(SimulatorTest, StaleHandleCannotCancelRecycledNode) {
  // Fire-then-cancel race: after an event fires, its pooled node is recycled
  // and will be reused by a later Schedule. The stale handle's generation no
  // longer matches, so cancelling it must not touch the new event.
  Simulator sim(1);
  std::vector<EventHandle> stale;
  for (int i = 0; i < 100; ++i) {
    stale.push_back(sim.Schedule(Duration::Millis(1), [] {}));
  }
  sim.Run();
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(Duration::Millis(1), [&fired] { ++fired; });  // reuses nodes
  }
  for (EventHandle& h : stale) {
    h.Cancel();  // all inert: every generation is stale
  }
  sim.Run();
  EXPECT_EQ(fired, 100);
}

TEST(SimulatorTest, CancelInsideOwnCallbackIsHarmless) {
  Simulator sim(1);
  EventHandle self;
  bool ran = false;
  self = sim.Schedule(Duration::Millis(1), [&] {
    ran = true;
    self.Cancel();  // already firing; must not corrupt the pool
  });
  sim.Run();
  EXPECT_TRUE(ran);
  // The node recycles normally and is reusable.
  bool again = false;
  sim.Schedule(Duration::Millis(1), [&again] { again = true; });
  sim.Run();
  EXPECT_TRUE(again);
}

TEST(SimulatorTest, DoubleCancelCountsOnce) {
  Simulator sim(1);
  EventHandle handle = sim.Schedule(Duration::Millis(5), [] {});
  EventHandle copy = handle;  // copies share the event
  handle.Cancel();
  copy.Cancel();
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, PoolReuseKeepsScheduleCorrectAcrossWaves) {
  // Thousands of schedule/fire/recycle cycles across wheel levels: the
  // freelist must never hand out a node that is still parked in the wheel.
  Simulator sim(1);
  int fired = 0;
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 200; ++i) {
      sim.Schedule(Duration::Micros((i % 7) * 950 + 1), [&fired] { ++fired; });
    }
    sim.Run();
  }
  EXPECT_EQ(fired, 50 * 200);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorTest, LargeCallbackCapturesFallBackToHeap) {
  // Captures over the inline buffer take the boxed path; behavior is
  // identical, including cancellation.
  Simulator sim(1);
  struct Big {
    char bytes[200];
  };
  Big big{};
  big.bytes[0] = 42;
  char seen = 0;
  sim.Schedule(Duration::Millis(1), [big, &seen] { seen = big.bytes[0]; });
  EventHandle cancelled = sim.Schedule(Duration::Millis(2), [big, &seen] { seen = 99; });
  cancelled.Cancel();
  sim.Run();
  EXPECT_EQ(seen, 42);
}

TEST(SimulatorTest, SchedulingCountersTrack) {
  Simulator sim(1);
  EventHandle h = sim.Schedule(Duration::Millis(1), [] {});
  sim.Schedule(Duration::Millis(2), [] {});
  h.Cancel();
  sim.Run();
  EXPECT_EQ(sim.stats().events_scheduled, 2u);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
  EXPECT_EQ(sim.stats().events_processed, 1u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim(1);
  sim.RunFor(Duration::Millis(10));
  EXPECT_DEATH(sim.ScheduleAt(TimePoint() + Duration::Millis(5), [] {}), "past");
}

TEST(SimulatorTest, MetronomeFiresAtEveryPeriodMultiple) {
  Simulator sim(1);
  std::vector<int64_t> fires;
  sim.SetMetronome(Duration::Millis(10),
                   [&](TimePoint t) { fires.push_back(t.ToMicros()); });
  // Events at 4, 14, 24ms: each period boundary in between must fire, with
  // the hook observing the deadline's own timestamp.
  int ran = 0;
  for (int ms : {4, 14, 24}) {
    sim.Schedule(Duration::Millis(ms), [&] { ++ran; });
  }
  sim.RunUntil(TimePoint() + Duration::Millis(30));
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(fires, (std::vector<int64_t>{10000, 20000, 30000}));
}

TEST(SimulatorTest, MetronomeFiresWithNoEventsAtAll) {
  // RunUntil advances the clock to its limit even with an empty wheel; the
  // metronome must cover that advance too.
  Simulator sim(1);
  int fires = 0;
  sim.SetMetronome(Duration::Millis(10), [&](TimePoint) { ++fires; });
  sim.RunUntil(TimePoint() + Duration::Millis(35));
  EXPECT_EQ(fires, 3);  // 10, 20, 30ms
}

TEST(SimulatorTest, MetronomeConsumesNoSequenceNumbers) {
  // The load-bearing determinism property: a firing metronome must not
  // touch the event stream. Same seed, same events, with and without a
  // metronome attached -> identical sequence numbers and event stats.
  auto run = [](bool with_metronome) {
    Simulator sim(7);
    int hook_calls = 0;
    if (with_metronome) {
      sim.SetMetronome(Duration::Millis(1), [&](TimePoint) { ++hook_calls; });
    }
    for (int i = 1; i <= 20; ++i) {
      sim.Schedule(Duration::Millis(i * 3), [&sim] {
        sim.Schedule(Duration::Micros(sim.rng().NextBelow(5000)), [] {});
      });
    }
    sim.RunUntil(TimePoint() + Duration::Millis(100));
    return std::make_tuple(sim.next_seq(), sim.stats().events_scheduled,
                           sim.Now().ToMicros(), hook_calls);
  };
  const auto without = run(false);
  const auto with = run(true);
  EXPECT_EQ(std::get<0>(with), std::get<0>(without));
  EXPECT_EQ(std::get<1>(with), std::get<1>(without));
  EXPECT_EQ(std::get<2>(with), std::get<2>(without));
  EXPECT_GT(std::get<3>(with), 0);
}

TEST(SimulatorTest, MetronomeMaxCatchupSkipsStaleDeadlinesKeepingPhase) {
  Simulator sim(1);
  std::vector<int64_t> fires;
  sim.SetMetronome(Duration::Millis(10), [&](TimePoint t) { fires.push_back(t.ToMicros()); },
                   /*max_catchup=*/4);
  // A 1-second idle gap spans 100 deadlines; only the last 4 fire, still
  // aligned to period multiples (observers see the gap in the fire times).
  sim.Schedule(Duration::Seconds(1), [] {});
  sim.Run();
  EXPECT_EQ(fires, (std::vector<int64_t>{970000, 980000, 990000, 1000000}));
}

TEST(SimulatorTest, MetronomeClearAndReanchor) {
  Simulator sim(1);
  int first = 0;
  sim.SetMetronome(Duration::Millis(10), [&](TimePoint) { ++first; });
  sim.RunUntil(TimePoint() + Duration::Millis(25));
  EXPECT_EQ(first, 2);
  sim.ClearMetronome();
  sim.RunUntil(TimePoint() + Duration::Millis(45));
  EXPECT_EQ(first, 2);  // cleared: no more fires
  // A new metronome re-anchors at the first multiple of its period after
  // Now() (45ms) — so 50ms, not a phase carried over from the old one.
  std::vector<int64_t> fires;
  sim.SetMetronome(Duration::Millis(25), [&](TimePoint t) { fires.push_back(t.ToMicros()); });
  sim.RunUntil(TimePoint() + Duration::Millis(80));
  EXPECT_EQ(fires, (std::vector<int64_t>{50000, 75000}));
}

TEST(SimulatorDeathTest, SchedulingFromMetronomeHookAborts) {
  // Metronome hooks are pure observers: an event inserted from inside one
  // could predate the event already popped from the wheel.
  Simulator sim(1);
  sim.SetMetronome(Duration::Millis(1), [&](TimePoint) {
    sim.Schedule(Duration::Millis(1), [] {});
  });
  EXPECT_DEATH(sim.RunUntil(TimePoint() + Duration::Millis(5)), "observer");
}

}  // namespace
}  // namespace wvote
