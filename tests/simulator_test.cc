#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace wvote {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim(1);
  EXPECT_EQ(sim.Now(), TimePoint());
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, EventsRunInTimestampOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.Schedule(Duration::Millis(30), [&] { order.push_back(3); });
  sim.Schedule(Duration::Millis(10), [&] { order.push_back(1); });
  sim.Schedule(Duration::Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), TimePoint() + Duration::Millis(30));
}

TEST(SimulatorTest, TiesRunInScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Duration::Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ClockAdvancesOnlyThroughEvents) {
  Simulator sim(1);
  sim.Schedule(Duration::Millis(10), [&] { EXPECT_EQ(sim.Now().ToMicros(), 10000); });
  sim.Schedule(Duration::Millis(50), [&] { EXPECT_EQ(sim.Now().ToMicros(), 50000); });
  sim.Run();
}

TEST(SimulatorTest, EventsMayScheduleEvents) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] {
    sim.Schedule(Duration::Millis(1), [&] {
      ++fired;
      sim.Schedule(Duration::Millis(1), [&] { ++fired; });
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(1);
  bool ran = false;
  EventHandle handle = sim.Schedule(Duration::Millis(5), [&] { ran = true; });
  handle.Cancel();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterRunIsHarmless) {
  Simulator sim(1);
  EventHandle handle = sim.Schedule(Duration::Millis(5), [] {});
  sim.Run();
  handle.Cancel();  // no crash
}

TEST(SimulatorTest, DefaultEventHandleIsInert) {
  EventHandle handle;
  handle.Cancel();  // no crash
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(10), [&] { ++fired; });
  sim.Schedule(Duration::Millis(30), [&] { ++fired; });
  const size_t n = sim.RunUntil(TimePoint() + Duration::Millis(20));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), TimePoint() + Duration::Millis(20));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilInclusiveOfBoundary) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(20), [&] { ++fired; });
  sim.RunUntil(TimePoint() + Duration::Millis(20));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim(1);
  sim.RunFor(Duration::Millis(10));
  sim.RunFor(Duration::Millis(10));
  EXPECT_EQ(sim.Now(), TimePoint() + Duration::Millis(20));
}

TEST(SimulatorTest, StepOneProcessesExactlyOne) {
  Simulator sim(1);
  int fired = 0;
  sim.Schedule(Duration::Millis(1), [&] { ++fired; });
  sim.Schedule(Duration::Millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.StepOne());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.StepOne());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.StepOne());
}

TEST(SimulatorTest, PendingCount) {
  Simulator sim(1);
  sim.Schedule(Duration::Millis(1), [] {});
  sim.Schedule(Duration::Millis(2), [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.Run();
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim(1);
  sim.RunFor(Duration::Millis(10));
  EXPECT_DEATH(sim.ScheduleAt(TimePoint() + Duration::Millis(5), [] {}), "past");
}

}  // namespace
}  // namespace wvote
