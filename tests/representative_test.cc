// RepresentativeServer: bootstrap, version polls under locks, data reads,
// conditional refresh installs, prefix reads, stale reads.

#include "src/core/representative.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace wvote {
namespace {

class RepresentativeTest : public ::testing::Test {
 protected:
  RepresentativeTest() : sim_(1), net_(&sim_) {
    net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(5)));
    server_ = std::make_unique<RepresentativeServer>(&net_, net_.AddHost("rep"));
    client_host_ = net_.AddHost("client");
    client_ = std::make_unique<RpcEndpoint>(&net_, client_host_);

    config_ = SuiteConfig::MakeUniform("file", {"rep"}, 1, 1);
    auto boot = [](RepresentativeServer* s, SuiteConfig cfg) -> Task<void> {
      EXPECT_TRUE((co_await s->BootstrapSuite(cfg, VersionedValue{1, "genesis"})).ok());
    };
    Spawn(boot(server_.get(), config_));
    sim_.Run();
  }

  TxnId MakeTxn(int64_t ts) {
    TxnId txn;
    txn.timestamp_us = ts;
    txn.serial = static_cast<uint64_t>(ts);
    txn.coordinator = client_host_->id();
    return txn;
  }

  template <typename Req, typename Resp>
  Result<Resp> Call(Req req) {
    auto out = std::make_shared<std::optional<Result<Resp>>>();
    auto runner = [](RpcEndpoint* rpc, HostId to, Req req,
                     std::shared_ptr<std::optional<Result<Resp>>> out) -> Task<void> {
      out->emplace(co_await rpc->Call<Req, Resp>(to, std::move(req), Duration::Seconds(5)));
    };
    Spawn(runner(client_.get(), server_->host()->id(), std::move(req), out));
    sim_.RunFor(Duration::Seconds(10));
    return out->has_value() ? **out : Result<Resp>(InternalError("pending"));
  }

  Simulator sim_;
  Network net_;
  std::unique_ptr<RepresentativeServer> server_;
  Host* client_host_;
  std::unique_ptr<RpcEndpoint> client_;
  SuiteConfig config_;
};

TEST_F(RepresentativeTest, BootstrapInstallsPrefixAndValue) {
  Result<VersionedValue> value = server_->CurrentValue("file");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value().version, 1u);
  EXPECT_EQ(value.value().contents, "genesis");

  Result<SuiteConfig> prefix = server_->CurrentPrefix("file");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value().suite_name, "file");
}

TEST_F(RepresentativeTest, BootstrapRejectsInvalidConfig) {
  SuiteConfig bad = config_;
  bad.write_quorum = 0;
  auto boot = [](RepresentativeServer* s, SuiteConfig cfg) -> Task<void> {
    EXPECT_EQ((co_await s->BootstrapSuite(cfg, VersionedValue{1, "x"})).code(),
              StatusCode::kInvalidArgument);
  };
  Spawn(boot(server_.get(), bad));
  sim_.Run();
}

TEST_F(RepresentativeTest, TxnVersionPollTakesSharedLock) {
  TxnId txn = MakeTxn(100);
  Result<VersionResp> resp = Call<TxnVersionReq, VersionResp>(TxnVersionReq(txn, "file"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().version, 1u);
  EXPECT_EQ(resp.value().config_version, 1u);
  EXPECT_EQ(resp.value().votes, 1);
  EXPECT_TRUE(server_->participant().locks().Holds(
      txn, Participant::DataKey(SuiteValueKey("file")), LockMode::kShared));
}

TEST_F(RepresentativeTest, LockVersionPollTakesExclusiveLock) {
  TxnId txn = MakeTxn(100);
  Result<VersionResp> resp = Call<LockVersionReq, VersionResp>(LockVersionReq(txn, "file"));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(server_->participant().locks().Holds(
      txn, Participant::DataKey(SuiteValueKey("file")), LockMode::kExclusive));
}

TEST_F(RepresentativeTest, UnknownSuitePollsAsVersionZero) {
  Result<VersionResp> resp =
      Call<VersionInquiryReq, VersionResp>(VersionInquiryReq("no-such-suite"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().version, 0u);
  EXPECT_EQ(resp.value().votes, 0);
}

TEST_F(RepresentativeTest, TxnReadReturnsVersionedContents) {
  TxnId txn = MakeTxn(100);
  Result<SuiteReadResp> resp = Call<TxnReadSuiteReq, SuiteReadResp>(TxnReadSuiteReq(txn, "file"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().version, 1u);
  EXPECT_EQ(resp.value().contents, "genesis");
}

TEST_F(RepresentativeTest, StaleReadNeedsNoLock) {
  Result<SuiteReadResp> resp = Call<StaleReadReq, SuiteReadResp>(StaleReadReq("file"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().contents, "genesis");
  EXPECT_EQ(server_->participant().locks().num_locked_keys(), 0u);
}

TEST_F(RepresentativeTest, PrefixReadReturnsSerializedConfig) {
  Result<PrefixReadResp> resp = Call<PrefixReadReq, PrefixReadResp>(PrefixReadReq("file"));
  ASSERT_TRUE(resp.ok());
  Result<SuiteConfig> parsed = SuiteConfig::Parse(resp.value().config_bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().suite_name, "file");
}

TEST_F(RepresentativeTest, RefreshInstallsNewerVersion) {
  Result<RefreshResp> resp =
      Call<RefreshReq, RefreshResp>(RefreshReq("file", 5, "newer contents"));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().installed);
  EXPECT_EQ(server_->CurrentValue("file").value().version, 5u);
  EXPECT_EQ(server_->CurrentValue("file").value().contents, "newer contents");
  EXPECT_EQ(server_->stats().refreshes_installed, 1u);
}

TEST_F(RepresentativeTest, RefreshSkipsOlderOrEqualVersion) {
  Result<RefreshResp> equal = Call<RefreshReq, RefreshResp>(RefreshReq("file", 1, "same"));
  ASSERT_TRUE(equal.ok());
  EXPECT_FALSE(equal.value().installed);
  EXPECT_EQ(server_->CurrentValue("file").value().contents, "genesis");

  (void)Call<RefreshReq, RefreshResp>(RefreshReq("file", 9, "nine"));
  Result<RefreshResp> older = Call<RefreshReq, RefreshResp>(RefreshReq("file", 3, "three"));
  ASSERT_TRUE(older.ok());
  EXPECT_FALSE(older.value().installed);
  EXPECT_EQ(server_->CurrentValue("file").value().version, 9u);
}

TEST_F(RepresentativeTest, RefreshWaitsOutTransientLockThenInstalls) {
  // A client transaction holds an S lock; the refresh (oldest timestamp)
  // queues behind it and installs after release.
  TxnId txn = MakeTxn(100);
  ASSERT_TRUE((Call<TxnVersionReq, VersionResp>(TxnVersionReq(txn, "file"))).ok());

  auto resp = std::make_shared<std::optional<Result<RefreshResp>>>();
  auto runner = [](RpcEndpoint* rpc, HostId to,
                   std::shared_ptr<std::optional<Result<RefreshResp>>> out) -> Task<void> {
    out->emplace(co_await rpc->Call<RefreshReq, RefreshResp>(
        to, RefreshReq("file", 4, "after wait"), Duration::Seconds(30)));
  };
  Spawn(runner(client_.get(), server_->host()->id(), resp));
  sim_.RunFor(Duration::Millis(100));
  EXPECT_FALSE(resp->has_value());  // refresh is waiting on the S lock

  server_->participant().locks().ReleaseAll(txn);
  sim_.RunFor(Duration::Seconds(1));
  ASSERT_TRUE(resp->has_value());
  EXPECT_TRUE((*resp)->value().installed);
  EXPECT_EQ(server_->CurrentValue("file").value().version, 4u);
}

TEST_F(RepresentativeTest, MultipleSuitesCoexist) {
  SuiteConfig other = SuiteConfig::MakeUniform("other", {"rep"}, 1, 1);
  auto boot = [](RepresentativeServer* s, SuiteConfig cfg) -> Task<void> {
    EXPECT_TRUE((co_await s->BootstrapSuite(cfg, VersionedValue{3, "other data"})).ok());
  };
  Spawn(boot(server_.get(), other));
  sim_.Run();
  EXPECT_EQ(server_->CurrentValue("file").value().contents, "genesis");
  EXPECT_EQ(server_->CurrentValue("other").value().contents, "other data");
  EXPECT_EQ(server_->CurrentValue("other").value().version, 3u);
}

}  // namespace
}  // namespace wvote
