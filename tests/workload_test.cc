// Workload generator and fault injector.

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/workload/fault_injector.h"
#include "src/workload/generator.h"

namespace wvote {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (int i = 0; i < 3; ++i) {
      cluster_->AddRepresentative("rep-" + std::to_string(i));
    }
    config_ = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"}, 2, 2);
    ASSERT_TRUE(cluster_->CreateSuite(config_, "init").ok());
    client_ = cluster_->AddClient("client", config_);
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
};

TEST_F(WorkloadTest, ClosedLoopProducesOps) {
  WorkloadOptions opts;
  opts.read_fraction = 0.5;
  opts.mean_think_time = Duration::Millis(50);
  opts.run_length = Duration::Seconds(20);
  WorkloadStats stats;
  SuiteStoreAdapter store(client_);
  Spawn(RunClosedLoopClient(&cluster_->sim(), &store, opts, 1, &stats));
  cluster_->sim().Run();
  EXPECT_GT(stats.reads_ok, 20u);
  EXPECT_GT(stats.writes_ok, 20u);
  EXPECT_EQ(stats.read_failures + stats.write_failures, 0u);
  EXPECT_EQ(stats.read_latency.count(), stats.reads_ok);
  EXPECT_EQ(stats.write_latency.count(), stats.writes_ok);
}

TEST_F(WorkloadTest, ReadFractionRespected) {
  WorkloadOptions opts;
  opts.read_fraction = 0.9;
  opts.mean_think_time = Duration::Millis(20);
  opts.run_length = Duration::Seconds(60);
  WorkloadStats stats;
  SuiteStoreAdapter store(client_);
  Spawn(RunClosedLoopClient(&cluster_->sim(), &store, opts, 2, &stats));
  cluster_->sim().Run();
  const double read_share = static_cast<double>(stats.reads_ok) /
                            static_cast<double>(stats.reads_ok + stats.writes_ok);
  EXPECT_NEAR(read_share, 0.9, 0.04);
}

TEST_F(WorkloadTest, PureReadWorkloadNeverWrites) {
  WorkloadOptions opts;
  opts.read_fraction = 1.0;
  opts.run_length = Duration::Seconds(5);
  WorkloadStats stats;
  SuiteStoreAdapter store(client_);
  Spawn(RunClosedLoopClient(&cluster_->sim(), &store, opts, 3, &stats));
  cluster_->sim().Run();
  EXPECT_EQ(stats.writes_ok + stats.write_failures, 0u);
  EXPECT_GT(stats.reads_ok, 0u);
}

TEST_F(WorkloadTest, ValueSizePadsWrites) {
  WorkloadOptions opts;
  opts.read_fraction = 0.0;
  opts.run_length = Duration::Seconds(5);
  opts.value_size = 4096;
  WorkloadStats stats;
  SuiteStoreAdapter store(client_);
  Spawn(RunClosedLoopClient(&cluster_->sim(), &store, opts, 4, &stats));
  cluster_->sim().Run();
  ASSERT_GT(stats.writes_ok, 0u);
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 4096u);
}

TEST_F(WorkloadTest, StatsMergeAddsUp) {
  WorkloadStats a;
  WorkloadStats b;
  a.reads_ok = 3;
  a.read_latency.Record(Duration::Millis(10));
  b.reads_ok = 4;
  b.write_failures = 2;
  a.MergeFrom(b);
  EXPECT_EQ(a.reads_ok, 7u);
  EXPECT_EQ(a.write_failures, 2u);
  EXPECT_EQ(a.ops_ok(), 7u);
}

TEST_F(WorkloadTest, ThroughputComputation) {
  WorkloadStats s;
  s.reads_ok = 100;
  s.writes_ok = 20;
  EXPECT_DOUBLE_EQ(s.throughput_per_sec(Duration::Seconds(60)), 2.0);
}

TEST(FaultProfileTest, AvailabilityMath) {
  FaultProfile p = ProfileForAvailability(0.9, Duration::Seconds(10));
  // mttf = 10s * 0.9 / 0.1 = 90s
  EXPECT_NEAR(p.mttf.ToSeconds(), 90.0, 0.01);
  EXPECT_EQ(p.mttr, Duration::Seconds(10));
}

TEST(FaultInjectorTest, HostCyclesAndEndsUp) {
  Simulator sim(1);
  Network net(&sim);
  Host* host = net.AddHost("flaky");
  FaultInjectorStats stats;
  const TimePoint end = TimePoint() + Duration::Seconds(600);
  Spawn(RunCrashRestartCycle(&sim, host, Duration::Seconds(20), Duration::Seconds(5), end,
                             7, &stats));
  sim.Run();
  EXPECT_TRUE(host->up());
  EXPECT_GT(stats.crashes, 10u);
  // Steady-state availability 20/25 = 0.8: downtime should be ~20% of 600s.
  EXPECT_NEAR(stats.total_downtime.ToSeconds() / 600.0, 0.2, 0.1);
}

TEST(ZipfianSamplerTest, ZeroExponentIsUniform) {
  ZipfianSampler zipf(4, 0.0);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.ProbabilityOf(k), 0.25, 1e-12);
  }
}

TEST(ZipfianSamplerTest, SkewFavorsLowRanksAndMatchesAnalyticMass) {
  ZipfianSampler zipf(8, 1.0);
  EXPECT_GT(zipf.ProbabilityOf(0), zipf.ProbabilityOf(1));
  EXPECT_GT(zipf.ProbabilityOf(1), zipf.ProbabilityOf(7));
  double total = 0;
  for (size_t k = 0; k < 8; ++k) {
    total += zipf.ProbabilityOf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);

  Rng rng(42);
  std::vector<int> hits(8, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    ++hits[zipf.Sample(&rng)];
  }
  for (size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(hits[k]) / draws, zipf.ProbabilityOf(k), 0.02);
  }
}

TEST(ZipfianSamplerTest, SamplingIsSeedDeterministic) {
  ZipfianSampler zipf(16, 0.99);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(&a), zipf.Sample(&b));
  }
}

TEST(FaultInjectorTest, ApproximatesTargetAvailability) {
  Simulator sim(2);
  Network net(&sim);
  Host* host = net.AddHost("flaky");
  FaultInjectorStats stats;
  const FaultProfile p = ProfileForAvailability(0.95, Duration::Seconds(2));
  const TimePoint end = TimePoint() + Duration::Seconds(3000);
  Spawn(RunCrashRestartCycle(&sim, host, p.mttf, p.mttr, end, 9, &stats));
  sim.Run();
  const double downtime_share = stats.total_downtime.ToSeconds() / 3000.0;
  EXPECT_NEAR(downtime_share, 0.05, 0.025);
}

}  // namespace
}  // namespace wvote
