// Scraping must be pure observation. The scraper rides the simulator
// metronome — no event nodes, no sequence numbers — so a chaos run with
// sim-time scraping enabled must execute the exact same event schedule as
// one without: byte-identical history, checker report, and metrics
// snapshot. These tests pin that contract for fresh runs and for replays
// of minimized failure artifacts.

#include <gtest/gtest.h>

#include "src/chaos/runner.h"

namespace wvote {
namespace {

ChaosRunSpec SmallSpec(uint64_t seed, const std::string& tmpl) {
  ChaosRunSpec spec;
  spec.seed = seed;
  spec.schedule_template = tmpl;
  spec.suite = DefaultSuiteSpecs()[1];  // r2w2x3
  spec.clients = 2;
  spec.ops_per_client = 12;
  return spec;
}

// The artifact with scraping on is the scraping-off artifact plus a
// trailing flight-recorder section (which ParseArtifact ignores).
std::string StripFlightRecorder(const std::string& artifact) {
  const size_t pos = artifact.find("--- flight-recorder");
  return pos == std::string::npos ? artifact : artifact.substr(0, pos);
}

TEST(ScrapeDeterminism, ChaosRunsAreBitExactWithScrapingOnVsOff) {
  for (const std::string& tmpl : {std::string("partitions"), std::string("crash_churn")}) {
    const ChaosRunSpec off = SmallSpec(7, tmpl);
    ChaosRunSpec on = off;
    on.scrape_resolution = Duration::Millis(10);

    ChaosRunOutcome a = RunChaos(off);
    ChaosRunOutcome b = RunChaos(on);

    // Scraping actually happened...
    EXPECT_TRUE(a.timeseries_json.empty()) << tmpl;
    EXPECT_FALSE(b.timeseries_json.empty()) << tmpl;
    EXPECT_FALSE(b.flight_record.empty()) << tmpl;

    // ...and was invisible: schedule, history (with sim timestamps),
    // checker report, and the full metrics snapshot are byte-identical.
    EXPECT_EQ(DumpArtifact(off, a.schedule, a),
              StripFlightRecorder(DumpArtifact(on, b.schedule, b)))
        << tmpl;
    EXPECT_EQ(a.metrics_json, b.metrics_json) << tmpl;
  }
}

TEST(ScrapeDeterminism, MinimizedArtifactReplaysBitExactUnderScraping) {
  // Find a negative-control failure and minimize it, exactly as bench_chaos
  // does before writing an artifact.
  ChaosRunSpec failing_spec;
  FaultSchedule failing_schedule;
  bool found = false;
  for (uint64_t seed = 1; seed <= 8 && !found; ++seed) {
    ChaosRunSpec spec;
    spec.seed = seed;
    spec.schedule_template = "partitions";
    spec.suite = NegativeControlSuite();
    ChaosRunOutcome outcome = RunChaos(spec);
    if (!outcome.check.ok()) {
      failing_spec = spec;
      failing_schedule = outcome.schedule;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "broken quorum config never violated under partitions";
  const FaultSchedule minimized = MinimizeSchedule(failing_spec, failing_schedule);

  // Replaying the minimized schedule with scraping on reproduces the exact
  // verdict of the plain replay — the flight recorder only ADDS a section.
  ChaosRunOutcome plain = RunChaosWithSchedule(failing_spec, minimized);
  ChaosRunSpec scraped_spec = failing_spec;
  scraped_spec.scrape_resolution = Duration::Millis(10);
  ChaosRunOutcome scraped = RunChaosWithSchedule(scraped_spec, minimized);

  ASSERT_FALSE(plain.check.ok());
  EXPECT_EQ(plain.check.Report(minimized), scraped.check.Report(minimized));
  EXPECT_EQ(plain.metrics_json, scraped.metrics_json);
  EXPECT_EQ(DumpArtifact(failing_spec, minimized, plain),
            StripFlightRecorder(DumpArtifact(scraped_spec, minimized, scraped)));
  EXPECT_FALSE(scraped.flight_record.empty());

  // And the scraped artifact parses back to the same replayable half — the
  // flight-recorder section is invisible to ParseArtifact.
  Result<ChaosReplayFile> parsed =
      ParseArtifact(DumpArtifact(scraped_spec, minimized, scraped));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().schedule.events.size(), minimized.events.size());
  // scrape_resolution is deliberately not serialized: a parsed spec replays
  // unscraped by default.
  EXPECT_EQ(parsed.value().spec.scrape_resolution, Duration::Zero());
}

TEST(ScrapeDeterminism, ScrapedRunsAreRepeatable) {
  ChaosRunSpec spec = SmallSpec(5, "partitions");
  spec.scrape_resolution = Duration::Millis(10);
  ChaosRunOutcome a = RunChaos(spec);
  ChaosRunOutcome b = RunChaos(spec);
  // The observability outputs themselves are deterministic too: same seed,
  // same series, same SLO events, same flight record.
  EXPECT_EQ(a.timeseries_json, b.timeseries_json);
  EXPECT_EQ(a.flight_record, b.flight_record);
  EXPECT_EQ(a.slo_breaches, b.slo_breaches);
}

}  // namespace
}  // namespace wvote
