// Randomized safety invariants under concurrency, crashes, and partitions.
//
// Several clients issue transactional reads and writes against one suite
// while representatives crash/restart (and, in the partition variant, the
// network splits) on a random schedule. The history is then checked against
// the guarantees weighted voting must provide regardless of quorum tuning:
//
//   I1  real-time read monotonicity: if read A completes before read B
//       starts, B observes a version >= A's;
//   I2  no fabrication: every read observes the initial contents or the
//       payload of some attempted write;
//   I3  version uniqueness: no version number is ever observed with two
//       different payloads (this is exactly the write-write quorum
//       intersection guarantee — a split-brain would violate it);
//   I4  write durability visible to later reads: a read that starts after a
//       write was acknowledged observes a version high enough to include it;
//   I5  convergence: after all failures heal and activity quiesces, a final
//       read succeeds and returns an acknowledged payload (or the initial
//       contents when no write ever succeeded).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/cluster.h"
#include "src/workload/fault_injector.h"

namespace wvote {
namespace {

struct ReadRecord {
  TimePoint start;
  TimePoint end;
  Version version = 0;
  std::string payload;
};
struct WriteRecord {
  TimePoint start;
  TimePoint end;
  bool acknowledged = false;
  std::string payload;
};

struct History {
  std::vector<ReadRecord> reads;
  std::vector<WriteRecord> writes;
  std::string initial;
};

Task<void> RunHistoryClient(Simulator* sim, SuiteClient* client, History* history,
                            int client_id, int ops, uint64_t seed, double write_fraction) {
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    co_await sim->Sleep(Duration::Micros(rng.NextInRange(1000, 80000)));
    if (rng.NextBernoulli(write_fraction)) {
      WriteRecord rec;
      rec.payload = "w-" + std::to_string(client_id) + "-" + std::to_string(op);
      rec.start = sim->Now();
      Status st = co_await client->WriteOnce(rec.payload, /*retries=*/1);
      rec.end = sim->Now();
      rec.acknowledged = st.ok();
      history->writes.push_back(rec);
    } else {
      ReadRecord rec;
      rec.start = sim->Now();
      SuiteTransaction txn = client->Begin();
      Result<VersionedValue> vv = co_await txn.ReadVersioned();
      Status committed = co_await txn.Commit();
      rec.end = sim->Now();
      if (vv.ok() && committed.ok()) {
        rec.version = vv.value().version;
        rec.payload = std::move(vv.value().contents);
        history->reads.push_back(rec);
      }
    }
  }
}

void CheckInvariants(const History& history) {
  // I1: real-time monotonicity over non-overlapping reads.
  for (size_t i = 0; i < history.reads.size(); ++i) {
    for (size_t j = 0; j < history.reads.size(); ++j) {
      if (history.reads[i].end < history.reads[j].start) {
        EXPECT_LE(history.reads[i].version, history.reads[j].version)
            << "I1 violated: read finishing at " << history.reads[i].end.ToMicros()
            << "us saw v" << history.reads[i].version << " but later read saw v"
            << history.reads[j].version;
      }
    }
  }

  // I2: every observed payload is the initial contents or an attempted write.
  std::set<std::string> attempted;
  for (const WriteRecord& w : history.writes) {
    attempted.insert(w.payload);
  }
  for (const ReadRecord& r : history.reads) {
    if (r.version == 0) {
      continue;
    }
    EXPECT_TRUE(r.payload == history.initial || attempted.count(r.payload) != 0)
        << "I2 violated: fabricated payload \"" << r.payload << "\"";
  }

  // I3: a version maps to exactly one payload.
  std::map<Version, std::string> version_to_payload;
  for (const ReadRecord& r : history.reads) {
    auto [it, inserted] = version_to_payload.emplace(r.version, r.payload);
    if (!inserted) {
      EXPECT_EQ(it->second, r.payload)
          << "I3 violated: version " << r.version << " observed with two payloads";
    }
  }

  // I4: reads starting after an acknowledged write see an advanced version.
  // Find the version each acknowledged write produced where observable.
  std::map<std::string, Version> payload_version;
  for (const auto& [version, payload] : version_to_payload) {
    payload_version[payload] = version;
  }
  for (const WriteRecord& w : history.writes) {
    if (!w.acknowledged) {
      continue;
    }
    auto it = payload_version.find(w.payload);
    if (it == payload_version.end()) {
      continue;  // overwritten before anyone read it
    }
    for (const ReadRecord& r : history.reads) {
      if (w.end < r.start) {
        EXPECT_GE(r.version, it->second)
            << "I4 violated: write \"" << w.payload << "\" (v" << it->second
            << ") acknowledged before read that saw v" << r.version;
      }
    }
  }
}

struct Scenario {
  int num_reps;
  int r;
  int w;
  bool weighted;  // give rep-0 two votes
};

class InvariantTest
    : public ::testing::TestWithParam<std::tuple<Scenario, uint64_t>> {};

TEST_P(InvariantTest, RandomizedHistoryIsSafe) {
  const Scenario scenario = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  ClusterOptions copts;
  copts.seed = seed;
  Cluster cluster(copts);
  SuiteConfig config;
  config.suite_name = "inv";
  std::vector<std::string> hosts;
  for (int i = 0; i < scenario.num_reps; ++i) {
    hosts.push_back("rep-" + std::to_string(i));
    cluster.AddRepresentative(hosts.back());
    config.AddRepresentative(hosts.back(), (scenario.weighted && i == 0) ? 2 : 1);
  }
  config.read_quorum = scenario.r;
  config.write_quorum = scenario.w;
  ASSERT_TRUE(config.Validate().ok());
  ASSERT_TRUE(cluster.CreateSuite(config, "initial-contents").ok());

  History history;
  history.initial = "initial-contents";

  SuiteClientOptions client_opts;
  client_opts.probe_timeout = Duration::Millis(300);
  client_opts.max_gather_rounds = scenario.num_reps + 1;

  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 70;
  for (int c = 0; c < kClients; ++c) {
    SuiteClient* client =
        cluster.AddClient("client-" + std::to_string(c), config, client_opts);
    Spawn(RunHistoryClient(&cluster.sim(), client, &history, c, kOpsPerClient,
                           seed * 100 + static_cast<uint64_t>(c), /*write_fraction=*/0.35));
  }

  // Crash/restart churn on every representative for the first stretch.
  const TimePoint churn_end = cluster.sim().Now() + Duration::Seconds(4);
  for (int i = 0; i < scenario.num_reps; ++i) {
    Spawn(RunCrashRestartCycle(&cluster.sim(), cluster.net().FindHost(hosts[static_cast<size_t>(i)]),
                               Duration::Millis(1500), Duration::Millis(300), churn_end,
                               seed * 999 + static_cast<uint64_t>(i)));
  }

  cluster.sim().Run();

  // The history must be substantial or the invariants check nothing.
  EXPECT_GE(history.reads.size(), 20u);
  uint64_t acknowledged_writes = 0;
  for (const WriteRecord& w : history.writes) {
    acknowledged_writes += w.acknowledged ? 1 : 0;
  }
  EXPECT_GE(acknowledged_writes, 3u);

  CheckInvariants(history);

  // I5: convergence after the dust settles.
  SuiteClientOptions final_opts = client_opts;
  final_opts.strategy = QuorumStrategy::kBroadcast;
  SuiteClient* finalist = cluster.AddClient("finalist", config, final_opts);
  SuiteTransaction txn = finalist->Begin();
  Result<VersionedValue> final_value = cluster.RunTask(txn.ReadVersioned());
  ASSERT_TRUE(final_value.ok()) << final_value.status().ToString();
  (void)cluster.RunTaskFor(txn.Commit(), Duration::Seconds(30));

  std::set<std::string> acknowledged;
  acknowledged.insert("initial-contents");
  for (const WriteRecord& w : history.writes) {
    if (w.acknowledged) {
      acknowledged.insert(w.payload);
    }
  }
  EXPECT_TRUE(acknowledged.count(final_value.value().contents) != 0)
      << "I5 violated: final contents \"" << final_value.value().contents
      << "\" were never acknowledged";
  // The final version is at least as new as anything any read observed.
  Version max_seen = 0;
  for (const ReadRecord& r : history.reads) {
    max_seen = std::max(max_seen, r.version);
  }
  EXPECT_GE(final_value.value().version, max_seen);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, InvariantTest,
    ::testing::Combine(::testing::Values(Scenario{3, 2, 2, false},
                                         Scenario{5, 3, 3, false},
                                         Scenario{5, 1, 5, false},
                                         Scenario{5, 2, 4, false},
                                         Scenario{4, 2, 4, true}),
                       ::testing::Values(11u, 22u, 33u)));

class PartitionInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionInvariantTest, SplitBrainNeverHappens) {
  const uint64_t seed = GetParam();
  ClusterOptions copts;
  copts.seed = seed;
  Cluster cluster(copts);
  std::vector<std::string> hosts;
  for (int i = 0; i < 5; ++i) {
    hosts.push_back("rep-" + std::to_string(i));
    cluster.AddRepresentative(hosts.back());
  }
  SuiteConfig config = SuiteConfig::MakeUniform("inv", hosts, 3, 3);
  ASSERT_TRUE(cluster.CreateSuite(config, "initial-contents").ok());

  History history;
  history.initial = "initial-contents";

  SuiteClientOptions client_opts;
  client_opts.probe_timeout = Duration::Millis(300);
  client_opts.max_gather_rounds = 6;

  // Clients on both sides of the partitions.
  for (int c = 0; c < 4; ++c) {
    SuiteClient* client =
        cluster.AddClient("client-" + std::to_string(c), config, client_opts);
    Spawn(RunHistoryClient(&cluster.sim(), client, &history, c, 30,
                           seed * 100 + static_cast<uint64_t>(c), /*write_fraction=*/0.5));
  }

  // Random partition schedule: every 800ms, re-partition or heal. Clients
  // 0,1 ride with the first group; 2,3 with the second.
  auto reshuffle = [](Simulator* sim, Network* net, uint64_t seed) -> Task<void> {
    Rng rng(seed);
    for (int epoch = 0; epoch < 6; ++epoch) {
      co_await sim->Sleep(Duration::Millis(800));
      if (rng.NextBernoulli(0.3)) {
        net->HealPartition();
        continue;
      }
      // Random split of the 5 representatives.
      std::vector<HostId> side_a = {net->FindHost("client-0")->id(),
                                    net->FindHost("client-1")->id()};
      std::vector<HostId> side_b = {net->FindHost("client-2")->id(),
                                    net->FindHost("client-3")->id()};
      for (int i = 0; i < 5; ++i) {
        HostId rep = net->FindHost("rep-" + std::to_string(i))->id();
        (rng.NextBernoulli(0.5) ? side_a : side_b).push_back(rep);
      }
      net->Partition({side_a, side_b});
    }
    net->HealPartition();
  };
  std::function<Task<void>(Simulator*, Network*, uint64_t)> reshuffle_fn = reshuffle;
  Spawn(reshuffle_fn(&cluster.sim(), &cluster.net(), seed + 5));

  cluster.sim().Run();
  EXPECT_GE(history.reads.size(), 10u);
  CheckInvariants(history);  // I3 here is the split-brain check
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionInvariantTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace wvote
