#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace wvote {
namespace {

TEST(MetricKeyTest, BareNameWithoutLabels) {
  EXPECT_EQ(RenderMetricKey("net.network.messages_sent", {}),
            "net.network.messages_sent");
}

TEST(MetricKeyTest, LabelsRenderSorted) {
  EXPECT_EQ(RenderMetricKey("core.suite_client.probes_sent",
                            {{"suite", "doc"}, {"host", "client"}}),
            "core.suite_client.probes_sent{host=client,suite=doc}");
}

TEST(MetricsRegistryTest, OwnedCounterGetOrCreate) {
  MetricsRegistry registry;
  uint64_t* a = registry.Counter("x.y.z");
  uint64_t* b = registry.Counter("x.y.z");
  EXPECT_EQ(a, b);
  EXPECT_EQ(*a, 0u);
  ++*a;
  *b += 2;
  EXPECT_EQ(registry.Snapshot().counter("x.y.z"), 3u);
}

TEST(MetricsRegistryTest, LabelFanOut) {
  MetricsRegistry registry;
  uint64_t* client = registry.Counter("rpc.endpoint.calls", {{"host", "client"}});
  uint64_t* server = registry.Counter("rpc.endpoint.calls", {{"host", "server"}});
  EXPECT_NE(client, server);
  *client = 5;
  *server = 7;
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("rpc.endpoint.calls{host=client}"), 5u);
  EXPECT_EQ(snap.counter("rpc.endpoint.calls{host=server}"), 7u);
  EXPECT_EQ(snap.SumCounters("rpc.endpoint.calls"), 12u);
  EXPECT_TRUE(registry.Contains("rpc.endpoint.calls", {{"host", "client"}}));
  EXPECT_FALSE(registry.Contains("rpc.endpoint.calls", {{"host", "other"}}));
}

TEST(MetricsRegistryTest, ExternalCounterReadsThrough) {
  MetricsRegistry registry;
  uint64_t source = 0;
  registry.RegisterCounter("a.b.c", {}, &source);
  EXPECT_EQ(registry.Snapshot().counter("a.b.c"), 0u);
  source = 41;
  EXPECT_EQ(registry.Snapshot().counter("a.b.c"), 41u);
}

TEST(MetricsRegistryTest, SameKeySourcesAggregateBySummation) {
  MetricsRegistry registry;
  uint64_t one = 10;
  uint64_t two = 32;
  registry.RegisterCounter("a.b.c", {{"host", "h"}}, &one);
  registry.RegisterCounter("a.b.c", {{"host", "h"}}, &two);
  EXPECT_EQ(registry.Snapshot().counter("a.b.c{host=h}"), 42u);
}

TEST(MetricsRegistryTest, GaugeCallback) {
  MetricsRegistry registry;
  double level = 0.25;
  registry.RegisterGauge("kv.store.fill", {}, [&level]() { return level; });
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauge("kv.store.fill"), 0.25);
  level = 0.75;
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauge("kv.store.fill"), 0.75);
}

TEST(MetricsRegistryTest, HistogramSnapshotAndMerge) {
  MetricsRegistry registry;
  LatencyHistogram h1;
  LatencyHistogram h2;
  h1.Record(Duration::Millis(10));
  h2.Record(Duration::Millis(30));
  registry.RegisterHistogram("w.c.latency", {}, &h1);
  registry.RegisterHistogram("w.c.latency", {}, &h2);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.count("w.c.latency"), 1u);
  const HistogramSnapshot& hs = snap.histograms.at("w.c.latency");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_EQ(hs.mean_us, 20000);
  EXPECT_EQ(hs.min_us, 10000);
}

TEST(MetricsRegistryTest, DeltaSubtractsBase) {
  MetricsRegistry registry;
  uint64_t* ops = registry.Counter("a.b.ops");
  LatencyHistogram* lat = registry.Histogram("a.b.latency");
  *ops = 10;
  lat->Record(Duration::Millis(1));
  MetricsSnapshot before = registry.Snapshot();
  *ops = 17;
  lat->Record(Duration::Millis(2));
  lat->Record(Duration::Millis(3));
  MetricsSnapshot delta = registry.Delta(before);
  EXPECT_EQ(delta.counter("a.b.ops"), 7u);
  EXPECT_EQ(delta.histograms.at("a.b.latency").count, 2u);
  // A key absent from the base counts from zero.
  uint64_t* fresh = registry.Counter("a.b.new");
  *fresh = 4;
  EXPECT_EQ(registry.Delta(before).counter("a.b.new"), 4u);
}

TEST(MetricsRegistryTest, ResetZeroesOwnedAndRunsHooks) {
  MetricsRegistry registry;
  uint64_t* owned = registry.Counter("a.b.owned");
  *owned = 9;
  uint64_t external = 13;
  registry.RegisterCounter("a.b.external", {}, &external);
  registry.AddResetHook([&external]() { external = 0; });
  registry.Reset();
  EXPECT_EQ(*owned, 0u);
  EXPECT_EQ(external, 0u);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("a.b.owned"), 0u);
  EXPECT_EQ(snap.counter("a.b.external"), 0u);
}

TEST(MetricsRegistryTest, NumMetricsCountsDistinctKeys) {
  MetricsRegistry registry;
  registry.Counter("a.b.c");
  registry.Counter("a.b.c");  // same key, no new metric
  registry.Counter("a.b.d");
  uint64_t src = 0;
  registry.RegisterCounter("a.b.e", {}, &src);
  EXPECT_EQ(registry.num_metrics(), 3u);
}

TEST(MetricsSnapshotTest, TextExportOneLinePerMetric) {
  MetricsRegistry registry;
  *registry.Counter("b.first") = 1;
  *registry.Counter("a.second") = 2;
  const std::string text = registry.ExportText();
  // Sorted by key: "a.second" before "b.first".
  EXPECT_NE(text.find("a.second 2\n"), std::string::npos);
  EXPECT_NE(text.find("b.first 1\n"), std::string::npos);
  EXPECT_LT(text.find("a.second"), text.find("b.first"));
}

TEST(MetricsSnapshotTest, JsonExportIsWellFormed) {
  MetricsRegistry registry;
  *registry.Counter("a.ops", {{"host", "h\"q"}}) = 3;
  *registry.Gauge("a.level") = 1.5;
  registry.Histogram("a.lat")->Record(Duration::Millis(5));
  const std::string json = registry.ExportJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.ops{host=h\\\"q}\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace wvote
