// Dynamic reconfiguration: the prefix as replicated data.

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

class ReconfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (int i = 0; i < 5; ++i) {
      cluster_->AddRepresentative("rep-" + std::to_string(i));
    }
    config_ = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"}, 2, 2);
    ASSERT_TRUE(cluster_->CreateSuite(config_, "original").ok());
    admin_ = cluster_->AddClient("admin", config_);
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* admin_ = nullptr;
};

TEST_F(ReconfigTest, QuorumChangeTakesEffect) {
  SuiteConfig next = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"}, 1, 3);
  ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok());
  EXPECT_EQ(admin_->config().read_quorum, 1);
  EXPECT_EQ(admin_->config().write_quorum, 3);
  EXPECT_EQ(admin_->config().config_version, 2u);
  // Still operable under the new rules.
  EXPECT_TRUE(cluster_->RunTask(admin_->WriteOnce("post-reconfig")).ok());
  EXPECT_EQ(cluster_->RunTask(admin_->ReadOnce()).value(), "post-reconfig");
}

TEST_F(ReconfigTest, InvalidNewConfigRejectedLocally) {
  SuiteConfig bad = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"}, 1, 1);
  Status st = cluster_->RunTask(admin_->Reconfigure(bad));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(admin_->config().config_version, 1u);
}

TEST_F(ReconfigTest, NameChangeRejected) {
  SuiteConfig bad = SuiteConfig::MakeUniform("other", {"rep-0", "rep-1", "rep-2"}, 2, 2);
  EXPECT_EQ(cluster_->RunTask(admin_->Reconfigure(bad)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ReconfigTest, ExpansionCopiesDataToNewMembers) {
  ASSERT_TRUE(cluster_->RunTask(admin_->WriteOnce("precious")).ok());
  SuiteConfig next = SuiteConfig::MakeUniform(
      "f", {"rep-0", "rep-1", "rep-2", "rep-3", "rep-4"}, 3, 3);
  ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok());
  // Phase 2 of the reconfiguration commit is asynchronous; drain it so the
  // new members have installed their copies before inspection.
  cluster_->sim().RunFor(Duration::Seconds(1));

  for (int i = 3; i < 5; ++i) {
    Result<VersionedValue> v =
        cluster_->representative("rep-" + std::to_string(i))->CurrentValue("f");
    ASSERT_TRUE(v.ok()) << "rep-" << i;
    EXPECT_EQ(v.value().contents, "precious");
    Result<SuiteConfig> p =
        cluster_->representative("rep-" + std::to_string(i))->CurrentPrefix("f");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value().config_version, 2u);
  }
}

TEST_F(ReconfigTest, NewMembersCarryTheSuiteAfterOldOnesDie) {
  SuiteConfig next = SuiteConfig::MakeUniform(
      "f", {"rep-0", "rep-1", "rep-2", "rep-3", "rep-4"}, 3, 3);
  ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok());
  cluster_->net().FindHost("rep-0")->Crash();
  cluster_->net().FindHost("rep-1")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(200);
  fast.max_gather_rounds = 5;
  SuiteClient* reader = cluster_->AddClient("reader", admin_->config(), fast);
  Result<std::string> r = cluster_->RunTask(reader->ReadOnce());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "original");
}

TEST_F(ReconfigTest, StaleClientAdoptsNewPrefixOnNextOperation) {
  SuiteClient* user = cluster_->AddClient("user", config_);  // old prefix
  SuiteConfig next = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"}, 3, 3);
  ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok());

  Result<std::string> r = cluster_->RunTask(user->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(user->config().config_version, 2u);
  EXPECT_EQ(user->config().read_quorum, 3);
  EXPECT_GE(user->stats().config_refreshes, 1u);
}

TEST_F(ReconfigTest, VoteReweightingChangesQuorumBehavior) {
  SuiteConfig next;
  next.suite_name = "f";
  next.AddRepresentative("rep-0", 3);
  next.AddRepresentative("rep-1", 1);
  next.AddRepresentative("rep-2", 1);
  next.read_quorum = 3;
  next.write_quorum = 3;
  ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok());

  // rep-0 alone now forms both quorums: the suite survives rep-1 and rep-2
  // being down (impossible under the old 1-1-1, r=w=2 assignment).
  cluster_->net().FindHost("rep-1")->Crash();
  cluster_->net().FindHost("rep-2")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(200);
  SuiteClient* writer = cluster_->AddClient("writer", admin_->config(), fast);
  EXPECT_TRUE(cluster_->RunTask(writer->WriteOnce("solo quorum")).ok());
}

TEST_F(ReconfigTest, ShrinkingRemovesMembersFromService) {
  SuiteConfig next = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1"}, 1, 2);
  ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok());
  EXPECT_EQ(admin_->config().representatives.size(), 2u);

  // Per the paper's rule, the new prefix only has to reach a write quorum of
  // the OLD configuration; a removed member outside that quorum may keep its
  // old prefix. Correctness holds regardless: any old-rules gather
  // intersects the old write quorum, sees the newer config_version, and the
  // client refreshes — as this stale-prefix client demonstrates.
  SuiteClient* old_prefix_client = cluster_->AddClient("late-user", config_);
  ASSERT_TRUE(cluster_->RunTask(old_prefix_client->WriteOnce("post-shrink")).ok());
  EXPECT_EQ(old_prefix_client->config().config_version, 2u);
  EXPECT_EQ(old_prefix_client->config().representatives.size(), 2u);

  // The shrunken suite no longer depends on rep-2 at all.
  cluster_->net().FindHost("rep-2")->Crash();
  EXPECT_EQ(cluster_->RunTask(admin_->ReadOnce()).value(), "post-shrink");
}

TEST_F(ReconfigTest, SequentialReconfigurationsIncrementVersion) {
  for (int i = 0; i < 4; ++i) {
    SuiteConfig next = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"},
                                                (i % 2) ? 1 : 2, (i % 2) ? 3 : 2);
    ASSERT_TRUE(cluster_->RunTask(admin_->Reconfigure(next)).ok()) << "step " << i;
  }
  EXPECT_EQ(admin_->config().config_version, 5u);
}

TEST_F(ReconfigTest, ReconfigureUnderConcurrentLoadSucceeds) {
  SuiteClient* worker = cluster_->AddClient("worker", config_);
  auto done = std::make_shared<bool>(false);
  auto load = [](Simulator* sim, SuiteClient* client, std::shared_ptr<bool> done) -> Task<void> {
    for (int i = 0; i < 30 && !*done; ++i) {
      (void)co_await client->WriteOnce("load-" + std::to_string(i), /*retries=*/30);
      co_await sim->Sleep(Duration::Millis(20));
    }
  };
  Spawn(load(&cluster_->sim(), worker, done));
  cluster_->sim().RunFor(Duration::Millis(100));

  SuiteConfig next = SuiteConfig::MakeUniform("f", {"rep-0", "rep-1", "rep-2"}, 3, 3);
  Status st = cluster_->RunTask(admin_->Reconfigure(next));
  *done = true;
  EXPECT_TRUE(st.ok()) << st.ToString();
  cluster_->sim().Run();
  EXPECT_EQ(admin_->config().config_version, 2u);
}

}  // namespace
}  // namespace wvote
