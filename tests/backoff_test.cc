// Jittered exponential backoff: bounds, growth, saturation, and jitter.

#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include <set>

#include "src/sim/random.h"

namespace wvote {
namespace {

TEST(BackoffTest, DelayAlwaysWithinBaseAndCap) {
  Rng rng(7);
  const BackoffPolicy policy(Duration::Millis(1), Duration::Millis(250), 2.0);
  for (int attempt = 0; attempt < 40; ++attempt) {
    for (int trial = 0; trial < 50; ++trial) {
      const Duration d = JitteredBackoff(rng, attempt, policy);
      EXPECT_GE(d, policy.base) << "attempt " << attempt;
      EXPECT_LE(d, policy.cap) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, WindowGrowsMultiplicatively) {
  // With multiplier 2 the window for attempt k is base * 2^(k+1), so the
  // maximum observed delay over many trials should roughly double per
  // attempt until the cap takes over.
  Rng rng(11);
  const BackoffPolicy policy(Duration::Millis(1), Duration::Seconds(10), 2.0);
  for (int attempt = 0; attempt < 6; ++attempt) {
    Duration max_seen = Duration::Zero();
    for (int trial = 0; trial < 400; ++trial) {
      max_seen = std::max(max_seen, JitteredBackoff(rng, attempt, policy));
    }
    const int64_t window_us = policy.base.ToMicros() << (attempt + 1);
    EXPECT_LE(max_seen.ToMicros(), window_us);
    // 400 uniform draws land near the top of the window with overwhelming
    // probability.
    EXPECT_GE(max_seen.ToMicros(), window_us / 2);
  }
}

TEST(BackoffTest, LargeAttemptSaturatesAtCapWithoutOverflow) {
  Rng rng(3);
  const BackoffPolicy policy(Duration::Millis(1), Duration::Millis(100), 2.0);
  for (int trial = 0; trial < 100; ++trial) {
    const Duration d = JitteredBackoff(rng, /*attempt=*/1000, policy);
    EXPECT_GE(d, policy.base);
    EXPECT_LE(d, policy.cap);
  }
}

TEST(BackoffTest, DelaysAreJittered) {
  // Two consecutive draws for the same attempt should (essentially always)
  // differ — a fixed schedule would synchronize competing clients.
  Rng rng(23);
  const BackoffPolicy policy(Duration::Millis(1), Duration::Seconds(1), 2.0);
  std::set<int64_t> distinct;
  for (int trial = 0; trial < 32; ++trial) {
    distinct.insert(JitteredBackoff(rng, 5, policy).ToMicros());
  }
  EXPECT_GT(distinct.size(), 8u);
}

TEST(BackoffTest, DegeneratePolicyStillReturnsPositiveDelay) {
  Rng rng(5);
  // Cap below base: the base floor wins.
  const BackoffPolicy policy(Duration::Millis(10), Duration::Millis(1), 2.0);
  const Duration d = JitteredBackoff(rng, 0, policy);
  EXPECT_EQ(d, Duration::Millis(10));

  // Zero base: clamped to one microsecond, never zero.
  const BackoffPolicy zero(Duration::Zero(), Duration::Zero(), 2.0);
  EXPECT_GE(JitteredBackoff(rng, 0, zero), Duration::Micros(1));
}

TEST(BackoffTest, DefaultPolicyIsSane) {
  Rng rng(1);
  const Duration d = JitteredBackoff(rng, 0);
  EXPECT_GE(d, Duration::Millis(1));
  EXPECT_LE(d, Duration::Millis(250));
}

}  // namespace
}  // namespace wvote
