// Tests for the sim-time time-series layer: the ring-buffered store, the
// sparkline renderer, and the Scraper's sampling plan (counter deltas,
// gauge sampling, histogram windows, exclusions, and plan rebuilds when the
// registry grows mid-run).

#include "src/obs/timeseries.h"

#include <gtest/gtest.h>

#include "src/obs/metrics.h"

namespace wvote {
namespace {

TEST(TimeSeriesStoreTest, TailIsOldestFirstAndRingBounded) {
  TimeSeriesStore store(4);
  TimeSeriesStore::Series* s = store.GetOrCreate("a", SeriesKind::kGauge);
  for (int i = 1; i <= 6; ++i) {
    store.Push(s, static_cast<double>(i));
    store.SealWindow(i * 10);
  }
  // Capacity 4: only the last four windows survive, oldest first.
  EXPECT_EQ(store.Tail("a", 10), (std::vector<double>{3, 4, 5, 6}));
  EXPECT_EQ(store.Tail("a", 2), (std::vector<double>{5, 6}));
  EXPECT_EQ(store.TimesTail(10), (std::vector<int64_t>{30, 40, 50, 60}));
  EXPECT_EQ(store.windows_sealed(), 6u);
  EXPECT_TRUE(store.Tail("missing", 4).empty());
}

TEST(TimeSeriesStoreTest, SumTailAlignsMidRunSeriesAtTheTail) {
  TimeSeriesStore store(8);
  TimeSeriesStore::Series* a = store.GetOrCreate("ops{c=a}", SeriesKind::kCounterDelta);
  store.Push(a, 1);
  store.SealWindow(10);
  store.Push(a, 2);
  store.SealWindow(20);
  // A second label variant appears two windows in: its points are the two
  // most recent windows, and it contributes zero to the older ones.
  TimeSeriesStore::Series* b = store.GetOrCreate("ops{c=b}", SeriesKind::kCounterDelta);
  store.Push(a, 3);
  store.Push(b, 10);
  store.SealWindow(30);
  store.Push(a, 4);
  store.Push(b, 20);
  store.SealWindow(40);
  EXPECT_EQ(store.SumTail("ops", 8), (std::vector<double>{1, 2, 13, 24}));
  EXPECT_TRUE(store.SumTail("other", 8).empty());
}

TEST(TimeSeriesStoreTest, MaxTailTakesPerWindowMaxAcrossVariants) {
  TimeSeriesStore store(8);
  TimeSeriesStore::Series* a = store.GetOrCreate("share{c=a}", SeriesKind::kGauge);
  TimeSeriesStore::Series* b = store.GetOrCreate("share{c=b}", SeriesKind::kGauge);
  store.Push(a, 0.3);
  store.Push(b, 0.9);
  store.SealWindow(10);
  store.Push(a, 0.8);
  store.Push(b, 0.2);
  store.SealWindow(20);
  EXPECT_EQ(store.MaxTail("share", 8), (std::vector<double>{0.9, 0.8}));
}

TEST(TimeSeriesStoreTest, SumHistTailSumsCountsAndMaxesPercentiles) {
  TimeSeriesStore store(8);
  TimeSeriesStore::Series* a = store.GetOrCreate("lat{c=a}", SeriesKind::kHistogram);
  TimeSeriesStore::Series* b = store.GetOrCreate("lat{c=b}", SeriesKind::kHistogram);
  store.PushHist(a, HistPoint{3, 100, 200, 250});
  store.PushHist(b, HistPoint{2, 500, 900, 950});
  store.SealWindow(10);
  const std::vector<HistPoint> tail = store.SumHistTail("lat", 8);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].count, 5u);
  EXPECT_EQ(tail[0].p50_us, 500);
  EXPECT_EQ(tail[0].p99_us, 900);
  EXPECT_EQ(tail[0].max_us, 950);
}

TEST(TimeSeriesStoreTest, ExportJsonCarriesKindsTimesAndPoints) {
  TimeSeriesStore store(4);
  store.set_resolution_us(10000);
  TimeSeriesStore::Series* g = store.GetOrCreate("g", SeriesKind::kGauge);
  TimeSeriesStore::Series* h = store.GetOrCreate("h", SeriesKind::kHistogram);
  store.Push(g, 1.5);
  store.PushHist(h, HistPoint{1, 10, 20, 30});
  store.SealWindow(10000);
  const std::string json = store.ExportJson(4);
  EXPECT_NE(json.find("\"resolution_us\":10000"), std::string::npos);
  EXPECT_NE(json.find("\"t_us\":[10000]"), std::string::npos);
  EXPECT_NE(json.find("\"g\":{\"kind\":\"gauge\",\"points\":[1.5]}"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"kind\":\"histogram\",\"points\":"
                      "[{\"n\":1,\"p50_us\":10,\"p99_us\":20,\"max_us\":30}]}"),
            std::string::npos);
}

TEST(SparklineTest, EmptyFlatAndRamp) {
  EXPECT_EQ(Sparkline({}), "");
  EXPECT_EQ(Sparkline({5, 5, 5}), "▁▁▁");
  const std::string ramp = Sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(ramp, "▁▂▃▄▅▆▇█");
}

TEST(ScraperTest, CounterDeltasPerWindow) {
  MetricsRegistry reg;
  uint64_t ops = 0;
  reg.RegisterCounter("core.test.ops", {}, &ops);
  ScraperOptions opts;
  opts.window_capacity = 8;
  Scraper scraper(&reg, opts);

  ops = 5;
  scraper.ScrapeAt(TimePoint::FromMicros(10000));
  ops = 12;
  scraper.ScrapeAt(TimePoint::FromMicros(20000));
  ops = 12;  // idle window
  scraper.ScrapeAt(TimePoint::FromMicros(30000));
  EXPECT_EQ(scraper.store().Tail("core.test.ops", 8), (std::vector<double>{5, 7, 0}));
  EXPECT_EQ(scraper.scrapes(), 3u);
}

TEST(ScraperTest, CounterResetRestartsTheWindow) {
  MetricsRegistry reg;
  uint64_t ops = 0;
  reg.RegisterCounter("core.test.ops", {}, &ops);
  Scraper scraper(&reg);
  ops = 12;
  scraper.ScrapeAt(TimePoint::FromMicros(10000));
  // Registry reset between scrapes: the total drops below prev, so the
  // delta is the post-reset total, not a huge unsigned wraparound.
  ops = 3;
  scraper.ScrapeAt(TimePoint::FromMicros(20000));
  EXPECT_EQ(scraper.store().Tail("core.test.ops", 8), (std::vector<double>{12, 3}));
}

TEST(ScraperTest, SameKeySourcesAggregateBySummation) {
  MetricsRegistry reg;
  uint64_t a = 2;
  uint64_t b = 3;
  reg.RegisterCounter("core.test.ops", {}, &a);
  reg.RegisterCounter("core.test.ops", {}, &b);
  Scraper scraper(&reg);
  scraper.ScrapeAt(TimePoint::FromMicros(10000));
  EXPECT_EQ(scraper.store().Tail("core.test.ops", 8), (std::vector<double>{5}));
}

TEST(ScraperTest, PlanRebuildsWhenRegistryGrowsAndCarriesDeltas) {
  MetricsRegistry reg;
  uint64_t ops = 10;
  reg.RegisterCounter("core.test.ops", {}, &ops);
  Scraper scraper(&reg);
  scraper.ScrapeAt(TimePoint::FromMicros(10000));

  // A component registers mid-run (e.g. a client added after deploy). The
  // next scrape rebuilds the plan, samples the newcomer, and must NOT spike
  // the existing counter's delta (prev is carried across the rebuild).
  uint64_t late = 7;
  reg.RegisterCounter("core.test.late", {}, &late);
  ops = 14;
  scraper.ScrapeAt(TimePoint::FromMicros(20000));
  EXPECT_EQ(scraper.store().Tail("core.test.ops", 8), (std::vector<double>{10, 4}));
  // The newcomer's series is tail-aligned: one point, at the latest window.
  EXPECT_EQ(scraper.store().Tail("core.test.late", 8), (std::vector<double>{7}));
}

TEST(ScraperTest, GaugesSampleAndExcludedMetricsNeverAppear) {
  MetricsRegistry reg;
  double depth = 0.0;
  reg.RegisterGauge("core.test.depth", {}, [&] { return depth; });
  reg.RegisterGauge("sim.events_per_sec", {}, [] { return 123456.0; });
  Scraper scraper(&reg);
  depth = 2.5;
  scraper.ScrapeAt(TimePoint::FromMicros(10000));
  depth = 4.0;
  scraper.ScrapeAt(TimePoint::FromMicros(20000));
  EXPECT_EQ(scraper.store().Tail("core.test.depth", 8), (std::vector<double>{2.5, 4.0}));
  // The wall-clock gauge is excluded by default: no series, no export entry.
  EXPECT_TRUE(scraper.store().Tail("sim.events_per_sec", 8).empty());
  EXPECT_EQ(scraper.store().ExportJson(8).find("events_per_sec"), std::string::npos);
}

TEST(ScraperTest, HistogramWindowsDoNotLeakAcrossBoundaries) {
  MetricsRegistry reg;
  LatencyHistogram lat;
  reg.RegisterHistogram("workload.test.lat", {}, &lat);
  Scraper scraper(&reg);

  lat.Record(Duration::Millis(10));
  lat.Record(Duration::Millis(10));
  scraper.ScrapeAt(TimePoint::FromMicros(10000));
  lat.Record(Duration::Millis(100));
  scraper.ScrapeAt(TimePoint::FromMicros(20000));
  scraper.ScrapeAt(TimePoint::FromMicros(30000));  // nothing recorded

  const std::vector<HistPoint> tail = scraper.store().HistTail("workload.test.lat", 8);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].count, 2u);
  EXPECT_NEAR(static_cast<double>(tail[0].p99_us), 10000.0, 500.0);
  // The second window holds only the 100ms sample — the 10ms samples from
  // window one must not bleed into its percentiles.
  EXPECT_EQ(tail[1].count, 1u);
  EXPECT_NEAR(static_cast<double>(tail[1].p50_us), 100000.0, 3000.0);
  EXPECT_EQ(tail[2].count, 0u);
}

TEST(ScraperTest, ObserversRunAfterEachSealedWindow) {
  MetricsRegistry reg;
  uint64_t ops = 0;
  reg.RegisterCounter("core.test.ops", {}, &ops);
  Scraper scraper(&reg);
  int calls = 0;
  int64_t last_t = 0;
  uint64_t windows_at_call = 0;
  scraper.AddObserver([&](TimePoint now, const TimeSeriesStore& store) {
    ++calls;
    last_t = now.ToMicros();
    windows_at_call = store.windows_sealed();
  });
  scraper.ScrapeAt(TimePoint::FromMicros(10000));
  scraper.ScrapeAt(TimePoint::FromMicros(20000));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last_t, 20000);
  // The window is sealed before observers run, so they see the new point.
  EXPECT_EQ(windows_at_call, 2u);
}

}  // namespace
}  // namespace wvote
