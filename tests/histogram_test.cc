#include "src/obs/histogram.h"

#include <gtest/gtest.h>

namespace wvote {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), Duration::Zero());
  EXPECT_EQ(h.Percentile(50), Duration::Zero());
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(Duration::Millis(42));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), Duration::Millis(42));
  EXPECT_EQ(h.Min(), Duration::Millis(42));
  EXPECT_EQ(h.Max(), Duration::Millis(42));
  // Bucketed percentile is within one bucket width (~1.1%) of the value.
  EXPECT_NEAR(h.Percentile(50).ToMillis(), 42.0, 1.0);
}

TEST(HistogramTest, MeanIsExact) {
  LatencyHistogram h;
  for (int ms : {10, 20, 30, 40}) {
    h.Record(Duration::Millis(ms));
  }
  EXPECT_EQ(h.Mean(), Duration::Millis(25));
}

TEST(HistogramTest, PercentilesAreOrdered) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(Duration::Micros(i * 100));
  }
  EXPECT_LE(h.Percentile(10), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.Max());
  // Median of uniform 0.1..100ms is ~50ms (within bucket resolution).
  EXPECT_NEAR(h.Percentile(50).ToMillis(), 50.0, 2.0);
}

TEST(HistogramTest, PercentileClampsDomain) {
  LatencyHistogram h;
  h.Record(Duration::Millis(5));
  EXPECT_EQ(h.Percentile(-10), h.Percentile(0));
  EXPECT_EQ(h.Percentile(200), h.Percentile(100));
}

TEST(HistogramTest, ZeroAndHugeSamplesLandInEdgeBuckets) {
  LatencyHistogram h;
  h.Record(Duration::Zero());
  h.Record(Duration::Seconds(100000));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Min(), Duration::Zero());
}

TEST(HistogramTest, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(Duration::Millis(10));
  b.Record(Duration::Millis(30));
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Mean(), Duration::Millis(20));
  EXPECT_EQ(a.Min(), Duration::Millis(10));
  EXPECT_EQ(a.Max(), Duration::Millis(30));
}

TEST(HistogramTest, MergeIntoEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(Duration::Millis(7));
  a.MergeFrom(b);
  EXPECT_EQ(a.Min(), Duration::Millis(7));
  EXPECT_EQ(a.Max(), Duration::Millis(7));
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(Duration::Millis(10));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), Duration::Zero());
}

TEST(HistogramTest, SummaryMentionsCount) {
  LatencyHistogram h;
  h.Record(Duration::Millis(10));
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, DeltaSinceIsolatesTheWindow) {
  LatencyHistogram h;
  h.Record(Duration::Millis(10));
  h.Record(Duration::Millis(10));
  LatencyHistogram prev = h;  // snapshot at window start
  h.Record(Duration::Millis(100));
  h.Record(Duration::Millis(100));
  h.Record(Duration::Millis(100));
  const LatencyHistogram window = h.DeltaSince(prev);
  EXPECT_EQ(window.count(), 3u);
  // Only the 100ms samples landed in the window, so its median sits at the
  // 100ms bucket, not between 10 and 100.
  EXPECT_NEAR(window.Percentile(50).ToMillis(), 100.0, 3.0);
}

TEST(HistogramTest, DeltaSinceEmptyWindow) {
  LatencyHistogram h;
  h.Record(Duration::Millis(10));
  const LatencyHistogram window = h.DeltaSince(h);
  EXPECT_EQ(window.count(), 0u);
}

TEST(HistogramTest, DeltaSinceAfterResetYieldsCurrentContents) {
  LatencyHistogram h;
  h.Record(Duration::Millis(10));
  h.Record(Duration::Millis(20));
  LatencyHistogram prev = h;
  h.Reset();
  h.Record(Duration::Millis(30));
  // prev has more samples than *this: the reset is the window start.
  const LatencyHistogram window = h.DeltaSince(prev);
  EXPECT_EQ(window.count(), 1u);
  EXPECT_NEAR(window.Percentile(50).ToMillis(), 30.0, 1.0);
}

}  // namespace
}  // namespace wvote
