// SuiteClient: the weighted-voting read/write protocol end to end —
// quorum gathering, version currency, caches, failures, conflicts,
// transaction semantics.

#include "src/core/suite_client.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/workload/fault_injector.h"

namespace wvote {
namespace {

class SuiteClientTest : public ::testing::Test {
 protected:
  void Deploy(int num_reps, int r, int w, SuiteClientOptions copts = {}) {
    cluster_ = std::make_unique<Cluster>();
    std::vector<std::string> hosts;
    for (int i = 0; i < num_reps; ++i) {
      hosts.push_back("rep-" + std::to_string(i));
      cluster_->AddRepresentative(hosts.back());
    }
    config_ = SuiteConfig::MakeUniform("f", hosts, r, w);
    ASSERT_TRUE(cluster_->CreateSuite(config_, "v1-contents").ok());
    client_ = cluster_->AddClient("client", config_, copts);
  }

  Host* Rep(int i) { return cluster_->net().FindHost("rep-" + std::to_string(i)); }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
};

TEST_F(SuiteClientTest, ReadReturnsCurrentContents) {
  Deploy(3, 2, 2);
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "v1-contents");
}

TEST_F(SuiteClientTest, ReadYourOwnBufferedWrite) {
  Deploy(3, 2, 2);
  SuiteTransaction txn = client_->Begin();
  ASSERT_TRUE(txn.Write("buffered").ok());
  Result<std::string> r = cluster_->RunTask(txn.Read());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "buffered");
  ASSERT_TRUE(cluster_->RunTask(txn.Commit()).ok());
}

TEST_F(SuiteClientTest, RepeatedReadsAreStableWithinTransaction) {
  Deploy(3, 2, 2);
  SuiteTransaction txn = client_->Begin();
  Result<std::string> first = cluster_->RunTask(txn.Read());
  Result<std::string> second = cluster_->RunTask(txn.Read());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  cluster_->RunTask(txn.Commit());
}

TEST_F(SuiteClientTest, WriteBumpsVersionByOne) {
  Deploy(3, 2, 2);
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("v2")).ok());
  SuiteTransaction txn = client_->Begin();
  Result<VersionedValue> vv = cluster_->RunTask(txn.ReadVersioned());
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(vv.value().version, 2u);
  EXPECT_EQ(vv.value().contents, "v2");
  cluster_->RunTask(txn.Commit());
}

TEST_F(SuiteClientTest, OperationsAfterFinishFail) {
  Deploy(3, 2, 2);
  SuiteTransaction txn = client_->Begin();
  ASSERT_TRUE(cluster_->RunTask(txn.Commit()).ok());
  EXPECT_TRUE(txn.finished());
  Result<std::string> r = cluster_->RunTask(txn.Read());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(txn.Write("late").code(), StatusCode::kFailedPrecondition);
  Status st = cluster_->RunTask(txn.Commit());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(SuiteClientTest, AbortDiscardsBufferedWrite) {
  Deploy(3, 2, 2);
  {
    SuiteTransaction txn = client_->Begin();
    ASSERT_TRUE(txn.Write("discarded").ok());
    Spawn(txn.Abort());
    cluster_->sim().Run();
    EXPECT_TRUE(txn.finished());
  }
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "v1-contents");
}

TEST_F(SuiteClientTest, AbandonedTransactionReleasesLocksViaDestructor) {
  Deploy(3, 2, 2);
  {
    SuiteTransaction txn = client_->Begin();
    Result<std::string> r = cluster_->RunTask(txn.Read());
    ASSERT_TRUE(r.ok());
    // Dropped without Commit/Abort.
  }
  cluster_->sim().RunFor(Duration::Seconds(2));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster_->representative("rep-" + std::to_string(i))
                  ->participant()
                  .locks()
                  .num_locked_keys(),
              0u)
        << "rep-" << i;
  }
}

TEST_F(SuiteClientTest, GatherWidensPastCrashedRepresentatives) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(200);
  copts.max_gather_rounds = 4;
  Deploy(5, 2, 4, copts);
  Rep(0)->Crash();
  Rep(1)->Crash();
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), "v1-contents");
}

TEST_F(SuiteClientTest, InsufficientVotesIsUnavailable) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(200);
  Deploy(3, 2, 2, copts);
  Rep(0)->Crash();
  Rep(1)->Crash();
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce(/*retries=*/1));
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(client_->stats().unavailable, 1u);
}

TEST_F(SuiteClientTest, WriteUnavailableWithoutWriteQuorum) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(200);
  Deploy(3, 1, 3, copts);
  Rep(2)->Crash();
  Status st = cluster_->RunTask(client_->WriteOnce("no", /*retries=*/1));
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // Reads (r=1) still fine.
  EXPECT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
}

TEST_F(SuiteClientTest, ReadObservesLatestCommittedWriteFromOtherClient) {
  Deploy(3, 2, 2);
  SuiteClient* other = cluster_->AddClient("other-client", config_);
  ASSERT_TRUE(cluster_->RunTask(other->WriteOnce("from-other")).ok());
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "from-other");
}

TEST_F(SuiteClientTest, ConflictingWritersSerialize) {
  Deploy(3, 2, 2);
  SuiteClient* other = cluster_->AddClient("other-client", config_);
  auto st1 = std::make_shared<std::optional<Status>>();
  auto st2 = std::make_shared<std::optional<Status>>();
  auto writer = [](SuiteClient* c, std::string v,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await c->WriteOnce(std::move(v), /*retries=*/20);
  };
  Spawn(writer(client_, "from-A", st1));
  Spawn(writer(other, "from-B", st2));
  cluster_->sim().Run();
  ASSERT_TRUE(st1->has_value());
  ASSERT_TRUE(st2->has_value());
  EXPECT_TRUE((*st1)->ok()) << (*st1)->ToString();
  EXPECT_TRUE((*st2)->ok()) << (*st2)->ToString();

  // Both committed: version advanced twice, contents are one of the two.
  SuiteTransaction txn = client_->Begin();
  Result<VersionedValue> vv = cluster_->RunTask(txn.ReadVersioned());
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(vv.value().version, 3u);
  EXPECT_TRUE(vv.value().contents == "from-A" || vv.value().contents == "from-B");
  cluster_->RunTask(txn.Commit());
}

TEST_F(SuiteClientTest, WeightedVotesLetHeavyRepAloneFormReadQuorum) {
  cluster_ = std::make_unique<Cluster>();
  cluster_->AddRepresentative("heavy");
  cluster_->AddRepresentative("light-1");
  cluster_->AddRepresentative("light-2");
  SuiteConfig cfg;
  cfg.suite_name = "f";
  cfg.AddRepresentative("heavy", 2);
  cfg.AddRepresentative("light-1", 1);
  cfg.AddRepresentative("light-2", 1);
  cfg.read_quorum = 2;
  cfg.write_quorum = 3;
  ASSERT_TRUE(cluster_->CreateSuite(cfg, "x").ok());
  client_ = cluster_->AddClient("client", cfg);

  cluster_->net().ResetStats();
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  // One probe (heavy, 2 votes) + one data fetch + async lock release.
  EXPECT_EQ(client_->stats().probes_sent, 1u);
}

TEST_F(SuiteClientTest, CacheServesRepeatedReads) {
  cluster_ = std::make_unique<Cluster>();
  cluster_->AddRepresentative("rep-0");
  SuiteConfig cfg;
  cfg.suite_name = "f";
  cfg.AddRepresentative("rep-0", 1);
  cfg.AddWeakRepresentative("client");
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  ASSERT_TRUE(cluster_->CreateSuite(cfg, "cached-contents").ok());
  client_ = cluster_->AddClient("client", cfg, SuiteClientOptions{}, /*with_cache=*/true);

  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());  // fills cache
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());  // hit
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());  // hit
  EXPECT_EQ(client_->stats().cache_hits, 2u);
  EXPECT_EQ(cluster_->cache_of("client")->stats().hits, 2u);
}

TEST_F(SuiteClientTest, CacheInvalidatedByRemoteWrite) {
  cluster_ = std::make_unique<Cluster>();
  cluster_->AddRepresentative("rep-0");
  SuiteConfig cfg;
  cfg.suite_name = "f";
  cfg.AddRepresentative("rep-0", 1);
  cfg.AddWeakRepresentative("client");
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  ASSERT_TRUE(cluster_->CreateSuite(cfg, "old").ok());
  client_ = cluster_->AddClient("client", cfg, SuiteClientOptions{}, /*with_cache=*/true);
  SuiteClient* writer = cluster_->AddClient("writer", cfg);

  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  ASSERT_TRUE(cluster_->RunTask(writer->WriteOnce("new")).ok());
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "new");  // version check caught the stale cache
}

TEST_F(SuiteClientTest, BackgroundRefreshHealsStaleReplica) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(200);
  copts.strategy = QuorumStrategy::kBroadcast;
  Deploy(3, 2, 2, copts);
  Rep(2)->Crash();
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("while-down")).ok());
  Rep(2)->Restart();
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  cluster_->sim().RunFor(Duration::Seconds(5));
  Result<VersionedValue> at2 = cluster_->representative("rep-2")->CurrentValue("f");
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ(at2.value().contents, "while-down");
}

TEST_F(SuiteClientTest, StatsAccumulate) {
  Deploy(3, 2, 2);
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("w")).ok());
  EXPECT_EQ(client_->stats().reads, 1u);
  EXPECT_EQ(client_->stats().writes, 1u);
  EXPECT_EQ(client_->stats().commits, 2u);
  EXPECT_GE(client_->stats().probes_sent, 4u);
}

// ---------------------------------------------------------------------------
// Fast-path reads: piggybacked contents on version probes.
// ---------------------------------------------------------------------------

TEST_F(SuiteClientTest, FastPathServesReadInOneRoundTrip) {
  Deploy(3, 2, 2);
  for (int i = 0; i < 5; ++i) {
    Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "v1-contents");
  }
  // Every read was served from the piggybacked probe reply: no representative
  // ever saw an explicit data fetch.
  EXPECT_EQ(client_->stats().fastpath_hits, 5u);
  EXPECT_EQ(client_->stats().fastpath_misses, 0u);
  EXPECT_GT(client_->stats().fastpath_bytes_saved, 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster_->representative("rep-" + std::to_string(i))->stats().data_reads, 0u)
        << "rep-" << i;
  }
  // Exactly one probe per round carried data.
  uint64_t piggybacks = 0;
  for (int i = 0; i < 3; ++i) {
    piggybacks += cluster_->representative("rep-" + std::to_string(i))->stats().piggyback_serves;
  }
  EXPECT_EQ(piggybacks, 5u);
}

TEST_F(SuiteClientTest, FastPathDisabledAlwaysFetches) {
  SuiteClientOptions copts;
  copts.fastpath_reads = false;
  Deploy(3, 2, 2, copts);
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  EXPECT_EQ(client_->stats().fastpath_hits, 0u);
  EXPECT_EQ(client_->stats().fastpath_misses, 0u);
  uint64_t data_reads = 0;
  for (int i = 0; i < 3; ++i) {
    data_reads += cluster_->representative("rep-" + std::to_string(i))->stats().data_reads;
  }
  EXPECT_EQ(data_reads, 1u);
}

TEST_F(SuiteClientTest, FastPathFallsBackWhenCheapestRepIsStale) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(200);
  copts.background_refresh = false;  // keep rep-0 stale for the assertion
  Deploy(3, 2, 2, copts);
  // Make rep-0 by far the cheapest so every plan prefers it.
  cluster_->net().SetSymmetricLink(cluster_->net().FindHost("client")->id(),
                                   cluster_->net().FindHost("rep-0")->id(),
                                   LatencyModel::Fixed(Duration::Millis(1)));
  // Write v2 while rep-0 is down: it stays at v1.
  Rep(0)->Crash();
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("new")).ok());
  Rep(0)->Restart();

  // A fresh client (no version hints) bets on the cheapest rep — which is
  // stale. The quorum proves v2 current, so the piggybacked v1 copy must be
  // rejected and the read must fall back to a proven-current member.
  SuiteClient* fresh = cluster_->AddClient("fresh-client", config_, copts);
  Result<std::string> r = cluster_->RunTask(fresh->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "new");
  EXPECT_EQ(fresh->stats().fastpath_hits, 0u);
  EXPECT_GE(fresh->stats().fastpath_misses, 1u);
}

TEST_F(SuiteClientTest, FastPathFallsBackWhenCheapestRepCrashed) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(200);
  copts.max_gather_rounds = 4;
  Deploy(3, 2, 2, copts);
  cluster_->net().SetSymmetricLink(cluster_->net().FindHost("client")->id(),
                                   cluster_->net().FindHost("rep-0")->id(),
                                   LatencyModel::Fixed(Duration::Millis(1)));
  Rep(0)->Crash();
  // The piggyback target never answers; the widened quorum still proves the
  // current version and the read is served via the explicit fetch.
  Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "v1-contents");
  EXPECT_EQ(client_->stats().fastpath_hits, 0u);
  EXPECT_GE(client_->stats().fastpath_misses, 1u);
}

TEST_F(SuiteClientTest, FastPathReadsStayCurrentUnderCrashRestartCycles) {
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(150);
  copts.max_gather_rounds = 4;
  Deploy(3, 2, 2, copts);
  // rep-0 flaps for the whole test: probes aimed at it time out mid-read,
  // and its copy goes stale across every write it misses.
  Spawn(RunCrashRestartCycle(&cluster_->sim(), Rep(0), /*mttf=*/Duration::Millis(400),
                             /*mttr=*/Duration::Millis(400),
                             cluster_->sim().Now() + Duration::Seconds(60), /*seed=*/7));
  for (int i = 0; i < 10; ++i) {
    const std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce(v, /*retries=*/20)).ok()) << v;
    Result<std::string> r = cluster_->RunTask(client_->ReadOnce(/*retries=*/20));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Strict-quorum rule: never a stale value, fast path or not.
    EXPECT_EQ(r.value(), v);
  }
}

TEST_F(SuiteClientTest, FastPathHitRateHighOnStableReadHeavyWorkload) {
  Deploy(5, 2, 4);
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("steady")).ok());
  const int kReads = 100;
  for (int i = 0; i < kReads; ++i) {
    Result<std::string> r = cluster_->RunTask(client_->ReadOnce());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "steady");
  }
  const SuiteClientStats& stats = client_->stats();
  EXPECT_GT(stats.fastpath_hits * 10, static_cast<uint64_t>(kReads) * 9)
      << "hit rate <= 90%: " << stats.fastpath_hits << "/" << kReads;
  // The counters are exported through the cluster-wide registry.
  MetricsSnapshot snap = cluster_->metrics().Snapshot();
  EXPECT_EQ(snap.SumCounters("core.suite_client.fastpath_hits"), stats.fastpath_hits);
  EXPECT_EQ(snap.SumCounters("core.suite_client.fastpath_misses"), stats.fastpath_misses);
}

TEST_F(SuiteClientTest, FetchDataPicksCheapestCurrentRepresentative) {
  // Regression for the stable min-scan in FetchData: with the fast path off,
  // the explicit fetch must go to the cheapest current member, not merely
  // the first or last reply.
  SuiteClientOptions copts;
  copts.fastpath_reads = false;
  copts.strategy = QuorumStrategy::kBroadcast;  // probe everyone
  Deploy(3, 2, 2, copts);
  const HostId client_host = cluster_->net().FindHost("client")->id();
  cluster_->net().SetSymmetricLink(client_host, cluster_->net().FindHost("rep-0")->id(),
                                   LatencyModel::Fixed(Duration::Millis(9)));
  cluster_->net().SetSymmetricLink(client_host, cluster_->net().FindHost("rep-1")->id(),
                                   LatencyModel::Fixed(Duration::Millis(2)));
  cluster_->net().SetSymmetricLink(client_host, cluster_->net().FindHost("rep-2")->id(),
                                   LatencyModel::Fixed(Duration::Millis(6)));
  ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  EXPECT_EQ(cluster_->representative("rep-0")->stats().data_reads, 0u);
  EXPECT_EQ(cluster_->representative("rep-1")->stats().data_reads, 1u);
  EXPECT_EQ(cluster_->representative("rep-2")->stats().data_reads, 0u);
}

TEST_F(SuiteClientTest, CommitSerializesPayloadOncePerCommit) {
  // The commit fan-out sends the versioned value to every write-quorum
  // member (4 hosts here), but the client serializes it exactly once and
  // shares the payload across the per-host intents.
  Deploy(5, 2, 4);
  const std::string contents = "shared payload contents";
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce(contents)).ok());
  const uint64_t one_serialization = VersionedValue{2, contents}.Serialize().size();
  EXPECT_EQ(client_->stats().commit_bytes_serialized, one_serialization)
      << "payload serialized more than once for a 4-member write quorum";

  // A second commit adds exactly one more serialization.
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce(contents)).ok());
  const uint64_t second_serialization = VersionedValue{3, contents}.Serialize().size();
  EXPECT_EQ(client_->stats().commit_bytes_serialized,
            one_serialization + second_serialization);

  // And the counter is exported through the cluster-wide registry.
  MetricsSnapshot snap = cluster_->metrics().Snapshot();
  EXPECT_EQ(snap.SumCounters("core.suite_client.commit_bytes_serialized"),
            client_->stats().commit_bytes_serialized);
}

TEST_F(SuiteClientTest, ConflictRetriesAreCountedAndBackedOff) {
  Deploy(3, 2, 2);
  SuiteClient* other = cluster_->AddClient("other-client", config_);
  auto st1 = std::make_shared<std::optional<Status>>();
  auto st2 = std::make_shared<std::optional<Status>>();
  auto writer = [](SuiteClient* c, std::string v,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await c->WriteOnce(std::move(v), /*retries=*/20);
  };
  Spawn(writer(client_, "from-A", st1));
  Spawn(writer(other, "from-B", st2));
  cluster_->sim().Run();
  ASSERT_TRUE(st1->has_value() && st2->has_value());
  EXPECT_TRUE((*st1)->ok());
  EXPECT_TRUE((*st2)->ok());
  // The writers race for the same exclusive locks: wait-die kills the
  // younger one at least once, and the retry goes through the jittered
  // backoff (counted per attempt).
  const uint64_t total_retries = client_->stats().retries + other->stats().retries;
  EXPECT_GE(total_retries, 1u);
  MetricsSnapshot snap = cluster_->metrics().Snapshot();
  EXPECT_EQ(snap.SumCounters("core.suite_client.retries"), total_retries);
}

TEST_F(SuiteClientTest, PlanCacheBuildsOncePerConfiguration) {
  Deploy(3, 2, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  }
  // One strategy, one config version: the preference order was computed once.
  EXPECT_EQ(client_->stats().plan_builds, 1u);

  // Reconfiguration bumps the config version and invalidates the cache.
  SuiteConfig next = config_;
  next.representatives[0].votes = 2;
  next.read_quorum = 2;
  next.write_quorum = 4;
  ASSERT_TRUE(cluster_->RunTask(client_->Reconfigure(next)).ok());
  const uint64_t builds_after_reconfigure = client_->stats().plan_builds;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
  }
  // Exactly one rebuild under the new configuration, reused by all reads.
  EXPECT_EQ(client_->stats().plan_builds, builds_after_reconfigure + 1);
}

}  // namespace
}  // namespace wvote
