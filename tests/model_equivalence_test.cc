// Simulation ↔ analytic model equivalence sweep.
//
// For a grid of vote assignments, quorum pairs, and latency topologies, the
// live system's measured read and write latency (all representatives up)
// must match the closed-form model within the simulated disk overhead. This
// is the strongest validation that the implementation executes the
// algorithm the analysis describes — any drift in quorum selection, probe
// ordering, or commit pacing shows up as a latency mismatch.

#include <gtest/gtest.h>

#include "src/analysis/model.h"
#include "src/core/cluster.h"

namespace wvote {
namespace {

struct SweepCase {
  std::vector<int> votes;
  std::vector<int> rtt_ms;
  int r;
  int w;
};

class ModelEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelEquivalence, SimulatedLatencyMatchesClosedForm) {
  const SweepCase& c = GetParam();
  ASSERT_EQ(c.votes.size(), c.rtt_ms.size());

  SuiteModel model;
  SuiteConfig config;
  config.suite_name = "eq";
  ClusterOptions copts;
  copts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(100));
  copts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(50));
  Cluster cluster(copts);

  for (size_t i = 0; i < c.votes.size(); ++i) {
    const std::string host = "rep-" + std::to_string(i);
    cluster.AddRepresentative(host);
    config.AddRepresentative(host, c.votes[i]);
    model.reps.push_back(RepModel(host, c.votes[i],
                                  Duration::Millis(c.rtt_ms[i]), 0.99));
  }
  config.read_quorum = model.read_quorum = c.r;
  config.write_quorum = model.write_quorum = c.w;
  ASSERT_TRUE(config.Validate().ok());
  ASSERT_TRUE(cluster.CreateSuite(config, "contents").ok());

  // The closed form models the literal two-phase read (version poll, then
  // data fetch) and the literal three-round-trip write; the fast-path read
  // and asynchronous-phase-2 write variants are checked separately below.
  SuiteClientOptions client_options;
  client_options.fastpath_reads = false;
  SuiteClient* client = cluster.AddClient("client", config, client_options);
  SuiteClient* fast_client;
  {
    SuiteClientOptions fast_options;
    fast_options.fastpath_reads = true;
    fast_client = cluster.AddClient("client-fast", config, fast_options);
  }
  SuiteClient* async_client = cluster.AddClient("client-async", config, client_options);
  cluster.coordinator_of("client")->set_sync_phase2(true);
  cluster.coordinator_of("client-fast")->set_sync_phase2(true);
  ASSERT_FALSE(cluster.coordinator_of("client-async")->sync_phase2());
  for (size_t i = 0; i < c.rtt_ms.size(); ++i) {
    for (const char* who : {"client", "client-fast", "client-async"}) {
      cluster.net().SetSymmetricLink(
          cluster.net().FindHost(who)->id(),
          cluster.net().FindHost("rep-" + std::to_string(i))->id(),
          LatencyModel::Fixed(Duration::Millis(c.rtt_ms[i]) / 2));
    }
  }

  VotingAnalysis analysis(model);
  const double disk_slop_ms = 2.0;  // simulated disk ops the model omits

  // Read.
  TimePoint t0 = cluster.sim().Now();
  Result<std::string> read = cluster.RunTask(client->ReadOnce());
  ASSERT_TRUE(read.ok());
  const double read_ms = (cluster.sim().Now() - t0).ToMillis();
  EXPECT_NEAR(read_ms, analysis.ReadLatencyAllUp(false).ToMillis(), disk_slop_ms)
      << "read latency diverged from model";

  // Write.
  t0 = cluster.sim().Now();
  ASSERT_TRUE(cluster.RunTask(client->WriteOnce("new contents")).ok());
  const double write_ms = (cluster.sim().Now() - t0).ToMillis();
  EXPECT_NEAR(write_ms, analysis.WriteLatencyAllUp().ToMillis(), disk_slop_ms)
      << "write latency diverged from model";

  // Fast-path read: same currency rule, so same bytes — and overlapping the
  // fetch with the poll can only remove a round trip, never add one.
  t0 = cluster.sim().Now();
  Result<std::string> fast_read = cluster.RunTask(fast_client->ReadOnce());
  ASSERT_TRUE(fast_read.ok());
  EXPECT_EQ(fast_read.value(), "new contents");
  const double fast_ms = (cluster.sim().Now() - t0).ToMillis();
  EXPECT_LE(fast_ms, analysis.ReadLatencyAllUp(false).ToMillis() + disk_slop_ms)
      << "fast-path read slower than the two-phase model";

  // Asynchronous phase-2 write: the commit round trip leaves the critical
  // path, so the 2-RTT closed form must match.
  t0 = cluster.sim().Now();
  ASSERT_TRUE(cluster.RunTask(async_client->WriteOnce("async contents")).ok());
  const double async_ms = (cluster.sim().Now() - t0).ToMillis();
  EXPECT_NEAR(async_ms, analysis.WriteLatencyAllUp(/*sync_phase2=*/false).ToMillis(),
              disk_slop_ms)
      << "async-phase-2 write latency diverged from the 2-RTT model";

  // The asynchronously committed write is still a real quorum write: once
  // phase 2 drains, every reader observes it.
  cluster.sim().RunFor(Duration::Seconds(2));
  Result<std::string> after = cluster.RunTask(client->ReadOnce());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "async contents");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelEquivalence,
    ::testing::Values(
        // Uniform votes, assorted quorums and topologies.
        SweepCase{{1, 1, 1}, {10, 20, 40}, 1, 3},
        SweepCase{{1, 1, 1}, {10, 20, 40}, 2, 2},
        SweepCase{{1, 1, 1}, {10, 20, 40}, 3, 2},
        SweepCase{{1, 1, 1, 1, 1}, {10, 20, 40, 80, 160}, 1, 5},
        SweepCase{{1, 1, 1, 1, 1}, {10, 20, 40, 80, 160}, 3, 3},
        SweepCase{{1, 1, 1, 1, 1}, {160, 80, 40, 20, 10}, 2, 4},
        // Weighted assignments: heavy representative near and far.
        SweepCase{{2, 1, 1}, {10, 50, 100}, 2, 3},
        SweepCase{{2, 1, 1}, {100, 10, 50}, 2, 3},
        SweepCase{{3, 1, 1, 1}, {25, 10, 10, 10}, 3, 4},
        // The paper's Example 2 and 3 shapes.
        SweepCase{{2, 1, 1}, {75, 100, 750}, 2, 3},
        SweepCase{{1, 1, 1}, {75, 750, 750}, 1, 3}));

}  // namespace
}  // namespace wvote
