// Cross-suite transactions: one transaction reading and writing several
// independently configured file suites, committed atomically.

#include "src/core/multi_txn.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

class MultiTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (int i = 0; i < 4; ++i) {
      cluster_->AddRepresentative("rep-" + std::to_string(i));
    }
    // Two suites with different membership and quorums.
    accounts_ = SuiteConfig::MakeUniform("accounts", {"rep-0", "rep-1", "rep-2"}, 2, 2);
    audit_ = SuiteConfig::MakeUniform("audit", {"rep-1", "rep-2", "rep-3"}, 1, 3);
    ASSERT_TRUE(cluster_->CreateSuite(accounts_, "balance=100").ok());
    ASSERT_TRUE(cluster_->CreateSuite(audit_, "log:").ok());
    accounts_client_ = cluster_->AddClient("bank", accounts_);
    audit_client_ = cluster_->AddClient("bank", audit_);
  }

  Coordinator* coordinator() { return cluster_->coordinator_of("bank"); }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig accounts_;
  SuiteConfig audit_;
  SuiteClient* accounts_client_ = nullptr;
  SuiteClient* audit_client_ = nullptr;
};

TEST_F(MultiTxnTest, AtomicWriteAcrossTwoSuites) {
  MultiSuiteTransaction txn(coordinator());
  Result<std::string> balance = cluster_->RunTask(txn.Read(accounts_client_));
  ASSERT_TRUE(balance.ok());
  Result<std::string> log = cluster_->RunTask(txn.Read(audit_client_));
  ASSERT_TRUE(log.ok());

  ASSERT_TRUE(txn.Write(accounts_client_, "balance=50").ok());
  ASSERT_TRUE(txn.Write(audit_client_, log.value() + " withdraw 50;").ok());
  Status st = cluster_->RunTask(txn.Commit());
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(cluster_->RunTask(accounts_client_->ReadOnce()).value(), "balance=50");
  EXPECT_EQ(cluster_->RunTask(audit_client_->ReadOnce()).value(), "log: withdraw 50;");
}

TEST_F(MultiTxnTest, ReadYourWritesPerSuite) {
  MultiSuiteTransaction txn(coordinator());
  ASSERT_TRUE(txn.Write(accounts_client_, "balance=0").ok());
  Result<std::string> r = cluster_->RunTask(txn.Read(accounts_client_));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "balance=0");
  // Other suite is unaffected by the buffered write.
  Result<std::string> log = cluster_->RunTask(txn.Read(audit_client_));
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value(), "log:");
  ASSERT_TRUE(cluster_->RunTask(txn.Commit()).ok());
}

TEST_F(MultiTxnTest, AbortLeavesBothSuitesUntouched) {
  MultiSuiteTransaction txn(coordinator());
  ASSERT_TRUE(txn.Write(accounts_client_, "balance=999999").ok());
  ASSERT_TRUE(txn.Write(audit_client_, "log: fraudulent entry").ok());
  Spawn(txn.Abort());
  cluster_->sim().Run();
  EXPECT_TRUE(txn.finished());

  EXPECT_EQ(cluster_->RunTask(accounts_client_->ReadOnce()).value(), "balance=100");
  EXPECT_EQ(cluster_->RunTask(audit_client_->ReadOnce()).value(), "log:");
}

TEST_F(MultiTxnTest, FailedSuiteQuorumAbortsWholeTransaction) {
  // audit (w=3) loses a member: the cross-suite commit must fail and leave
  // accounts untouched too.
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(200);
  fast.max_gather_rounds = 2;
  SuiteClient* accounts_fast = cluster_->AddClient("bank", accounts_, fast);
  SuiteClient* audit_fast = cluster_->AddClient("bank", audit_, fast);
  cluster_->net().FindHost("rep-3")->Crash();

  MultiSuiteTransaction txn(coordinator());
  ASSERT_TRUE(txn.Write(accounts_fast, "balance=1").ok());
  ASSERT_TRUE(txn.Write(audit_fast, "log: should not appear").ok());
  Status st = cluster_->RunTask(txn.Commit());
  EXPECT_FALSE(st.ok());

  cluster_->net().FindHost("rep-3")->Restart();
  EXPECT_EQ(cluster_->RunTask(accounts_client_->ReadOnce()).value(), "balance=100");
  EXPECT_EQ(cluster_->RunTask(audit_client_->ReadOnce()).value(), "log:");
}

TEST_F(MultiTxnTest, SharedHostGetsIntentsForBothSuites) {
  // rep-1 and rep-2 belong to both suites: a commit writing both suites
  // sends them a single prepare with two intents.
  MultiSuiteTransaction txn(coordinator());
  ASSERT_TRUE(txn.Write(accounts_client_, "balance=7").ok());
  ASSERT_TRUE(txn.Write(audit_client_, "log: seven").ok());
  ASSERT_TRUE(cluster_->RunTask(txn.Commit()).ok());
  // Drain the asynchronous phase-2 fan-out before inspecting replica state.
  cluster_->sim().RunFor(Duration::Seconds(1));

  // rep-1 ends up holding both new values (it was in both write quorums or
  // neither; with lowest-latency selection over equal links it is).
  Result<VersionedValue> acc = cluster_->representative("rep-1")->CurrentValue("accounts");
  Result<VersionedValue> aud = cluster_->representative("rep-1")->CurrentValue("audit");
  if (acc.ok() && acc.value().version == 2) {
    EXPECT_EQ(acc.value().contents, "balance=7");
  }
  ASSERT_TRUE(aud.ok());
  EXPECT_EQ(aud.value().contents, "log: seven");  // w=3: always installed
}

TEST_F(MultiTxnTest, OperationsAfterCommitFail) {
  MultiSuiteTransaction txn(coordinator());
  ASSERT_TRUE(cluster_->RunTask(txn.Commit()).ok());
  EXPECT_EQ(txn.Write(accounts_client_, "x").code(), StatusCode::kFailedPrecondition);
  Result<std::string> r = cluster_->RunTask(txn.Read(accounts_client_));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MultiTxnTest, ConcurrentMultiTxnsSerialize) {
  SuiteClient* accounts2 = cluster_->AddClient("bank2", accounts_);
  SuiteClient* audit2 = cluster_->AddClient("bank2", audit_);
  Coordinator* coord2 = cluster_->coordinator_of("bank2");

  auto transfer = [](Simulator* sim, Coordinator* coord, SuiteClient* accounts,
                     SuiteClient* audit, std::string tag,
                     std::shared_ptr<int> commits) -> Task<void> {
    for (int attempt = 0; attempt < 20; ++attempt) {
      MultiSuiteTransaction txn(coord);
      Result<std::string> log = co_await txn.Read(audit);
      if (log.ok() && txn.Write(accounts, "balance by " + tag).ok() &&
          txn.Write(audit, log.value() + " " + tag + ";").ok()) {
        Status st = co_await txn.Commit();
        if (st.ok()) {
          ++*commits;
          co_return;
        }
      } else {
        co_await txn.Abort();
      }
      co_await sim->Sleep(Duration::Millis(sim->rng().NextInRange(5, 50)));
    }
  };
  auto commits = std::make_shared<int>(0);
  std::function<Task<void>(Simulator*, Coordinator*, SuiteClient*, SuiteClient*, std::string,
                           std::shared_ptr<int>)>
      transfer_fn = transfer;
  Spawn(transfer_fn(&cluster_->sim(), coordinator(), accounts_client_, audit_client_, "A",
                    commits));
  Spawn(transfer_fn(&cluster_->sim(), coord2, accounts2, audit2, "B", commits));
  cluster_->sim().Run();
  EXPECT_EQ(*commits, 2);

  // The audit log reflects both committed transfers, in some serial order.
  Result<std::string> log = cluster_->RunTask(audit_client_->ReadOnce());
  ASSERT_TRUE(log.ok());
  EXPECT_NE(log.value().find("A;"), std::string::npos);
  EXPECT_NE(log.value().find("B;"), std::string::npos);
}

}  // namespace
}  // namespace wvote
