// Quorum planner: strategy orderings plus the optimality property of greedy
// selection for the max-latency objective, checked against brute force over
// randomized configurations.

#include "src/core/quorum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/sim/random.h"

namespace wvote {
namespace {

SuiteConfig MakeConfig(std::vector<std::pair<std::string, int>> reps, int r, int w) {
  SuiteConfig cfg;
  cfg.suite_name = "q";
  for (auto& [name, votes] : reps) {
    cfg.AddRepresentative(name, votes);
  }
  cfg.read_quorum = r;
  cfg.write_quorum = w;
  return cfg;
}

std::function<Duration(const std::string&)> LatencyMap(
    std::map<std::string, Duration> latencies) {
  return [latencies](const std::string& name) { return latencies.at(name); };
}

TEST(QuorumPlannerTest, LowestLatencyOrdersByLatency) {
  SuiteConfig cfg = MakeConfig({{"slow", 1}, {"fast", 1}, {"mid", 1}}, 2, 2);
  QuorumPlanner planner(cfg, LatencyMap({{"slow", Duration::Millis(100)},
                                         {"fast", Duration::Millis(1)},
                                         {"mid", Duration::Millis(50)}}));
  auto plan = planner.Plan(2, QuorumStrategy::kLowestLatency);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].host_name, "fast");
  EXPECT_EQ(plan[1].host_name, "mid");
  EXPECT_EQ(plan[2].host_name, "slow");
}

TEST(QuorumPlannerTest, FewestMessagesOrdersByVotes) {
  SuiteConfig cfg = MakeConfig({{"small", 1}, {"big", 3}, {"mid", 2}}, 3, 4);
  QuorumPlanner planner(cfg, LatencyMap({{"small", Duration::Millis(1)},
                                         {"big", Duration::Millis(100)},
                                         {"mid", Duration::Millis(50)}}));
  auto plan = planner.Plan(3, QuorumStrategy::kFewestMessages);
  EXPECT_EQ(plan[0].host_name, "big");
  EXPECT_EQ(plan[1].host_name, "mid");
  EXPECT_EQ(plan[2].host_name, "small");
}

TEST(QuorumPlannerTest, WeakRepresentativesExcluded) {
  SuiteConfig cfg;
  cfg.suite_name = "q";
  cfg.AddRepresentative("voter", 1);
  cfg.AddWeakRepresentative("cache");
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  QuorumPlanner planner(cfg, LatencyMap({{"voter", Duration::Millis(10)},
                                         {"cache", Duration::Millis(1)}}));
  auto plan = planner.Plan(1, QuorumStrategy::kBroadcast);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].host_name, "voter");
}

TEST(QuorumPlannerTest, LatencyTiesBrokenByVotes) {
  SuiteConfig cfg = MakeConfig({{"one", 1}, {"three", 3}}, 2, 3);
  QuorumPlanner planner(cfg, LatencyMap({{"one", Duration::Millis(5)},
                                         {"three", Duration::Millis(5)}}));
  auto plan = planner.Plan(2, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(plan[0].host_name, "three");  // more votes per probe first
}

TEST(QuorumPlannerTest, PrefixCountFindsMinimalPrefix) {
  SuiteConfig cfg = MakeConfig({{"a", 2}, {"b", 1}, {"c", 1}}, 3, 3);
  QuorumPlanner planner(cfg, LatencyMap({{"a", Duration::Millis(1)},
                                         {"b", Duration::Millis(2)},
                                         {"c", Duration::Millis(3)}}));
  auto plan = planner.Plan(3, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 1), 1u);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 3), 2u);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 4), 3u);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 5), 0u);  // unreachable
}

TEST(QuorumPlannerTest, PrefixLatencyIsMaxOfPrefix) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}}, 1, 2);
  QuorumPlanner planner(cfg, LatencyMap({{"a", Duration::Millis(10)},
                                         {"b", Duration::Millis(30)}}));
  auto plan = planner.Plan(2, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(QuorumPlanner::PrefixLatency(plan, 1), Duration::Millis(10));
  EXPECT_EQ(QuorumPlanner::PrefixLatency(plan, 2), Duration::Millis(30));
}

// Property: for the max-latency objective, the greedy (ascending latency)
// prefix is optimal — no subset of representatives with enough votes has a
// smaller maximum latency. Brute-forced over random configurations.
class GreedyOptimality : public ::testing::TestWithParam<int> {};

TEST_P(GreedyOptimality, GreedyPrefixMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.NextInRange(1, 10));
    SuiteConfig cfg;
    cfg.suite_name = "q";
    std::map<std::string, Duration> latencies;
    int total_votes = 0;
    for (int i = 0; i < n; ++i) {
      const std::string name = "r" + std::to_string(i);
      const int votes = static_cast<int>(rng.NextInRange(1, 4));
      cfg.AddRepresentative(name, votes);
      latencies[name] = Duration::Micros(rng.NextInRange(1, 1000));
      total_votes += votes;
    }
    const int required = static_cast<int>(rng.NextInRange(1, total_votes));
    cfg.read_quorum = 1;  // validation not exercised here
    cfg.write_quorum = total_votes;

    QuorumPlanner planner(cfg, LatencyMap(latencies));
    auto plan = planner.Plan(required, QuorumStrategy::kLowestLatency);
    const size_t k = QuorumPlanner::PrefixCount(plan, required);
    ASSERT_GT(k, 0u);
    const Duration greedy = QuorumPlanner::PrefixLatency(plan, k);

    // Brute force: minimum over all subsets with enough votes of the
    // subset's max latency.
    Duration best = Duration::Infinite();
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      int votes = 0;
      Duration worst = Duration::Zero();
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          votes += cfg.representatives[static_cast<size_t>(i)].votes;
          worst = std::max(worst,
                           latencies["r" + std::to_string(i)]);
        }
      }
      if (votes >= required) {
        best = std::min(best, worst);
      }
    }
    EXPECT_EQ(greedy, best) << "trial " << trial << " n=" << n << " required=" << required;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOptimality, ::testing::Range(1, 9));

TEST(QuorumStrategyTest, NamesAreStable) {
  EXPECT_STREQ(QuorumStrategyName(QuorumStrategy::kLowestLatency), "lowest-latency");
  EXPECT_STREQ(QuorumStrategyName(QuorumStrategy::kFewestMessages), "fewest-messages");
  EXPECT_STREQ(QuorumStrategyName(QuorumStrategy::kBroadcast), "broadcast");
}

TEST(PlanCacheTest, ReusesPlanForSameConfigAndStrategy) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}, {"c", 1}}, 2, 2);
  cfg.config_version = 1;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(3)},
                              {"b", Duration::Millis(1)},
                              {"c", Duration::Millis(2)}}),
                  &builds);
  auto p1 = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  auto p2 = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(p1.get(), p2.get());  // same shared plan, not a rebuild
  EXPECT_EQ(builds, 1u);
  ASSERT_EQ(p1->size(), 3u);
  EXPECT_EQ((*p1)[0].host_name, "b");
}

TEST(PlanCacheTest, StrategiesAreCachedIndependently) {
  SuiteConfig cfg = MakeConfig({{"a", 2}, {"b", 1}}, 2, 2);
  cfg.config_version = 1;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(9)}, {"b", Duration::Millis(1)}}),
                  &builds);
  auto latency = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  auto votes = cache.Get(cfg, QuorumStrategy::kFewestMessages);
  EXPECT_EQ(builds, 2u);
  EXPECT_EQ((*latency)[0].host_name, "b");
  EXPECT_EQ((*votes)[0].host_name, "a");
  cache.Get(cfg, QuorumStrategy::kLowestLatency);
  cache.Get(cfg, QuorumStrategy::kFewestMessages);
  EXPECT_EQ(builds, 2u);  // both still cached
}

TEST(PlanCacheTest, ConfigVersionChangeInvalidates) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}}, 1, 2);
  cfg.config_version = 1;
  SuiteConfig next = MakeConfig({{"a", 1}, {"b", 1}, {"c", 1}}, 2, 2);
  next.config_version = 2;

  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)},
                              {"b", Duration::Millis(2)},
                              {"c", Duration::Millis(3)}}),
                  &builds);
  auto old_plan = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 1u);
  // A new config version rebuilds...
  auto new_plan = cache.Get(next, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 2u);
  EXPECT_EQ(new_plan->size(), 3u);
  // ...and stays cached under that version.
  cache.Get(next, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 2u);
  // The old shared plan stays valid for holders that outlive the
  // invalidation (a gather suspended mid-flight).
  EXPECT_EQ(old_plan->size(), 2u);
}

TEST(PlanCacheTest, ExplicitInvalidateForcesRebuild) {
  SuiteConfig cfg = MakeConfig({{"a", 1}}, 1, 1);
  cfg.config_version = 1;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)}}), &builds);
  cache.Get(cfg, QuorumStrategy::kLowestLatency);
  cache.Invalidate();
  cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 2u);
}

}  // namespace
}  // namespace wvote
