// Quorum planner: strategy orderings plus the optimality property of greedy
// selection for the max-latency objective, checked against brute force over
// randomized configurations.

#include "src/core/quorum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/sim/random.h"

namespace wvote {
namespace {

SuiteConfig MakeConfig(std::vector<std::pair<std::string, int>> reps, int r, int w) {
  SuiteConfig cfg;
  cfg.suite_name = "q";
  for (auto& [name, votes] : reps) {
    cfg.AddRepresentative(name, votes);
  }
  cfg.read_quorum = r;
  cfg.write_quorum = w;
  return cfg;
}

std::function<Duration(const std::string&)> LatencyMap(
    std::map<std::string, Duration> latencies) {
  return [latencies](const std::string& name) { return latencies.at(name); };
}

TEST(QuorumPlannerTest, LowestLatencyOrdersByLatency) {
  SuiteConfig cfg = MakeConfig({{"slow", 1}, {"fast", 1}, {"mid", 1}}, 2, 2);
  QuorumPlanner planner(cfg, LatencyMap({{"slow", Duration::Millis(100)},
                                         {"fast", Duration::Millis(1)},
                                         {"mid", Duration::Millis(50)}}));
  auto plan = planner.Plan(2, QuorumStrategy::kLowestLatency);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].host_name, "fast");
  EXPECT_EQ(plan[1].host_name, "mid");
  EXPECT_EQ(plan[2].host_name, "slow");
}

TEST(QuorumPlannerTest, FewestMessagesOrdersByVotes) {
  SuiteConfig cfg = MakeConfig({{"small", 1}, {"big", 3}, {"mid", 2}}, 3, 4);
  QuorumPlanner planner(cfg, LatencyMap({{"small", Duration::Millis(1)},
                                         {"big", Duration::Millis(100)},
                                         {"mid", Duration::Millis(50)}}));
  auto plan = planner.Plan(3, QuorumStrategy::kFewestMessages);
  EXPECT_EQ(plan[0].host_name, "big");
  EXPECT_EQ(plan[1].host_name, "mid");
  EXPECT_EQ(plan[2].host_name, "small");
}

TEST(QuorumPlannerTest, WeakRepresentativesExcluded) {
  SuiteConfig cfg;
  cfg.suite_name = "q";
  cfg.AddRepresentative("voter", 1);
  cfg.AddWeakRepresentative("cache");
  cfg.read_quorum = 1;
  cfg.write_quorum = 1;
  QuorumPlanner planner(cfg, LatencyMap({{"voter", Duration::Millis(10)},
                                         {"cache", Duration::Millis(1)}}));
  auto plan = planner.Plan(1, QuorumStrategy::kBroadcast);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].host_name, "voter");
}

TEST(QuorumPlannerTest, LatencyTiesBrokenByVotes) {
  SuiteConfig cfg = MakeConfig({{"one", 1}, {"three", 3}}, 2, 3);
  QuorumPlanner planner(cfg, LatencyMap({{"one", Duration::Millis(5)},
                                         {"three", Duration::Millis(5)}}));
  auto plan = planner.Plan(2, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(plan[0].host_name, "three");  // more votes per probe first
}

TEST(QuorumPlannerTest, PrefixCountFindsMinimalPrefix) {
  SuiteConfig cfg = MakeConfig({{"a", 2}, {"b", 1}, {"c", 1}}, 3, 3);
  QuorumPlanner planner(cfg, LatencyMap({{"a", Duration::Millis(1)},
                                         {"b", Duration::Millis(2)},
                                         {"c", Duration::Millis(3)}}));
  auto plan = planner.Plan(3, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 1), 1u);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 3), 2u);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 4), 3u);
  EXPECT_EQ(QuorumPlanner::PrefixCount(plan, 5), 0u);  // unreachable
}

TEST(QuorumPlannerTest, PrefixLatencyIsMaxOfPrefix) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}}, 1, 2);
  QuorumPlanner planner(cfg, LatencyMap({{"a", Duration::Millis(10)},
                                         {"b", Duration::Millis(30)}}));
  auto plan = planner.Plan(2, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(QuorumPlanner::PrefixLatency(plan, 1), Duration::Millis(10));
  EXPECT_EQ(QuorumPlanner::PrefixLatency(plan, 2), Duration::Millis(30));
}

// Property: for the max-latency objective, the greedy (ascending latency)
// prefix is optimal — no subset of representatives with enough votes has a
// smaller maximum latency. Brute-forced over random configurations.
class GreedyOptimality : public ::testing::TestWithParam<int> {};

TEST_P(GreedyOptimality, GreedyPrefixMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.NextInRange(1, 10));
    SuiteConfig cfg;
    cfg.suite_name = "q";
    std::map<std::string, Duration> latencies;
    int total_votes = 0;
    for (int i = 0; i < n; ++i) {
      const std::string name = "r" + std::to_string(i);
      const int votes = static_cast<int>(rng.NextInRange(1, 4));
      cfg.AddRepresentative(name, votes);
      latencies[name] = Duration::Micros(rng.NextInRange(1, 1000));
      total_votes += votes;
    }
    const int required = static_cast<int>(rng.NextInRange(1, total_votes));
    cfg.read_quorum = 1;  // validation not exercised here
    cfg.write_quorum = total_votes;

    QuorumPlanner planner(cfg, LatencyMap(latencies));
    auto plan = planner.Plan(required, QuorumStrategy::kLowestLatency);
    const size_t k = QuorumPlanner::PrefixCount(plan, required);
    ASSERT_GT(k, 0u);
    const Duration greedy = QuorumPlanner::PrefixLatency(plan, k);

    // Brute force: minimum over all subsets with enough votes of the
    // subset's max latency.
    Duration best = Duration::Infinite();
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      int votes = 0;
      Duration worst = Duration::Zero();
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          votes += cfg.representatives[static_cast<size_t>(i)].votes;
          worst = std::max(worst,
                           latencies["r" + std::to_string(i)]);
        }
      }
      if (votes >= required) {
        best = std::min(best, worst);
      }
    }
    EXPECT_EQ(greedy, best) << "trial " << trial << " n=" << n << " required=" << required;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOptimality, ::testing::Range(1, 9));

TEST(QuorumStrategyTest, NamesAreStable) {
  EXPECT_STREQ(QuorumStrategyName(QuorumStrategy::kLowestLatency), "lowest-latency");
  EXPECT_STREQ(QuorumStrategyName(QuorumStrategy::kFewestMessages), "fewest-messages");
  EXPECT_STREQ(QuorumStrategyName(QuorumStrategy::kBroadcast), "broadcast");
}

TEST(PlanCacheTest, ReusesPlanForSameConfigAndStrategy) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}, {"c", 1}}, 2, 2);
  cfg.config_version = 1;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(3)},
                              {"b", Duration::Millis(1)},
                              {"c", Duration::Millis(2)}}),
                  &builds);
  auto p1 = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  auto p2 = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(p1.get(), p2.get());  // same shared plan, not a rebuild
  EXPECT_EQ(builds, 1u);
  ASSERT_EQ(p1->order.size(), 3u);
  EXPECT_EQ(p1->order[0].host_name, "b");
  EXPECT_FALSE(p1->probabilistic());
}

TEST(PlanCacheTest, StrategiesAreCachedIndependently) {
  SuiteConfig cfg = MakeConfig({{"a", 2}, {"b", 1}}, 2, 2);
  cfg.config_version = 1;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(9)}, {"b", Duration::Millis(1)}}),
                  &builds);
  auto latency = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  auto votes = cache.Get(cfg, QuorumStrategy::kFewestMessages);
  EXPECT_EQ(builds, 2u);
  EXPECT_EQ(latency->order[0].host_name, "b");
  EXPECT_EQ(votes->order[0].host_name, "a");
  cache.Get(cfg, QuorumStrategy::kLowestLatency);
  cache.Get(cfg, QuorumStrategy::kFewestMessages);
  EXPECT_EQ(builds, 2u);  // both still cached
}

TEST(PlanCacheTest, ConfigVersionChangeInvalidates) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}}, 1, 2);
  cfg.config_version = 1;
  SuiteConfig next = MakeConfig({{"a", 1}, {"b", 1}, {"c", 1}}, 2, 2);
  next.config_version = 2;

  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)},
                              {"b", Duration::Millis(2)},
                              {"c", Duration::Millis(3)}}),
                  &builds);
  auto old_plan = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 1u);
  // A new config version rebuilds...
  auto new_plan = cache.Get(next, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 2u);
  EXPECT_EQ(new_plan->order.size(), 3u);
  // ...and stays cached under that version.
  cache.Get(next, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 2u);
  // The old shared plan stays valid for holders that outlive the
  // invalidation (a gather suspended mid-flight).
  EXPECT_EQ(old_plan->order.size(), 2u);
}

TEST(PlanCacheTest, ExplicitInvalidateForcesRebuild) {
  SuiteConfig cfg = MakeConfig({{"a", 1}}, 1, 1);
  cfg.config_version = 1;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)}}), &builds);
  cache.Get(cfg, QuorumStrategy::kLowestLatency);
  cache.Invalidate();
  cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_EQ(builds, 2u);
}

TEST(PlanCacheTest, CapacityChangeInvalidatesWithoutVersionBump) {
  SuiteConfig cfg = MakeConfig({{"a", 1}, {"b", 1}, {"c", 1}}, 2, 2);
  cfg.config_version = 7;
  uint64_t builds = 0;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)},
                              {"b", Duration::Millis(2)},
                              {"c", Duration::Millis(3)}}),
                  &builds);
  QuorumStrategySpec spec(QuorumStrategy::kLoadOptimal);
  auto p1 = cache.Get(cfg, spec);
  EXPECT_EQ(builds, 1u);

  // Same config version, new capacity vector: the cached distribution is
  // tuned for the old capacities and must be rebuilt.
  spec.capacities = {{"a", 2.0}};
  auto p2 = cache.Get(cfg, spec);
  EXPECT_EQ(builds, 2u);
  EXPECT_NE(p1.get(), p2.get());

  // Same tuning again: cached.
  cache.Get(cfg, spec);
  EXPECT_EQ(builds, 2u);

  // f_resilience is tuning too.
  spec.f_resilience = 1;
  cache.Get(cfg, spec);
  EXPECT_EQ(builds, 3u);
}

TEST(PlanCacheTest, ProbabilisticPoliciesCarryDistributions) {
  SuiteConfig cfg = MakeConfig({{"a", 2}, {"b", 1}, {"c", 1}, {"d", 1}}, 2, 4);
  cfg.config_version = 1;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)},
                              {"b", Duration::Millis(2)},
                              {"c", Duration::Millis(3)},
                              {"d", Duration::Millis(4)}}));
  auto strategy = cache.Get(cfg, QuorumStrategy::kLoadOptimal);
  ASSERT_TRUE(strategy->probabilistic());
  const QuorumDistribution* read = strategy->DistributionFor(cfg.read_quorum);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->target_votes, 2);
  EXPECT_EQ(read->quorums.size(), 4u);  // {a}, {b,c}, {b,d}, {c,d}
  EXPECT_LE(read->max_share, 0.35);     // the load-optimal acceptance bound
  const QuorumDistribution* write = strategy->DistributionFor(cfg.write_quorum);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->target_votes, 4);

  // Deterministic policies share the cache but carry no distribution.
  auto det = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  EXPECT_FALSE(det->probabilistic());
  EXPECT_EQ(det->DistributionFor(cfg.read_quorum), nullptr);
}

TEST(ProbingStrategyTest, SamplingIsSeedDeterministic) {
  SuiteConfig cfg = MakeConfig({{"a", 2}, {"b", 1}, {"c", 1}, {"d", 1}}, 2, 4);
  cfg.config_version = 1;
  PlanCache cache(LatencyMap({{"a", Duration::Millis(1)},
                              {"b", Duration::Millis(2)},
                              {"c", Duration::Millis(3)},
                              {"d", Duration::Millis(4)}}));
  auto strategy = cache.Get(cfg, QuorumStrategy::kLoadOptimal);
  ASSERT_TRUE(strategy->probabilistic());

  Rng rng_a(1234);
  Rng rng_b(1234);
  bool saw_non_prefix = false;
  for (int i = 0; i < 200; ++i) {
    std::vector<uint16_t> sa = strategy->SampleOrder(cfg.read_quorum, &rng_a);
    std::vector<uint16_t> sb = strategy->SampleOrder(cfg.read_quorum, &rng_b);
    // Same seed, same draw index -> identical probe order: chaos replays
    // of probabilistic strategies stay bit-exact.
    EXPECT_EQ(sa, sb);
    // Every sample is a permutation of the full candidate list (widening
    // fallbacks keep availability identical to deterministic probing).
    std::vector<uint16_t> sorted = sa;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<uint16_t>{0, 1, 2, 3}));
    // The sampled prefix really is a quorum.
    int votes = 0;
    for (uint16_t idx : sa) {
      if (votes >= cfg.read_quorum) {
        break;
      }
      votes += strategy->order[idx].votes;
    }
    EXPECT_GE(votes, cfg.read_quorum);
    if (sa[0] != 0) {
      saw_non_prefix = true;
    }
  }
  // The distribution actually spreads probes (pi_{a} ~= 0.4, so ~60% of
  // draws start elsewhere; 200 draws without one is ~1e-80).
  EXPECT_TRUE(saw_non_prefix);

  // Deterministic policies consume no randomness and return no sample.
  auto det = cache.Get(cfg, QuorumStrategy::kLowestLatency);
  Rng rng_c(99);
  const uint64_t before = rng_c.NextUint64();
  Rng rng_d(99);
  (void)rng_d.NextUint64();
  EXPECT_TRUE(det->SampleOrder(cfg.read_quorum, &rng_d).empty());
  Rng rng_e(99);
  (void)rng_e.NextUint64();
  EXPECT_EQ(rng_d.NextUint64(), rng_e.NextUint64());
  (void)before;
}

}  // namespace
}  // namespace wvote
