// Cross-layer consistency: the registry's snapshot must agree with the
// per-component `stats()` accessors it reads through, and counters from
// different layers must satisfy the conservation laws a healthy (zero-loss,
// no-crash) run implies.

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/obs/metrics.h"

namespace wvote {
namespace {

class MetricsConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
      cluster_->AddRepresentative(name);
    }
    config_ = SuiteConfig::MakeUniform("alpha", {"rep-a", "rep-b", "rep-c"},
                                       /*r=*/2, /*w=*/2);
    ASSERT_TRUE(cluster_->CreateSuite(config_, "genesis").ok());
    client_ = cluster_->AddClient("client-1", config_);
  }

  void RunMixedWorkload(int ops) {
    for (int i = 0; i < ops; ++i) {
      ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("v" + std::to_string(i))).ok());
      ASSERT_TRUE(cluster_->RunTask(client_->ReadOnce()).ok());
    }
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
};

TEST_F(MetricsConsistencyTest, SnapshotMatchesStatsAccessors) {
  RunMixedWorkload(5);
  MetricsSnapshot snap = cluster_->metrics().Snapshot();

  const SuiteClientStats& cs = client_->stats();
  EXPECT_EQ(snap.counter("core.suite_client.reads{host=client-1,suite=alpha}"),
            cs.reads);
  EXPECT_EQ(snap.counter("core.suite_client.writes{host=client-1,suite=alpha}"),
            cs.writes);
  EXPECT_EQ(snap.counter("core.suite_client.commits{host=client-1,suite=alpha}"),
            cs.commits);
  EXPECT_EQ(snap.counter("core.suite_client.probes_sent{host=client-1,suite=alpha}"),
            cs.probes_sent);

  const NetworkStats& net = cluster_->net().stats();
  EXPECT_EQ(snap.counter("net.network.messages_sent"), net.messages_sent);
  EXPECT_EQ(snap.counter("net.network.bytes_sent"), net.bytes_sent);

  const RpcStats& rpc = client_->rpc()->stats();
  EXPECT_EQ(snap.counter("rpc.endpoint.calls_started{host=client-1}"),
            rpc.calls_started);
  EXPECT_EQ(snap.counter("rpc.endpoint.calls_ok{host=client-1}"), rpc.calls_ok);

  EXPECT_GT(cs.reads, 0u);
  EXPECT_GT(net.messages_sent, 0u);
  EXPECT_GT(rpc.calls_started, 0u);
}

TEST_F(MetricsConsistencyTest, HealthyRunConservationLaws) {
  RunMixedWorkload(8);
  // Drain background refreshes so no RPC is mid-flight when we count.
  cluster_->sim().RunFor(Duration::Seconds(5));
  MetricsSnapshot snap = cluster_->metrics().Snapshot();

  // No host is down, no links lose, no partitions: every message sent is
  // delivered.
  EXPECT_EQ(snap.counter("net.network.messages_sent"),
            snap.counter("net.network.messages_delivered"));
  EXPECT_EQ(snap.SumCounters("net.network.dropped_loss"), 0u);
  EXPECT_EQ(snap.SumCounters("net.network.dropped_dest_down"), 0u);

  // Each RPC costs one request and one response message, so the network
  // total is the calls every endpoint started plus the requests every
  // endpoint answered.
  EXPECT_EQ(snap.counter("net.network.messages_sent"),
            snap.SumCounters("rpc.endpoint.calls_started") +
                snap.SumCounters("rpc.endpoint.requests_handled"));

  // With no timeouts, every started call completes.
  EXPECT_EQ(snap.SumCounters("rpc.endpoint.calls_started"),
            snap.SumCounters("rpc.endpoint.calls_ok") +
                snap.SumCounters("rpc.endpoint.calls_aborted"));

  // The client's commits are exactly its coordinator's committed
  // transactions — two layers counting the same events.
  EXPECT_EQ(snap.counter("core.suite_client.commits{host=client-1,suite=alpha}"),
            snap.counter("txn.coordinator.committed{host=client-1}"));
}

TEST_F(MetricsConsistencyTest, DeltaIsolatesAPhase) {
  RunMixedWorkload(3);
  MetricsSnapshot before = cluster_->metrics().Snapshot();
  RunMixedWorkload(5);
  MetricsSnapshot delta = cluster_->metrics().Delta(before);
  EXPECT_EQ(delta.counter("core.suite_client.writes{host=client-1,suite=alpha}"), 5u);
  EXPECT_EQ(delta.counter("core.suite_client.reads{host=client-1,suite=alpha}"), 5u);
}

TEST_F(MetricsConsistencyTest, RegistryResetReachesEveryLayer) {
  RunMixedWorkload(2);
  ASSERT_GT(client_->stats().reads, 0u);
  ASSERT_GT(cluster_->net().stats().messages_sent, 0u);
  cluster_->metrics().Reset();
  EXPECT_EQ(client_->stats().reads, 0u);
  EXPECT_EQ(client_->rpc()->stats().calls_started, 0u);
  EXPECT_EQ(cluster_->net().stats().messages_sent, 0u);
  EXPECT_EQ(cluster_->metrics().Snapshot().SumCounters("core.suite_client.reads"), 0u);
}

}  // namespace
}  // namespace wvote
