// Causal tracing: span lifecycle, tree structure across retries, slow-op
// dumps, and the Chrome-trace JSON export.

#include "src/trace/span.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/trace/trace.h"

namespace wvote {
namespace {

TEST(TracerTest, DisabledTracerIsInertAndFree) {
  Simulator sim(1);
  Tracer tracer(&sim);
  TraceContext root = tracer.StartRoot(0, "client.read");
  EXPECT_FALSE(root.valid());
  TraceContext child = tracer.StartChild(root, 0, "phase.gather");
  EXPECT_FALSE(child.valid());
  tracer.Annotate(root, "ignored");
  tracer.End(root);
  EXPECT_EQ(tracer.spans_started(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, RecordsTreeWithSimulatedDurations) {
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);

  TraceContext root = tracer.StartRoot(7, "client.write");
  ASSERT_TRUE(root.valid());
  sim.RunFor(Duration::Millis(5));
  TraceContext child = tracer.StartChild(root, 3, "phase.prepare");
  tracer.Annotate(child, "writers=2");
  sim.RunFor(Duration::Millis(10));
  tracer.EndWith(child, "all voted yes");
  tracer.End(root);

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const Span& prepare = spans[0];  // completed first
  const Span& write = spans[1];
  EXPECT_EQ(prepare.name, "phase.prepare");
  EXPECT_EQ(prepare.parent_id, write.span_id);
  EXPECT_EQ(prepare.trace_id, write.trace_id);
  EXPECT_EQ(prepare.host, 3);
  EXPECT_EQ(prepare.duration().ToMicros(), 10000);
  EXPECT_EQ(write.duration().ToMicros(), 15000);
  EXPECT_NE(prepare.annotation.find("writers=2"), std::string::npos);
  EXPECT_NE(prepare.annotation.find("all voted yes"), std::string::npos);
  EXPECT_EQ(tracer.spans_completed(), 2u);
}

TEST(TracerTest, EndIsIdempotentAndChildOfInvalidParentIsInert) {
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);
  TraceContext root = tracer.StartRoot(0, "client.read");
  tracer.EndWith(root, "first");
  tracer.EndWith(root, "second");  // must not double-complete
  EXPECT_EQ(tracer.spans_completed(), 1u);
  // A request that entered through an untraced path carries an invalid
  // context; everything downstream must stay silent.
  TraceContext orphan = tracer.StartChild(TraceContext(), 0, "phase.gather");
  EXPECT_FALSE(orphan.valid());
  EXPECT_EQ(tracer.spans_started(), 1u);
}

TEST(TracerTest, CompletedRingIsBounded) {
  Simulator sim(1);
  Tracer tracer(&sim, /*capacity=*/4);
  tracer.Enable(true);
  for (int i = 0; i < 10; ++i) {
    tracer.End(tracer.StartRoot(0, "client.read"));
  }
  EXPECT_EQ(tracer.spans_completed(), 10u);
  EXPECT_EQ(tracer.Snapshot().size(), 4u);  // ring keeps the newest
}

TEST(TracerTest, SlowRootDumpsItsTreeIntoTheTraceLog) {
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);
  TraceLog log(&sim, 16);
  tracer.SetSlowOpLog(&log, Duration::Millis(10));

  // Fast op: below threshold, no slow-op event.
  TraceContext fast = tracer.StartRoot(0, "client.read");
  sim.RunFor(Duration::Millis(1));
  tracer.End(fast);
  EXPECT_EQ(log.CountOf(TraceKind::kSlowOp), 0u);

  TraceContext slow = tracer.StartRoot(0, "client.write");
  TraceContext phase = tracer.StartChild(slow, 1, "phase.prepare");
  sim.RunFor(Duration::Millis(50));
  tracer.End(phase);
  tracer.End(slow);
  std::vector<TraceEvent> events = log.OfKind(TraceKind::kSlowOp);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("client.write"), std::string::npos);
  EXPECT_NE(events[0].detail.find("phase.prepare"), std::string::npos);
}

TEST(TracerTest, DumpTreeIndentsChildren) {
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);
  TraceContext root = tracer.StartRoot(0, "client.write");
  TraceContext child = tracer.StartChild(root, 0, "phase.gather");
  tracer.End(child);
  tracer.End(root);
  const std::string tree = tracer.DumpTree(root.trace_id);
  const size_t root_pos = tree.find("client.write");
  const size_t child_pos = tree.find("phase.gather");
  ASSERT_NE(root_pos, std::string::npos);
  ASSERT_NE(child_pos, std::string::npos);
  EXPECT_GT(child_pos, root_pos);
}

// ---------------------------------------------------------------------------
// A minimal JSON parser: enough grammar to verify the Chrome-trace export is
// well-formed (objects, arrays, strings with escapes, numbers, literals).

class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : s_(text) {}

  bool Parse() {
    i_ = 0;
    SkipWs();
    if (!ParseValue()) {
      return false;
    }
    SkipWs();
    return i_ == s_.size();
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                              s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) {
      return false;
    }
    i_ += n;
    return true;
  }

  bool ParseString() {
    if (i_ >= s_.size() || s_[i_] != '"') {
      return false;
    }
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;  // accept any escaped character
        if (i_ >= s_.size()) {
          return false;
        }
      }
      ++i_;
    }
    if (i_ >= s_.size()) {
      return false;
    }
    ++i_;  // closing quote
    return true;
  }

  bool ParseNumber() {
    const size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') {
      ++i_;
    }
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }

  bool ParseObject() {
    ++i_;  // '{'
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseString()) {
        return false;
      }
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') {
        return false;
      }
      ++i_;
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') {
      return false;
    }
    ++i_;
    return true;
  }

  bool ParseArray() {
    ++i_;  // '['
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') {
      return false;
    }
    ++i_;
    return true;
  }

  bool ParseValue() {
    if (i_ >= s_.size()) {
      return false;
    }
    switch (s_[i_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  const std::string& s_;
  size_t i_ = 0;
};

TEST(TracerTest, ChromeExportRoundTripsThroughAParser) {
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);
  TraceContext root = tracer.StartRoot(0, "client.write");
  TraceContext child = tracer.StartChild(root, 1, "phase.prepare");
  // Annotations end up in "args"; make sure quoting survives the export.
  tracer.Annotate(child, "note with \"quotes\" and \\backslash");
  sim.RunFor(Duration::Millis(3));
  tracer.End(child);
  tracer.End(root);

  const std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(MiniJsonParser(json).Parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("client.write"), std::string::npos);
  EXPECT_NE(json.find("phase.prepare"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a crashed participant forces the client's first attempt to
// abort; the retry succeeds. Both attempts must hang off ONE root span.

TEST(TracerIntegrationTest, CrashedParticipantRetryYieldsOneRootWithBothAttempts) {
  Cluster cluster;
  cluster.tracer().Enable(true);
  cluster.AddRepresentative("rep-a");
  cluster.AddRepresentative("rep-b");
  // w = 2 of 2: every write needs both representatives, so a crashed rep-b
  // guarantees the first attempt fails at prepare (vote granted, prepare
  // times out -> Aborted -> retryable).
  SuiteConfig config = SuiteConfig::MakeUniform("t", {"rep-a", "rep-b"}, /*r=*/1, /*w=*/2);
  ASSERT_TRUE(cluster.CreateSuite(config, "genesis").ok());
  SuiteClient* client = cluster.AddClient("client", config);

  // Crash rep-b after its version probe reply (~10ms into the write, with
  // 5ms links) but before the PrepareReq lands; restart it well before the
  // 5s prepare timeout expires so the retry finds a full quorum.
  cluster.sim().Schedule(Duration::Millis(12),
                         [&cluster] { cluster.net().FindHost("rep-b")->Crash(); });
  cluster.sim().Schedule(Duration::Seconds(1),
                         [&cluster] { cluster.net().FindHost("rep-b")->Restart(); });
  Status st = cluster.RunTask(client->WriteOnce("second try"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  cluster.sim().RunFor(Duration::Seconds(2));  // drain background phase 2

  std::vector<Span> spans = cluster.tracer().Snapshot();
  std::vector<const Span*> roots;
  std::map<uint64_t, std::vector<const Span*>> children;
  for (const Span& s : spans) {
    if (s.parent_id == 0 && s.name == "client.write") {
      roots.push_back(&s);
    }
    children[s.parent_id].push_back(&s);
  }
  ASSERT_EQ(roots.size(), 1u) << "retries must not open new roots";
  const Span* root = roots[0];
  EXPECT_NE(root->annotation.find("ok attempts="), std::string::npos)
      << root->annotation;

  int attempts = 0;
  for (const Span* child : children[root->span_id]) {
    EXPECT_EQ(child->name, "client.txn");
    EXPECT_EQ(child->trace_id, root->trace_id);
    ++attempts;
  }
  EXPECT_GE(attempts, 2) << "both the aborted and the committed attempt must "
                            "be children of the one root";

  // The export of the whole run stays parseable too.
  EXPECT_TRUE(MiniJsonParser(cluster.tracer().ExportChromeTrace()).Parse());
}

TEST(TracerIntegrationTest, PhaseHistogramsFeedTheMetricsRegistry) {
  Cluster cluster;
  cluster.tracer().Enable(true);
  for (const char* name : {"rep-a", "rep-b", "rep-c"}) {
    cluster.AddRepresentative(name);
  }
  SuiteConfig config =
      SuiteConfig::MakeUniform("t", {"rep-a", "rep-b", "rep-c"}, /*r=*/2, /*w=*/2);
  ASSERT_TRUE(cluster.CreateSuite(config, "x").ok());
  SuiteClient* client = cluster.AddClient("client", config);
  ASSERT_TRUE(cluster.RunTask(client->WriteOnce("y")).ok());
  ASSERT_TRUE(cluster.RunTask(client->ReadOnce()).ok());
  cluster.sim().RunFor(Duration::Seconds(1));

  const std::string text = cluster.metrics().ExportText();
  for (const char* metric : {"trace.phase.gather", "trace.phase.prepare",
                             "trace.phase.disk", "trace.op.read", "trace.op.write",
                             "trace.tracer.spans_completed"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric << "\n" << text;
  }
}

}  // namespace
}  // namespace wvote
