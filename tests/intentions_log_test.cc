#include "src/txn/intentions_log.h"

#include <gtest/gtest.h>

#include "src/net/network.h"

namespace wvote {
namespace {

TxnId MakeTxn(int64_t ts, HostId coord = 3) {
  TxnId txn;
  txn.timestamp_us = ts;
  txn.serial = 1;
  txn.coordinator = coord;
  return txn;
}

TEST(TxnRecordTest, SerializeParseRoundTrip) {
  TxnRecord rec;
  rec.txn = MakeTxn(12345, 7);
  rec.state = TxnRecordState::kCommitted;
  rec.writes.push_back(WriteIntent("key-a", "value-a"));
  rec.writes.push_back(WriteIntent("key-b", std::string(5000, 'b')));

  Result<TxnRecord> parsed = TxnRecord::Parse(rec.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().txn, rec.txn);
  EXPECT_EQ(parsed.value().state, TxnRecordState::kCommitted);
  ASSERT_EQ(parsed.value().writes.size(), 2u);
  EXPECT_EQ(parsed.value().writes[0].key, "key-a");
  EXPECT_EQ(parsed.value().writes[1].value, std::string(5000, 'b'));
}

TEST(TxnRecordTest, EmptyWritesRoundTrip) {
  TxnRecord rec;
  rec.txn = MakeTxn(1);
  rec.state = TxnRecordState::kPrepared;
  Result<TxnRecord> parsed = TxnRecord::Parse(rec.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().writes.empty());
}

TEST(TxnRecordTest, GarbageFailsToParse) {
  EXPECT_FALSE(TxnRecord::Parse("not a record").ok());
  EXPECT_FALSE(TxnRecord::Parse("").ok());
  // Truncated valid record.
  TxnRecord rec;
  rec.txn = MakeTxn(1);
  rec.writes.push_back(WriteIntent("k", "v"));
  std::string bytes = rec.Serialize();
  EXPECT_FALSE(TxnRecord::Parse(bytes.substr(0, bytes.size() - 3)).ok());
}

TEST(TxnRecordTest, BadStateRejected) {
  TxnRecord rec;
  rec.txn = MakeTxn(1);
  std::string bytes = rec.Serialize();
  // State byte sits right after the 20-byte txn id.
  bytes[20] = 99;
  EXPECT_FALSE(TxnRecord::Parse(bytes).ok());
}

class IntentionsLogTest : public ::testing::Test {
 protected:
  IntentionsLogTest()
      : sim_(1),
        net_(&sim_),
        host_(net_.AddHost("h")),
        store_(&sim_, host_, LatencyModel::Fixed(Duration::Millis(1)),
               LatencyModel::Fixed(Duration::Millis(1))),
        log_(&store_) {}

  void Put(const TxnRecord& rec) {
    auto runner = [](IntentionsLog* log, TxnRecord rec) -> Task<void> {
      Status st = co_await log->Put(rec);
      EXPECT_TRUE(st.ok());
    };
    Spawn(runner(&log_, rec));
    sim_.Run();
  }

  Simulator sim_;
  Network net_;
  Host* host_;
  StableStore store_;
  IntentionsLog log_;
};

TEST_F(IntentionsLogTest, PutLookupRemove) {
  TxnRecord rec;
  rec.txn = MakeTxn(5);
  rec.state = TxnRecordState::kPrepared;
  rec.writes.push_back(WriteIntent("k", "v"));
  Put(rec);

  Result<TxnRecord> found = log_.Lookup(rec.txn);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().writes[0].key, "k");

  auto remover = [](IntentionsLog* log, TxnId txn) -> Task<void> {
    EXPECT_TRUE((co_await log->Remove(txn)).ok());
  };
  Spawn(remover(&log_, rec.txn));
  sim_.Run();
  EXPECT_FALSE(log_.Lookup(rec.txn).ok());
}

TEST_F(IntentionsLogTest, PutOverwritesState) {
  TxnRecord rec;
  rec.txn = MakeTxn(5);
  rec.state = TxnRecordState::kPrepared;
  Put(rec);
  rec.state = TxnRecordState::kCommitted;
  Put(rec);
  EXPECT_EQ(log_.Lookup(rec.txn).value().state, TxnRecordState::kCommitted);
}

TEST_F(IntentionsLogTest, RecoverAllFindsEveryRecord) {
  for (int i = 1; i <= 5; ++i) {
    TxnRecord rec;
    rec.txn = MakeTxn(i);
    rec.state = i % 2 ? TxnRecordState::kPrepared : TxnRecordState::kCommitted;
    Put(rec);
  }
  EXPECT_EQ(log_.RecoverAll().size(), 5u);
}

TEST_F(IntentionsLogTest, RecoverAllIgnoresForeignKeys) {
  auto writer = [](StableStore* store) -> Task<void> {
    EXPECT_TRUE((co_await store->Write("data/something", "bytes")).ok());
  };
  Spawn(writer(&store_));
  sim_.Run();
  EXPECT_TRUE(log_.RecoverAll().empty());
}

TEST_F(IntentionsLogTest, DistinctTxnsGetDistinctKeys) {
  EXPECT_NE(IntentionsLog::KeyFor(MakeTxn(1, 2)), IntentionsLog::KeyFor(MakeTxn(1, 3)));
  EXPECT_NE(IntentionsLog::KeyFor(MakeTxn(1)), IntentionsLog::KeyFor(MakeTxn(2)));
}

}  // namespace
}  // namespace wvote
