// Tests for the chaos harness: the consistency checker on synthetic
// histories, fault-schedule serialization and templates, and end-to-end
// runner properties (determinism, valid configs pass, the negative control
// fails, minimization + artifact replay reproduce the failure).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/checker.h"
#include "src/chaos/history.h"
#include "src/chaos/runner.h"
#include "src/chaos/schedule.h"

namespace wvote {
namespace {

// ---------------------------------------------------------------------------
// Checker: synthetic histories. The checker is pure, so every rule can be
// pinned down with a handcrafted counterexample.

ChaosOp Op(uint64_t id, ChaosOpType type, int64_t invoke_ms, int64_t response_ms, bool ok,
           Version version, std::string value) {
  ChaosOp op;
  op.id = id;
  op.client = 0;
  op.suite = "s";
  op.type = type;
  op.invoke = TimePoint::FromMicros(invoke_ms * 1000);
  op.response = TimePoint::FromMicros(response_ms * 1000);
  op.done = true;
  op.ok = ok;
  op.version = version;
  op.value = std::move(value);
  op.status = ok ? "OK" : "ambiguous";
  return op;
}

bool HasRule(const CheckResult& result, const std::string& rule) {
  for (const ChaosViolation& v : result.violations) {
    if (v.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(ChaosChecker, CleanHistoryPasses) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 10, true, 2, "a"),
      Op(2, ChaosOpType::kRead, 20, 30, true, 2, "a"),
      Op(3, ChaosOpType::kWrite, 40, 50, true, 3, "b"),
      Op(4, ChaosOpType::kRead, 60, 70, true, 3, "b"),
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(result.ok()) << result.Report(FaultSchedule{});
  EXPECT_EQ(result.ok_writes, 2u);
  EXPECT_EQ(result.ok_reads, 2u);
}

TEST(ChaosChecker, LostAckIsDurabilityViolation) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 10, true, 2, "a"),
      Op(2, ChaosOpType::kWrite, 20, 50, true, 3, "b"),
      Op(3, ChaosOpType::kRead, 60, 70, true, 2, "a"),  // invoked after b's ack
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "durability"));
}

TEST(ChaosChecker, DuplicateCommitVersionIsViolation) {
  // Concurrent writes (no realtime order) that both claim version 2.
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 10, true, 2, "a"),
      Op(2, ChaosOpType::kWrite, 5, 15, true, 2, "b"),
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "write-version-unique"));
}

TEST(ChaosChecker, WriteOrderAgainstRealTime) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 10, true, 3, "a"),
      Op(2, ChaosOpType::kWrite, 20, 30, true, 2, "b"),  // later op, older version
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "write-order"));
}

TEST(ChaosChecker, ReadsMustBeMonotonic) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 8, true, 2, "a"),
      Op(2, ChaosOpType::kWrite, 0, 9, true, 3, "b"),
      Op(3, ChaosOpType::kRead, 10, 11, true, 3, "b"),
      Op(4, ChaosOpType::kRead, 15, 16, true, 2, "a"),  // went back in time
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "read-monotonic"));
}

TEST(ChaosChecker, ReadFromTheFutureIsViolation) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kRead, 0, 5, true, 2, "a"),
      Op(2, ChaosOpType::kWrite, 10, 20, true, 2, "a"),  // invoked after the read
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "read-write-order"));
}

TEST(ChaosChecker, ReadValueMustMatchAckedWrite) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 10, true, 2, "a"),
      Op(2, ChaosOpType::kRead, 20, 30, true, 2, "zzz"),
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "read-value"));
}

TEST(ChaosChecker, FabricatedValueIsViolation) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kRead, 20, 30, true, 5, "ghost"),
  };
  CheckResult result = CheckHistory(ops, "init");
  EXPECT_TRUE(HasRule(result, "read-value"));
}

TEST(ChaosChecker, InitialContentsReadAtVersionOne) {
  std::vector<ChaosOp> good = {Op(1, ChaosOpType::kRead, 0, 10, true, 1, "init")};
  EXPECT_TRUE(CheckHistory(good, "init").ok());
  std::vector<ChaosOp> bad = {Op(1, ChaosOpType::kRead, 0, 10, true, 1, "other")};
  EXPECT_TRUE(HasRule(CheckHistory(bad, "init"), "read-value"));
}

TEST(ChaosChecker, AmbiguousWriteMayOrMayNotTakeEffect) {
  // The ambiguous write's payload is a legal read result (it may have
  // committed) but never an obligation — neither history violates.
  std::vector<ChaosOp> took_effect = {
      Op(1, ChaosOpType::kWrite, 0, 10, false, 0, "p"),
      Op(2, ChaosOpType::kRead, 20, 30, true, 2, "p"),
  };
  EXPECT_TRUE(CheckHistory(took_effect, "init").ok());
  std::vector<ChaosOp> vanished = {
      Op(1, ChaosOpType::kWrite, 0, 10, false, 0, "p"),
      Op(2, ChaosOpType::kRead, 20, 30, true, 1, "init"),
  };
  EXPECT_TRUE(CheckHistory(vanished, "init").ok());
}

TEST(ChaosChecker, PayloadAtTwoVersionsIsViolation) {
  std::vector<ChaosOp> ops = {
      Op(1, ChaosOpType::kWrite, 0, 10, false, 0, "p"),
      Op(2, ChaosOpType::kRead, 20, 30, true, 2, "p"),
      Op(3, ChaosOpType::kRead, 40, 50, true, 3, "p"),  // same payload, new version
  };
  EXPECT_TRUE(HasRule(CheckHistory(ops, "init"), "payload-version-unique"));
}

// ---------------------------------------------------------------------------
// Schedules: value semantics, serialization round-trip, template determinism.

FaultSchedule SampleSchedule() {
  FaultSchedule s;
  s.name = "sample";
  FaultEvent crash;
  crash.at = Duration::Millis(100);
  crash.action = FaultAction::kCrashRestart;
  crash.host = "rep-0";
  crash.duration = Duration::Millis(250);
  s.events.push_back(crash);
  FaultEvent phase;
  phase.at = Duration::Millis(150);
  phase.action = FaultAction::kCrashOnTrace;
  phase.host = "client-1";
  phase.trace_kind = TraceKind::kDecisionLogged;
  phase.duration = Duration::Millis(300);
  s.events.push_back(phase);
  FaultEvent part;
  part.at = Duration::Millis(200);
  part.action = FaultAction::kPartition;
  part.groups = {{"rep-0", "rep-1", "client-0"}, {"rep-2", "client-1"}};
  s.events.push_back(part);
  FaultEvent knobs;
  knobs.at = Duration::Millis(300);
  knobs.action = FaultAction::kLinkKnobs;
  knobs.p1 = 0.05;
  knobs.p2 = 0.125;
  knobs.p3 = 0.01;
  knobs.spike = Duration::Millis(75);
  s.events.push_back(knobs);
  FaultEvent store;
  store.at = Duration::Millis(400);
  store.action = FaultAction::kStoreFaults;
  store.host = "rep-2";
  store.p1 = 0.25;
  s.events.push_back(store);
  FaultEvent tear;
  tear.at = Duration::Millis(450);
  tear.action = FaultAction::kStoreTearNextFlush;
  tear.host = "rep-1";
  s.events.push_back(tear);
  FaultEvent heal;
  heal.at = Duration::Millis(500);
  heal.action = FaultAction::kHeal;
  s.events.push_back(heal);
  return s;
}

TEST(ChaosSchedule, SerializeParseRoundTrip) {
  const FaultSchedule original = SampleSchedule();
  const std::string text = original.Serialize();
  Result<FaultSchedule> parsed = FaultSchedule::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().name, original.name);
  ASSERT_EQ(parsed.value().events.size(), original.events.size());
  EXPECT_EQ(parsed.value().Serialize(), text);
  // Spot-check the lossiest fields survived.
  EXPECT_EQ(parsed.value().events[1].trace_kind, TraceKind::kDecisionLogged);
  EXPECT_EQ(parsed.value().events[2].groups, original.events[2].groups);
  EXPECT_DOUBLE_EQ(parsed.value().events[3].p2, 0.125);
}

TEST(ChaosSchedule, WithoutAndTruncated) {
  const FaultSchedule s = SampleSchedule();
  EXPECT_EQ(s.Without(2).events.size(), s.events.size() - 1);
  EXPECT_EQ(s.Without(2).events[2].action, s.events[3].action);
  EXPECT_EQ(s.Truncated(3).events.size(), 3u);
  EXPECT_EQ(s.Truncated(0).events.size(), 0u);
}

TEST(ChaosSchedule, TemplatesAreSeedDeterministic) {
  ScheduleTemplateParams params;
  params.rep_hosts = {"rep-0", "rep-1", "rep-2"};
  params.client_hosts = {"client-0", "client-1"};
  for (const std::string& name : ScheduleTemplateNames()) {
    const FaultSchedule a = MakeScheduleFromTemplate(name, 7, params);
    const FaultSchedule b = MakeScheduleFromTemplate(name, 7, params);
    EXPECT_EQ(a.Serialize(), b.Serialize()) << name;
    EXPECT_FALSE(a.events.empty()) << name;
    const FaultSchedule c = MakeScheduleFromTemplate(name, 8, params);
    EXPECT_NE(a.Serialize(), c.Serialize()) << name;
  }
}

// ---------------------------------------------------------------------------
// Runner: end-to-end properties. Specs are kept small; each run is a few
// dozen simulated seconds and a few milliseconds of wall time.

ChaosRunSpec SmallSpec(uint64_t seed, const std::string& tmpl) {
  ChaosRunSpec spec;
  spec.seed = seed;
  spec.schedule_template = tmpl;
  spec.suite = DefaultSuiteSpecs()[1];  // r2w2x3
  spec.clients = 2;
  spec.ops_per_client = 12;
  return spec;
}

TEST(ChaosRunner, ValidConfigPassesUnderEveryTemplate) {
  for (const std::string& tmpl : ScheduleTemplateNames()) {
    ChaosRunOutcome outcome = RunChaos(SmallSpec(11, tmpl));
    EXPECT_TRUE(outcome.check.ok())
        << tmpl << ":\n" << outcome.check.Report(outcome.schedule);
    EXPECT_TRUE(outcome.final_read_ok) << tmpl;
    EXPECT_GT(outcome.check.ok_writes + outcome.check.ok_reads, 0u) << tmpl;
    EXPECT_GT(outcome.nemesis_events_applied, 0u) << tmpl;
  }
}

TEST(ChaosRunner, RunsAreDeterministic) {
  const ChaosRunSpec spec = SmallSpec(5, "partitions");
  ChaosRunOutcome a = RunChaos(spec);
  ChaosRunOutcome b = RunChaos(spec);
  // Byte-identical artifacts: schedule, history (with sim timestamps),
  // checker report, and the full metrics snapshot.
  EXPECT_EQ(DumpArtifact(spec, a.schedule, a), DumpArtifact(spec, b.schedule, b));
}

TEST(ChaosRunner, PhaseCrashTemplateFiresTargetedCrashes) {
  bool fired = false;
  for (uint64_t seed = 1; seed <= 6 && !fired; ++seed) {
    ChaosRunSpec spec = SmallSpec(seed, "phase_crash");
    spec.write_fraction = 0.7;  // more commits, more trace breadcrumbs to hit
    ChaosRunOutcome outcome = RunChaos(spec);
    EXPECT_TRUE(outcome.check.ok())
        << "seed " << seed << ":\n" << outcome.check.Report(outcome.schedule);
    fired = outcome.nemesis_phase_crashes > 0;
  }
  // At least one seed must crash a host at the targeted protocol phase —
  // otherwise the template exercises nothing.
  EXPECT_TRUE(fired);
}

// The negative control (r + w <= V) must produce checker violations under a
// partition schedule, the minimizer must shrink the schedule while keeping
// it failing, and the dumped artifact must replay to the same verdict.
TEST(ChaosRunner, NegativeControlCaughtMinimizedAndReplayable) {
  ChaosRunSpec failing_spec;
  FaultSchedule failing_schedule;
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    ChaosRunSpec spec;
    spec.seed = seed;
    spec.schedule_template = "partitions";
    spec.suite = NegativeControlSuite();
    ChaosRunOutcome outcome = RunChaos(spec);
    if (!outcome.check.ok()) {
      failing_spec = spec;
      failing_schedule = outcome.schedule;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "broken quorum config never violated under partitions";

  FaultSchedule minimized = MinimizeSchedule(failing_spec, failing_schedule);
  EXPECT_LE(minimized.events.size(), failing_schedule.events.size());
  ChaosRunOutcome still_failing = RunChaosWithSchedule(failing_spec, minimized);
  ASSERT_FALSE(still_failing.check.ok());

  // Dump -> parse -> replay reproduces the identical counterexample.
  const std::string artifact = DumpArtifact(failing_spec, minimized, still_failing);
  Result<ChaosReplayFile> replay = ParseArtifact(artifact);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value().spec.seed, failing_spec.seed);
  EXPECT_EQ(replay.value().spec.suite.name, failing_spec.suite.name);
  EXPECT_EQ(replay.value().spec.suite.votes, failing_spec.suite.votes);
  EXPECT_TRUE(replay.value().spec.suite.unsafe);
  EXPECT_EQ(replay.value().schedule.Serialize(), minimized.Serialize());
  ChaosRunOutcome replayed = RunChaosWithSchedule(replay.value().spec, replay.value().schedule);
  EXPECT_EQ(replayed.check.Report(minimized), still_failing.check.Report(minimized));
}

// Rotating probing policies mid-run is invisible to the consistency spec:
// strategies pick *which* current representatives serve a quorum, never the
// quorum arithmetic. Rotation runs stay deterministic and the rotate flag
// survives the artifact round trip (old artifacts without it replay with
// rotation off).
TEST(ChaosRunner, StrategyRotationHoldsConsistencyAndReplays) {
  ChaosRunSpec spec = SmallSpec(5, "crash_churn");
  spec.rotate_strategies = true;
  ChaosRunOutcome outcome = RunChaos(spec);
  EXPECT_TRUE(outcome.check.ok()) << outcome.check.Report(outcome.schedule);
  EXPECT_TRUE(outcome.final_read_ok);
  EXPECT_GT(outcome.strategy_rotations, 0u);

  ChaosRunOutcome again = RunChaos(spec);
  EXPECT_EQ(again.check.Report(again.schedule), outcome.check.Report(outcome.schedule));
  EXPECT_EQ(again.strategy_rotations, outcome.strategy_rotations);

  const std::string artifact = DumpArtifact(spec, outcome.schedule, outcome);
  Result<ChaosReplayFile> replay = ParseArtifact(artifact);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.value().spec.rotate_strategies);
}

TEST(ChaosRunner, HistoryRecorderTracksIntervals) {
  Simulator sim(1);
  HistoryRecorder recorder(&sim);
  const uint64_t id = recorder.Invoke(0, "s", ChaosOpType::kWrite, "v");
  sim.Schedule(Duration::Millis(5), [] {});
  sim.Run();
  recorder.Complete(id, Status::Ok(), 2);
  ASSERT_EQ(recorder.ops().size(), 1u);
  const ChaosOp& op = recorder.ops()[0];
  EXPECT_TRUE(op.ok);
  EXPECT_EQ(op.version, 2u);
  EXPECT_EQ(op.value, "v");
  EXPECT_EQ(op.invoke.ToMicros(), 0);
  EXPECT_EQ(op.response.ToMicros(), 5000);
}

}  // namespace
}  // namespace wvote
