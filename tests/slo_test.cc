// Tests for the windowed SLO engine: burn-rate breach and hysteresis
// recovery, the empty-window skip policy (full partitions with zero
// traffic), counter-zero tripwires, p99 limits across window boundaries,
// and gauge limits aggregated across label variants.

#include "src/obs/slo.h"

#include <gtest/gtest.h>

#include "src/obs/timeseries.h"

namespace wvote {
namespace {

// Pushes one window of (err, ok) into the two counter-delta series the
// availability rule below watches.
class AvailabilityFixture {
 public:
  AvailabilityFixture() : store_(16) {
    err_ = store_.GetOrCreate("req.err", SeriesKind::kCounterDelta);
    ok_ = store_.GetOrCreate("req.ok", SeriesKind::kCounterDelta);
  }

  static SloRule Rule(size_t window, size_t recovery_windows) {
    SloRule r;
    r.name = "avail";
    r.kind = SloKind::kAvailabilityBurn;
    r.numerator = {"req.err"};
    r.denominator = {"req.ok"};
    r.target = 0.999;
    r.burn_limit = 100.0;  // breach when >10% of attempts fail
    r.window = window;
    r.recovery_windows = recovery_windows;
    return r;
  }

  void Window(SloEngine* engine, double err, double ok) {
    store_.Push(err_, err);
    store_.Push(ok_, ok);
    t_us_ += 10000;
    store_.SealWindow(t_us_);
    engine->Evaluate(TimePoint::FromMicros(t_us_), store_);
  }

  TimeSeriesStore store_;
  TimeSeriesStore::Series* err_;
  TimeSeriesStore::Series* ok_;
  int64_t t_us_ = 0;
};

TEST(SloEngineTest, BurnBreachThenHysteresisRecovery) {
  AvailabilityFixture fx;
  SloEngine engine({AvailabilityFixture::Rule(/*window=*/1, /*recovery_windows=*/2)});

  fx.Window(&engine, 0, 10);  // healthy
  EXPECT_EQ(engine.total_breaches(), 0u);

  fx.Window(&engine, 5, 5);  // 50% failures: breach
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_TRUE(engine.events()[0].breach);
  EXPECT_EQ(engine.events()[0].rule, "avail");
  EXPECT_DOUBLE_EQ(engine.events()[0].value, 0.5);
  EXPECT_EQ(engine.active_breaches(), 1u);

  // A second bad window does not emit a second breach event.
  fx.Window(&engine, 5, 5);
  EXPECT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.total_breaches(), 1u);

  // One healthy window is not enough (recovery_windows = 2)...
  fx.Window(&engine, 0, 10);
  EXPECT_EQ(engine.active_breaches(), 1u);
  // ...and a relapse resets the streak.
  fx.Window(&engine, 5, 5);
  fx.Window(&engine, 0, 10);
  EXPECT_EQ(engine.active_breaches(), 1u);
  fx.Window(&engine, 0, 10);
  ASSERT_EQ(engine.events().size(), 2u);
  EXPECT_FALSE(engine.events()[1].breach);
  EXPECT_EQ(engine.active_breaches(), 0u);
  EXPECT_EQ(engine.total_breaches(), 1u);  // recoveries don't count as breaches
}

TEST(SloEngineTest, EmptyWindowsAreSkippedNotJudged) {
  AvailabilityFixture fx;
  SloEngine engine({AvailabilityFixture::Rule(/*window=*/1, /*recovery_windows=*/2)});

  fx.Window(&engine, 5, 5);  // breach
  EXPECT_EQ(engine.active_breaches(), 1u);

  // Full partition with zero traffic in the window: no attempts to judge,
  // so the rule neither recovers nor re-breaches — many empty windows in a
  // row must not fake a recovery.
  for (int i = 0; i < 5; ++i) {
    fx.Window(&engine, 0, 0);
  }
  EXPECT_EQ(engine.active_breaches(), 1u);
  EXPECT_EQ(engine.events().size(), 1u);

  // Traffic returns healthy: now the recovery streak can fill.
  fx.Window(&engine, 0, 10);
  fx.Window(&engine, 0, 10);
  EXPECT_EQ(engine.active_breaches(), 0u);
}

TEST(SloEngineTest, WideWindowSumsAcrossScrapes) {
  AvailabilityFixture fx;
  // window = 4: the failure fraction is judged over the last four windows
  // together, so a burst dilutes as healthy windows accumulate behind it.
  SloEngine engine({AvailabilityFixture::Rule(/*window=*/4, /*recovery_windows=*/1)});

  fx.Window(&engine, 8, 2);  // 80% in-window, 80% over tail: breach
  EXPECT_EQ(engine.active_breaches(), 1u);
  fx.Window(&engine, 0, 30);  // tail: 8 err / 40 total = 20%, still breached
  EXPECT_EQ(engine.active_breaches(), 1u);
  fx.Window(&engine, 0, 40);  // tail: 8 / 80 = 10%, at the 10% limit: healthy
  EXPECT_EQ(engine.active_breaches(), 0u);
}

TEST(SloEngineTest, CounterZeroTripwire) {
  TimeSeriesStore store(16);
  TimeSeriesStore::Series* stale = store.GetOrCreate("stale", SeriesKind::kCounterDelta);
  SloRule rule;
  rule.name = "staleness-never";
  rule.kind = SloKind::kCounterZero;
  rule.numerator = {"stale"};
  rule.window = 4;
  SloEngine engine({rule});

  // No sealed windows yet: skipped entirely.
  engine.Evaluate(TimePoint::FromMicros(0), store);
  EXPECT_TRUE(engine.events().empty());

  store.Push(stale, 0);
  store.SealWindow(10000);
  engine.Evaluate(TimePoint::FromMicros(10000), store);
  EXPECT_TRUE(engine.events().empty());

  store.Push(stale, 1);
  store.SealWindow(20000);
  engine.Evaluate(TimePoint::FromMicros(20000), store);
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_TRUE(engine.events()[0].breach);
  EXPECT_DOUBLE_EQ(engine.events()[0].value, 1.0);
}

TEST(SloEngineTest, P99LimitJudgesWorstNonEmptyWindow) {
  TimeSeriesStore store(16);
  TimeSeriesStore::Series* lat = store.GetOrCreate("lat", SeriesKind::kHistogram);
  SloRule rule;
  rule.name = "write-p99";
  rule.kind = SloKind::kP99Limit;
  rule.histogram = "lat";
  rule.p99_limit_us = 50000;
  rule.window = 2;
  rule.recovery_windows = 1;
  SloEngine engine({rule});

  // Empty windows (count 0) carry stale zero percentiles; they must be
  // ignored rather than read as "fast".
  store.PushHist(lat, HistPoint{0, 0, 0, 0});
  store.SealWindow(10000);
  engine.Evaluate(TimePoint::FromMicros(10000), store);
  EXPECT_TRUE(engine.events().empty());

  store.PushHist(lat, HistPoint{10, 20000, 90000, 95000});
  store.SealWindow(20000);
  engine.Evaluate(TimePoint::FromMicros(20000), store);
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_TRUE(engine.events()[0].breach);
  EXPECT_DOUBLE_EQ(engine.events()[0].value, 90000.0);

  // The slow window ages past the 2-window tail boundary: recovery. The
  // first fast window still shares the tail with the slow one, so the rule
  // stays breached until the boundary is crossed.
  store.PushHist(lat, HistPoint{10, 20000, 30000, 35000});
  store.SealWindow(30000);
  engine.Evaluate(TimePoint::FromMicros(30000), store);
  EXPECT_EQ(engine.active_breaches(), 1u);
  store.PushHist(lat, HistPoint{10, 20000, 30000, 35000});
  store.SealWindow(40000);
  engine.Evaluate(TimePoint::FromMicros(40000), store);
  EXPECT_EQ(engine.active_breaches(), 0u);
}

TEST(SloEngineTest, GaugeLimitUsesMaxAcrossLabelVariants) {
  TimeSeriesStore store(16);
  TimeSeriesStore::Series* a = store.GetOrCreate("share{c=a}", SeriesKind::kGauge);
  TimeSeriesStore::Series* b = store.GetOrCreate("share{c=b}", SeriesKind::kGauge);
  SloRule rule;
  rule.name = "probe-balance";
  rule.kind = SloKind::kGaugeLimit;
  rule.gauge = "share";
  rule.gauge_limit = 0.95;
  rule.window = 1;
  SloEngine engine({rule});

  // Shares must not be summed across clients (0.5 + 0.6 > 0.95 would be a
  // false breach); the max across variants is what the rule judges.
  store.Push(a, 0.5);
  store.Push(b, 0.6);
  store.SealWindow(10000);
  engine.Evaluate(TimePoint::FromMicros(10000), store);
  EXPECT_TRUE(engine.events().empty());

  store.Push(a, 0.97);
  store.Push(b, 0.1);
  store.SealWindow(20000);
  engine.Evaluate(TimePoint::FromMicros(20000), store);
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_TRUE(engine.events()[0].breach);
}

TEST(SloEngineTest, ListenersFireOnEveryTransition) {
  AvailabilityFixture fx;
  SloEngine engine({AvailabilityFixture::Rule(/*window=*/1, /*recovery_windows=*/1)});
  std::vector<bool> seen;
  engine.AddListener([&](const SloEvent& ev) { seen.push_back(ev.breach); });
  fx.Window(&engine, 5, 5);
  fx.Window(&engine, 0, 10);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0]);
  EXPECT_FALSE(seen[1]);
}

TEST(SloEngineTest, DefaultRulesStayIdleWithoutTraffic) {
  TimeSeriesStore store(16);
  SloEngine engine(SloEngine::DefaultRules());
  store.SealWindow(10000);
  engine.Evaluate(TimePoint::FromMicros(10000), store);
  EXPECT_EQ(engine.total_breaches(), 0u);
  EXPECT_TRUE(engine.events().empty());
  // Summary renders every rule as idle (never evaluated).
  EXPECT_NE(engine.Summary().find("read-availability"), std::string::npos);
  EXPECT_NE(engine.Summary().find("idle"), std::string::npos);
}

TEST(SloEngineTest, EventsJsonRoundTripsTheTransitions) {
  AvailabilityFixture fx;
  SloEngine engine({AvailabilityFixture::Rule(/*window=*/1, /*recovery_windows=*/1)});
  EXPECT_EQ(engine.EventsJson(), "[]");
  fx.Window(&engine, 5, 5);
  const std::string json = engine.EventsJson();
  EXPECT_NE(json.find("{\"rule\":\"avail\",\"breach\":true,\"t_us\":10000"),
            std::string::npos);
}

}  // namespace
}  // namespace wvote
