// Analytic model: hand-computed oracles, equivalence of degenerate vote
// assignments with the closed-form baselines, and structural properties of
// the availability function.

#include "src/analysis/model.h"

#include <gtest/gtest.h>

#include "src/analysis/baseline_model.h"
#include "src/analysis/gifford_examples.h"

namespace wvote {
namespace {

SuiteModel Uniform(int n, double p, int r, int w) {
  SuiteModel m;
  for (int i = 0; i < n; ++i) {
    m.reps.push_back(
        RepModel("r" + std::to_string(i), 1, Duration::Millis(10 * (i + 1)), p));
  }
  m.read_quorum = r;
  m.write_quorum = w;
  return m;
}

TEST(VotingAnalysisTest, SingleRepAvailabilityIsP) {
  SuiteModel m = Uniform(1, 0.9, 1, 1);
  VotingAnalysis a(m);
  EXPECT_DOUBLE_EQ(a.ReadAvailability(), 0.9);
  EXPECT_DOUBLE_EQ(a.WriteAvailability(), 0.9);
}

TEST(VotingAnalysisTest, RowaReadNeedsAnyRep) {
  SuiteModel m = Uniform(3, 0.9, 1, 3);
  VotingAnalysis a(m);
  // 1 - (1-p)^3 = 1 - 0.001 = 0.999
  EXPECT_NEAR(a.ReadAvailability(), 0.999, 1e-12);
  // all three up: 0.9^3 = 0.729
  EXPECT_NEAR(a.WriteAvailability(), 0.729, 1e-12);
}

TEST(VotingAnalysisTest, MajorityOfThree) {
  SuiteModel m = Uniform(3, 0.9, 2, 2);
  VotingAnalysis a(m);
  // P(>=2 of 3 up) = 3 p^2 (1-p) + p^3 = 3*0.081 + 0.729 = 0.972
  EXPECT_NEAR(a.ReadAvailability(), 0.972, 1e-12);
  EXPECT_NEAR(a.WriteAvailability(), 0.972, 1e-12);
}

TEST(VotingAnalysisTest, WeightedVotesShiftAvailability) {
  SuiteModel m;
  m.reps.push_back(RepModel("heavy", 2, Duration::Millis(10), 0.9));
  m.reps.push_back(RepModel("light1", 1, Duration::Millis(20), 0.9));
  m.reps.push_back(RepModel("light2", 1, Duration::Millis(30), 0.9));
  m.read_quorum = 2;
  m.write_quorum = 3;
  VotingAnalysis a(m);
  // Read (2 of 4 votes): heavy alone (0.9*0.1*0.1=0.009... enumerate):
  // up-sets reaching 2 votes: {H}, {H,l1}, {H,l2}, {H,l1,l2}, {l1,l2}.
  // = p(1-p)^2 + 2 p^2(1-p) + p^3 + p^2(1-p)
  const double p = 0.9;
  const double expected_read = p * (1 - p) * (1 - p) + 2 * p * p * (1 - p) + p * p * p +
                               p * p * (1 - p);
  EXPECT_NEAR(a.ReadAvailability(), expected_read, 1e-12);
  // Write (3 of 4): {H,l1}, {H,l2}, {H,l1,l2}: 2 p^2(1-p) + p^3.
  const double expected_write = 2 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(a.WriteAvailability(), expected_write, 1e-12);
}

TEST(VotingAnalysisTest, MatchesRowaClosedForms) {
  SuiteModel m = Uniform(5, 0.8, 1, 5);
  VotingAnalysis a(m);
  EXPECT_NEAR(a.ReadAvailability(), BaselineAnalysis::RowaReadAvailability(m), 1e-12);
  EXPECT_NEAR(a.WriteAvailability(), BaselineAnalysis::RowaWriteAvailability(m), 1e-12);
  EXPECT_EQ(a.AllUpQuorumLatency(1), BaselineAnalysis::RowaReadLatencyAllUp(m));
  EXPECT_EQ(a.AllUpQuorumLatency(5), BaselineAnalysis::RowaWriteLatencyAllUp(m));
}

TEST(VotingAnalysisTest, MatchesMajorityClosedForms) {
  SuiteModel m = Uniform(5, 0.8, 3, 3);
  VotingAnalysis a(m);
  EXPECT_NEAR(a.ReadAvailability(), BaselineAnalysis::MajorityAvailability(m), 1e-12);
  EXPECT_EQ(a.AllUpQuorumLatency(3), BaselineAnalysis::MajorityLatencyAllUp(m));
}

TEST(VotingAnalysisTest, AvailabilityMonotoneInQuorumSize) {
  SuiteModel m = Uniform(5, 0.7, 3, 3);
  VotingAnalysis a(m);
  double prev = 1.0;
  for (int q = 1; q <= 5; ++q) {
    const double availability = a.QuorumAvailability(q);
    EXPECT_LE(availability, prev + 1e-12) << "q=" << q;
    prev = availability;
  }
}

TEST(VotingAnalysisTest, AllUpLatencyMonotoneInQuorumSize) {
  SuiteModel m = Uniform(5, 0.9, 1, 5);
  VotingAnalysis a(m);
  Duration prev = Duration::Zero();
  for (int q = 1; q <= 5; ++q) {
    const Duration latency = a.AllUpQuorumLatency(q);
    EXPECT_GE(latency, prev);
    prev = latency;
  }
  EXPECT_EQ(a.AllUpQuorumLatency(1), Duration::Millis(10));
  EXPECT_EQ(a.AllUpQuorumLatency(5), Duration::Millis(50));
}

TEST(VotingAnalysisTest, ExpectedLatencyAtLeastAllUp) {
  // Failures can only push the gather to slower representatives.
  SuiteModel m = Uniform(4, 0.8, 2, 3);
  VotingAnalysis a(m);
  EXPECT_GE(a.ExpectedQuorumLatency(2), a.AllUpQuorumLatency(2));
}

TEST(VotingAnalysisTest, PerfectRepsMakeExpectedEqualAllUp) {
  SuiteModel m = Uniform(4, 1.0, 2, 3);
  VotingAnalysis a(m);
  EXPECT_EQ(a.ExpectedQuorumLatency(2), a.AllUpQuorumLatency(2));
  EXPECT_DOUBLE_EQ(a.QuorumAvailability(4), 1.0);
}

TEST(VotingAnalysisTest, ReadAndWriteLatencyPhases) {
  SuiteModel m = Uniform(3, 0.99, 2, 2);
  VotingAnalysis a(m);
  // Read: gather max(10,20)=20 + fetch from cheapest (10) = 30.
  EXPECT_EQ(a.ReadLatencyAllUp(false), Duration::Millis(30));
  EXPECT_EQ(a.ReadLatencyAllUp(true), Duration::Millis(20));
  // Write: 3 phases paced by the slowest quorum member: 3 * 20.
  EXPECT_EQ(a.WriteLatencyAllUp(), Duration::Millis(60));
}

TEST(VotingAnalysisTest, PrimaryCopyOracle) {
  SuiteModel m = Uniform(3, 0.95, 2, 2);
  EXPECT_DOUBLE_EQ(BaselineAnalysis::PrimaryCopyAvailability(m, 1), 0.95);
  EXPECT_EQ(BaselineAnalysis::PrimaryCopyLatency(m, 1), Duration::Millis(20));
}

TEST(SuiteModelTest, ValidationMirrorsSuiteConfig) {
  SuiteModel m = Uniform(3, 0.9, 2, 2);
  EXPECT_TRUE(m.Validate().ok());
  m.read_quorum = 1;
  m.write_quorum = 1;  // 2w <= V
  EXPECT_FALSE(m.Validate().ok());
  m.read_quorum = 0;
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GiffordExamplesTest, AllThreeValidate) {
  for (const GiffordExample& ex : MakeGiffordExamples()) {
    EXPECT_TRUE(ex.model.Validate().ok()) << ex.name;
    EXPECT_TRUE(ex.config.Validate().ok()) << ex.name;
    EXPECT_FALSE(ex.client_rtt.empty()) << ex.name;
  }
}

TEST(GiffordExamplesTest, ShapesMatchThePaper) {
  auto examples = MakeGiffordExamples(0.99);
  VotingAnalysis e1(examples[0].model);
  VotingAnalysis e2(examples[1].model);
  VotingAnalysis e3(examples[2].model);

  // Example 3 (read-one/write-all) has the cheapest reads...
  EXPECT_LE(e3.AllUpQuorumLatency(examples[2].model.read_quorum),
            e2.AllUpQuorumLatency(examples[1].model.read_quorum));
  // ... and the most expensive, least available writes.
  EXPECT_GT(e3.WriteLatencyAllUp(), e2.WriteLatencyAllUp());
  EXPECT_GT(e3.WriteBlockingProbability(), e2.WriteBlockingProbability());
  // Example 2's reads are more available than its writes.
  EXPECT_LT(e2.ReadBlockingProbability(), e2.WriteBlockingProbability());
  // Example 1 rides entirely on one server.
  EXPECT_NEAR(e1.ReadBlockingProbability(), 0.01, 1e-9);
}

}  // namespace
}  // namespace wvote
