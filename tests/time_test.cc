#include "src/common/time.h"

#include <gtest/gtest.h>

namespace wvote {
namespace {

TEST(DurationTest, Conversions) {
  EXPECT_EQ(Duration::Millis(5).ToMicros(), 5000);
  EXPECT_EQ(Duration::Seconds(2).ToMicros(), 2000000);
  EXPECT_DOUBLE_EQ(Duration::Micros(1500).ToMillis(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::Millis(2500).ToSeconds(), 2.5);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ(Duration::Millis(3) + Duration::Millis(4), Duration::Millis(7));
  EXPECT_EQ(Duration::Millis(10) - Duration::Millis(4), Duration::Millis(6));
  EXPECT_EQ(Duration::Millis(3) * 4, Duration::Millis(12));
  EXPECT_EQ(Duration::Millis(12) / 4, Duration::Millis(3));
  Duration d = Duration::Millis(1);
  d += Duration::Millis(2);
  EXPECT_EQ(d, Duration::Millis(3));
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_GE(Duration::Seconds(1), Duration::Millis(1000));
  EXPECT_EQ(Duration::Zero(), Duration::Micros(0));
}

TEST(DurationTest, NegativeIntermediatesRepresentable) {
  const Duration d = Duration::Millis(1) - Duration::Millis(5);
  EXPECT_EQ(d.ToMicros(), -4000);
}

TEST(DurationTest, InfiniteIsLarge) {
  EXPECT_GT(Duration::Infinite(), Duration::Seconds(1000000000));
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Duration::Seconds(3).ToString(), "3s");
  EXPECT_EQ(Duration::Millis(75).ToString(), "75ms");
  EXPECT_EQ(Duration::Micros(42).ToString(), "42us");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t = TimePoint::FromMicros(1000);
  EXPECT_EQ((t + Duration::Millis(1)).ToMicros(), 2000);
  EXPECT_EQ(TimePoint::FromMicros(5000) - t, Duration::Micros(4000));
}

TEST(TimePointTest, Comparisons) {
  EXPECT_LT(TimePoint::FromMicros(1), TimePoint::FromMicros(2));
  EXPECT_EQ(TimePoint(), TimePoint::FromMicros(0));
}

}  // namespace
}  // namespace wvote
