// Lock manager: strict 2PL modes, wait-die, upgrades, timeouts, crash clear.

#include "src/txn/lock_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

namespace wvote {
namespace {

TxnId MakeTxn(int64_t ts, uint64_t serial = 0) {
  TxnId txn;
  txn.timestamp_us = ts;
  txn.serial = serial;
  txn.coordinator = 0;
  return txn;
}

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : sim_(1), locks_(&sim_) {}

  // Starts an acquire; returns a holder for its eventual status (empty while
  // the acquire is still waiting).
  std::shared_ptr<std::optional<Status>> Acquire(TxnId txn, const std::string& key,
                                                 LockMode mode,
                                                 Duration timeout = Duration::Seconds(10)) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](LockManager* locks, TxnId txn, std::string key, LockMode mode,
                     Duration timeout,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      *out = co_await locks->Acquire(txn, std::move(key), mode, timeout);
    };
    Spawn(runner(&locks_, txn, key, mode, timeout, out));
    return out;
  }

  static bool Pending(const std::shared_ptr<std::optional<Status>>& r) {
    return !r->has_value();
  }
  static bool Granted(const std::shared_ptr<std::optional<Status>>& r) {
    return r->has_value() && (*r)->ok();
  }

  Simulator sim_;
  LockManager locks_;
};

TEST_F(LockManagerTest, ExclusiveGrantsImmediately) {
  auto r = Acquire(MakeTxn(1), "k", LockMode::kExclusive);
  sim_.Run();
  EXPECT_TRUE(Granted(r));
  EXPECT_TRUE(locks_.Holds(MakeTxn(1), "k", LockMode::kExclusive));
}

TEST_F(LockManagerTest, SharedLocksCoexist) {
  auto r1 = Acquire(MakeTxn(1), "k", LockMode::kShared);
  auto r2 = Acquire(MakeTxn(2), "k", LockMode::kShared);
  auto r3 = Acquire(MakeTxn(3), "k", LockMode::kShared);
  sim_.Run();
  EXPECT_TRUE(Granted(r1));
  EXPECT_TRUE(Granted(r2));
  EXPECT_TRUE(Granted(r3));
}

TEST_F(LockManagerTest, ReentrantAcquireIsNoOp) {
  auto r1 = Acquire(MakeTxn(1), "k", LockMode::kShared);
  auto r2 = Acquire(MakeTxn(1), "k", LockMode::kShared);
  sim_.Run();
  EXPECT_TRUE(Granted(r1));
  EXPECT_TRUE(Granted(r2));
  EXPECT_EQ(locks_.stats().grants_immediate, 1u);  // second was reentry
}

TEST_F(LockManagerTest, OlderWaitsForYoungerHolder) {
  auto young = Acquire(MakeTxn(200), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  ASSERT_TRUE(Granted(young));

  auto old = Acquire(MakeTxn(100), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Pending(old));  // waiting, not refused

  locks_.ReleaseAll(MakeTxn(200));
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Granted(old));
  EXPECT_EQ(locks_.stats().grants_after_wait, 1u);
}

TEST_F(LockManagerTest, YoungerDiesOnConflict) {
  auto old = Acquire(MakeTxn(100), "k", LockMode::kExclusive);
  sim_.Run();
  ASSERT_TRUE(Granted(old));

  auto young = Acquire(MakeTxn(200), "k", LockMode::kExclusive);
  sim_.Run();
  ASSERT_TRUE(young->has_value());
  EXPECT_EQ((*young)->code(), StatusCode::kConflict);
  EXPECT_EQ(locks_.stats().dies, 1u);
}

TEST_F(LockManagerTest, RequestersWaitOnCourtesyHolderInsteadOfDying) {
  // A courtesy transaction (background refresh) carries the sentinel
  // timestamp: every client is younger, but since a courtesy holder locks a
  // single key and acquires nothing further, waiting on it cannot deadlock —
  // so the wait-die refusal becomes a wait.
  TxnId courtesy = MakeTxn(TxnId::kCourtesyTimestamp, /*serial=*/7);
  ASSERT_TRUE(courtesy.courtesy());
  auto held = Acquire(courtesy, "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  ASSERT_TRUE(Granted(held));

  auto client = Acquire(MakeTxn(5), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Pending(client));  // parked, not killed
  EXPECT_EQ(locks_.stats().dies, 0u);
  EXPECT_EQ(locks_.stats().waits_on_courtesy, 1u);

  locks_.ReleaseAll(courtesy);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Granted(client));
}

TEST_F(LockManagerTest, CourtesyRequesterWaitsBehindClientHolder) {
  // The asymmetry matters: the courtesy txn is the *oldest* under wait-die,
  // so when it is the requester it waits for the client holder (typically
  // the reader that spawned the refresh) rather than preempting it.
  auto client = Acquire(MakeTxn(5), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  ASSERT_TRUE(Granted(client));

  auto refresh = Acquire(MakeTxn(TxnId::kCourtesyTimestamp), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Pending(refresh));
  EXPECT_EQ(locks_.stats().dies, 0u);

  locks_.ReleaseAll(MakeTxn(5));
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Granted(refresh));
}

TEST_F(LockManagerTest, SharedVersusExclusiveConflicts) {
  auto s = Acquire(MakeTxn(100), "k", LockMode::kShared);
  sim_.Run();
  ASSERT_TRUE(Granted(s));
  auto x_young = Acquire(MakeTxn(200), "k", LockMode::kExclusive);
  sim_.Run();
  EXPECT_EQ((*x_young)->code(), StatusCode::kConflict);
}

TEST_F(LockManagerTest, UpgradeWhenSoleHolder) {
  auto s = Acquire(MakeTxn(1), "k", LockMode::kShared);
  sim_.Run();
  ASSERT_TRUE(Granted(s));
  auto x = Acquire(MakeTxn(1), "k", LockMode::kExclusive);
  sim_.Run();
  EXPECT_TRUE(Granted(x));
  EXPECT_TRUE(locks_.Holds(MakeTxn(1), "k", LockMode::kExclusive));
  EXPECT_EQ(locks_.stats().upgrades, 1u);
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherReadersToDrain) {
  auto s_old = Acquire(MakeTxn(100), "k", LockMode::kShared);
  auto s_young = Acquire(MakeTxn(200), "k", LockMode::kShared);
  sim_.RunFor(Duration::Millis(100));
  ASSERT_TRUE(Granted(s_old));
  ASSERT_TRUE(Granted(s_young));

  // The older transaction upgrades; it must wait for the younger reader.
  auto upgrade = Acquire(MakeTxn(100), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Pending(upgrade));

  locks_.ReleaseAll(MakeTxn(200));
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Granted(upgrade));
  EXPECT_TRUE(locks_.Holds(MakeTxn(100), "k", LockMode::kExclusive));
}

TEST_F(LockManagerTest, WaitTimesOut) {
  auto young = Acquire(MakeTxn(200), "k", LockMode::kExclusive);
  sim_.Run();
  ASSERT_TRUE(Granted(young));
  auto old = Acquire(MakeTxn(100), "k", LockMode::kExclusive, Duration::Millis(50));
  sim_.Run();
  ASSERT_TRUE(old->has_value());
  EXPECT_EQ((*old)->code(), StatusCode::kTimeout);
  EXPECT_EQ(locks_.stats().timeouts, 1u);
}

TEST_F(LockManagerTest, ReleaseWakesFifo) {
  auto holder = Acquire(MakeTxn(300), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  auto w1 = Acquire(MakeTxn(100), "k", LockMode::kExclusive);
  auto w2 = Acquire(MakeTxn(200), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Pending(w1));
  // w2 (ts=200) is younger than holder (ts=300)? No: 200 < 300, so it waits.
  EXPECT_TRUE(Pending(w2));

  locks_.ReleaseAll(MakeTxn(300));
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Granted(w1));  // FIFO: first waiter gets X
  // w2 (ts=200) is now younger than the new holder (ts=100): the regrant
  // wait-die check kills it rather than let it wait on an older holder.
  ASSERT_TRUE(w2->has_value());
  EXPECT_EQ((*w2)->code(), StatusCode::kConflict);
}

TEST_F(LockManagerTest, ReleaseGrantsSharedBatch) {
  auto holder = Acquire(MakeTxn(300), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  auto s1 = Acquire(MakeTxn(100), "k", LockMode::kShared);
  auto s2 = Acquire(MakeTxn(200), "k", LockMode::kShared);
  sim_.RunFor(Duration::Millis(100));
  locks_.ReleaseAll(MakeTxn(300));
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Granted(s1));
  EXPECT_TRUE(Granted(s2));  // both shared waiters granted together
}

TEST_F(LockManagerTest, ReleaseAllCoversMultipleKeys) {
  auto a = Acquire(MakeTxn(1), "a", LockMode::kExclusive);
  auto b = Acquire(MakeTxn(1), "b", LockMode::kExclusive);
  sim_.Run();
  EXPECT_EQ(locks_.num_locked_keys(), 2u);
  locks_.ReleaseAll(MakeTxn(1));
  EXPECT_EQ(locks_.num_locked_keys(), 0u);
}

TEST_F(LockManagerTest, ReleasingWaiterAbortsItsWait) {
  auto holder = Acquire(MakeTxn(300), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  auto waiter = Acquire(MakeTxn(100), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  EXPECT_TRUE(Pending(waiter));
  locks_.ReleaseAll(MakeTxn(100));  // the waiting txn itself aborts
  sim_.RunFor(Duration::Millis(100));
  ASSERT_TRUE(waiter->has_value());
  EXPECT_EQ((*waiter)->code(), StatusCode::kAborted);
}

TEST_F(LockManagerTest, ClearAbortsEverything) {
  auto holder = Acquire(MakeTxn(300), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  auto waiter = Acquire(MakeTxn(100), "k", LockMode::kExclusive);
  sim_.RunFor(Duration::Millis(100));
  locks_.Clear();
  sim_.RunFor(Duration::Millis(100));
  EXPECT_EQ((*waiter)->code(), StatusCode::kAborted);
  EXPECT_EQ(locks_.num_locked_keys(), 0u);
  EXPECT_FALSE(locks_.Holds(MakeTxn(300), "k", LockMode::kShared));
}

TEST_F(LockManagerTest, HoldsDistinguishesModes) {
  auto s = Acquire(MakeTxn(1), "k", LockMode::kShared);
  sim_.Run();
  EXPECT_TRUE(locks_.Holds(MakeTxn(1), "k", LockMode::kShared));
  EXPECT_FALSE(locks_.Holds(MakeTxn(1), "k", LockMode::kExclusive));
  EXPECT_FALSE(locks_.Holds(MakeTxn(2), "k", LockMode::kShared));
}

TEST_F(LockManagerTest, TieBreaksBySerialAndCoordinator) {
  TxnId a = MakeTxn(100, 1);
  TxnId b = MakeTxn(100, 2);  // same timestamp, higher serial -> younger
  auto ra = Acquire(a, "k", LockMode::kExclusive);
  sim_.Run();
  auto rb = Acquire(b, "k", LockMode::kExclusive);
  sim_.Run();
  EXPECT_EQ((*rb)->code(), StatusCode::kConflict);  // b is younger: dies
}

TEST_F(LockManagerTest, DistinctKeysDoNotConflict) {
  auto a = Acquire(MakeTxn(1), "a", LockMode::kExclusive);
  auto b = Acquire(MakeTxn(2), "b", LockMode::kExclusive);
  sim_.Run();
  EXPECT_TRUE(Granted(a));
  EXPECT_TRUE(Granted(b));
}

}  // namespace
}  // namespace wvote
