// SuiteCatalog: runtime creation, opening, and discovery of suites.

#include "src/core/catalog.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (int i = 0; i < 3; ++i) {
      cluster_->AddRepresentative("rep-" + std::to_string(i));
    }
    // A client stack without any pre-bootstrapped suite: we open a throwaway
    // suite config purely to materialize the host's rpc/coordinator stack.
    bootstrap_config_ = SuiteConfig::MakeUniform("seed", {"rep-0"}, 1, 1);
    seed_client_ = cluster_->AddClient("app", bootstrap_config_);
    catalog_ = std::make_unique<SuiteCatalog>(&cluster_->net(), seed_client_->rpc(),
                                              cluster_->coordinator_of("app"));
  }

  SuiteConfig ThreeRep(const std::string& name, int r = 2, int w = 2) {
    return SuiteConfig::MakeUniform(name, {"rep-0", "rep-1", "rep-2"}, r, w);
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig bootstrap_config_;
  SuiteClient* seed_client_ = nullptr;
  std::unique_ptr<SuiteCatalog> catalog_;
};

TEST_F(CatalogTest, CreateThenUse) {
  SuiteConfig config = ThreeRep("docs");
  ASSERT_TRUE(cluster_->RunTask(catalog_->Create(config, "first contents")).ok());
  SuiteClient* client = catalog_->Open(config);
  Result<std::string> r = cluster_->RunTask(client->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "first contents");
  EXPECT_TRUE(cluster_->RunTask(client->WriteOnce("updated")).ok());
}

TEST_F(CatalogTest, CreateValidatesConfig) {
  SuiteConfig bad = ThreeRep("bad", 1, 1);  // 2w <= V
  EXPECT_EQ(cluster_->RunTask(catalog_->Create(bad, "x")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, CreateFailsWithMemberDown) {
  cluster_->net().FindHost("rep-2")->Crash();
  Status st = cluster_->RunTask(catalog_->Create(ThreeRep("degraded"), "x"));
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST_F(CatalogTest, CreateIsIdempotent) {
  SuiteConfig config = ThreeRep("twice");
  ASSERT_TRUE(cluster_->RunTask(catalog_->Create(config, "original")).ok());
  SuiteClient* client = catalog_->Open(config);
  ASSERT_TRUE(cluster_->RunTask(client->WriteOnce("modified")).ok());

  // Re-creating must not clobber the live data.
  ASSERT_TRUE(cluster_->RunTask(catalog_->Create(config, "original")).ok());
  Result<std::string> r = cluster_->RunTask(client->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "modified");
}

TEST_F(CatalogTest, RetryAfterPartialCreateCompletes) {
  cluster_->net().FindHost("rep-2")->Crash();
  SuiteConfig config = ThreeRep("partial");
  ASSERT_FALSE(cluster_->RunTask(catalog_->Create(config, "x")).ok());
  cluster_->net().FindHost("rep-2")->Restart();
  ASSERT_TRUE(cluster_->RunTask(catalog_->Create(config, "x")).ok());
  EXPECT_EQ(cluster_->RunTask(catalog_->Open(config)->ReadOnce()).value(), "x");
}

TEST_F(CatalogTest, OpenReturnsSameClientPerSuite) {
  SuiteConfig config = ThreeRep("shared");
  ASSERT_TRUE(cluster_->RunTask(catalog_->Create(config, "x")).ok());
  EXPECT_EQ(catalog_->Open(config), catalog_->Open(config));
  EXPECT_EQ(catalog_->OpenSuites(), std::vector<std::string>{"shared"});
}

TEST_F(CatalogTest, DiscoverByNameAndHint) {
  SuiteConfig config = ThreeRep("findme", 1, 3);
  ASSERT_TRUE(cluster_->RunTask(catalog_->Create(config, "discovered contents")).ok());

  // A different application host knows only the suite name and one member.
  SuiteClient* other_seed = cluster_->AddClient("app-2", bootstrap_config_);
  SuiteCatalog other_catalog(&cluster_->net(), other_seed->rpc(),
                             cluster_->coordinator_of("app-2"));
  Result<SuiteClient*> found =
      cluster_->RunTask(other_catalog.Discover("findme", "rep-1"));
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found.value()->config().read_quorum, 1);
  EXPECT_EQ(found.value()->config().write_quorum, 3);
  Result<std::string> r = cluster_->RunTask(found.value()->ReadOnce());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "discovered contents");
}

TEST_F(CatalogTest, DiscoverUnknownSuiteFails) {
  Result<SuiteClient*> found = cluster_->RunTask(catalog_->Discover("ghost", "rep-0"));
  EXPECT_FALSE(found.ok());
}

TEST_F(CatalogTest, ManySuitesCoexistOnSharedRepresentatives) {
  for (int i = 0; i < 8; ++i) {
    SuiteConfig config = ThreeRep("multi-" + std::to_string(i));
    ASSERT_TRUE(
        cluster_->RunTask(catalog_->Create(config, "data-" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 8; ++i) {
    SuiteClient* client = catalog_->Open(ThreeRep("multi-" + std::to_string(i)));
    EXPECT_EQ(cluster_->RunTask(client->ReadOnce()).value(), "data-" + std::to_string(i));
  }
  EXPECT_EQ(catalog_->OpenSuites().size(), 8u);
}

}  // namespace
}  // namespace wvote
