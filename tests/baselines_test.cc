// Baseline schemes: degenerate vote configs, primary copy, and Thomas's
// majority consensus.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/configs.h"
#include "src/baselines/majority_consensus.h"
#include "src/baselines/primary_copy.h"
#include "src/core/cluster.h"

namespace wvote {
namespace {

TEST(BaselineConfigsTest, RowaShape) {
  SuiteConfig cfg = MakeRowaConfig("f", {"a", "b", "c", "d"});
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_EQ(cfg.read_quorum, 1);
  EXPECT_EQ(cfg.write_quorum, 4);
}

TEST(BaselineConfigsTest, MajorityShape) {
  for (int n : {3, 4, 5, 7}) {
    std::vector<std::string> hosts;
    for (int i = 0; i < n; ++i) {
      hosts.push_back("h" + std::to_string(i));
    }
    SuiteConfig cfg = MakeMajorityConfig("f", hosts);
    EXPECT_TRUE(cfg.Validate().ok()) << n;
    EXPECT_EQ(cfg.read_quorum, n / 2 + 1);
    EXPECT_EQ(cfg.write_quorum, n / 2 + 1);
  }
}

TEST(BaselineConfigsTest, UnreplicatedShape) {
  SuiteConfig cfg = MakeUnreplicatedConfig("f", "solo");
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_EQ(cfg.TotalVotes(), 1);
}

class PrimaryCopyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    cluster_->AddRepresentative("primary");
    cluster_->AddRepresentative("backup-1");
    cluster_->AddRepresentative("backup-2");
    config_ = MakeUnreplicatedConfig("f", "primary");
    ASSERT_TRUE(cluster_->CreateSuite(config_, "initial").ok());
    client_ = cluster_->AddClient("client", config_);
    backups_ = {cluster_->net().FindHost("backup-1")->id(),
                cluster_->net().FindHost("backup-2")->id()};
    // Backups also need the suite bootstrapped so refresh installs land on
    // an existing page namespace (Refresh creates pages anyway; bootstrap
    // keeps CurrentValue() well-defined before the first propagation).
    for (const char* b : {"backup-1", "backup-2"}) {
      SuiteConfig bcfg = MakeUnreplicatedConfig("f", b);
      Status st = cluster_->RunTask(
          cluster_->representative(b)->BootstrapSuite(bcfg, VersionedValue{1, "initial"}));
      ASSERT_TRUE(st.ok());
    }
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
  std::vector<HostId> backups_;
};

TEST_F(PrimaryCopyTest, WritePropagatesToBackups) {
  PrimaryCopyStore store(client_, backups_);
  ASSERT_TRUE(cluster_->RunTask(store.Write("updated")).ok());
  cluster_->sim().RunFor(Duration::Seconds(2));
  EXPECT_EQ(cluster_->representative("backup-1")->CurrentValue("f").value().contents,
            "updated");
  EXPECT_EQ(cluster_->representative("backup-2")->CurrentValue("f").value().contents,
            "updated");
  EXPECT_EQ(store.stats().propagations, 2u);
}

TEST_F(PrimaryCopyTest, PrimaryReadIsStrict) {
  PrimaryCopyStore store(client_, backups_, PrimaryCopyReadMode::kPrimary);
  ASSERT_TRUE(cluster_->RunTask(store.Write("v2")).ok());
  Result<std::string> r = cluster_->RunTask(store.Read());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "v2");
  EXPECT_EQ(store.stats().reads_primary, 1u);
}

TEST_F(PrimaryCopyTest, BackupReadMayBeStale) {
  // Partition the backups away so propagation cannot land, then read from a
  // backup: it serves the old value (that is the scheme's weakness).
  PrimaryCopyStore store(client_, backups_, PrimaryCopyReadMode::kLocalBackup);
  cluster_->net().Partition(
      {{cluster_->net().FindHost("primary")->id(), cluster_->net().FindHost("client")->id()},
       {backups_[0], backups_[1]}});
  ASSERT_TRUE(cluster_->RunTask(store.Write("unseen")).ok());
  cluster_->net().HealPartition();
  Result<std::string> r = cluster_->RunTask(store.Read());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "initial");  // stale
  EXPECT_EQ(store.stats().stale_backup_reads, 1u);
}

TEST_F(PrimaryCopyTest, PrimaryDownBlocksEverything) {
  PrimaryCopyStore store(client_, backups_, PrimaryCopyReadMode::kPrimary);
  cluster_->net().FindHost("primary")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(200);
  SuiteClient* impatient = cluster_->AddClient("impatient", config_, fast);
  PrimaryCopyStore blocked(impatient, backups_);
  EXPECT_FALSE(cluster_->RunTask(blocked.Write("nope")).ok());
  EXPECT_FALSE(cluster_->RunTask(blocked.Read()).ok());
}

class MajorityConsensusTest : public ::testing::Test {
 protected:
  MajorityConsensusTest() : sim_(1), net_(&sim_) {
    net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(5)));
    for (int i = 0; i < 3; ++i) {
      Host* host = net_.AddHost("ts-" + std::to_string(i));
      servers_.push_back(std::make_unique<TimestampServer>(&net_, host));
      replicas_.push_back(host->id());
    }
    client_host_ = net_.AddHost("client");
    client_rpc_ = std::make_unique<RpcEndpoint>(&net_, client_host_);
    store_ = std::make_unique<MajorityConsensusStore>(client_rpc_.get(), "obj", replicas_);
  }

  Result<std::string> Read() {
    auto out = std::make_shared<std::optional<Result<std::string>>>();
    auto runner = [](MajorityConsensusStore* s,
                     std::shared_ptr<std::optional<Result<std::string>>> out) -> Task<void> {
      out->emplace(co_await s->Read());
    };
    Spawn(runner(store_.get(), out));
    sim_.RunFor(Duration::Seconds(30));
    return out->has_value() ? **out : Result<std::string>(InternalError("pending"));
  }

  Status Write(const std::string& v) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](MajorityConsensusStore* s, std::string v,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      *out = co_await s->Write(std::move(v));
    };
    Spawn(runner(store_.get(), v, out));
    sim_.RunFor(Duration::Seconds(30));
    return out->has_value() ? **out : InternalError("pending");
  }

  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<TimestampServer>> servers_;
  std::vector<HostId> replicas_;
  Host* client_host_;
  std::unique_ptr<RpcEndpoint> client_rpc_;
  std::unique_ptr<MajorityConsensusStore> store_;
};

TEST_F(MajorityConsensusTest, EmptyReadsAsEmpty) {
  Result<std::string> r = Read();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "");
}

TEST_F(MajorityConsensusTest, WriteThenRead) {
  ASSERT_TRUE(Write("hello").ok());
  EXPECT_EQ(Read().value(), "hello");
}

TEST_F(MajorityConsensusTest, LastWriterWins) {
  ASSERT_TRUE(Write("first").ok());
  ASSERT_TRUE(Write("second").ok());
  EXPECT_EQ(Read().value(), "second");
}

TEST_F(MajorityConsensusTest, SurvivesMinorityFailure) {
  net_.FindHost("ts-2")->Crash();
  ASSERT_TRUE(Write("despite failure").ok());
  EXPECT_EQ(Read().value(), "despite failure");
}

TEST_F(MajorityConsensusTest, MajorityFailureBlocks) {
  net_.FindHost("ts-1")->Crash();
  net_.FindHost("ts-2")->Crash();
  MajorityConsensusStore fast(client_rpc_.get(), "obj2", replicas_, Duration::Millis(200));
  auto out = std::make_shared<std::optional<Status>>();
  auto runner = [](MajorityConsensusStore* s,
                   std::shared_ptr<std::optional<Status>> out) -> Task<void> {
    *out = co_await s->Write("blocked");
  };
  Spawn(runner(&fast, out));
  sim_.RunFor(Duration::Seconds(10));
  ASSERT_TRUE(out->has_value());
  EXPECT_EQ((*out)->code(), StatusCode::kUnavailable);
}

TEST_F(MajorityConsensusTest, StaleReplicaIgnoredByTimestamp) {
  ASSERT_TRUE(Write("v1").ok());
  // ts-2 misses the second write.
  net_.FindHost("ts-2")->Crash();
  ASSERT_TRUE(Write("v2").ok());
  net_.FindHost("ts-2")->Restart();
  // A majority read must return v2 even if ts-2 answers with v1.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Read().value(), "v2");
  }
}

TEST_F(MajorityConsensusTest, ObsoleteWriteDoesNotRegress) {
  ASSERT_TRUE(Write("newest").ok());
  // Hand-deliver an old-timestamped write to one replica: it must refuse.
  auto old_write = [](RpcEndpoint* rpc, HostId to,
                      std::shared_ptr<std::optional<bool>> applied) -> Task<void> {
    Result<TsWriteResp> r = co_await rpc->Call<TsWriteReq, TsWriteResp>(
        to, TsWriteReq("obj", 1, "ancient"), Duration::Seconds(5));
    if (r.ok()) {
      *applied = r.value().applied;
    }
  };
  auto applied = std::make_shared<std::optional<bool>>();
  Spawn(old_write(client_rpc_.get(), replicas_[0], applied));
  sim_.RunFor(Duration::Seconds(5));
  ASSERT_TRUE(applied->has_value());
  EXPECT_FALSE(**applied);
  EXPECT_EQ(Read().value(), "newest");
}

}  // namespace
}  // namespace wvote
