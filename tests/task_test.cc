// Coroutine machinery tests: Task, Future/Promise, Sleep, Spawn, JoinAll,
// JoinUntil. These pin down the exact semantics the protocol code relies on
// (lazy start, symmetric completion, first-set-wins futures, deterministic
// resumption through the event queue).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/sim/future.h"
#include "src/sim/join.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace wvote {
namespace {

Task<int> Return42() { co_return 42; }

Task<int> AddOne(Task<int> inner) {
  const int v = co_await std::move(inner);
  co_return v + 1;
}

Task<void> StoreResult(Task<int> inner, int* out) { *out = co_await std::move(inner); }

TEST(TaskTest, SpawnRunsToCompletionSynchronouslyWhenNoSuspension) {
  int out = 0;
  Spawn(StoreResult(Return42(), &out));
  EXPECT_EQ(out, 42);
}

TEST(TaskTest, NestedAwaits) {
  int out = 0;
  Spawn(StoreResult(AddOne(AddOne(Return42())), &out));
  EXPECT_EQ(out, 44);
}

TEST(TaskTest, LazyUntilAwaited) {
  bool started = false;
  auto body = [](bool* started) -> Task<int> {
    *started = true;
    co_return 1;
  };
  {
    Task<int> t = body(&started);
    EXPECT_FALSE(started);  // not started: destroyed without running
  }
  EXPECT_FALSE(started);
}

TEST(TaskTest, MoveTransfersOwnership) {
  Task<int> a = Return42();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  int out = 0;
  Spawn(StoreResult(std::move(b), &out));
  EXPECT_EQ(out, 42);
}

TEST(TaskTest, StringPayloadsSurviveTheChain) {
  auto make = [](std::string s) -> Task<std::string> { co_return s + s; };
  auto outer = [&make](std::string* out) -> Task<void> {
    std::string payload(100, 'p');
    *out = co_await make(std::move(payload));
  };
  std::string out;
  Spawn(outer(&out));
  EXPECT_EQ(out, std::string(200, 'p'));
}

TEST(SleepTest, ResumesAtTheRightTime) {
  Simulator sim(1);
  TimePoint resumed_at;
  auto sleeper = [](Simulator* sim, TimePoint* out) -> Task<void> {
    co_await sim->Sleep(Duration::Millis(25));
    *out = sim->Now();
  };
  Spawn(sleeper(&sim, &resumed_at));
  sim.Run();
  EXPECT_EQ(resumed_at, TimePoint() + Duration::Millis(25));
}

TEST(SleepTest, ZeroSleepYields) {
  Simulator sim(1);
  std::vector<int> order;
  auto yielder = [](Simulator* sim, std::vector<int>* order) -> Task<void> {
    order->push_back(1);
    co_await sim->Sleep(Duration::Zero());
    order->push_back(3);
  };
  Spawn(yielder(&sim, &order));
  order.push_back(2);  // runs before the yielded continuation
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SleepTest, ConcurrentSleepersInterleave) {
  Simulator sim(1);
  std::vector<std::string> log;
  auto worker = [](Simulator* sim, std::vector<std::string>* log, std::string name,
                   int step_ms) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await sim->Sleep(Duration::Millis(step_ms));
      log->push_back(name + std::to_string(i));
    }
  };
  Spawn(worker(&sim, &log, "a", 10));
  Spawn(worker(&sim, &log, "b", 15));
  sim.Run();
  // a fires at 10,20,30; b at 15,30,45. The t=30 tie goes to b1, whose sleep
  // was scheduled (at t=15) before a2's (at t=20).
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(FutureTest, SetBeforeAwaitIsImmediatelyReady) {
  Simulator sim(1);
  Promise<int> promise(&sim);
  EXPECT_TRUE(promise.Set(5));
  int out = 0;
  auto waiter = [](Future<int> f, int* out) -> Task<void> { *out = co_await std::move(f); };
  Spawn(waiter(promise.GetFuture(), &out));
  sim.Run();
  EXPECT_EQ(out, 5);
}

TEST(FutureTest, SetAfterAwaitResumes) {
  Simulator sim(1);
  Promise<int> promise(&sim);
  int out = 0;
  auto waiter = [](Future<int> f, int* out) -> Task<void> { *out = co_await std::move(f); };
  Spawn(waiter(promise.GetFuture(), &out));
  EXPECT_EQ(out, 0);
  promise.Set(9);
  EXPECT_EQ(out, 0);  // resumption is delivered through the event queue
  sim.Run();
  EXPECT_EQ(out, 9);
}

TEST(FutureTest, FirstSetWins) {
  Simulator sim(1);
  Promise<int> promise(&sim);
  EXPECT_TRUE(promise.Set(1));
  EXPECT_FALSE(promise.Set(2));
  int out = 0;
  auto waiter = [](Future<int> f, int* out) -> Task<void> { *out = co_await std::move(f); };
  Spawn(waiter(promise.GetFuture(), &out));
  sim.Run();
  EXPECT_EQ(out, 1);
}

TEST(FutureTest, IsSetReflectsState) {
  Simulator sim(1);
  Promise<int> promise(&sim);
  EXPECT_FALSE(promise.IsSet());
  promise.Set(3);
  EXPECT_TRUE(promise.IsSet());
}

TEST(JoinAllTest, CollectsAllResults) {
  Simulator sim(1);
  auto delayed = [](Simulator* sim, int value, int ms) -> Task<int> {
    co_await sim->Sleep(Duration::Millis(ms));
    co_return value;
  };
  std::vector<Task<int>> tasks;
  tasks.push_back(delayed(&sim, 1, 30));
  tasks.push_back(delayed(&sim, 2, 10));
  tasks.push_back(delayed(&sim, 3, 20));
  std::vector<int> out;
  auto runner = [](Simulator* sim, std::vector<Task<int>> tasks,
                   std::vector<int>* out) -> Task<void> {
    *out = co_await JoinAll<int>(sim, std::move(tasks));
  };
  Spawn(runner(&sim, std::move(tasks), &out));
  sim.Run();
  EXPECT_EQ(out, (std::vector<int>{2, 3, 1}));  // completion order
}

TEST(JoinAllTest, EmptyInputCompletesImmediately) {
  Simulator sim(1);
  bool done = false;
  auto runner = [](Simulator* sim, bool* done) -> Task<void> {
    std::vector<int> r = co_await JoinAll<int>(sim, {});
    EXPECT_TRUE(r.empty());
    *done = true;
  };
  Spawn(runner(&sim, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(JoinUntilTest, ReturnsWhenPredicateSatisfied) {
  Simulator sim(1);
  auto delayed = [](Simulator* sim, int value, int ms) -> Task<int> {
    co_await sim->Sleep(Duration::Millis(ms));
    co_return value;
  };
  std::vector<Task<int>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(delayed(&sim, i, 10 * (i + 1)));
  }
  std::vector<int> got;
  TimePoint finished;
  auto runner = [](Simulator* sim, std::vector<Task<int>> tasks, std::vector<int>* got,
                   TimePoint* finished) -> Task<void> {
    std::function<bool(const std::vector<int>&)> enough =
        [](const std::vector<int>& r) { return r.size() >= 2; };
    *got = co_await JoinUntil<int>(sim, std::move(tasks), std::move(enough));
    *finished = sim->Now();
  };
  Spawn(runner(&sim, std::move(tasks), &got, &finished));
  sim.Run();
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(finished, TimePoint() + Duration::Millis(20));
}

TEST(JoinUntilTest, StragglersGoToLeftover) {
  Simulator sim(1);
  auto delayed = [](Simulator* sim, int value, int ms) -> Task<int> {
    co_await sim->Sleep(Duration::Millis(ms));
    co_return value;
  };
  std::vector<Task<int>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(delayed(&sim, i, 10 * (i + 1)));
  }
  auto leftovers = std::make_shared<std::vector<int>>();
  auto runner = [](Simulator* sim, std::vector<Task<int>> tasks,
                   std::shared_ptr<std::vector<int>> leftovers) -> Task<void> {
    std::function<bool(const std::vector<int>&)> enough =
        [](const std::vector<int>& r) { return r.size() >= 1; };
    std::function<void(int)> leftover = [leftovers](int v) { leftovers->push_back(v); };
    (void)co_await JoinUntil<int>(sim, std::move(tasks), std::move(enough),
                                  std::move(leftover));
  };
  Spawn(runner(&sim, std::move(tasks), leftovers));
  sim.Run();
  EXPECT_EQ(*leftovers, (std::vector<int>{1, 2, 3}));
}

TEST(JoinUntilTest, CompletesWhenAllDoneEvenIfNeverSatisfied) {
  Simulator sim(1);
  auto delayed = [](Simulator* sim, int value) -> Task<int> {
    co_await sim->Sleep(Duration::Millis(1));
    co_return value;
  };
  std::vector<Task<int>> tasks;
  tasks.push_back(delayed(&sim, 7));
  bool done = false;
  auto runner = [](Simulator* sim, std::vector<Task<int>> tasks, bool* done) -> Task<void> {
    std::function<bool(const std::vector<int>&)> never =
        [](const std::vector<int>&) { return false; };
    std::vector<int> r = co_await JoinUntil<int>(sim, std::move(tasks), std::move(never));
    EXPECT_EQ(r.size(), 1u);
    *done = true;
  };
  Spawn(runner(&sim, std::move(tasks), &done));
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace wvote
