// Anti-entropy: background convergence without client traffic.

#include "src/core/anti_entropy.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace wvote {
namespace {

class AntiEntropyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>();
    for (int i = 0; i < 3; ++i) {
      cluster_->AddRepresentative("rep-" + std::to_string(i));
    }
    config_ = SuiteConfig::MakeUniform("g", {"rep-0", "rep-1", "rep-2"}, 2, 2);
    ASSERT_TRUE(cluster_->CreateSuite(config_, "v1").ok());
    client_ = cluster_->AddClient("client", config_);
  }

  void StartDaemons(Duration horizon) {
    std::vector<HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(cluster_->net().FindHost("rep-" + std::to_string(i))->id());
    }
    stats_.resize(3);
    for (int i = 0; i < 3; ++i) {
      std::vector<HostId> peers;
      for (int j = 0; j < 3; ++j) {
        if (j != i) {
          peers.push_back(hosts[static_cast<size_t>(j)]);
        }
      }
      AntiEntropyOptions opts;
      opts.interval = Duration::Seconds(1);
      opts.stop_at = cluster_->sim().Now() + horizon;
      Spawn(RunAntiEntropy(cluster_->representative("rep-" + std::to_string(i)), "g",
                           std::move(peers), opts, &stats_[static_cast<size_t>(i)]));
    }
  }

  Version VersionAt(int i) {
    Result<VersionedValue> v =
        cluster_->representative("rep-" + std::to_string(i))->CurrentValue("g");
    return v.ok() ? v.value().version : 0;
  }

  std::unique_ptr<Cluster> cluster_;
  SuiteConfig config_;
  SuiteClient* client_ = nullptr;
  std::vector<AntiEntropyStats> stats_;
};

TEST_F(AntiEntropyTest, ConvergesStaleReplicaWithoutClientTraffic) {
  // rep-2 misses a write (down), then recovers; no client ever reads with a
  // broadcast strategy, yet gossip catches it up.
  cluster_->net().FindHost("rep-2")->Crash();
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("v2")).ok());
  cluster_->net().FindHost("rep-2")->Restart();
  EXPECT_EQ(VersionAt(2), 1u);

  StartDaemons(Duration::Seconds(60));
  cluster_->sim().Run();

  EXPECT_EQ(VersionAt(0), 2u);
  EXPECT_EQ(VersionAt(1), 2u);
  EXPECT_EQ(VersionAt(2), 2u);
  uint64_t transfers = 0;
  for (const AntiEntropyStats& s : stats_) {
    transfers += s.pushes + s.pulls;
  }
  EXPECT_GE(transfers, 1u);
}

TEST_F(AntiEntropyTest, InSyncReplicasOnlyExchangeVersionNumbers) {
  StartDaemons(Duration::Seconds(30));
  cluster_->net().ResetStats();
  cluster_->sim().Run();
  uint64_t pushes = 0;
  uint64_t in_sync = 0;
  for (const AntiEntropyStats& s : stats_) {
    pushes += s.pushes + s.pulls;
    in_sync += s.in_sync;
  }
  EXPECT_EQ(pushes, 0u);
  EXPECT_GT(in_sync, 10u);
  // Traffic is tiny: version inquiries only, no contents.
  EXPECT_LT(cluster_->net().stats().bytes_sent, 40000u);
}

TEST_F(AntiEntropyTest, NeverRegressesVersions) {
  StartDaemons(Duration::Seconds(40));
  // Interleave writes with gossip; the conditional install must never move
  // any replica backwards.
  auto writer = [](Simulator* sim, SuiteClient* client) -> Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await sim->Sleep(Duration::Seconds(4));
      (void)co_await client->WriteOnce("gen " + std::to_string(i));
    }
  };
  std::function<Task<void>(Simulator*, SuiteClient*)> writer_fn = writer;
  Spawn(writer_fn(&cluster_->sim(), client_));
  cluster_->sim().Run();

  const Version final0 = VersionAt(0);
  const Version final1 = VersionAt(1);
  const Version final2 = VersionAt(2);
  const Version max_final = std::max({final0, final1, final2});
  EXPECT_EQ(max_final, 9u);  // bootstrap + 8 writes
  // Gossip ran long enough that everyone ends current.
  EXPECT_EQ(final0, max_final);
  EXPECT_EQ(final1, max_final);
  EXPECT_EQ(final2, max_final);
}

TEST_F(AntiEntropyTest, DownHostSkipsRoundsAndRecovers) {
  cluster_->net().FindHost("rep-2")->Crash();
  ASSERT_TRUE(cluster_->RunTask(client_->WriteOnce("while down")).ok());
  StartDaemons(Duration::Seconds(60));
  cluster_->sim().Schedule(Duration::Seconds(20), [this] {
    cluster_->net().FindHost("rep-2")->Restart();
  });
  cluster_->sim().Run();
  EXPECT_EQ(VersionAt(2), 2u);  // caught up after restart
}

}  // namespace
}  // namespace wvote
