// Strategy solver: minimal-quorum enumeration, uniform vs load-optimal
// distributions, capacity weighting, and f-resilience — checked on the small
// vote assignments the repo actually deploys, including the read-path bench
// topology whose optimal max probe share is known in closed form.

#include "src/core/strategy_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace wvote {
namespace {

std::set<std::set<int>> AsSets(const std::vector<StrategyQuorum>& quorums) {
  std::set<std::set<int>> out;
  for (const StrategyQuorum& q : quorums) {
    out.insert(std::set<int>(q.members.begin(), q.members.end()));
  }
  return out;
}

TEST(EnumerateMinimalQuorumsTest, MajorityOfThree) {
  auto quorums = EnumerateMinimalQuorums({1, 1, 1}, 2);
  EXPECT_EQ(AsSets(quorums), (std::set<std::set<int>>{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(EnumerateMinimalQuorumsTest, WeightedVotesDropSupersets) {
  // The read-path bench topology: votes (2,1,1,1), read quorum 2. Host 0
  // alone is a quorum, so no minimal quorum contains host 0 plus anyone.
  auto quorums = EnumerateMinimalQuorums({2, 1, 1, 1}, 2);
  EXPECT_EQ(AsSets(quorums), (std::set<std::set<int>>{{0}, {1, 2}, {1, 3}, {2, 3}}));
}

TEST(EnumerateMinimalQuorumsTest, UnreachableTargetIsEmpty) {
  EXPECT_TRUE(EnumerateMinimalQuorums({1, 1}, 5).empty());
  EXPECT_TRUE(EnumerateMinimalQuorums({}, 1).empty());
}

TEST(EnumerateMinimalQuorumsTest, MembersMatchMaskAndAreSorted) {
  for (const StrategyQuorum& q : EnumerateMinimalQuorums({3, 2, 2, 1, 1}, 5)) {
    EXPECT_TRUE(std::is_sorted(q.members.begin(), q.members.end()));
    uint32_t mask = 0;
    for (uint16_t m : q.members) {
      mask |= 1u << m;
    }
    EXPECT_EQ(mask, q.mask);
  }
}

TEST(QuorumsResilientTest, MajorityOfThreeToleratesOneLoss) {
  auto quorums = EnumerateMinimalQuorums({1, 1, 1}, 2);
  EXPECT_TRUE(QuorumsResilient(quorums, 3, 0));
  EXPECT_TRUE(QuorumsResilient(quorums, 3, 1));
  EXPECT_FALSE(QuorumsResilient(quorums, 3, 2));
}

TEST(QuorumsResilientTest, MandatoryHostBreaksResilience) {
  // Votes (3,1,1), target 4: every quorum contains host 0.
  auto quorums = EnumerateMinimalQuorums({3, 1, 1}, 4);
  EXPECT_FALSE(QuorumsResilient(quorums, 3, 1));
}

TEST(SolveUniformTest, SymmetricSystemIsBalanced) {
  auto quorums = EnumerateMinimalQuorums({1, 1, 1}, 2);
  StrategySolution s = SolveUniform(quorums, 3, {});
  // Each host is in 2 of 3 quorums: load 2/3 each, share 1/3 each.
  ASSERT_EQ(s.load.size(), 3u);
  for (double l : s.load) {
    EXPECT_NEAR(l, 2.0 / 3.0, 1e-12);
  }
  for (double sh : s.shares) {
    EXPECT_NEAR(sh, 1.0 / 3.0, 1e-12);
  }
  EXPECT_NEAR(s.max_share, 1.0 / 3.0, 1e-12);
}

TEST(SolveLoadOptimalTest, ReadPathTopologyHitsKnownOptimum) {
  // Votes (2,1,1,1), r=2. The minimax strategy puts pi on {0} and (1-pi)/3
  // on each pair; load(0)=pi, load(others)=2(1-pi)/3, equal at pi=2/5.
  // Probe shares: host 0 sends 1 probe, pairs send 2, so share(0) =
  // pi / (2 - pi) = 1/4 at the optimum.
  auto quorums = EnumerateMinimalQuorums({2, 1, 1, 1}, 2);
  StrategySolution s = SolveLoadOptimal(quorums, 4, {}, 0);
  EXPECT_NEAR(s.max_load, 0.4, 1e-3);
  EXPECT_NEAR(s.max_share, 0.25, 1e-3);
  EXPECT_LE(s.max_share, 0.35);  // the PR's acceptance bound, with margin
  double total = 0;
  for (double p : s.probability) {
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SolveLoadOptimalTest, NeverWorseThanUniform) {
  const std::vector<std::vector<int>> assignments = {
      {1, 1, 1}, {2, 1, 1, 1}, {3, 2, 2, 1, 1}, {1, 1, 1, 1, 1}};
  const std::vector<int> targets = {2, 2, 5, 3};
  for (size_t i = 0; i < assignments.size(); ++i) {
    auto quorums = EnumerateMinimalQuorums(assignments[i], targets[i]);
    ASSERT_FALSE(quorums.empty());
    StrategySolution uniform = SolveUniform(quorums, assignments[i].size(), {});
    StrategySolution optimal = SolveLoadOptimal(quorums, assignments[i].size(), {}, 0);
    EXPECT_LE(optimal.max_load, uniform.max_load + 1e-6) << "assignment " << i;
    EXPECT_GE(optimal.max_share, optimal.share_lower_bound - 1e-9);
  }
}

TEST(SolveLoadOptimalTest, CapacityShiftsLoadTowardBigHosts) {
  // Majority of three, but host 0 has 4x the capacity: it should absorb
  // more probes than the others once loads are capacity-scaled.
  auto quorums = EnumerateMinimalQuorums({1, 1, 1}, 2);
  StrategySolution s = SolveLoadOptimal(quorums, 3, {4.0, 1.0, 1.0}, 0);
  EXPECT_GT(s.shares[0], s.shares[1] + 0.05);
  EXPECT_GT(s.shares[0], s.shares[2] + 0.05);
  // Capacity-scaled loads still end up near-even (that is the objective).
  EXPECT_NEAR(s.load[1], s.load[2], 1e-2);
}

TEST(SolveLoadOptimalTest, ResilienceKeepsFullSupport) {
  // Without the floor the optimizer may zero out dominated quorums; with
  // f_resilience=1 every minimal quorum keeps positive mass, so any single
  // host's removal leaves a sampled-with-positive-probability quorum.
  auto quorums = EnumerateMinimalQuorums({2, 1, 1, 1}, 2);
  ASSERT_TRUE(QuorumsResilient(quorums, 4, 1));
  StrategySolution s = SolveLoadOptimal(quorums, 4, {}, 1);
  for (double p : s.probability) {
    EXPECT_GT(p, 0.0);
  }
}

TEST(SolveLoadOptimalTest, MandatoryHostBoundsAreReported) {
  // Votes (3,1,1), target 4: host 0 is in every quorum, so share floor is
  // 1/(widest quorum) and load(0) is 1 no matter the strategy.
  auto quorums = EnumerateMinimalQuorums({3, 1, 1}, 4);
  StrategySolution s = SolveLoadOptimal(quorums, 3, {}, 0);
  EXPECT_NEAR(s.load[0], 1.0, 1e-9);
  EXPECT_GE(s.max_share, s.share_lower_bound - 1e-9);
  EXPECT_GT(s.share_lower_bound, 1.0 / 3.0 - 1e-9);
}

TEST(SolveLoadOptimalTest, TooManyHostsFallsBackEmpty) {
  std::vector<int> votes(kMaxStrategyHosts + 1, 1);
  EXPECT_TRUE(EnumerateMinimalQuorums(votes, 2).empty());
}

}  // namespace
}  // namespace wvote
