#include "src/net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace wvote {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(&sim_) {
    a_ = net_.AddHost("a");
    b_ = net_.AddHost("b");
    c_ = net_.AddHost("c");
  }

  std::vector<std::string> DeliveredAt(Host* host) {
    auto log = std::make_shared<std::vector<std::string>>();
    host->SetMessageHandler([log](Message msg) {
      log->push_back(std::any_cast<std::string>(msg.payload));
    });
    logs_.push_back(log);
    return {};
  }

  Simulator sim_;
  Network net_;
  Host* a_;
  Host* b_;
  Host* c_;
  std::vector<std::shared_ptr<std::vector<std::string>>> logs_;
};

TEST_F(NetworkTest, DeliversWithLinkLatency) {
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(7)));
  std::string got;
  TimePoint when;
  b_->SetMessageHandler([&](Message msg) {
    got = std::any_cast<std::string>(msg.payload);
    when = sim_.Now();
  });
  net_.Send(a_->id(), b_->id(), std::string("ping"));
  sim_.Run();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(when, TimePoint() + Duration::Millis(7));
}

TEST_F(NetworkTest, LinkOverridesBeatDefault) {
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(100)));
  net_.SetLink(a_->id(), b_->id(), LatencyModel::Fixed(Duration::Millis(3)));
  TimePoint when;
  b_->SetMessageHandler([&](Message msg) { when = sim_.Now(); });
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_EQ(when, TimePoint() + Duration::Millis(3));
}

TEST_F(NetworkTest, SymmetricLinkSetsBothDirections) {
  net_.SetSymmetricLink(a_->id(), b_->id(), LatencyModel::Fixed(Duration::Millis(4)));
  EXPECT_EQ(net_.ExpectedLatency(a_->id(), b_->id()), Duration::Millis(4));
  EXPECT_EQ(net_.ExpectedLatency(b_->id(), a_->id()), Duration::Millis(4));
}

TEST_F(NetworkTest, SelfLatencyIsZero) {
  EXPECT_EQ(net_.ExpectedLatency(a_->id(), a_->id()), Duration::Zero());
}

TEST_F(NetworkTest, DownSourceDropsSilently) {
  bool delivered = false;
  b_->SetMessageHandler([&](Message) { delivered = true; });
  a_->Crash();
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().dropped_source_down, 1u);
}

TEST_F(NetworkTest, CrashMidFlightLosesMessage) {
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(10)));
  bool delivered = false;
  b_->SetMessageHandler([&](Message) { delivered = true; });
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Schedule(Duration::Millis(5), [&] { b_->Crash(); });
  sim_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().dropped_dest_down, 1u);
}

TEST_F(NetworkTest, RestartedHostReceivesNewMessages) {
  bool delivered = false;
  b_->SetMessageHandler([&](Message) { delivered = true; });
  b_->Crash();
  b_->Restart();
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  bool delivered = false;
  b_->SetMessageHandler([&](Message) { delivered = true; });
  net_.Partition({{a_->id()}, {b_->id(), c_->id()}});
  EXPECT_FALSE(net_.Reachable(a_->id(), b_->id()));
  EXPECT_TRUE(net_.Reachable(b_->id(), c_->id()));
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net_.stats().dropped_partition, 1u);
}

TEST_F(NetworkTest, UnlistedHostsShareImplicitGroup) {
  net_.Partition({{a_->id()}});
  EXPECT_TRUE(net_.Reachable(b_->id(), c_->id()));
  EXPECT_FALSE(net_.Reachable(a_->id(), b_->id()));
}

TEST_F(NetworkTest, HealRestoresConnectivity) {
  bool delivered = false;
  b_->SetMessageHandler([&](Message) { delivered = true; });
  net_.Partition({{a_->id()}, {b_->id()}});
  net_.HealPartition();
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, SelfSendAlwaysReachable) {
  net_.Partition({{a_->id()}, {b_->id()}});
  EXPECT_TRUE(net_.Reachable(a_->id(), a_->id()));
}

TEST_F(NetworkTest, LossyLinkDropsApproximatelyAtRate) {
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(1)), /*loss=*/0.25);
  int delivered = 0;
  b_->SetMessageHandler([&](Message) { ++delivered; });
  for (int i = 0; i < 4000; ++i) {
    net_.Send(a_->id(), b_->id(), std::string("x"));
  }
  sim_.Run();
  EXPECT_NEAR(delivered, 3000, 120);
  EXPECT_EQ(net_.stats().dropped_loss + static_cast<uint64_t>(delivered), 4000u);
}

TEST_F(NetworkTest, DuplicatingLinkDeliversTwiceAndCounts) {
  LinkKnobs knobs;
  knobs.dup_probability = 1.0;
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(1)), knobs);
  int delivered = 0;
  b_->SetMessageHandler([&](Message) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    net_.Send(a_->id(), b_->id(), std::string("x"));
  }
  sim_.Run();
  EXPECT_EQ(delivered, 200);
  EXPECT_EQ(net_.stats().duplicated, 100u);
  // Duplicates are extra deliveries, not extra sends.
  EXPECT_EQ(net_.stats().messages_sent, 100u);
  EXPECT_EQ(net_.stats().messages_delivered, 200u);
}

TEST_F(NetworkTest, DelaySpikesStretchLatencyAndCount) {
  LinkKnobs knobs;
  knobs.delay_spike_probability = 1.0;
  knobs.delay_spike = Duration::Millis(50);
  net_.SetDefaultLink(LatencyModel::Fixed(Duration::Millis(1)), knobs);
  TimePoint when;
  b_->SetMessageHandler([&](Message) { when = sim_.Now(); });
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_EQ(when.ToMicros(), Duration::Millis(51).ToMicros());
  EXPECT_EQ(net_.stats().delay_spikes, 1u);
}

TEST_F(NetworkTest, SetAllLinkKnobsAppliesToOverridesAndClears) {
  net_.SetLink(a_->id(), b_->id(), LatencyModel::Fixed(Duration::Millis(9)));
  LinkKnobs storm;
  storm.dup_probability = 1.0;
  net_.SetAllLinkKnobs(storm);
  int delivered = 0;
  TimePoint when;
  b_->SetMessageHandler([&](Message) { ++delivered; when = sim_.Now(); });
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  // The override's latency survived the knob swap; the message duplicated.
  EXPECT_EQ(when.ToMicros(), Duration::Millis(9).ToMicros());
  EXPECT_EQ(delivered, 2);
  net_.SetAllLinkKnobs(LinkKnobs{});  // all-clear heals the weather
  net_.Send(a_->id(), b_->id(), std::string("x"));
  sim_.Run();
  EXPECT_EQ(delivered, 3);
}

TEST_F(NetworkTest, StatsCountBytes) {
  b_->SetMessageHandler([](Message) {});
  net_.Send(a_->id(), b_->id(), std::string("x"), /*approx_bytes=*/512);
  sim_.Run();
  EXPECT_EQ(net_.stats().bytes_sent, 512u);
  net_.ResetStats();
  EXPECT_EQ(net_.stats().bytes_sent, 0u);
}

TEST_F(NetworkTest, FindHostByName) {
  EXPECT_EQ(net_.FindHost("b"), b_);
  EXPECT_EQ(net_.FindHost("nope"), nullptr);
}

TEST(HostTest, CrashListenersFireOnce) {
  Simulator sim(1);
  Network net(&sim);
  Host* h = net.AddHost("h");
  int crashes = 0;
  int restarts = 0;
  h->AddCrashListener([&] { ++crashes; });
  h->AddRestartListener([&] { ++restarts; });
  h->Crash();
  h->Crash();  // already down: no second event
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(h->crash_epoch(), 1u);
  h->Restart();
  h->Restart();
  EXPECT_EQ(restarts, 1);
  h->Crash();
  EXPECT_EQ(h->crash_epoch(), 2u);
}

TEST(HostTest, SecondInboxClaimAborts) {
  Simulator sim(1);
  Network net(&sim);
  Host* h = net.AddHost("h");
  h->SetMessageHandler([](Message) {});
  EXPECT_DEATH(h->SetMessageHandler([](Message) {}), "claimed");
}

}  // namespace
}  // namespace wvote
