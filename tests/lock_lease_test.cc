// Orphan-lock leases: locks abandoned by a vanished client expire lazily
// when the next acquire runs into them; prepared transactions are exempt.

#include <gtest/gtest.h>

#include <optional>

#include "src/txn/participant.h"

namespace wvote {
namespace {

class LockLeaseTest : public ::testing::Test {
 protected:
  LockLeaseTest() : sim_(1), net_(&sim_) {
    host_ = net_.AddHost("server");
    rpc_ = std::make_unique<RpcEndpoint>(&net_, host_);
    store_ = std::make_unique<StableStore>(&sim_, host_,
                                           LatencyModel::Fixed(Duration::Millis(1)),
                                           LatencyModel::Fixed(Duration::Millis(1)));
    ParticipantOptions opts;
    opts.lock_lease = Duration::Seconds(30);
    // These tests fabricate transactions whose coordinator host does not
    // exist; the in-doubt watchdog would otherwise inquire at it.
    opts.indoubt_resolution_timeout = Duration::Zero();
    participant_ = std::make_unique<Participant>(rpc_.get(), store_.get(), opts);
  }

  TxnId MakeTxn(int64_t ts) {
    TxnId txn;
    txn.timestamp_us = ts;
    txn.serial = static_cast<uint64_t>(ts);
    txn.coordinator = 99;
    return txn;
  }

  Status AcquireNow(TxnId txn, const std::string& key, LockMode mode) {
    auto out = std::make_shared<std::optional<Status>>();
    auto runner = [](Participant* p, TxnId txn, std::string key, LockMode mode,
                     std::shared_ptr<std::optional<Status>> out) -> Task<void> {
      *out = co_await p->Lock(txn, std::move(key), mode);
    };
    Spawn(runner(participant_.get(), txn, key, mode, out));
    sim_.RunFor(Duration::Millis(50));
    return out->has_value() ? **out : InternalError("pending");
  }

  Simulator sim_;
  Network net_;
  Host* host_;
  std::unique_ptr<RpcEndpoint> rpc_;
  std::unique_ptr<StableStore> store_;
  std::unique_ptr<Participant> participant_;
};

TEST_F(LockLeaseTest, OrphanedLockExpiresOnNextAcquire) {
  // An old transaction grabs X and vanishes.
  ASSERT_TRUE(AcquireNow(MakeTxn(100), "k", LockMode::kExclusive).ok());

  // Within the lease: a younger contender still dies on the conflict.
  sim_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(AcquireNow(MakeTxn(200), "k", LockMode::kExclusive).code(),
            StatusCode::kConflict);

  // Past the lease: the orphan is swept and the new acquire succeeds.
  sim_.RunFor(Duration::Seconds(25));
  EXPECT_TRUE(AcquireNow(MakeTxn(300), "k", LockMode::kExclusive).ok());
  EXPECT_EQ(participant_->locks().stats().leases_expired, 1u);
  EXPECT_FALSE(
      participant_->locks().Holds(MakeTxn(100), Participant::DataKey("k"), LockMode::kShared));
}

TEST_F(LockLeaseTest, ActiveRecentLockIsNotExpired) {
  ASSERT_TRUE(AcquireNow(MakeTxn(100), "k", LockMode::kExclusive).ok());
  sim_.RunFor(Duration::Seconds(5));
  EXPECT_EQ(AcquireNow(MakeTxn(200), "k", LockMode::kExclusive).code(),
            StatusCode::kConflict);
  EXPECT_EQ(participant_->locks().stats().leases_expired, 0u);
}

TEST_F(LockLeaseTest, PreparedTransactionLocksAreExempt) {
  TxnId txn = MakeTxn(100);
  ASSERT_TRUE(AcquireNow(txn, "k", LockMode::kExclusive).ok());
  auto preparer = [](Participant* p, TxnId txn) -> Task<void> {
    std::vector<WriteIntent> writes;
    writes.push_back(WriteIntent("k", "prepared value"));
    EXPECT_TRUE((co_await p->Prepare(txn, std::move(writes))).ok());
  };
  Spawn(preparer(participant_.get(), txn));
  sim_.RunFor(Duration::Seconds(1));

  // Far beyond the lease, the prepared transaction's lock still holds: the
  // contender conflicts instead of sweeping it.
  sim_.RunFor(Duration::Seconds(120));
  EXPECT_EQ(AcquireNow(MakeTxn(99999999), "k", LockMode::kExclusive).code(),
            StatusCode::kConflict);
  EXPECT_EQ(participant_->locks().stats().leases_expired, 0u);
}

TEST_F(LockLeaseTest, ExemptionEndsWithCommit) {
  TxnId txn = MakeTxn(100);
  ASSERT_TRUE(AcquireNow(txn, "k", LockMode::kExclusive).ok());
  auto prepare_and_commit = [](Participant* p, TxnId txn) -> Task<void> {
    std::vector<WriteIntent> writes;
    writes.push_back(WriteIntent("k", "v"));
    EXPECT_TRUE((co_await p->Prepare(txn, std::move(writes))).ok());
    EXPECT_TRUE((co_await p->Commit(txn)).ok());
  };
  Spawn(prepare_and_commit(participant_.get(), txn));
  sim_.RunFor(Duration::Seconds(1));
  // Commit released everything; a new acquire succeeds immediately.
  EXPECT_TRUE(AcquireNow(MakeTxn(5000000), "k", LockMode::kExclusive).ok());
}

TEST_F(LockLeaseTest, ManualSweepAlsoWorks) {
  ASSERT_TRUE(AcquireNow(MakeTxn(100), "a", LockMode::kShared).ok());
  ASSERT_TRUE(AcquireNow(MakeTxn(100), "b", LockMode::kShared).ok());
  sim_.RunFor(Duration::Seconds(60));
  std::vector<TxnId> swept = participant_->locks().ReleaseExpired(
      Duration::Seconds(30), [](const TxnId&) { return false; });
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0], MakeTxn(100));
  EXPECT_EQ(participant_->locks().num_locked_keys(), 0u);
}

TEST_F(LockLeaseTest, ZeroLeaseDisablesExpiry) {
  ParticipantOptions opts;
  opts.lock_lease = Duration::Zero();
  Host* host2 = net_.AddHost("server-2");
  RpcEndpoint rpc2(&net_, host2);
  StableStore store2(&sim_, host2, LatencyModel::Fixed(Duration::Millis(1)),
                     LatencyModel::Fixed(Duration::Millis(1)));
  Participant p2(&rpc2, &store2, opts);

  auto lock = [](Participant* p, TxnId txn, std::shared_ptr<std::optional<Status>> out)
      -> Task<void> { *out = co_await p->Lock(txn, "k", LockMode::kExclusive); };
  auto first = std::make_shared<std::optional<Status>>();
  Spawn(lock(&p2, MakeTxn(100), first));
  sim_.RunFor(Duration::Millis(50));
  ASSERT_TRUE(first->has_value() && (*first)->ok());

  sim_.RunFor(Duration::Seconds(600));
  auto second = std::make_shared<std::optional<Status>>();
  Spawn(lock(&p2, MakeTxn(99999999999), second));
  sim_.RunFor(Duration::Millis(50));
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->code(), StatusCode::kConflict);  // never swept
}

}  // namespace
}  // namespace wvote
