// Experiment E9 — background refresh ablation.
//
// Version numbers make stale representatives harmless for correctness, but
// staleness costs latency. The case where it matters: a representative that
// the writers' preferred write quorum never touches. Here a writer near
// srv-a always installs at {srv-a, srv-c} (its two cheapest), so srv-b —
// the representative next to the reader — is permanently stale unless
// someone re-freshens it. With background refresh, the reader's first
// stale observation repairs srv-b and subsequent reads fetch locally; with
// refresh off, every read pays the fetch from the farther current copy.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {


struct RefreshRow {
  double read_mean_ms;
  double read_p99_ms;
  unsigned long long refreshes_installed;
  unsigned long long stale_fetches;  // reader data fetches that left srv-b
  unsigned long long bytes;
};

RefreshRow RunOne(bool refresh_on) {
  ClusterOptions copts;
  copts.seed = 13;
  copts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  copts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  Cluster cluster(copts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  for (const char* s : {"srv-a", "srv-b", "srv-c"}) {
    cluster.AddRepresentative(s);
  }
  SuiteConfig config = SuiteConfig::MakeUniform("doc", {"srv-a", "srv-b", "srv-c"}, 2, 2);
  WVOTE_CHECK(cluster.CreateSuite(config, std::string(16 * 1024, 'd')).ok());

  SuiteClientOptions copt;
  copt.background_refresh = refresh_on;
  // Isolate the refresh effect on explicit data fetches; the fast path
  // (E10) would serve most reads from the probe itself.
  copt.fastpath_reads = false;
  SuiteClient* writer = cluster.AddClient("writer", config, copt);
  SuiteClient* reader = cluster.AddClient("reader", config, copt);

  auto link = [&](const char* a, const char* b, Duration rtt) {
    cluster.net().SetSymmetricLink(cluster.net().FindHost(a)->id(),
                                   cluster.net().FindHost(b)->id(),
                                   LatencyModel::Fixed(rtt / 2));
  };
  // Writer sits near a and c; reader sits near b, with c moderately far and
  // a very far. Writer's cheapest write quorum is {a, c}; reader's cheapest
  // read quorum is {b, c}.
  link("writer", "srv-a", Duration::Millis(20));
  link("writer", "srv-b", Duration::Millis(400));
  link("writer", "srv-c", Duration::Millis(30));
  link("reader", "srv-a", Duration::Millis(500));
  link("reader", "srv-b", Duration::Millis(20));
  link("reader", "srv-c", Duration::Millis(120));

  WorkloadOptions writer_opts;
  writer_opts.read_fraction = 0.0;
  writer_opts.mean_think_time = Duration::Seconds(2);
  writer_opts.run_length = SmokeRun(Duration::Seconds(300), Duration::Seconds(20));
  writer_opts.value_size = 16 * 1024;
  WorkloadStats writer_stats;
  writer_stats.RegisterWith(&cluster.metrics(), {{"client", "writer"}});
  SuiteStoreAdapter writer_store(writer);

  WorkloadOptions reader_opts;
  reader_opts.read_fraction = 1.0;
  reader_opts.mean_think_time = Duration::Millis(100);
  reader_opts.run_length = SmokeRun(Duration::Seconds(300), Duration::Seconds(20));
  WorkloadStats reader_stats;
  reader_stats.RegisterWith(&cluster.metrics(), {{"client", "reader"}});
  SuiteStoreAdapter reader_store(reader);

  cluster.net().ResetStats();
  const uint64_t b_reads_before =
      cluster.representative("srv-b")->stats().data_reads;
  Spawn(RunClosedLoopClient(&cluster.sim(), &writer_store, writer_opts, 41, &writer_stats));
  Spawn(RunClosedLoopClient(&cluster.sim(), &reader_store, reader_opts, 42, &reader_stats));
  cluster.sim().RunUntil(cluster.sim().Now() + reader_opts.run_length +
                         Duration::Seconds(30));

  RefreshRow row{};
  row.read_mean_ms = reader_stats.read_latency.Mean().ToMillis();
  row.read_p99_ms = reader_stats.read_latency.Percentile(99).ToMillis();
  row.refreshes_installed = cluster.representative("srv-b")->stats().refreshes_installed;
  const uint64_t b_reads =
      cluster.representative("srv-b")->stats().data_reads - b_reads_before;
  row.stale_fetches = reader_stats.reads_ok > b_reads ? reader_stats.reads_ok - b_reads : 0;
  row.bytes = cluster.net().stats().bytes_sent;
  DumpMetrics(cluster.metrics(), g_bench_metrics, refresh_on ? "refresh=on" : "refresh=off");
  CollectChromeTrace(cluster, refresh_on ? "refresh=on" : "refresh=off");
  CollectTimeseries(cluster, refresh_on ? "refresh=on" : "refresh=off");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  std::printf("E9: background refresh ablation\n");
  std::printf("writer installs at {a,c}; reader's local rep b is stale unless refreshed\n");
  std::printf("reader RTTs: a=500ms b=20ms c=120ms; 16KiB file; ~1 write / 20 reads\n\n");
  std::printf("%-10s | %11s %11s | %16s %14s | %9s\n", "refresh", "read mean", "read p99",
              "b refreshed (#)", "remote fetches", "MB sent");
  PrintRule(90);
  for (bool on : {false, true}) {
    RefreshRow row = RunOne(on);
    std::printf("%-10s | %9.1fms %9.1fms | %16llu %14llu | %7.2fMB\n", on ? "on" : "off",
                row.read_mean_ms, row.read_p99_ms, row.refreshes_installed, row.stale_fetches,
                static_cast<double>(row.bytes) / 1e6);
  }
  std::printf("\nshape check: with refresh on, srv-b is re-freshened after each update and\n"
              "the reader fetches locally (20ms); with it off every post-update read drags\n"
              "contents from srv-c (120ms), costing latency and wide-area bytes.\n");
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
