// Experiment E5 — weighted voting vs the era's alternatives.
//
// Five replicas on a heterogeneous network; a closed-loop client sweeps the
// read fraction from write-heavy to read-only under each scheme:
//
//   voting(2-1-1-1-1)    weighted voting, tuned r=2/w=5... (see code)
//   rowa                 read-one/write-all as votes (r=1, w=N)
//   majority(votes)      majority quorums as votes (r=w=3)
//   majority-consensus   Thomas '79: timestamps, no locks
//   primary-copy         Stonebraker '79: all ops at the primary
//   unreplicated         single copy on the nearest server
//
// Expected shape: ROWA wins pure reads, collapses as writes appear;
// majority variants are flat; the weighted assignment tracks the best of
// both; primary-copy is capped by the primary's distance; unreplicated is
// the fault-intolerant floor.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/configs.h"
#include "src/baselines/majority_consensus.h"
#include "src/baselines/primary_copy.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {


const Duration kRtt[] = {Duration::Millis(20), Duration::Millis(40), Duration::Millis(80),
                         Duration::Millis(160), Duration::Millis(320)};
constexpr int kNumServers = 5;

struct SchemeResult {
  double read_ms = 0.0;
  double write_ms = 0.0;
  double ops_per_sec = 0.0;
};

std::unique_ptr<Cluster> MakeCluster(uint64_t seed, bool voting_servers) {
  ClusterOptions copts;
  copts.seed = seed;
  copts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  copts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  auto cluster = std::make_unique<Cluster>(copts);
  MaybeEnableTracing(*cluster);
  MaybeEnableScraping(*cluster);
  if (voting_servers) {
    for (int i = 0; i < kNumServers; ++i) {
      cluster->AddRepresentative("srv-" + std::to_string(i));
    }
  }
  return cluster;
}

void WireClient(Cluster& cluster, const std::string& client_host) {
  for (int i = 0; i < kNumServers; ++i) {
    cluster.net().SetSymmetricLink(cluster.net().FindHost(client_host)->id(),
                                   cluster.net().FindHost("srv-" + std::to_string(i))->id(),
                                   LatencyModel::Fixed(kRtt[i] / 2));
  }
}

SchemeResult RunWorkload(Cluster& cluster, ReplicatedStore* store, double read_fraction) {
  WorkloadOptions wopts;
  wopts.read_fraction = read_fraction;
  wopts.mean_think_time = Duration::Millis(100);
  wopts.run_length = SmokeRun(Duration::Seconds(120));
  wopts.value_size = 1024;
  WorkloadStats stats;
  stats.RegisterWith(&cluster.metrics(), {{"client", "client"}});
  Spawn(RunClosedLoopClient(&cluster.sim(), store, wopts, 5, &stats));
  cluster.sim().RunUntil(cluster.sim().Now() + wopts.run_length +
                         Duration::Seconds(30));
  char tag[96];
  std::snprintf(tag, sizeof(tag), "%s rf=%.2f", store->SchemeName(), read_fraction);
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  SchemeResult out;
  out.read_ms = stats.read_latency.Mean().ToMillis();
  out.write_ms = stats.write_latency.Mean().ToMillis();
  out.ops_per_sec = stats.throughput_per_sec(wopts.run_length);
  return out;
}

std::vector<std::string> ServerNames() {
  std::vector<std::string> names;
  for (int i = 0; i < kNumServers; ++i) {
    names.push_back("srv-" + std::to_string(i));
  }
  return names;
}

SchemeResult RunVotingScheme(const SuiteConfig& config, double read_fraction, uint64_t seed) {
  auto cluster = MakeCluster(seed, true);
  WVOTE_CHECK(cluster->CreateSuite(config, "initial").ok());
  // Era comparison: every scheme runs its literal protocol, so voting reads
  // pay the paper's poll + fetch and writes the synchronous 3-RTT commit.
  // The fast path is ablated in E10, async phase 2 in E11.
  SuiteClientOptions copt;
  copt.fastpath_reads = false;
  SuiteClient* client = cluster->AddClient("client", config, copt);
  cluster->coordinator_of("client")->set_sync_phase2(true);
  WireClient(*cluster, "client");
  SuiteStoreAdapter store(client);
  return RunWorkload(*cluster, &store, read_fraction);
}

SchemeResult RunPrimaryCopy(double read_fraction, uint64_t seed) {
  auto cluster = MakeCluster(seed, true);
  SuiteConfig config = MakeUnreplicatedConfig("bench", "srv-0");
  WVOTE_CHECK(cluster->CreateSuite(config, "initial").ok());
  SuiteClientOptions copt;
  copt.fastpath_reads = false;
  SuiteClient* client = cluster->AddClient("client", config, copt);
  cluster->coordinator_of("client")->set_sync_phase2(true);
  WireClient(*cluster, "client");
  std::vector<HostId> backups;
  for (int i = 1; i < kNumServers; ++i) {
    backups.push_back(cluster->net().FindHost("srv-" + std::to_string(i))->id());
  }
  PrimaryCopyStore store(client, backups, PrimaryCopyReadMode::kPrimary);
  store.RegisterMetrics(&cluster->metrics());
  return RunWorkload(*cluster, &store, read_fraction);
}

SchemeResult RunMajorityConsensus(double read_fraction, uint64_t seed) {
  // Timestamp servers own their hosts' inboxes, so they get their own hosts.
  ClusterOptions copts;
  copts.seed = seed;
  Cluster cluster(copts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  std::vector<std::unique_ptr<TimestampServer>> servers;
  std::vector<HostId> replicas;
  for (int i = 0; i < kNumServers; ++i) {
    Host* host = cluster.net().AddHost("ts-" + std::to_string(i));
    servers.push_back(std::make_unique<TimestampServer>(
        &cluster.net(), host, LatencyModel::Fixed(Duration::Micros(500)),
        LatencyModel::Fixed(Duration::Micros(200))));
    replicas.push_back(host->id());
  }
  Host* client_host = cluster.net().AddHost("client");
  RpcEndpoint client_rpc(&cluster.net(), client_host);
  for (int i = 0; i < kNumServers; ++i) {
    cluster.net().SetSymmetricLink(client_host->id(), replicas[i],
                                   LatencyModel::Fixed(kRtt[i] / 2));
  }
  client_rpc.RegisterMetrics(&cluster.metrics());
  MajorityConsensusStore store(&client_rpc, "bench", replicas);
  store.RegisterMetrics(&cluster.metrics());
  return RunWorkload(cluster, &store, read_fraction);
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  std::printf("E5: schemes compared across the read/write mix\n");
  std::printf("5 replicas, client RTTs {20,40,80,160,320}ms, closed loop, 120s runs\n\n");
  std::printf("%-20s", "scheme");
  for (double rf : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    std::printf(" | %16s=%0.2f", "read_fraction", rf);
  }
  std::printf("\n%-20s", "");
  for (int i = 0; i < 5; ++i) {
    std::printf(" | %9s %11s", "read ms", "write ms");
  }
  std::printf("\n");
  PrintRule(135);

  struct Scheme {
    const char* name;
    SchemeResult (*run)(double, uint64_t);
  };

  auto run_weighted = [](double rf, uint64_t seed) {
    SuiteConfig config;
    config.suite_name = "bench";
    config.AddRepresentative("srv-0", 2);
    for (int i = 1; i < kNumServers; ++i) {
      config.AddRepresentative("srv-" + std::to_string(i), 1);
    }
    config.read_quorum = 2;  // srv-0 alone satisfies reads
    config.write_quorum = 5;
    return RunVotingScheme(config, rf, seed);
  };
  auto run_rowa = [](double rf, uint64_t seed) {
    return RunVotingScheme(MakeRowaConfig("bench", ServerNames()), rf, seed);
  };
  auto run_majority_votes = [](double rf, uint64_t seed) {
    return RunVotingScheme(MakeMajorityConfig("bench", ServerNames()), rf, seed);
  };
  auto run_unreplicated = [](double rf, uint64_t seed) {
    return RunVotingScheme(MakeUnreplicatedConfig("bench", "srv-0"), rf, seed);
  };

  const Scheme schemes[] = {
      {"voting(2-1-1-1-1)", +run_weighted},
      {"rowa(r=1,w=5)", +run_rowa},
      {"majority(r=3,w=3)", +run_majority_votes},
      {"majority-consensus", &RunMajorityConsensus},
      {"primary-copy", &RunPrimaryCopy},
      {"unreplicated", +run_unreplicated},
  };

  for (const Scheme& scheme : schemes) {
    std::printf("%-20s", scheme.name);
    uint64_t seed = 1;
    for (double rf : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      SchemeResult res = scheme.run(rf, seed++);
      std::printf(" | %7.1fms %9.1fms", res.read_ms, res.write_ms);
    }
    std::printf("\n");
  }
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
