// Experiment E3 — blocking probability vs representative reliability.
//
// For a five-representative suite under three vote configurations
// (read-one/write-all, majority, and a weighted 2-1-1-1-1 assignment),
// sweeps the per-representative availability and prints the analytic read
// and write availability, validated against a crash-injected simulation
// (fraction of operations that found a quorum).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/model.h"
#include "src/workload/fault_injector.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {


struct VoteScheme {
  const char* name;
  std::vector<int> votes;
  int r;
  int w;
};

// Simulated availability: run a read-heavy workload while every
// representative crash/restarts around the target availability; report the
// fraction of reads and writes that succeeded.
struct SimPoint {
  double read_ok_fraction;
  double write_ok_fraction;
};

SimPoint SimulateAvailability(const VoteScheme& scheme, double availability) {
  ClusterOptions copts;
  copts.seed = 7;
  Cluster cluster(copts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  SuiteConfig config;
  config.suite_name = "avail";
  for (size_t i = 0; i < scheme.votes.size(); ++i) {
    const std::string host = "srv-" + std::to_string(i);
    cluster.AddRepresentative(host);
    config.AddRepresentative(host, scheme.votes[i]);
  }
  config.read_quorum = scheme.r;
  config.write_quorum = scheme.w;
  WVOTE_CHECK(cluster.CreateSuite(config, "x").ok());

  SuiteClientOptions client_opts;
  client_opts.probe_timeout = Duration::Millis(250);
  client_opts.max_gather_rounds = 2;
  SuiteClient* client = cluster.AddClient("client", config, client_opts);

  const Duration run = SmokeRun(Duration::Seconds(600), Duration::Seconds(20));
  const TimePoint end = cluster.sim().Now() + run;
  const FaultProfile profile = ProfileForAvailability(availability, Duration::Seconds(5));
  for (size_t i = 0; i < scheme.votes.size(); ++i) {
    Host* host = cluster.net().FindHost("srv-" + std::to_string(i));
    Spawn(RunCrashRestartCycle(&cluster.sim(), host, profile.mttf, profile.mttr, end,
                               1000 + i));
  }

  // One-shot attempts (no retry) so each op samples quorum availability.
  WorkloadOptions wopts;
  wopts.read_fraction = 0.5;
  wopts.mean_think_time = Duration::Millis(500);
  wopts.run_length = run;
  wopts.value_size = 128;
  WorkloadStats stats;
  stats.RegisterWith(&cluster.metrics(), {{"client", "client"}});
  SuiteStoreAdapter store(client, /*retries=*/1);
  Spawn(RunClosedLoopClient(&cluster.sim(), &store, wopts, /*seed=*/99, &stats));
  cluster.sim().RunUntil(end + Duration::Seconds(30));

  char tag[96];
  std::snprintf(tag, sizeof(tag), "%s p=%.2f", scheme.name, availability);
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);

  SimPoint point{0.0, 0.0};
  if (stats.reads_ok + stats.read_failures > 0) {
    point.read_ok_fraction = static_cast<double>(stats.reads_ok) /
                             static_cast<double>(stats.reads_ok + stats.read_failures);
  }
  if (stats.writes_ok + stats.write_failures > 0) {
    point.write_ok_fraction = static_cast<double>(stats.writes_ok) /
                              static_cast<double>(stats.writes_ok + stats.write_failures);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  const std::vector<VoteScheme> schemes = {
      {"read-one/write-all", {1, 1, 1, 1, 1}, 1, 5},
      {"majority", {1, 1, 1, 1, 1}, 3, 3},
      {"weighted 2-1-1-1-1", {2, 1, 1, 1, 1}, 2, 5},
  };

  std::printf("E3: read/write availability vs per-representative availability\n\n");
  std::printf("%-20s %6s | %11s %11s | %11s %11s\n", "scheme", "p(rep)", "read(model)",
              "read(sim)", "write(model)", "write(sim)");
  PrintRule(92);

  for (const VoteScheme& scheme : schemes) {
    for (double p : {0.5, 0.8, 0.9, 0.95, 0.99}) {
      SuiteModel model;
      for (int v : scheme.votes) {
        model.reps.push_back(
            RepModel("r" + std::to_string(model.reps.size()), v, Duration::Millis(10), p));
      }
      model.read_quorum = scheme.r;
      model.write_quorum = scheme.w;
      VotingAnalysis analysis(model);
      const SimPoint sim = SimulateAvailability(scheme, p);
      std::printf("%-20s %6.2f | %11.4f %11.4f | %11.4f %11.4f\n", scheme.name, p,
                  analysis.ReadAvailability(), sim.read_ok_fraction,
                  analysis.WriteAvailability(), sim.write_ok_fraction);
    }
    PrintRule(92);
  }
  std::printf("shape check: ROWA reads stay available longest; ROWA writes collapse first;\n"
              "majority balances the two; extra votes on one representative skew both.\n");
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
