// Trace-overhead guard — the disabled tracer must stay one branch.
//
// Every RPC send, handler, lock acquisition, and disk write in the hot path
// now calls into the Tracer. The design contract (DESIGN.md §11) is that
// with tracing disabled those calls cost a single predicted branch: no
// allocation, no map insert, no string construction. This bench enforces
// that contract two ways:
//
//   1. A hard guard (runs under --smoke, so `ctest -L bench-smoke` fails if
//      someone accidentally moves allocation onto the disabled path): the
//      measured wall-clock cost of a disabled StartRoot/End pair must stay
//      under a deliberately generous bound. The bound is ~100x the expected
//      cost so scheduler noise and sanitizer builds never trip it, while a
//      stray std::string or map operation (hundreds of ns) still does.
//   2. google-benchmark loops reporting the real ns/op for the disabled and
//      enabled span lifecycle, for humans watching the trend.
//
// It also guards the sim-time scraper the same way: one Scraper::ScrapeAt
// over a deployed cluster's full registry must stay cheap enough that 10ms
// sim-time resolution costs under 1% of bench wall time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/trace/span.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

// Wall-clock ns per disabled StartRoot/End pair, averaged over `iters`.
double MeasureDisabledNsPerOp(int iters) {
  Simulator sim(1);
  Tracer tracer(&sim);  // disabled by default
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    TraceContext ctx = tracer.StartRoot(/*host=*/0, "client.write");
    benchmark::DoNotOptimize(ctx);
    tracer.End(ctx);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
         iters;
}

void RunGuard() {
  // Warm once so the first-touch page faults don't bill to the measurement.
  MeasureDisabledNsPerOp(10000);
  const int iters = g_bench_smoke ? 200000 : 2000000;
  // Best of three trials: the guard asks "CAN this be cheap", so transient
  // scheduler preemption in one trial must not fail the build.
  double best = MeasureDisabledNsPerOp(iters);
  for (int trial = 0; trial < 2; ++trial) {
    const double ns = MeasureDisabledNsPerOp(iters);
    best = ns < best ? ns : best;
  }
  std::printf("trace-overhead guard: disabled StartRoot/End = %.2f ns/op (bound 200)\n",
              best);
  WVOTE_CHECK_MSG(best < 200.0,
                  "disabled-tracing span cost exceeds bound: the disabled path "
                  "must be one branch (no allocation, no map insert)");
}

// Wall-clock ns per Scraper::ScrapeAt against a live cluster's registry,
// averaged over `iters` sim-time windows.
double MeasureScrapeNsPerOp(MetricsRegistry* registry, int iters) {
  ScraperOptions sopts;
  Scraper scraper(registry, sopts);
  const int64_t period = sopts.resolution.ToMicros();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= iters; ++i) {
    scraper.ScrapeAt(TimePoint::FromMicros(i * period));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
         iters;
}

void RunScrapeGuard() {
  // A realistically-populated registry: deploy example 1, run traffic so the
  // suite-client counters, planner gauges, and latency histograms all exist
  // and carry values — the scrape plan walks every one of them.
  ExampleDeployment dep = DeployExample(MakeGiffordExamples()[0]);
  TimeReads(*dep.cluster, dep.client, 50);
  TimeWrites(*dep.cluster, dep.client, 50);

  MeasureScrapeNsPerOp(&dep.cluster->metrics(), 1000);  // warm
  const int iters = g_bench_smoke ? 20000 : 200000;
  double best = MeasureScrapeNsPerOp(&dep.cluster->metrics(), iters);
  for (int trial = 0; trial < 2; ++trial) {
    const double ns = MeasureScrapeNsPerOp(&dep.cluster->metrics(), iters);
    best = ns < best ? ns : best;
  }
  // Same "CAN this be cheap" shape as the trace guard: the bound is generous
  // (~200x a healthy ~0.5us scrape — min-of-3 wall timings inflate badly on
  // oversubscribed CI runners) so sanitizer builds and parallel ctest never
  // trip it, but a scrape that re-snapshots or reallocates whole rings per
  // window (hundreds of us) still does. At 10ms sim-time resolution a
  // read-path bench advances sim time ~1000x faster than wall clock, so 100
  // scrapes per simulated second under this bound is <=1% of bench wall time.
  std::printf("scrape-overhead guard: ScrapeAt = %.0f ns/op (bound 100000)\n", best);
  WVOTE_CHECK_MSG(best < 100000.0,
                  "per-scrape cost exceeds bound: scraping at 10ms sim-time "
                  "resolution must stay under 1%% of bench wall time");
}

void BM_SpanDisabled(benchmark::State& state) {
  Simulator sim(1);
  Tracer tracer(&sim);
  for (auto _ : state) {
    TraceContext ctx = tracer.StartRoot(0, "client.write");
    benchmark::DoNotOptimize(ctx);
    tracer.End(ctx);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);
  for (auto _ : state) {
    TraceContext ctx = tracer.StartRoot(0, "client.write");
    benchmark::DoNotOptimize(ctx);
    tracer.End(ctx);
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanTreeEnabled(benchmark::State& state) {
  // Root + child + annotation: the per-operation shape the write path emits.
  Simulator sim(1);
  Tracer tracer(&sim);
  tracer.Enable(true);
  for (auto _ : state) {
    TraceContext root = tracer.StartRoot(0, "client.write");
    TraceContext phase = tracer.StartChild(root, 0, "phase.prepare");
    tracer.Annotate(phase, "votes=3/3");
    tracer.End(phase);
    tracer.End(root);
  }
}
BENCHMARK(BM_SpanTreeEnabled);

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  RunGuard();
  RunScrapeGuard();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
