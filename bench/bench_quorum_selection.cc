// Experiment E8 — quorum-selection strategy ablation.
//
// Two parts:
//   1. A table comparing the gather latency and message cost of the three
//      probing strategies (lowest-latency, fewest-messages, broadcast) on a
//      heterogeneous 7-representative suite — the design choice behind
//      Gifford's "collect votes from the cheapest representatives".
//   2. google-benchmark microbenchmarks of QuorumPlanner::Plan itself
//      (pure CPU cost of planning, no simulation).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/quorum.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {


GiffordExample MakeHeterogeneousSuite(QuorumStrategy strategy) {
  GiffordExample ex;
  ex.config.suite_name = "hetero";
  const int votes[] = {3, 2, 2, 1, 1, 1, 1};
  const Duration rtt[] = {Duration::Millis(240), Duration::Millis(30), Duration::Millis(60),
                          Duration::Millis(10),  Duration::Millis(20), Duration::Millis(90),
                          Duration::Millis(120)};
  for (int i = 0; i < 7; ++i) {
    const std::string host = "srv-" + std::to_string(i);
    ex.config.AddRepresentative(host, votes[i]);
    ex.model.reps.push_back(RepModel(host, votes[i], rtt[i], 0.99));
    ex.client_rtt.push_back({host, rtt[i]});
  }
  ex.config.read_quorum = ex.model.read_quorum = 5;
  ex.config.write_quorum = ex.model.write_quorum = 7;  // V=11, r+w>11, 2w>11
  return ex;
}

void PrintStrategyTable(int ops) {
  std::printf("E8: probing-strategy ablation (7 reps, votes 3,2,2,1,1,1,1, r=5, w=7)\n\n");
  std::printf("%-18s | %11s %11s | %14s %12s\n", "strategy", "read mean", "write mean",
              "messages/op", "probes sent");
  PrintRule(80);
  for (QuorumStrategy strategy :
       {QuorumStrategy::kLowestLatency, QuorumStrategy::kFewestMessages,
        QuorumStrategy::kBroadcast}) {
    SuiteClientOptions copt;
    copt.strategy = strategy;
    // Probe-strategy costs on the literal two-phase read; the fast path
    // (E10) would mask the strategies' fetch-phase differences.
    copt.fastpath_reads = false;
    GiffordExample ex = MakeHeterogeneousSuite(strategy);
    ExampleDeployment dep = DeployExample(ex, copt);
    dep.cluster->net().ResetStats();
    LatencyHistogram reads = TimeReads(*dep.cluster, dep.client, ops);
    LatencyHistogram writes = TimeWrites(*dep.cluster, dep.client, ops);
    const NetworkStats& net = dep.cluster->net().stats();
    std::printf("%-18s | %9.1fms %9.1fms | %14.1f %12llu\n", QuorumStrategyName(strategy),
                reads.Mean().ToMillis(), writes.Mean().ToMillis(),
                static_cast<double>(net.messages_sent) / (2.0 * ops),
                static_cast<unsigned long long>(dep.client->stats().probes_sent));
    DumpMetrics(dep.cluster->metrics(), g_bench_metrics, QuorumStrategyName(strategy));
    CollectChromeTrace(*dep.cluster, QuorumStrategyName(strategy));
    CollectTimeseries(*dep.cluster, QuorumStrategyName(strategy));
  }
  std::printf("\nshape check: lowest-latency wins time, fewest-messages wins probe count,\n"
              "broadcast pays the most messages for the most failure tolerance.\n\n");
}

SuiteConfig MakePlannerConfig(int n) {
  SuiteConfig config;
  config.suite_name = "planner";
  for (int i = 0; i < n; ++i) {
    config.AddRepresentative("srv-" + std::to_string(i), 1 + i % 3);
  }
  const int v = config.TotalVotes();
  config.read_quorum = v / 2 + 1;
  config.write_quorum = v / 2 + 1;
  return config;
}

void BM_PlanLowestLatency(benchmark::State& state) {
  const SuiteConfig config = MakePlannerConfig(static_cast<int>(state.range(0)));
  QuorumPlanner planner(config, [](const std::string& name) {
    return Duration::Micros(1000 + static_cast<int64_t>(name.size()) * 37);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planner.Plan(config.read_quorum, QuorumStrategy::kLowestLatency));
  }
}
BENCHMARK(BM_PlanLowestLatency)->Arg(3)->Arg(7)->Arg(15)->Arg(31);

void BM_PlanFewestMessages(benchmark::State& state) {
  const SuiteConfig config = MakePlannerConfig(static_cast<int>(state.range(0)));
  QuorumPlanner planner(config, [](const std::string& name) {
    return Duration::Micros(1000 + static_cast<int64_t>(name.size()) * 37);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        planner.Plan(config.read_quorum, QuorumStrategy::kFewestMessages));
  }
}
BENCHMARK(BM_PlanFewestMessages)->Arg(3)->Arg(7)->Arg(15)->Arg(31);

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintStrategyTable(SmokeIters(40));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
