// Experiment E4 — weak representatives as caches.
//
// A client 150ms (RTT) away from the only voting representative reads a
// 64KiB file under varying update rates. With a weak representative on the
// client's host, a read whose cached copy is current pays only the version
// check; the bulk transfer vanishes. As the write fraction grows, hits decay
// and the benefit shrinks — the crossover the paper's weak-representative
// discussion predicts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {


struct Row {
  double read_latency_ms;
  double hit_rate;
  unsigned long long bytes;
};

Row RunOne(double write_fraction, bool with_cache) {
  ClusterOptions copts;
  copts.seed = 11;
  copts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  copts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  Cluster cluster(copts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  cluster.AddRepresentative("server");

  SuiteConfig config;
  config.suite_name = "dataset";
  config.AddRepresentative("server", 1);
  if (with_cache) {
    config.AddWeakRepresentative("reader");
  }
  config.read_quorum = 1;
  config.write_quorum = 1;
  WVOTE_CHECK(cluster.CreateSuite(config, std::string(64 * 1024, 'd')).ok());

  // Isolate the weak-representative effect: literal two-phase reads, so the
  // "without cache" column pays the full version-check + fetch the paper
  // describes. E10 measures the fast path.
  SuiteClientOptions copt;
  copt.fastpath_reads = false;
  SuiteClient* reader = cluster.AddClient("reader", config, copt, with_cache);
  SuiteClient* writer = cluster.AddClient("writer", config, copt);
  cluster.net().SetSymmetricLink(cluster.net().FindHost("reader")->id(),
                                 cluster.net().FindHost("server")->id(),
                                 LatencyModel::Fixed(Duration::Millis(75)));

  WorkloadOptions reader_opts;
  reader_opts.read_fraction = 1.0;
  reader_opts.mean_think_time = Duration::Millis(200);
  reader_opts.run_length = SmokeRun(Duration::Seconds(120));
  WorkloadStats reader_stats;
  reader_stats.RegisterWith(&cluster.metrics(), {{"client", "reader"}});
  SuiteStoreAdapter reader_store(reader);

  WorkloadOptions writer_opts;
  writer_opts.read_fraction = 1.0 - 1e-9;  // overwritten below
  writer_opts.read_fraction = 0.0;
  writer_opts.mean_think_time =
      write_fraction > 0 ? Duration::Micros(static_cast<int64_t>(200000.0 / write_fraction))
                         : Duration::Seconds(100000);
  writer_opts.run_length = SmokeRun(Duration::Seconds(120));
  writer_opts.value_size = 64 * 1024;
  WorkloadStats writer_stats;
  SuiteStoreAdapter writer_store(writer);

  cluster.net().ResetStats();
  Spawn(RunClosedLoopClient(&cluster.sim(), &reader_store, reader_opts, 21, &reader_stats));
  if (write_fraction > 0) {
    Spawn(RunClosedLoopClient(&cluster.sim(), &writer_store, writer_opts, 22, &writer_stats));
  }
  cluster.sim().RunUntil(cluster.sim().Now() + reader_opts.run_length +
                         Duration::Seconds(30));

  Row row{};
  row.read_latency_ms = reader_stats.read_latency.Mean().ToMillis();
  const WeakRepStats* cache =
      with_cache ? &cluster.cache_of("reader")->stats() : nullptr;
  row.hit_rate = (cache && cache->hits + cache->misses > 0)
                     ? static_cast<double>(cache->hits) /
                           static_cast<double>(cache->hits + cache->misses)
                     : 0.0;
  row.bytes = cluster.net().stats().bytes_sent;
  char tag[48];
  std::snprintf(tag, sizeof(tag), "wf=%.2f cache=%s", write_fraction,
                with_cache ? "on" : "off");
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  std::printf("E4: weak representative (client-side cache) under increasing update rate\n");
  std::printf("64KiB file, reader 150ms RTT from the voting representative\n\n");
  std::printf("%-22s | %-34s | %-34s\n", "", "without weak rep", "with weak rep");
  std::printf("%-22s | %12s %9s %9s | %12s %9s %9s\n", "writes per reader-read", "read mean",
              "hit rate", "MB sent", "read mean", "hit rate", "MB sent");
  PrintRule(110);

  for (double wf : {0.0, 0.1, 0.5, 1.0, 2.0}) {
    Row without = RunOne(wf, false);
    Row with = RunOne(wf, true);
    std::printf("%-22.2f | %10.1fms %8.1f%% %8.2fMB | %10.1fms %8.1f%% %8.2fMB\n", wf,
                without.read_latency_ms, without.hit_rate * 100.0,
                static_cast<double>(without.bytes) / 1e6, with.read_latency_ms,
                with.hit_rate * 100.0, static_cast<double>(with.bytes) / 1e6);
  }
  std::printf("\nshape check: at low update rates the cache halves read latency and slashes\n"
              "bytes moved; as updates dominate, hit rate decays and the curves converge.\n");
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
