// E12 — chaos sweep: N seeds x schedule templates x suite configurations,
// checked against the weighted-voting consistency spec.
//
// Every valid configuration (r + w > V, 2w > V) must pass the history
// checker under every fault schedule; the deliberately broken negative
// control (r + w <= V) must be flagged under partitions. On a valid-config
// failure the schedule is minimized by greedy replay and dumped — history,
// minimized schedule, metrics — as a replayable artifact; the negative
// control's first failure is minimized too and its artifact is replayed
// in-process to prove the dump reproduces the verdict bit-for-bit.
//
//   bench_chaos [--smoke] [--seeds=N] [--artifacts=DIR] [--replay=FILE]
//               [--metrics[=json]] [--trace=FILE]
//
// Exit status: 0 iff all valid configs passed AND the negative control was
// flagged AND its artifact replayed to the identical report.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/runner.h"

namespace wvote {
namespace {

std::string g_artifacts_dir;

std::string WriteArtifact(const std::string& stem, const ChaosRunSpec& spec,
                          const FaultSchedule& schedule, const ChaosRunOutcome& outcome) {
  const std::string dir = g_artifacts_dir.empty() ? "." : g_artifacts_dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open() reports failure
  const std::string path = dir + "/" + stem + ".chaos.txt";
  std::ofstream f(path);
  f << DumpArtifact(spec, schedule, outcome);
  return path;
}

// Minimizes, dumps, and reports one failing run. Returns the artifact path.
std::string HandleFailure(const char* label, const ChaosRunSpec& spec,
                          const ChaosRunOutcome& outcome) {
  std::printf("%s: seed=%llu template=%s suite=%s FAILED the checker (%zu violations)\n",
              label, static_cast<unsigned long long>(spec.seed),
              spec.schedule_template.c_str(), spec.suite.name.c_str(),
              outcome.check.violations.size());
  FaultSchedule minimized = MinimizeSchedule(spec, outcome.schedule);
  // Re-run the minimized schedule with scraping on so the artifact carries a
  // flight-recorder tail (SLO events + series around the failure). Scraping
  // is replay-invisible: the section sits past the `---` markers ParseArtifact
  // reads, and the run itself is bit-identical either way.
  ChaosRunSpec recorded = spec;
  recorded.scrape_resolution = Duration::Millis(10);
  ChaosRunOutcome replay = RunChaosWithSchedule(recorded, minimized);
  std::printf("%s: schedule minimized %zu -> %zu events\n", label,
              outcome.schedule.events.size(), minimized.events.size());
  std::fputs(replay.check.Report(minimized).c_str(), stdout);
  const std::string stem = std::string(label) + "-seed" + std::to_string(spec.seed) + "-" +
                           spec.schedule_template + "-" + spec.suite.name;
  const std::string path = WriteArtifact(stem, spec, minimized, replay);
  std::printf("%s: artifact %s (replay with: chaos_cli replay %s)\n", label, path.c_str(),
              path.c_str());
  return path;
}

int ReplayArtifactFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  Result<ChaosReplayFile> replay = ParseArtifact(buf.str());
  if (!replay.ok()) {
    std::fprintf(stderr, "parse error: %s\n", replay.status().ToString().c_str());
    return 2;
  }
  ChaosRunOutcome outcome =
      RunChaosWithSchedule(replay.value().spec, replay.value().schedule);
  std::fputs(outcome.check.Report(replay.value().schedule).c_str(), stdout);
  return outcome.check.ok() ? 0 : 1;
}

int RunSweep(int seeds_per_cell, MetricsMode metrics_mode) {
  const std::vector<std::string> templates = ScheduleTemplateNames();
  std::vector<ChaosSuiteSpec> suites = DefaultSuiteSpecs();
  if (g_bench_smoke) {
    suites.resize(2);  // r1w3x3 + r2w2x3 keep smoke in seconds
  }

  int runs = 0;
  int failures = 0;
  uint64_t ok_ops = 0;
  uint64_t ambiguous_ops = 0;
  uint64_t nemesis_events = 0;
  std::printf("# chaos sweep: %d seeds x %zu templates x %zu suites = %zu runs\n",
              seeds_per_cell, templates.size(), suites.size(),
              static_cast<size_t>(seeds_per_cell) * templates.size() * suites.size());
  std::printf("%-14s %-14s %6s %9s %9s %9s %6s\n", "template", "suite", "runs", "ok_ops",
              "ambig", "nemesis", "fail");
  for (const std::string& tmpl : templates) {
    for (const ChaosSuiteSpec& suite : suites) {
      int cell_failures = 0;
      uint64_t cell_ok = 0;
      uint64_t cell_ambiguous = 0;
      uint64_t cell_nemesis = 0;
      std::string last_metrics;
      for (int seed = 1; seed <= seeds_per_cell; ++seed) {
        ChaosRunSpec spec;
        spec.seed = static_cast<uint64_t>(seed);
        spec.schedule_template = tmpl;
        spec.suite = suite;
        ChaosRunOutcome outcome = RunChaos(spec);
        ++runs;
        cell_ok += outcome.check.ok_reads + outcome.check.ok_writes;
        cell_ambiguous += outcome.check.ambiguous_ops;
        cell_nemesis += outcome.nemesis_events_applied;
        last_metrics = std::move(outcome.metrics_json);
        if (!outcome.check.ok()) {
          ++cell_failures;
          HandleFailure("valid-config", spec, outcome);
        }
      }
      std::printf("%-14s %-14s %6d %9llu %9llu %9llu %6d\n", tmpl.c_str(),
                  suite.name.c_str(), seeds_per_cell,
                  static_cast<unsigned long long>(cell_ok),
                  static_cast<unsigned long long>(cell_ambiguous),
                  static_cast<unsigned long long>(cell_nemesis), cell_failures);
      if (metrics_mode == MetricsMode::kJson && !last_metrics.empty()) {
        std::printf("{\"metrics_tag\":\"chaos/%s/%s\",\"metrics\":%s}\n", tmpl.c_str(),
                    suite.name.c_str(), last_metrics.c_str());
      }
      failures += cell_failures;
      ok_ops += cell_ok;
      ambiguous_ops += cell_ambiguous;
      nemesis_events += cell_nemesis;
    }
  }
  // Strategy-rotation sweep: the same checker, but every workload client is
  // cycled through the probing policies (cheapest -> uniform -> load-optimal
  // -> fewest-messages) mid-run while the nemesis is active. Rotation only
  // changes which current representatives a quorum is gathered from — the
  // consistency spec (R-VALUE, RW-ORDER, convergence) must hold across every
  // switch, including switches racing crashes and partitions.
  const ChaosSuiteSpec rotation_suite =
      g_bench_smoke ? suites[1] : ChaosSuiteSpec{"weighted-r2w4", {2, 2, 1}, 2, 4, false};
  uint64_t total_rotations = 0;
  for (const std::string& tmpl : templates) {
    int cell_failures = 0;
    uint64_t cell_ok = 0;
    uint64_t cell_ambiguous = 0;
    uint64_t cell_nemesis = 0;
    for (int seed = 1; seed <= seeds_per_cell; ++seed) {
      ChaosRunSpec spec;
      spec.seed = static_cast<uint64_t>(seed);
      spec.schedule_template = tmpl;
      spec.suite = rotation_suite;
      spec.rotate_strategies = true;
      ChaosRunOutcome outcome = RunChaos(spec);
      ++runs;
      cell_ok += outcome.check.ok_reads + outcome.check.ok_writes;
      cell_ambiguous += outcome.check.ambiguous_ops;
      cell_nemesis += outcome.nemesis_events_applied;
      total_rotations += outcome.strategy_rotations;
      if (!outcome.check.ok()) {
        ++cell_failures;
        HandleFailure("rotation", spec, outcome);
      }
    }
    std::printf("%-14s %-14s %6d %9llu %9llu %9llu %6d\n", tmpl.c_str(),
                (rotation_suite.name + "+rot").c_str(), seeds_per_cell,
                static_cast<unsigned long long>(cell_ok),
                static_cast<unsigned long long>(cell_ambiguous),
                static_cast<unsigned long long>(cell_nemesis), cell_failures);
    failures += cell_failures;
    ok_ops += cell_ok;
    ambiguous_ops += cell_ambiguous;
    nemesis_events += cell_nemesis;
  }
  std::printf("# rotation sweep: %llu mid-run policy switches applied\n",
              static_cast<unsigned long long>(total_rotations));
  std::printf("# sweep total: %d runs, %llu ok ops, %llu ambiguous, %llu nemesis events, "
              "%d checker failures\n",
              runs, static_cast<unsigned long long>(ok_ops),
              static_cast<unsigned long long>(ambiguous_ops),
              static_cast<unsigned long long>(nemesis_events), failures);
  return failures;
}

// E15 — flight-recorder showcase: one partition run with sim-time scraping
// on. The mid-run partition must drive the read-availability SLO into
// breach and back to recovery (the dip-and-recover in the exported series,
// as judged by the windowed burn-rate engine), leave an slo-breach
// breadcrumb in the trace tail, and attach a non-empty flight record.
// Scraping is pure observation — scrape_determinism_test pins that the run
// itself is bit-identical with it on or off. The r2w2x3 suite is the right
// victim: the partitions template always leaves a one-rep side, so any
// client scattered there cannot gather a 2-vote read quorum until the heal.
int RunSloShowcase() {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ChaosRunSpec spec;
    spec.seed = seed;
    spec.schedule_template = "partitions";
    spec.suite = DefaultSuiteSpecs()[1];  // r2w2x3
    spec.ops_per_client = 120;  // keep traffic flowing past the heal so recovery windows fill
    spec.scrape_resolution = Duration::Millis(10);
    ChaosRunOutcome outcome = RunChaos(spec);
    if (!outcome.check.ok()) {
      return 1;  // a valid config must never fail the checker, showcase or not
    }
    const std::string& fr = outcome.flight_record;
    const bool breached =
        fr.find("{\"rule\":\"read-availability\",\"breach\":true") != std::string::npos;
    const bool recovered =
        fr.find("{\"rule\":\"read-availability\",\"breach\":false") != std::string::npos;
    const bool breadcrumb = fr.find("slo-breach") != std::string::npos;
    if (!(breached && recovered && breadcrumb)) {
      continue;  // this seed's splits spared every client; try the next
    }
    std::printf("# slo showcase: seed %llu partitions drove read-availability into breach "
                "and back to recovery (%llu rule breaches, %zu-byte flight record)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(outcome.slo_breaches), fr.size());
    const size_t ev_begin = fr.find("\"slo_events\":");
    const size_t ev_end = fr.find(",\"trace_tail\"");
    if (ev_begin != std::string::npos && ev_end != std::string::npos && ev_end > ev_begin) {
      std::printf("#   %s\n", fr.substr(ev_begin, ev_end - ev_begin).c_str());
    }
    if (g_timeseries.active()) {
      if (!g_timeseries.first) {
        g_timeseries.objects += ",\n";
      }
      g_timeseries.objects += "{\"tag\":\"chaos/slo-showcase\",\"timeseries\":" +
                              outcome.timeseries_json + ",\"flight_record\":" + fr + "}";
      g_timeseries.first = false;
    }
    return 0;
  }
  std::printf("# ERROR: no partition seed in 1..12 produced a read-availability "
              "breach + recovery — the SLO pipeline is not observing the fault\n");
  return 1;
}

// The negative control must fail, its minimized artifact must replay to the
// identical verdict. Returns 0 on (expected failure found + exact replay).
int RunNegativeControl(int max_seeds) {
  for (int seed = 1; seed <= max_seeds; ++seed) {
    ChaosRunSpec spec;
    spec.seed = static_cast<uint64_t>(seed);
    spec.schedule_template = "partitions";
    spec.suite = NegativeControlSuite();
    ChaosRunOutcome outcome = RunChaos(spec);
    if (outcome.check.ok()) {
      continue;
    }
    std::printf("# negative control (r+w<=V) flagged at seed %d, as required:\n", seed);
    const std::string path = HandleFailure("negative-control", spec, outcome);

    // Replay determinism: parse the artifact we just wrote and re-run it.
    std::ifstream f(path);
    std::stringstream buf;
    buf << f.rdbuf();
    Result<ChaosReplayFile> replay = ParseArtifact(buf.str());
    if (!replay.ok()) {
      std::printf("# ERROR: artifact did not parse: %s\n", replay.status().ToString().c_str());
      return 1;
    }
    ChaosRunOutcome first = RunChaosWithSchedule(spec, replay.value().schedule);
    ChaosRunOutcome second =
        RunChaosWithSchedule(replay.value().spec, replay.value().schedule);
    if (first.check.Report(replay.value().schedule) !=
        second.check.Report(replay.value().schedule)) {
      std::printf("# ERROR: replay from dumped artifact diverged\n");
      return 1;
    }
    std::printf("# negative-control artifact replays deterministically\n");
    return 0;
  }
  std::printf("# ERROR: negative control passed the checker on every seed — the harness "
              "cannot detect broken quorum configs\n");
  return 1;
}

int Main(int argc, char** argv) {
  const MetricsMode metrics_mode = ParseBenchFlags(argc, argv);
  int seeds_per_cell = g_bench_smoke ? 2 : 10;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seeds_per_cell = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--artifacts=", 12) == 0) {
      g_artifacts_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--replay=", 9) == 0) {
      replay_path = argv[i] + 9;
    }
  }
  if (!replay_path.empty()) {
    return ReplayArtifactFile(replay_path);
  }

  const int sweep_failures = RunSweep(seeds_per_cell, metrics_mode);
  const int showcase_status = RunSloShowcase();
  const int negative_status = RunNegativeControl(g_bench_smoke ? 8 : 10);

  if (g_chrome_trace.active()) {
    // One traced representative run; the sweep itself runs untraced (the
    // span trees of 200+ runs would dwarf the artifact).
    ChaosRunSpec spec;
    spec.seed = 1;
    spec.schedule_template = "crash_churn";
    spec.suite = DefaultSuiteSpecs()[1];
    spec.collect_trace = true;
    ChaosRunOutcome outcome = RunChaos(spec);
    if (!g_chrome_trace.first) {
      g_chrome_trace.events += ",\n";
    }
    g_chrome_trace.events += outcome.chrome_trace;
    g_chrome_trace.first = false;
    WriteChromeTrace();
  }
  WriteTimeseries();

  if (sweep_failures > 0) {
    std::printf("# RESULT: FAIL (%d valid-config checker failures)\n", sweep_failures);
    return 1;
  }
  if (showcase_status != 0) {
    std::printf("# RESULT: FAIL (slo showcase did not observe the partition)\n");
    return 1;
  }
  if (negative_status != 0) {
    std::printf("# RESULT: FAIL (negative control not handled)\n");
    return 1;
  }
  std::printf("# RESULT: OK\n");
  return 0;
}

}  // namespace
}  // namespace wvote

int main(int argc, char** argv) { return wvote::Main(argc, argv); }
