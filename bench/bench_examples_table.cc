// Experiment E1 — the paper's Examples table.
//
// For each of the three example file suites, prints the configuration row
// (votes, r, w, per-representative latency), the analytically derived read
// and write latency and blocking probability, and the same quantities
// measured by running the configuration live on the simulated network.
// The absolute milliseconds come from the reconstructed 1979 latency
// parameters; the relationships between the rows are the paper's findings:
// Example 1 is cheap in both directions but rides on one server; Example 2
// pays a moderate write cost for balanced availability; Example 3 buys the
// cheapest possible reads with the most expensive, least available writes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/model.h"

using namespace wvote;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  const MetricsMode metrics_mode = ParseBenchFlags(argc, argv);
  const int ops = SmokeIters(50);
  std::printf("E1: Gifford's example file suites — analytic vs simulated\n");
  std::printf("(representative availability 0.99 for blocking probabilities)\n\n");

  std::printf("%-10s %-22s %3s %3s | %12s %12s | %12s %12s | %10s %10s\n", "example",
              "votes<latency ms>", "r", "w", "read(model)", "read(sim)", "write(model)",
              "write(sim)", "P[r blocked]", "P[w blocked]");
  PrintRule(130);

  // The analytic model describes the literal two-phase read (version poll,
  // then data fetch) and the literal 3-RTT synchronous commit; E10 measures
  // the fast-path read and E11 the asynchronous-phase-2 write.
  SuiteClientOptions copts;
  copts.fastpath_reads = false;

  for (const GiffordExample& ex : MakeGiffordExamples(0.99)) {
    VotingAnalysis analysis(ex.model);

    ExampleDeployment dep = DeployExample(ex, copts);
    dep.cluster->coordinator_of("client")->set_sync_phase2(true);
    // Warm the cache so Example 1 measures the steady (cached) read path,
    // matching the analytic "cached" column.
    (void)dep.cluster->RunTask(dep.client->ReadOnce());
    LatencyHistogram reads = TimeReads(*dep.cluster, dep.client, ops);
    LatencyHistogram writes = TimeWrites(*dep.cluster, dep.client, ops);

    std::string votes;
    for (size_t i = 0; i < ex.model.reps.size(); ++i) {
      if (i > 0) {
        votes += ",";
      }
      votes += std::to_string(ex.model.reps[i].votes) + "<" +
               std::to_string(ex.model.reps[i].latency.ToMicros() / 1000) + ">";
    }

    std::printf("%-10s %-22s %3d %3d | %10.1fms %10.1fms | %10.1fms %10.1fms | %10.2e %10.2e\n",
                ex.name.c_str(), votes.c_str(), ex.model.read_quorum, ex.model.write_quorum,
                analysis.ReadLatencyAllUp(ex.client_has_cache).ToMillis(),
                reads.Mean().ToMillis(), analysis.WriteLatencyAllUp().ToMillis(),
                writes.Mean().ToMillis(), analysis.ReadBlockingProbability(),
                analysis.WriteBlockingProbability());
    CollectChromeTrace(*dep.cluster, ex.name);
    CollectTimeseries(*dep.cluster, ex.name);
  }

  std::printf("\nper-example traffic for %d reads + %d writes:\n", ops, ops);
  for (const GiffordExample& ex : MakeGiffordExamples(0.99)) {
    ExampleDeployment dep = DeployExample(ex, copts);
    dep.cluster->coordinator_of("client")->set_sync_phase2(true);
    (void)dep.cluster->RunTask(dep.client->ReadOnce());
    dep.cluster->net().ResetStats();
    (void)TimeReads(*dep.cluster, dep.client, ops);
    (void)TimeWrites(*dep.cluster, dep.client, ops);
    const NetworkStats& net = dep.cluster->net().stats();
    std::printf("  %-10s messages=%6llu bytes=%9llu cache_hits=%llu\n", ex.name.c_str(),
                static_cast<unsigned long long>(net.messages_sent),
                static_cast<unsigned long long>(net.bytes_sent),
                static_cast<unsigned long long>(
                    ex.client_has_cache ? dep.cluster->cache_of("client")->stats().hits : 0));
    DumpMetrics(dep.cluster->metrics(), metrics_mode, ex.name);
    CollectChromeTrace(*dep.cluster, ex.name + "-traffic");
    CollectTimeseries(*dep.cluster, ex.name + "-traffic");
  }
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
