// Experiment E2 — the r/w tuning spectrum.
//
// A five-representative suite (one vote each) on a heterogeneous network.
// Sweeping every legal (r, w) pair moves the suite continuously from
// read-one/write-all (r=1, w=5) to write-optimized (r=5, w... bounded by
// 2w > V), with majority (r=3, w=3) in the middle. The figure the paper's
// discussion implies: read latency rises and write latency falls (and read
// availability falls, write availability rises) as r grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/model.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

GiffordExample MakeSpectrumSuite(int r, int w, double availability) {
  GiffordExample ex;
  ex.name = "spectrum";
  const Duration latencies[] = {Duration::Millis(20), Duration::Millis(40),
                                Duration::Millis(80), Duration::Millis(160),
                                Duration::Millis(320)};
  ex.config.suite_name = "spectrum";
  for (int i = 0; i < 5; ++i) {
    const std::string host = "srv-" + std::to_string(i);
    ex.model.reps.push_back(RepModel(host, 1, latencies[i], availability));
    ex.config.AddRepresentative(host, 1);
    ex.client_rtt.push_back({host, latencies[i]});
  }
  ex.model.read_quorum = ex.config.read_quorum = r;
  ex.model.write_quorum = ex.config.write_quorum = w;
  return ex;
}

}  // namespace

int main(int argc, char** argv) {
  const MetricsMode metrics_mode = ParseBenchFlags(argc, argv);
  const int ops = SmokeIters(30);
  constexpr double kAvailability = 0.99;
  std::printf("E2: read/write latency and availability across the (r, w) spectrum\n");
  std::printf("5 representatives, 1 vote each, client RTTs {20,40,80,160,320}ms, "
              "availability %.2f\n\n", kAvailability);
  std::printf("%3s %3s | %12s %12s | %12s %12s | %12s %12s | %s\n", "r", "w", "read(model)",
              "read(sim)", "write(model)", "write(sim)", "read avail", "write avail", "note");
  PrintRule(120);

  for (int r = 1; r <= 5; ++r) {
    for (int w = 1; w <= 5; ++w) {
      if (r + w <= 5 || 2 * w <= 5) {
        continue;  // violates quorum intersection
      }
      GiffordExample ex = MakeSpectrumSuite(r, w, kAvailability);
      VotingAnalysis analysis(ex.model);

      // Literal two-phase reads and synchronous 3-RTT commits: the model
      // columns describe the paper's literal protocol. E10 measures the
      // fast-path read and E11 the asynchronous-phase-2 write.
      SuiteClientOptions copts;
      copts.fastpath_reads = false;
      ExampleDeployment dep = DeployExample(ex, copts);
      dep.cluster->coordinator_of("client")->set_sync_phase2(true);
      LatencyHistogram reads = TimeReads(*dep.cluster, dep.client, ops);
      LatencyHistogram writes = TimeWrites(*dep.cluster, dep.client, ops);

      const char* note = "";
      if (r == 1 && w == 5) {
        note = "<- read-one/write-all";
      } else if (r == 3 && w == 3) {
        note = "<- majority";
      }
      std::printf("%3d %3d | %10.1fms %10.1fms | %10.1fms %10.1fms | %12.6f %12.6f | %s\n", r,
                  w, analysis.ReadLatencyAllUp(false).ToMillis(), reads.Mean().ToMillis(),
                  analysis.WriteLatencyAllUp().ToMillis(), writes.Mean().ToMillis(),
                  analysis.ReadAvailability(), analysis.WriteAvailability(), note);
      char tag[32];
      std::snprintf(tag, sizeof(tag), "r=%d w=%d", r, w);
      DumpMetrics(dep.cluster->metrics(), metrics_mode, tag);
      CollectChromeTrace(*dep.cluster, tag);
      CollectTimeseries(*dep.cluster, tag);
    }
  }
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
