// Experiment E10 — single-round-trip fast-path reads.
//
// Measures what piggybacking contents on version probes buys on a read-heavy
// workload: baseline (fastpath off: every read pays version poll + explicit
// data fetch) vs fast path (the cheapest likely-current probe carries the
// data; the quorum's currency proof covers the piggybacked copy).
//
// Two scenarios, each run both ways:
//   steady — healthy heterogeneous suite, 10:1 read:write mix;
//   faulty — same suite with the cheapest representative crash/restarting
//            throughout, exercising the fallback path.
//
// Rows report read latency (mean/p50/p99), messages and bytes per read, and
// the fast-path hit rate. `--metrics[=json]` dumps the full registry per
// scenario; BENCH_read_path.json commits the JSON trajectories (format
// documented in EXPERIMENTS.md). `--smoke` shrinks iteration counts so CI
// can run the binary end-to-end in seconds.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/histogram.h"
#include "src/workload/fault_injector.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

int g_reads = 400;  // per scenario; 10:1 read:write mix

GiffordExample MakeReadPathSuite() {
  GiffordExample ex;
  ex.config.suite_name = "readpath";
  const int votes[] = {2, 1, 1, 1};
  const Duration rtt[] = {Duration::Millis(10), Duration::Millis(30), Duration::Millis(60),
                          Duration::Millis(120)};
  for (int i = 0; i < 4; ++i) {
    const std::string host = "srv-" + std::to_string(i);
    ex.config.AddRepresentative(host, votes[i]);
    ex.client_rtt.push_back({host, rtt[i]});
  }
  ex.config.read_quorum = 2;
  ex.config.write_quorum = 4;  // V=5, r+w>5, 2w>5
  return ex;
}

struct RunResult {
  LatencyHistogram reads;
  double messages_per_read = 0;
  double bytes_per_read = 0;
  double hit_rate = 0;
  uint64_t plan_builds = 0;
  // Per-host read work, attributed from representative-side counters:
  // version polls answered plus explicit data reads served. max_share is the
  // busiest host's fraction of that total — the probe-load hotspot measure
  // E14 optimizes (cheapest-first pins it near the top representative).
  uint64_t polls[4] = {0, 0, 0, 0};
  uint64_t data_reads[4] = {0, 0, 0, 0};
  double max_share = 0;
};

// Read-heavy closed loop: every 10th operation is a write (so versions move
// and stale-hint fallbacks actually occur); read latencies are recorded.
RunResult RunWorkload(bool fastpath, bool faulty, const char* tag) {
  SuiteClientOptions copts;
  copts.fastpath_reads = fastpath;
  copts.probe_timeout = Duration::Millis(300);
  GiffordExample ex = MakeReadPathSuite();
  ExampleDeployment dep = DeployExample(ex, copts, /*seed=*/42);
  Cluster& cluster = *dep.cluster;

  if (faulty) {
    // The cheapest representative — the fast path's preferred target —
    // flaps for the whole run.
    Host* victim = cluster.net().FindHost("srv-0");
    Spawn(RunCrashRestartCycle(&cluster.sim(), victim, /*mttf=*/Duration::Seconds(2),
                               /*mttr=*/Duration::Seconds(1),
                               cluster.sim().Now() + Duration::Seconds(3600), /*seed=*/7));
  }

  Status seeded = InternalError("unattempted");
  for (int tries = 0; tries < 200 && !seeded.ok(); ++tries) {
    seeded = cluster.RunTask(dep.client->WriteOnce("contents-0"));
    if (!seeded.ok()) {
      cluster.sim().RunFor(Duration::Millis(200));
    }
  }
  WVOTE_CHECK(seeded.ok());
  cluster.net().ResetStats();
  dep.client->ResetStats();
  for (int h = 0; h < 4; ++h) {
    cluster.representative("srv-" + std::to_string(h))->ResetStats();
  }

  RunResult out;
  const uint64_t messages_before = cluster.net().stats().messages_sent;
  const uint64_t bytes_before = cluster.net().stats().bytes_sent;
  int writes = 0;
  for (int i = 0; i < g_reads; ++i) {
    if (i % 10 == 9) {
      // The heavy representative's 2 votes are necessary for w=4, so writes
      // are *unavailable* while it is down (the paper's trade-off for
      // weighted assignments). Park the closed loop until it recovers.
      Status st = InternalError("unattempted");
      for (int tries = 0; tries < 200 && !st.ok(); ++tries) {
        st = cluster.RunTask(
            dep.client->WriteOnce("contents-" + std::to_string(writes + 1), /*retries=*/5));
        if (!st.ok()) {
          cluster.sim().RunFor(Duration::Millis(200));
        }
      }
      WVOTE_CHECK_MSG(st.ok(), "bench write failed");
      ++writes;
    }
    // Same parking for reads: a mid-read crash of srv-0 can leave a gather
    // whose only current member is gone (kUnavailable, not retried inside
    // ReadOnce). Record the latency of the attempt that succeeded.
    Result<std::string> r = TimeoutError("unattempted");
    TimePoint t0 = cluster.sim().Now();
    for (int tries = 0; tries < 200 && !r.ok(); ++tries) {
      t0 = cluster.sim().Now();
      r = cluster.RunTask(dep.client->ReadOnce(/*retries=*/5));
      if (!r.ok()) {
        cluster.sim().RunFor(Duration::Millis(200));
      }
    }
    WVOTE_CHECK_MSG(r.ok(), "bench read failed");
    out.reads.Record(cluster.sim().Now() - t0);
  }

  const SuiteClientStats& stats = dep.client->stats();
  out.messages_per_read =
      static_cast<double>(cluster.net().stats().messages_sent - messages_before) / g_reads;
  out.bytes_per_read =
      static_cast<double>(cluster.net().stats().bytes_sent - bytes_before) / g_reads;
  const uint64_t decided = stats.fastpath_hits + stats.fastpath_misses;
  out.hit_rate = decided == 0 ? 0.0 : static_cast<double>(stats.fastpath_hits) / decided;
  out.plan_builds = stats.plan_builds;
  uint64_t total_read_work = 0;
  for (int h = 0; h < 4; ++h) {
    const RepresentativeStats& rs =
        cluster.representative("srv-" + std::to_string(h))->stats();
    out.polls[h] = rs.version_polls;
    out.data_reads[h] = rs.data_reads;
    total_read_work += rs.version_polls + rs.data_reads;
  }
  for (int h = 0; h < 4 && total_read_work > 0; ++h) {
    const double share =
        static_cast<double>(out.polls[h] + out.data_reads[h]) / total_read_work;
    out.max_share = std::max(out.max_share, share);
  }
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return out;
}

// One attribution line per run: where read work (version polls + explicit
// data reads) actually landed, host by host. This is the raw view of the
// probe-share gauges E14's strategies optimize.
void PrintAttribution(const char* name, const char* mode, const RunResult& r) {
  std::printf("%-8s %-8s |", name, mode);
  uint64_t total = 0;
  for (int h = 0; h < 4; ++h) {
    total += r.polls[h] + r.data_reads[h];
  }
  for (int h = 0; h < 4; ++h) {
    const uint64_t work = r.polls[h] + r.data_reads[h];
    const double share = total == 0 ? 0.0 : static_cast<double>(work) / total;
    std::printf("  srv-%d %5.1f%% (%llu+%llu)", h, 100.0 * share,
                static_cast<unsigned long long>(r.polls[h]),
                static_cast<unsigned long long>(r.data_reads[h]));
  }
  std::printf("\n");
}

void PrintScenario(const char* name, bool faulty) {
  RunResult base = RunWorkload(/*fastpath=*/false, faulty,
                               (std::string("baseline-") + name).c_str());
  RunResult fast = RunWorkload(/*fastpath=*/true, faulty,
                               (std::string("fastpath-") + name).c_str());
  std::printf("%-8s baseline | %8.2fms %8.2fms %8.2fms | %7.1f %9.0f | %7s | %5.2f | %llu\n",
              name, base.reads.Mean().ToMillis(), base.reads.Percentile(50).ToMillis(),
              base.reads.Percentile(99).ToMillis(), base.messages_per_read,
              base.bytes_per_read, "-", base.max_share,
              static_cast<unsigned long long>(base.plan_builds));
  std::printf("%-8s fastpath | %8.2fms %8.2fms %8.2fms | %7.1f %9.0f | %6.1f%% | %5.2f | %llu\n",
              name, fast.reads.Mean().ToMillis(), fast.reads.Percentile(50).ToMillis(),
              fast.reads.Percentile(99).ToMillis(), fast.messages_per_read,
              fast.bytes_per_read, 100.0 * fast.hit_rate, fast.max_share,
              static_cast<unsigned long long>(fast.plan_builds));
  PrintAttribution(name, "baseline", base);
  PrintAttribution(name, "fastpath", fast);
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  g_reads = SmokeIters(g_reads, /*tiny=*/20);
  std::printf("E10: fast-path reads — piggybacked data on version probes\n");
  std::printf("(4 reps, votes 2,1,1,1, r=2, w=4; %d reads per run, 10:1 read:write)\n\n",
              g_reads);
  std::printf("%-17s | %10s %10s %10s | %11s %9s | %7s | %5s | plan builds\n", "scenario",
              "read mean", "p50", "p99", "msgs/read", "bytes/read", "hits", "max");
  PrintRule(108);
  PrintScenario("steady", /*faulty=*/false);
  PrintScenario("faulty", /*faulty=*/true);
  std::printf(
      "\nshape check: fastpath-steady reads take one round trip to the cheapest\n"
      "representative (half the baseline's two), hit rate well above 90%%; the faulty\n"
      "run keeps every read current, paying the explicit fetch only when the\n"
      "piggyback target is down or stale. plan builds count post-warmup rebuilds:\n"
      "0 means the quorum plan cached at the seeding write served every operation.\n"
      "max is the busiest host's share of read work (per-host lines show polls+data\n"
      "reads): cheapest-first concentrates it on srv-0 — E14 shows what sampled\n"
      "strategies buy back.\n");
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
