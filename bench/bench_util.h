// Shared helpers for the experiment binaries in bench/.
//
// Each bench regenerates one table or figure of the paper's evaluation (see
// DESIGN.md's experiment index). They print their rows to stdout; the
// simulation is deterministic, so rows are reproducible bit-for-bit for a
// given seed.

#ifndef WVOTE_BENCH_BENCH_UTIL_H_
#define WVOTE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/gifford_examples.h"
#include "src/core/cluster.h"
#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"

namespace wvote {

// --metrics[=text|json] support: every bench accepts the flag and dumps a
// registry snapshot per scenario, so BENCH_*.json trajectories come from the
// unified metrics layer instead of hand-rolled prints.
enum class MetricsMode { kNone, kText, kJson };

inline MetricsMode ParseMetricsMode(int argc, char** argv) {
  MetricsMode mode = MetricsMode::kNone;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0 || std::strcmp(argv[i], "--metrics=text") == 0) {
      mode = MetricsMode::kText;
    } else if (std::strcmp(argv[i], "--metrics=json") == 0) {
      mode = MetricsMode::kJson;
    }
  }
  return mode;
}

// --trace=FILE support: every bench accepts the flag and exports a
// Chrome-trace-event JSON file (chrome://tracing, Perfetto) covering every
// scenario it ran. With the flag present, clusters deploy with the causal
// tracer enabled; each scenario drains its spans into one shared
// traceEvents array (tagged, distinct pid ranges) before tearing its
// cluster down, and main() writes the file once at exit.
struct ChromeTraceState {
  std::string path;       // empty = flag absent, tracing stays disabled
  std::string events;     // accumulated traceEvents bodies
  bool first = true;
  int next_pid_base = 0;  // keeps per-cluster host pids disjoint

  bool active() const { return !path.empty(); }
};
inline ChromeTraceState g_chrome_trace;

inline void ParseTraceFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      g_chrome_trace.path = argv[i] + 8;
    }
  }
}

// Call right after constructing a cluster whose traffic should be traced.
inline void MaybeEnableTracing(Cluster& cluster) {
  if (g_chrome_trace.active()) {
    cluster.tracer().Enable(true);
  }
}

// Call once per cluster before it is destroyed; `tag` labels its processes
// in the exported file (e.g. the scenario name).
inline void CollectChromeTrace(Cluster& cluster, const std::string& tag) {
  if (!g_chrome_trace.active()) {
    return;
  }
  g_chrome_trace.next_pid_base = cluster.tracer().AppendChromeEvents(
                                     &g_chrome_trace.events, &g_chrome_trace.first,
                                     g_chrome_trace.next_pid_base, tag) +
                                 1;
}

// Call once at the end of main(); writes the collected trace if --trace was
// given.
inline void WriteChromeTrace() {
  if (!g_chrome_trace.active()) {
    return;
  }
  std::FILE* f = std::fopen(g_chrome_trace.path.c_str(), "w");
  WVOTE_CHECK_MSG(f != nullptr, "cannot open --trace output file");
  std::fprintf(f, "{\"traceEvents\":[\n%s\n]}\n", g_chrome_trace.events.c_str());
  std::fclose(f);
  std::fprintf(stderr, "wrote Chrome trace to %s\n", g_chrome_trace.path.c_str());
}

// --timeseries=FILE support: every bench accepts the flag and exports the
// sim-time time-series layer (src/obs/timeseries.h) for every scenario it
// ran, as a JSON array of {"tag","timeseries","slo_events"} objects. With
// the flag present, clusters deploy with 10ms sim-time scraping enabled
// (replay-invisible — the scraper rides the simulator metronome), and each
// scenario prints a terminal sparkline summary of its headline series.
struct TimeseriesState {
  std::string path;    // empty = flag absent, scraping stays disabled
  Duration resolution = Duration::Millis(10);
  std::string objects;  // accumulated per-scenario JSON objects
  bool first = true;

  bool active() const { return !path.empty(); }
};
inline TimeseriesState g_timeseries;

inline void ParseTimeseriesFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
      g_timeseries.path = argv[i] + 13;
    }
  }
}

// Call right after constructing a cluster (DeployExample does it for you).
inline void MaybeEnableScraping(Cluster& cluster) {
  if (g_timeseries.active()) {
    cluster.EnableScraping(g_timeseries.resolution);
  }
}

// Terminal sparkline summary: one line per headline series that carried
// traffic this scenario, scaled to its own range over the last 64 windows.
inline void PrintSparklines(const Cluster& cluster, const std::string& tag) {
  static const char* kHeadline[] = {
      "core.suite_client.reads",       "core.suite_client.writes",
      "core.suite_client.probes_sent", "core.suite_client.unavailable",
      "net.network.messages_sent",
  };
  const TimeSeriesStore& store = cluster.scraper()->store();
  std::printf("timeseries [%s] %llu windows @ %lldus\n", tag.c_str(),
              static_cast<unsigned long long>(store.windows_sealed()),
              static_cast<long long>(store.resolution_us()));
  for (const char* name : kHeadline) {
    const std::vector<double> tail = store.SumTail(name, 64);
    double total = 0.0;
    for (double v : tail) {
      total += v;
    }
    if (total > 0.0) {
      std::printf("  %-34s %s\n", name, Sparkline(tail).c_str());
    }
  }
  if (cluster.slo() != nullptr && cluster.slo()->total_breaches() > 0) {
    std::printf("  SLO breaches:\n%s", cluster.slo()->Summary().c_str());
  }
}

// Call once per cluster before it is destroyed; `tag` labels the scenario.
inline void CollectTimeseries(Cluster& cluster, const std::string& tag) {
  if (!g_timeseries.active() || cluster.scraper() == nullptr) {
    return;
  }
  const TimeSeriesStore& store = cluster.scraper()->store();
  if (!g_timeseries.first) {
    g_timeseries.objects += ",\n";
  }
  g_timeseries.first = false;
  g_timeseries.objects += "{\"tag\":\"" + tag + "\",\"timeseries\":";
  g_timeseries.objects += store.ExportJson(store.capacity());
  g_timeseries.objects += ",\"slo_events\":";
  g_timeseries.objects +=
      cluster.slo() != nullptr ? cluster.slo()->EventsJson() : std::string("[]");
  g_timeseries.objects += "}";
  PrintSparklines(cluster, tag);
}

// Call once at the end of main(); writes the collected series if
// --timeseries was given.
inline void WriteTimeseries() {
  if (!g_timeseries.active()) {
    return;
  }
  std::FILE* f = std::fopen(g_timeseries.path.c_str(), "w");
  WVOTE_CHECK_MSG(f != nullptr, "cannot open --timeseries output file");
  std::fprintf(f, "[\n%s\n]\n", g_timeseries.objects.c_str());
  std::fclose(f);
  std::fprintf(stderr, "wrote time-series to %s\n", g_timeseries.path.c_str());
}

// --smoke support: the bench-smoke ctest label runs every experiment binary
// end-to-end with shrunk iteration counts and run lengths, so a broken bench
// fails CI in seconds instead of rotting until the next full run. Each bench
// sets `g_bench_smoke` from ParseSmoke() and routes its sizes through
// SmokeIters() / SmokeRun(); full-size runs are unaffected.
inline bool g_bench_smoke = false;

inline bool ParseSmoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return true;
    }
  }
  return false;
}

inline int SmokeIters(int full, int tiny = 5) {
  return g_bench_smoke ? (full < tiny ? full : tiny) : full;
}

inline Duration SmokeRun(Duration full, Duration tiny = Duration::Seconds(5)) {
  return g_bench_smoke ? (full < tiny ? full : tiny) : full;
}

// The metrics mode every bench shares, set by ParseBenchFlags.
inline MetricsMode g_bench_metrics = MetricsMode::kNone;

// One-call parsing of the flags common to every bench: --metrics[=text|json],
// --smoke, --trace=FILE, and --timeseries=FILE. Sets the bench-wide globals
// (g_bench_metrics, g_bench_smoke, g_chrome_trace, g_timeseries) and returns
// the metrics mode for convenience. Call once at the top of main(); benches
// with extra flags keep parsing argv themselves afterwards.
inline MetricsMode ParseBenchFlags(int argc, char** argv) {
  g_bench_metrics = ParseMetricsMode(argc, argv);
  g_bench_smoke = ParseSmoke(argc, argv);
  ParseTraceFlag(argc, argv);
  ParseTimeseriesFlag(argc, argv);
  return g_bench_metrics;
}

// Prints one snapshot of `registry`, tagged so sweeps emit one record per
// scenario: text mode as a delimited block, JSON mode as a single line
// (one JSON object per scenario — trivially machine-collectable).
inline void DumpMetrics(const MetricsRegistry& registry, MetricsMode mode,
                        const std::string& tag) {
  if (mode == MetricsMode::kNone) {
    return;
  }
  if (mode == MetricsMode::kText) {
    std::printf("=== metrics [%s] ===\n%s=== end metrics ===\n", tag.c_str(),
                registry.ExportText().c_str());
  } else {
    std::printf("{\"metrics_tag\":\"%s\",\"metrics\":%s}\n", tag.c_str(),
                registry.ExportJson().c_str());
  }
}

struct ExampleDeployment {
  std::unique_ptr<Cluster> cluster;
  SuiteClient* client = nullptr;
};

// Builds a cluster for one of the paper's examples: representatives, the
// example's client round-trip latencies, suite bootstrap, and one client.
inline ExampleDeployment DeployExample(const GiffordExample& ex,
                                       SuiteClientOptions client_options = {},
                                       uint64_t seed = 42,
                                       const std::string& initial = "initial contents") {
  ExampleDeployment out;
  ClusterOptions opts;
  opts.seed = seed;
  opts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  opts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  out.cluster = std::make_unique<Cluster>(opts);
  MaybeEnableTracing(*out.cluster);
  MaybeEnableScraping(*out.cluster);
  for (const RepresentativeInfo& rep : ex.config.representatives) {
    if (!rep.weak()) {
      out.cluster->AddRepresentative(rep.host_name);
    }
  }
  WVOTE_CHECK(out.cluster->CreateSuite(ex.config, initial).ok());
  out.client = out.cluster->AddClient("client", ex.config, client_options,
                                      ex.client_has_cache);
  for (const auto& [host, rtt] : ex.client_rtt) {
    out.cluster->net().SetSymmetricLink(out.cluster->net().FindHost("client")->id(),
                                        out.cluster->net().FindHost(host)->id(),
                                        LatencyModel::Fixed(rtt / 2));
  }
  return out;
}

// Times `n` sequential one-shot reads (or writes) through `client`,
// returning the latency distribution in simulated time.
inline LatencyHistogram TimeReads(Cluster& cluster, SuiteClient* client, int n) {
  LatencyHistogram hist;
  for (int i = 0; i < n; ++i) {
    const TimePoint t0 = cluster.sim().Now();
    Result<std::string> r = cluster.RunTask(client->ReadOnce());
    WVOTE_CHECK_MSG(r.ok(), "bench read failed");
    hist.Record(cluster.sim().Now() - t0);
  }
  return hist;
}

inline LatencyHistogram TimeWrites(Cluster& cluster, SuiteClient* client, int n,
                                   const std::string& payload = "benchmark payload") {
  LatencyHistogram hist;
  for (int i = 0; i < n; ++i) {
    const TimePoint t0 = cluster.sim().Now();
    Status st = cluster.RunTask(client->WriteOnce(payload + std::to_string(i)));
    WVOTE_CHECK_MSG(st.ok(), "bench write failed");
    hist.Record(cluster.sim().Now() - t0);
  }
  return hist;
}

inline void PrintRule(int width = 110) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace wvote

#endif  // WVOTE_BENCH_BENCH_UTIL_H_
