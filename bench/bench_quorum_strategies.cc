// Experiment E14 — load-optimal quorum probing strategies.
//
// Gifford's cheapest-representatives-first rule aims every reader at the
// same cheap prefix: on the 4-rep read-path topology (votes 2,1,1,1, r=2)
// srv-0 absorbs ~85% of all probes and its service rate caps aggregate
// read throughput while three representatives idle. This bench measures
// what probabilistic probing strategies (Whittaker et al., built by
// src/core/strategy_solver.h) buy back, policy by policy:
//
//   cheapest      — kLowestLatency, the deterministic baseline;
//   uniform       — kUniformSpread, uniform over all minimal quorums;
//   load-optimal  — kLoadOptimal, minimax per-host load.
//
// Three scenarios:
//   steady — uniform 10ms client RTTs, single client, 10:1 read:write mix.
//            The acceptance scenario: load-optimal max probe share must be
//            <= 0.35 (vs ~0.85 baseline) with p99 read latency within 15%
//            of cheapest (equal RTTs make sampling latency-neutral).
//   skewed — the read-path RTT matrix (10/30/60/120ms). Shows the
//            latency/load trade: spreading probes now costs tail latency,
//            which is why the policy is a knob and not the default.
//   zipf   — four clients, the op issuer drawn Zipf(1.0) per op over
//            default links. Client-skewed traffic, same rep-side story.
//
// Rows report per-host probe shares (from representative-side version-poll
// counters), max share, Gini imbalance, the implied relative read-throughput
// ceiling (1 / max per-op load on the busiest host), and read p50/p99.
// The final JSON line is committed as BENCH_quorum_strategies.json;
// --baseline=FILE re-checks the steady/load-optimal max share against the
// committed value (fails above 1.25x — the bench-smoke regression guard;
// shares are simulated-deterministic, so the guard is noise-free).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/histogram.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

int g_reads = 400;  // per run; 10:1 read:write mix

constexpr const char* kHosts[] = {"srv-0", "srv-1", "srv-2", "srv-3"};
constexpr int kNumHosts = 4;

GiffordExample MakeSuite(bool skewed_rtt) {
  GiffordExample ex;
  ex.config.suite_name = "strategies";
  const int votes[] = {2, 1, 1, 1};
  const Duration skew[] = {Duration::Millis(10), Duration::Millis(30), Duration::Millis(60),
                           Duration::Millis(120)};
  for (int i = 0; i < kNumHosts; ++i) {
    ex.config.AddRepresentative(kHosts[i], votes[i]);
    ex.client_rtt.push_back({kHosts[i], skewed_rtt ? skew[i] : Duration::Millis(10)});
  }
  ex.config.read_quorum = 2;
  ex.config.write_quorum = 4;  // V=5, r+w>5, 2w>5
  return ex;
}

struct PolicyResult {
  LatencyHistogram reads;
  uint64_t polls[kNumHosts] = {0, 0, 0, 0};
  uint64_t total_polls = 0;
  uint64_t ops = 0;
  double max_share = 0;
  double gini = 0;
  double max_load = 0;     // polls on the busiest host per op
  double ceiling_x = 0;    // 1 / max_load: relative throughput ceiling
  double expected_max_share = 0;  // solver's prediction for the policy
};

void FinishResult(Cluster& cluster, SuiteClient* client, PolicyResult* out) {
  for (int h = 0; h < kNumHosts; ++h) {
    out->polls[h] = cluster.representative(kHosts[h])->stats().version_polls;
    out->total_polls += out->polls[h];
  }
  uint64_t max_polls = 0;
  double abs_diffs = 0;
  for (int a = 0; a < kNumHosts; ++a) {
    max_polls = std::max(max_polls, out->polls[a]);
    for (int b = 0; b < kNumHosts; ++b) {
      abs_diffs += std::abs(static_cast<double>(out->polls[a]) -
                            static_cast<double>(out->polls[b]));
    }
  }
  out->max_share =
      out->total_polls == 0
          ? 0.0
          : static_cast<double>(max_polls) / static_cast<double>(out->total_polls);
  out->gini = out->total_polls == 0
                  ? 0.0
                  : abs_diffs / (2.0 * kNumHosts * static_cast<double>(out->total_polls));
  out->max_load =
      out->ops == 0 ? 0.0 : static_cast<double>(max_polls) / static_cast<double>(out->ops);
  out->ceiling_x = out->max_load > 0 ? 1.0 / out->max_load : 0.0;
  out->expected_max_share = client->ExpectedMaxShare();
}

// Single-client closed loop, 10:1 read:write (writes keep versions moving so
// the fast-path hint machinery is realistic). Probe attribution comes from
// the representative-side version-poll counters, reset after seeding.
PolicyResult RunSingleClient(bool skewed_rtt, QuorumStrategySpec spec, const char* tag) {
  SuiteClientOptions copts;
  copts.strategy = std::move(spec);
  copts.probe_timeout = Duration::Millis(300);
  GiffordExample ex = MakeSuite(skewed_rtt);
  ExampleDeployment dep = DeployExample(ex, copts, /*seed=*/42);
  Cluster& cluster = *dep.cluster;

  WVOTE_CHECK(cluster.RunTask(dep.client->WriteOnce("contents-0")).ok());
  cluster.net().ResetStats();
  dep.client->ResetStats();
  for (int h = 0; h < kNumHosts; ++h) {
    cluster.representative(kHosts[h])->ResetStats();
  }

  PolicyResult out;
  int writes = 0;
  for (int i = 0; i < g_reads; ++i) {
    if (i % 10 == 9) {
      WVOTE_CHECK(cluster
                      .RunTask(dep.client->WriteOnce("contents-" +
                                                     std::to_string(++writes)))
                      .ok());
      ++out.ops;
    }
    const TimePoint t0 = cluster.sim().Now();
    Result<std::string> r = cluster.RunTask(dep.client->ReadOnce());
    WVOTE_CHECK_MSG(r.ok(), "bench read failed");
    out.reads.Record(cluster.sim().Now() - t0);
    ++out.ops;
  }
  FinishResult(cluster, dep.client, &out);
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return out;
}

// Four clients behind default links; each op's issuer is drawn Zipf(1.0), so
// one hot client dominates — the fleet-side skew the strategies must absorb.
PolicyResult RunZipfClients(QuorumStrategySpec spec, const char* tag) {
  ClusterOptions opts;
  opts.seed = 42;
  Cluster cluster(opts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  GiffordExample ex = MakeSuite(/*skewed_rtt=*/false);
  for (int h = 0; h < kNumHosts; ++h) {
    cluster.AddRepresentative(kHosts[h]);
  }
  WVOTE_CHECK(cluster.CreateSuite(ex.config, "initial contents").ok());

  SuiteClientOptions copts;
  copts.strategy = std::move(spec);
  copts.probe_timeout = Duration::Millis(300);
  std::vector<SuiteClient*> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(
        cluster.AddClient("client-" + std::to_string(c), ex.config, copts));
  }

  WVOTE_CHECK(cluster.RunTask(clients[0]->WriteOnce("contents-0")).ok());
  cluster.net().ResetStats();
  for (int h = 0; h < kNumHosts; ++h) {
    cluster.representative(kHosts[h])->ResetStats();
  }

  PolicyResult out;
  ZipfianSampler zipf(clients.size(), 1.0);
  Rng pick(/*seed=*/2024);
  int writes = 0;
  for (int i = 0; i < g_reads; ++i) {
    SuiteClient* client = clients[zipf.Sample(&pick)];
    if (i % 10 == 9) {
      WVOTE_CHECK(
          cluster.RunTask(client->WriteOnce("contents-" + std::to_string(++writes))).ok());
      ++out.ops;
    }
    const TimePoint t0 = cluster.sim().Now();
    Result<std::string> r = cluster.RunTask(client->ReadOnce());
    WVOTE_CHECK_MSG(r.ok(), "bench read failed");
    out.reads.Record(cluster.sim().Now() - t0);
    ++out.ops;
  }
  FinishResult(cluster, clients[0], &out);
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return out;
}

struct PolicyRow {
  const char* name;
  QuorumStrategy policy;
};

constexpr PolicyRow kPolicies[] = {
    {"cheapest", QuorumStrategy::kLowestLatency},
    {"uniform", QuorumStrategy::kUniformSpread},
    {"load-optimal", QuorumStrategy::kLoadOptimal},
};

void PrintRow(const char* scenario, const char* policy, const PolicyResult& r) {
  std::printf("%-7s %-12s |", scenario, policy);
  for (int h = 0; h < kNumHosts; ++h) {
    const double share = r.total_polls == 0
                             ? 0.0
                             : static_cast<double>(r.polls[h]) /
                                   static_cast<double>(r.total_polls);
    std::printf(" %5.1f%%", 100.0 * share);
  }
  std::printf(" | %5.2f %5.2f | %6.2fx | %8.2fms %8.2fms\n", r.max_share, r.gini,
              r.ceiling_x, r.reads.Percentile(50).ToMillis(),
              r.reads.Percentile(99).ToMillis());
}

// ---------------------------------------------------------------------------
// Regression guard (same string-search-not-a-JSON-library pattern as
// bench_sim_core): the committed steady/load-optimal max probe share.
double ParseCommittedMaxShare(const std::string& json) {
  const char* key = "\"guard_max_share\":";
  const size_t at = json.find(key);
  WVOTE_CHECK_MSG(at != std::string::npos, "baseline file has no \"guard_max_share\" key");
  return std::strtod(json.c_str() + at + std::strlen(key), nullptr);
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  WVOTE_CHECK_MSG(f != nullptr, "cannot open --baseline file");
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

void AppendPolicyJson(std::string* json, const char* policy, const PolicyResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"shares\":[%.3f,%.3f,%.3f,%.3f],\"max_share\":%.3f,"
                "\"gini\":%.3f,\"max_load\":%.3f,\"ceiling_x\":%.2f,"
                "\"expected_max_share\":%.3f,\"p50_ms\":%.2f,\"p99_ms\":%.2f}",
                policy,
                r.total_polls ? static_cast<double>(r.polls[0]) / r.total_polls : 0.0,
                r.total_polls ? static_cast<double>(r.polls[1]) / r.total_polls : 0.0,
                r.total_polls ? static_cast<double>(r.polls[2]) / r.total_polls : 0.0,
                r.total_polls ? static_cast<double>(r.polls[3]) / r.total_polls : 0.0,
                r.max_share, r.gini, r.max_load, r.ceiling_x, r.expected_max_share,
                r.reads.Percentile(50).ToMillis(), r.reads.Percentile(99).ToMillis());
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    }
  }
  // Simulated time makes 200 ops cheap even in smoke, and the guard wants a
  // sample large enough that shares are stable (they are deterministic for
  // a fixed seed, but keep smoke and full runs comparable).
  g_reads = SmokeIters(g_reads, /*tiny=*/200);

  std::printf("E14: quorum probing strategies — probe-load vs latency, by policy\n");
  std::printf("(4 reps, votes 2,1,1,1, r=2, w=4; %d reads per run, 10:1 read:write;\n",
              g_reads);
  std::printf(" shares from representative-side version-poll counters)\n\n");
  std::printf("%-20s | %6s %6s %6s %6s | %5s %5s | %7s | %10s %10s\n", "scenario/policy",
              "srv-0", "srv-1", "srv-2", "srv-3", "max", "gini", "ceiling", "read p50",
              "read p99");
  PrintRule(108);

  std::map<std::string, std::map<std::string, PolicyResult>> results;
  for (const PolicyRow& p : kPolicies) {
    results["steady"][p.name] = RunSingleClient(
        /*skewed_rtt=*/false, p.policy, (std::string("steady-") + p.name).c_str());
    PrintRow("steady", p.name, results["steady"][p.name]);
  }
  PrintRule(108);
  for (const PolicyRow& p : kPolicies) {
    results["skewed"][p.name] = RunSingleClient(
        /*skewed_rtt=*/true, p.policy, (std::string("skewed-") + p.name).c_str());
    PrintRow("skewed", p.name, results["skewed"][p.name]);
  }
  PrintRule(108);
  for (const PolicyRow& p : kPolicies) {
    results["zipf"][p.name] =
        RunZipfClients(p.policy, (std::string("zipf-") + p.name).c_str());
    PrintRow("zipf", p.name, results["zipf"][p.name]);
  }
  PrintRule(108);

  const PolicyResult& opt = results["steady"]["load-optimal"];
  std::printf(
      "\nshape check: steady/cheapest aims ~85%% of probes at srv-0 (ceiling ~1x);\n"
      "steady/load-optimal holds every share at/below 0.35 and lifts the read-\n"
      "throughput ceiling >2x at equal p99 (uniform RTTs make sampling latency-\n"
      "neutral). skewed shows the trade: spreading probes pays tail latency on the\n"
      "slow representatives — that is why the policy is per-client tunable.\n\n");

  // Machine-readable summary; the full-run line is committed as
  // BENCH_quorum_strategies.json (guard_max_share = steady/load-optimal).
  std::string json = "{\"bench\":\"quorum_strategies\",\"smoke\":";
  json += g_bench_smoke ? "true" : "false";
  char guard_buf[64];
  std::snprintf(guard_buf, sizeof(guard_buf), ",\"guard_max_share\":%.3f", opt.max_share);
  json += guard_buf;
  for (const char* scenario : {"steady", "skewed", "zipf"}) {
    json += std::string(",\"") + scenario + "\":{";
    bool first = true;
    for (const PolicyRow& p : kPolicies) {
      if (!first) {
        json += ",";
      }
      first = false;
      AppendPolicyJson(&json, p.name, results[scenario][p.name]);
    }
    json += "}";
  }
  json += "}";
  std::printf("%s\n", json.c_str());

  WriteChromeTrace();

  WriteTimeseries();

  if (!baseline_path.empty()) {
    const double committed = ParseCommittedMaxShare(ReadWholeFile(baseline_path));
    const double limit = committed * 1.25;
    std::printf("regression guard: measured max share %.3f vs committed %.3f (limit %.3f)\n",
                opt.max_share, committed, limit);
    if (opt.max_share > limit) {
      std::fprintf(stderr,
                   "FAIL: steady/load-optimal max probe share regressed more than 25%% "
                   "above the committed BENCH_quorum_strategies.json baseline\n");
      return 1;
    }
    // The acceptance bound itself, so a drifting baseline cannot mask it.
    if (opt.max_share > 0.35) {
      std::fprintf(stderr,
                   "FAIL: steady/load-optimal max probe share %.3f exceeds the 0.35 "
                   "acceptance bound\n",
                   opt.max_share);
      return 1;
    }
  }
  return 0;
}
