// Experiment E7 — dynamic reconfiguration under load.
//
// A three-server suite serves a mixed workload while the administrator
// changes the configuration every 10 simulated seconds (cycling quorum
// tunings, then expanding to five servers). Measures reconfiguration
// latency, workload disruption (failed ops), and verifies that clients on
// stale prefixes converge to the newest configuration.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: bench brevity

int main(int argc, char** argv) {
  const MetricsMode metrics_mode = ParseBenchFlags(argc, argv);
  std::printf("E7: reconfiguration under load\n\n");

  ClusterOptions copts;
  copts.seed = 17;
  Cluster cluster(copts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  for (int i = 0; i < 5; ++i) {
    cluster.AddRepresentative("srv-" + std::to_string(i));
  }
  SuiteConfig config =
      SuiteConfig::MakeUniform("live", {"srv-0", "srv-1", "srv-2"}, /*r=*/1, /*w=*/3);
  WVOTE_CHECK(cluster.CreateSuite(config, "gen0").ok());

  SuiteClient* admin = cluster.AddClient("admin", config);
  SuiteClient* worker = cluster.AddClient("worker", config);

  WorkloadOptions wopts;
  wopts.read_fraction = 0.8;
  wopts.mean_think_time = Duration::Millis(50);
  wopts.run_length = SmokeRun(Duration::Seconds(60), Duration::Seconds(10));
  wopts.value_size = 256;
  WorkloadStats stats;
  stats.RegisterWith(&cluster.metrics(), {{"client", "worker"}});
  SuiteStoreAdapter store(worker);
  Spawn(RunClosedLoopClient(&cluster.sim(), &store, wopts, 3, &stats));

  struct Step {
    const char* label;
    SuiteConfig next;
  };
  std::vector<Step> steps;
  steps.push_back({"r=1,w=3 -> r=2,w=2",
                   SuiteConfig::MakeUniform("live", {"srv-0", "srv-1", "srv-2"}, 2, 2)});
  steps.push_back({"r=2,w=2 -> r=3,w=1... invalid, stays",  // rejected: 2w<=V
                   SuiteConfig::MakeUniform("live", {"srv-0", "srv-1", "srv-2"}, 3, 1)});
  {
    SuiteConfig expand;
    expand.suite_name = "live";
    for (int i = 0; i < 5; ++i) {
      expand.AddRepresentative("srv-" + std::to_string(i), 1);
    }
    expand.read_quorum = 2;
    expand.write_quorum = 4;
    steps.push_back({"expand to 5 servers (r=2,w=4)", expand});
  }
  steps.push_back({"back to majority (r=3,w=3)",
                   SuiteConfig::MakeUniform(
                       "live", {"srv-0", "srv-1", "srv-2", "srv-3", "srv-4"}, 3, 3)});

  std::printf("%-34s | %10s | %8s | %s\n", "step", "latency", "status", "resulting config");
  PrintRule(120);
  for (Step& step : steps) {
    cluster.sim().RunFor(Duration::Seconds(10));
    const TimePoint t0 = cluster.sim().Now();
    // Reconfiguration competes with the workload's locks; wait-die may make
    // it retry like any transaction.
    Status st = InternalError("not attempted");
    for (int attempt = 0; attempt < 8; ++attempt) {
      st = cluster.RunTask(admin->Reconfigure(step.next));
      if (st.ok() || (st.code() != StatusCode::kConflict &&
                      st.code() != StatusCode::kAborted)) {
        break;
      }
      cluster.sim().RunFor(Duration::Millis(50));
    }
    const Duration latency = cluster.sim().Now() - t0;
    std::printf("%-34s | %8.1fms | %8s | %s\n", step.label, latency.ToMillis(),
                st.ok() ? "ok" : StatusCodeName(st.code()),
                admin->config().ToString().c_str());
  }
  cluster.sim().RunUntil(cluster.sim().Now() + Duration::Seconds(30));

  std::printf("\nworkload during reconfigurations: %s\n", stats.Summary().c_str());
  std::printf("worker converged to cfg%llu (admin at cfg%llu)\n",
              static_cast<unsigned long long>(worker->config().config_version),
              static_cast<unsigned long long>(admin->config().config_version));
  std::printf("shape check: reconfigurations cost a few write-latencies, the invalid tuning\n"
              "is rejected by validation, and the workload keeps running throughout.\n");
  DumpMetrics(cluster.metrics(), metrics_mode, "reconfig");
  CollectChromeTrace(cluster, "reconfig");
  CollectTimeseries(cluster, "reconfig");
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
