// Experiment E11 — two-round-trip writes via asynchronous phase-2 commit.
//
// The literal protocol acks a write after three round trips paced by the
// slowest write-quorum member: lock/version gather, prepare, commit. Once
// the coordinator's commit decision is durable the outcome cannot change,
// so the commit fan-out can leave the client's critical path — a committed
// write costs two round trips, and phase-2 delivery is guaranteed by the
// background retriers, participant recovery, and the in-doubt watchdog.
//
// Three scenarios:
//   steady — drained writes, sync vs async, against the analytic model's
//            3-RTT and 2-RTT closed forms; plus back-to-back async writes
//            (the next write's probes queue behind the previous commit's
//            in-flight lock release — the committing-holder wait policy);
//   crash  — a write-quorum member crash/restarts throughout an async run;
//            every acked write must survive and the suite must converge to
//            the last acked value once phase 2 drains;
//   mixed  — 1:1 read/write closed loop, sync vs async, showing the write
//            savings compose with fast-path reads.
//
// `--metrics[=json]` dumps the registry per scenario; BENCH_write_path.json
// commits the JSON trajectories (format in EXPERIMENTS.md). `--smoke`
// shrinks iteration counts for CI.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/analysis/model.h"
#include "src/obs/histogram.h"
#include "src/workload/fault_injector.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

int g_steady_writes = 200;
int g_crash_writes = 60;
int g_mixed_pairs = 100;

GiffordExample MakeWritePathSuite() {
  GiffordExample ex;
  ex.config.suite_name = "writepath";
  const int votes[] = {2, 1, 1, 1};
  const Duration rtt[] = {Duration::Millis(10), Duration::Millis(30), Duration::Millis(60),
                          Duration::Millis(120)};
  for (int i = 0; i < 4; ++i) {
    const std::string host = "srv-" + std::to_string(i);
    ex.config.AddRepresentative(host, votes[i]);
    ex.model.reps.push_back(RepModel(host, votes[i], rtt[i], 0.99));
    ex.client_rtt.push_back({host, rtt[i]});
  }
  ex.config.read_quorum = ex.model.read_quorum = 2;
  ex.config.write_quorum = ex.model.write_quorum = 4;  // V=5, r+w>5, 2w>5
  return ex;
}

// Writes that park until the suite is writable again (a crashed quorum
// member can make writes momentarily unavailable); returns the latency of
// the acked attempt.
Duration ParkedWrite(Cluster& cluster, SuiteClient* client, const std::string& value) {
  Status st = InternalError("unattempted");
  TimePoint t0 = cluster.sim().Now();
  for (int tries = 0; tries < 200 && !st.ok(); ++tries) {
    t0 = cluster.sim().Now();
    st = cluster.RunTask(client->WriteOnce(value, /*retries=*/5));
    if (!st.ok()) {
      cluster.sim().RunFor(Duration::Millis(200));
    }
  }
  WVOTE_CHECK_MSG(st.ok(), "bench write failed");
  return cluster.sim().Now() - t0;
}

// --- steady ----------------------------------------------------------------

LatencyHistogram SteadyWrites(bool sync_phase2, bool drain, const char* tag) {
  GiffordExample ex = MakeWritePathSuite();
  ExampleDeployment dep = DeployExample(ex, SuiteClientOptions{}, /*seed=*/42);
  Cluster& cluster = *dep.cluster;
  cluster.coordinator_of("client")->set_sync_phase2(sync_phase2);

  LatencyHistogram hist;
  for (int i = 0; i < g_steady_writes; ++i) {
    const TimePoint t0 = cluster.sim().Now();
    Status st = cluster.RunTask(dep.client->WriteOnce("steady-" + std::to_string(i)));
    WVOTE_CHECK_MSG(st.ok(), "steady write failed");
    hist.Record(cluster.sim().Now() - t0);
    if (drain) {
      // Let the background fan-out land so the next write measures the
      // uncontended 2-RTT path.
      cluster.sim().RunFor(Duration::Millis(500));
    }
  }
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return hist;
}

// --- crash during phase 2 --------------------------------------------------

void CrashScenario() {
  GiffordExample ex = MakeWritePathSuite();
  SuiteClientOptions copts;
  copts.probe_timeout = Duration::Millis(300);
  ExampleDeployment dep = DeployExample(ex, copts, /*seed=*/42);
  Cluster& cluster = *dep.cluster;

  // srv-1 (one write-critical vote) flaps for the whole run: commits land
  // while it is down, phase-2 deliveries are lost mid-flight, and the
  // retrier / recovery / watchdog machinery must reconverge every time.
  Host* victim = cluster.net().FindHost("srv-1");
  Spawn(RunCrashRestartCycle(&cluster.sim(), victim, /*mttf=*/Duration::Seconds(2),
                             /*mttr=*/Duration::Seconds(1),
                             cluster.sim().Now() + Duration::Seconds(3600), /*seed=*/7));

  std::string last_acked;
  for (int i = 0; i < g_crash_writes; ++i) {
    const std::string value = "crash-run-" + std::to_string(i);
    (void)ParkedWrite(cluster, dep.client, value);
    last_acked = value;
    cluster.sim().RunFor(Duration::Millis(300));  // let faults interleave
  }

  // Stop the churn and drain every outstanding phase 2, retrier, and
  // watchdog; then the whole suite must agree on the last acked write.
  if (!victim->up()) {
    victim->Restart();
  }
  cluster.sim().RunFor(Duration::Seconds(60));

  Result<std::string> read = cluster.RunTask(dep.client->ReadOnce(/*retries=*/10));
  WVOTE_CHECK_MSG(read.ok(), "post-crash read failed");
  const bool converged = read.value() == last_acked;
  WVOTE_CHECK_MSG(converged, "acked write lost after crash churn");

  MetricsSnapshot snap = cluster.metrics().Snapshot();
  std::printf(
      "  %d writes acked under srv-1 crash churn (MTTF 2s, MTTR 1s); after the\n"
      "  faults drain, a quorum read returns the last ack: %s\n",
      g_crash_writes, converged ? "yes" : "NO — BUG");
  std::printf(
      "  convergence machinery: %llu async fan-outs spawned, %llu completed in the\n"
      "  foreground task; %llu in-doubt watchdog resolutions; %llu participant\n"
      "  recoveries\n",
      static_cast<unsigned long long>(snap.SumCounters("txn.coordinator.async_phase2_spawned")),
      static_cast<unsigned long long>(
          snap.SumCounters("txn.coordinator.async_phase2_completed")),
      static_cast<unsigned long long>(snap.SumCounters("txn.participant.indoubt_timer_fired")),
      static_cast<unsigned long long>(snap.SumCounters("txn.participant.recoveries")));
  std::printf(
      "  group commit at the representatives: %llu flushes served %llu page writes\n"
      "  (%llu coalesced into an already-open window)\n",
      static_cast<unsigned long long>(snap.SumCounters("storage.group_commit_batches")),
      static_cast<unsigned long long>(
          snap.SumCounters("storage.stable_store.writes_completed")),
      static_cast<unsigned long long>(
          snap.SumCounters("storage.group_commit_writes_coalesced")));
  DumpMetrics(cluster.metrics(), g_bench_metrics, "crash-phase2");
  CollectChromeTrace(cluster, "crash-phase2");
  CollectTimeseries(cluster, "crash-phase2");
}

// --- group commit burst ----------------------------------------------------

Task<void> OneBurstWrite(SuiteClient* client, std::string value, std::shared_ptr<int> done) {
  Status st = co_await client->WriteOnce(std::move(value));
  WVOTE_CHECK_MSG(st.ok(), "burst write failed");
  ++*done;
}

// Four independent suites hosted on the same four representatives, four
// clients committing at the same instant: the phase-2 applies land inside
// one simulated-disk window at each representative, so the stable store's
// group commit coalesces them into a single flush.
void GroupCommitBurst() {
  ClusterOptions opts;
  opts.seed = 42;
  opts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  opts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  Cluster cluster(opts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  const int votes[] = {2, 1, 1, 1};
  const Duration rtt[] = {Duration::Millis(10), Duration::Millis(30), Duration::Millis(60),
                          Duration::Millis(120)};
  for (int i = 0; i < 4; ++i) {
    cluster.AddRepresentative("srv-" + std::to_string(i));
  }
  constexpr int kClients = 4;
  std::vector<SuiteClient*> clients;
  for (int j = 0; j < kClients; ++j) {
    SuiteConfig cfg;
    cfg.suite_name = "gc-" + std::to_string(j);
    for (int i = 0; i < 4; ++i) {
      cfg.AddRepresentative("srv-" + std::to_string(i), votes[i]);
    }
    cfg.read_quorum = 2;
    cfg.write_quorum = 4;
    WVOTE_CHECK(cluster.CreateSuite(cfg, "initial contents").ok());
    const std::string client_host = "client-" + std::to_string(j);
    clients.push_back(cluster.AddClient(client_host, cfg));
    for (int i = 0; i < 4; ++i) {
      cluster.net().SetSymmetricLink(cluster.net().FindHost(client_host)->id(),
                                     cluster.net().FindHost("srv-" + std::to_string(i))->id(),
                                     LatencyModel::Fixed(rtt[i] / 2));
    }
  }
  const MetricsSnapshot before = cluster.metrics().Snapshot();
  std::shared_ptr<int> done = std::make_shared<int>(0);
  for (int j = 0; j < kClients; ++j) {
    Spawn(OneBurstWrite(clients[j], "burst-" + std::to_string(j), done));
  }
  cluster.sim().RunFor(Duration::Seconds(5));
  WVOTE_CHECK_MSG(*done == kClients, "burst writes did not all complete");

  const MetricsSnapshot delta = cluster.metrics().Delta(before);
  std::printf(
      "  %d clients commit to %d co-hosted suites at the same instant:\n"
      "  %llu stable-store flushes served %llu page writes, %llu of them\n"
      "  coalesced into an already-open window (sequential lower bound would\n"
      "  pay one flush per write)\n",
      kClients, kClients,
      static_cast<unsigned long long>(delta.SumCounters("storage.group_commit_batches")),
      static_cast<unsigned long long>(
          delta.SumCounters("storage.stable_store.writes_completed")),
      static_cast<unsigned long long>(
          delta.SumCounters("storage.group_commit_writes_coalesced")));
  DumpMetrics(cluster.metrics(), g_bench_metrics, "group-commit-burst");
  CollectChromeTrace(cluster, "group-commit-burst");
  CollectTimeseries(cluster, "group-commit-burst");
}

// --- mixed -----------------------------------------------------------------

struct MixedResult {
  LatencyHistogram reads;
  LatencyHistogram writes;
  Duration elapsed;
};

MixedResult MixedWorkload(bool sync_phase2, const char* tag) {
  GiffordExample ex = MakeWritePathSuite();
  ExampleDeployment dep = DeployExample(ex, SuiteClientOptions{}, /*seed=*/42);
  Cluster& cluster = *dep.cluster;
  cluster.coordinator_of("client")->set_sync_phase2(sync_phase2);

  MixedResult out;
  const TimePoint start = cluster.sim().Now();
  for (int i = 0; i < g_mixed_pairs; ++i) {
    TimePoint t0 = cluster.sim().Now();
    Status st = cluster.RunTask(dep.client->WriteOnce("mixed-" + std::to_string(i)));
    WVOTE_CHECK_MSG(st.ok(), "mixed write failed");
    out.writes.Record(cluster.sim().Now() - t0);

    t0 = cluster.sim().Now();
    Result<std::string> r = cluster.RunTask(dep.client->ReadOnce());
    WVOTE_CHECK_MSG(r.ok(), "mixed read failed");
    out.reads.Record(cluster.sim().Now() - t0);
  }
  out.elapsed = cluster.sim().Now() - start;
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return out;
}

void PrintWriteRow(const char* label, const LatencyHistogram& hist, double model_ms) {
  std::printf("%-22s | %9.2fms %9.2fms %9.2fms |  %7.1fms\n", label, hist.Mean().ToMillis(),
              hist.Percentile(50).ToMillis(), hist.Percentile(99).ToMillis(), model_ms);
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  g_steady_writes = SmokeIters(g_steady_writes, /*tiny=*/10);
  g_crash_writes = SmokeIters(g_crash_writes, /*tiny=*/8);
  g_mixed_pairs = SmokeIters(g_mixed_pairs, /*tiny=*/10);

  GiffordExample shape = MakeWritePathSuite();
  VotingAnalysis analysis(shape.model);
  const double sync_ms = analysis.WriteLatencyAllUp(/*sync_phase2=*/true).ToMillis();
  const double async_ms = analysis.WriteLatencyAllUp(/*sync_phase2=*/false).ToMillis();

  std::printf("E11: two-round-trip writes — asynchronous phase-2 commit\n");
  std::printf("(4 reps, votes 2,1,1,1, r=2, w=4, client RTTs {10,30,60,120}ms;\n");
  std::printf(" write-quorum gather %0.0fms -> model: sync %0.0fms, async %0.0fms)\n\n",
              analysis.AllUpQuorumLatency(shape.model.write_quorum).ToMillis(), sync_ms,
              async_ms);

  std::printf("steady state, %d writes per mode:\n", g_steady_writes);
  std::printf("%-22s | %11s %11s %11s | %9s\n", "mode", "write mean", "p50", "p99", "model");
  PrintRule(80);
  PrintWriteRow("sync (3 RTT)", SteadyWrites(/*sync=*/true, /*drain=*/true, "steady-sync"),
                sync_ms);
  PrintWriteRow("async (2 RTT)", SteadyWrites(/*sync=*/false, /*drain=*/true, "steady-async"),
                async_ms);
  PrintWriteRow("async back-to-back",
                SteadyWrites(/*sync=*/false, /*drain=*/false, "steady-async-pipelined"),
                async_ms);

  std::printf("\ncrash during phase 2 (async commits, flapping quorum member):\n");
  CrashScenario();

  std::printf("\ngroup commit under concurrent commits:\n");
  GroupCommitBurst();

  std::printf("\nmixed 1:1 read/write closed loop, %d pairs per mode:\n", g_mixed_pairs);
  std::printf("%-10s | %11s | %11s | %12s\n", "mode", "read mean", "write mean", "elapsed");
  PrintRule(60);
  MixedResult sync_mix = MixedWorkload(/*sync=*/true, "mixed-sync");
  MixedResult async_mix = MixedWorkload(/*sync=*/false, "mixed-async");
  std::printf("%-10s | %9.2fms | %9.2fms | %10.1fs\n", "sync",
              sync_mix.reads.Mean().ToMillis(), sync_mix.writes.Mean().ToMillis(),
              sync_mix.elapsed.ToMillis() / 1000.0);
  std::printf("%-10s | %9.2fms | %9.2fms | %10.1fs\n", "async",
              async_mix.reads.Mean().ToMillis(), async_mix.writes.Mean().ToMillis(),
              async_mix.elapsed.ToMillis() / 1000.0);

  std::printf(
      "\nshape check: drained async writes ack one gather round trip (~%0.0fms)\n"
      "earlier than sync — the commit fan-out left the critical path; back-to-back\n"
      "async writes stay near 2 RTT because the next write's probes wait on the\n"
      "previous commit's in-flight release (committing-holder wait policy) instead\n"
      "of dying. The crash scenario certifies the correctness bar: every acked\n"
      "write survives arbitrary crash points between the durable decision and\n"
      "phase-2 delivery.\n",
      sync_ms - async_ms);
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
