// Simulator-core throughput (E13) — the substrate speed every scale
// scenario on the ROADMAP rests on.
//
// Three workloads, coarsest to most end-to-end:
//
//   1. pure-event: K concurrent self-rescheduling timers (the shape of a
//      fleet of RPC timeout/retry timers), measured in wall-clock simulated
//      events/sec. Run twice — once on the real Simulator, once on an
//      embedded copy of the pre-rebuild priority_queue core (LegacyHeapSim
//      below) — so the committed speedup is machine-independent and the CI
//      guard compares like with like on any runner.
//   2. cancel-heavy: schedule-then-cancel pairs racing a delivery, the RPC
//      timeout pattern (almost every timeout is cancelled by its reply).
//   3. rpc-echo and quorum-read rounds: end-to-end ops/sec through the full
//      cluster stack, where event dispatch is one cost among many.
//
// --baseline=FILE reads a committed BENCH_sim_core.json and fails the run
// (exit 1) if the measured pure-event speedup over LegacyHeapSim falls more
// than 30% below the committed one — the bench-smoke regression guard.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/rpc/rpc.h"
#include "src/sim/simulator.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

// ---------------------------------------------------------------------------
// LegacyHeapSim: the pre-rebuild simulator core, kept verbatim as the
// baseline the committed speedup is measured against. Three heap
// allocations per scheduled event (std::function capture when it outgrows
// SSO, shared_ptr<bool> cancel flag, heap churn in the binary heap) and
// O(log n) push/pop.
class LegacyHeapSim {
 public:
  TimePoint Now() const { return now_; }

  void Schedule(Duration delay, std::function<void()> fn) {
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), cancelled});
  }

  void Run() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (*ev.cancelled) {
        continue;
      }
      now_ = ev.when;
      ++events_processed_;
      ev.fn();
    }
  }

  size_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  TimePoint now_;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

// ---------------------------------------------------------------------------
// Workload 1: K timers, each rescheduling itself with a small cycling delay
// until the shared budget is spent. Delay spread crosses timer-wheel levels
// (1us..70ms) the way a real mix of RPC timeouts and think times does.
constexpr int64_t kDelaysUs[] = {1, 3, 250, 40, 7, 70000, 900, 12};
constexpr int kNumDelays = sizeof(kDelaysUs) / sizeof(kDelaysUs[0]);

template <typename Sim>
double PureEventEventsPerSec(Sim& sim, int timers, long total_events) {
  long remaining = total_events;
  std::function<void(int)> arm = [&](int slot) {
    if (--remaining < 0) {
      return;
    }
    sim.Schedule(Duration::Micros(kDelaysUs[(slot + static_cast<int>(remaining)) % kNumDelays]),
                 [&arm, slot] { arm(slot); });
  };
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < timers; ++i) {
    arm(i);
  }
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return static_cast<double>(total_events) / secs;
}

// Workload 2: every event schedules a "timeout" it then cancels, the way an
// RPC reply cancels its timeout. Counts both the fired and cancelled event
// against throughput (both cost a scheduling operation).
double CancelHeavyEventsPerSec(Simulator& sim, long pairs) {
  long remaining = pairs;
  EventHandle pending;
  std::function<void()> fire = [&] {
    pending.Cancel();  // cancel last round's timeout (fire-then-cancel)
    if (--remaining < 0) {
      return;
    }
    pending = sim.Schedule(Duration::Millis(50), [] {});  // the timeout
    sim.Schedule(Duration::Micros(30), [&fire] { fire(); });  // the "reply"
  };
  const auto t0 = std::chrono::steady_clock::now();
  fire();
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return static_cast<double>(2 * pairs) / secs;
}

// ---------------------------------------------------------------------------
// Workload 3a: RPC echo — one client, one server, sequential echo calls
// through RpcEndpoint over a fixed-latency link.
struct EchoReq {
  uint64_t n = 0;

  EchoReq() = default;
  explicit EchoReq(uint64_t v) : n(v) {}
  static constexpr const char* kRpcName = "EchoReq";
};
struct EchoResp {
  uint64_t n = 0;

  EchoResp() = default;
  explicit EchoResp(uint64_t v) : n(v) {}
};

Task<void> EchoLoop(RpcEndpoint* client, HostId server, int calls, int* ok) {
  for (int i = 0; i < calls; ++i) {
    EchoReq req(static_cast<uint64_t>(i));
    Result<EchoResp> r =
        co_await client->Call<EchoReq, EchoResp>(server, req, Duration::Seconds(1));
    if (r.ok() && r.value().n == static_cast<uint64_t>(i)) {
      ++*ok;
    }
  }
}

struct RpcEchoResult {
  double calls_per_sec = 0;
  double sim_events_per_call = 0;
};

RpcEchoResult RunRpcEcho(int calls) {
  Simulator sim(11);
  Network net(&sim);
  net.SetDefaultLink(LatencyModel::Fixed(Duration::Micros(200)));
  Host* server_host = net.AddHost("echo-server");
  Host* client_host = net.AddHost("echo-client");
  RpcEndpoint server(&net, server_host);
  RpcEndpoint client(&net, client_host);
  std::function<Task<Result<EchoResp>>(HostId, EchoReq)> handler =
      [](HostId, EchoReq req) -> Task<Result<EchoResp>> {
    co_return EchoResp(req.n);
  };
  server.Handle<EchoReq, EchoResp>(std::move(handler));

  int ok = 0;
  const auto t0 = std::chrono::steady_clock::now();
  Spawn(EchoLoop(&client, server_host->id(), calls, &ok));
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  WVOTE_CHECK_MSG(ok == calls, "echo calls failed");
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  RpcEchoResult out;
  out.calls_per_sec = calls / secs;
  out.sim_events_per_call = static_cast<double>(sim.events_processed()) / calls;
  return out;
}

// Workload 3b: quorum read rounds — Gifford example 2's five-rep suite,
// sequential ReadOnce ops (version probes + fan-out + fastpath) end to end.
double RunQuorumReadRounds(int reads) {
  GiffordExample ex = MakeGiffordExamples()[1];
  ExampleDeployment deploy = DeployExample(ex, {}, /*seed=*/11);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reads; ++i) {
    Result<std::string> r = deploy.cluster->RunTask(deploy.client->ReadOnce());
    WVOTE_CHECK_MSG(r.ok(), "quorum read failed");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return reads / secs;
}

// ---------------------------------------------------------------------------
// Regression guard: parse "speedup": <x> out of the committed JSON (first
// occurrence inside the pure_event object) without a JSON library.
double ParseCommittedSpeedup(const std::string& json) {
  const char* key = "\"speedup\":";
  const size_t at = json.find(key);
  WVOTE_CHECK_MSG(at != std::string::npos, "baseline file has no \"speedup\" key");
  return std::strtod(json.c_str() + at + std::strlen(key), nullptr);
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  WVOTE_CHECK_MSG(f != nullptr, "cannot open --baseline file");
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

double BestOf(int trials, const std::function<double()>& run) {
  double best = 0;
  for (int i = 0; i < trials; ++i) {
    const double v = run();
    best = v > best ? v : best;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    }
  }

  const int timers = 4096;
  const long pure_events = g_bench_smoke ? 400000 : 4000000;
  const long cancel_pairs = g_bench_smoke ? 100000 : 1000000;
  const int echo_calls = SmokeIters(20000, 2000);
  const int quorum_reads = SmokeIters(2000, 200);
  const int trials = g_bench_smoke ? 3 : 5;

  // Warm-up pass so first-touch page faults don't bill to either core.
  {
    Simulator warm(1);
    PureEventEventsPerSec(warm, 64, 20000);
    LegacyHeapSim warm_legacy;
    PureEventEventsPerSec(warm_legacy, 64, 20000);
  }

  const double now_eps = BestOf(trials, [&] {
    Simulator sim(1);
    return PureEventEventsPerSec(sim, timers, pure_events);
  });
  const double legacy_eps = BestOf(trials, [&] {
    LegacyHeapSim sim;
    return PureEventEventsPerSec(sim, timers, pure_events);
  });
  const double speedup = now_eps / legacy_eps;

  const double cancel_eps = BestOf(trials, [&] {
    Simulator sim(1);
    return CancelHeavyEventsPerSec(sim, cancel_pairs);
  });

  const RpcEchoResult echo = RunRpcEcho(echo_calls);
  const double quorum_rps = RunQuorumReadRounds(quorum_reads);

  std::printf("E13 — simulator core throughput (wall clock, %s run)\n",
              g_bench_smoke ? "smoke" : "full");
  PrintRule(78);
  std::printf("%-34s %14s\n", "workload", "rate");
  PrintRule(78);
  std::printf("%-34s %12.2fM events/s\n", "pure-event (timer wheel)", now_eps / 1e6);
  std::printf("%-34s %12.2fM events/s\n", "pure-event (legacy heap)", legacy_eps / 1e6);
  std::printf("%-34s %13.2fx\n", "speedup", speedup);
  std::printf("%-34s %12.2fM events/s\n", "cancel-heavy (timeout pattern)", cancel_eps / 1e6);
  std::printf("%-34s %12.2fK calls/s\n", "rpc echo (end-to-end)", echo.calls_per_sec / 1e3);
  std::printf("%-34s %14.1f ev/call\n", "rpc echo sim events per call",
              echo.sim_events_per_call);
  std::printf("%-34s %12.2fK reads/s\n", "quorum read round (5 reps)", quorum_rps / 1e3);
  PrintRule(78);

  std::printf(
      "{\"bench\":\"sim_core\",\"smoke\":%s,"
      "\"pure_event\":{\"timers\":%d,\"events\":%ld,"
      "\"events_per_sec\":%.0f,\"legacy_events_per_sec\":%.0f,\"speedup\":%.2f},"
      "\"cancel_heavy\":{\"events_per_sec\":%.0f},"
      "\"rpc_echo\":{\"calls_per_sec\":%.0f,\"sim_events_per_call\":%.2f},"
      "\"quorum_read\":{\"reads_per_sec\":%.0f}}\n",
      g_bench_smoke ? "true" : "false", timers, pure_events, now_eps, legacy_eps, speedup,
      cancel_eps, echo.calls_per_sec, echo.sim_events_per_call, quorum_rps);

  if (!baseline_path.empty()) {
    const double committed = ParseCommittedSpeedup(ReadWholeFile(baseline_path));
    const double floor = committed * 0.7;
    std::printf("regression guard: measured speedup %.2fx vs committed %.2fx (floor %.2fx)\n",
                speedup, committed, floor);
    if (speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: simulator-core speedup regressed more than 30%% below the "
                   "committed BENCH_sim_core.json baseline\n");
      return 1;
    }
  }
  return 0;
}
