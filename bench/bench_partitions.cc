// Experiment E6 — behavior under network partitions.
//
// Five equal-vote representatives, clients on both sides of a series of
// partitions. Measures, per (r, w) configuration:
//   * operations completed by the majority-side and minority-side clients
//     during partitions (mutual exclusion: at most one side may write);
//   * a safety check that at no point did both sides complete writes during
//     the same partition epoch;
//   * convergence: after healing, all representatives reach the same
//     version.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace wvote;  // NOLINT: bench brevity

namespace {

struct PartitionResult {
  uint64_t majority_writes = 0;
  uint64_t minority_writes = 0;
  uint64_t majority_reads = 0;
  uint64_t minority_reads = 0;
  bool mutual_exclusion_held = true;
  bool converged = true;
};

int g_epochs = 8;

PartitionResult RunOne(int r, int w) {
  ClusterOptions copts;
  copts.seed = 31;
  Cluster cluster(copts);
  MaybeEnableTracing(cluster);
  MaybeEnableScraping(cluster);
  std::vector<std::string> servers;
  for (int i = 0; i < 5; ++i) {
    servers.push_back("srv-" + std::to_string(i));
    cluster.AddRepresentative(servers.back());
  }
  SuiteConfig config = SuiteConfig::MakeUniform("part", servers, r, w);
  WVOTE_CHECK(cluster.CreateSuite(config, "v0").ok());

  SuiteClientOptions copt;
  copt.probe_timeout = Duration::Millis(250);
  // Enough widening rounds to walk past every unreachable representative on
  // the far side of the partition.
  copt.max_gather_rounds = 5;
  SuiteClient* major = cluster.AddClient("client-major", config, copt);
  SuiteClient* minor = cluster.AddClient("client-minor", config, copt);

  auto host = [&](const std::string& name) { return cluster.net().FindHost(name)->id(); };

  PartitionResult out;
  for (int epoch = 0; epoch < g_epochs; ++epoch) {
    cluster.net().Partition(
        {{host("srv-0"), host("srv-1"), host("srv-2"), host("client-major")},
         {host("srv-3"), host("srv-4"), host("client-minor")}});

    uint64_t major_writes_this_epoch = 0;
    uint64_t minor_writes_this_epoch = 0;
    for (int op = 0; op < 3; ++op) {
      if (cluster.RunTask(major->WriteOnce("major-e" + std::to_string(epoch), 1)).ok()) {
        ++out.majority_writes;
        ++major_writes_this_epoch;
      }
      if (cluster.RunTask(minor->WriteOnce("minor-e" + std::to_string(epoch), 1)).ok()) {
        ++out.minority_writes;
        ++minor_writes_this_epoch;
      }
      if (cluster.RunTask(major->ReadOnce(1)).ok()) {
        ++out.majority_reads;
      }
      if (cluster.RunTask(minor->ReadOnce(1)).ok()) {
        ++out.minority_reads;
      }
    }
    if (major_writes_this_epoch > 0 && minor_writes_this_epoch > 0) {
      out.mutual_exclusion_held = false;
    }
    cluster.net().HealPartition();
    // One broadcast reader to converge stale copies after each epoch.
    SuiteClientOptions bc;
    bc.strategy = QuorumStrategy::kBroadcast;
    SuiteClient* sweeper =
        cluster.AddClient("sweeper-" + std::to_string(epoch), config, bc);
    (void)cluster.RunTask(sweeper->ReadOnce());
    cluster.sim().RunFor(Duration::Seconds(2));
  }

  Version expected = 0;
  for (const std::string& s : servers) {
    Result<VersionedValue> v = cluster.representative(s)->CurrentValue("part");
    if (!v.ok()) {
      out.converged = false;
      continue;
    }
    if (expected == 0) {
      expected = v.value().version;
    } else if (v.value().version != expected) {
      out.converged = false;
    }
  }
  char tag[64];
  std::snprintf(tag, sizeof(tag), "r=%d w=%d", r, w);
  DumpMetrics(cluster.metrics(), g_bench_metrics, tag);
  CollectChromeTrace(cluster, tag);
  CollectTimeseries(cluster, tag);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  g_epochs = SmokeIters(8, 2);
  std::printf("E6: partitions — mutual exclusion and partial operability\n");
  std::printf("5 servers; partition {0,1,2} vs {3,4}; %d epochs x 3 ops per side\n\n",
              g_epochs);
  std::printf("%3s %3s | %14s %14s | %13s %13s | %10s %10s\n", "r", "w", "major writes",
              "minor writes", "major reads", "minor reads", "mutex held", "converged");
  PrintRule(105);

  struct Config {
    int r;
    int w;
  };
  for (const Config& c : {Config{1, 5}, Config{2, 4}, Config{3, 3}, Config{2, 5}}) {
    PartitionResult res = RunOne(c.r, c.w);
    std::printf("%3d %3d | %14llu %14llu | %13llu %13llu | %10s %10s\n", c.r, c.w,
                static_cast<unsigned long long>(res.majority_writes),
                static_cast<unsigned long long>(res.minority_writes),
                static_cast<unsigned long long>(res.majority_reads),
                static_cast<unsigned long long>(res.minority_reads),
                res.mutual_exclusion_held ? "yes" : "NO (BUG)",
                res.converged ? "yes" : "NO (BUG)");
  }
  std::printf("\nshape check: writes only ever complete on the side holding a write quorum;\n"
              "r=1 lets the minority keep reading; r=3 blocks minority reads too.\n");
  WriteChromeTrace();
  WriteTimeseries();
  return 0;
}
