// A replicated configuration registry built on weighted voting.
//
// Demonstrates structured storage over the suite substrate: a key-value
// namespace whose every mutation is a quorum transaction. Shows point
// reads/writes, atomic batches, compare-and-set leader election between two
// app servers, and fault tolerance.

#include <cstdio>

#include "src/core/cluster.h"
#include "src/kv/kv_store.h"

using namespace wvote;  // NOLINT: example brevity

int main() {
  Cluster cluster;
  for (const char* s : {"store-a", "store-b", "store-c"}) {
    cluster.AddRepresentative(s);
  }
  SuiteConfig config =
      SuiteConfig::MakeUniform("registry", {"store-a", "store-b", "store-c"}, 2, 2);
  WVOTE_CHECK(cluster.CreateSuite(config, "").ok());

  ReplicatedKvStore app1(cluster.AddClient("app-1", config));
  ReplicatedKvStore app2(cluster.AddClient("app-2", config));

  // Point writes and reads.
  WVOTE_CHECK(cluster.RunTask(app1.Put("service/web/port", "8080")).ok());
  WVOTE_CHECK(cluster.RunTask(app1.Put("service/web/threads", "16")).ok());
  Result<std::optional<std::string>> port = cluster.RunTask(app2.Get("service/web/port"));
  std::printf("app-2 reads service/web/port = %s\n",
              port.ok() && port.value() ? port.value()->c_str() : "<absent>");

  // Atomic multi-key rollout: either both settings change or neither.
  std::vector<std::pair<std::string, std::string>> rollout = {
      {"service/web/port", "9090"}, {"service/web/threads", "32"}};
  WVOTE_CHECK(cluster.RunTask(app1.PutMany(rollout)).ok());
  std::printf("atomic rollout applied\n");

  // Leader election by compare-and-set: exactly one app wins.
  auto campaign = [](ReplicatedKvStore* kv, const char* who) -> Task<void> {
    Status st = co_await kv->CheckAndSet("leader", std::nullopt, who);
    std::printf("  %s: %s\n", who, st.ok() ? "elected" : st.ToString().c_str());
  };
  std::function<Task<void>(ReplicatedKvStore*, const char*)> campaign_fn = campaign;
  Spawn(campaign_fn(&app1, "app-1"));
  Spawn(campaign_fn(&app2, "app-2"));
  cluster.sim().Run();
  Result<std::optional<std::string>> leader = cluster.RunTask(app1.Get("leader"));
  std::printf("leader = %s\n", leader.value() ? leader.value()->c_str() : "<none>");

  // One store machine dies; the registry keeps serving (r=w=2 of 3).
  cluster.net().FindHost("store-c")->Crash();
  WVOTE_CHECK(cluster.RunTask(app2.Put("service/web/healthy", "yes")).ok());
  Result<std::vector<std::string>> keys = cluster.RunTask(app2.ListKeys());
  std::printf("keys with store-c down:");
  for (const std::string& k : keys.value()) {
    std::printf(" %s", k.c_str());
  }
  std::printf("\nkv stats: %llu gets, %llu puts, %llu retries\n",
              static_cast<unsigned long long>(app1.stats().gets + app2.stats().gets),
              static_cast<unsigned long long>(app1.stats().puts + app2.stats().puts),
              static_cast<unsigned long long>(app1.stats().retries + app2.stats().retries));
  return 0;
}
