// The paper's three example file suites, deployed live.
//
// For each example this program builds the suite on a simulated network with
// the example's per-representative latencies, runs a read and a write, and
// prints measured operation latencies next to the analytic model's
// prediction — the same rows the paper's Examples section tabulates.

#include <cstdio>

#include "src/analysis/gifford_examples.h"
#include "src/core/cluster.h"

using namespace wvote;  // NOLINT: example brevity

namespace {

// One-way link latency so that a request/response pair costs the example's
// quoted representative access time.
LatencyModel OneWay(Duration rtt) { return LatencyModel::Fixed(rtt / 2); }

void RunExample(const GiffordExample& ex) {
  std::printf("\n=== %s: %s ===\n", ex.name.c_str(), ex.description.c_str());
  std::printf("configuration: %s\n", ex.config.ToString().c_str());

  ClusterOptions opts;
  // Disk latency is negligible next to the 1979 internetwork latencies the
  // examples quote; keep a token amount so storage is still asynchronous.
  opts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  opts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  // The tabulated model rows describe the paper's literal protocol; run the
  // synchronous 3-RTT commit so measured and model rows stay comparable
  // (E11 measures the asynchronous 2-RTT variant).
  opts.coordinator_options.sync_phase2 = true;
  Cluster cluster(opts);

  for (const RepresentativeInfo& rep : ex.config.representatives) {
    cluster.AddRepresentative(rep.host_name);
  }
  WVOTE_CHECK(cluster.CreateSuite(ex.config, "initial contents").ok());

  SuiteClient* client = cluster.AddClient("client", ex.config, SuiteClientOptions{},
                                          ex.client_has_cache);
  for (const auto& [host, rtt] : ex.client_rtt) {
    cluster.net().SetSymmetricLink(cluster.net().FindHost("client")->id(),
                                   cluster.net().FindHost(host)->id(), OneWay(rtt));
  }

  // Warm the weak representative (first read fills the cache).
  (void)cluster.RunTask(client->ReadOnce());

  TimePoint t0 = cluster.sim().Now();
  Result<std::string> contents = cluster.RunTask(client->ReadOnce());
  Duration read_latency = cluster.sim().Now() - t0;

  t0 = cluster.sim().Now();
  Status wrote = cluster.RunTask(client->WriteOnce("new contents"));
  Duration write_latency = cluster.sim().Now() - t0;

  VotingAnalysis analysis(ex.model);
  std::printf("  read : measured %7.1fms  (model %7.1fms)   %s\n", read_latency.ToMillis(),
              analysis.ReadLatencyAllUp(ex.client_has_cache).ToMillis(),
              contents.ok() ? "ok" : contents.status().ToString().c_str());
  std::printf("  write: measured %7.1fms  (model %7.1fms)   %s\n", write_latency.ToMillis(),
              analysis.WriteLatencyAllUp().ToMillis(), wrote.ToString().c_str());
  std::printf("  blocking probability: read %.2e  write %.2e  (rep availability 0.99)\n",
              analysis.ReadBlockingProbability(), analysis.WriteBlockingProbability());
  if (ex.client_has_cache) {
    const WeakRepStats& cache = cluster.cache_of("client")->stats();
    std::printf("  weak representative: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
  }
}

}  // namespace

int main() {
  std::printf("Weighted voting: the paper's three example file suites\n");
  for (const GiffordExample& ex : MakeGiffordExamples()) {
    RunExample(ex);
  }
  return 0;
}
