// Weak representatives as consistency-checked caches.
//
// One distant voting representative (150ms away) and a weak (0-vote) copy on
// the client's own machine. Every read still performs the version check at a
// read quorum — serializability never depends on the cache — but when the
// cached copy is current, the bulk data transfer is skipped. The demo prints
// read latencies with the cache cold, warm, and invalidated by a writer.

#include <cstdio>

#include "src/core/cluster.h"

using namespace wvote;  // NOLINT: example brevity

int main() {
  ClusterOptions opts;
  opts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Micros(500));
  opts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Micros(200));
  Cluster cluster(opts);
  cluster.AddRepresentative("far-server");

  SuiteConfig config;
  config.suite_name = "dataset";
  config.AddRepresentative("far-server", 1);
  config.AddWeakRepresentative("reader");  // cache lives on the reader's host
  config.read_quorum = 1;
  config.write_quorum = 1;
  WVOTE_CHECK(cluster.CreateSuite(config, std::string(32 * 1024, 'd')).ok());

  SuiteClient* reader = cluster.AddClient("reader", config, SuiteClientOptions{},
                                          /*with_cache=*/true);
  SuiteClient* writer = cluster.AddClient("writer", config);

  // 150ms each way to the far server for the reader; the writer is nearby.
  cluster.net().SetSymmetricLink(cluster.net().FindHost("reader")->id(),
                                 cluster.net().FindHost("far-server")->id(),
                                 LatencyModel::Fixed(Duration::Millis(75)));

  auto timed_read = [&](const char* label) {
    const TimePoint t0 = cluster.sim().Now();
    Result<std::string> r = cluster.RunTask(reader->ReadOnce());
    WVOTE_CHECK(r.ok());
    std::printf("%-28s %7.1fms  (%zu bytes)\n", label, (cluster.sim().Now() - t0).ToMillis(),
                r.value().size());
  };

  timed_read("cold read (fills cache):");
  timed_read("warm read (cache hit):");
  timed_read("warm read (cache hit):");

  WVOTE_CHECK(cluster.RunTask(writer->WriteOnce(std::string(32 * 1024, 'e'))).ok());
  std::printf("writer installed a new version\n");

  timed_read("read after update (miss):");
  timed_read("warm again (cache hit):");

  const WeakRepStats& stats = cluster.cache_of("reader")->stats();
  std::printf("cache: %llu hits, %llu misses, %llu updates\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.updates));
  std::printf("bytes on the wire: %llu\n",
              static_cast<unsigned long long>(cluster.net().stats().bytes_sent));
  return 0;
}
