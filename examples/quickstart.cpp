// Quickstart: a three-representative replicated file with weighted voting.
//
// Creates three simulated file servers, assigns one vote each, sets
// r = w = 2 (any two representatives form both a read and a write quorum),
// and performs transactional reads and writes — including one while a
// representative is down.

#include <cstdio>

#include "src/core/cluster.h"

using namespace wvote;  // NOLINT: example brevity

int main() {
  // 1. Deploy three file servers on a simulated network (5ms links).
  Cluster cluster;
  cluster.AddRepresentative("server-a");
  cluster.AddRepresentative("server-b");
  cluster.AddRepresentative("server-c");

  // 2. Describe the file suite: one vote per server, r=2, w=2.
  //    Validate() enforces r+w > V and 2w > V.
  SuiteConfig config =
      SuiteConfig::MakeUniform("greetings", {"server-a", "server-b", "server-c"},
                               /*r=*/2, /*w=*/2);
  std::printf("suite: %s\n", config.ToString().c_str());

  // 3. Install the suite (prefix + initial contents at every representative).
  Status created = cluster.CreateSuite(config, "hello, 1979");
  if (!created.ok()) {
    std::printf("create failed: %s\n", created.ToString().c_str());
    return 1;
  }

  // 4. A client machine with the full voting stack.
  SuiteClient* client = cluster.AddClient("workstation", config);

  // 5. Transactional read: gathers a 2-vote read quorum, picks the current
  //    version, fetches contents from the cheapest current representative.
  Result<std::string> hello = cluster.RunTask(client->ReadOnce());
  std::printf("read #1: %s\n", hello.ok() ? hello.value().c_str() : hello.status().ToString().c_str());

  // 6. Transactional write: 2-vote write quorum, version bump, two-phase
  //    commit installs the new contents atomically.
  Status wrote = cluster.RunTask(client->WriteOnce("hello, weighted voting"));
  std::printf("write: %s\n", wrote.ToString().c_str());

  // 7. One representative crashes; r=w=2 keeps both reads and writes live.
  cluster.net().FindHost("server-c")->Crash();
  std::printf("server-c crashed\n");

  wrote = cluster.RunTask(client->WriteOnce("still available with 2 of 3"));
  std::printf("write during crash: %s\n", wrote.ToString().c_str());

  Result<std::string> after = cluster.RunTask(client->ReadOnce());
  std::printf("read #2: %s\n",
              after.ok() ? after.value().c_str() : after.status().ToString().c_str());

  // 8. The crashed server restarts and recovers from its log. A client using
  //    the broadcast probing strategy polls every representative, notices
  //    server-c is stale, and triggers a background refresh that catches it
  //    up. (The default lowest-latency strategy only probes a minimal
  //    quorum, so it would not discover the stale copy.)
  cluster.net().FindHost("server-c")->Restart();
  SuiteClientOptions broadcast;
  broadcast.strategy = QuorumStrategy::kBroadcast;
  SuiteClient* auditor = cluster.AddClient("auditor", config, broadcast);
  (void)cluster.RunTask(auditor->ReadOnce());
  cluster.sim().RunFor(Duration::Seconds(2));  // let refresh land
  Result<VersionedValue> at_c = cluster.representative("server-c")->CurrentValue("greetings");
  if (at_c.ok()) {
    std::printf("server-c after recovery+refresh: v%llu \"%s\"\n",
                static_cast<unsigned long long>(at_c.value().version),
                at_c.value().contents.c_str());
  }
  std::printf("done at simulated t=%.3fs\n", cluster.sim().Now().ToSeconds());
  return 0;
}
