// Dynamic reconfiguration: changing votes and quorums on a live suite.
//
// The voting configuration is itself replicated data (the suite prefix), so
// it can be changed with the same quorum machinery: the new prefix is
// installed under the OLD configuration's write quorum, atomically with a
// copy of the current contents at every new member. Clients that still hold
// the old prefix discover the change on their next version gather and
// re-fetch it.
//
// Scenario: a 3-server suite tuned read-one/write-all is re-tuned to
// majority quorums when writes become common, then expanded to 5 servers.

#include <cstdio>

#include "src/core/cluster.h"

using namespace wvote;  // NOLINT: example brevity

int main() {
  Cluster cluster;
  for (const char* s : {"srv-1", "srv-2", "srv-3", "srv-4", "srv-5"}) {
    cluster.AddRepresentative(s);
  }

  // Phase 1: read-optimized (r=1, w=3) over three servers.
  SuiteConfig v1 = SuiteConfig::MakeUniform("catalog", {"srv-1", "srv-2", "srv-3"},
                                            /*r=*/1, /*w=*/3);
  WVOTE_CHECK(cluster.CreateSuite(v1, "catalog v1").ok());
  SuiteClient* admin = cluster.AddClient("admin", v1);
  SuiteClient* user = cluster.AddClient("user", v1);  // keeps the OLD prefix

  std::printf("phase 1: %s\n", admin->config().ToString().c_str());
  WVOTE_CHECK(cluster.RunTask(admin->WriteOnce("catalog v2")).ok());

  // Phase 2: writes became common; move to majority quorums (r=2, w=2).
  SuiteConfig v2 = SuiteConfig::MakeUniform("catalog", {"srv-1", "srv-2", "srv-3"},
                                            /*r=*/2, /*w=*/2);
  Status st = cluster.RunTask(admin->Reconfigure(v2));
  std::printf("reconfigure to majority: %s\n", st.ToString().c_str());
  std::printf("phase 2: %s\n", admin->config().ToString().c_str());

  // The stale client discovers the new prefix on its next operation.
  Result<std::string> read = cluster.RunTask(user->ReadOnce());
  std::printf("stale client read: %s (now on cfg%llu)\n",
              read.ok() ? read.value().c_str() : read.status().ToString().c_str(),
              static_cast<unsigned long long>(user->config().config_version));

  // Phase 3: expand to five servers, heavier weight on the new fast pair.
  SuiteConfig v3;
  v3.suite_name = "catalog";
  v3.AddRepresentative("srv-1", 1);
  v3.AddRepresentative("srv-2", 1);
  v3.AddRepresentative("srv-3", 1);
  v3.AddRepresentative("srv-4", 2);
  v3.AddRepresentative("srv-5", 2);
  v3.read_quorum = 3;
  v3.write_quorum = 5;
  st = cluster.RunTask(admin->Reconfigure(v3));
  std::printf("expand to 5 servers: %s\n", st.ToString().c_str());
  std::printf("phase 3: %s\n", admin->config().ToString().c_str());

  WVOTE_CHECK(cluster.RunTask(admin->WriteOnce("catalog v3, five servers")).ok());
  read = cluster.RunTask(user->ReadOnce());
  std::printf("user read: %s\n",
              read.ok() ? read.value().c_str() : read.status().ToString().c_str());

  // New members hold real copies: the suite now survives srv-1..3 down.
  for (const char* s : {"srv-1", "srv-2", "srv-3"}) {
    cluster.net().FindHost(s)->Crash();
  }
  read = cluster.RunTask(user->ReadOnce());
  std::printf("read with srv-1..3 down: %s\n",
              read.ok() ? read.value().c_str() : read.status().ToString().c_str());
  return 0;
}
