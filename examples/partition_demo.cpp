// Partition demo: quorum intersection as mutual exclusion.
//
// Five representatives, one vote each, r = w = 3. The network splits into a
// majority side {a,b,c} and a minority side {d,e}. Weighted voting
// guarantees at most one side can form a write quorum — the majority side
// keeps working, the minority side blocks rather than diverge. After the
// partition heals, the minority representatives catch up via background
// refresh, and a read sees the writes made during the partition.

#include <cstdio>

#include "src/core/cluster.h"

using namespace wvote;  // NOLINT: example brevity

int main() {
  Cluster cluster;
  std::vector<std::string> servers = {"srv-a", "srv-b", "srv-c", "srv-d", "srv-e"};
  for (const std::string& s : servers) {
    cluster.AddRepresentative(s);
  }
  SuiteConfig config = SuiteConfig::MakeUniform("ledger", servers, /*r=*/3, /*w=*/3);
  WVOTE_CHECK(cluster.CreateSuite(config, "balance=100").ok());

  // One client on each side of the coming partition.
  SuiteClientOptions impatient;
  impatient.probe_timeout = Duration::Millis(300);
  SuiteClient* majority_client = cluster.AddClient("client-major", config, impatient);
  SuiteClient* minority_client = cluster.AddClient("client-minor", config, impatient);

  auto host = [&](const char* name) { return cluster.net().FindHost(name)->id(); };

  std::printf("partitioning: {a,b,c,client-major} | {d,e,client-minor}\n");
  cluster.net().Partition({{host("srv-a"), host("srv-b"), host("srv-c"), host("client-major")},
                           {host("srv-d"), host("srv-e"), host("client-minor")}});

  Status st = cluster.RunTask(majority_client->WriteOnce("balance=250", /*retries=*/2));
  std::printf("majority-side write: %s\n", st.ToString().c_str());

  st = cluster.RunTask(minority_client->WriteOnce("balance=0", /*retries=*/2));
  std::printf("minority-side write: %s (blocked, as it must be)\n", st.ToString().c_str());

  Result<std::string> read = cluster.RunTask(minority_client->ReadOnce(/*retries=*/2));
  std::printf("minority-side read : %s\n",
              read.ok() ? read.value().c_str() : read.status().ToString().c_str());

  std::printf("healing partition\n");
  cluster.net().HealPartition();

  read = cluster.RunTask(minority_client->ReadOnce());
  std::printf("minority client read after heal: %s\n",
              read.ok() ? read.value().c_str() : read.status().ToString().c_str());

  // A broadcast-strategy reader polls every representative and refreshes the
  // stale minority copies in the background.
  SuiteClientOptions broadcast;
  broadcast.strategy = QuorumStrategy::kBroadcast;
  SuiteClient* auditor = cluster.AddClient("auditor", config, broadcast);
  (void)cluster.RunTask(auditor->ReadOnce());

  // Give background refresh a moment, then inspect the former minority side.
  cluster.sim().RunFor(Duration::Seconds(2));
  for (const char* s : {"srv-d", "srv-e"}) {
    Result<VersionedValue> v = cluster.representative(s)->CurrentValue("ledger");
    if (v.ok()) {
      std::printf("%s now at v%llu \"%s\"\n", s,
                  static_cast<unsigned long long>(v.value().version),
                  v.value().contents.c_str());
    }
  }
  return 0;
}
