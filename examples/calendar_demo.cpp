// A shared calendar on weighted voting — an homage to Violet, the
// distributed calendar system Gifford's voting work grew out of.
//
// Each user's calendar is its own file suite with its own replication
// policy (the department's shared room calendar is more available than a
// personal one), and booking a meeting is a cross-suite transaction: the
// slot is taken in every attendee's calendar atomically or not at all.

#include <cstdio>

#include "src/core/cluster.h"
#include "src/core/multi_txn.h"

using namespace wvote;  // NOLINT: example brevity

namespace {

// Appends an entry to a newline-separated calendar if the slot is free.
// Returns false if the slot is already taken.
bool AddEntry(std::string* calendar, const std::string& slot, const std::string& what) {
  if (calendar->find(slot + " ") != std::string::npos) {
    return false;
  }
  *calendar += slot + " " + what + "\n";
  return true;
}

Task<Status> BookMeeting(Coordinator* coord, std::vector<SuiteClient*> attendees,
                         std::string slot, std::string what) {
  MultiSuiteTransaction txn(coord);
  for (SuiteClient* attendee : attendees) {
    Result<std::string> calendar = co_await txn.Read(attendee);
    if (!calendar.ok()) {
      co_await txn.Abort();
      co_return calendar.status();
    }
    std::string updated = calendar.value();
    if (!AddEntry(&updated, slot, what)) {
      co_await txn.Abort();
      co_return FailedPreconditionError(attendee->config().suite_name + " is busy at " +
                                        slot);
    }
    Status st = txn.Write(attendee, std::move(updated));
    if (!st.ok()) {
      co_await txn.Abort();
      co_return st;
    }
  }
  co_return co_await txn.Commit();
}

}  // namespace

int main() {
  Cluster cluster;
  for (const char* s : {"srv-1", "srv-2", "srv-3"}) {
    cluster.AddRepresentative(s);
  }

  // Alice's calendar: majority quorums. The conference room: read-one (its
  // availability matters to everyone checking for free slots).
  SuiteConfig alice_cfg = SuiteConfig::MakeUniform("cal/alice", {"srv-1", "srv-2"}, 1, 2);
  SuiteConfig bob_cfg = SuiteConfig::MakeUniform("cal/bob", {"srv-2", "srv-3"}, 1, 2);
  SuiteConfig room_cfg =
      SuiteConfig::MakeUniform("cal/room-12", {"srv-1", "srv-2", "srv-3"}, 1, 3);
  WVOTE_CHECK(cluster.CreateSuite(alice_cfg, "").ok());
  WVOTE_CHECK(cluster.CreateSuite(bob_cfg, "").ok());
  WVOTE_CHECK(cluster.CreateSuite(room_cfg, "").ok());

  SuiteClient* alice = cluster.AddClient("assistant", alice_cfg);
  SuiteClient* bob = cluster.AddClient("assistant", bob_cfg);
  SuiteClient* room = cluster.AddClient("assistant", room_cfg);
  Coordinator* coord = cluster.coordinator_of("assistant");

  // Book a design review for Alice + Bob + the room.
  Status st = cluster.RunTask(
      BookMeeting(coord, {alice, bob, room}, "tue-10:00", "design review"));
  std::printf("book tue-10:00 design review (alice, bob, room-12): %s\n",
              st.ToString().c_str());

  // A conflicting booking must fail atomically: bob is free at tue-10:00?
  // No — he now has the design review; nothing may be written anywhere.
  st = cluster.RunTask(BookMeeting(coord, {bob, room}, "tue-10:00", "1:1 with carol"));
  std::printf("book tue-10:00 1:1 (bob, room-12): %s\n", st.ToString().c_str());

  // A different slot books fine.
  st = cluster.RunTask(BookMeeting(coord, {bob, room}, "tue-11:00", "1:1 with carol"));
  std::printf("book tue-11:00 1:1 (bob, room-12): %s\n", st.ToString().c_str());

  // Print the calendars.
  for (SuiteClient* cal : {alice, bob, room}) {
    Result<std::string> contents = cluster.RunTask(cal->ReadOnce());
    std::printf("\n%s:\n%s", cal->config().suite_name.c_str(),
                contents.ok() ? contents.value().c_str() : "<error>\n");
  }

  // The room calendar survives any two servers failing for reads (r=1).
  cluster.net().FindHost("srv-1")->Crash();
  cluster.net().FindHost("srv-2")->Crash();
  SuiteClientOptions fast;
  fast.probe_timeout = Duration::Millis(300);
  fast.max_gather_rounds = 4;
  SuiteClient* checker = cluster.AddClient("checker", room_cfg, fast);
  Result<std::string> during_outage = cluster.RunTask(checker->ReadOnce());
  std::printf("\nroom-12 readable with srv-1+srv-2 down: %s\n",
              during_outage.ok() ? "yes" : during_outage.status().ToString().c_str());
  return 0;
}
