// chaos_cli: run, replay, and minimize chaos schedules from the command line.
//
//   chaos_cli templates
//       List the built-in schedule templates and suite configurations.
//
//   chaos_cli run [--seed=N] [--template=NAME] [--suite=NAME] [--unsafe]
//                 [--clients=N] [--ops=N] [--minimize] [--out=FILE]
//       One adversarial run. Prints the checker report; with --minimize a
//       failing schedule is shrunk before the artifact is printed/saved.
//
//   chaos_cli replay FILE
//       Re-run the exact schedule dumped in FILE (as produced by `run
//       --out=...` or by bench_chaos on failure) and re-check the history.
//       Deterministic: a failure replays bit-for-bit.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/chaos/runner.h"

namespace {

using namespace wvote;

int Usage() {
  std::fprintf(stderr,
               "usage: chaos_cli templates\n"
               "       chaos_cli run [--seed=N] [--template=NAME] [--suite=NAME] [--unsafe]\n"
               "                     [--clients=N] [--ops=N] [--minimize] [--out=FILE]\n"
               "       chaos_cli replay FILE\n");
  return 2;
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

ChaosSuiteSpec FindSuite(const std::string& name) {
  for (const ChaosSuiteSpec& s : DefaultSuiteSpecs()) {
    if (s.name == name) {
      return s;
    }
  }
  if (name == NegativeControlSuite().name) {
    return NegativeControlSuite();
  }
  std::fprintf(stderr, "unknown suite '%s', using r2w2x3\n", name.c_str());
  return DefaultSuiteSpecs()[1];
}

int RunCommand(int argc, char** argv) {
  ChaosRunSpec spec;
  spec.suite = DefaultSuiteSpecs()[1];  // r2w2x3
  bool minimize = false;
  std::string out_file;
  for (int i = 0; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--seed", &v)) {
      spec.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--template", &v)) {
      spec.schedule_template = v;
    } else if (FlagValue(argv[i], "--suite", &v)) {
      spec.suite = FindSuite(v);
    } else if (FlagValue(argv[i], "--clients", &v)) {
      spec.clients = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--ops", &v)) {
      spec.ops_per_client = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--unsafe") == 0) {
      spec.suite = NegativeControlSuite();
    } else if (std::strcmp(argv[i], "--minimize") == 0) {
      minimize = true;
    } else if (FlagValue(argv[i], "--out", &v)) {
      out_file = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage();
    }
  }

  ChaosRunOutcome outcome = RunChaos(spec);
  std::printf("seed=%llu template=%s suite=%s: %llu nemesis events applied\n",
              static_cast<unsigned long long>(spec.seed), spec.schedule_template.c_str(),
              spec.suite.name.c_str(),
              static_cast<unsigned long long>(outcome.nemesis_events_applied));
  FaultSchedule schedule = outcome.schedule;
  if (!outcome.check.ok() && minimize) {
    std::printf("minimizing %zu-event schedule...\n", schedule.events.size());
    schedule = MinimizeSchedule(spec, schedule);
    outcome = RunChaosWithSchedule(spec, schedule);
    std::printf("minimized to %zu events\n", schedule.events.size());
  }
  std::fputs(outcome.check.Report(schedule).c_str(), stdout);
  if (!out_file.empty()) {
    std::ofstream f(out_file);
    f << DumpArtifact(spec, schedule, outcome);
    std::printf("artifact written to %s\n", out_file.c_str());
  }
  return outcome.check.ok() ? 0 : 1;
}

int ReplayCommand(const char* path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  Result<ChaosReplayFile> replay = ParseArtifact(buf.str());
  if (!replay.ok()) {
    std::fprintf(stderr, "parse error: %s\n", replay.status().ToString().c_str());
    return 2;
  }
  const ChaosRunSpec& spec = replay.value().spec;
  std::printf("replaying seed=%llu suite=%s, %zu-event schedule '%s'\n",
              static_cast<unsigned long long>(spec.seed), spec.suite.name.c_str(),
              replay.value().schedule.events.size(), replay.value().schedule.name.c_str());
  ChaosRunOutcome outcome = RunChaosWithSchedule(spec, replay.value().schedule);
  std::fputs(outcome.check.Report(replay.value().schedule).c_str(), stdout);
  return outcome.check.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  if (std::strcmp(argv[1], "templates") == 0) {
    std::printf("schedule templates:\n");
    for (const std::string& name : ScheduleTemplateNames()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("suites:\n");
    for (const ChaosSuiteSpec& s : DefaultSuiteSpecs()) {
      std::printf("  %s (r=%d w=%d reps=%zu)\n", s.name.c_str(), s.read_quorum,
                  s.write_quorum, s.votes.size());
    }
    const ChaosSuiteSpec neg = NegativeControlSuite();
    std::printf("  %s (r=%d w=%d reps=%zu, NEGATIVE CONTROL)\n", neg.name.c_str(),
                neg.read_quorum, neg.write_quorum, neg.votes.size());
    return 0;
  }
  if (std::strcmp(argv[1], "run") == 0) {
    return RunCommand(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "replay") == 0 && argc >= 3) {
    return ReplayCommand(argv[2]);
  }
  return Usage();
}
