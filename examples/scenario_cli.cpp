// scenario_cli — run an ad-hoc weighted-voting scenario from the command
// line and print workload statistics.
//
// Usage:
//   scenario_cli [--reps N] [--votes v1,v2,...] [--r R] [--w W]
//                [--latency-ms l1,l2,...] [--read-fraction F]
//                [--clients C] [--seconds S] [--value-bytes B]
//                [--availability P] [--seed X] [--strategy lowest|fewest|broadcast]
//
// Examples:
//   scenario_cli --reps 5 --r 1 --w 5 --read-fraction 0.99
//   scenario_cli --votes 2,1,1 --r 2 --w 3 --latency-ms 75,100,750
//   scenario_cli --reps 3 --r 2 --w 2 --availability 0.9 --seconds 300

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/obs/metrics.h"
#include "src/workload/fault_injector.h"
#include "src/workload/generator.h"

using namespace wvote;  // NOLINT: example brevity

namespace {

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

struct Args {
  int reps = 3;
  std::vector<int> votes;        // default: 1 each
  int r = 2;
  int w = 2;
  std::vector<int> latency_ms;   // default: 10ms each
  double read_fraction = 0.9;
  int clients = 2;
  int seconds = 60;
  size_t value_bytes = 1024;
  double availability = 1.0;     // < 1.0 enables crash injection
  uint64_t seed = 42;
  QuorumStrategy strategy = QuorumStrategy::kLowestLatency;
  bool metrics = false;
  bool metrics_json = false;
  std::string trace_path;           // --trace=FILE: Chrome-trace JSON export
  std::string timeseries_path;      // --timeseries=FILE: sim-time series export
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--reps") {
      args->reps = std::atoi(next());
    } else if (flag == "--votes") {
      args->votes = ParseIntList(next());
    } else if (flag == "--r") {
      args->r = std::atoi(next());
    } else if (flag == "--w") {
      args->w = std::atoi(next());
    } else if (flag == "--latency-ms") {
      args->latency_ms = ParseIntList(next());
    } else if (flag == "--read-fraction") {
      args->read_fraction = std::atof(next());
    } else if (flag == "--clients") {
      args->clients = std::atoi(next());
    } else if (flag == "--seconds") {
      args->seconds = std::atoi(next());
    } else if (flag == "--value-bytes") {
      args->value_bytes = static_cast<size_t>(std::atoll(next()));
    } else if (flag == "--availability") {
      args->availability = std::atof(next());
    } else if (flag == "--seed") {
      args->seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--strategy") {
      const std::string s = next();
      if (s == "lowest") {
        args->strategy = QuorumStrategy::kLowestLatency;
      } else if (s == "fewest") {
        args->strategy = QuorumStrategy::kFewestMessages;
      } else if (s == "broadcast") {
        args->strategy = QuorumStrategy::kBroadcast;
      } else {
        std::fprintf(stderr, "unknown strategy %s\n", s.c_str());
        return false;
      }
    } else if (std::strncmp(flag.c_str(), "--trace=", 8) == 0) {
      args->trace_path = flag.substr(8);
    } else if (std::strncmp(flag.c_str(), "--timeseries=", 13) == 0) {
      args->timeseries_path = flag.substr(13);
    } else if (flag == "--metrics" || flag == "--metrics=text") {
      args->metrics = true;
    } else if (flag == "--metrics=json") {
      args->metrics = true;
      args->metrics_json = true;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (!args->votes.empty()) {
    args->reps = static_cast<int>(args->votes.size());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [--reps N] [--votes v1,v2,..] [--r R] [--w W]\n"
                 "          [--latency-ms l1,l2,..] [--read-fraction F] [--clients C]\n"
                 "          [--seconds S] [--value-bytes B] [--availability P]\n"
                 "          [--seed X] [--strategy lowest|fewest|broadcast]\n"
                 "          [--metrics[=json]] [--trace=FILE] [--timeseries=FILE]\n",
                 argv[0]);
    return 2;
  }

  ClusterOptions copts;
  copts.seed = args.seed;
  if (!args.timeseries_path.empty()) {
    // Size the ring to hold the whole run (plus drain slack past the
    // horizon) so the export and sparklines cover the traffic, not just the
    // idle tail.
    copts.scrape_window_capacity = static_cast<size_t>(args.seconds) * 100 + 4096;
  }
  Cluster cluster(copts);
  if (!args.trace_path.empty()) {
    cluster.tracer().Enable(true);
  }
  if (!args.timeseries_path.empty()) {
    cluster.EnableScraping(Duration::Millis(10));
  }

  SuiteConfig config;
  config.suite_name = "cli";
  for (int i = 0; i < args.reps; ++i) {
    const std::string host = "rep-" + std::to_string(i);
    cluster.AddRepresentative(host);
    const int votes = i < static_cast<int>(args.votes.size()) ? args.votes[static_cast<size_t>(i)] : 1;
    config.AddRepresentative(host, votes);
  }
  config.read_quorum = args.r;
  config.write_quorum = args.w;
  Status valid = config.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n", valid.ToString().c_str());
    return 2;
  }
  WVOTE_CHECK(cluster.CreateSuite(config, std::string(args.value_bytes, 'i')).ok());

  std::printf("scenario: %s\n", config.ToString().c_str());
  std::printf("workload: %d clients, read fraction %.2f, %ds, %zuB values, availability %.2f\n",
              args.clients, args.read_fraction, args.seconds, args.value_bytes,
              args.availability);

  SuiteClientOptions client_opts;
  client_opts.strategy = args.strategy;
  client_opts.probe_timeout = Duration::Millis(500);
  client_opts.max_gather_rounds = args.reps + 1;

  const Duration run = Duration::Seconds(args.seconds);
  std::vector<WorkloadStats> stats(static_cast<size_t>(args.clients));
  std::vector<std::unique_ptr<SuiteStoreAdapter>> stores;
  for (int c = 0; c < args.clients; ++c) {
    SuiteClient* client =
        cluster.AddClient("client-" + std::to_string(c), config, client_opts);
    const HostId me = cluster.net().FindHost("client-" + std::to_string(c))->id();
    for (int i = 0; i < args.reps; ++i) {
      const Duration rtt = Duration::Millis(
          i < static_cast<int>(args.latency_ms.size()) ? args.latency_ms[static_cast<size_t>(i)] : 10);
      cluster.net().SetSymmetricLink(
          me, cluster.net().FindHost("rep-" + std::to_string(i))->id(),
          LatencyModel::Fixed(rtt / 2));
    }
    stores.push_back(std::make_unique<SuiteStoreAdapter>(client));
    stats[static_cast<size_t>(c)].RegisterWith(
        &cluster.metrics(), {{"client", "client-" + std::to_string(c)}});
    WorkloadOptions wopts;
    wopts.read_fraction = args.read_fraction;
    wopts.mean_think_time = Duration::Millis(100);
    wopts.run_length = run;
    wopts.value_size = args.value_bytes;
    Spawn(RunClosedLoopClient(&cluster.sim(), stores.back().get(), wopts,
                              args.seed + static_cast<uint64_t>(c) + 1,
                              &stats[static_cast<size_t>(c)]));
  }

  if (args.availability < 1.0) {
    const FaultProfile profile =
        ProfileForAvailability(args.availability, Duration::Seconds(5));
    const TimePoint end = cluster.sim().Now() + run;
    for (int i = 0; i < args.reps; ++i) {
      Spawn(RunCrashRestartCycle(&cluster.sim(),
                                 cluster.net().FindHost("rep-" + std::to_string(i)),
                                 profile.mttf, profile.mttr, end,
                                 args.seed * 7 + static_cast<uint64_t>(i)));
    }
  }

  cluster.sim().RunUntil(cluster.sim().Now() + run + Duration::Seconds(60));

  WorkloadStats total;
  for (const WorkloadStats& s : stats) {
    total.MergeFrom(s);
  }
  std::printf("\nresults over %ds simulated:\n  %s\n", args.seconds, total.Summary().c_str());
  std::printf("  throughput: %.1f ops/s\n", total.throughput_per_sec(run));
  const NetworkStats& net = cluster.net().stats();
  std::printf("  network: %llu messages, %.2f MB\n",
              static_cast<unsigned long long>(net.messages_sent),
              static_cast<double>(net.bytes_sent) / 1e6);
  if (args.metrics) {
    if (args.metrics_json) {
      std::printf("%s\n", cluster.metrics().ExportJson().c_str());
    } else {
      std::printf("\n=== metrics ===\n%s=== end metrics ===\n",
                  cluster.metrics().ExportText().c_str());
    }
  }
  if (!args.trace_path.empty()) {
    std::FILE* f = std::fopen(args.trace_path.c_str(), "w");
    WVOTE_CHECK_MSG(f != nullptr, "cannot open --trace output file");
    std::fprintf(f, "%s\n", cluster.tracer().ExportChromeTrace().c_str());
    std::fclose(f);
    std::fprintf(stderr, "wrote Chrome trace to %s\n", args.trace_path.c_str());
  }
  if (!args.timeseries_path.empty() && cluster.scraper() != nullptr) {
    const TimeSeriesStore& store = cluster.scraper()->store();
    std::FILE* f = std::fopen(args.timeseries_path.c_str(), "w");
    WVOTE_CHECK_MSG(f != nullptr, "cannot open --timeseries output file");
    std::fprintf(f, "{\"timeseries\":%s,\"slo_events\":%s}\n",
                 store.ExportJson(store.capacity()).c_str(),
                 cluster.slo() != nullptr ? cluster.slo()->EventsJson().c_str() : "[]");
    std::fclose(f);
    std::fprintf(stderr, "wrote %llu windows of time-series to %s\n",
                 static_cast<unsigned long long>(store.windows_sealed()),
                 args.timeseries_path.c_str());
    // Terminal sparkline summary for the headline series. The sim drains
    // in-flight work past the workload horizon, so the newest windows are
    // idle; trim the all-zero tail before picking the last 64.
    const char* kHeadline[] = {"core.suite_client.reads", "core.suite_client.writes",
                               "core.suite_client.unavailable",
                               "net.network.messages_sent"};
    std::map<std::string, std::vector<double>> tails;
    size_t last_active = 0;
    for (const char* name : kHeadline) {
      std::vector<double> all = store.SumTail(name, store.capacity());
      for (size_t i = 0; i < all.size(); ++i) {
        if (all[i] != 0.0) last_active = std::max(last_active, i + 1);
      }
      tails[name] = std::move(all);
    }
    // One glyph per chunk of windows, whole active run left to right.
    const size_t active = std::max<size_t>(last_active, 1);
    const size_t chunk = (active + 63) / 64;
    std::printf("\nsim-time series (%zu active windows @ %llu us, %zu per glyph):\n", active,
                static_cast<unsigned long long>(store.resolution_us()), chunk);
    for (const char* name : kHeadline) {
      std::vector<double>& tail = tails[name];
      if (tail.empty()) continue;
      tail.resize(active);
      std::vector<double> cols;
      for (size_t i = 0; i < tail.size(); i += chunk) {
        double sum = 0;
        for (size_t j = i; j < std::min(tail.size(), i + chunk); ++j) sum += tail[j];
        cols.push_back(sum);
      }
      std::printf("  %-34s %s\n", name, Sparkline(cols).c_str());
    }
    if (cluster.slo() != nullptr) {
      std::printf("%s", cluster.slo()->Summary().c_str());
    }
  }
  return 0;
}
