# Empty dependencies file for bench_examples_table.
# This may be replaced when dependencies are built.
