file(REMOVE_RECURSE
  "CMakeFiles/bench_examples_table.dir/bench_examples_table.cc.o"
  "CMakeFiles/bench_examples_table.dir/bench_examples_table.cc.o.d"
  "bench_examples_table"
  "bench_examples_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_examples_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
