file(REMOVE_RECURSE
  "CMakeFiles/bench_refresh.dir/bench_refresh.cc.o"
  "CMakeFiles/bench_refresh.dir/bench_refresh.cc.o.d"
  "bench_refresh"
  "bench_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
