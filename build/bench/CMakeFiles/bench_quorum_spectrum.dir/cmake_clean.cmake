file(REMOVE_RECURSE
  "CMakeFiles/bench_quorum_spectrum.dir/bench_quorum_spectrum.cc.o"
  "CMakeFiles/bench_quorum_spectrum.dir/bench_quorum_spectrum.cc.o.d"
  "bench_quorum_spectrum"
  "bench_quorum_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quorum_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
