# Empty compiler generated dependencies file for bench_quorum_spectrum.
# This may be replaced when dependencies are built.
