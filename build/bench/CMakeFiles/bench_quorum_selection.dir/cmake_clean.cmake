file(REMOVE_RECURSE
  "CMakeFiles/bench_quorum_selection.dir/bench_quorum_selection.cc.o"
  "CMakeFiles/bench_quorum_selection.dir/bench_quorum_selection.cc.o.d"
  "bench_quorum_selection"
  "bench_quorum_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quorum_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
