# Empty dependencies file for bench_quorum_selection.
# This may be replaced when dependencies are built.
