# Empty dependencies file for bench_weak_reps.
# This may be replaced when dependencies are built.
