file(REMOVE_RECURSE
  "CMakeFiles/bench_weak_reps.dir/bench_weak_reps.cc.o"
  "CMakeFiles/bench_weak_reps.dir/bench_weak_reps.cc.o.d"
  "bench_weak_reps"
  "bench_weak_reps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weak_reps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
