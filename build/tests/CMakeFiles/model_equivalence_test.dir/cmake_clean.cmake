file(REMOVE_RECURSE
  "CMakeFiles/model_equivalence_test.dir/model_equivalence_test.cc.o"
  "CMakeFiles/model_equivalence_test.dir/model_equivalence_test.cc.o.d"
  "model_equivalence_test"
  "model_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
