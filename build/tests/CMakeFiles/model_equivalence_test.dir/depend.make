# Empty dependencies file for model_equivalence_test.
# This may be replaced when dependencies are built.
