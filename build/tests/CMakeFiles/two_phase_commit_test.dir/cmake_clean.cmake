file(REMOVE_RECURSE
  "CMakeFiles/two_phase_commit_test.dir/two_phase_commit_test.cc.o"
  "CMakeFiles/two_phase_commit_test.dir/two_phase_commit_test.cc.o.d"
  "two_phase_commit_test"
  "two_phase_commit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_phase_commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
