file(REMOVE_RECURSE
  "CMakeFiles/representative_test.dir/representative_test.cc.o"
  "CMakeFiles/representative_test.dir/representative_test.cc.o.d"
  "representative_test"
  "representative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/representative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
