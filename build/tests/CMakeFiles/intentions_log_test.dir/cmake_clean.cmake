file(REMOVE_RECURSE
  "CMakeFiles/intentions_log_test.dir/intentions_log_test.cc.o"
  "CMakeFiles/intentions_log_test.dir/intentions_log_test.cc.o.d"
  "intentions_log_test"
  "intentions_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intentions_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
