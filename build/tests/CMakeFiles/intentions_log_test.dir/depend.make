# Empty dependencies file for intentions_log_test.
# This may be replaced when dependencies are built.
