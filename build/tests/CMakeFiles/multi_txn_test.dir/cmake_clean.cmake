file(REMOVE_RECURSE
  "CMakeFiles/multi_txn_test.dir/multi_txn_test.cc.o"
  "CMakeFiles/multi_txn_test.dir/multi_txn_test.cc.o.d"
  "multi_txn_test"
  "multi_txn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
