# Empty dependencies file for suite_client_test.
# This may be replaced when dependencies are built.
