file(REMOVE_RECURSE
  "CMakeFiles/suite_client_test.dir/suite_client_test.cc.o"
  "CMakeFiles/suite_client_test.dir/suite_client_test.cc.o.d"
  "suite_client_test"
  "suite_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
