file(REMOVE_RECURSE
  "CMakeFiles/lock_lease_test.dir/lock_lease_test.cc.o"
  "CMakeFiles/lock_lease_test.dir/lock_lease_test.cc.o.d"
  "lock_lease_test"
  "lock_lease_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
