# Empty compiler generated dependencies file for lock_lease_test.
# This may be replaced when dependencies are built.
