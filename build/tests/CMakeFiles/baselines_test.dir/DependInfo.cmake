
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/wvote_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/wvote_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wvote_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/wvote_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wvote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/wvote_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wvote_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wvote_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wvote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wvote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wvote_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
