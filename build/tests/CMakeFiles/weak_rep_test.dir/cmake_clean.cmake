file(REMOVE_RECURSE
  "CMakeFiles/weak_rep_test.dir/weak_rep_test.cc.o"
  "CMakeFiles/weak_rep_test.dir/weak_rep_test.cc.o.d"
  "weak_rep_test"
  "weak_rep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_rep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
