# Empty dependencies file for weak_rep_test.
# This may be replaced when dependencies are built.
