# Empty dependencies file for suite_config_test.
# This may be replaced when dependencies are built.
