file(REMOVE_RECURSE
  "CMakeFiles/suite_config_test.dir/suite_config_test.cc.o"
  "CMakeFiles/suite_config_test.dir/suite_config_test.cc.o.d"
  "suite_config_test"
  "suite_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
