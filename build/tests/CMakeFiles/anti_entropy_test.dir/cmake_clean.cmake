file(REMOVE_RECURSE
  "CMakeFiles/anti_entropy_test.dir/anti_entropy_test.cc.o"
  "CMakeFiles/anti_entropy_test.dir/anti_entropy_test.cc.o.d"
  "anti_entropy_test"
  "anti_entropy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anti_entropy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
