file(REMOVE_RECURSE
  "libwvote_workload.a"
)
