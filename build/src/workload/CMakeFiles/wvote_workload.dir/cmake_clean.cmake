file(REMOVE_RECURSE
  "CMakeFiles/wvote_workload.dir/fault_injector.cc.o"
  "CMakeFiles/wvote_workload.dir/fault_injector.cc.o.d"
  "CMakeFiles/wvote_workload.dir/generator.cc.o"
  "CMakeFiles/wvote_workload.dir/generator.cc.o.d"
  "CMakeFiles/wvote_workload.dir/histogram.cc.o"
  "CMakeFiles/wvote_workload.dir/histogram.cc.o.d"
  "libwvote_workload.a"
  "libwvote_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
