# Empty dependencies file for wvote_workload.
# This may be replaced when dependencies are built.
