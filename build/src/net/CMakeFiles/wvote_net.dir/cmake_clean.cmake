file(REMOVE_RECURSE
  "CMakeFiles/wvote_net.dir/host.cc.o"
  "CMakeFiles/wvote_net.dir/host.cc.o.d"
  "CMakeFiles/wvote_net.dir/network.cc.o"
  "CMakeFiles/wvote_net.dir/network.cc.o.d"
  "libwvote_net.a"
  "libwvote_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
