file(REMOVE_RECURSE
  "libwvote_net.a"
)
