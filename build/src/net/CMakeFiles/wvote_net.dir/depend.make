# Empty dependencies file for wvote_net.
# This may be replaced when dependencies are built.
