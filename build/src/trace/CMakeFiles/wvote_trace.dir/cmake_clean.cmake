file(REMOVE_RECURSE
  "CMakeFiles/wvote_trace.dir/trace.cc.o"
  "CMakeFiles/wvote_trace.dir/trace.cc.o.d"
  "libwvote_trace.a"
  "libwvote_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
