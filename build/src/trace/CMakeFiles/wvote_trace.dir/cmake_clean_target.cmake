file(REMOVE_RECURSE
  "libwvote_trace.a"
)
