# Empty dependencies file for wvote_trace.
# This may be replaced when dependencies are built.
