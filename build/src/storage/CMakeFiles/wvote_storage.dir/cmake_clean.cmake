file(REMOVE_RECURSE
  "CMakeFiles/wvote_storage.dir/stable_store.cc.o"
  "CMakeFiles/wvote_storage.dir/stable_store.cc.o.d"
  "libwvote_storage.a"
  "libwvote_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
