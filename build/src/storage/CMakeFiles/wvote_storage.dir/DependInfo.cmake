
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/stable_store.cc" "src/storage/CMakeFiles/wvote_storage.dir/stable_store.cc.o" "gcc" "src/storage/CMakeFiles/wvote_storage.dir/stable_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wvote_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wvote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wvote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wvote_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
