file(REMOVE_RECURSE
  "libwvote_storage.a"
)
