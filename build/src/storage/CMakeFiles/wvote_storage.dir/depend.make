# Empty dependencies file for wvote_storage.
# This may be replaced when dependencies are built.
