
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anti_entropy.cc" "src/core/CMakeFiles/wvote_core.dir/anti_entropy.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/anti_entropy.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/wvote_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/wvote_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/multi_txn.cc" "src/core/CMakeFiles/wvote_core.dir/multi_txn.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/multi_txn.cc.o.d"
  "/root/repo/src/core/quorum.cc" "src/core/CMakeFiles/wvote_core.dir/quorum.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/quorum.cc.o.d"
  "/root/repo/src/core/representative.cc" "src/core/CMakeFiles/wvote_core.dir/representative.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/representative.cc.o.d"
  "/root/repo/src/core/suite_client.cc" "src/core/CMakeFiles/wvote_core.dir/suite_client.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/suite_client.cc.o.d"
  "/root/repo/src/core/suite_config.cc" "src/core/CMakeFiles/wvote_core.dir/suite_config.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/suite_config.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/wvote_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/wvote_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/wvote_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wvote_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wvote_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wvote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wvote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wvote_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
