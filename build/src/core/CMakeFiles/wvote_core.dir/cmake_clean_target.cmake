file(REMOVE_RECURSE
  "libwvote_core.a"
)
