file(REMOVE_RECURSE
  "CMakeFiles/wvote_core.dir/anti_entropy.cc.o"
  "CMakeFiles/wvote_core.dir/anti_entropy.cc.o.d"
  "CMakeFiles/wvote_core.dir/catalog.cc.o"
  "CMakeFiles/wvote_core.dir/catalog.cc.o.d"
  "CMakeFiles/wvote_core.dir/cluster.cc.o"
  "CMakeFiles/wvote_core.dir/cluster.cc.o.d"
  "CMakeFiles/wvote_core.dir/multi_txn.cc.o"
  "CMakeFiles/wvote_core.dir/multi_txn.cc.o.d"
  "CMakeFiles/wvote_core.dir/quorum.cc.o"
  "CMakeFiles/wvote_core.dir/quorum.cc.o.d"
  "CMakeFiles/wvote_core.dir/representative.cc.o"
  "CMakeFiles/wvote_core.dir/representative.cc.o.d"
  "CMakeFiles/wvote_core.dir/suite_client.cc.o"
  "CMakeFiles/wvote_core.dir/suite_client.cc.o.d"
  "CMakeFiles/wvote_core.dir/suite_config.cc.o"
  "CMakeFiles/wvote_core.dir/suite_config.cc.o.d"
  "CMakeFiles/wvote_core.dir/types.cc.o"
  "CMakeFiles/wvote_core.dir/types.cc.o.d"
  "libwvote_core.a"
  "libwvote_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
