# Empty compiler generated dependencies file for wvote_core.
# This may be replaced when dependencies are built.
