# Empty compiler generated dependencies file for wvote_sim.
# This may be replaced when dependencies are built.
