file(REMOVE_RECURSE
  "CMakeFiles/wvote_sim.dir/latency.cc.o"
  "CMakeFiles/wvote_sim.dir/latency.cc.o.d"
  "CMakeFiles/wvote_sim.dir/random.cc.o"
  "CMakeFiles/wvote_sim.dir/random.cc.o.d"
  "CMakeFiles/wvote_sim.dir/simulator.cc.o"
  "CMakeFiles/wvote_sim.dir/simulator.cc.o.d"
  "libwvote_sim.a"
  "libwvote_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
