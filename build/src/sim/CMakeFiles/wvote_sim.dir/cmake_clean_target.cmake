file(REMOVE_RECURSE
  "libwvote_sim.a"
)
