file(REMOVE_RECURSE
  "libwvote_kv.a"
)
