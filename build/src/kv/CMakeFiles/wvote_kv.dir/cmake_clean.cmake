file(REMOVE_RECURSE
  "CMakeFiles/wvote_kv.dir/kv_store.cc.o"
  "CMakeFiles/wvote_kv.dir/kv_store.cc.o.d"
  "libwvote_kv.a"
  "libwvote_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
