# Empty compiler generated dependencies file for wvote_kv.
# This may be replaced when dependencies are built.
