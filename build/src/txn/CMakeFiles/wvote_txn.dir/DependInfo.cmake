
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/coordinator.cc" "src/txn/CMakeFiles/wvote_txn.dir/coordinator.cc.o" "gcc" "src/txn/CMakeFiles/wvote_txn.dir/coordinator.cc.o.d"
  "/root/repo/src/txn/intentions_log.cc" "src/txn/CMakeFiles/wvote_txn.dir/intentions_log.cc.o" "gcc" "src/txn/CMakeFiles/wvote_txn.dir/intentions_log.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/wvote_txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/wvote_txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/participant.cc" "src/txn/CMakeFiles/wvote_txn.dir/participant.cc.o" "gcc" "src/txn/CMakeFiles/wvote_txn.dir/participant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/wvote_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wvote_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wvote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wvote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wvote_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
