# Empty dependencies file for wvote_txn.
# This may be replaced when dependencies are built.
