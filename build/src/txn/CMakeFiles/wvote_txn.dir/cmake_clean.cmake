file(REMOVE_RECURSE
  "CMakeFiles/wvote_txn.dir/coordinator.cc.o"
  "CMakeFiles/wvote_txn.dir/coordinator.cc.o.d"
  "CMakeFiles/wvote_txn.dir/intentions_log.cc.o"
  "CMakeFiles/wvote_txn.dir/intentions_log.cc.o.d"
  "CMakeFiles/wvote_txn.dir/lock_manager.cc.o"
  "CMakeFiles/wvote_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/wvote_txn.dir/participant.cc.o"
  "CMakeFiles/wvote_txn.dir/participant.cc.o.d"
  "libwvote_txn.a"
  "libwvote_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
