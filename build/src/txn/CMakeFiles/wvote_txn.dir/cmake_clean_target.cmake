file(REMOVE_RECURSE
  "libwvote_txn.a"
)
