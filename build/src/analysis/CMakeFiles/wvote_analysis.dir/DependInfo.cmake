
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/baseline_model.cc" "src/analysis/CMakeFiles/wvote_analysis.dir/baseline_model.cc.o" "gcc" "src/analysis/CMakeFiles/wvote_analysis.dir/baseline_model.cc.o.d"
  "/root/repo/src/analysis/gifford_examples.cc" "src/analysis/CMakeFiles/wvote_analysis.dir/gifford_examples.cc.o" "gcc" "src/analysis/CMakeFiles/wvote_analysis.dir/gifford_examples.cc.o.d"
  "/root/repo/src/analysis/model.cc" "src/analysis/CMakeFiles/wvote_analysis.dir/model.cc.o" "gcc" "src/analysis/CMakeFiles/wvote_analysis.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wvote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wvote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/wvote_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wvote_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wvote_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wvote_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wvote_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
