file(REMOVE_RECURSE
  "CMakeFiles/wvote_analysis.dir/baseline_model.cc.o"
  "CMakeFiles/wvote_analysis.dir/baseline_model.cc.o.d"
  "CMakeFiles/wvote_analysis.dir/gifford_examples.cc.o"
  "CMakeFiles/wvote_analysis.dir/gifford_examples.cc.o.d"
  "CMakeFiles/wvote_analysis.dir/model.cc.o"
  "CMakeFiles/wvote_analysis.dir/model.cc.o.d"
  "libwvote_analysis.a"
  "libwvote_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
