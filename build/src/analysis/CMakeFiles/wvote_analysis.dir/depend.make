# Empty dependencies file for wvote_analysis.
# This may be replaced when dependencies are built.
