file(REMOVE_RECURSE
  "libwvote_analysis.a"
)
