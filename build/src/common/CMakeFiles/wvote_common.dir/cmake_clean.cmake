file(REMOVE_RECURSE
  "CMakeFiles/wvote_common.dir/status.cc.o"
  "CMakeFiles/wvote_common.dir/status.cc.o.d"
  "CMakeFiles/wvote_common.dir/time.cc.o"
  "CMakeFiles/wvote_common.dir/time.cc.o.d"
  "libwvote_common.a"
  "libwvote_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
