file(REMOVE_RECURSE
  "libwvote_common.a"
)
