# Empty compiler generated dependencies file for wvote_common.
# This may be replaced when dependencies are built.
