file(REMOVE_RECURSE
  "CMakeFiles/wvote_baselines.dir/configs.cc.o"
  "CMakeFiles/wvote_baselines.dir/configs.cc.o.d"
  "CMakeFiles/wvote_baselines.dir/majority_consensus.cc.o"
  "CMakeFiles/wvote_baselines.dir/majority_consensus.cc.o.d"
  "CMakeFiles/wvote_baselines.dir/primary_copy.cc.o"
  "CMakeFiles/wvote_baselines.dir/primary_copy.cc.o.d"
  "libwvote_baselines.a"
  "libwvote_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wvote_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
