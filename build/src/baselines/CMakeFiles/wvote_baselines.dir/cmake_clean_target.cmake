file(REMOVE_RECURSE
  "libwvote_baselines.a"
)
