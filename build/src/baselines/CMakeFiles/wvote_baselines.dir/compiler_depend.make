# Empty compiler generated dependencies file for wvote_baselines.
# This may be replaced when dependencies are built.
