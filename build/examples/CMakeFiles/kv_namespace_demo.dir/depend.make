# Empty dependencies file for kv_namespace_demo.
# This may be replaced when dependencies are built.
