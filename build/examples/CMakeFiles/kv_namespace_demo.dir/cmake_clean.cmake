file(REMOVE_RECURSE
  "CMakeFiles/kv_namespace_demo.dir/kv_namespace_demo.cpp.o"
  "CMakeFiles/kv_namespace_demo.dir/kv_namespace_demo.cpp.o.d"
  "kv_namespace_demo"
  "kv_namespace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_namespace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
