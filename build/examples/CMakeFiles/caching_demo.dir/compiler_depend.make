# Empty compiler generated dependencies file for caching_demo.
# This may be replaced when dependencies are built.
