# Empty compiler generated dependencies file for gifford_examples.
# This may be replaced when dependencies are built.
