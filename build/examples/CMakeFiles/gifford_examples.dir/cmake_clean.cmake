file(REMOVE_RECURSE
  "CMakeFiles/gifford_examples.dir/gifford_examples.cpp.o"
  "CMakeFiles/gifford_examples.dir/gifford_examples.cpp.o.d"
  "gifford_examples"
  "gifford_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gifford_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
