#include "src/core/suite_client.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/backoff.h"
#include "src/common/check.h"
#include "src/core/txn_state.h"
#include "src/sim/join.h"

namespace wvote {

namespace {

// User-declared constructor per the GCC 12 rule in src/sim/task.h: this type
// travels by value through coroutine plumbing (Task payloads, std::function
// callbacks).
struct ProbeOutcome {
  QuorumCandidate candidate;
  HostId host = kInvalidHost;
  Result<VersionResp> result;

  ProbeOutcome() : result(TimeoutError("unprobed")) {}
  ProbeOutcome(QuorumCandidate c, HostId h, Result<VersionResp> r)
      : candidate(std::move(c)), host(h), result(std::move(r)) {}
};

Task<ProbeOutcome> SendProbe(RpcEndpoint* rpc, HostId host, QuorumCandidate candidate,
                             TxnId txn, std::string suite, bool exclusive, bool want_data,
                             Duration timeout, TraceContext ctx) {
  // if/else, NOT `exclusive ? co_await ... : co_await ...`: GCC 12
  // miscompiles the conditional operator with co_await in its arms — the
  // selected arm's result is copied bitwise, so a string payload ends up
  // aliasing this coroutine's frame. See rule 4 in src/sim/task.h.
  Result<VersionResp> result = TimeoutError("unprobed");
  if (exclusive) {
    result = co_await rpc->Call<LockVersionReq, VersionResp>(
        host, LockVersionReq{txn, std::move(suite)}, timeout, ctx);
  } else {
    result = co_await rpc->Call<TxnVersionReq, VersionResp>(
        host, TxnVersionReq{txn, std::move(suite), want_data}, timeout, ctx);
  }
  ProbeOutcome outcome(std::move(candidate), host, std::move(result));
  co_return std::move(outcome);
}

// Releases locks acquired by a straggler probe that answered after its
// transaction already ended.
Task<void> ReleaseLateLocks(RpcEndpoint* rpc, HostId host, TxnId txn, Duration timeout) {
  (void)co_await rpc->Call<AbortReq, Ack>(host, AbortReq{txn}, timeout);
}

Task<void> SendRefresh(RpcEndpoint* rpc, HostId host, std::string suite, Version version,
                       std::string contents, Duration timeout) {
  RefreshReq req;
  req.suite = std::move(suite);
  req.version = version;
  req.contents = std::move(contents);
  (void)co_await rpc->Call<RefreshReq, RefreshResp>(host, std::move(req), timeout);
}

}  // namespace

// ---------------------------------------------------------------------------
// SuiteTransaction
// ---------------------------------------------------------------------------

SuiteTransaction::~SuiteTransaction() {
  if (state_ && !state_->finished) {
    Spawn(state_->client->DoAbort(state_));
  }
}

Task<Result<std::string>> SuiteTransaction::Read() { return state_->client->DoRead(state_); }

Task<Result<VersionedValue>> SuiteTransaction::ReadVersioned() {
  std::shared_ptr<State> state = state_;
  Result<std::string> contents = co_await state->client->DoRead(state);
  if (!contents.ok()) {
    co_return contents.status();
  }
  if (state->pending_write) {
    // Version of a buffered write is assigned at commit; report the read
    // version if we have one, else 0.
    co_return VersionedValue{state->read_result ? state->read_result->version : 0,
                             std::move(contents.value())};
  }
  WVOTE_CHECK(state->read_result.has_value());
  co_return VersionedValue{state->read_result->version, std::move(contents.value())};
}

Status SuiteTransaction::Write(std::string contents) {
  if (state_->finished) {
    return FailedPreconditionError("transaction already finished");
  }
  state_->pending_write = std::move(contents);
  return Status::Ok();
}

Task<Status> SuiteTransaction::Commit() { return state_->client->DoCommit(state_); }

Task<void> SuiteTransaction::Abort() { return state_->client->DoAbort(state_); }

bool SuiteTransaction::finished() const { return !state_ || state_->finished; }

Version SuiteTransaction::committed_version() const {
  return state_ ? state_->committed_version : 0;
}

// ---------------------------------------------------------------------------
// SuiteClient
// ---------------------------------------------------------------------------

SuiteClient::SuiteClient(Network* net, RpcEndpoint* rpc, Coordinator* coordinator,
                         SuiteConfig config, SuiteClientOptions options)
    : net_(net),
      rpc_(rpc),
      coordinator_(coordinator),
      config_(std::move(config)),
      options_(std::move(options)),
      plan_cache_([this](const std::string& name) { return LatencyTo(name); },
                  &stats_.plan_builds),
      links_(net, rpc->host_id()) {
  WVOTE_CHECK_MSG(config_.Validate().ok(), "invalid suite config");
}

void SuiteClientStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("core.suite_client.reads", labels, &reads);
  registry->RegisterCounter("core.suite_client.writes", labels, &writes);
  registry->RegisterCounter("core.suite_client.commits", labels, &commits);
  registry->RegisterCounter("core.suite_client.aborts", labels, &aborts);
  registry->RegisterCounter("core.suite_client.cache_hits", labels, &cache_hits);
  registry->RegisterCounter("core.suite_client.fastpath_hits", labels, &fastpath_hits);
  registry->RegisterCounter("core.suite_client.fastpath_misses", labels, &fastpath_misses);
  registry->RegisterCounter("core.suite_client.fastpath_bytes_saved", labels,
                            &fastpath_bytes_saved);
  registry->RegisterCounter("core.suite_client.plan_builds", labels, &plan_builds);
  registry->RegisterCounter("core.suite_client.probes_sent", labels, &probes_sent);
  registry->RegisterCounter("core.suite_client.gather_rounds", labels, &gather_rounds);
  registry->RegisterCounter("core.suite_client.config_refreshes", labels, &config_refreshes);
  registry->RegisterCounter("core.suite_client.refreshes_spawned", labels,
                            &refreshes_spawned);
  registry->RegisterCounter("core.suite_client.unavailable", labels, &unavailable);
  registry->RegisterCounter("core.suite_client.read_unavailable", labels, &read_unavailable);
  registry->RegisterCounter("core.suite_client.write_unavailable", labels, &write_unavailable);
  registry->RegisterCounter("core.suite_client.conflicts", labels, &conflicts);
  registry->RegisterCounter("core.suite_client.retries", labels, &retries);
  registry->RegisterCounter("core.suite_client.commit_bytes_serialized", labels,
                            &commit_bytes_serialized);
  registry->AddResetHook([this]() { Reset(); });
}

void SuiteClient::RegisterMetrics(MetricsRegistry* registry) {
  const MetricLabels labels = {{"host", rpc_->host()->name()},
                               {"suite", config_.suite_name}};
  stats_.RegisterWith(registry, labels);
  // Planner load gauges: where this client's probes actually land. Labeled
  // by client host so several clients' views never sum into nonsense;
  // fleet-wide skew is read from the representative-side counters.
  for (const RepresentativeInfo& rep : config_.representatives) {
    if (rep.weak()) {
      continue;
    }
    MetricLabels rep_labels = labels;
    rep_labels["rep"] = rep.host_name;
    registry->RegisterGauge("core.planner.probe_share", rep_labels,
                            [this, name = rep.host_name]() { return ProbeShareOf(name); });
  }
  registry->RegisterGauge("core.planner.load_max_share", labels,
                          [this]() { return MaxProbeShare(); });
  registry->RegisterGauge("core.planner.load_imbalance", labels,
                          [this]() { return ProbeShareGini(); });
  registry->RegisterGauge("core.planner.expected_max_share", labels,
                          [this]() { return ExpectedMaxShare(); });
  registry->AddResetHook([this]() { probe_counts_.clear(); });
}

double SuiteClient::ProbeShareOf(const std::string& host) const {
  uint64_t total = 0;
  for (const auto& [name, count] : probe_counts_) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  const auto it = probe_counts_.find(host);
  return it == probe_counts_.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(total);
}

double SuiteClient::MaxProbeShare() const {
  uint64_t total = 0;
  uint64_t max = 0;
  for (const auto& [name, count] : probe_counts_) {
    total += count;
    max = std::max(max, count);
  }
  return total == 0 ? 0.0 : static_cast<double>(max) / static_cast<double>(total);
}

double SuiteClient::ProbeShareGini() const {
  // Gini over the probe shares of every *voting* representative, counting
  // never-probed members as zero — a plan that starves three of four reps
  // should read as imbalanced even though only one host shows up in
  // probe_counts_.
  std::vector<double> counts;
  for (const RepresentativeInfo& rep : config_.representatives) {
    if (rep.weak()) {
      continue;
    }
    const auto it = probe_counts_.find(rep.host_name);
    counts.push_back(it == probe_counts_.end() ? 0.0 : static_cast<double>(it->second));
  }
  double total = 0;
  for (double c : counts) {
    total += c;
  }
  if (counts.empty() || total == 0) {
    return 0.0;
  }
  double abs_diffs = 0;
  for (double a : counts) {
    for (double b : counts) {
      abs_diffs += std::abs(a - b);
    }
  }
  return abs_diffs / (2.0 * static_cast<double>(counts.size()) * total);
}

double SuiteClient::ExpectedMaxShare() const {
  const std::shared_ptr<const ProbingStrategy> strategy =
      plan_cache_.Peek(options_.strategy.policy);
  if (strategy == nullptr) {
    return 0.0;
  }
  if (strategy->read_dist.valid()) {
    return strategy->read_dist.max_share;
  }
  return 1.0;  // deterministic plan: the whole preferred prefix every op
}

SuiteTransaction SuiteClient::Begin(TraceContext parent) {
  auto state = std::make_shared<SuiteTransaction::State>();
  state->client = this;
  state->txn = coordinator_->Begin();
  if (Tracer* tracer = net_->tracer()) {
    if (parent.valid()) {
      state->trace = tracer->StartChild(parent, rpc_->host_id(), "client.txn");
    } else {
      state->trace = tracer->StartRoot(rpc_->host_id(), "client.txn");
    }
    if (state->trace.valid()) {
      tracer->Annotate(state->trace, "txn=" + state->txn.ToString());
    }
  }
  return SuiteTransaction(std::move(state));
}

HostId SuiteClient::ResolveHost(const std::string& name) const {
  return links_.Resolve(name);
}

Duration SuiteClient::LatencyTo(const std::string& name) const {
  return links_.LatencyTo(name);
}

std::shared_ptr<const ProbingStrategy> SuiteClient::PlanFor(QuorumStrategy policy) {
  QuorumStrategySpec spec = options_.strategy;
  spec.policy = policy;
  return plan_cache_.Get(config_, spec);
}

void SuiteClient::NoteVersion(const std::string& host_name, Version version) {
  Version& hint = rep_version_hints_[host_name];
  hint = std::max(hint, version);
  hint_version_ = std::max(hint_version_, version);
}

size_t SuiteClient::PickFastPathTarget(const std::vector<QuorumCandidate>& targets) const {
  if (targets.empty()) {
    return targets.size();
  }
  // The local weak-rep cache serves for free once the quorum confirms the
  // version; don't pay for piggybacked bytes it would shadow.
  if (cache_ != nullptr && hint_version_ > 0 &&
      cache_->PeekVersion(config_.suite_name) >= hint_version_) {
    return targets.size();
  }
  // Targets arrive in plan-preference order, so the first one whose last
  // observed version matches the hint is the cheapest likely-current
  // candidate. With no usable hint, bet on the most-preferred target.
  if (hint_version_ > 0) {
    for (size_t i = 0; i < targets.size(); ++i) {
      auto it = rep_version_hints_.find(targets[i].host_name);
      if (it != rep_version_hints_.end() && it->second >= hint_version_) {
        return i;
      }
    }
  }
  return 0;
}

Task<Result<SuiteClient::GatherResult>> SuiteClient::Gather(
    std::shared_ptr<SuiteTransaction::State> state, int required_votes, bool exclusive,
    bool want_data) {
  const std::shared_ptr<const ProbingStrategy> strategy_ref =
      PlanFor(options_.strategy.policy);
  const std::vector<QuorumCandidate>& plan = strategy_ref->order;
  // Probabilistic policies draw this operation's quorum from the cached
  // distribution; `sampled` then maps probe position -> index into `plan`
  // (quorum members first, the rest as widening fallbacks). Deterministic
  // policies get an empty sample and consume no randomness, so replays of
  // pre-strategy schedules stay bit-exact.
  const std::vector<uint16_t> sampled =
      strategy_ref->SampleOrder(required_votes, &net_->sim()->rng());

  Tracer* tracer = net_->tracer();
  TraceContext gather_span;
  if (tracer != nullptr) {
    gather_span = tracer->StartChild(state->trace, rpc_->host_id(), "phase.gather");
  }

  GatherResult out;
  size_t next_candidate = 0;
  int rounds_used = 0;
  bool fastpath_requested = false;

  for (int round = 0; round < options_.max_gather_rounds && out.votes < required_votes;
       ++round) {
    // Choose this round's targets: enough fresh candidates to close the vote
    // gap (all of them under kBroadcast).
    std::vector<QuorumCandidate> targets;
    int planned_votes = out.votes;
    while (next_candidate < plan.size() &&
           (options_.strategy.policy == QuorumStrategy::kBroadcast ||
            planned_votes < required_votes)) {
      const QuorumCandidate& pick =
          sampled.empty() ? plan[next_candidate] : plan[sampled[next_candidate]];
      targets.push_back(pick);
      planned_votes += pick.votes;
      ++next_candidate;
    }
    if (targets.empty()) {
      break;  // candidate list exhausted
    }
    ++stats_.gather_rounds;
    ++rounds_used;

    // Piggyback request: only in the first round (widening rounds are the
    // failure path; their members are rarely the cheapest current copy).
    const size_t fastpath_target =
        (want_data && round == 0) ? PickFastPathTarget(targets) : targets.size();
    fastpath_requested = fastpath_requested || fastpath_target < targets.size();

    std::vector<Task<ProbeOutcome>> probes;
    probes.reserve(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      QuorumCandidate& candidate = targets[i];
      const HostId host = ResolveHost(candidate.host_name);
      ++stats_.probes_sent;
      ++probe_counts_[candidate.host_name];
      state->probed.insert(host);
      probes.push_back(SendProbe(rpc_, host, std::move(candidate), state->txn,
                                 config_.suite_name, exclusive, i == fastpath_target,
                                 options_.probe_timeout, gather_span));
    }

    const int base_votes = out.votes;
    // Named std::function bindings (not bare lambdas) per the GCC 12 rule in
    // src/sim/task.h.
    std::function<bool(const std::vector<ProbeOutcome>&)> enough =
        [base_votes, required_votes](const std::vector<ProbeOutcome>& got) {
          int votes = base_votes;
          for (const ProbeOutcome& o : got) {
            if (o.result.ok()) {
              votes += o.candidate.votes;
            }
          }
          return votes >= required_votes;
        };
    // Stragglers acquired locks after we stopped waiting: track them while
    // the transaction lives, release them if it is already over.
    std::function<void(ProbeOutcome)> leftover =
        [state, rpc = rpc_, timeout = options_.probe_timeout](ProbeOutcome o) {
          if (!o.result.ok()) {
            return;
          }
          if (state->finished) {
            Spawn(ReleaseLateLocks(rpc, o.host, state->txn, timeout));
          } else {
            state->participants.insert(o.host);
          }
        };

    std::vector<ProbeOutcome> outcomes = co_await JoinUntil<ProbeOutcome>(
        net_->sim(), std::move(probes), std::move(enough), std::move(leftover));

    for (ProbeOutcome& o : outcomes) {
      if (o.result.ok()) {
        state->participants.insert(o.host);
        out.votes += o.candidate.votes;
        out.current = std::max(out.current, o.result.value().version);
        out.max_config_version =
            std::max(out.max_config_version, o.result.value().config_version);
        NoteVersion(o.candidate.host_name, o.result.value().version);
        out.replies.push_back(ProbeReply{std::move(o.candidate), o.host,
                                         std::move(o.result.value())});
      } else if (o.result.status().code() == StatusCode::kConflict) {
        // Wait-die said die: the whole transaction must abort and retry.
        ++stats_.conflicts;
        if (tracer != nullptr) {
          tracer->EndWith(gather_span, "wait-die conflict");
        }
        co_return o.result.status();
      }
      // Timeouts and crashes just fail to contribute votes.
    }
  }

  if (out.max_config_version > config_.config_version) {
    if (tracer != nullptr) {
      tracer->EndWith(gather_span, "stale config");
    }
    co_return FailedPreconditionError("suite configuration is newer than client's");
  }
  if (out.votes < required_votes) {
    ++stats_.unavailable;
    // The SLO layer tracks read and write availability separately; the lock
    // mode says which quorum this gather was for.
    ++(exclusive ? stats_.write_unavailable : stats_.read_unavailable);
    if (TraceLog* trace = net_->trace()) {
      trace->Record(rpc_->host_id(), TraceKind::kQuorumFailed,
                    config_.suite_name + " " + std::to_string(out.votes) + "/" +
                        std::to_string(required_votes));
    }
    if (tracer != nullptr) {
      tracer->EndWith(gather_span, "unavailable " + std::to_string(out.votes) + "/" +
                                       std::to_string(required_votes));
    }
    co_return UnavailableError("gathered " + std::to_string(out.votes) + "/" +
                               std::to_string(required_votes) + " votes for " +
                               config_.suite_name);
  }
  if (tracer != nullptr) {
    tracer->EndWith(gather_span,
                    "votes=" + std::to_string(out.votes) + "/" +
                        std::to_string(required_votes) + " rounds=" +
                        std::to_string(rounds_used) +
                        (fastpath_requested ? " fastpath-requested" : ""));
  }
  co_return out;
}

Task<Result<SuiteReadResp>> SuiteClient::FetchData(
    std::shared_ptr<SuiteTransaction::State> state, const GatherResult& gather) {
  // Fetch from the cheapest current member — Gifford's "read from the best
  // up-to-date representative". The candidates already carry their expected
  // latency from the (latency-ordered) plan, so a min-scan per attempt
  // suffices; no re-sort. Ties pick the earliest reply, which keeps the
  // choice stable and deterministic.
  std::vector<const ProbeReply*> members;
  for (const ProbeReply& r : gather.replies) {
    if (r.resp.version == gather.current) {
      members.push_back(&r);
    }
  }

  Tracer* tracer = net_->tracer();
  TraceContext fetch_span;
  if (tracer != nullptr) {
    fetch_span = tracer->StartChild(state->trace, rpc_->host_id(), "phase.fetch");
  }

  while (!members.empty()) {
    auto best = std::min_element(members.begin(), members.end(),
                                 [](const ProbeReply* a, const ProbeReply* b) {
                                   return a->candidate.expected_latency <
                                          b->candidate.expected_latency;
                                 });
    const ProbeReply* member = *best;
    members.erase(best);
    Result<SuiteReadResp> data = co_await rpc_->Call<TxnReadSuiteReq, SuiteReadResp>(
        member->host, TxnReadSuiteReq{state->txn, config_.suite_name}, options_.data_timeout,
        fetch_span);
    if (data.ok()) {
      if (data.value().version != gather.current) {
        if (tracer != nullptr) {
          tracer->EndWith(fetch_span, "version changed under lock");
        }
        co_return InternalError("representative changed version under our lock");
      }
      if (tracer != nullptr) {
        tracer->EndWith(fetch_span, "from host " + std::to_string(member->host));
      }
      co_return std::move(data.value());
    }
  }
  if (tracer != nullptr) {
    tracer->EndWith(fetch_span, "no current member");
  }
  co_return UnavailableError("no current representative could serve data");
}

void SuiteClient::SpawnRefreshes(const GatherResult& gather, Version current,
                                 std::string contents) {
  if (!options_.background_refresh || current == 0) {
    return;
  }
  // Representatives that answered with a stale version are refreshed. Under
  // the broadcast strategy, representatives that did not answer in time are
  // refreshed too (the install is conditional server-side, so an
  // already-current straggler ignores it) — this is what lets a recovered
  // replica catch up from any broadcast reader.
  std::set<HostId> confirmed_current;
  for (const ProbeReply& r : gather.replies) {
    if (r.resp.version >= current) {
      confirmed_current.insert(r.host);
    } else {
      ++stats_.refreshes_spawned;
      Spawn(SendRefresh(rpc_, r.host, config_.suite_name, current, contents,
                        options_.data_timeout));
    }
  }
  if (options_.strategy.policy == QuorumStrategy::kBroadcast) {
    for (const RepresentativeInfo& rep : config_.representatives) {
      if (rep.weak()) {
        continue;
      }
      const HostId host = ResolveHost(rep.host_name);
      bool probed_stale = false;
      for (const ProbeReply& r : gather.replies) {
        if (r.host == host) {
          probed_stale = r.resp.version < current;
          break;
        }
      }
      if (confirmed_current.count(host) == 0 && !probed_stale) {
        ++stats_.refreshes_spawned;
        Spawn(SendRefresh(rpc_, host, config_.suite_name, current, contents,
                          options_.data_timeout));
      }
    }
  }
}

Task<Result<std::string>> SuiteClient::DoRead(std::shared_ptr<SuiteTransaction::State> state) {
  if (state->finished) {
    co_return FailedPreconditionError("transaction already finished");
  }
  if (state->pending_write) {
    co_return *state->pending_write;  // read-your-writes
  }
  if (state->read_result) {
    co_return state->read_result->contents;  // repeated read
  }

  for (int attempt = 0; attempt <= options_.max_config_retries; ++attempt) {
    Result<GatherResult> gather = co_await Gather(state, config_.read_quorum, false,
                                                 /*want_data=*/options_.fastpath_reads);
    if (!gather.ok()) {
      if (gather.status().code() == StatusCode::kFailedPrecondition) {
        WVOTE_CO_RETURN_IF_ERROR(co_await RefreshConfigFromPrefix());
        continue;
      }
      co_return gather.status();
    }
    ++stats_.reads;
    const Version current = gather.value().current;

    if (current == 0) {
      // Never written: reads as empty.
      state->read_result = VersionedValue{0, ""};
      co_return std::string();
    }

    if (cache_ != nullptr) {
      const std::string* cached = cache_->Lookup(config_.suite_name, current);
      if (cached != nullptr) {
        ++stats_.cache_hits;
        state->read_result = VersionedValue{current, *cached};
        SpawnRefreshes(gather.value(), current, *cached);
        co_return *cached;
      }
    }

    if (options_.fastpath_reads) {
      // Fast path: a probe piggybacked its contents and the gathered quorum
      // proves that copy current — the read is done in one round trip. This
      // is exactly Gifford's read rule with the data transfer overlapped
      // into the version poll; the currency decision is unchanged.
      for (ProbeReply& r : gather.value().replies) {
        if (r.resp.has_data && r.resp.version == current) {
          ++stats_.fastpath_hits;
          if (Tracer* tracer = net_->tracer()) {
            tracer->Annotate(state->trace, "fastpath-hit");
          }
          // The avoided fetch reply would have cost SuiteReadResp wire bytes.
          stats_.fastpath_bytes_saved += 64 + r.resp.contents.size();
          if (cache_ != nullptr) {
            cache_->Update(config_.suite_name, current, r.resp.contents);
          }
          SpawnRefreshes(gather.value(), current, r.resp.contents);
          state->read_result = VersionedValue{current, std::move(r.resp.contents)};
          co_return state->read_result->contents;
        }
      }
      // Piggybacked copy stale, lost, or never requested: pay the explicit
      // fetch from a proven-current member.
      ++stats_.fastpath_misses;
      if (Tracer* tracer = net_->tracer()) {
        tracer->Annotate(state->trace, "fastpath-miss");
      }
    }

    Result<SuiteReadResp> data = co_await FetchData(state, gather.value());
    if (!data.ok()) {
      co_return data.status();
    }
    if (cache_ != nullptr) {
      cache_->Update(config_.suite_name, current, data.value().contents);
    }
    SpawnRefreshes(gather.value(), current, data.value().contents);
    state->read_result = VersionedValue{current, data.value().contents};
    co_return std::move(data.value().contents);
  }
  co_return FailedPreconditionError("configuration kept changing during read");
}

Task<Status> SuiteClient::DoCommit(std::shared_ptr<SuiteTransaction::State> state) {
  if (state->finished) {
    co_return FailedPreconditionError("transaction already finished");
  }

  if (!state->pending_write) {
    // Read-only: release locks at every host we may have locked (including
    // probes that timed out client-side but were granted server-side).
    state->finished = true;
    ++stats_.commits;
    std::set<HostId> release = state->participants;
    release.insert(state->probed.begin(), state->probed.end());
    std::vector<HostId> read_only(release.begin(), release.end());
    Status st = co_await coordinator_->CommitTransaction(state->txn, {},
                                                         std::move(read_only), state->trace);
    if (Tracer* tracer = net_->tracer()) {
      tracer->EndWith(state->trace, "committed read-only");
    }
    co_return st;
  }

  for (int attempt = 0; attempt <= options_.max_config_retries; ++attempt) {
    Result<GatherResult> gather = co_await Gather(state, config_.write_quorum, true);
    if (!gather.ok()) {
      if (gather.status().code() == StatusCode::kFailedPrecondition) {
        WVOTE_CO_RETURN_IF_ERROR(co_await RefreshConfigFromPrefix());
        continue;
      }
      co_await DoAbort(state);
      co_return gather.status();
    }
    ++stats_.writes;

    const Version next = gather.value().current + 1;
    // Serialize the versioned value exactly once per commit; every quorum
    // member's intent (and every message hop) shares the one buffer.
    SharedPayload payload(VersionedValue{next, *state->pending_write}.Serialize());
    stats_.commit_bytes_serialized += payload.size();

    std::map<HostId, std::vector<WriteIntent>> writes;
    for (const ProbeReply& r : gather.value().replies) {
      writes[r.host] = {WriteIntent{SuiteValueKey(config_.suite_name), payload}};
    }
    std::set<HostId> release = state->participants;
    release.insert(state->probed.begin(), state->probed.end());
    std::vector<HostId> read_only;
    for (HostId h : release) {
      if (writes.find(h) == writes.end()) {
        read_only.push_back(h);
      }
    }

    state->finished = true;
    Status st = co_await coordinator_->CommitTransaction(state->txn, std::move(writes),
                                                         std::move(read_only), state->trace);
    if (st.ok()) {
      ++stats_.commits;
      state->committed_version = next;
      // The write quorum now holds `next`; remember that for future
      // fast-path targeting.
      for (const ProbeReply& r : gather.value().replies) {
        NoteVersion(r.candidate.host_name, next);
      }
      if (cache_ != nullptr) {
        cache_->Update(config_.suite_name, next, *state->pending_write);
      }
    } else {
      ++stats_.aborts;
    }
    if (Tracer* tracer = net_->tracer()) {
      tracer->EndWith(state->trace,
                      st.ok() ? "committed v" + std::to_string(next) : st.ToString());
    }
    co_return st;
  }
  co_await DoAbort(state);
  co_return FailedPreconditionError("configuration kept changing during commit");
}

Task<void> SuiteClient::DoAbort(std::shared_ptr<SuiteTransaction::State> state) {
  if (state->finished) {
    co_return;
  }
  state->finished = true;
  ++stats_.aborts;
  std::set<HostId> release = state->participants;
  release.insert(state->probed.begin(), state->probed.end());
  std::vector<HostId> targets(release.begin(), release.end());
  co_await coordinator_->AbortTransaction(state->txn, std::move(targets), state->trace);
  if (Tracer* tracer = net_->tracer()) {
    tracer->EndWith(state->trace, "aborted");
  }
}

Task<Result<std::string>> SuiteClient::ReadOnce(int retries) {
  // Root span for the whole operation: retried attempts become sibling
  // "client.txn" children, so one trace tells the full story of the read.
  Tracer* tracer = net_->tracer();
  TraceContext root;
  if (tracer != nullptr) {
    root = tracer->StartRoot(rpc_->host_id(), "client.read");
  }
  Status last = InternalError("no attempts");
  for (int i = 0; i < retries; ++i) {
    SuiteTransaction txn = Begin(root);
    Result<std::string> contents = co_await txn.Read();
    if (contents.ok()) {
      Status st = co_await txn.Commit();
      if (st.ok()) {
        if (tracer != nullptr) {
          tracer->EndWith(root, "ok attempts=" + std::to_string(i + 1));
        }
        co_return contents;
      }
      last = st;
    } else {
      last = contents.status();
      co_await txn.Abort();
    }
    if (last.code() != StatusCode::kConflict && last.code() != StatusCode::kAborted &&
        last.code() != StatusCode::kTimeout) {
      if (tracer != nullptr) {
        tracer->EndWith(root, last.ToString());
      }
      co_return last;
    }
    // Jittered exponential backoff before retrying a conflicted transaction.
    ++stats_.retries;
    co_await net_->sim()->Sleep(JitteredBackoff(net_->sim()->rng(), i));
  }
  if (tracer != nullptr) {
    tracer->EndWith(root, last.ToString());
  }
  co_return last;
}

Task<Status> SuiteClient::WriteOnce(std::string contents, int retries) {
  Tracer* tracer = net_->tracer();
  TraceContext root;
  if (tracer != nullptr) {
    root = tracer->StartRoot(rpc_->host_id(), "client.write");
  }
  Status last = InternalError("no attempts");
  for (int i = 0; i < retries; ++i) {
    SuiteTransaction txn = Begin(root);
    Status st = txn.Write(contents);
    if (st.ok()) {
      st = co_await txn.Commit();
    }
    if (st.ok()) {
      if (tracer != nullptr) {
        tracer->EndWith(root, "ok attempts=" + std::to_string(i + 1));
      }
      co_return st;
    }
    last = st;
    if (last.code() != StatusCode::kConflict && last.code() != StatusCode::kAborted &&
        last.code() != StatusCode::kTimeout) {
      if (tracer != nullptr) {
        tracer->EndWith(root, last.ToString());
      }
      co_return last;
    }
    ++stats_.retries;
    co_await net_->sim()->Sleep(JitteredBackoff(net_->sim()->rng(), i));
  }
  if (tracer != nullptr) {
    tracer->EndWith(root, last.ToString());
  }
  co_return last;
}

Task<Status> SuiteClient::RefreshConfigFromPrefix() {
  ++stats_.config_refreshes;
  // Ask every voting representative (lock-free) which prefix version it
  // holds, then fetch the newest prefix.
  const std::shared_ptr<const ProbingStrategy> strategy =
      PlanFor(QuorumStrategy::kBroadcast);

  uint64_t best_version = config_.config_version;
  HostId best_host = kInvalidHost;
  for (const QuorumCandidate& candidate : strategy->order) {
    const HostId host = ResolveHost(candidate.host_name);
    Result<VersionResp> resp = co_await rpc_->Call<VersionInquiryReq, VersionResp>(
        host, VersionInquiryReq{config_.suite_name}, options_.probe_timeout);
    if (resp.ok() && resp.value().config_version > best_version) {
      best_version = resp.value().config_version;
      best_host = host;
    }
  }
  if (best_host == kInvalidHost) {
    co_return Status::Ok();  // nobody has anything newer
  }
  Result<PrefixReadResp> prefix = co_await rpc_->Call<PrefixReadReq, PrefixReadResp>(
      best_host, PrefixReadReq{config_.suite_name}, options_.data_timeout);
  if (!prefix.ok()) {
    co_return prefix.status();
  }
  Result<SuiteConfig> parsed = SuiteConfig::Parse(prefix.value().config_bytes);
  if (!parsed.ok()) {
    co_return parsed.status();
  }
  WVOTE_CO_RETURN_IF_ERROR(parsed.value().Validate());
  if (parsed.value().config_version > config_.config_version) {
    config_ = std::move(parsed.value());
  }
  co_return Status::Ok();
}

Task<Status> SuiteClient::Reconfigure(SuiteConfig new_config, int retries) {
  if (new_config.suite_name != config_.suite_name) {
    co_return InvalidArgumentError("reconfigure must keep the suite name");
  }
  WVOTE_CO_RETURN_IF_ERROR(new_config.Validate());

  const int64_t original_timestamp = net_->sim()->Now().ToMicros();
  Status last = InternalError("no attempts");
  for (int attempt = 0; attempt < retries; ++attempt) {
    SuiteConfig candidate = new_config;
    candidate.config_version = config_.config_version + 1;
    // Retain the first attempt's timestamp: under wait-die the retry only
    // ever ages, so it eventually beats the stream of younger transactions.
    last = co_await TryReconfigure(std::move(candidate),
                                   coordinator_->BeginAt(original_timestamp));
    if (last.ok() || (last.code() != StatusCode::kConflict &&
                      last.code() != StatusCode::kAborted &&
                      last.code() != StatusCode::kTimeout)) {
      co_return last;
    }
    ++stats_.retries;
    co_await net_->sim()->Sleep(JitteredBackoff(
        net_->sim()->rng(), attempt,
        BackoffPolicy(Duration::Millis(2), Duration::Millis(400), 2.0)));
  }
  co_return last;
}

Task<Status> SuiteClient::TryReconfigure(SuiteConfig new_config, TxnId txn) {
  auto state = std::make_shared<SuiteTransaction::State>();
  state->client = this;
  state->txn = txn;
  if (Tracer* tracer = net_->tracer()) {
    state->trace = tracer->StartRoot(rpc_->host_id(), "client.reconfigure");
    if (state->trace.valid()) {
      tracer->Annotate(state->trace, "txn=" + txn.ToString());
    }
  }

  // Write quorum under the OLD configuration (the paper's rule for changing
  // the prefix).
  Result<GatherResult> gather = co_await Gather(state, config_.write_quorum, true);
  if (!gather.ok()) {
    co_await DoAbort(state);
    co_return gather.status();
  }

  // Current contents, needed to initialize members new to the suite.
  std::string contents;
  if (gather.value().current > 0) {
    Result<SuiteReadResp> data = co_await FetchData(state, gather.value());
    if (!data.ok()) {
      co_await DoAbort(state);
      co_return data.status();
    }
    contents = std::move(data.value().contents);
  }
  const Version next = gather.value().current + 1;

  // Exclusive locks at every new-config member that we do not already hold.
  std::set<HostId> targets;
  for (const ProbeReply& r : gather.value().replies) {
    targets.insert(r.host);
  }
  for (const RepresentativeInfo& rep : new_config.representatives) {
    if (rep.weak()) {
      continue;  // weak representatives are client-side caches, not servers
    }
    const HostId host = ResolveHost(rep.host_name);
    if (targets.count(host) != 0) {
      continue;
    }
    state->probed.insert(host);
    Result<VersionResp> locked = co_await rpc_->Call<LockVersionReq, VersionResp>(
        host, LockVersionReq{state->txn, config_.suite_name}, options_.probe_timeout,
        state->trace);
    if (!locked.ok()) {
      co_await DoAbort(state);
      co_return locked.status();
    }
    state->participants.insert(host);
    targets.insert(host);
  }

  // The new prefix is also written at every target, so it needs its own
  // exclusive lock (Prepare refuses intents whose keys are unlocked).
  for (HostId host : targets) {
    state->probed.insert(host);
    Result<Ack> locked = co_await rpc_->Call<LockReq, Ack>(
        host, LockReq{state->txn, SuitePrefixKey(config_.suite_name), LockMode::kExclusive},
        options_.probe_timeout, state->trace);
    if (!locked.ok()) {
      co_await DoAbort(state);
      co_return locked.status();
    }
  }

  // Atomically install the new prefix and the (re-versioned) current value
  // at every target; both serialize once, every target shares the buffers.
  const SharedPayload prefix_bytes(new_config.Serialize());
  const SharedPayload value_bytes(VersionedValue{next, contents}.Serialize());
  stats_.commit_bytes_serialized += prefix_bytes.size() + value_bytes.size();
  std::map<HostId, std::vector<WriteIntent>> writes;
  for (HostId host : targets) {
    writes[host] = {WriteIntent{SuitePrefixKey(config_.suite_name), prefix_bytes},
                    WriteIntent{SuiteValueKey(config_.suite_name), value_bytes}};
  }
  std::set<HostId> release = state->participants;
  release.insert(state->probed.begin(), state->probed.end());
  std::vector<HostId> read_only;
  for (HostId h : release) {
    if (writes.find(h) == writes.end()) {
      read_only.push_back(h);
    }
  }

  state->finished = true;
  Status st = co_await coordinator_->CommitTransaction(state->txn, std::move(writes),
                                                       std::move(read_only), state->trace);
  if (st.ok()) {
    if (TraceLog* trace = net_->trace()) {
      trace->Record(rpc_->host_id(), TraceKind::kReconfigured, new_config.ToString());
    }
    config_ = std::move(new_config);
  }
  if (Tracer* tracer = net_->tracer()) {
    tracer->EndWith(state->trace, st.ok() ? "installed" : st.ToString());
  }
  co_return st;
}

}  // namespace wvote
