#include "src/core/representative.h"

#include <utility>

namespace wvote {

RepresentativeServer::RepresentativeServer(Network* net, Host* host,
                                           RepresentativeOptions options)
    : net_(net),
      rpc_(net, host),
      store_(net->sim(), host, options.disk_write_latency, options.disk_read_latency),
      participant_(&rpc_, &store_, options.participant) {
  // Wired before hosts are populated (Cluster ctor); manual fixtures
  // without a tracer get the null no-op.
  store_.SetTracer(net->tracer());
  RegisterHandlers();
}

void RepresentativeStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("core.representative.version_polls", labels, &version_polls);
  registry->RegisterCounter("core.representative.data_reads", labels, &data_reads);
  registry->RegisterCounter("core.representative.piggyback_serves", labels,
                            &piggyback_serves);
  registry->RegisterCounter("core.representative.refreshes_installed", labels,
                            &refreshes_installed);
  registry->RegisterCounter("core.representative.refreshes_skipped", labels,
                            &refreshes_skipped);
  registry->AddResetHook([this]() { Reset(); });
}

void RepresentativeServer::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry, {{"host", host()->name()}});
  rpc_.RegisterMetrics(registry);
  store_.RegisterMetrics(registry);
  participant_.RegisterMetrics(registry);
}

Task<Status> RepresentativeServer::BootstrapSuite(SuiteConfig config, VersionedValue initial) {
  Status st = config.Validate();
  if (!st.ok()) {
    co_return st;
  }
  st = co_await store_.Write(Participant::DataKey(SuitePrefixKey(config.suite_name)),
                             config.Serialize());
  if (!st.ok()) {
    co_return st;
  }
  co_return co_await store_.Write(Participant::DataKey(SuiteValueKey(config.suite_name)),
                                  initial.Serialize());
}

Result<VersionedValue> RepresentativeServer::CurrentValue(const std::string& suite) const {
  Result<std::string> bytes = participant_.PeekCommitted(SuiteValueKey(suite));
  if (!bytes.ok()) {
    return bytes.status();
  }
  return VersionedValue::Parse(bytes.value());
}

Result<SuiteConfig> RepresentativeServer::CurrentPrefix(const std::string& suite) const {
  Result<std::string> bytes = participant_.PeekCommitted(SuitePrefixKey(suite));
  if (!bytes.ok()) {
    return bytes.status();
  }
  return SuiteConfig::Parse(bytes.value());
}

VersionResp RepresentativeServer::MakeVersionResp(const std::string& suite) {
  VersionResp resp;
  Result<VersionedValue> value = CurrentValue(suite);
  if (value.ok()) {
    resp.version = value.value().version;
  }
  Result<SuiteConfig> prefix = CurrentPrefix(suite);
  if (prefix.ok()) {
    resp.config_version = prefix.value().config_version;
    for (const RepresentativeInfo& rep : prefix.value().representatives) {
      if (rep.host_name == rpc_.host()->name()) {
        resp.votes = rep.votes;
        break;
      }
    }
  }
  return resp;
}

void RepresentativeServer::RegisterHandlers() {
  rpc_.HandleTraced<TxnVersionReq, VersionResp>(
      [this](HostId from, TxnVersionReq req, TraceContext ctx) -> Task<Result<VersionResp>> {
        ++stats_.version_polls;
        Status st = co_await participant_.Lock(req.txn, SuiteValueKey(req.suite),
                                               LockMode::kShared, ctx);
        if (!st.ok()) {
          co_return st;
        }
        VersionResp resp = MakeVersionResp(req.suite);
        if (req.want_data) {
          // Piggybacked fast path: read the contents under the S lock just
          // granted (pays the disk read, saves the client a second round
          // trip). Failure to attach data is not an error — the client
          // falls back to an explicit fetch.
          Result<std::string> bytes =
              co_await participant_.TxnRead(req.txn, SuiteValueKey(req.suite), ctx);
          if (bytes.ok()) {
            Result<VersionedValue> value = VersionedValue::Parse(bytes.value());
            if (value.ok()) {
              // Report the version of the very bytes attached, so the
              // client's currency check covers the piggybacked copy.
              resp.version = value.value().version;
              resp.has_data = true;
              resp.contents = std::move(value.value().contents);
              ++stats_.piggyback_serves;
            }
          }
        }
        co_return resp;
      });

  rpc_.HandleTraced<LockVersionReq, VersionResp>(
      [this](HostId from, LockVersionReq req, TraceContext ctx) -> Task<Result<VersionResp>> {
        ++stats_.version_polls;
        Status st = co_await participant_.Lock(req.txn, SuiteValueKey(req.suite),
                                               LockMode::kExclusive, ctx);
        if (!st.ok()) {
          co_return st;
        }
        co_return MakeVersionResp(req.suite);
      });

  rpc_.Handle<VersionInquiryReq, VersionResp>(
      [this](HostId from, VersionInquiryReq req) -> Task<Result<VersionResp>> {
        ++stats_.version_polls;
        co_return MakeVersionResp(req.suite);
      });

  rpc_.HandleTraced<TxnReadSuiteReq, SuiteReadResp>(
      [this](HostId from, TxnReadSuiteReq req, TraceContext ctx) -> Task<Result<SuiteReadResp>> {
        ++stats_.data_reads;
        Result<std::string> bytes =
            co_await participant_.TxnRead(req.txn, SuiteValueKey(req.suite), ctx);
        if (!bytes.ok()) {
          co_return bytes.status();
        }
        Result<VersionedValue> value = VersionedValue::Parse(bytes.value());
        if (!value.ok()) {
          co_return value.status();
        }
        co_return SuiteReadResp{value.value().version, std::move(value.value().contents)};
      });

  rpc_.Handle<BootstrapSuiteReq, BootstrapSuiteResp>(
      [this](HostId from, BootstrapSuiteReq req) -> Task<Result<BootstrapSuiteResp>> {
        Result<SuiteConfig> config = SuiteConfig::Parse(req.config_bytes);
        if (!config.ok()) {
          co_return config.status();
        }
        Result<VersionedValue> initial = VersionedValue::Parse(req.initial_bytes);
        if (!initial.ok()) {
          co_return initial.status();
        }
        Result<SuiteConfig> existing = CurrentPrefix(config.value().suite_name);
        if (existing.ok() &&
            existing.value().config_version >= config.value().config_version) {
          co_return BootstrapSuiteResp{false};  // idempotent re-create
        }
        Status st = co_await BootstrapSuite(std::move(config.value()),
                                            std::move(initial.value()));
        if (!st.ok()) {
          co_return st;
        }
        co_return BootstrapSuiteResp{true};
      });

  rpc_.HandleTraced<StaleReadReq, SuiteReadResp>(
      [this](HostId from, StaleReadReq req, TraceContext ctx) -> Task<Result<SuiteReadResp>> {
        ++stats_.data_reads;
        Result<std::string> bytes =
            co_await store_.Read(Participant::DataKey(SuiteValueKey(req.suite)), ctx);
        if (!bytes.ok()) {
          co_return bytes.status();
        }
        Result<VersionedValue> value = VersionedValue::Parse(bytes.value());
        if (!value.ok()) {
          co_return value.status();
        }
        co_return SuiteReadResp{value.value().version, std::move(value.value().contents)};
      });

  rpc_.HandleTraced<PrefixReadReq, PrefixReadResp>(
      [this](HostId from, PrefixReadReq req, TraceContext ctx) -> Task<Result<PrefixReadResp>> {
        Result<std::string> bytes =
            co_await store_.Read(Participant::DataKey(SuitePrefixKey(req.suite)), ctx);
        if (!bytes.ok()) {
          co_return bytes.status();
        }
        co_return PrefixReadResp{std::move(bytes.value())};
      });

  rpc_.HandleTraced<RefreshReq, RefreshResp>(
      [this](HostId from, RefreshReq req, TraceContext ctx) -> Task<Result<RefreshResp>> {
        // Best-effort conditional install under a short-lived local courtesy
        // transaction so refreshes never cut ahead of client locks. The
        // courtesy timestamp is older than any client's: under wait-die the
        // refresh WAITS for the current holder (typically the very reader
        // that spawned it, about to release) instead of dying, and clients
        // that hit the brief install window wait rather than abort (see
        // LockManager::MustDie). It locks a single key and acquires nothing
        // further while holding it, so it can never join a deadlock cycle.
        TxnId txn;
        txn.timestamp_us = TxnId::kCourtesyTimestamp;
        txn.serial = refresh_serial_++;
        txn.coordinator = rpc_.host_id();
        const std::string key = SuiteValueKey(req.suite);
        Status st = co_await participant_.Lock(txn, key, LockMode::kExclusive, ctx);
        if (!st.ok()) {
          ++stats_.refreshes_skipped;
          co_return RefreshResp{false};  // busy; refresh is opportunistic
        }
        RefreshResp resp;
        Result<VersionedValue> current = CurrentValue(req.suite);
        const Version have = current.ok() ? current.value().version : 0;
        if (req.version > have) {
          VersionedValue next{req.version, std::move(req.contents)};
          Status wrote =
              co_await store_.Write(Participant::DataKey(key), next.Serialize(), ctx);
          resp.installed = wrote.ok();
        }
        if (resp.installed) {
          ++stats_.refreshes_installed;
          if (TraceLog* trace = net_->trace()) {
            trace->Record(rpc_.host_id(), TraceKind::kRefreshInstalled,
                          req.suite + " v" + std::to_string(req.version));
          }
        } else {
          ++stats_.refreshes_skipped;
        }
        participant_.locks().ReleaseAll(txn);
        co_return resp;
      });
}

}  // namespace wvote
