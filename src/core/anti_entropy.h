// Anti-entropy: epidemic background convergence between representatives.
//
// Client-driven background refresh (SuiteClient) only heals replicas that
// clients happen to probe. Anti-entropy closes the rest of the gap the way
// the epidemic literature Gifford's successors cite does: each
// representative periodically picks a random peer, compares version
// numbers (lock-free inquiry), and ships its newer copy via the same
// conditional RefreshReq install that client refresh uses. Version numbers
// make this unconditionally safe — an installation is accepted only if
// strictly newer — so anti-entropy can run with any frequency without
// affecting correctness, only traffic.
//
// The daemon runs for a bounded horizon (simulations must drain); deploy it
// per representative with the suite's peer list.

#ifndef WVOTE_SRC_CORE_ANTI_ENTROPY_H_
#define WVOTE_SRC_CORE_ANTI_ENTROPY_H_

#include <string>
#include <vector>

#include "src/core/representative.h"

namespace wvote {

struct AntiEntropyOptions {
  Duration interval = Duration::Seconds(5);  // mean gossip period (jittered)
  Duration rpc_timeout = Duration::Seconds(2);
  TimePoint stop_at;  // daemon exits at this simulated time
};

struct AntiEntropyStats {
  uint64_t rounds = 0;
  uint64_t pushes = 0;   // newer copy shipped to a peer
  uint64_t pulls = 0;    // newer copy fetched from a peer
  uint64_t in_sync = 0;  // versions already matched

  void Reset() { *this = AntiEntropyStats{}; }
  // Registers every field as `core.anti_entropy.*{labels}` (callers label by
  // host and suite); this struct must outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Runs the gossip loop for `suite` on `server`, exchanging with `peers`
// (host ids of the suite's other voting representatives). `stats` must
// outlive the task. Spawn() the returned task.
Task<void> RunAntiEntropy(RepresentativeServer* server, std::string suite,
                          std::vector<HostId> peers, AntiEntropyOptions options,
                          AntiEntropyStats* stats);

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_ANTI_ENTROPY_H_
