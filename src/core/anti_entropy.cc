#include "src/core/anti_entropy.h"

#include <utility>

namespace wvote {

void AntiEntropyStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("core.anti_entropy.rounds", labels, &rounds);
  registry->RegisterCounter("core.anti_entropy.pushes", labels, &pushes);
  registry->RegisterCounter("core.anti_entropy.pulls", labels, &pulls);
  registry->RegisterCounter("core.anti_entropy.in_sync", labels, &in_sync);
  registry->AddResetHook([this]() { Reset(); });
}

Task<void> RunAntiEntropy(RepresentativeServer* server, std::string suite,
                          std::vector<HostId> peers, AntiEntropyOptions options,
                          AntiEntropyStats* stats) {
  if (peers.empty()) {
    co_return;
  }
  Simulator* sim = server->rpc().sim();
  Rng rng = sim->rng().Fork();

  while (sim->Now() < options.stop_at) {
    // Jittered period so daemons across representatives don't lock-step.
    const int64_t mean_us = options.interval.ToMicros();
    co_await sim->Sleep(
        Duration::Micros(static_cast<int64_t>(rng.NextExponential(
            static_cast<double>(mean_us)))));
    if (sim->Now() >= options.stop_at) {
      break;
    }
    if (!server->host()->up()) {
      continue;  // down hosts don't gossip; retry after the next period
    }
    ++stats->rounds;

    const HostId peer = peers[rng.NextBelow(peers.size())];
    Result<VersionResp> theirs = co_await server->rpc().Call<VersionInquiryReq, VersionResp>(
        peer, VersionInquiryReq(suite), options.rpc_timeout);
    if (!theirs.ok()) {
      continue;  // unreachable peer; correctness unaffected
    }
    Result<VersionedValue> mine = server->CurrentValue(suite);
    const Version my_version = mine.ok() ? mine.value().version : 0;

    if (my_version > theirs.value().version) {
      // Push: ship our newer copy; the peer installs iff still older.
      ++stats->pushes;
      RefreshReq req(suite, my_version, mine.value().contents);
      (void)co_await server->rpc().Call<RefreshReq, RefreshResp>(peer, std::move(req),
                                                                 options.rpc_timeout);
    } else if (my_version < theirs.value().version) {
      // Pull: fetch the peer's newer copy and install it locally through the
      // same conditional path a remote refresh would take.
      ++stats->pulls;
      Result<SuiteReadResp> data = co_await server->rpc().Call<StaleReadReq, SuiteReadResp>(
          peer, StaleReadReq(suite), options.rpc_timeout);
      if (data.ok() && data.value().version > my_version) {
        RefreshReq install(suite, data.value().version, std::move(data.value().contents));
        (void)co_await server->rpc().Call<RefreshReq, RefreshResp>(
            server->host()->id(), std::move(install), options.rpc_timeout);
      }
    } else {
      ++stats->in_sync;
    }
  }
}

}  // namespace wvote
