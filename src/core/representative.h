// RepresentativeServer: one representative of one or more file suites.
//
// Runs on a simulated host. Owns the host's stable storage and transaction
// participant and serves the weighted-voting RPCs (version polls under S/X
// locks, data fetch, prefix fetch, lock-free inquiries, and best-effort
// refresh installs). A single server can hold representatives of many suites
// — suites are just named durable pages.
//
// Version numbers live in the suite's durable value page; polls answer from
// the committed page state without extra disk latency (a real server keeps
// the version number in its in-memory header), while full-content reads pay
// the simulated disk read.

#ifndef WVOTE_SRC_CORE_REPRESENTATIVE_H_
#define WVOTE_SRC_CORE_REPRESENTATIVE_H_

#include <memory>
#include <string>

#include "src/core/messages.h"
#include "src/core/suite_config.h"
#include "src/core/types.h"
#include "src/rpc/rpc.h"
#include "src/storage/stable_store.h"
#include "src/txn/participant.h"

namespace wvote {

struct RepresentativeOptions {
  LatencyModel disk_write_latency = LatencyModel::Fixed(Duration::Millis(10));
  LatencyModel disk_read_latency = LatencyModel::Fixed(Duration::Millis(5));
  ParticipantOptions participant;
};

struct RepresentativeStats {
  uint64_t version_polls = 0;
  uint64_t data_reads = 0;
  uint64_t piggyback_serves = 0;  // version polls answered with contents attached
  uint64_t refreshes_installed = 0;
  uint64_t refreshes_skipped = 0;

  void Reset() { *this = RepresentativeStats{}; }
  // Registers every field as `core.representative.*{labels}`; this struct
  // must outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

class RepresentativeServer {
 public:
  RepresentativeServer(Network* net, Host* host, RepresentativeOptions options = {});

  Host* host() { return rpc_.host(); }
  RpcEndpoint& rpc() { return rpc_; }
  Participant& participant() { return participant_; }
  StableStore& store() { return store_; }
  const RepresentativeStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this server's whole stack — its own counters plus its RPC
  // endpoint's, stable store's, participant's, and lock manager's — all
  // labeled by host name.
  void RegisterMetrics(MetricsRegistry* registry);

  // Durably installs a suite's prefix and initial value on this server.
  // Used at deployment time and when a reconfiguration adds this server.
  Task<Status> BootstrapSuite(SuiteConfig config, VersionedValue initial);

  // Committed (lock-free) view of this server's copy; for tests and
  // invariant checks.
  Result<VersionedValue> CurrentValue(const std::string& suite) const;
  Result<SuiteConfig> CurrentPrefix(const std::string& suite) const;

 private:
  void RegisterHandlers();

  // Reads {version, config_version, my votes} from committed pages.
  VersionResp MakeVersionResp(const std::string& suite);

  Network* net_;
  RpcEndpoint rpc_;
  StableStore store_;
  Participant participant_;
  RepresentativeStats stats_;
  uint64_t refresh_serial_ = 1;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_REPRESENTATIVE_H_
