// RPC messages of the weighted-voting protocol itself.
//
// Four request families:
//   * version polls — gather version numbers to establish the current
//     version of a suite, with an S lock (reads), an X lock (writes), or no
//     lock at all (weak-representative currency checks and refresh probes);
//   * data fetch — read the full contents from one chosen representative;
//   * prefix fetch — read the replicated configuration;
//   * refresh — conditionally install a newer version at a stale
//     representative outside any client transaction.
//
// Every request struct declares a constructor: see the GCC 12 note in
// src/txn/messages.h (braced aggregate prvalues must not be passed into
// coroutines).

#ifndef WVOTE_SRC_CORE_MESSAGES_H_
#define WVOTE_SRC_CORE_MESSAGES_H_

#include <string>
#include <utility>

#include "src/core/types.h"
#include "src/txn/txn_id.h"

namespace wvote {

// S-lock the suite at this representative and report its version number.
// With `want_data`, the representative also piggybacks its committed
// contents on the reply (read under the S lock it just granted), so a read
// whose chosen representative turns out current needs no second round trip.
struct TxnVersionReq {
  TxnId txn;
  std::string suite;
  bool want_data = false;

  TxnVersionReq() = default;
  TxnVersionReq(TxnId t, std::string s, bool w = false)
      : txn(t), suite(std::move(s)), want_data(w) {}
  static constexpr const char* kRpcName = "TxnVersionReq";
};

// X-lock the suite at this representative and report its version number
// (the first half of a write-quorum gather).
struct LockVersionReq {
  TxnId txn;
  std::string suite;

  LockVersionReq() = default;
  LockVersionReq(TxnId t, std::string s) : txn(t), suite(std::move(s)) {}
  static constexpr const char* kRpcName = "LockVersionReq";
};

// Lock-free committed version number; used by weak representatives checking
// cache currency and by the background refresher. Not serializable — callers
// must not use it to construct transactional results.
struct VersionInquiryReq {
  std::string suite;

  VersionInquiryReq() = default;
  explicit VersionInquiryReq(std::string s) : suite(std::move(s)) {}
  static constexpr const char* kRpcName = "VersionInquiryReq";
};

struct VersionResp {
  Version version = 0;
  uint64_t config_version = 0;
  int votes = 0;  // this representative's votes under its current prefix

  // Piggybacked contents (TxnVersionReq::want_data only). `has_data`
  // distinguishes "no data requested/available" from an empty value. The
  // contents are only usable once a full read quorum proves `version`
  // current — the client falls back to a data fetch otherwise.
  bool has_data = false;
  std::string contents;

  VersionResp() = default;
  VersionResp(Version v, uint64_t cv, int n) : version(v), config_version(cv), votes(n) {}
  size_t ApproxBytes() const { return 64 + contents.size(); }
};

// Fetch the full committed contents under an already-held lock.
struct TxnReadSuiteReq {
  TxnId txn;
  std::string suite;

  TxnReadSuiteReq() = default;
  TxnReadSuiteReq(TxnId t, std::string s) : txn(t), suite(std::move(s)) {}
  static constexpr const char* kRpcName = "TxnReadSuiteReq";
};
struct SuiteReadResp {
  Version version = 0;
  std::string contents;

  SuiteReadResp() = default;
  SuiteReadResp(Version v, std::string c) : version(v), contents(std::move(c)) {}
  size_t ApproxBytes() const { return 64 + contents.size(); }
};

// Fetch the replicated prefix (configuration).
struct PrefixReadReq {
  std::string suite;

  PrefixReadReq() = default;
  explicit PrefixReadReq(std::string s) : suite(std::move(s)) {}
  static constexpr const char* kRpcName = "PrefixReadReq";
};
struct PrefixReadResp {
  std::string config_bytes;

  PrefixReadResp() = default;
  explicit PrefixReadResp(std::string b) : config_bytes(std::move(b)) {}
  size_t ApproxBytes() const { return 64 + config_bytes.size(); }
};

// Administrative: install a suite (prefix + initial contents) at this
// representative. Idempotent: a representative that already holds the suite
// at this or a newer config_version acknowledges without change. Used by
// SuiteCatalog to create suites at runtime.
struct BootstrapSuiteReq {
  std::string config_bytes;   // serialized SuiteConfig
  std::string initial_bytes;  // serialized VersionedValue

  BootstrapSuiteReq() = default;
  BootstrapSuiteReq(std::string cfg, std::string init)
      : config_bytes(std::move(cfg)), initial_bytes(std::move(init)) {}
  static constexpr const char* kRpcName = "BootstrapSuiteReq";
  size_t ApproxBytes() const { return 64 + config_bytes.size() + initial_bytes.size(); }
};
struct BootstrapSuiteResp {
  bool installed = false;  // false: already present at >= config_version

  BootstrapSuiteResp() = default;
  explicit BootstrapSuiteResp(bool i) : installed(i) {}
};

// Lock-free read of the committed copy at one representative. No currency
// guarantee — the value may be stale. Used by weaker-consistency baselines
// (primary-copy backup reads) and monitoring.
struct StaleReadReq {
  std::string suite;

  StaleReadReq() = default;
  explicit StaleReadReq(std::string s) : suite(std::move(s)) {}
  static constexpr const char* kRpcName = "StaleReadReq";
};

// Install {version, contents} iff it is newer than the stored copy. Used by
// background refresh to bring stale representatives current; safe without a
// client transaction because contents for a given version are immutable.
struct RefreshReq {
  std::string suite;
  Version version = 0;
  std::string contents;

  RefreshReq() = default;
  RefreshReq(std::string s, Version v, std::string c)
      : suite(std::move(s)), version(v), contents(std::move(c)) {}
  static constexpr const char* kRpcName = "RefreshReq";
  size_t ApproxBytes() const { return 64 + contents.size(); }
};
struct RefreshResp {
  bool installed = false;  // false: already at or past this version

  RefreshResp() = default;
  explicit RefreshResp(bool i) : installed(i) {}
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_MESSAGES_H_
