// Quorum planning: which representatives to probe, in what order.
//
// A gather of q votes completes when the slowest probed representative
// answers, so the latency-optimal quorum takes representatives in ascending
// expected-latency order until their votes sum to q (greedy is optimal for
// the max-latency objective: any quorum must contain >= k members where k is
// the greedy prefix length... see quorum_test.cc for the property check).
//
// Strategies:
//   kLowestLatency  — ascending latency (Gifford's "cheapest representatives
//                     first"); minimizes gather completion time.
//   kFewestMessages — descending votes (ties by latency); minimizes probe
//                     count, at a possible latency cost.
//   kBroadcast      — probe everyone; maximizes tolerance of unexpected
//                     failures at maximal message cost.
//
// The planner returns the full preference order; callers probe a prefix and
// extend it when members fail to answer.

#ifndef WVOTE_SRC_CORE_QUORUM_H_
#define WVOTE_SRC_CORE_QUORUM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/core/suite_config.h"

namespace wvote {

enum class QuorumStrategy { kLowestLatency, kFewestMessages, kBroadcast };

const char* QuorumStrategyName(QuorumStrategy s);

// Carries a user-declared constructor per the GCC 12 rule in src/sim/task.h
// (QuorumCandidate is passed by value into probe coroutines).
struct QuorumCandidate {
  size_t rep_index = 0;  // index into SuiteConfig::representatives
  std::string host_name;
  int votes = 0;
  Duration expected_latency;

  QuorumCandidate() = default;
  QuorumCandidate(size_t index, std::string host, int v, Duration latency)
      : rep_index(index), host_name(std::move(host)), votes(v), expected_latency(latency) {}
};

class QuorumPlanner {
 public:
  // `latency_of` maps a representative's host name to the client's expected
  // round-trip cost of probing it.
  QuorumPlanner(const SuiteConfig& config,
                std::function<Duration(const std::string&)> latency_of);

  // Full preference order of voting representatives for a gather needing
  // `required_votes`. Weak representatives are never included. The order
  // depends only on the strategy (required_votes names the caller's goal;
  // callers probe a prefix and widen on failure).
  std::vector<QuorumCandidate> Plan(int required_votes, QuorumStrategy strategy) const;

  // Length of the shortest prefix of `plan` whose votes reach
  // `required_votes`; 0 if the whole plan falls short.
  static size_t PrefixCount(const std::vector<QuorumCandidate>& plan, int required_votes);

  // Expected completion latency of probing the first `count` entries in
  // parallel (their max expected latency).
  static Duration PrefixLatency(const std::vector<QuorumCandidate>& plan, size_t count);

 private:
  std::vector<QuorumCandidate> voting_;
};

// Memoizes QuorumPlanner plans per (config_version, strategy) so a client
// builds its latency-sorted preference order once per configuration instead
// of once per operation. Latencies are sampled when a config version's
// planner is first built; call Invalidate() if link costs change out of
// band (reconfiguration is handled automatically via config_version).
class PlanCache {
 public:
  // `latency_of` as in QuorumPlanner. If `build_counter` is non-null it is
  // incremented once per plan actually built (cache misses only).
  PlanCache(std::function<Duration(const std::string&)> latency_of,
            uint64_t* build_counter = nullptr);

  // Cached preference order for `config` under `strategy`; built on first
  // use and whenever config.config_version changes. Shared ownership: a
  // caller suspended mid-gather keeps its plan alive even if the cache is
  // invalidated underneath it.
  std::shared_ptr<const std::vector<QuorumCandidate>> Get(const SuiteConfig& config,
                                                          QuorumStrategy strategy);

  // Drops every cached plan (and the planner's sampled latencies).
  void Invalidate();

 private:
  static constexpr size_t kNumStrategies = 3;

  std::function<Duration(const std::string&)> latency_of_;
  uint64_t* build_counter_;
  bool have_config_version_ = false;
  uint64_t config_version_ = 0;
  std::shared_ptr<const std::vector<QuorumCandidate>> plans_[kNumStrategies];
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_QUORUM_H_
