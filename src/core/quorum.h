// Quorum planning: which representatives to probe, in what order — and,
// for probabilistic policies, drawn from which distribution.
//
// A gather of q votes completes when the slowest probed representative
// answers, so the latency-optimal quorum takes representatives in ascending
// expected-latency order until their votes sum to q (greedy is optimal for
// the max-latency objective: any quorum must contain >= k members where k is
// the greedy prefix length... see quorum_test.cc for the property check).
//
// Deterministic policies (every operation probes the same preferred prefix):
//   kLowestLatency  — ascending latency (Gifford's "cheapest representatives
//                     first"); minimizes gather completion time.
//   kFewestMessages — descending votes (ties by latency); minimizes probe
//                     count, at a possible latency cost.
//   kBroadcast      — probe everyone; maximizes tolerance of unexpected
//                     failures at maximal message cost.
//
// Probabilistic policies (each operation samples a minimal quorum from a
// precomputed distribution — Whittaker et al.'s "strategies", built by
// src/core/strategy_solver.h):
//   kUniformSpread  — uniform over all minimal quorums; breaks the
//                     fixed-prefix hotspot with zero tuning.
//   kLoadOptimal    — minimax per-host load, optionally capacity-weighted
//                     and f-resilient; maximizes the fleet's throughput
//                     ceiling.
//
// The planner returns the full preference order; callers probe a prefix and
// extend it when members fail to answer. Probabilistic policies reorder so
// the sampled quorum *is* the prefix and every other representative remains
// as a widening fallback — availability is never worse than deterministic
// probing, only the steady-state distribution changes.

#ifndef WVOTE_SRC_CORE_QUORUM_H_
#define WVOTE_SRC_CORE_QUORUM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/core/suite_config.h"
#include "src/net/message.h"

namespace wvote {

class Network;
class Rng;

enum class QuorumStrategy {
  kLowestLatency,
  kFewestMessages,
  kBroadcast,
  kUniformSpread,
  kLoadOptimal,
};

const char* QuorumStrategyName(QuorumStrategy s);

// Full probing policy: which strategy, tuned how. Implicitly constructible
// from a bare QuorumStrategy so `options.strategy = kBroadcast` keeps
// working; the tuning fields only matter to the probabilistic policies.
struct QuorumStrategySpec {
  QuorumStrategy policy = QuorumStrategy::kLowestLatency;
  // Relative probe capacity per representative host (any positive units;
  // hosts absent default to 1.0). kLoadOptimal divides each host's load by
  // its capacity, so a host listed at 2.0 absorbs twice the probes of one
  // at 1.0 before counting as equally busy.
  std::map<std::string, double> capacities;
  // Keep the sampled strategy feasible with any f representatives removed
  // (a support floor over every minimal quorum; see strategy_solver.h).
  int f_resilience = 0;

  QuorumStrategySpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): enum spells the common case
  QuorumStrategySpec(QuorumStrategy p) : policy(p) {}

  // Equality of the tuning knobs shared by every policy slot (capacities,
  // resilience). A tuning change invalidates cached strategies even when
  // config_version did not move.
  bool SameTuning(const QuorumStrategySpec& other) const {
    return f_resilience == other.f_resilience && capacities == other.capacities;
  }
};

// Carries a user-declared constructor per the GCC 12 rule in src/sim/task.h
// (QuorumCandidate is passed by value into probe coroutines).
struct QuorumCandidate {
  size_t rep_index = 0;  // index into SuiteConfig::representatives
  std::string host_name;
  int votes = 0;
  Duration expected_latency;

  QuorumCandidate() = default;
  QuorumCandidate(size_t index, std::string host, int v, Duration latency)
      : rep_index(index), host_name(std::move(host)), votes(v), expected_latency(latency) {}
};

// Shared host-name -> (HostId, round-trip latency) lookup. Host names never
// remap in the simulated network, so ids memoize forever; latencies memoize
// until InvalidateLatencies() (plan-cache invalidation re-samples them).
// One instance per client serves probe resolution, plan building, and
// strategy solving, instead of each keeping its own map.
class HostLinkCache {
 public:
  HostLinkCache(Network* net, HostId self) : net_(net), self_(self) {}

  HostId Resolve(const std::string& name);
  Duration LatencyTo(const std::string& name);  // round trip: there and back
  void InvalidateLatencies();

 private:
  struct Entry {
    HostId id = kInvalidHost;
    bool have_latency = false;
    Duration latency;
  };

  Network* net_;
  HostId self_;
  std::map<std::string, Entry> entries_;
};

class QuorumPlanner {
 public:
  // `latency_of` maps a representative's host name to the client's expected
  // round-trip cost of probing it.
  QuorumPlanner(const SuiteConfig& config,
                std::function<Duration(const std::string&)> latency_of);

  // Full preference order of voting representatives for a gather needing
  // `required_votes`. Weak representatives are never included. The order
  // depends only on the strategy (required_votes names the caller's goal;
  // callers probe a prefix and widen on failure). Probabilistic policies
  // use the kLowestLatency order as their base (sampling happens in
  // ProbingStrategy, not here).
  std::vector<QuorumCandidate> Plan(int required_votes, QuorumStrategy strategy) const;

  // Length of the shortest prefix of `plan` whose votes reach
  // `required_votes`; 0 if the whole plan falls short.
  static size_t PrefixCount(const std::vector<QuorumCandidate>& plan, int required_votes);

  // Expected completion latency of probing the first `count` entries in
  // parallel (their max expected latency).
  static Duration PrefixLatency(const std::vector<QuorumCandidate>& plan, size_t count);

 private:
  std::vector<QuorumCandidate> voting_;
};

// A precomputed distribution over minimal quorums for one vote target.
// `quorums[i]` lists indices into ProbingStrategy::order, ascending (so
// members are already in latency order); `cumulative` is the sampling CDF.
struct QuorumDistribution {
  int target_votes = 0;
  std::vector<std::vector<uint16_t>> quorums;
  std::vector<double> cumulative;
  std::vector<double> shares;  // expected probe share per order index
  double max_share = 1.0;
  double share_lower_bound = 0.0;

  bool valid() const { return !quorums.empty(); }
};

// What PlanCache hands out: the deterministic preference order plus, for
// probabilistic policies, one distribution per quorum target (read and
// write). Immutable once built; shared ownership keeps it alive for gathers
// suspended across a cache invalidation.
struct ProbingStrategy {
  std::vector<QuorumCandidate> order;
  QuorumDistribution read_dist;
  QuorumDistribution write_dist;

  bool probabilistic() const { return read_dist.valid() || write_dist.valid(); }

  // The distribution whose target matches `required_votes`, else nullptr
  // (deterministic policies; reconfiguration under an old write target).
  const QuorumDistribution* DistributionFor(int required_votes) const;

  // Per-operation probe order as indices into `order`: the sampled quorum's
  // members first (ascending latency), then every remaining candidate as
  // widening fallbacks. Empty when no distribution matches — callers then
  // use `order` unchanged, and `rng` is NOT consumed (deterministic-policy
  // replays stay bit-exact with pre-strategy builds).
  std::vector<uint16_t> SampleOrder(int required_votes, Rng* rng) const;
};

// Memoizes ProbingStrategy per (config_version, tuning, policy) so a client
// builds its preference order — and, for probabilistic policies, solves its
// quorum distribution — once per configuration instead of once per
// operation. Latencies are sampled when a config version's planner is first
// built; call Invalidate() if link costs change out of band
// (reconfiguration is handled automatically via config_version, and a
// tuning change — capacities, f_resilience — invalidates even without a
// version bump).
class PlanCache {
 public:
  // `latency_of` as in QuorumPlanner. If `build_counter` is non-null it is
  // incremented once per strategy actually built (cache misses only).
  PlanCache(std::function<Duration(const std::string&)> latency_of,
            uint64_t* build_counter = nullptr);

  // Cached strategy for `config` under `spec`; built on first use and
  // whenever config.config_version or the spec's tuning changes.
  std::shared_ptr<const ProbingStrategy> Get(const SuiteConfig& config,
                                             const QuorumStrategySpec& spec);

  // The cached strategy for `policy` if one is built, else nullptr. Never
  // builds — safe for metrics gauges read at snapshot time.
  std::shared_ptr<const ProbingStrategy> Peek(QuorumStrategy policy) const;

  // Drops every cached strategy (and the planner's sampled latencies).
  void Invalidate();

 private:
  static constexpr size_t kNumStrategies = 5;

  std::function<Duration(const std::string&)> latency_of_;
  uint64_t* build_counter_;
  bool have_config_version_ = false;
  uint64_t config_version_ = 0;
  QuorumStrategySpec cached_tuning_;
  std::shared_ptr<const ProbingStrategy> strategies_[kNumStrategies];
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_QUORUM_H_
