// Core value types for weighted-voting file suites.

#ifndef WVOTE_SRC_CORE_TYPES_H_
#define WVOTE_SRC_CORE_TYPES_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace wvote {

// Version numbers order committed states of a suite. Version 0 means "never
// written"; the first committed write produces version 1.
using Version = uint64_t;

// The representative's durable copy of a suite: the current version number
// and the full file contents (Gifford's files are read and written whole).
struct VersionedValue {
  Version version = 0;
  std::string contents;

  VersionedValue() = default;
  VersionedValue(Version v, std::string c) : version(v), contents(std::move(c)) {}

  std::string Serialize() const;
  static Result<VersionedValue> Parse(const std::string& bytes);
};

// Durable page keys used by representatives (under Participant::DataKey).
std::string SuiteValueKey(const std::string& suite);
std::string SuitePrefixKey(const std::string& suite);

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_TYPES_H_
