#include "src/core/catalog.h"

#include <utility>

#include "src/sim/join.h"

namespace wvote {
namespace {

Task<Result<BootstrapSuiteResp>> SendBootstrap(RpcEndpoint* rpc, HostId host,
                                               std::string config_bytes,
                                               std::string initial_bytes, Duration timeout) {
  BootstrapSuiteReq req(std::move(config_bytes), std::move(initial_bytes));
  co_return co_await rpc->Call<BootstrapSuiteReq, BootstrapSuiteResp>(host, std::move(req),
                                                                      timeout);
}

}  // namespace

Task<Status> SuiteCatalog::Create(SuiteConfig config, std::string initial_contents,
                                  Duration timeout) {
  WVOTE_CO_RETURN_IF_ERROR(config.Validate());
  const std::string config_bytes = config.Serialize();
  const std::string initial_bytes = VersionedValue{1, std::move(initial_contents)}.Serialize();

  std::vector<Task<Result<BootstrapSuiteResp>>> installs;
  int targets = 0;
  for (const RepresentativeInfo& rep : config.representatives) {
    if (rep.weak()) {
      continue;  // weak representatives are client-side caches
    }
    Host* host = net_->FindHost(rep.host_name);
    if (host == nullptr) {
      co_return NotFoundError("no host " + rep.host_name);
    }
    ++targets;
    installs.push_back(
        SendBootstrap(rpc_, host->id(), config_bytes, initial_bytes, timeout));
  }

  std::vector<Result<BootstrapSuiteResp>> acks =
      co_await JoinAll<Result<BootstrapSuiteResp>>(net_->sim(), std::move(installs));
  int ok = 0;
  Status failure = Status::Ok();
  for (const Result<BootstrapSuiteResp>& ack : acks) {
    if (ack.ok()) {
      ++ok;
    } else {
      failure = ack.status();
    }
  }
  if (ok != targets) {
    co_return UnavailableError("suite creation reached " + std::to_string(ok) + "/" +
                               std::to_string(targets) +
                               " representatives: " + failure.ToString());
  }
  co_return Status::Ok();
}

SuiteClient* SuiteCatalog::Open(const SuiteConfig& config, SuiteClientOptions options) {
  auto it = open_.find(config.suite_name);
  if (it != open_.end()) {
    return it->second.get();
  }
  auto client = std::make_unique<SuiteClient>(net_, rpc_, coordinator_, config, options);
  SuiteClient* raw = client.get();
  open_[config.suite_name] = std::move(client);
  return raw;
}

Task<Result<SuiteClient*>> SuiteCatalog::Discover(std::string suite_name,
                                                  std::string hint_host,
                                                  SuiteClientOptions options,
                                                  Duration timeout) {
  Host* host = net_->FindHost(hint_host);
  if (host == nullptr) {
    co_return NotFoundError("no host " + hint_host);
  }
  Result<PrefixReadResp> prefix = co_await rpc_->Call<PrefixReadReq, PrefixReadResp>(
      host->id(), PrefixReadReq(std::move(suite_name)), timeout);
  if (!prefix.ok()) {
    co_return prefix.status();
  }
  Result<SuiteConfig> config = SuiteConfig::Parse(prefix.value().config_bytes);
  if (!config.ok()) {
    co_return config.status();
  }
  WVOTE_CO_RETURN_IF_ERROR(config.value().Validate());
  SuiteClient* client = Open(config.value(), options);
  // Adopt anything newer the cluster might hold (the hint host could have
  // been lagging behind a reconfiguration).
  WVOTE_CO_RETURN_IF_ERROR(co_await client->RefreshConfigFromPrefix());
  co_return client;
}

std::vector<std::string> SuiteCatalog::OpenSuites() const {
  std::vector<std::string> names;
  names.reserve(open_.size());
  for (const auto& [name, client] : open_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace wvote
