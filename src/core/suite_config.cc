#include "src/core/suite_config.h"

#include "src/common/bytes.h"

namespace wvote {

int SuiteConfig::TotalVotes() const {
  int total = 0;
  for (const RepresentativeInfo& rep : representatives) {
    total += rep.votes;
  }
  return total;
}

int SuiteConfig::NumVotingReps() const {
  int n = 0;
  for (const RepresentativeInfo& rep : representatives) {
    if (!rep.weak()) {
      ++n;
    }
  }
  return n;
}

Status SuiteConfig::Validate() const {
  if (suite_name.empty()) {
    return InvalidArgumentError("suite name empty");
  }
  if (representatives.empty()) {
    return InvalidArgumentError("no representatives");
  }
  for (const RepresentativeInfo& rep : representatives) {
    if (rep.votes < 0) {
      return InvalidArgumentError("negative votes for " + rep.host_name);
    }
    if (rep.host_name.empty()) {
      return InvalidArgumentError("representative with empty host name");
    }
  }
  const int v = TotalVotes();
  if (v <= 0) {
    return InvalidArgumentError("suite has no votes");
  }
  if (read_quorum < 1 || read_quorum > v) {
    return InvalidArgumentError("read quorum " + std::to_string(read_quorum) +
                                " out of range [1, " + std::to_string(v) + "]");
  }
  if (write_quorum < 1 || write_quorum > v) {
    return InvalidArgumentError("write quorum " + std::to_string(write_quorum) +
                                " out of range [1, " + std::to_string(v) + "]");
  }
  if (allow_unsafe_quorums) {
    // Chaos negative control: deploy anyway; the checker's job is to notice.
    return Status::Ok();
  }
  if (read_quorum + write_quorum <= v) {
    return InvalidArgumentError("r + w must exceed total votes (r=" +
                                std::to_string(read_quorum) +
                                ", w=" + std::to_string(write_quorum) +
                                ", V=" + std::to_string(v) + ")");
  }
  if (2 * write_quorum <= v) {
    return InvalidArgumentError("2w must exceed total votes (w=" +
                                std::to_string(write_quorum) + ", V=" + std::to_string(v) +
                                ")");
  }
  return Status::Ok();
}

SuiteConfig SuiteConfig::MakeUniform(std::string suite, std::vector<std::string> hosts, int r,
                                     int w) {
  SuiteConfig cfg;
  cfg.suite_name = std::move(suite);
  for (std::string& h : hosts) {
    cfg.AddRepresentative(std::move(h), 1);
  }
  cfg.read_quorum = r;
  cfg.write_quorum = w;
  return cfg;
}

void SuiteConfig::AddRepresentative(std::string host, int votes) {
  representatives.push_back(RepresentativeInfo{std::move(host), votes});
}

std::string SuiteConfig::Serialize() const {
  BufferWriter w;
  w.WriteString(suite_name);
  w.WriteU64(config_version);
  w.WriteU32(static_cast<uint32_t>(read_quorum));
  w.WriteU32(static_cast<uint32_t>(write_quorum));
  w.WriteU32(static_cast<uint32_t>(representatives.size()));
  for (const RepresentativeInfo& rep : representatives) {
    w.WriteString(rep.host_name);
    w.WriteU32(static_cast<uint32_t>(rep.votes));
  }
  return w.Take();
}

Result<SuiteConfig> SuiteConfig::Parse(const std::string& bytes) {
  BufferReader r(bytes);
  SuiteConfig cfg;
  cfg.suite_name = r.ReadString();
  cfg.config_version = r.ReadU64();
  cfg.read_quorum = static_cast<int>(r.ReadU32());
  cfg.write_quorum = static_cast<int>(r.ReadU32());
  const uint32_t n = r.ReadU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    RepresentativeInfo rep;
    rep.host_name = r.ReadString();
    rep.votes = static_cast<int>(r.ReadU32());
    cfg.representatives.push_back(std::move(rep));
  }
  if (r.failed() || !r.AtEnd()) {
    return CorruptionError("bad suite config");
  }
  return cfg;
}

std::string SuiteConfig::ToString() const {
  std::string out = suite_name + "@cfg" + std::to_string(config_version) + "{r=" +
                    std::to_string(read_quorum) + ",w=" + std::to_string(write_quorum) + ",[";
  for (size_t i = 0; i < representatives.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += representatives[i].host_name + ":" + std::to_string(representatives[i].votes);
  }
  out += "]}";
  return out;
}

}  // namespace wvote
