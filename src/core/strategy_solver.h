// Load-optimal probing strategies over weighted-voting quorum systems.
//
// Gifford's cheapest-representatives-first rule is latency-optimal for one
// client but load-pessimal for a fleet: every reader probes the same cheap
// prefix, so one representative absorbs almost all version polls and caps
// aggregate throughput while the rest idle. "Read-Write Quorum Systems Made
// Practical" (Whittaker et al.) computes *strategies* instead — probability
// distributions over quorums — chosen to minimize the busiest
// representative's load. This module is the math half of that idea, kept
// deliberately free of planner/network types: it works on vote vectors and
// capacity vectors and returns distributions over minimal quorums; the
// planner layer (src/core/quorum.h) maps representatives in and out.
//
// Definitions (per Whittaker et al., adapted to voting):
//   minimal quorum  — a set of representatives whose votes reach the target
//                     and from which no member can be dropped;
//   strategy        — a probability distribution over minimal quorums, one
//                     quorum sampled per operation;
//   load(h)         — the fraction of operations that touch h, divided by
//                     h's capacity: the busiest host's load is the inverse
//                     throughput ceiling of the whole system;
//   probe share(h)  — the fraction of all probe messages that land on h
//                     (what the srv-0 hotspot shows up as in metrics);
//   f-resilience    — the strategy keeps a feasible quorum with any f
//                     representatives removed.
//
// The solver is an iterative load rebalancer (multiplicative weights): each
// round, quorums containing the currently busiest hosts lose probability
// mass to quorums that avoid them, converging to the minimax distribution.
// Exact for the small systems this repo deploys (an LP would be too), and
// indifferent to quorum structure — it never assumes uniform votes.

#ifndef WVOTE_SRC_CORE_STRATEGY_SOLVER_H_
#define WVOTE_SRC_CORE_STRATEGY_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wvote {

// One minimal quorum over hosts 0..n-1 (indices into the caller's candidate
// list). `mask` bit i set <=> i is a member; `members` lists the same
// indices ascending.
struct StrategyQuorum {
  uint32_t mask = 0;
  std::vector<uint16_t> members;
};

// Enumeration is exponential in the number of voting representatives; past
// this many the planner falls back to deterministic probing rather than
// stall a reconfiguration solving an LP nobody asked for.
constexpr size_t kMaxStrategyHosts = 18;

// All minimal quorums of the vote assignment: subsets whose votes sum to at
// least `target` and in which every member is essential (votes are
// positive, so single-member essentiality implies no proper subset
// suffices). Empty if the target is unreachable or hosts exceed
// kMaxStrategyHosts.
std::vector<StrategyQuorum> EnumerateMinimalQuorums(const std::vector<int>& votes,
                                                    int target);

// True iff for every way of removing `f` of the `num_hosts` hosts, some
// quorum survives intact. f <= 0 is trivially true.
bool QuorumsResilient(const std::vector<StrategyQuorum>& quorums, size_t num_hosts, int f);

struct StrategySolution {
  // Probability per quorum (same order as the input); sums to 1.
  std::vector<double> probability;
  // Per host: fraction of operations touching it, divided by its capacity.
  // The busiest entry bounds aggregate throughput at 1 / max_load ops per
  // unit of per-host service rate.
  std::vector<double> load;
  double max_load = 1.0;
  // Per host: fraction of all probe messages. What per-host probe-share
  // gauges and BENCH tables report.
  std::vector<double> shares;
  double max_share = 1.0;
  // Analytic floor on max_share for *any* strategy over these quorums
  // (1/n, tightened when some host is in every quorum). "Within 10% of
  // optimal" claims measure against this.
  double share_lower_bound = 0.0;
};

// Uniform over the given quorums. The fallback strategy: already breaks the
// fixed-prefix hotspot, but over-weights hosts that appear in many quorums.
StrategySolution SolveUniform(const std::vector<StrategyQuorum>& quorums, size_t num_hosts,
                              const std::vector<double>& capacities);

// Minimax load via iterative rebalancing. `capacities` (one per host,
// relative units; empty = uniform) scale each host's load. When
// `f_resilience` > 0 every quorum keeps a small probability floor so the
// support never shrinks: if the quorum set itself survives f removals
// (QuorumsResilient), so does the strategy. `iterations` bounds the
// rebalancing rounds; the default converges far past double precision for
// systems under kMaxStrategyHosts.
StrategySolution SolveLoadOptimal(const std::vector<StrategyQuorum>& quorums,
                                  size_t num_hosts, const std::vector<double>& capacities,
                                  int f_resilience, int iterations = 4000);

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_STRATEGY_SOLVER_H_
