#include "src/core/types.h"

#include "src/common/bytes.h"

namespace wvote {

std::string VersionedValue::Serialize() const {
  BufferWriter w;
  w.WriteU64(version);
  w.WriteString(contents);
  return w.Take();
}

Result<VersionedValue> VersionedValue::Parse(const std::string& bytes) {
  BufferReader r(bytes);
  VersionedValue v;
  v.version = r.ReadU64();
  v.contents = r.ReadString();
  if (r.failed() || !r.AtEnd()) {
    return CorruptionError("bad versioned value");
  }
  return v;
}

std::string SuiteValueKey(const std::string& suite) { return "suite/" + suite; }

std::string SuitePrefixKey(const std::string& suite) { return "prefix/" + suite; }

}  // namespace wvote
