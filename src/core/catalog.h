// SuiteCatalog: create, open, and discover file suites at runtime.
//
// The Cluster harness bootstraps suites by poking representative storage
// directly — fine for tests, not how a deployed client works. The catalog
// does it over the wire:
//
//   Create   — validates the configuration and installs the prefix plus
//              initial contents at every voting representative via the
//              idempotent BootstrapSuiteReq admin RPC. Creation requires all
//              members reachable (a suite born degraded would silently have
//              less redundancy than its votes claim).
//   Open     — instantiates a SuiteClient for a known configuration; the
//              catalog owns the client.
//   Discover — fetches the current prefix from any representative of a
//              suite known only by name and host hint, then Opens it.

#ifndef WVOTE_SRC_CORE_CATALOG_H_
#define WVOTE_SRC_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/suite_client.h"

namespace wvote {

class SuiteCatalog {
 public:
  SuiteCatalog(Network* net, RpcEndpoint* rpc, Coordinator* coordinator)
      : net_(net), rpc_(rpc), coordinator_(coordinator) {}

  // Installs `config` with `initial_contents` (version 1) at every voting
  // representative. Fails (kUnavailable) if any member does not acknowledge;
  // already-installed members acknowledge idempotently, so Create may be
  // retried after partial failure.
  Task<Status> Create(SuiteConfig config, std::string initial_contents,
                      Duration timeout = Duration::Seconds(5));

  // Returns a client for `config`, creating it on first use. The catalog
  // owns the client; pointers remain valid for the catalog's lifetime.
  SuiteClient* Open(const SuiteConfig& config, SuiteClientOptions options = {});

  // Fetches the prefix of `suite_name` from `hint_host` (any current or
  // former representative) and opens a client under it.
  Task<Result<SuiteClient*>> Discover(std::string suite_name, std::string hint_host,
                                      SuiteClientOptions options = {},
                                      Duration timeout = Duration::Seconds(5));

  // Names of suites opened through this catalog.
  std::vector<std::string> OpenSuites() const;

 private:
  Network* net_;
  RpcEndpoint* rpc_;
  Coordinator* coordinator_;
  std::map<std::string, std::unique_ptr<SuiteClient>> open_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_CATALOG_H_
