#include "src/core/multi_txn.h"

#include <utility>

#include "src/common/check.h"
#include "src/core/txn_state.h"

namespace wvote {

MultiSuiteTransaction::MultiSuiteTransaction(Coordinator* coordinator)
    : coordinator_(coordinator), txn_(coordinator->Begin()) {}

MultiSuiteTransaction::~MultiSuiteTransaction() {
  if (!finished_) {
    // Best-effort cleanup for abandoned transactions, mirroring
    // SuiteTransaction's destructor.
    finished_ = true;
    for (auto& [client, entry] : entries_) {
      if (entry.state && !entry.state->finished) {
        Spawn(entry.client->DoAbort(entry.state));
      }
    }
  }
}

MultiSuiteTransaction::SuiteEntry& MultiSuiteTransaction::EntryFor(SuiteClient* suite) {
  SuiteEntry& entry = entries_[suite];
  if (!entry.state) {
    if (!trace_opened_) {
      trace_opened_ = true;
      tracer_ = suite->net_->tracer();
      if (tracer_ != nullptr) {
        trace_ = tracer_->StartRoot(suite->rpc_->host_id(), "client.multi");
        if (trace_.valid()) {
          tracer_->Annotate(trace_, "txn=" + txn_.ToString());
        }
      }
    }
    entry.client = suite;
    entry.state = std::make_shared<SuiteTransaction::State>();
    entry.state->client = suite;
    entry.state->txn = txn_;  // the SAME transaction everywhere
    entry.state->trace = trace_;  // ... and the same span tree
  }
  return entry;
}

Task<Result<std::string>> MultiSuiteTransaction::Read(SuiteClient* suite) {
  if (finished_) {
    co_return FailedPreconditionError("transaction already finished");
  }
  SuiteEntry& entry = EntryFor(suite);
  co_return co_await suite->DoRead(entry.state);
}

Status MultiSuiteTransaction::Write(SuiteClient* suite, std::string contents) {
  if (finished_) {
    return FailedPreconditionError("transaction already finished");
  }
  EntryFor(suite).state->pending_write = std::move(contents);
  return Status::Ok();
}

Task<Status> MultiSuiteTransaction::Commit() {
  if (finished_) {
    co_return FailedPreconditionError("transaction already finished");
  }

  // Phase 0: gather an exclusive write quorum for every written suite. All
  // gathers share txn_, so wait-die resolves cross-suite lock conflicts.
  std::map<HostId, std::vector<WriteIntent>> writes;
  for (auto& [client, entry] : entries_) {
    if (!entry.state->pending_write) {
      continue;
    }
    Result<SuiteClient::GatherResult> gather =
        co_await client->Gather(entry.state, client->config().write_quorum,
                                /*exclusive=*/true);
    if (!gather.ok()) {
      co_await Abort();
      co_return gather.status();
    }
    const Version next = gather.value().current + 1;
    const SharedPayload bytes(
        VersionedValue{next, *entry.state->pending_write}.Serialize());
    for (const auto& reply : gather.value().replies) {
      writes[reply.host].push_back(
          WriteIntent(SuiteValueKey(client->config().suite_name), bytes));
    }
  }

  // Everything we locked anywhere but are not writing gets released.
  std::set<HostId> release;
  for (auto& [client, entry] : entries_) {
    const std::set<HostId> per_suite = entry.state->ReleaseSet();
    release.insert(per_suite.begin(), per_suite.end());
    entry.state->finished = true;
  }
  std::vector<HostId> read_only;
  for (HostId host : release) {
    if (writes.find(host) == writes.end()) {
      read_only.push_back(host);
    }
  }

  finished_ = true;
  Status st = co_await coordinator_->CommitTransaction(txn_, std::move(writes),
                                                       std::move(read_only), trace_);
  if (tracer_ != nullptr) {
    tracer_->EndWith(trace_, st.ok() ? "committed" : st.ToString());
  }
  co_return st;
}

Task<void> MultiSuiteTransaction::Abort() {
  if (finished_) {
    co_return;
  }
  finished_ = true;
  std::set<HostId> release;
  for (auto& [client, entry] : entries_) {
    const std::set<HostId> per_suite = entry.state->ReleaseSet();
    release.insert(per_suite.begin(), per_suite.end());
    entry.state->finished = true;
  }
  std::vector<HostId> targets(release.begin(), release.end());
  co_await coordinator_->AbortTransaction(txn_, std::move(targets), trace_);
  if (tracer_ != nullptr) {
    tracer_->EndWith(trace_, "aborted");
  }
}

}  // namespace wvote
