// Internal: shared per-transaction state for suite transactions.
//
// Lives in its own header so that both SuiteClient (single-suite
// transactions) and MultiSuiteTransaction (cross-suite transactions) can
// drive the same gather/read/commit machinery. Not part of the public API.

#ifndef WVOTE_SRC_CORE_TXN_STATE_H_
#define WVOTE_SRC_CORE_TXN_STATE_H_

#include <optional>
#include <set>
#include <string>

#include "src/core/suite_client.h"

namespace wvote {

// Per-transaction shared state. Held by the transaction handle, by in-flight
// probe coroutines, and by straggler cleanup closures.
struct SuiteTransaction::State {
  SuiteClient* client = nullptr;
  TxnId txn;
  bool finished = false;
  std::set<HostId> participants;  // every representative holding our locks
  // Every representative we ever sent a lock-taking request to. A probe that
  // times out client-side may still be granted server-side (it queued on the
  // lock and won later); aborting at every probed host at transaction end is
  // what prevents those grants from leaking forever.
  std::set<HostId> probed;
  std::optional<VersionedValue> read_result;
  std::optional<std::string> pending_write;
  // Version installed by a successful write commit (0 until then). Chaos
  // histories pair each acked write with the version it committed at.
  Version committed_version = 0;
  // This attempt's "client.txn" span. Every phase recorded on behalf of the
  // transaction (gather, fetch, prepare, disk, commit-ack) parents here, so
  // the phases tile the attempt span exactly — sim time only advances at
  // awaits, and the phases are the awaits.
  TraceContext trace;

  // Union of participants and probed: everything that must see the
  // transaction end.
  std::set<HostId> ReleaseSet() const {
    std::set<HostId> release = participants;
    release.insert(probed.begin(), probed.end());
    return release;
  }
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_TXN_STATE_H_
