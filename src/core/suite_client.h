// SuiteClient: the client half of weighted voting (the paper's algorithm).
//
// A transaction on a file suite proceeds exactly as in Gifford '79:
//
//  Read:  poll representatives for version numbers under shared locks until
//         the answered votes reach the read quorum r. The largest version in
//         the gathered set is the current version (r + w > V guarantees the
//         set intersects the last write quorum). Serve the data from the
//         cheapest current representative — or from a weak representative's
//         cache if its copy is at the current version.
//
//  Write: poll under exclusive locks until votes reach the write quorum w.
//         The new version is (current + 1), where current is the gathered
//         maximum (2w > V makes this well-defined across writers). Install
//         the new versioned contents at every gathered member atomically via
//         two-phase commit.
//
//  Both:  stale representatives observed during a gather are brought current
//         in the background (best-effort refresh); representatives whose
//         prefix reports a newer configuration trigger a prefix re-fetch and
//         a retry under the new configuration.
//
// Quorum probing is round-based: probe the preferred quorum (by strategy),
// and widen to fallback representatives when members time out, until the
// votes are reached or the candidate list is exhausted (UNAVAILABLE).

#ifndef WVOTE_SRC_CORE_SUITE_CLIENT_H_
#define WVOTE_SRC_CORE_SUITE_CLIENT_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/messages.h"
#include "src/core/quorum.h"
#include "src/core/suite_config.h"
#include "src/core/weak_rep.h"
#include "src/rpc/rpc.h"
#include "src/txn/coordinator.h"

namespace wvote {

struct SuiteClientOptions {
  Duration probe_timeout = Duration::Seconds(2);
  Duration data_timeout = Duration::Seconds(5);
  // Probing policy plus tuning (capacities, f-resilience); assignable from
  // a bare QuorumStrategy. Probabilistic policies sample each operation's
  // quorum from the suite's seeded RNG, so replays stay bit-exact.
  QuorumStrategySpec strategy = QuorumStrategy::kLowestLatency;
  bool background_refresh = true;
  // Fast-path reads: ask the probe target most likely to be both cheapest
  // and current to piggyback its contents on the version reply, making the
  // common-case read one round trip. The piggybacked copy is used only if
  // the gathered quorum proves it current; otherwise the read falls back to
  // an explicit data fetch. Never weakens strict-quorum semantics.
  bool fastpath_reads = true;
  int max_gather_rounds = 4;    // probe-widening rounds per gather
  int max_config_retries = 3;   // prefix-refresh retries per operation
};

struct SuiteClientStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t cache_hits = 0;
  uint64_t fastpath_hits = 0;         // reads served from piggybacked probe data
  uint64_t fastpath_misses = 0;       // reads that needed the explicit data fetch
  uint64_t fastpath_bytes_saved = 0;  // data-fetch reply bytes avoided by piggybacking
  uint64_t plan_builds = 0;           // quorum plans actually computed (cache misses)
  uint64_t probes_sent = 0;
  uint64_t gather_rounds = 0;
  uint64_t config_refreshes = 0;
  uint64_t refreshes_spawned = 0;
  uint64_t unavailable = 0;        // total failed gathers (both kinds)
  uint64_t read_unavailable = 0;   // shared-lock gathers that missed r
  uint64_t write_unavailable = 0;  // exclusive-lock gathers that missed w
  uint64_t conflicts = 0;
  uint64_t retries = 0;  // one-shot helper attempts after the first
  uint64_t commit_bytes_serialized = 0;  // versioned-value bytes built by
                                         // commits (once per commit, however
                                         // wide the write quorum)

  void Reset() { *this = SuiteClientStats{}; }
  // Registers every field as `core.suite_client.*{labels}`; this struct
  // must outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

class SuiteClient;

// One transaction against one suite. Obtain from SuiteClient::Begin(); end
// with Commit() or Abort() (Abort also runs from the destructor as a
// safety net for abandoned transactions).
class SuiteTransaction {
 public:
  SuiteTransaction(SuiteTransaction&&) = default;
  SuiteTransaction& operator=(SuiteTransaction&&) = default;
  ~SuiteTransaction();

  // Quorum read of the suite contents. Repeated reads in one transaction
  // are served from the first read's result; a read after Write() returns
  // the buffered new contents.
  Task<Result<std::string>> Read();

  // Read that also reports the version observed.
  Task<Result<VersionedValue>> ReadVersioned();

  // Buffers new contents; durable only after Commit(). Whole-file
  // semantics, as in the paper.
  Status Write(std::string contents);

  Task<Status> Commit();
  Task<void> Abort();

  bool finished() const;

  // Version a successful write Commit() installed; 0 before that (and for
  // read-only transactions). History recorders use it to tie the ack to a
  // point in the suite's version order.
  Version committed_version() const;

 private:
  friend class SuiteClient;
  friend class MultiSuiteTransaction;
  struct State;
  explicit SuiteTransaction(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class SuiteClient {
 public:
  // `rpc` and `coordinator` live on the client's host. `config` is the
  // client's (possibly stale) view of the suite prefix.
  SuiteClient(Network* net, RpcEndpoint* rpc, Coordinator* coordinator, SuiteConfig config,
              SuiteClientOptions options = {});

  // Attaches a weak representative (cache) on this client's host.
  void AttachCache(WeakRepresentative* cache) { cache_ = cache; }

  // Begins a transaction. A valid `parent` makes the transaction's
  // "client.txn" span a child of it (the one-shot helpers pass their root
  // span so retried attempts land under one tree); with tracing enabled and
  // no parent, the transaction span is itself a root.
  SuiteTransaction Begin(TraceContext parent = TraceContext());

  // One-shot helpers with bounded retry on lock conflicts: each retry is a
  // fresh transaction.
  Task<Result<std::string>> ReadOnce(int retries = 8);
  Task<Status> WriteOnce(std::string contents, int retries = 8);

  // Reads the current prefix from any representative and adopts it if newer.
  Task<Status> RefreshConfigFromPrefix();

  // Changes the suite's vote assignment / quorums: installs the new prefix
  // and the current contents at (old write quorum) ∪ (all new members),
  // atomically, under the OLD configuration's write rules. Lock conflicts
  // with concurrent transactions are retried (keeping the first attempt's
  // timestamp, so wait-die guarantees progress).
  Task<Status> Reconfigure(SuiteConfig new_config, int retries = 10);

  const SuiteConfig& config() const { return config_; }
  const SuiteClientStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset();
    probe_counts_.clear();
  }
  RpcEndpoint* rpc() { return rpc_; }

  // Swaps the probing policy at runtime (e.g. chaos sweeps rotating
  // strategies mid-run). Tuning changes (capacities, f_resilience)
  // invalidate cached strategies automatically even when config_version
  // does not move; a bare policy change just selects another cached slot.
  void SetStrategySpec(QuorumStrategySpec spec) { options_.strategy = std::move(spec); }
  const QuorumStrategySpec& strategy_spec() const { return options_.strategy; }

  // Observed probe distribution since the last stats reset: this client's
  // probes to `host` divided by all its probes (0 when idle), the max such
  // share, and a Gini coefficient of the shares (0 = perfectly even,
  // -> 1 = one-host hotspot). Exported as core.planner.* gauges.
  double ProbeShareOf(const std::string& host) const;
  double MaxProbeShare() const;
  double ProbeShareGini() const;

  // The solver's expected max probe share for the active policy, if a
  // strategy is cached (1.0 for deterministic policies with a cached plan,
  // 0.0 when nothing is cached yet).
  double ExpectedMaxShare() const;

  // Drops cached quorum plans (and their sampled link latencies). Needed
  // only when link costs change out of band; reconfiguration invalidates
  // automatically via the config version.
  void InvalidatePlanCache() {
    plan_cache_.Invalidate();
    links_.InvalidateLatencies();
  }

  // Registers this client's counters, labeled by host and suite name.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  friend class SuiteTransaction;
  friend class MultiSuiteTransaction;

  // Both carry user-declared constructors per the GCC 12 rule in
  // src/sim/task.h (they travel by value through coroutine machinery).
  struct ProbeReply {
    QuorumCandidate candidate;
    HostId host = kInvalidHost;
    VersionResp resp;

    ProbeReply() = default;
    ProbeReply(QuorumCandidate c, HostId h, VersionResp r)
        : candidate(std::move(c)), host(h), resp(std::move(r)) {}
  };
  struct GatherResult {
    std::vector<ProbeReply> replies;
    int votes = 0;
    Version current = 0;
    uint64_t max_config_version = 0;

    GatherResult() = default;
  };

  HostId ResolveHost(const std::string& name) const;
  Duration LatencyTo(const std::string& name) const;

  // Cached probing strategy for this client's config under `policy` with
  // the options' tuning (built once per config version; see PlanCache).
  // Shared ownership keeps a strategy alive for gathers suspended across a
  // cache invalidation.
  std::shared_ptr<const ProbingStrategy> PlanFor(QuorumStrategy policy);

  // Records a version observed at a representative (probe reply, data
  // fetch, or this client's own commit) in the version-hint cache.
  void NoteVersion(const std::string& host_name, Version version);

  // The probe target (index into `targets`) most likely to be both cheapest
  // and current, judged from the version-hint cache; targets.size() when a
  // piggyback request is not worth sending (e.g. the local weak-rep cache
  // already holds the hinted version).
  size_t PickFastPathTarget(const std::vector<QuorumCandidate>& targets) const;

  // Round-based quorum gather; records every lock-holding representative in
  // the transaction state (including stragglers that reply late). With
  // `want_data`, one first-round probe asks for piggybacked contents.
  Task<Result<GatherResult>> Gather(std::shared_ptr<SuiteTransaction::State> state,
                                    int required_votes, bool exclusive,
                                    bool want_data = false);

  // Fetches contents from the cheapest current member of `gather`.
  Task<Result<SuiteReadResp>> FetchData(std::shared_ptr<SuiteTransaction::State> state,
                                        const GatherResult& gather);

  // Best-effort background update of stale representatives.
  void SpawnRefreshes(const GatherResult& gather, Version current, std::string contents);

  Task<Result<std::string>> DoRead(std::shared_ptr<SuiteTransaction::State> state);
  Task<Status> DoCommit(std::shared_ptr<SuiteTransaction::State> state);
  Task<void> DoAbort(std::shared_ptr<SuiteTransaction::State> state);
  Task<Status> TryReconfigure(SuiteConfig new_config, TxnId txn);

  Network* net_;
  RpcEndpoint* rpc_;
  Coordinator* coordinator_;
  SuiteConfig config_;
  SuiteClientOptions options_;
  WeakRepresentative* cache_ = nullptr;
  SuiteClientStats stats_;
  // Quorum strategies memoized per (config_version, tuning, policy);
  // counts builds into stats_.plan_builds.
  PlanCache plan_cache_;
  // Shared host-id / link-latency lookup for probe resolution, plan
  // building, and strategy solving (one memo instead of three).
  mutable HostLinkCache links_;
  // Probes sent per representative host since the last stats reset; feeds
  // the core.planner.* load gauges.
  std::map<std::string, uint64_t> probe_counts_;
  // Version-hint cache: the newest committed version this client has
  // evidence of, and the last version observed at each representative.
  // Purely advisory — used to aim the piggyback request, never to decide
  // currency (that always takes a quorum).
  Version hint_version_ = 0;
  std::map<std::string, Version> rep_version_hints_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_SUITE_CLIENT_H_
