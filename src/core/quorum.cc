#include "src/core/quorum.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/strategy_solver.h"
#include "src/net/network.h"
#include "src/sim/random.h"

namespace wvote {

const char* QuorumStrategyName(QuorumStrategy s) {
  switch (s) {
    case QuorumStrategy::kLowestLatency:
      return "lowest-latency";
    case QuorumStrategy::kFewestMessages:
      return "fewest-messages";
    case QuorumStrategy::kBroadcast:
      return "broadcast";
    case QuorumStrategy::kUniformSpread:
      return "uniform-spread";
    case QuorumStrategy::kLoadOptimal:
      return "load-optimal";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// HostLinkCache
// ---------------------------------------------------------------------------

HostId HostLinkCache::Resolve(const std::string& name) {
  Entry& entry = entries_[name];
  if (entry.id == kInvalidHost) {
    Host* host = net_->FindHost(name);
    WVOTE_CHECK_MSG(host != nullptr, "unknown representative host");
    entry.id = host->id();
  }
  return entry.id;
}

Duration HostLinkCache::LatencyTo(const std::string& name) {
  const HostId there = Resolve(name);
  Entry& entry = entries_[name];
  if (!entry.have_latency) {
    entry.latency = net_->ExpectedLatency(self_, there) + net_->ExpectedLatency(there, self_);
    entry.have_latency = true;
  }
  return entry.latency;
}

void HostLinkCache::InvalidateLatencies() {
  for (auto& [name, entry] : entries_) {
    entry.have_latency = false;
  }
}

// ---------------------------------------------------------------------------
// QuorumPlanner
// ---------------------------------------------------------------------------

QuorumPlanner::QuorumPlanner(const SuiteConfig& config,
                             std::function<Duration(const std::string&)> latency_of) {
  for (size_t i = 0; i < config.representatives.size(); ++i) {
    const RepresentativeInfo& rep = config.representatives[i];
    if (rep.weak()) {
      continue;
    }
    voting_.push_back(QuorumCandidate{i, rep.host_name, rep.votes, latency_of(rep.host_name)});
  }
}

std::vector<QuorumCandidate> QuorumPlanner::Plan(int required_votes,
                                                 QuorumStrategy strategy) const {
  std::vector<QuorumCandidate> plan = voting_;
  switch (strategy) {
    case QuorumStrategy::kLowestLatency:
    case QuorumStrategy::kBroadcast:
    case QuorumStrategy::kUniformSpread:
    case QuorumStrategy::kLoadOptimal:
      // Probabilistic policies use the latency order as their base: a
      // sampled quorum's members probe cheapest-first, and widening after
      // failures follows the same order deterministic probing would.
      std::stable_sort(plan.begin(), plan.end(),
                       [](const QuorumCandidate& a, const QuorumCandidate& b) {
                         if (a.expected_latency != b.expected_latency) {
                           return a.expected_latency < b.expected_latency;
                         }
                         return a.votes > b.votes;  // more votes per probe first
                       });
      break;
    case QuorumStrategy::kFewestMessages:
      std::stable_sort(plan.begin(), plan.end(),
                       [](const QuorumCandidate& a, const QuorumCandidate& b) {
                         if (a.votes != b.votes) {
                           return a.votes > b.votes;
                         }
                         return a.expected_latency < b.expected_latency;
                       });
      break;
  }
  return plan;
}

size_t QuorumPlanner::PrefixCount(const std::vector<QuorumCandidate>& plan,
                                  int required_votes) {
  int votes = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    votes += plan[i].votes;
    if (votes >= required_votes) {
      return i + 1;
    }
  }
  return 0;
}

Duration QuorumPlanner::PrefixLatency(const std::vector<QuorumCandidate>& plan, size_t count) {
  Duration worst = Duration::Zero();
  for (size_t i = 0; i < count && i < plan.size(); ++i) {
    worst = std::max(worst, plan[i].expected_latency);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// ProbingStrategy
// ---------------------------------------------------------------------------

const QuorumDistribution* ProbingStrategy::DistributionFor(int required_votes) const {
  if (read_dist.valid() && read_dist.target_votes == required_votes) {
    return &read_dist;
  }
  if (write_dist.valid() && write_dist.target_votes == required_votes) {
    return &write_dist;
  }
  return nullptr;
}

std::vector<uint16_t> ProbingStrategy::SampleOrder(int required_votes, Rng* rng) const {
  const QuorumDistribution* dist = DistributionFor(required_votes);
  if (dist == nullptr) {
    return {};
  }
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(dist->cumulative.begin(), dist->cumulative.end(), u);
  const size_t pick = it == dist->cumulative.end()
                          ? dist->cumulative.size() - 1
                          : static_cast<size_t>(it - dist->cumulative.begin());
  const std::vector<uint16_t>& members = dist->quorums[pick];
  std::vector<uint16_t> out;
  out.reserve(order.size());
  out.insert(out.end(), members.begin(), members.end());
  // Remaining candidates, in base (latency) order, as widening fallbacks.
  size_t m = 0;
  for (uint16_t i = 0; i < static_cast<uint16_t>(order.size()); ++i) {
    if (m < members.size() && members[m] == i) {
      ++m;
      continue;
    }
    out.push_back(i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

namespace {

QuorumDistribution BuildDistribution(const std::vector<QuorumCandidate>& order,
                                     const QuorumStrategySpec& spec, int target_votes) {
  QuorumDistribution out;
  out.target_votes = target_votes;
  if (order.empty() || order.size() > kMaxStrategyHosts) {
    return out;  // fall back to deterministic probing
  }
  std::vector<int> votes;
  votes.reserve(order.size());
  for (const QuorumCandidate& c : order) {
    votes.push_back(c.votes);
  }
  std::vector<StrategyQuorum> quorums = EnumerateMinimalQuorums(votes, target_votes);
  if (quorums.empty()) {
    return out;
  }
  std::vector<double> capacities;
  if (!spec.capacities.empty()) {
    capacities.reserve(order.size());
    for (const QuorumCandidate& c : order) {
      const auto it = spec.capacities.find(c.host_name);
      capacities.push_back(it == spec.capacities.end() ? 1.0 : it->second);
    }
  }
  StrategySolution solution =
      spec.policy == QuorumStrategy::kLoadOptimal
          ? SolveLoadOptimal(quorums, order.size(), capacities, spec.f_resilience)
          : SolveUniform(quorums, order.size(), capacities);

  out.quorums.reserve(quorums.size());
  out.cumulative.reserve(quorums.size());
  double acc = 0;
  for (size_t q = 0; q < quorums.size(); ++q) {
    out.quorums.push_back(quorums[q].members);
    acc += solution.probability[q];
    out.cumulative.push_back(acc);
  }
  out.cumulative.back() = 1.0;  // absorb rounding
  out.shares = std::move(solution.shares);
  out.max_share = solution.max_share;
  out.share_lower_bound = solution.share_lower_bound;
  return out;
}

}  // namespace

PlanCache::PlanCache(std::function<Duration(const std::string&)> latency_of,
                     uint64_t* build_counter)
    : latency_of_(std::move(latency_of)), build_counter_(build_counter) {}

std::shared_ptr<const ProbingStrategy> PlanCache::Get(const SuiteConfig& config,
                                                      const QuorumStrategySpec& spec) {
  if (!have_config_version_ || config.config_version != config_version_ ||
      !cached_tuning_.SameTuning(spec)) {
    Invalidate();
    have_config_version_ = true;
    config_version_ = config.config_version;
    cached_tuning_ = spec;
  }
  const size_t slot = static_cast<size_t>(spec.policy);
  WVOTE_CHECK(slot < kNumStrategies);
  if (strategies_[slot] == nullptr) {
    // The preference order is independent of the vote target (see Plan);
    // the planner itself is rebuilt per config version so latencies are
    // re-sampled whenever the membership can have changed.
    QuorumPlanner planner(config, latency_of_);
    auto strategy = std::make_shared<ProbingStrategy>();
    strategy->order = planner.Plan(/*required_votes=*/0, spec.policy);
    if (spec.policy == QuorumStrategy::kUniformSpread ||
        spec.policy == QuorumStrategy::kLoadOptimal) {
      strategy->read_dist = BuildDistribution(strategy->order, spec, config.read_quorum);
      if (config.write_quorum != config.read_quorum) {
        strategy->write_dist = BuildDistribution(strategy->order, spec, config.write_quorum);
      }
    }
    strategies_[slot] = std::move(strategy);
    if (build_counter_ != nullptr) {
      ++*build_counter_;
    }
  }
  return strategies_[slot];
}

std::shared_ptr<const ProbingStrategy> PlanCache::Peek(QuorumStrategy policy) const {
  const size_t slot = static_cast<size_t>(policy);
  WVOTE_CHECK(slot < kNumStrategies);
  return strategies_[slot];
}

void PlanCache::Invalidate() {
  have_config_version_ = false;
  for (size_t i = 0; i < kNumStrategies; ++i) {
    strategies_[i] = nullptr;
  }
}

}  // namespace wvote
