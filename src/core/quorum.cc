#include "src/core/quorum.h"

#include <algorithm>

#include "src/common/check.h"

namespace wvote {

const char* QuorumStrategyName(QuorumStrategy s) {
  switch (s) {
    case QuorumStrategy::kLowestLatency:
      return "lowest-latency";
    case QuorumStrategy::kFewestMessages:
      return "fewest-messages";
    case QuorumStrategy::kBroadcast:
      return "broadcast";
  }
  return "?";
}

QuorumPlanner::QuorumPlanner(const SuiteConfig& config,
                             std::function<Duration(const std::string&)> latency_of) {
  for (size_t i = 0; i < config.representatives.size(); ++i) {
    const RepresentativeInfo& rep = config.representatives[i];
    if (rep.weak()) {
      continue;
    }
    voting_.push_back(QuorumCandidate{i, rep.host_name, rep.votes, latency_of(rep.host_name)});
  }
}

std::vector<QuorumCandidate> QuorumPlanner::Plan(int required_votes,
                                                 QuorumStrategy strategy) const {
  std::vector<QuorumCandidate> plan = voting_;
  switch (strategy) {
    case QuorumStrategy::kLowestLatency:
    case QuorumStrategy::kBroadcast:
      std::stable_sort(plan.begin(), plan.end(),
                       [](const QuorumCandidate& a, const QuorumCandidate& b) {
                         if (a.expected_latency != b.expected_latency) {
                           return a.expected_latency < b.expected_latency;
                         }
                         return a.votes > b.votes;  // more votes per probe first
                       });
      break;
    case QuorumStrategy::kFewestMessages:
      std::stable_sort(plan.begin(), plan.end(),
                       [](const QuorumCandidate& a, const QuorumCandidate& b) {
                         if (a.votes != b.votes) {
                           return a.votes > b.votes;
                         }
                         return a.expected_latency < b.expected_latency;
                       });
      break;
  }
  return plan;
}

size_t QuorumPlanner::PrefixCount(const std::vector<QuorumCandidate>& plan,
                                  int required_votes) {
  int votes = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    votes += plan[i].votes;
    if (votes >= required_votes) {
      return i + 1;
    }
  }
  return 0;
}

Duration QuorumPlanner::PrefixLatency(const std::vector<QuorumCandidate>& plan, size_t count) {
  Duration worst = Duration::Zero();
  for (size_t i = 0; i < count && i < plan.size(); ++i) {
    worst = std::max(worst, plan[i].expected_latency);
  }
  return worst;
}

PlanCache::PlanCache(std::function<Duration(const std::string&)> latency_of,
                     uint64_t* build_counter)
    : latency_of_(std::move(latency_of)), build_counter_(build_counter) {}

std::shared_ptr<const std::vector<QuorumCandidate>> PlanCache::Get(const SuiteConfig& config,
                                                                   QuorumStrategy strategy) {
  if (!have_config_version_ || config.config_version != config_version_) {
    Invalidate();
    have_config_version_ = true;
    config_version_ = config.config_version;
  }
  const size_t slot = static_cast<size_t>(strategy);
  WVOTE_CHECK(slot < kNumStrategies);
  if (plans_[slot] == nullptr) {
    // The preference order is independent of the vote target (see Plan);
    // the planner itself is rebuilt per config version so latencies are
    // re-sampled whenever the membership can have changed.
    QuorumPlanner planner(config, latency_of_);
    plans_[slot] = std::make_shared<const std::vector<QuorumCandidate>>(
        planner.Plan(/*required_votes=*/0, strategy));
    if (build_counter_ != nullptr) {
      ++*build_counter_;
    }
  }
  return plans_[slot];
}

void PlanCache::Invalidate() {
  have_config_version_ = false;
  for (size_t i = 0; i < kNumStrategies; ++i) {
    plans_[i] = nullptr;
  }
}

}  // namespace wvote
