#include "src/core/quorum.h"

#include <algorithm>

namespace wvote {

const char* QuorumStrategyName(QuorumStrategy s) {
  switch (s) {
    case QuorumStrategy::kLowestLatency:
      return "lowest-latency";
    case QuorumStrategy::kFewestMessages:
      return "fewest-messages";
    case QuorumStrategy::kBroadcast:
      return "broadcast";
  }
  return "?";
}

QuorumPlanner::QuorumPlanner(const SuiteConfig& config,
                             std::function<Duration(const std::string&)> latency_of) {
  for (size_t i = 0; i < config.representatives.size(); ++i) {
    const RepresentativeInfo& rep = config.representatives[i];
    if (rep.weak()) {
      continue;
    }
    voting_.push_back(QuorumCandidate{i, rep.host_name, rep.votes, latency_of(rep.host_name)});
  }
}

std::vector<QuorumCandidate> QuorumPlanner::Plan(int required_votes,
                                                 QuorumStrategy strategy) const {
  std::vector<QuorumCandidate> plan = voting_;
  switch (strategy) {
    case QuorumStrategy::kLowestLatency:
    case QuorumStrategy::kBroadcast:
      std::stable_sort(plan.begin(), plan.end(),
                       [](const QuorumCandidate& a, const QuorumCandidate& b) {
                         if (a.expected_latency != b.expected_latency) {
                           return a.expected_latency < b.expected_latency;
                         }
                         return a.votes > b.votes;  // more votes per probe first
                       });
      break;
    case QuorumStrategy::kFewestMessages:
      std::stable_sort(plan.begin(), plan.end(),
                       [](const QuorumCandidate& a, const QuorumCandidate& b) {
                         if (a.votes != b.votes) {
                           return a.votes > b.votes;
                         }
                         return a.expected_latency < b.expected_latency;
                       });
      break;
  }
  return plan;
}

size_t QuorumPlanner::PrefixCount(const std::vector<QuorumCandidate>& plan,
                                  int required_votes) {
  int votes = 0;
  for (size_t i = 0; i < plan.size(); ++i) {
    votes += plan[i].votes;
    if (votes >= required_votes) {
      return i + 1;
    }
  }
  return 0;
}

Duration QuorumPlanner::PrefixLatency(const std::vector<QuorumCandidate>& plan, size_t count) {
  Duration worst = Duration::Zero();
  for (size_t i = 0; i < count && i < plan.size(); ++i) {
    worst = std::max(worst, plan[i].expected_latency);
  }
  return worst;
}

}  // namespace wvote
