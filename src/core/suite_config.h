// Suite configuration: the "prefix" of a file suite.
//
// A SuiteConfig names every representative, assigns each its votes, and
// fixes the read and write quorums. Gifford stores this structure in the
// prefix of every representative, versioned by config_version, so that the
// configuration itself is replicated data and can be changed with the same
// quorum machinery (see SuiteClient::Reconfigure).
//
// Correctness constraints enforced by Validate():
//   r + w > V  — every read quorum intersects every write quorum, so a read
//                always sees at least one current representative;
//   2w > V     — any two write quorums intersect, so version numbers grow
//                monotonically and writes are totally ordered;
//   1 <= r, w <= V, and every vote weight >= 0 (0 = weak representative).

#ifndef WVOTE_SRC_CORE_SUITE_CONFIG_H_
#define WVOTE_SRC_CORE_SUITE_CONFIG_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/message.h"

namespace wvote {

struct RepresentativeInfo {
  std::string host_name;  // resolved to a HostId at deployment
  int votes = 0;          // 0 => weak representative (cache, never in quorums)

  bool weak() const { return votes == 0; }
};

struct SuiteConfig {
  std::string suite_name;
  uint64_t config_version = 1;
  std::vector<RepresentativeInfo> representatives;
  int read_quorum = 0;   // r
  int write_quorum = 0;  // w
  // Chaos negative controls only: Validate() skips the two intersection
  // checks (r + w > V, 2w > V) so a deliberately broken configuration can be
  // deployed and the consistency checker proven able to catch the resulting
  // stale reads. Structural checks still apply. Deliberately NOT serialized:
  // a prefix on the wire can never carry it.
  bool allow_unsafe_quorums = false;

  int TotalVotes() const;
  int NumVotingReps() const;

  // Checks the quorum-intersection invariants above.
  Status Validate() const;

  // Convenience constructors for common shapes.
  static SuiteConfig MakeUniform(std::string suite, std::vector<std::string> hosts, int r,
                                 int w);

  void AddRepresentative(std::string host, int votes);
  void AddWeakRepresentative(std::string host) { AddRepresentative(std::move(host), 0); }

  std::string Serialize() const;
  static Result<SuiteConfig> Parse(const std::string& bytes);

  std::string ToString() const;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_SUITE_CONFIG_H_
