// Cluster: one-call deployment of a weighted-voting system in simulation.
//
// Owns the simulator and network and wires up representative servers and
// client stacks (RPC endpoint + stable store + 2PC coordinator + suite
// client + optional weak-representative cache). Mirrors the shape of
// Gifford's deployment: file servers holding representatives, client
// machines running the voting algorithm.

#ifndef WVOTE_SRC_CORE_CLUSTER_H_
#define WVOTE_SRC_CORE_CLUSTER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/representative.h"
#include "src/core/suite_client.h"
#include "src/core/weak_rep.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/sim/simulator.h"
#include "src/trace/span.h"
#include "src/trace/trace.h"

namespace wvote {

struct ClusterOptions {
  uint64_t seed = 42;
  LatencyModel default_link = LatencyModel::Fixed(Duration::Millis(5));
  RepresentativeOptions rep_options;
  // Applied to every client host's 2PC coordinator (e.g. sync_phase2 for
  // runs that must execute the literal 3-RTT commit).
  CoordinatorOptions coordinator_options;
  // Root spans outliving this dump their whole span tree into the TraceLog
  // (TraceKind::kSlowOp). Zero disables the slow-op log.
  Duration slow_op_threshold = Duration::Zero();
  // Sim-time metrics scraping (the time-series layer). Zero disables; a
  // positive resolution attaches a Scraper to the simulator metronome at
  // construction (EnableScraping does the same after construction).
  // Scraping rides outside the timer wheel, so the event schedule — and any
  // golden replay pinned to it — is identical with or without it.
  Duration scrape_resolution = Duration::Zero();
  size_t scrape_window_capacity = 512;
  // With scraping on: evaluate SloEngine::DefaultRules() on every sealed
  // window, and (with breadcrumbs) record kSloBreach / kSloRecovered
  // transitions into the trace log.
  bool slo_engine = true;
  bool slo_breadcrumbs = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  TraceLog& trace() { return trace_; }

  // The cluster-wide causal tracer. Disabled by default (one branch per
  // span site); flip with tracer().Enable(true) before the traffic of
  // interest, then Snapshot()/ExportChromeTrace() afterwards.
  Tracer& tracer() { return tracer_; }

  // The cluster-wide metrics registry. Every component added through this
  // cluster (network, representatives, client stacks) registers its stats
  // here automatically; snapshot/export it for benches and tests.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Attaches the sim-time scraper (and, per options, the SLO engine) at
  // `resolution`, driven by the simulator metronome. No-op if scraping is
  // already on.
  void EnableScraping(Duration resolution);

  // Null until EnableScraping (or a nonzero options.scrape_resolution).
  Scraper* scraper() { return scraper_.get(); }
  const Scraper* scraper() const { return scraper_.get(); }
  SloEngine* slo() { return slo_.get(); }
  const SloEngine* slo() const { return slo_.get(); }

  // Flight-recorder JSON: the last `windows` time-series windows, every SLO
  // transition, and the trace log tail. Empty string when scraping is off.
  std::string DumpFlightRecord(size_t windows = 64, size_t trace_lines = 40) const;

  // Adds a file-server host running a RepresentativeServer.
  RepresentativeServer* AddRepresentative(const std::string& host_name);

  // Adds a client host with a full client stack for `config`. If
  // `with_cache` is true, a weak representative is attached.
  SuiteClient* AddClient(const std::string& host_name, const SuiteConfig& config,
                         SuiteClientOptions client_options = {}, bool with_cache = false);

  RepresentativeServer* representative(const std::string& host_name);
  WeakRepresentative* cache_of(const std::string& client_host_name);
  Coordinator* coordinator_of(const std::string& client_host_name);

  // Bootstraps `config` (prefix + initial contents, version 1) at every
  // voting representative. Must be called after the representatives exist.
  Status CreateSuite(const SuiteConfig& config, const std::string& initial_contents);

  // Pumps the simulation until `task` completes and returns its result.
  // Aborts if the event queue drains first (the task deadlocked).
  template <typename T>
  T RunTask(Task<T> task) {
    std::optional<T> out;
    Spawn(CaptureInto(std::move(task), &out));
    while (!out.has_value() && sim_.StepOne()) {
    }
    WVOTE_CHECK_MSG(out.has_value(), "task did not complete (simulation went idle)");
    return std::move(*out);
  }

  // Like RunTask but bounded by simulated time; nullopt if the task did not
  // complete before `limit` elapsed (e.g. blocked by a partition).
  template <typename T>
  std::optional<T> RunTaskFor(Task<T> task, Duration limit) {
    std::optional<T> out;
    Spawn(CaptureInto(std::move(task), &out));
    const TimePoint deadline = sim_.Now() + limit;
    while (!out.has_value() && sim_.Now() <= deadline && sim_.StepOne()) {
    }
    return out;
  }

 private:
  template <typename T>
  static Task<void> CaptureInto(Task<T> task, std::optional<T>* out) {
    out->emplace(co_await std::move(task));
  }

  struct ClientStack {
    std::unique_ptr<RpcEndpoint> rpc;
    std::unique_ptr<StableStore> store;
    std::unique_ptr<Coordinator> coordinator;
    std::unique_ptr<WeakRepresentative> cache;
    std::vector<std::unique_ptr<SuiteClient>> clients;
  };

  ClusterOptions options_;
  // Declared first so it outlives every component that registers into it
  // (the registry destructor never reads its sources; snapshots can only be
  // taken while the cluster — and thus every source — is alive).
  MetricsRegistry metrics_;
  Simulator sim_;
  TraceLog trace_;
  // Declared before net_: the network (and every component reached through
  // it) holds a raw pointer to the tracer.
  Tracer tracer_;
  Network net_;
  std::unique_ptr<Scraper> scraper_;
  std::unique_ptr<SloEngine> slo_;
  std::map<std::string, std::unique_ptr<RepresentativeServer>> reps_;
  std::map<std::string, ClientStack> clients_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_CLUSTER_H_
