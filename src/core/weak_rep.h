// Weak representative: a zero-vote cached copy of a suite.
//
// Gifford's weak representatives hold no votes, so they can never decide
// currency — but once a read quorum of version numbers establishes the
// current version, a weak copy at that version can serve the data locally,
// eliminating the bulk transfer. They are typically placed on (or near) the
// client's own host.
//
// The cache here is volatile (cleared on host crash): correctness never
// depends on it, only the version check does, and that always comes from
// voting representatives.

#ifndef WVOTE_SRC_CORE_WEAK_REP_H_
#define WVOTE_SRC_CORE_WEAK_REP_H_

#include <map>
#include <string>

#include "src/core/types.h"
#include "src/net/host.h"
#include "src/obs/metrics.h"

namespace wvote {

struct WeakRepStats {
  uint64_t hits = 0;     // version-checked local serves
  uint64_t misses = 0;   // stale or absent; bulk fetch required
  uint64_t updates = 0;  // entries installed/refreshed
  // Tripwire, zero by construction: a lookup whose quorum-proven "current"
  // version is OLDER than a copy this cache already saw committed. That can
  // only happen if a read quorum missed a write — i.e. r + w > V was
  // violated (e.g. by a bad reconfiguration). The staleness-never SLO rule
  // watches it.
  uint64_t stale_serves = 0;

  void Reset() { *this = WeakRepStats{}; }
  // Registers every field as `core.weak_rep.*{labels}`; this struct must
  // outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {}) {
    registry->RegisterCounter("core.weak_rep.hits", labels, &hits);
    registry->RegisterCounter("core.weak_rep.misses", labels, &misses);
    registry->RegisterCounter("core.weak_rep.updates", labels, &updates);
    registry->RegisterCounter("core.weak_rep.stale_serves", labels, &stale_serves);
    registry->AddResetHook([this]() { Reset(); });
  }
};

class WeakRepresentative {
 public:
  explicit WeakRepresentative(Host* host) : host_(host) {
    host_->AddCrashListener([this]() { cache_.clear(); });
  }

  // Returns the cached contents iff the cached version equals
  // `current_version` as established by a quorum of voting representatives.
  const std::string* Lookup(const std::string& suite, Version current_version) {
    auto it = cache_.find(suite);
    if (it != cache_.end() && it->second.version == current_version) {
      ++stats_.hits;
      return &it->second.contents;
    }
    if (it != cache_.end() && it->second.version > current_version) {
      ++stats_.stale_serves;
    }
    ++stats_.misses;
    return nullptr;
  }

  // Version of the cached copy without a currency claim (0 if absent).
  // Unlike Lookup this counts no hit/miss — it only lets the client judge
  // whether a bulk transfer (or a piggybacked one) is likely needed.
  Version PeekVersion(const std::string& suite) const {
    auto it = cache_.find(suite);
    return it == cache_.end() ? 0 : it->second.version;
  }

  // Installs contents observed at `version`; keeps only the newest.
  void Update(const std::string& suite, Version version, std::string contents) {
    VersionedValue& entry = cache_[suite];
    if (version >= entry.version) {
      entry.version = version;
      entry.contents = std::move(contents);
      ++stats_.updates;
    }
  }

  void Invalidate(const std::string& suite) { cache_.erase(suite); }

  const WeakRepStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this cache's counters, labeled by host name.
  void RegisterMetrics(MetricsRegistry* registry) {
    stats_.RegisterWith(registry, {{"host", host_->name()}});
  }

 private:
  Host* host_;
  std::map<std::string, VersionedValue> cache_;
  WeakRepStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_WEAK_REP_H_
