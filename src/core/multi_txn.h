// Transactions spanning multiple file suites.
//
// Gifford's file servers ran general transactions — a single transaction
// could read and write several files, each replicated as its own suite with
// its own vote assignment. MultiSuiteTransaction provides that: one
// transaction identifier, per-suite quorum gathers under it, and a single
// two-phase commit across the union of every written suite's quorum, so the
// updates become visible atomically everywhere.
//
// All involved SuiteClients must share one host's stack (same RpcEndpoint
// and Coordinator); they may describe suites with entirely different
// representatives, votes, and quorums.

#ifndef WVOTE_SRC_CORE_MULTI_TXN_H_
#define WVOTE_SRC_CORE_MULTI_TXN_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/suite_client.h"

namespace wvote {

class MultiSuiteTransaction {
 public:
  // `suites` name the participating clients; keys are only labels for the
  // caller's convenience (commonly the suite names).
  explicit MultiSuiteTransaction(Coordinator* coordinator);
  ~MultiSuiteTransaction();

  MultiSuiteTransaction(MultiSuiteTransaction&&) = default;

  // Quorum read of `suite` within this transaction (read-your-writes and
  // repeated-read stability per suite, as in SuiteTransaction).
  Task<Result<std::string>> Read(SuiteClient* suite);

  // Buffers new contents for `suite`; installed atomically with every other
  // buffered write at Commit.
  Status Write(SuiteClient* suite, std::string contents);

  // Gathers a write quorum for every written suite, then runs ONE two-phase
  // commit across the union of their members. Either every suite moves to
  // its new version or none does.
  Task<Status> Commit();

  Task<void> Abort();

  bool finished() const { return finished_; }

 private:
  struct SuiteEntry {
    SuiteClient* client = nullptr;
    std::shared_ptr<SuiteTransaction::State> state;
  };

  SuiteEntry& EntryFor(SuiteClient* suite);

  Coordinator* coordinator_;
  TxnId txn_;
  bool finished_ = false;
  std::map<SuiteClient*, SuiteEntry> entries_;
  // Root span for the whole cross-suite transaction; every suite's phase
  // spans parent here. Opened lazily at the first suite touch (the
  // constructor has no Network to ask for the tracer).
  bool trace_opened_ = false;
  Tracer* tracer_ = nullptr;
  TraceContext trace_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CORE_MULTI_TXN_H_
