#include "src/core/cluster.h"

#include <cstdio>
#include <utility>

#include "src/obs/flight_recorder.h"

namespace wvote {

Cluster::Cluster(ClusterOptions options)
    : options_(options), sim_(options.seed), trace_(&sim_), tracer_(&sim_), net_(&sim_) {
  net_.SetDefaultLink(options_.default_link);
  net_.SetTraceLog(&trace_);
  // Before any host is added: every component picks the tracer up from the
  // network at construction time.
  net_.SetTracer(&tracer_);
  tracer_.RegisterMetrics(&metrics_);
  if (options_.slow_op_threshold > Duration::Zero()) {
    tracer_.SetSlowOpLog(&trace_, options_.slow_op_threshold);
  }
  tracer_.SetHostNamer([this](HostId id) {
    Host* host = net_.host(id);
    return host != nullptr ? host->name() : std::to_string(id);
  });
  net_.RegisterMetrics(&metrics_);
  sim_.RegisterMetrics(&metrics_);
  if (options_.scrape_resolution > Duration::Zero()) {
    EnableScraping(options_.scrape_resolution);
  }
}

void Cluster::EnableScraping(Duration resolution) {
  if (scraper_ != nullptr) {
    return;
  }
  ScraperOptions sopts;
  sopts.resolution = resolution;
  sopts.window_capacity = options_.scrape_window_capacity;
  scraper_ = std::make_unique<Scraper>(&metrics_, sopts);
  if (options_.slo_engine) {
    slo_ = std::make_unique<SloEngine>(SloEngine::DefaultRules());
    if (options_.slo_breadcrumbs) {
      slo_->AddListener([this](const SloEvent& ev) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s value=%.4g limit=%.4g", ev.rule.c_str(), ev.value,
                      ev.limit);
        trace_.Record(kInvalidHost,
                      ev.breach ? TraceKind::kSloBreach : TraceKind::kSloRecovered, buf);
      });
    }
    scraper_->AddObserver(
        [this](TimePoint now, const TimeSeriesStore& store) { slo_->Evaluate(now, store); });
  }
  // The metronome fires outside the timer wheel: no event nodes, no
  // sequence numbers, so replays with and without scraping are bit-exact.
  sim_.SetMetronome(resolution, [this](TimePoint now) { scraper_->ScrapeAt(now); });
}

std::string Cluster::DumpFlightRecord(size_t windows, size_t trace_lines) const {
  if (scraper_ == nullptr) {
    return "";
  }
  std::vector<std::string> tail;
  const std::string dump = trace_.Dump(trace_lines);
  size_t start = 0;
  while (start < dump.size()) {
    size_t end = dump.find('\n', start);
    if (end == std::string::npos) {
      end = dump.size();
    }
    if (end > start) {
      tail.push_back(dump.substr(start, end - start));
    }
    start = end + 1;
  }
  return wvote::DumpFlightRecord(scraper_->store(), slo_.get(), tail, windows);
}

RepresentativeServer* Cluster::AddRepresentative(const std::string& host_name) {
  WVOTE_CHECK_MSG(reps_.find(host_name) == reps_.end(), "duplicate representative host");
  Host* host = net_.AddHost(host_name);
  auto server = std::make_unique<RepresentativeServer>(&net_, host, options_.rep_options);
  server->RegisterMetrics(&metrics_);
  RepresentativeServer* raw = server.get();
  reps_[host_name] = std::move(server);
  return raw;
}

SuiteClient* Cluster::AddClient(const std::string& host_name, const SuiteConfig& config,
                                SuiteClientOptions client_options, bool with_cache) {
  auto it = clients_.find(host_name);
  if (it == clients_.end()) {
    Host* host = net_.AddHost(host_name);
    ClientStack stack;
    stack.rpc = std::make_unique<RpcEndpoint>(&net_, host);
    stack.store =
        std::make_unique<StableStore>(&sim_, host, options_.rep_options.disk_write_latency,
                                      options_.rep_options.disk_read_latency);
    stack.coordinator = std::make_unique<Coordinator>(stack.rpc.get(), stack.store.get(),
                                                      options_.coordinator_options);
    // The coordinator's decision log writes to this store; without the
    // tracer its phase.disk spans would silently vanish.
    stack.store->SetTracer(&tracer_);
    stack.rpc->RegisterMetrics(&metrics_);
    stack.store->RegisterMetrics(&metrics_);
    stack.coordinator->RegisterMetrics(&metrics_);
    it = clients_.emplace(host_name, std::move(stack)).first;
  }
  ClientStack& stack = it->second;
  if (with_cache && !stack.cache) {
    stack.cache = std::make_unique<WeakRepresentative>(stack.rpc->host());
    stack.cache->RegisterMetrics(&metrics_);
  }
  auto client = std::make_unique<SuiteClient>(&net_, stack.rpc.get(), stack.coordinator.get(),
                                              config, client_options);
  client->RegisterMetrics(&metrics_);
  if (with_cache) {
    client->AttachCache(stack.cache.get());
  }
  SuiteClient* raw = client.get();
  stack.clients.push_back(std::move(client));
  return raw;
}

RepresentativeServer* Cluster::representative(const std::string& host_name) {
  auto it = reps_.find(host_name);
  return it == reps_.end() ? nullptr : it->second.get();
}

WeakRepresentative* Cluster::cache_of(const std::string& client_host_name) {
  auto it = clients_.find(client_host_name);
  return it == clients_.end() ? nullptr : it->second.cache.get();
}

Coordinator* Cluster::coordinator_of(const std::string& client_host_name) {
  auto it = clients_.find(client_host_name);
  return it == clients_.end() ? nullptr : it->second.coordinator.get();
}

Status Cluster::CreateSuite(const SuiteConfig& config, const std::string& initial_contents) {
  WVOTE_RETURN_IF_ERROR(config.Validate());
  VersionedValue initial{1, initial_contents};
  for (const RepresentativeInfo& rep : config.representatives) {
    if (rep.weak()) {
      continue;  // weak representatives are client-side caches, not servers
    }
    RepresentativeServer* server = representative(rep.host_name);
    if (server == nullptr) {
      return NotFoundError("no representative server on host " + rep.host_name);
    }
    Status st = RunTask(server->BootstrapSuite(config, initial));
    WVOTE_RETURN_IF_ERROR(st);
  }
  return Status::Ok();
}

}  // namespace wvote
