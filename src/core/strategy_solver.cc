#include "src/core/strategy_solver.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace wvote {

namespace {

// Fraction of total probability reserved (split evenly) for the support
// floor under an f-resilience constraint. Small enough not to disturb the
// optimum measurably, large enough that every quorum stays live.
constexpr double kResilienceFloorMass = 0.02;

std::vector<double> NormalizedCapacities(size_t num_hosts,
                                         const std::vector<double>& capacities) {
  std::vector<double> caps(num_hosts, 1.0);
  if (!capacities.empty()) {
    WVOTE_CHECK_MSG(capacities.size() == num_hosts,
                    "capacity vector size must match host count");
    for (size_t h = 0; h < num_hosts; ++h) {
      WVOTE_CHECK_MSG(capacities[h] > 0, "capacities must be positive");
      caps[h] = capacities[h];
    }
  }
  // Scale to mean 1 so loads read as "fraction of ops, capacity-adjusted"
  // whatever units the caller used.
  double sum = 0;
  for (double c : caps) {
    sum += c;
  }
  const double mean = sum / static_cast<double>(num_hosts);
  for (double& c : caps) {
    c /= mean;
  }
  return caps;
}

// Loads, shares, and bounds for a fixed distribution.
StrategySolution Evaluate(const std::vector<StrategyQuorum>& quorums, size_t num_hosts,
                          const std::vector<double>& caps, std::vector<double> probability) {
  StrategySolution out;
  out.probability = std::move(probability);
  out.load.assign(num_hosts, 0.0);
  out.shares.assign(num_hosts, 0.0);

  std::vector<double> touch(num_hosts, 0.0);  // P[op touches h]
  double probes_per_op = 0;
  for (size_t q = 0; q < quorums.size(); ++q) {
    for (uint16_t h : quorums[q].members) {
      touch[h] += out.probability[q];
    }
    probes_per_op +=
        out.probability[q] * static_cast<double>(quorums[q].members.size());
  }
  out.max_load = 0;
  out.max_share = 0;
  for (size_t h = 0; h < num_hosts; ++h) {
    out.load[h] = touch[h] / caps[h];
    out.shares[h] = probes_per_op > 0 ? touch[h] / probes_per_op : 0.0;
    out.max_load = std::max(out.max_load, out.load[h]);
    out.max_share = std::max(out.max_share, out.shares[h]);
  }

  // Lower bound on any strategy's max share: probes spread at best evenly
  // over all hosts (1/n); and a host present in every quorum receives at
  // least one of at most max-quorum-size probes per op.
  size_t widest = 1;
  uint32_t mandatory = quorums.empty() ? 0 : ~uint32_t{0};
  for (const StrategyQuorum& q : quorums) {
    widest = std::max(widest, q.members.size());
    mandatory &= q.mask;
  }
  out.share_lower_bound = num_hosts > 0 ? 1.0 / static_cast<double>(num_hosts) : 0.0;
  if (mandatory != 0) {
    out.share_lower_bound =
        std::max(out.share_lower_bound, 1.0 / static_cast<double>(widest));
  }
  return out;
}

}  // namespace

std::vector<StrategyQuorum> EnumerateMinimalQuorums(const std::vector<int>& votes,
                                                    int target) {
  std::vector<StrategyQuorum> out;
  const size_t n = votes.size();
  if (n == 0 || n > kMaxStrategyHosts || target <= 0) {
    return out;
  }
  const uint32_t limit = uint32_t{1} << n;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    int sum = 0;
    for (size_t h = 0; h < n; ++h) {
      if (mask & (uint32_t{1} << h)) {
        sum += votes[h];
      }
    }
    if (sum < target) {
      continue;
    }
    // Minimal <=> every member essential (all votes are positive, so a
    // proper subset reaching the target would have a droppable member).
    bool minimal = true;
    for (size_t h = 0; h < n && minimal; ++h) {
      if ((mask & (uint32_t{1} << h)) && sum - votes[h] >= target) {
        minimal = false;
      }
    }
    if (!minimal) {
      continue;
    }
    StrategyQuorum q;
    q.mask = mask;
    for (size_t h = 0; h < n; ++h) {
      if (mask & (uint32_t{1} << h)) {
        q.members.push_back(static_cast<uint16_t>(h));
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

bool QuorumsResilient(const std::vector<StrategyQuorum>& quorums, size_t num_hosts, int f) {
  if (f <= 0) {
    return !quorums.empty();
  }
  if (quorums.empty() || static_cast<size_t>(f) >= num_hosts) {
    return false;
  }
  // Every f-subset of hosts must leave some quorum untouched.
  const uint32_t limit = uint32_t{1} << num_hosts;
  for (uint32_t removed = 1; removed < limit; ++removed) {
    if (__builtin_popcount(removed) != f) {
      continue;
    }
    bool survives = false;
    for (const StrategyQuorum& q : quorums) {
      if ((q.mask & removed) == 0) {
        survives = true;
        break;
      }
    }
    if (!survives) {
      return false;
    }
  }
  return true;
}

StrategySolution SolveUniform(const std::vector<StrategyQuorum>& quorums, size_t num_hosts,
                              const std::vector<double>& capacities) {
  WVOTE_CHECK_MSG(!quorums.empty(), "no quorums to distribute over");
  const std::vector<double> caps = NormalizedCapacities(num_hosts, capacities);
  std::vector<double> probability(quorums.size(),
                                  1.0 / static_cast<double>(quorums.size()));
  return Evaluate(quorums, num_hosts, caps, std::move(probability));
}

StrategySolution SolveLoadOptimal(const std::vector<StrategyQuorum>& quorums,
                                  size_t num_hosts, const std::vector<double>& capacities,
                                  int f_resilience, int iterations) {
  WVOTE_CHECK_MSG(!quorums.empty(), "no quorums to distribute over");
  const std::vector<double> caps = NormalizedCapacities(num_hosts, capacities);
  const size_t nq = quorums.size();
  const double floor =
      f_resilience > 0 ? kResilienceFloorMass / static_cast<double>(nq) : 0.0;

  // Minimax load as a zero-sum game: the strategy picks a quorum, an
  // adversary picks a host, and the payoff is the picked host's
  // capacity-scaled usage by the picked quorum. Two-sided multiplicative
  // weights (adversary exponentiates toward loaded hosts, strategy away
  // from adversary-weighted quorums) converges to the game's value — the
  // minimax load — in the average iterate. A one-sided update billing each
  // quorum its busiest member's load is NOT enough: when every quorum
  // touches some max-loaded host the costs tie and the update freezes at a
  // non-optimal point (e.g. majority-of-3 with one high-capacity host).
  std::vector<double> pi(nq, 1.0 / static_cast<double>(nq));
  std::vector<double> w(num_hosts, 1.0 / static_cast<double>(num_hosts));
  std::vector<double> load(num_hosts, 0.0);
  std::vector<double> cost(nq, 0.0);
  std::vector<double> avg(nq, 0.0);
  std::vector<double> best = pi;

  auto max_load_of = [&](const std::vector<double>& p) {
    std::fill(load.begin(), load.end(), 0.0);
    for (size_t q = 0; q < nq; ++q) {
      for (uint16_t h : quorums[q].members) {
        load[h] += p[q] / caps[h];
      }
    }
    double max_load = 0;
    for (double l : load) {
      max_load = std::max(max_load, l);
    }
    return max_load;
  };

  double best_max_load = max_load_of(best);
  const double eta = 0.1;
  for (int it = 0; it < iterations; ++it) {
    const double max_load = max_load_of(pi);  // fills `load` as a side effect
    if (max_load <= 0) {
      break;
    }
    if (max_load < best_max_load) {
      best_max_load = max_load;
      best = pi;
    }
    // Adversary: weight toward the hosts the current strategy loads most.
    double w_total = 0;
    for (size_t h = 0; h < num_hosts; ++h) {
      w[h] *= std::exp(eta * load[h] / max_load);
      w_total += w[h];
    }
    for (double& x : w) {
      x /= w_total;
    }
    // Strategy: drain mass from quorums the adversary currently prices high.
    double max_cost = 0;
    for (size_t q = 0; q < nq; ++q) {
      cost[q] = 0;
      for (uint16_t h : quorums[q].members) {
        cost[q] += w[h] / caps[h];
      }
      max_cost = std::max(max_cost, cost[q]);
    }
    if (max_cost <= 0) {
      break;
    }
    double total = 0;
    for (size_t q = 0; q < nq; ++q) {
      pi[q] *= std::exp(-eta * cost[q] / max_cost);
      total += pi[q];
    }
    for (double& p : pi) {
      p /= total;
    }
    // Average the second half of the trajectory (the early iterates still
    // carry the uniform start; the averaged tail is the Nash approximation).
    if (it >= iterations / 2) {
      for (size_t q = 0; q < nq; ++q) {
        avg[q] += pi[q];
      }
    }
  }

  double avg_total = 0;
  for (double a : avg) {
    avg_total += a;
  }
  if (avg_total > 0) {
    for (double& a : avg) {
      a /= avg_total;
    }
    if (max_load_of(avg) < best_max_load) {
      best = avg;
    }
  }

  if (floor > 0) {
    // Clamp to the support floor, paying for it proportionally out of the
    // above-floor mass (one pass is enough: the floor mass is tiny).
    double deficit = 0;
    double above = 0;
    for (double p : best) {
      if (p < floor) {
        deficit += floor - p;
      } else {
        above += p - floor;
      }
    }
    if (deficit > 0 && above > 0) {
      const double scale = (above - deficit) / above;
      for (double& p : best) {
        p = p < floor ? floor : floor + (p - floor) * scale;
      }
    }
  }
  return Evaluate(quorums, num_hosts, caps, std::move(best));
}

}  // namespace wvote
