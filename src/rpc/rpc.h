// Typed request/response RPC over the simulated network.
//
// One RpcEndpoint claims a host's inbox. Services register a coroutine
// handler per request type (dispatch is by typeid of the payload struct);
// clients issue Call<Req, Resp>() and await a Result<Resp> that resolves to
// the response or to a TIMEOUT / ABORTED status.
//
// Failure semantics mirror a datagram network with volatile servers:
//   * lost request or lost reply -> client timeout;
//   * server crash mid-handler  -> no reply is sent -> client timeout;
//   * client crash              -> all outstanding calls resolve ABORTED
//     (their sessions are being torn down anyway).
//
// CallWithRetry layers bounded retransmission on top for idempotent
// requests (version-number inquiries and other reads).

#ifndef WVOTE_SRC_RPC_RPC_H_
#define WVOTE_SRC_RPC_RPC_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <typeindex>
#include <utility>

#include "src/common/status.h"
#include "src/net/network.h"
#include "src/sim/future.h"
#include "src/sim/task.h"

namespace wvote {

// Wire-size attribution: messages that carry bulk data (file contents)
// implement ApproxBytes(); everything else is accounted a small constant.
template <typename T>
size_t ApproxWireSize(const T& value) {
  if constexpr (requires { value.ApproxBytes(); }) {
    return value.ApproxBytes();
  } else {
    return 64;
  }
}

// Span naming: request structs that declare `static constexpr const char*
// kRpcName` get "rpc.<Name>" / "handle.<Name>" spans; the rest fall back to
// a generic label.
template <typename T>
constexpr const char* RpcMethodName() {
  if constexpr (requires { T::kRpcName; }) {
    return T::kRpcName;
  } else {
    return "request";
  }
}

// Starts a child span for one side of an RPC, allocating the name only when
// the span will actually be recorded (disabled tracing stays one branch).
inline TraceContext StartRpcSpan(Tracer* tracer, const TraceContext& parent,
                                 HostId host, const char* prefix, const char* method) {
  if (tracer == nullptr || !tracer->enabled() || !parent.valid()) {
    return TraceContext();
  }
  return tracer->StartChild(parent, host, std::string(prefix) + method);
}

struct RpcStats {
  uint64_t calls_started = 0;
  uint64_t calls_ok = 0;
  uint64_t calls_timeout = 0;
  uint64_t calls_aborted = 0;
  uint64_t requests_handled = 0;

  void Reset() { *this = RpcStats{}; }
  // Registers every field as `rpc.endpoint.*{labels}`; this struct must
  // outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {}) {
    registry->RegisterCounter("rpc.endpoint.calls_started", labels, &calls_started);
    registry->RegisterCounter("rpc.endpoint.calls_ok", labels, &calls_ok);
    registry->RegisterCounter("rpc.endpoint.calls_timeout", labels, &calls_timeout);
    registry->RegisterCounter("rpc.endpoint.calls_aborted", labels, &calls_aborted);
    registry->RegisterCounter("rpc.endpoint.requests_handled", labels, &requests_handled);
    registry->AddResetHook([this]() { Reset(); });
  }
};

class RpcEndpoint {
 public:
  RpcEndpoint(Network* net, Host* host) : net_(net), host_(host) {
    host_->SetMessageHandler([this](Message msg) { OnMessage(std::move(msg)); });
    host_->AddCrashListener([this]() { OnCrash(); });
  }

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  Host* host() { return host_; }
  HostId host_id() const { return host_->id(); }
  Network* network() { return net_; }
  Simulator* sim() { return net_->sim(); }
  const RpcStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this endpoint's counters, labeled by host name.
  void RegisterMetrics(MetricsRegistry* registry) {
    stats_.RegisterWith(registry, {{"host", host_->name()}});
  }

  // Registers the handler for requests of type Req. The handler runs as a
  // detached coroutine on this host; its Result is sent back as the reply
  // unless the host has crashed in the meantime.
  template <typename Req, typename Resp>
  void Handle(std::function<Task<Result<Resp>>(HostId, Req)> handler) {
    std::function<Task<Result<Resp>>(HostId, Req, TraceContext)> traced =
        [handler = std::move(handler)](HostId from, Req req, TraceContext) {
          return handler(from, std::move(req));
        };
    HandleTraced<Req, Resp>(std::move(traced));
  }

  // Like Handle, but the handler also receives the server-side span context
  // (the "handle.<Req>" span) so it can record deeper child spans — lock
  // waits, disk flushes — under the caller's trace.
  template <typename Req, typename Resp>
  void HandleTraced(std::function<Task<Result<Resp>>(HostId, Req, TraceContext)> handler) {
    auto [it, inserted] = handlers_.emplace(
        std::type_index(typeid(Req)),
        [this, handler = std::move(handler)](HostId from, uint64_t call_id, std::any body,
                                             TraceContext trace) {
          // Bind to a named object before the coroutine call (GCC 12 rule in
          // src/sim/task.h).
          Req req = std::any_cast<Req>(std::move(body));
          Spawn(RunHandler<Req, Resp>(handler, from, call_id, std::move(req), trace));
        });
    WVOTE_CHECK_MSG(inserted, "duplicate RPC handler registration");
  }

  // Issues one request and awaits the reply or the timeout, whichever comes
  // first. A valid `ctx` opens an "rpc.<Req>" child span covering the round
  // trip and rides the envelope so the server parents its work under it.
  template <typename Req, typename Resp>
  Task<Result<Resp>> Call(HostId to, Req req, Duration timeout,
                          TraceContext ctx = TraceContext()) {
    ++stats_.calls_started;
    Tracer* tracer = net_->tracer();
    TraceContext call_span = StartRpcSpan(tracer, ctx, host_id(), "rpc.", RpcMethodName<Req>());
    if (!host_->up()) {
      ++stats_.calls_aborted;
      if (tracer != nullptr) {
        tracer->EndWith(call_span, "caller down");
      }
      co_return AbortedError("caller host down");
    }

    const uint64_t call_id = next_call_id_++;
    Promise<Result<std::any>> promise(sim());
    Future<Result<std::any>> future = promise.GetFuture();

    EventHandle timeout_event = sim()->Schedule(timeout, [promise]() mutable {
      promise.Set(TimeoutError("rpc timeout"));
    });
    outstanding_.emplace(call_id, promise);

    Envelope env;
    env.is_request = true;
    env.call_id = call_id;
    env.trace = call_span.valid() ? call_span : ctx;
    env.body = std::move(req);
    const size_t bytes = ApproxWireSize(std::any_cast<const Req&>(env.body));
    net_->Send(host_id(), to, std::move(env), bytes);

    Result<std::any> raw = co_await std::move(future);
    timeout_event.Cancel();
    outstanding_.erase(call_id);

    if (!raw.ok()) {
      if (raw.status().code() == StatusCode::kTimeout) {
        ++stats_.calls_timeout;
      } else {
        ++stats_.calls_aborted;
      }
      if (tracer != nullptr) {
        tracer->EndWith(call_span,
                        raw.status().code() == StatusCode::kTimeout ? "timeout" : "aborted");
      }
      co_return raw.status();
    }
    ++stats_.calls_ok;
    if (tracer != nullptr) {
      tracer->End(call_span);
    }
    co_return std::any_cast<Result<Resp>>(std::move(raw.value()));
  }

  // Retransmits an idempotent request up to `attempts` times on timeout.
  // Non-timeout failures are returned immediately.
  template <typename Req, typename Resp>
  Task<Result<Resp>> CallWithRetry(HostId to, Req req, Duration timeout, int attempts,
                                   TraceContext ctx = TraceContext()) {
    Result<Resp> last = TimeoutError("no attempts made");
    for (int i = 0; i < attempts; ++i) {
      last = co_await Call<Req, Resp>(to, req, timeout, ctx);
      if (last.ok() || last.status().code() != StatusCode::kTimeout) {
        co_return last;
      }
    }
    co_return last;
  }

 private:
  struct Envelope {
    bool is_request = false;
    uint64_t call_id = 0;
    TraceContext trace;  // requests only: the caller's rpc.<Req> span
    std::any body;       // request: Req; response: Result<Resp>
    size_t body_bytes = 64;
  };

  template <typename Req, typename Resp>
  Task<void> RunHandler(std::function<Task<Result<Resp>>(HostId, Req, TraceContext)> handler,
                        HostId from, uint64_t call_id, Req req, TraceContext trace) {
    ++stats_.requests_handled;
    Tracer* tracer = net_->tracer();
    TraceContext span =
        StartRpcSpan(tracer, trace, host_id(), "handle.", RpcMethodName<Req>());
    TraceContext handler_ctx;
    if (span.valid()) {
      handler_ctx = span;
    } else {
      handler_ctx = trace;
    }
    Result<Resp> result = co_await handler(from, std::move(req), handler_ctx);
    if (tracer != nullptr) {
      if (result.ok()) {
        tracer->End(span);
      } else {
        tracer->EndWith(span, result.status().ToString());
      }
    }
    // Send drops the reply if this host crashed while handling; the caller
    // then times out, matching a real server that died before responding.
    size_t bytes = result.ok() ? ApproxWireSize(result.value()) : size_t{64};
    Envelope env;
    env.is_request = false;
    env.call_id = call_id;
    env.body = std::move(result);
    net_->Send(host_id(), from, std::move(env), bytes);
  }

  void OnMessage(Message msg) {
    auto* env = std::any_cast<Envelope>(&msg.payload);
    if (env == nullptr) {
      return;  // foreign traffic; not ours to decode
    }
    if (env->is_request) {
      auto it = handlers_.find(std::type_index(env->body.type()));
      if (it == handlers_.end()) {
        return;  // no such service on this host; caller times out
      }
      it->second(msg.from, env->call_id, std::move(env->body), env->trace);
      return;
    }
    auto it = outstanding_.find(env->call_id);
    if (it == outstanding_.end()) {
      return;  // reply after timeout/crash; drop
    }
    it->second.Set(std::move(env->body));
  }

  void OnCrash() {
    // Volatile call state dies with the host.
    for (auto& [id, promise] : outstanding_) {
      promise.Set(AbortedError("host crashed"));
    }
    outstanding_.clear();
  }

  Network* net_;
  Host* host_;
  uint64_t next_call_id_ = 1;
  std::map<std::type_index, std::function<void(HostId, uint64_t, std::any, TraceContext)>>
      handlers_;
  std::map<uint64_t, Promise<Result<std::any>>> outstanding_;
  RpcStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_RPC_RPC_H_
