// The three example file suites from the paper's Examples section.
//
// Full text of the paper was not available to this reproduction (see
// DESIGN.md); the examples are reconstructed from the canonical description
// of Gifford's three design points, preserving what each one demonstrates:
//
//   Example 1 — high read/write ratio, one reliable file server plus weak
//     representatives (caches) on client machines. Votes <1,0,0>, r=1, w=1:
//     all currency decisions rest with the server; caches serve data.
//
//   Example 2 — moderate update activity across sites of differing distance.
//     Votes <2,1,1>, r=2, w=3 over latencies <75ms, 100ms, 750ms>: reads are
//     satisfied by the well-connected 2-vote representative; writes need one
//     nearby companion; the far site only matters when others fail.
//
//   Example 3 — very high read/write ratio, many sites: read-one/write-all.
//     Votes <1,1,1>, r=1, w=3 over <75ms, 750ms, 750ms>: cheapest possible
//     reads, writes pay for every replica and block if any site is down.
//
// Per-representative availability defaults to 0.99 (a daily crash-and-repair
// cycle's steady-state), adjustable in the availability sweeps.

#ifndef WVOTE_SRC_ANALYSIS_GIFFORD_EXAMPLES_H_
#define WVOTE_SRC_ANALYSIS_GIFFORD_EXAMPLES_H_

#include <string>
#include <vector>

#include "src/analysis/model.h"
#include "src/core/suite_config.h"

namespace wvote {

struct GiffordExample {
  std::string name;         // "Example 1" ...
  std::string description;  // what the configuration demonstrates
  SuiteModel model;         // analytic form (voting reps only)
  SuiteConfig config;       // deployable form (includes weak reps)
  // Client round-trip latency per representative host, by host name; used to
  // configure the simulated network so simulation matches the model.
  std::vector<std::pair<std::string, Duration>> client_rtt;
  // Hosts that also carry a weak representative (cache) for the client.
  bool client_has_cache = false;
};

// All three examples, with per-representative availability `rep_availability`.
std::vector<GiffordExample> MakeGiffordExamples(double rep_availability = 0.99);

}  // namespace wvote

#endif  // WVOTE_SRC_ANALYSIS_GIFFORD_EXAMPLES_H_
