#include "src/analysis/model.h"

#include <algorithm>

#include "src/common/check.h"

namespace wvote {

int SuiteModel::TotalVotes() const {
  int total = 0;
  for (const RepModel& rep : reps) {
    total += rep.votes;
  }
  return total;
}

Status SuiteModel::Validate() const {
  if (reps.empty()) {
    return InvalidArgumentError("no representatives");
  }
  if (reps.size() > 25) {
    return InvalidArgumentError("analytic model supports at most 25 representatives");
  }
  const int v = TotalVotes();
  if (v <= 0) {
    return InvalidArgumentError("no votes");
  }
  if (read_quorum < 1 || write_quorum < 1 || read_quorum + write_quorum <= v ||
      2 * write_quorum <= v) {
    return InvalidArgumentError("quorum invariants violated");
  }
  for (const RepModel& rep : reps) {
    if (rep.availability < 0.0 || rep.availability > 1.0) {
      return InvalidArgumentError("availability out of range for " + rep.name);
    }
    if (rep.votes < 0) {
      return InvalidArgumentError("negative votes for " + rep.name);
    }
  }
  return Status::Ok();
}

VotingAnalysis::VotingAnalysis(SuiteModel model) : model_(std::move(model)) {
  WVOTE_CHECK_MSG(model_.Validate().ok(), "invalid suite model");
  by_latency_.resize(model_.reps.size());
  for (size_t i = 0; i < by_latency_.size(); ++i) {
    by_latency_[i] = i;
  }
  std::sort(by_latency_.begin(), by_latency_.end(), [this](size_t a, size_t b) {
    return model_.reps[a].latency < model_.reps[b].latency;
  });
}

double VotingAnalysis::QuorumAvailability(int required) const {
  const size_t n = model_.reps.size();
  double available = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int votes = 0;
    double prob = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        votes += model_.reps[i].votes;
        prob *= model_.reps[i].availability;
      } else {
        prob *= 1.0 - model_.reps[i].availability;
      }
    }
    if (votes >= required) {
      available += prob;
    }
  }
  return available;
}

Duration VotingAnalysis::CheapestQuorumLatency(uint32_t up_mask, int required) const {
  int votes = 0;
  Duration worst = Duration::Zero();
  // Greedy by ascending latency: optimal for minimizing the max member
  // latency of the quorum.
  for (size_t idx : by_latency_) {
    if (!(up_mask & (1u << idx))) {
      continue;
    }
    votes += model_.reps[idx].votes;
    worst = std::max(worst, model_.reps[idx].latency);
    if (votes >= required) {
      return worst;
    }
  }
  return Duration::Infinite();
}

Duration VotingAnalysis::AllUpQuorumLatency(int required) const {
  const uint32_t all = (1u << model_.reps.size()) - 1;
  return CheapestQuorumLatency(all, required);
}

Duration VotingAnalysis::ReadLatencyAllUp(bool cached_locally) const {
  const Duration gather = AllUpQuorumLatency(model_.read_quorum);
  if (gather == Duration::Infinite()) {
    return gather;
  }
  if (cached_locally) {
    return gather;
  }
  // In steady state the cheapest representative is current; the fetch costs
  // one more round trip to it.
  Duration cheapest = model_.reps[by_latency_.front()].latency;
  return gather + cheapest;
}

Duration VotingAnalysis::WriteLatencyAllUp(bool sync_phase2) const {
  const Duration gather = AllUpQuorumLatency(model_.write_quorum);
  if (gather == Duration::Infinite()) {
    return gather;
  }
  // Prepare takes a round trip paced by the slowest quorum member — the
  // same member that paced the gather. The commit round trip is on the
  // client's critical path only in the literal synchronous protocol; with
  // asynchronous phase 2 the write completes when the coordinator's
  // decision is durable, right after the prepare acknowledgements.
  return sync_phase2 ? gather * 3 : gather * 2;
}

Duration VotingAnalysis::ExpectedQuorumLatency(int required) const {
  const size_t n = model_.reps.size();
  double available = 0.0;
  double weighted_us = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double prob = 1.0;
    for (size_t i = 0; i < n; ++i) {
      prob *= (mask & (1u << i)) ? model_.reps[i].availability
                                 : 1.0 - model_.reps[i].availability;
    }
    const Duration latency = CheapestQuorumLatency(mask, required);
    if (latency != Duration::Infinite()) {
      available += prob;
      weighted_us += prob * static_cast<double>(latency.ToMicros());
    }
  }
  if (available <= 0.0) {
    return Duration::Infinite();
  }
  return Duration::Micros(static_cast<int64_t>(weighted_us / available));
}

}  // namespace wvote
