#include "src/analysis/gifford_examples.h"

namespace wvote {

std::vector<GiffordExample> MakeGiffordExamples(double rep_availability) {
  std::vector<GiffordExample> examples;

  {
    GiffordExample ex;
    ex.name = "Example 1";
    ex.description =
        "read-mostly file on one reliable server; weak representatives serve data";
    ex.model.reps.push_back(RepModel("server-a", 1, Duration::Millis(75), rep_availability));
    ex.model.read_quorum = 1;
    ex.model.write_quorum = 1;

    ex.config.suite_name = "example1";
    ex.config.AddRepresentative("server-a", 1);
    ex.config.read_quorum = 1;
    ex.config.write_quorum = 1;
    ex.client_rtt.push_back({"server-a", Duration::Millis(75)});
    ex.client_has_cache = true;
    examples.push_back(std::move(ex));
  }

  {
    GiffordExample ex;
    ex.name = "Example 2";
    ex.description = "moderate update activity; heavyweight nearby representative";
    ex.model.reps.push_back(RepModel("server-a", 2, Duration::Millis(75), rep_availability));
    ex.model.reps.push_back(RepModel("server-b", 1, Duration::Millis(100), rep_availability));
    ex.model.reps.push_back(RepModel("server-c", 1, Duration::Millis(750), rep_availability));
    ex.model.read_quorum = 2;
    ex.model.write_quorum = 3;

    ex.config.suite_name = "example2";
    ex.config.AddRepresentative("server-a", 2);
    ex.config.AddRepresentative("server-b", 1);
    ex.config.AddRepresentative("server-c", 1);
    ex.config.read_quorum = 2;
    ex.config.write_quorum = 3;
    ex.client_rtt.push_back({"server-a", Duration::Millis(75)});
    ex.client_rtt.push_back({"server-b", Duration::Millis(100)});
    ex.client_rtt.push_back({"server-c", Duration::Millis(750)});
    examples.push_back(std::move(ex));
  }

  {
    GiffordExample ex;
    ex.name = "Example 3";
    ex.description = "read-one/write-all: very high read-to-write ratio across sites";
    ex.model.reps.push_back(RepModel("server-a", 1, Duration::Millis(75), rep_availability));
    ex.model.reps.push_back(RepModel("server-b", 1, Duration::Millis(750), rep_availability));
    ex.model.reps.push_back(RepModel("server-c", 1, Duration::Millis(750), rep_availability));
    ex.model.read_quorum = 1;
    ex.model.write_quorum = 3;

    ex.config.suite_name = "example3";
    ex.config.AddRepresentative("server-a", 1);
    ex.config.AddRepresentative("server-b", 1);
    ex.config.AddRepresentative("server-c", 1);
    ex.config.read_quorum = 1;
    ex.config.write_quorum = 3;
    ex.client_rtt.push_back({"server-a", Duration::Millis(75)});
    ex.client_rtt.push_back({"server-b", Duration::Millis(750)});
    ex.client_rtt.push_back({"server-c", Duration::Millis(750)});
    examples.push_back(std::move(ex));
  }

  return examples;
}

}  // namespace wvote
