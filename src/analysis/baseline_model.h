// Closed-form availability/latency for the schemes Gifford positions
// weighted voting against. Read-one/write-all and majority are degenerate
// vote assignments (the paper's observation), so their numbers also fall out
// of VotingAnalysis; the explicit forms here serve as independent oracles in
// tests and label the comparison benches.

#ifndef WVOTE_SRC_ANALYSIS_BASELINE_MODEL_H_
#define WVOTE_SRC_ANALYSIS_BASELINE_MODEL_H_

#include "src/analysis/model.h"

namespace wvote {

class BaselineAnalysis {
 public:
  // Read-one/write-all: a read needs any operational replica; a write needs
  // every replica operational.
  static double RowaReadAvailability(const SuiteModel& model);
  static double RowaWriteAvailability(const SuiteModel& model);
  static Duration RowaReadLatencyAllUp(const SuiteModel& model);   // min
  static Duration RowaWriteLatencyAllUp(const SuiteModel& model);  // max

  // Majority consensus with equal votes.
  static double MajorityAvailability(const SuiteModel& model);
  static Duration MajorityLatencyAllUp(const SuiteModel& model);

  // Primary copy: everything rides on one designated replica.
  static double PrimaryCopyAvailability(const SuiteModel& model, size_t primary_index);
  static Duration PrimaryCopyLatency(const SuiteModel& model, size_t primary_index);

  // Unreplicated single copy.
  static double UnreplicatedAvailability(const RepModel& rep) { return rep.availability; }
  static Duration UnreplicatedLatency(const RepModel& rep) { return rep.latency; }
};

}  // namespace wvote

#endif  // WVOTE_SRC_ANALYSIS_BASELINE_MODEL_H_
