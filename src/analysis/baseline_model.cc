#include "src/analysis/baseline_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace wvote {

double BaselineAnalysis::RowaReadAvailability(const SuiteModel& model) {
  double all_down = 1.0;
  for (const RepModel& rep : model.reps) {
    all_down *= 1.0 - rep.availability;
  }
  return 1.0 - all_down;
}

double BaselineAnalysis::RowaWriteAvailability(const SuiteModel& model) {
  double all_up = 1.0;
  for (const RepModel& rep : model.reps) {
    all_up *= rep.availability;
  }
  return all_up;
}

Duration BaselineAnalysis::RowaReadLatencyAllUp(const SuiteModel& model) {
  WVOTE_CHECK(!model.reps.empty());
  Duration best = model.reps.front().latency;
  for (const RepModel& rep : model.reps) {
    best = std::min(best, rep.latency);
  }
  return best;
}

Duration BaselineAnalysis::RowaWriteLatencyAllUp(const SuiteModel& model) {
  WVOTE_CHECK(!model.reps.empty());
  Duration worst = Duration::Zero();
  for (const RepModel& rep : model.reps) {
    worst = std::max(worst, rep.latency);
  }
  return worst;
}

double BaselineAnalysis::MajorityAvailability(const SuiteModel& model) {
  // Equal-vote majority over n replicas: enumerate up-subsets.
  const size_t n = model.reps.size();
  const int majority = static_cast<int>(n / 2) + 1;
  double available = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int up = 0;
    double prob = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        ++up;
        prob *= model.reps[i].availability;
      } else {
        prob *= 1.0 - model.reps[i].availability;
      }
    }
    if (up >= majority) {
      available += prob;
    }
  }
  return available;
}

Duration BaselineAnalysis::MajorityLatencyAllUp(const SuiteModel& model) {
  // Cheapest majority: take the ceil(n/2 + ...) lowest-latency replicas.
  std::vector<Duration> latencies;
  latencies.reserve(model.reps.size());
  for (const RepModel& rep : model.reps) {
    latencies.push_back(rep.latency);
  }
  std::sort(latencies.begin(), latencies.end());
  const size_t majority = model.reps.size() / 2 + 1;
  WVOTE_CHECK(majority <= latencies.size());
  return latencies[majority - 1];
}

double BaselineAnalysis::PrimaryCopyAvailability(const SuiteModel& model,
                                                 size_t primary_index) {
  WVOTE_CHECK(primary_index < model.reps.size());
  return model.reps[primary_index].availability;
}

Duration BaselineAnalysis::PrimaryCopyLatency(const SuiteModel& model, size_t primary_index) {
  WVOTE_CHECK(primary_index < model.reps.size());
  return model.reps[primary_index].latency;
}

}  // namespace wvote
