// Analytic model of a weighted-voting file suite.
//
// Gifford's evaluation characterizes each representative by an access
// latency and an independent probability of being operational, then derives
// per-configuration read/write latency and blocking probability. This module
// computes those quantities exactly by enumerating the 2^N up/down subsets
// of voting representatives (N is small — suites in the paper have 2-5
// representatives).
//
// Latency model (matches the implementation in src/core):
//   * a quorum gather costs the maximum latency of its members, and the
//     client picks the cheapest quorum among operational representatives
//     (greedy by latency, which is optimal for the max-latency objective);
//   * a read additionally fetches contents from the cheapest current member
//     (0 when served from a co-located weak representative).

#ifndef WVOTE_SRC_ANALYSIS_MODEL_H_
#define WVOTE_SRC_ANALYSIS_MODEL_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"

namespace wvote {

struct RepModel {
  std::string name;
  int votes = 0;
  Duration latency;             // client round-trip to this representative
  double availability = 0.99;   // P(representative operational)

  RepModel() = default;
  RepModel(std::string n, int v, Duration l, double a)
      : name(std::move(n)), votes(v), latency(l), availability(a) {}
};

struct SuiteModel {
  std::vector<RepModel> reps;   // voting representatives only
  int read_quorum = 0;
  int write_quorum = 0;

  int TotalVotes() const;
  Status Validate() const;  // same invariants as SuiteConfig
};

class VotingAnalysis {
 public:
  explicit VotingAnalysis(SuiteModel model);

  // P(a quorum of `required` votes can be gathered among operational reps).
  double QuorumAvailability(int required) const;
  double ReadAvailability() const { return QuorumAvailability(model_.read_quorum); }
  double WriteAvailability() const { return QuorumAvailability(model_.write_quorum); }
  double ReadBlockingProbability() const { return 1.0 - ReadAvailability(); }
  double WriteBlockingProbability() const { return 1.0 - WriteAvailability(); }

  // Gather latency with every representative up: the cheapest quorum's max
  // member latency. Returns Duration::Infinite() if the quorum is
  // unreachable even with everyone up.
  Duration AllUpQuorumLatency(int required) const;

  // End-to-end operation latencies with every representative up, matching
  // the implementation's phases:
  //   read  = version gather (r votes) + data fetch from the cheapest
  //           current member (skipped when a co-located weak representative
  //           holds the current version);
  //   write = lock/version gather (w votes) + prepare + commit, each paced
  //           by the slowest write-quorum member. With `sync_phase2` false
  //           the commit round trip leaves the critical path (the decision
  //           is durable at the coordinator before phase 2 fans out), so a
  //           committed write costs two round trips instead of three.
  Duration ReadLatencyAllUp(bool cached_locally) const;
  Duration WriteLatencyAllUp(bool sync_phase2 = true) const;

  // Expected gather latency conditioned on the quorum being available:
  // E[cheapest-quorum max latency | enough operational votes].
  Duration ExpectedQuorumLatency(int required) const;

 private:
  // Cheapest quorum among the subset of reps flagged up; infinite if none.
  Duration CheapestQuorumLatency(uint32_t up_mask, int required) const;

  SuiteModel model_;
  std::vector<size_t> by_latency_;  // rep indices sorted by ascending latency
};

}  // namespace wvote

#endif  // WVOTE_SRC_ANALYSIS_MODEL_H_
