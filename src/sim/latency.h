// Latency models for links, disks, and representative access costs.
//
// Gifford's evaluation characterizes each representative by an access
// latency (e.g. 75ms for a remote server over the 1979 internetwork, 65ms
// for a local one). LatencyModel captures that parameter as a distribution:
// fixed for analytic reproduction, or jittered/exponential for simulation
// realism sweeps.

#ifndef WVOTE_SRC_SIM_LATENCY_H_
#define WVOTE_SRC_SIM_LATENCY_H_

#include <string>

#include "src/common/time.h"
#include "src/sim/random.h"

namespace wvote {

class LatencyModel {
 public:
  // Default: zero latency.
  LatencyModel() : kind_(Kind::kFixed) {}

  // Always exactly `value`.
  static LatencyModel Fixed(Duration value);

  // Uniform in [lo, hi].
  static LatencyModel Uniform(Duration lo, Duration hi);

  // min + Exp(mean - min): a floor (propagation delay) plus an exponential
  // queueing tail.
  static LatencyModel ShiftedExponential(Duration min, Duration mean);

  Duration Sample(Rng& rng) const;

  // Expected value of the distribution; used by the analytic model so that
  // analysis and simulation agree in expectation.
  Duration Mean() const;

  std::string ToString() const;

 private:
  enum class Kind { kFixed, kUniform, kShiftedExponential };

  Kind kind_;
  Duration a_;  // kFixed: value; kUniform: lo; kShiftedExponential: min
  Duration b_;  // kUniform: hi; kShiftedExponential: mean
};

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_LATENCY_H_
