#include "src/sim/latency.h"

#include <cstdio>

#include "src/common/check.h"

namespace wvote {

LatencyModel LatencyModel::Fixed(Duration value) {
  WVOTE_CHECK(value >= Duration::Zero());
  LatencyModel m;
  m.kind_ = Kind::kFixed;
  m.a_ = value;
  return m;
}

LatencyModel LatencyModel::Uniform(Duration lo, Duration hi) {
  WVOTE_CHECK(Duration::Zero() <= lo && lo <= hi);
  LatencyModel m;
  m.kind_ = Kind::kUniform;
  m.a_ = lo;
  m.b_ = hi;
  return m;
}

LatencyModel LatencyModel::ShiftedExponential(Duration min, Duration mean) {
  WVOTE_CHECK(Duration::Zero() <= min && min <= mean);
  LatencyModel m;
  m.kind_ = Kind::kShiftedExponential;
  m.a_ = min;
  m.b_ = mean;
  return m;
}

Duration LatencyModel::Sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return a_;
    case Kind::kUniform:
      return Duration::Micros(rng.NextInRange(a_.ToMicros(), b_.ToMicros()));
    case Kind::kShiftedExponential: {
      const double tail_mean = static_cast<double>((b_ - a_).ToMicros());
      if (tail_mean <= 0.0) {
        return a_;
      }
      return a_ + Duration::Micros(static_cast<int64_t>(rng.NextExponential(tail_mean)));
    }
  }
  return Duration::Zero();
}

Duration LatencyModel::Mean() const {
  switch (kind_) {
    case Kind::kFixed:
      return a_;
    case Kind::kUniform:
      return Duration::Micros((a_.ToMicros() + b_.ToMicros()) / 2);
    case Kind::kShiftedExponential:
      return b_;
  }
  return Duration::Zero();
}

std::string LatencyModel::ToString() const {
  switch (kind_) {
    case Kind::kFixed:
      return "fixed(" + a_.ToString() + ")";
    case Kind::kUniform:
      return "uniform(" + a_.ToString() + "," + b_.ToString() + ")";
    case Kind::kShiftedExponential:
      return "shifted_exp(min=" + a_.ToString() + ",mean=" + b_.ToString() + ")";
  }
  return "?";
}

}  // namespace wvote
