// Coroutine task type for simulation code.
//
// Task<T> is a lazily-started coroutine. Awaiting it starts the body and
// suspends the awaiter until the body co_returns; completion transfers
// control back via symmetric transfer, so chains of awaits run without stack
// growth or scheduler hops. Protocol code throughout wvote (quorum gathers,
// two-phase commit, client sessions) is written as Tasks awaiting RPC
// futures and simulated-time sleeps.
//
// Ownership: the Task object owns the coroutine frame and destroys it when
// the Task is destroyed. Spawn() runs a Task detached — used for server
// handlers and background work; the frame then frees itself on completion.
//
// ---------------------------------------------------------------------------
// GCC 12 COMPATIBILITY RULE — read before adding coroutine functions.
//
// GCC 12.x miscompiles certain by-value coroutine parameters: when the
// argument is a braced AGGREGATE prvalue (`Foo{a, b}` where Foo has no
// user-declared constructor) or a lambda implicitly converted to
// std::function at the call, the mandatory parameter copy into the coroutine
// frame aliases the caller's temporary, and both are destroyed -> double
// free. (Fixed in GCC 13; see upstream PR 104031.)
//
// Rules used throughout this codebase, verified empirically at -O0 and -O2
// under ASan:
//   1. Every struct passed by value into a coroutine declares a constructor
//      (see src/txn/messages.h), so braced call-site init is a ctor call.
//   2. Lambdas are never passed directly where a coroutine declares a
//      std::function parameter: bind to a named std::function first and
//      std::move it in.
//   3. Named lvalues, std::move()d named objects, and constructor-syntax
//      prvalues (std::string(...), std::make_shared<T>(...)) are all safe.
//   4. Never put co_await in the arms of a conditional operator
//      (`c ? co_await a : co_await b`): GCC 12 copies the selected arm's
//      result bitwise, so a payload owning heap/SSO storage (std::string)
//      ends up aliasing the coroutine frame — later destruction frees a
//      pointer into the (freed) frame. Use if/else with assignment instead.
// ---------------------------------------------------------------------------

#ifndef WVOTE_SRC_SIM_TASK_H_
#define WVOTE_SRC_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/common/check.h"

namespace wvote {

template <typename T>
class Task;

namespace internal {

class TaskPromiseBase {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      std::coroutine_handle<> cont = h.promise().continuation_;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::terminate(); }

  void set_continuation(std::coroutine_handle<> cont) noexcept { continuation_ = cont; }

 private:
  std::coroutine_handle<> continuation_;
};

template <typename T>
class TaskPromise : public TaskPromiseBase {
 public:
  Task<T> get_return_object() noexcept;
  void return_value(T value) { value_.emplace(std::move(value)); }
  T TakeValue() {
    WVOTE_CHECK_MSG(value_.has_value(), "Task completed without a value");
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
};

template <>
class TaskPromise<void> : public TaskPromiseBase {
 public:
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void TakeValue() noexcept {}
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::TaskPromise<T>;

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Reset(); }

  bool valid() const { return handle_ != nullptr; }

  // Awaiting a Task starts it (symmetric transfer into the body) and resumes
  // the awaiter with the co_returned value once the body completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().set_continuation(awaiting);
        return handle;
      }
      T await_resume() { return handle.promise().TakeValue(); }
    };
    WVOTE_CHECK_MSG(handle_ != nullptr, "co_await on empty Task");
    return Awaiter{handle_};
  }

  // Releases ownership of the coroutine frame to the caller (used by Spawn).
  std::coroutine_handle<promise_type> Release() { return std::exchange(handle_, nullptr); }

 private:
  void Reset() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace internal {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

// Wrapper coroutine used by Spawn. It starts and runs eagerly and its frame
// frees itself on completion; the wrapped Task lives inside the frame so the
// inner coroutine is destroyed exactly once, after it finishes.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

inline DetachedTask RunDetached(Task<void> task) { co_await std::move(task); }

}  // namespace internal

// Runs `task` to completion independently of any awaiter. The task typically
// suspends on simulated-time awaitables; it makes progress as the simulator
// fires those events.
//
// Lifetime note: a detached task that never completes (e.g. a background
// retrier whose peer stays dead when the simulation ends) remains suspended
// and its frame is reclaimed only at process exit — LeakSanitizer reports
// such frames at teardown. This is bounded by the number of spawned roots
// still pending when the run stops and does not grow during a run.
inline void Spawn(Task<void> task) { internal::RunDetached(std::move(task)); }

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_TASK_H_
