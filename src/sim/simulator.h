// Deterministic discrete-event simulator.
//
// The Simulator owns simulated time: events fire in (timestamp, insertion
// sequence) order against a monotone clock. All activity in wvote — network
// message delivery, RPC timeouts, disk latencies, client think times — is an
// event here. Two runs with the same seed and the same schedule of API calls
// produce byte-identical behavior.
//
// The event queue is a hierarchical timer wheel, not a binary heap: 11
// levels of 64 slots, each level covering 64x the span of the one below it
// (level 0 slots are single microsecond ticks). Insert and pop are O(1)
// with an occupancy bitmap per level; events parked in a coarse slot are
// re-dealt ("cascaded") into finer levels only when the clock reaches that
// slot, which amortizes to O(1) per event. Event nodes come from a freelist
// over chunked pools and callbacks are constructed in place inside the node
// (one heap allocation only for captures over kInlineCallbackBytes), so the
// steady-state hot loop allocates nothing. Cancellation is a generation
// counter on the pooled node: an EventHandle remembers the generation it was
// issued under and goes inert the moment the node is recycled, replacing the
// shared_ptr<bool> flag the heap-based queue used. See DESIGN.md §13.
//
// Coroutines integrate through Simulator::Sleep (an awaitable that resumes
// the coroutine after a simulated delay) and through Promise/Future
// (src/sim/future.h), whose completions are delivered as events.

#ifndef WVOTE_SRC_SIM_SIMULATOR_H_
#define WVOTE_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/sim/random.h"

namespace wvote {

class MetricsRegistry;
class Simulator;

namespace sim_internal {

// Callbacks whose captures fit in this many bytes are constructed in place
// inside the pooled event node; larger ones pay one heap allocation. 48
// bytes covers the hot paths (delivery batches, RPC timeouts, coroutine
// resumptions) with room to spare.
inline constexpr size_t kInlineCallbackBytes = 48;

// One scheduled event. Nodes are pool-allocated and never move, so the
// callback lives directly in `storage` and needs no move support. `gen` is
// bumped every time the node returns to the freelist; an EventHandle issued
// under an older generation is inert.
struct EventNode {
  uint64_t when_us = 0;
  uint64_t seq = 0;
  uint64_t gen = 0;
  EventNode* next = nullptr;
  // Runs the callback and destroys it (the hot path pays one indirect call).
  void (*run)(EventNode*) = nullptr;
  // Destroys the callback without running it (cancellation, teardown);
  // nullptr when the callable is trivially destructible.
  void (*destroy)(EventNode*) = nullptr;
  bool cancelled = false;
  alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
};

template <typename F>
void RunInline(EventNode* n) {
  F* f = std::launder(reinterpret_cast<F*>(n->storage));
  (*f)();
  f->~F();
}

template <typename F>
void DestroyInline(EventNode* n) {
  std::launder(reinterpret_cast<F*>(n->storage))->~F();
}

template <typename F>
void RunBoxed(EventNode* n) {
  F* f = *std::launder(reinterpret_cast<F**>(n->storage));
  (*f)();
  delete f;
}

template <typename F>
void DestroyBoxed(EventNode* n) {
  delete *std::launder(reinterpret_cast<F**>(n->storage));
}

template <typename F>
void InstallCallback(EventNode* n, F&& fn) {
  using Fn = std::decay_t<F>;
  if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                alignof(Fn) <= alignof(std::max_align_t)) {
    ::new (static_cast<void*>(n->storage)) Fn(std::forward<F>(fn));
    n->run = &RunInline<Fn>;
    n->destroy = std::is_trivially_destructible_v<Fn> ? nullptr : &DestroyInline<Fn>;
  } else {
    ::new (static_cast<void*>(n->storage)) Fn*(new Fn(std::forward<F>(fn)));
    n->run = &RunBoxed<Fn>;
    n->destroy = &DestroyBoxed<Fn>;
  }
}

}  // namespace sim_internal

// Handle to a scheduled event; allows cancellation (e.g. an RPC reply
// cancelling its timeout). Copies share the same underlying event.
// Cancellation is lazy — the event node is skipped and recycled when the
// wheel reaches its timestamp — and a handle whose event already fired (or
// whose node was recycled) is inert. Handles must not outlive the Simulator
// that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  // Prevents the event's callback from running if it has not run yet.
  void Cancel();  // defined after Simulator

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, sim_internal::EventNode* node, uint64_t gen)
      : sim_(sim), node_(node), gen_(gen) {}
  Simulator* sim_ = nullptr;
  sim_internal::EventNode* node_ = nullptr;
  uint64_t gen_ = 0;
};

// Event-loop counters, registered as `sim.events_*` by RegisterMetrics.
// Deliberately not wired into MetricsRegistry::Reset: events_processed backs
// Simulator::events_processed(), which callers treat as monotone for the
// simulator's lifetime.
struct SimStats {
  uint64_t events_scheduled = 0;
  uint64_t events_processed = 0;
  uint64_t events_cancelled = 0;
  uint64_t events_coalesced = 0;  // deliveries folded into an existing event
};

class Simulator {
 public:
  explicit Simulator(uint64_t seed);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Runs `fn` after `delay` of simulated time (same timestamp ties run in
  // scheduling order). Accepts any nullary callable; captures up to
  // kInlineCallbackBytes are stored inline in the pooled event node.
  template <typename F>
  EventHandle Schedule(Duration delay, F&& fn) {
    WVOTE_CHECK_MSG(delay >= Duration::Zero(), "cannot schedule in the past");
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }
  template <typename F>
  EventHandle ScheduleAt(TimePoint when, F&& fn) {
    WVOTE_CHECK_MSG(when >= now_, "cannot schedule in the past");
    WVOTE_CHECK_MSG(!in_metronome_,
                    "metronome hooks are pure observers and must not schedule events");
    sim_internal::EventNode* node = AcquireNode();
    node->when_us = static_cast<uint64_t>(when.ToMicros());
    node->seq = next_seq_++;
    sim_internal::InstallCallback(node, std::forward<F>(fn));
    InsertNode(node);
    ++stats_.events_scheduled;
    ++pending_;
    return EventHandle(this, node, node->gen);
  }

  // Drains the queue completely.
  void Run();

  // Processes exactly one event; false if the queue is empty. Lets callers
  // pump the simulation until an external condition holds (e.g. a spawned
  // task produced its result).
  bool StepOne() { return Step(TimePoint::FromMicros(INT64_MAX)); }

  // Processes events up to and including `limit`, then advances the clock to
  // `limit`. Returns the number of events processed.
  size_t RunUntil(TimePoint limit);
  size_t RunFor(Duration d) { return RunUntil(Now() + d); }

  size_t events_processed() const { return static_cast<size_t>(stats_.events_processed); }
  // Scheduled-but-not-fired events, including cancelled ones the wheel has
  // not reaped yet (cancellation is lazy).
  size_t events_pending() const { return pending_; }

  // Sequence number the next ScheduleAt will consume. The network uses this
  // to detect "nothing was scheduled in between" when deciding whether a
  // delivery may be coalesced into an open batch without reordering events.
  uint64_t next_seq() const { return next_seq_; }

  const SimStats& stats() const { return stats_; }
  // Called by the network when a delivery was folded into an existing event
  // instead of scheduling a new one.
  void NoteCoalesced() { ++stats_.events_coalesced; }

  // Sim-time metronome: runs `hook` every time the clock is about to pass
  // the next multiple of `period` (fired lazily, just before the event that
  // crosses the deadline, or when RunUntil advances the clock to its limit).
  // Unlike Schedule(), the metronome lives outside the timer wheel: it
  // consumes no event nodes and no sequence numbers, so enabling it cannot
  // perturb event ordering, rng streams, or delivery coalescing — golden
  // replays stay bit-exact with a metronome attached. That property is
  // load-bearing for the metrics scraper (DESIGN §15). In exchange the hook
  // must be a pure observer: scheduling events from inside it is a checked
  // error (an event inserted there could predate the event already popped
  // from the wheel). One metronome per simulator; setting a new one
  // re-anchors the next deadline at the first multiple of `period` after
  // Now(). `max_catchup` bounds deadlines fired per clock advance: if the
  // clock jumps further (a long idle gap), older deadlines are skipped and
  // the hook's first call after the gap is late — observers that need dense
  // windows backfill from the gap they see in the fire times.
  void SetMetronome(Duration period, std::function<void(TimePoint)> hook,
                    uint64_t max_catchup = 256);
  void ClearMetronome();

  // Registers `sim.events_*` counters plus a wall-clock `sim.events_per_sec`
  // gauge (events processed since registration over wall seconds since
  // registration — simulated time is free, wall time is what scale
  // scenarios pay).
  void RegisterMetrics(MetricsRegistry* registry);

  // Awaitable: suspends the calling coroutine for `d` of simulated time.
  // Sleep(Duration::Zero()) yields: the coroutine resumes after already
  // queued same-timestamp events.
  auto Sleep(Duration d) {
    struct Awaiter {
      Simulator* sim;
      Duration delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->Schedule(delay, [h]() { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  friend class EventHandle;

  // 11 levels x 64 slots: level L slots are 64^L microseconds wide, so the
  // top level's window exceeds any representable timestamp and no separate
  // overflow list is needed.
  static constexpr int kLevels = 11;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr size_t kChunkNodes = 512;

  struct Level {
    uint64_t base = 0;      // timestamp where this level's slot 0 begins
    uint64_t occupied = 0;  // bit s set iff slot s has events
    sim_internal::EventNode* head[kSlots] = {};
    sim_internal::EventNode* tail[kSlots] = {};
  };

  sim_internal::EventNode* AcquireNode() {
    if (free_ == nullptr) {
      AllocateChunk();
    }
    sim_internal::EventNode* node = free_;
    free_ = node->next;
    node->cancelled = false;
    return node;
  }
  void AllocateChunk();
  void RecycleNode(sim_internal::EventNode* node) {
    ++node->gen;  // outstanding handles to this node go inert
    node->next = free_;
    free_ = node;
  }
  void InsertNode(sim_internal::EventNode* node);
  // Pops and runs the next event. Returns false if the queue is empty or the
  // next event is after `limit`.
  bool Step(TimePoint limit);
  // Fires metronome deadlines (at most max_catchup of them) up to and
  // including `t_us`, advancing the clock to each deadline as it fires.
  void FireMetronomeUpTo(uint64_t t_us);
  void NoteCancelled() { ++stats_.events_cancelled; }

  TimePoint now_;
  uint64_t next_seq_ = 0;
  size_t pending_ = 0;
  SimStats stats_;
  std::function<void(TimePoint)> metronome_hook_;
  uint64_t metronome_period_us_ = 0;
  uint64_t metronome_next_us_ = 0;
  uint64_t metronome_max_catchup_ = 0;
  bool in_metronome_ = false;
  Level levels_[kLevels];
  std::vector<std::unique_ptr<sim_internal::EventNode[]>> chunks_;
  sim_internal::EventNode* free_ = nullptr;
  Rng rng_;
};

inline void EventHandle::Cancel() {
  if (node_ == nullptr || node_->gen != gen_ || node_->cancelled) {
    return;  // never issued, already fired/recycled, or already cancelled
  }
  node_->cancelled = true;
  sim_->NoteCancelled();
}

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_SIMULATOR_H_
