// Deterministic discrete-event simulator.
//
// The Simulator owns simulated time: an event queue ordered by (timestamp,
// insertion sequence) and the current clock. All activity in wvote — network
// message delivery, RPC timeouts, disk latencies, client think times — is an
// event on this queue. Two runs with the same seed and the same schedule of
// API calls produce byte-identical behavior.
//
// Coroutines integrate through Simulator::Sleep (an awaitable that resumes
// the coroutine after a simulated delay) and through Promise/Future
// (src/sim/future.h), whose completions are delivered as events.

#ifndef WVOTE_SRC_SIM_SIMULATOR_H_
#define WVOTE_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/time.h"
#include "src/sim/random.h"

namespace wvote {

// Handle to a scheduled event; allows cancellation (e.g. an RPC reply
// cancelling its timeout). Copies share the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  // Prevents the event's callback from running if it has not run yet.
  void Cancel() {
    if (cancelled_) {
      *cancelled_ = true;
    }
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  explicit Simulator(uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Runs `fn` after `delay` of simulated time (same timestamp ties run in
  // scheduling order).
  EventHandle Schedule(Duration delay, std::function<void()> fn);
  EventHandle ScheduleAt(TimePoint when, std::function<void()> fn);

  // Drains the queue completely.
  void Run();

  // Processes exactly one event; false if the queue is empty. Lets callers
  // pump the simulation until an external condition holds (e.g. a spawned
  // task produced its result).
  bool StepOne() { return Step(TimePoint::FromMicros(INT64_MAX)); }

  // Processes events up to and including `limit`, then advances the clock to
  // `limit`. Returns the number of events processed.
  size_t RunUntil(TimePoint limit);
  size_t RunFor(Duration d) { return RunUntil(Now() + d); }

  size_t events_processed() const { return events_processed_; }
  size_t events_pending() const { return queue_.size(); }

  // Awaitable: suspends the calling coroutine for `d` of simulated time.
  // Sleep(Duration::Zero()) yields: the coroutine resumes after already
  // queued same-timestamp events.
  auto Sleep(Duration d) {
    struct Awaiter {
      Simulator* sim;
      Duration delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->Schedule(delay, [h]() { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  struct Event {
    TimePoint when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next event. Returns false if the queue is empty or the
  // next event is after `limit`.
  bool Step(TimePoint limit);

  TimePoint now_;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Rng rng_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_SIMULATOR_H_
