#include "src/sim/simulator.h"

#include <bit>
#include <chrono>

#include "src/obs/metrics.h"

namespace wvote {

using sim_internal::EventNode;

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Destroy callbacks still parked in the wheel; their captures (promises,
  // messages, coroutine frames) may own resources. Pool chunks free with
  // chunks_.
  for (Level& level : levels_) {
    for (EventNode* node : level.head) {
      while (node != nullptr) {
        EventNode* next = node->next;
        if (node->destroy != nullptr) {
          node->destroy(node);
        }
        node = next;
      }
    }
  }
}

void Simulator::AllocateChunk() {
  auto chunk = std::make_unique<EventNode[]>(kChunkNodes);
  for (size_t i = 0; i < kChunkNodes; ++i) {
    chunk[i].next = free_;
    free_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

void Simulator::InsertNode(EventNode* node) {
  const uint64_t when = node->when_us;
  // Lowest level whose window [base, base + 64^(l+1)) contains `when`; the
  // top level is a catch-all (its window exceeds any int64 timestamp).
  int lvl = kLevels - 1;
  for (int l = 0; l < kLevels - 1; ++l) {
    const uint64_t window = uint64_t{1} << (kSlotBits * (l + 1));
    if (when >= levels_[l].base && when - levels_[l].base < window) {
      lvl = l;
      break;
    }
  }
  Level& level = levels_[lvl];
  WVOTE_DCHECK(when >= level.base);
  const int s = static_cast<int>((when - level.base) >> (kSlotBits * lvl));
  node->next = nullptr;
  if (level.head[s] == nullptr) {
    level.head[s] = node;
    level.tail[s] = node;
    level.occupied |= uint64_t{1} << s;
  } else {
    // Fresh inserts carry a globally increasing seq, so tail-append keeps
    // every slot chain sorted by seq.
    level.tail[s]->next = node;
    level.tail[s] = node;
  }
}

bool Simulator::Step(TimePoint limit) {
  const uint64_t limit_us = static_cast<uint64_t>(limit.ToMicros());
  for (;;) {
    Level& l0 = levels_[0];
    while (l0.occupied == 0) {
      int lvl = 1;
      while (lvl < kLevels && levels_[lvl].occupied == 0) {
        ++lvl;
      }
      if (lvl == kLevels) {
        // Wheel empty. Reset the origins: reaping trailing cancelled events
        // advances level bases without advancing now_, and a later insert at
        // a timestamp below a stranded base would land in the wrong slot.
        for (Level& level : levels_) {
          level.base = 0;
        }
        return false;
      }
      // The earliest pending event sits in this level's lowest occupied
      // slot. If that whole slot starts after `limit`, stop before touching
      // the wheel so the bases never pass the clock RunUntil will set.
      Level& src = levels_[lvl];
      const int slot = std::countr_zero(src.occupied);
      const uint64_t width = uint64_t{1} << (kSlotBits * lvl);
      const uint64_t slot_start = src.base + static_cast<uint64_t>(slot) * width;
      if (slot_start > limit_us) {
        return false;
      }
      // Cascade: re-anchor every lower level at this slot's start and deal
      // the slot's chain one level down. The chain is seq-sorted and the
      // destination slots are all empty (lower levels were exhausted), so
      // tail-appends preserve per-slot seq order.
      EventNode* chain = src.head[slot];
      src.head[slot] = nullptr;
      src.tail[slot] = nullptr;
      src.occupied &= ~(uint64_t{1} << slot);
      for (int k = 0; k < lvl; ++k) {
        levels_[k].base = slot_start;
      }
      Level& dst = levels_[lvl - 1];
      const int shift = kSlotBits * (lvl - 1);
      while (chain != nullptr) {
        EventNode* next = chain->next;
        const int s = static_cast<int>((chain->when_us - slot_start) >> shift);
        chain->next = nullptr;
        if (dst.head[s] == nullptr) {
          dst.head[s] = chain;
          dst.tail[s] = chain;
          dst.occupied |= uint64_t{1} << s;
        } else {
          dst.tail[s]->next = chain;
          dst.tail[s] = chain;
        }
        chain = next;
      }
    }
    // Level-0 slots are single ticks, so the lowest occupied slot is the
    // earliest timestamp and its chain head carries the lowest seq.
    const int slot = std::countr_zero(l0.occupied);
    const uint64_t tick = l0.base + static_cast<uint64_t>(slot);
    if (tick > limit_us) {
      return false;
    }
    EventNode* node = l0.head[slot];
    l0.head[slot] = node->next;
    if (l0.head[slot] == nullptr) {
      l0.tail[slot] = nullptr;
      l0.occupied &= ~(uint64_t{1} << slot);
    }
    --pending_;
    if (node->cancelled) {
      // Reaping a cancelled event advances neither the clock nor
      // events_processed.
      if (node->destroy != nullptr) {
        node->destroy(node);
      }
      RecycleNode(node);
      continue;
    }
    WVOTE_DCHECK(tick >= static_cast<uint64_t>(now_.ToMicros()));
    if (metronome_hook_ && metronome_next_us_ <= tick) {
      // Close every sample window the clock is about to pass before the
      // event that crosses it runs; a deadline landing exactly on `tick`
      // samples before same-timestamp events execute.
      FireMetronomeUpTo(tick);
    }
    now_ = TimePoint::FromMicros(static_cast<int64_t>(tick));
    ++stats_.events_processed;
    node->run(node);  // runs and destroys the callback
    RecycleNode(node);
    return true;
  }
}

void Simulator::Run() {
  while (Step(TimePoint::FromMicros(INT64_MAX))) {
  }
}

size_t Simulator::RunUntil(TimePoint limit) {
  size_t n = 0;
  while (Step(limit)) {
    ++n;
  }
  if (metronome_hook_) {
    // Deadlines between the last event and the limit still close their
    // windows even though no event crosses them.
    FireMetronomeUpTo(static_cast<uint64_t>(limit.ToMicros()));
  }
  if (limit > now_) {
    now_ = limit;
  }
  return n;
}

void Simulator::SetMetronome(Duration period, std::function<void(TimePoint)> hook,
                             uint64_t max_catchup) {
  WVOTE_CHECK_MSG(period > Duration::Zero(), "metronome period must be positive");
  metronome_hook_ = std::move(hook);
  metronome_period_us_ = static_cast<uint64_t>(period.ToMicros());
  metronome_max_catchup_ = max_catchup == 0 ? 1 : max_catchup;
  // Anchor at the first multiple of the period strictly after Now(), so fire
  // times are period-aligned regardless of when the metronome was attached.
  const uint64_t now_us = static_cast<uint64_t>(now_.ToMicros());
  metronome_next_us_ = (now_us / metronome_period_us_ + 1) * metronome_period_us_;
}

void Simulator::ClearMetronome() {
  metronome_hook_ = nullptr;
  metronome_period_us_ = 0;
  metronome_next_us_ = 0;
}

void Simulator::FireMetronomeUpTo(uint64_t t_us) {
  if (!metronome_hook_ || metronome_next_us_ > t_us) {
    return;
  }
  // Bound the deadlines fired for one clock advance: a jump across a long
  // idle gap skips the stale ones (keeping period alignment) instead of
  // grinding through millions of samples of a provably idle simulation.
  const uint64_t due = (t_us - metronome_next_us_) / metronome_period_us_ + 1;
  if (due > metronome_max_catchup_) {
    metronome_next_us_ +=
        (due - metronome_max_catchup_) * metronome_period_us_;
  }
  in_metronome_ = true;
  while (metronome_next_us_ <= t_us) {
    const TimePoint at = TimePoint::FromMicros(static_cast<int64_t>(metronome_next_us_));
    if (at > now_) {
      now_ = at;
    }
    metronome_next_us_ += metronome_period_us_;
    metronome_hook_(at);
  }
  in_metronome_ = false;
}

void Simulator::RegisterMetrics(MetricsRegistry* registry) {
  registry->RegisterCounter("sim.events_scheduled", {}, &stats_.events_scheduled);
  registry->RegisterCounter("sim.events_processed", {}, &stats_.events_processed);
  registry->RegisterCounter("sim.events_cancelled", {}, &stats_.events_cancelled);
  registry->RegisterCounter("sim.events_coalesced", {}, &stats_.events_coalesced);
  const auto start = std::chrono::steady_clock::now();
  const uint64_t start_events = stats_.events_processed;
  registry->RegisterGauge("sim.events_per_sec", {}, [this, start, start_events]() {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (secs <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(stats_.events_processed - start_events) / secs;
  });
}

}  // namespace wvote
