#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"

namespace wvote {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventHandle Simulator::Schedule(Duration delay, std::function<void()> fn) {
  WVOTE_CHECK_MSG(delay >= Duration::Zero(), "cannot schedule in the past");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  WVOTE_CHECK_MSG(when >= now_, "cannot schedule in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(cancelled);
}

bool Simulator::Step(TimePoint limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > limit) {
      return false;
    }
    // Move the event out before running it: the callback may schedule new
    // events and mutate the queue.
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    if (*ev.cancelled) {
      continue;
    }
    WVOTE_DCHECK(ev.when >= now_);
    now_ = ev.when;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step(TimePoint::FromMicros(INT64_MAX))) {
  }
}

size_t Simulator::RunUntil(TimePoint limit) {
  size_t n = 0;
  while (Step(limit)) {
    ++n;
  }
  if (limit > now_) {
    now_ = limit;
  }
  return n;
}

}  // namespace wvote
