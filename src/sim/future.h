// One-shot Promise/Future pair bridging callbacks and coroutines.
//
// A Promise is the producer side (an RPC reply arriving, a timeout firing);
// the Future is awaited by exactly one coroutine. The first Set() wins —
// later ones are ignored — which makes the reply/timeout race a one-liner.
// Resumption of the waiter is delivered through the simulator's event queue
// at the current timestamp, so completion order is deterministic and the
// setter's stack never runs awaiter code inline.

#ifndef WVOTE_SRC_SIM_FUTURE_H_
#define WVOTE_SRC_SIM_FUTURE_H_

#include <coroutine>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/sim/simulator.h"

namespace wvote {

namespace internal {

template <typename T>
struct FutureState {
  explicit FutureState(Simulator* sim) : sim(sim) {}

  Simulator* sim;
  std::optional<T> value;
  std::coroutine_handle<> waiter;
  bool resume_scheduled = false;

  void MaybeScheduleResume() {
    if (value.has_value() && waiter && !resume_scheduled) {
      resume_scheduled = true;
      std::coroutine_handle<> h = waiter;
      sim->Schedule(Duration::Zero(), [h]() { h.resume(); });
    }
  }
};

}  // namespace internal

template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::shared_ptr<internal::FutureState<T>> state;
      bool await_ready() const noexcept { return state->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        WVOTE_CHECK_MSG(!state->waiter, "Future awaited twice");
        state->waiter = h;
        state->MaybeScheduleResume();
      }
      T await_resume() { return std::move(*state->value); }
    };
    WVOTE_CHECK_MSG(state_ != nullptr, "co_await on empty Future");
    return Awaiter{state_};
  }

 private:
  template <typename U>
  friend class Promise;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state) : state_(std::move(state)) {}
  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Simulator* sim)
      : state_(std::make_shared<internal::FutureState<T>>(sim)) {}

  Future<T> GetFuture() { return Future<T>(state_); }

  // Completes the future. Returns true if this call provided the value,
  // false if it was already set (e.g. the reply lost the race to the
  // timeout).
  bool Set(T value) {
    if (state_->value.has_value()) {
      return false;
    }
    state_->value.emplace(std::move(value));
    state_->MaybeScheduleResume();
    return true;
  }

  bool IsSet() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_FUTURE_H_
