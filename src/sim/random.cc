#include "src/sim/random.h"

#include <cmath>

#include "src/common/check.h"

namespace wvote {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  WVOTE_CHECK(bound > 0);
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` that fits in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  WVOTE_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  WVOTE_CHECK(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace wvote
