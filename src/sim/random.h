// Deterministic pseudo-random number generation for simulations.
//
// Every run of the simulator is reproducible from a single 64-bit seed. The
// generator is xoshiro256** (public domain, Blackman & Vigna), seeded through
// SplitMix64 so that nearby seeds give uncorrelated streams. We implement it
// directly rather than using <random> engines so that the stream is stable
// across standard library versions.

#ifndef WVOTE_SRC_SIM_RANDOM_H_
#define WVOTE_SRC_SIM_RANDOM_H_

#include <cstdint>

namespace wvote {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Derives an independent child generator; used to give each host / client
  // its own stream so adding one host does not perturb another's randomness.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_RANDOM_H_
