// Concurrency combinators for Tasks.
//
// JoinAll runs a batch of tasks concurrently and returns every result.
// JoinUntil returns as soon as a predicate over the results-so-far is
// satisfied — the primitive under quorum gathering, where a caller polls all
// representatives but proceeds once enough votes have answered. Tasks still
// in flight keep running detached; their late results are delivered to the
// optional `leftover` callback (weighted voting uses this to refresh stale
// representatives in the background).

#ifndef WVOTE_SRC_SIM_JOIN_H_
#define WVOTE_SRC_SIM_JOIN_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sim/future.h"
#include "src/sim/task.h"

namespace wvote {

namespace internal {

template <typename T>
struct JoinState {
  explicit JoinState(Simulator* sim) : done(sim) {}
  std::vector<T> results;
  size_t remaining = 0;
  bool satisfied = false;
  std::function<bool(const std::vector<T>&)> enough;
  std::function<void(T)> leftover;
  Promise<bool> done;
};

template <typename T>
Task<void> JoinRunOne(std::shared_ptr<JoinState<T>> state, Task<T> task) {
  T result = co_await std::move(task);
  if (state->satisfied) {
    if (state->leftover) {
      state->leftover(std::move(result));
    }
  } else {
    state->results.push_back(std::move(result));
    if (state->enough && state->enough(state->results)) {
      state->satisfied = true;
      state->done.Set(true);
    }
  }
  if (--state->remaining == 0 && !state->satisfied) {
    state->satisfied = true;
    state->done.Set(true);
  }
}

}  // namespace internal

// Awaits every task; results are in completion order.
template <typename T>
Task<std::vector<T>> JoinAll(Simulator* sim, std::vector<Task<T>> tasks) {
  auto state = std::make_shared<internal::JoinState<T>>(sim);
  state->remaining = tasks.size();
  if (tasks.empty()) {
    co_return std::vector<T>{};
  }
  for (Task<T>& t : tasks) {
    Spawn(internal::JoinRunOne<T>(state, std::move(t)));
  }
  co_await state->done.GetFuture();
  co_return std::move(state->results);
}

// Awaits tasks until `enough(results_so_far)` holds (checked after each
// completion) or all tasks finish. Stragglers run on detached; if `leftover`
// is provided it receives each straggler's result.
template <typename T>
Task<std::vector<T>> JoinUntil(Simulator* sim, std::vector<Task<T>> tasks,
                               std::function<bool(const std::vector<T>&)> enough,
                               std::function<void(T)> leftover = nullptr) {
  auto state = std::make_shared<internal::JoinState<T>>(sim);
  state->remaining = tasks.size();
  state->enough = std::move(enough);
  state->leftover = std::move(leftover);
  if (tasks.empty()) {
    co_return std::vector<T>{};
  }
  for (Task<T>& t : tasks) {
    Spawn(internal::JoinRunOne<T>(state, std::move(t)));
  }
  co_await state->done.GetFuture();
  co_return state->results;  // copy: stragglers may still append via state
}

}  // namespace wvote

#endif  // WVOTE_SRC_SIM_JOIN_H_
