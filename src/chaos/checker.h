// History-based consistency checker for the weighted-voting spec.
//
// Gifford's guarantee under r + w > V and 2w > V, restated over a recorded
// history (per suite):
//
//   W-UNIQ      acked writes commit at pairwise distinct versions;
//   W-ORDER     writes are totally ordered by version, consistent with real
//               time: a write acked before another is invoked has the
//               smaller version;
//   R-MONO      reads are version-monotonic in real time;
//   DURABILITY  an acknowledged write is never lost: a read invoked after
//               the ack observes at least that version;
//   RW-ORDER    a read never observes a version from the future (a write
//               invoked after the read responded);
//   R-VALUE     an observed value is never fabricated: it matches the acked
//               write at that version, the initial contents (version 1), or
//               the payload of some ambiguous write attempt;
//   PAYLOAD     a payload appears at exactly one version (payloads are
//               unique per attempt, so one appearing at two versions means
//               a double-applied or cross-wired write).
//
// Ambiguous ops (client saw an error — the op may or may not have taken
// effect) contribute no obligations, only permissions: their payloads are
// legal read results but never required ones. The checker is pure: it sees
// only the history, so it can be unit-tested on synthetic histories and
// can never be fooled by implementation internals.

#ifndef WVOTE_SRC_CHAOS_CHECKER_H_
#define WVOTE_SRC_CHAOS_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/history.h"
#include "src/chaos/schedule.h"

namespace wvote {

struct ChaosViolation {
  std::string rule;         // e.g. "durability"
  std::string description;  // human-readable, with both ops inlined
  std::vector<uint64_t> op_ids;
};

struct CheckResult {
  std::vector<ChaosViolation> violations;
  uint64_t ok_reads = 0;
  uint64_t ok_writes = 0;
  uint64_t ambiguous_ops = 0;
  bool truncated = false;  // more violations existed than were kept

  bool ok() const { return violations.empty(); }

  // Counterexample printout: every kept violation with its ops, plus the
  // fault schedule that was active during the run.
  std::string Report(const FaultSchedule& schedule) const;
};

// Checks `ops` against the spec above. `initial_contents` is what version 1
// (the bootstrap install) holds. Keeps at most `max_violations`.
CheckResult CheckHistory(const std::vector<ChaosOp>& ops, const std::string& initial_contents,
                         size_t max_violations = 25);

}  // namespace wvote

#endif  // WVOTE_SRC_CHAOS_CHECKER_H_
