#include "src/chaos/schedule.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/sim/random.h"

namespace wvote {
namespace {

// Field separator inside a serialized group list; host names never carry
// these characters (they are identifiers like "rep-0").
constexpr char kGroupSep = '|';
constexpr char kMemberSep = ',';

std::string JoinGroups(const std::vector<std::vector<std::string>>& groups) {
  if (groups.empty()) {
    return "-";
  }
  std::string out;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) {
      out += kGroupSep;
    }
    for (size_t m = 0; m < groups[g].size(); ++m) {
      if (m > 0) {
        out += kMemberSep;
      }
      out += groups[g][m];
    }
  }
  return out;
}

std::vector<std::vector<std::string>> SplitGroups(const std::string& text) {
  std::vector<std::vector<std::string>> groups;
  if (text == "-") {
    return groups;
  }
  std::vector<std::string> group;
  std::string member;
  for (char c : text) {
    if (c == kMemberSep || c == kGroupSep) {
      if (!member.empty()) {
        group.push_back(std::move(member));
        member.clear();
      }
      if (c == kGroupSep) {
        groups.push_back(std::move(group));
        group.clear();
      }
    } else {
      member += c;
    }
  }
  if (!member.empty()) {
    group.push_back(std::move(member));
  }
  if (!group.empty()) {
    groups.push_back(std::move(group));
  }
  return groups;
}

Result<TraceKind> TraceKindFromName(const std::string& name) {
  for (size_t i = 0; i < kNumTraceKinds; ++i) {
    const TraceKind kind = static_cast<TraceKind>(i);
    if (name == TraceKindName(kind)) {
      return kind;
    }
  }
  return InvalidArgumentError("unknown trace kind '" + name + "'");
}

Result<FaultAction> FaultActionFromName(const std::string& name) {
  static const FaultAction kAll[] = {
      FaultAction::kCrashRestart, FaultAction::kCrashOnTrace,
      FaultAction::kPartition,    FaultAction::kHeal,
      FaultAction::kLinkKnobs,    FaultAction::kStoreFaults,
      FaultAction::kStoreTearNextFlush,
  };
  for (FaultAction a : kAll) {
    if (name == FaultActionName(a)) {
      return a;
    }
  }
  return InvalidArgumentError("unknown fault action '" + name + "'");
}

// Splits `line` on single spaces into key=value tokens.
std::map<std::string, std::string> TokenizeLine(const std::string& line) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t end = line.find(' ', pos);
    if (end == std::string::npos) {
      end = line.size();
    }
    const std::string token = line.substr(pos, end - pos);
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
    pos = end + 1;
  }
  return out;
}

// Deterministic per-template stream: same (template, seed) -> same schedule.
uint64_t MixSeed(const std::string& template_name, uint64_t seed) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (char c : template_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Duration Frac(Duration horizon, double f) {
  return Duration::Micros(static_cast<int64_t>(static_cast<double>(horizon.ToMicros()) * f));
}

// Uniform draw in [lo, hi) as a fraction of the horizon.
Duration DrawAt(Rng& rng, Duration horizon, double lo, double hi) {
  return Frac(horizon, lo + rng.NextDouble() * (hi - lo));
}

FaultSchedule CrashChurn(Rng& rng, const ScheduleTemplateParams& p) {
  FaultSchedule s;
  s.name = "crash_churn";
  for (const std::string& rep : p.rep_hosts) {
    const int cycles = 1 + static_cast<int>(rng.NextBelow(2));
    for (int i = 0; i < cycles; ++i) {
      FaultEvent ev;
      ev.at = DrawAt(rng, p.horizon, 0.05, 0.6);
      ev.action = FaultAction::kCrashRestart;
      ev.host = rep;
      ev.duration = Duration::Millis(100 + static_cast<int64_t>(rng.NextBelow(300)));
      s.events.push_back(std::move(ev));
    }
  }
  return s;
}

FaultSchedule Partitions(Rng& rng, const ScheduleTemplateParams& p) {
  FaultSchedule s;
  s.name = "partitions";
  // Two partition epochs with different random splits, each healed; nothing
  // survives past 0.75 * horizon. Splits are majority/minority or near-even
  // depending on the draw; clients are scattered across both sides so some
  // client can always reach the minority.
  const double epoch_starts[] = {0.10, 0.45};
  for (int e = 0; e < 2; ++e) {
    std::vector<std::string> side_a;
    std::vector<std::string> side_b;
    for (size_t i = 0; i < p.rep_hosts.size(); ++i) {
      // Pin the first rep to A and the last to B so both sides are
      // non-empty; everyone else flips a coin.
      bool to_a;
      if (i == 0) {
        to_a = true;
      } else if (i + 1 == p.rep_hosts.size()) {
        to_a = false;
      } else {
        to_a = rng.NextBernoulli(0.5);
      }
      (to_a ? side_a : side_b).push_back(p.rep_hosts[i]);
    }
    for (size_t i = 0; i < p.client_hosts.size(); ++i) {
      (i % 2 == 0 ? side_a : side_b).push_back(p.client_hosts[i]);
    }
    FaultEvent cut;
    cut.at = DrawAt(rng, p.horizon, epoch_starts[e], epoch_starts[e] + 0.08);
    cut.action = FaultAction::kPartition;
    cut.groups = {std::move(side_a), std::move(side_b)};
    FaultEvent heal;
    heal.at = cut.at + Frac(p.horizon, 0.15 + rng.NextDouble() * 0.10);
    heal.action = FaultAction::kHeal;
    s.events.push_back(std::move(cut));
    s.events.push_back(std::move(heal));
  }
  return s;
}

FaultSchedule FlakyLinks(Rng& rng, const ScheduleTemplateParams& p) {
  FaultSchedule s;
  s.name = "flaky_links";
  FaultEvent mild;
  mild.at = Frac(p.horizon, 0.02);
  mild.action = FaultAction::kLinkKnobs;
  mild.p1 = 0.01 + rng.NextDouble() * 0.02;  // loss
  mild.p2 = 0.03 + rng.NextDouble() * 0.04;  // dup
  mild.p3 = 0.03 + rng.NextDouble() * 0.04;  // spike probability
  mild.spike = Duration::Millis(20 + static_cast<int64_t>(rng.NextBelow(30)));
  FaultEvent storm;
  storm.at = DrawAt(rng, p.horizon, 0.3, 0.45);
  storm.action = FaultAction::kLinkKnobs;
  storm.p1 = 0.05 + rng.NextDouble() * 0.05;
  storm.p2 = 0.08 + rng.NextDouble() * 0.06;
  storm.p3 = 0.08 + rng.NextDouble() * 0.08;
  storm.spike = Duration::Millis(40 + static_cast<int64_t>(rng.NextBelow(40)));
  FaultEvent clear;
  clear.at = Frac(p.horizon, 0.72);
  clear.action = FaultAction::kLinkKnobs;  // all-zero knobs = calm weather
  s.events.push_back(std::move(mild));
  s.events.push_back(std::move(storm));
  s.events.push_back(std::move(clear));
  return s;
}

FaultSchedule PhaseCrash(Rng& rng, const ScheduleTemplateParams& p) {
  FaultSchedule s;
  s.name = "phase_crash";
  // Crash a participant between its yes-vote and the commit...
  FaultEvent on_prepare;
  on_prepare.at = DrawAt(rng, p.horizon, 0.05, 0.2);
  on_prepare.action = FaultAction::kCrashOnTrace;
  on_prepare.host = p.rep_hosts[rng.NextBelow(p.rep_hosts.size())];
  on_prepare.trace_kind = TraceKind::kTxnPrepared;
  on_prepare.duration = Duration::Millis(150 + static_cast<int64_t>(rng.NextBelow(200)));
  s.events.push_back(std::move(on_prepare));
  // ...and a coordinator after its decision is durable but before any
  // phase-2 fan-out: the acked write must survive on inquiries alone.
  if (!p.client_hosts.empty()) {
    FaultEvent on_decision;
    on_decision.at = DrawAt(rng, p.horizon, 0.25, 0.4);
    on_decision.action = FaultAction::kCrashOnTrace;
    on_decision.host = p.client_hosts[rng.NextBelow(p.client_hosts.size())];
    on_decision.trace_kind = TraceKind::kDecisionLogged;
    on_decision.duration = Duration::Millis(150 + static_cast<int64_t>(rng.NextBelow(200)));
    s.events.push_back(std::move(on_decision));
  }
  // Plus one plain crash cycle for background churn.
  FaultEvent churn;
  churn.at = DrawAt(rng, p.horizon, 0.45, 0.6);
  churn.action = FaultAction::kCrashRestart;
  churn.host = p.rep_hosts[rng.NextBelow(p.rep_hosts.size())];
  churn.duration = Duration::Millis(100 + static_cast<int64_t>(rng.NextBelow(200)));
  s.events.push_back(std::move(churn));
  return s;
}

FaultSchedule TornDisk(Rng& rng, const ScheduleTemplateParams& p) {
  FaultSchedule s;
  s.name = "torn_disk";
  const size_t victims = std::min<size_t>(2, p.rep_hosts.size());
  for (size_t v = 0; v < victims; ++v) {
    const std::string& rep = p.rep_hosts[rng.NextBelow(p.rep_hosts.size())];
    FaultEvent flaky;
    flaky.at = DrawAt(rng, p.horizon, 0.05 + 0.3 * static_cast<double>(v), 0.15 + 0.3 * static_cast<double>(v));
    flaky.action = FaultAction::kStoreFaults;
    flaky.host = rep;
    flaky.p1 = 0.15 + rng.NextDouble() * 0.15;  // write-fail probability
    FaultEvent calm;
    calm.at = flaky.at + Frac(p.horizon, 0.12);
    calm.action = FaultAction::kStoreFaults;  // p1 = 0 clears the fault
    calm.host = rep;
    s.events.push_back(std::move(flaky));
    s.events.push_back(std::move(calm));

    FaultEvent tear;
    tear.at = DrawAt(rng, p.horizon, 0.2, 0.65);
    tear.action = FaultAction::kStoreTearNextFlush;
    tear.host = p.rep_hosts[rng.NextBelow(p.rep_hosts.size())];
    s.events.push_back(std::move(tear));
  }
  return s;
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrashRestart:
      return "crash-restart";
    case FaultAction::kCrashOnTrace:
      return "crash-on-trace";
    case FaultAction::kPartition:
      return "partition";
    case FaultAction::kHeal:
      return "heal";
    case FaultAction::kLinkKnobs:
      return "link-knobs";
    case FaultAction::kStoreFaults:
      return "store-faults";
    case FaultAction::kStoreTearNextFlush:
      return "store-tear-next-flush";
  }
  return "?";
}

std::string FaultEvent::ToLine() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "event at_us=%" PRId64 " action=%s host=%s dur_us=%" PRId64
                " kind=%s p1=%.9g p2=%.9g p3=%.9g spike_us=%" PRId64 " groups=%s",
                at.ToMicros(), FaultActionName(action), host.empty() ? "-" : host.c_str(),
                duration.ToMicros(), TraceKindName(trace_kind), p1, p2, p3,
                spike.ToMicros(), JoinGroups(groups).c_str());
  return buf;
}

Result<FaultEvent> FaultEvent::FromLine(const std::string& line) {
  std::map<std::string, std::string> kv = TokenizeLine(line);
  for (const char* required : {"at_us", "action", "host", "dur_us", "kind", "groups"}) {
    if (kv.find(required) == kv.end()) {
      return InvalidArgumentError("fault event line missing '" + std::string(required) +
                                  "': " + line);
    }
  }
  FaultEvent ev;
  ev.at = Duration::Micros(std::strtoll(kv["at_us"].c_str(), nullptr, 10));
  Result<FaultAction> action = FaultActionFromName(kv["action"]);
  WVOTE_RETURN_IF_ERROR(action.status());
  ev.action = action.value();
  ev.host = kv["host"] == "-" ? "" : kv["host"];
  ev.duration = Duration::Micros(std::strtoll(kv["dur_us"].c_str(), nullptr, 10));
  Result<TraceKind> kind = TraceKindFromName(kv["kind"]);
  WVOTE_RETURN_IF_ERROR(kind.status());
  ev.trace_kind = kind.value();
  ev.p1 = std::strtod(kv["p1"].c_str(), nullptr);
  ev.p2 = std::strtod(kv["p2"].c_str(), nullptr);
  ev.p3 = std::strtod(kv["p3"].c_str(), nullptr);
  ev.spike = Duration::Micros(std::strtoll(kv["spike_us"].c_str(), nullptr, 10));
  ev.groups = SplitGroups(kv["groups"]);
  return ev;
}

std::string FaultEvent::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%8.1fms %-20s %s", at.ToMicros() / 1000.0,
                FaultActionName(action), host.empty() ? JoinGroups(groups).c_str()
                                                      : host.c_str());
  std::string out = buf;
  if (action == FaultAction::kCrashOnTrace) {
    out += std::string(" on ") + TraceKindName(trace_kind);
  }
  return out;
}

std::string FaultSchedule::Serialize() const {
  std::string out = "schedule " + name + "\n";
  for (const FaultEvent& ev : events) {
    out += ev.ToLine();
    out += '\n';
  }
  return out;
}

Result<FaultSchedule> FaultSchedule::Parse(const std::string& text) {
  FaultSchedule schedule;
  bool saw_header = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("schedule ", 0) == 0) {
      schedule.name = line.substr(9);
      saw_header = true;
    } else if (line.rfind("event ", 0) == 0) {
      Result<FaultEvent> ev = FaultEvent::FromLine(line);
      WVOTE_RETURN_IF_ERROR(ev.status());
      schedule.events.push_back(std::move(ev.value()));
    } else {
      return InvalidArgumentError("unrecognized schedule line: " + line);
    }
  }
  if (!saw_header) {
    return InvalidArgumentError("schedule text missing 'schedule <name>' header");
  }
  return schedule;
}

FaultSchedule FaultSchedule::Without(size_t index) const {
  FaultSchedule out;
  out.name = name;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i != index) {
      out.events.push_back(events[i]);
    }
  }
  return out;
}

FaultSchedule FaultSchedule::Truncated(size_t n) const {
  FaultSchedule out;
  out.name = name;
  out.events.assign(events.begin(),
                    events.begin() + static_cast<ptrdiff_t>(std::min(n, events.size())));
  return out;
}

std::string FaultSchedule::ToString() const {
  std::string out = "schedule '" + name + "' (" + std::to_string(events.size()) + " events)\n";
  for (const FaultEvent& ev : events) {
    out += "  " + ev.ToString() + "\n";
  }
  return out;
}

std::vector<std::string> ScheduleTemplateNames() {
  return {"crash_churn", "partitions", "flaky_links", "phase_crash", "torn_disk"};
}

FaultSchedule MakeScheduleFromTemplate(const std::string& template_name, uint64_t seed,
                                       const ScheduleTemplateParams& params) {
  WVOTE_CHECK_MSG(!params.rep_hosts.empty(), "schedule template needs representatives");
  Rng rng(MixSeed(template_name, seed));
  FaultSchedule schedule;
  if (template_name == "crash_churn") {
    schedule = CrashChurn(rng, params);
  } else if (template_name == "partitions") {
    schedule = Partitions(rng, params);
  } else if (template_name == "flaky_links") {
    schedule = FlakyLinks(rng, params);
  } else if (template_name == "phase_crash") {
    schedule = PhaseCrash(rng, params);
  } else if (template_name == "torn_disk") {
    schedule = TornDisk(rng, params);
  } else {
    WVOTE_CHECK_MSG(false, "unknown schedule template");
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return schedule;
}

}  // namespace wvote
