// Chaos runner: one deterministic adversarial run, seed sweeps, and
// schedule minimization.
//
// A ChaosRunSpec fully determines a run: cluster seed, schedule template,
// suite shape, and workload knobs. RunChaos() deploys a fresh cluster,
// expands the template under the seed, lets the Nemesis loose while N
// clients issue uniquely-tagged reads and writes into a HistoryRecorder,
// finishes with a broadcast convergence read after every fault has cleared,
// and hands the history to the checker.
//
// Determinism is the load-bearing property: the same spec replays the same
// run bit-for-bit, and RunChaosWithSchedule() replays a *dumped* schedule
// against the spec's seed the same way. MinimizeSchedule() exploits that to
// shrink a failing schedule exactly — truncate to the shortest failing
// prefix, then greedily drop events while the checker still fails — so the
// artifact attached to a failure is the smallest schedule that reproduces
// it, not the full storm that found it.

#ifndef WVOTE_SRC_CHAOS_RUNNER_H_
#define WVOTE_SRC_CHAOS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/checker.h"
#include "src/chaos/history.h"
#include "src/chaos/schedule.h"

namespace wvote {

// Shape of the suite under test. `votes[i]` is representative i's weight
// (hosts are named "rep-0".."rep-N-1"); `unsafe` deploys the configuration
// even if it breaks quorum intersection (negative controls).
struct ChaosSuiteSpec {
  std::string name;
  std::vector<int> votes;
  int read_quorum = 0;
  int write_quorum = 0;
  bool unsafe = false;
};

// The valid configurations the sweep exercises (uniform narrow/wide quorums
// plus a weighted assignment), and the deliberately broken negative control
// (r + w <= V: reads can miss the latest write quorum entirely).
std::vector<ChaosSuiteSpec> DefaultSuiteSpecs();
ChaosSuiteSpec NegativeControlSuite();

struct ChaosRunSpec {
  uint64_t seed = 1;
  std::string schedule_template = "crash_churn";
  ChaosSuiteSpec suite;
  int clients = 3;
  int ops_per_client = 30;
  double write_fraction = 0.4;
  Duration horizon = Duration::Seconds(8);
  bool collect_trace = false;  // also capture the causal span trace
  // Cycle every workload client through the quorum probing policies
  // (cheapest -> uniform -> load-optimal -> fewest-messages) while the
  // nemesis runs. The consistency spec (R-VALUE, RW-ORDER) must hold across
  // every switch: strategies only change *which* current representatives a
  // quorum is gathered from, never the quorum arithmetic itself.
  bool rotate_strategies = false;
  // Sim-time metrics scraping during the run (zero = off). Pure
  // observability: scraping rides the simulator metronome outside the timer
  // wheel, so the run's event schedule, history, check result, and metrics
  // snapshot are bit-identical with or without it. Deliberately NOT
  // serialized into artifacts — a replay reproduces the failure with
  // whatever scraping the replayer wants.
  Duration scrape_resolution = Duration::Zero();
};

struct ChaosRunOutcome {
  FaultSchedule schedule;        // the concrete schedule that ran
  std::vector<ChaosOp> history;  // every op attempt, in invocation order
  CheckResult check;             // violations already include convergence
  bool final_read_ok = false;    // post-heal broadcast read succeeded
  std::string initial_contents;
  uint64_t nemesis_events_applied = 0;
  uint64_t nemesis_crashes = 0;        // scheduled + phase-targeted crashes
  uint64_t nemesis_phase_crashes = 0;  // crash-on-trace one-shots that fired
  uint64_t strategy_rotations = 0;     // mid-run policy switches applied
  std::string metrics_json;   // registry snapshot at run end
  std::string chrome_trace;   // traceEvents bodies (collect_trace only)
  // Scraping only (spec.scrape_resolution > 0), empty otherwise:
  std::string timeseries_json;  // full exported time-series tail
  std::string flight_record;    // last-windows + SLO events + trace tail
  uint64_t slo_breaches = 0;    // SLO rules that entered breach during the run
};

// Expands the spec's template under its seed and runs it.
ChaosRunOutcome RunChaos(const ChaosRunSpec& spec);

// Replays an explicit schedule (minimization steps, dumped artifacts).
ChaosRunOutcome RunChaosWithSchedule(const ChaosRunSpec& spec, const FaultSchedule& schedule);

// Greedy exact minimization: shortest failing prefix, then event removal to
// a fixpoint. Returns `failing` unchanged (renamed) if nothing can go.
FaultSchedule MinimizeSchedule(const ChaosRunSpec& spec, const FaultSchedule& failing);

// Failure artifact: replayable spec + schedule header, then the checker
// report, history, metrics, and (if collected) span trace. ParseArtifact()
// recovers exactly the replayable half.
std::string DumpArtifact(const ChaosRunSpec& spec, const FaultSchedule& schedule,
                         const ChaosRunOutcome& outcome);

struct ChaosReplayFile {
  ChaosRunSpec spec;
  FaultSchedule schedule;
};
Result<ChaosReplayFile> ParseArtifact(const std::string& text);

}  // namespace wvote

#endif  // WVOTE_SRC_CHAOS_RUNNER_H_
