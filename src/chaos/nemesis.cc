#include "src/chaos/nemesis.h"

#include <vector>

namespace wvote {

void Nemesis::Deploy() {
  for (const FaultEvent& ev : schedule_.events) {
    cluster_->sim().Schedule(ev.at, [this, ev]() { Apply(ev); });
  }
}

void Nemesis::Apply(const FaultEvent& ev) {
  Network& net = cluster_->net();
  switch (ev.action) {
    case FaultAction::kCrashRestart: {
      Host* host = net.FindHost(ev.host);
      if (host == nullptr) {
        ++events_skipped_;
        return;
      }
      if (host->up()) {
        host->Crash();
        ++stats_.crashes;
        stats_.total_downtime += ev.duration;
      }
      Host* target = host;
      cluster_->sim().Schedule(ev.duration, [target]() {
        if (!target->up()) {
          target->Restart();
        }
      });
      break;
    }
    case FaultAction::kCrashOnTrace: {
      Host* host = net.FindHost(ev.host);
      if (host == nullptr) {
        ++events_skipped_;
        return;
      }
      ArmPhaseCrash(&cluster_->sim(), &cluster_->trace(), host, ev.trace_kind, ev.duration,
                    &stats_);
      break;
    }
    case FaultAction::kPartition: {
      std::vector<std::vector<HostId>> groups;
      for (const std::vector<std::string>& named : ev.groups) {
        std::vector<HostId> group;
        for (const std::string& name : named) {
          Host* host = net.FindHost(name);
          if (host != nullptr) {
            group.push_back(host->id());
          }
        }
        groups.push_back(std::move(group));
      }
      net.Partition(groups);
      break;
    }
    case FaultAction::kHeal:
      net.HealPartition();
      break;
    case FaultAction::kLinkKnobs: {
      LinkKnobs knobs;
      knobs.loss_probability = ev.p1;
      knobs.dup_probability = ev.p2;
      knobs.delay_spike_probability = ev.p3;
      knobs.delay_spike = ev.spike;
      net.SetAllLinkKnobs(knobs);
      break;
    }
    case FaultAction::kStoreFaults: {
      RepresentativeServer* rep = cluster_->representative(ev.host);
      if (rep == nullptr) {
        ++events_skipped_;
        return;
      }
      // Preserve a pending one-shot tear; this event only moves the
      // probabilistic write-failure knob.
      StoreFaults faults = rep->store().faults();
      faults.write_fail_probability = ev.p1;
      rep->store().SetFaults(faults);
      break;
    }
    case FaultAction::kStoreTearNextFlush: {
      RepresentativeServer* rep = cluster_->representative(ev.host);
      if (rep == nullptr) {
        ++events_skipped_;
        return;
      }
      StoreFaults faults = rep->store().faults();
      faults.tear_next_flush = true;
      rep->store().SetFaults(faults);
      break;
    }
  }
  ++events_applied_;
}

}  // namespace wvote
