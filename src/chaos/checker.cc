#include "src/chaos/checker.h"

#include <map>
#include <set>
#include <utility>

namespace wvote {
namespace {

class ViolationSink {
 public:
  ViolationSink(CheckResult* result, size_t max) : result_(result), max_(max) {}

  void Add(const char* rule, std::string description, std::vector<uint64_t> op_ids) {
    if (result_->violations.size() >= max_) {
      result_->truncated = true;
      return;
    }
    result_->violations.push_back(
        ChaosViolation{rule, std::move(description), std::move(op_ids)});
  }

 private:
  CheckResult* result_;
  size_t max_;
};

std::string Pair(const ChaosOp& a, const ChaosOp& b) {
  return "\n    " + a.ToString() + "\n    " + b.ToString();
}

void CheckSuite(const std::vector<const ChaosOp*>& ops, const std::string& initial,
                ViolationSink& sink) {
  std::vector<const ChaosOp*> acked_writes;
  std::vector<const ChaosOp*> ok_reads;
  for (const ChaosOp* op : ops) {
    if (!op->ok) {
      continue;
    }
    (op->type == ChaosOpType::kWrite ? acked_writes : ok_reads).push_back(op);
  }

  // W-UNIQ: acked writes commit at pairwise distinct versions.
  std::map<Version, const ChaosOp*> version_to_write;
  for (const ChaosOp* w : acked_writes) {
    auto [it, inserted] = version_to_write.emplace(w->version, w);
    if (!inserted) {
      sink.Add("write-version-unique",
               "two acknowledged writes committed at version " +
                   std::to_string(w->version) + Pair(*it->second, *w),
               {it->second->id, w->id});
    }
  }

  // W-ORDER: real-time order of acked writes must agree with version order.
  for (const ChaosOp* w1 : acked_writes) {
    for (const ChaosOp* w2 : acked_writes) {
      if (w1->response < w2->invoke && w1->version >= w2->version) {
        sink.Add("write-order",
                 "write acked at v" + std::to_string(w1->version) +
                     " precedes a write that committed at v" +
                     std::to_string(w2->version) + Pair(*w1, *w2),
                 {w1->id, w2->id});
      }
    }
  }

  // Legal payloads for R-VALUE: every write attempt's payload (ambiguous
  // attempts included — their effects are permitted, not required).
  std::set<std::string> attempted_payloads;
  for (const ChaosOp* op : ops) {
    if (op->type == ChaosOpType::kWrite) {
      attempted_payloads.insert(op->value);
    }
  }

  // PAYLOAD: one payload, one version — across acked writes and ok reads.
  std::map<std::string, std::pair<Version, const ChaosOp*>> payload_version;
  std::vector<const ChaosOp*> observers = acked_writes;
  observers.insert(observers.end(), ok_reads.begin(), ok_reads.end());
  for (const ChaosOp* op : observers) {
    auto [it, inserted] = payload_version.emplace(op->value, std::make_pair(op->version, op));
    if (!inserted && it->second.first != op->version) {
      sink.Add("payload-version-unique",
               "payload observed at two versions (v" + std::to_string(it->second.first) +
                   " and v" + std::to_string(op->version) + ")" +
                   Pair(*it->second.second, *op),
               {it->second.second->id, op->id});
    }
  }

  for (const ChaosOp* r : ok_reads) {
    // R-VALUE: the observed value must be explainable.
    auto w = version_to_write.find(r->version);
    if (w != version_to_write.end()) {
      if (w->second->value != r->value) {
        sink.Add("read-value",
                 "read at v" + std::to_string(r->version) +
                     " returned a value different from the acked write at that version" +
                     Pair(*w->second, *r),
                 {w->second->id, r->id});
      }
    } else if (r->version == 1) {
      if (r->value != initial) {
        sink.Add("read-value",
                 "read at v1 returned neither the initial contents nor any write:\n    " +
                     r->ToString(),
                 {r->id});
      }
    } else if (attempted_payloads.find(r->value) == attempted_payloads.end()) {
      sink.Add("read-value",
               "read observed a fabricated value (no write attempt produced it):\n    " +
                   r->ToString(),
               {r->id});
    }

    // R-MONO and read/read realtime order.
    for (const ChaosOp* r2 : ok_reads) {
      if (r->response < r2->invoke && r->version > r2->version) {
        sink.Add("read-monotonic",
                 "later read observed an older version" + Pair(*r, *r2), {r->id, r2->id});
      }
    }

    for (const ChaosOp* w2 : acked_writes) {
      // DURABILITY: acked writes are visible to every later read.
      if (r->invoke > w2->response && r->version < w2->version) {
        sink.Add("durability",
                 "read invoked after a write's ack observed an older version (lost ack)" +
                     Pair(*w2, *r),
                 {w2->id, r->id});
      }
      // RW-ORDER: no reads from the future.
      if (r->response < w2->invoke && r->version >= w2->version) {
        sink.Add("read-write-order",
                 "read observed a version not yet written" + Pair(*r, *w2),
                 {r->id, w2->id});
      }
    }
  }
}

}  // namespace

CheckResult CheckHistory(const std::vector<ChaosOp>& ops, const std::string& initial_contents,
                         size_t max_violations) {
  CheckResult result;
  ViolationSink sink(&result, max_violations);

  std::map<std::string, std::vector<const ChaosOp*>> by_suite;
  for (const ChaosOp& op : ops) {
    by_suite[op.suite].push_back(&op);
    if (op.ok) {
      ++(op.type == ChaosOpType::kRead ? result.ok_reads : result.ok_writes);
    } else {
      ++result.ambiguous_ops;
    }
  }
  for (const auto& [suite, suite_ops] : by_suite) {
    CheckSuite(suite_ops, initial_contents, sink);
  }
  return result;
}

std::string CheckResult::Report(const FaultSchedule& schedule) const {
  std::string out;
  if (ok()) {
    out += "history OK: " + std::to_string(ok_reads) + " ok reads, " +
           std::to_string(ok_writes) + " ok writes, " + std::to_string(ambiguous_ops) +
           " ambiguous ops\n";
    return out;
  }
  out += "CONSISTENCY VIOLATIONS (" + std::to_string(violations.size()) +
         (truncated ? "+, truncated" : "") + "):\n";
  for (const ChaosViolation& v : violations) {
    out += "  [" + v.rule + "] " + v.description + "\n";
  }
  out += "active fault schedule:\n" + schedule.ToString();
  return out;
}

}  // namespace wvote
