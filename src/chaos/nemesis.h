// Nemesis: applies a FaultSchedule to a deployed Cluster.
//
// Deploy() walks the schedule once and plants every event on the cluster's
// simulator at its offset; application is pure mechanism — all randomness
// was spent when the schedule was built, so the same schedule against the
// same cluster seed replays the same run. Phase-targeted events arm
// ArmPhaseCrash observers on the cluster's TraceLog; timed events crash,
// restart, partition, heal, and turn network/storage fault knobs.
//
// Events naming hosts that do not exist are skipped (counted in
// events_skipped): schedule minimization may strip a partition's heal or a
// crash's context, and the remaining events must still apply cleanly.

#ifndef WVOTE_SRC_CHAOS_NEMESIS_H_
#define WVOTE_SRC_CHAOS_NEMESIS_H_

#include <cstdint>

#include "src/chaos/schedule.h"
#include "src/core/cluster.h"
#include "src/workload/fault_injector.h"

namespace wvote {

class Nemesis {
 public:
  Nemesis(Cluster* cluster, FaultSchedule schedule)
      : cluster_(cluster), schedule_(std::move(schedule)) {}

  // Schedules every event; call once, before pumping the simulation.
  void Deploy();

  const FaultSchedule& schedule() const { return schedule_; }
  uint64_t events_applied() const { return events_applied_; }
  uint64_t events_skipped() const { return events_skipped_; }
  const FaultInjectorStats& stats() const { return stats_; }

 private:
  void Apply(const FaultEvent& ev);

  Cluster* cluster_;
  FaultSchedule schedule_;
  uint64_t events_applied_ = 0;
  uint64_t events_skipped_ = 0;
  FaultInjectorStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CHAOS_NEMESIS_H_
