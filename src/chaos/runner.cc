#include "src/chaos/runner.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

#include "src/chaos/nemesis.h"
#include "src/common/check.h"
#include "src/core/cluster.h"
#include "src/sim/random.h"

namespace wvote {
namespace {

constexpr const char* kSuiteName = "chaos";
constexpr const char* kInitialContents = "initial-contents";

std::string JoinVotes(const std::vector<int>& votes) {
  std::string out;
  for (size_t i = 0; i < votes.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(votes[i]);
  }
  return out;
}

std::vector<int> SplitVotes(const std::string& text) {
  std::vector<int> votes;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      votes.push_back(std::atoi(cur.c_str()));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    votes.push_back(std::atoi(cur.c_str()));
  }
  return votes;
}

// One client's workload: ops_per_client operations, each retried up to 3
// times with every attempt logged as its own history op under a globally
// unique payload — retry ambiguity is the checker's to reason about, not
// ours to hide.
Task<void> RunWorkloadClient(Simulator* sim, SuiteClient* client, HistoryRecorder* recorder,
                             int client_id, int num_ops, double write_fraction,
                             uint64_t seed) {
  Rng rng(seed);
  for (int op = 0; op < num_ops; ++op) {
    co_await sim->Sleep(Duration::Millis(1 + static_cast<int64_t>(rng.NextBelow(60))));
    const bool is_write = rng.NextBernoulli(write_fraction);
    for (int attempt = 0; attempt < 3; ++attempt) {
      Status final_status = Status::Ok();
      if (is_write) {
        std::string payload = "c" + std::to_string(client_id) + ".op" + std::to_string(op) +
                              ".a" + std::to_string(attempt);
        const uint64_t id =
            recorder->Invoke(client_id, kSuiteName, ChaosOpType::kWrite, payload);
        SuiteTransaction txn = client->Begin();
        Status st = txn.Write(std::move(payload));
        if (st.ok()) {
          st = co_await txn.Commit();
        } else {
          co_await txn.Abort();
        }
        recorder->Complete(id, st, txn.committed_version());
        final_status = st;
      } else {
        const uint64_t id = recorder->Invoke(client_id, kSuiteName, ChaosOpType::kRead);
        SuiteTransaction txn = client->Begin();
        Result<VersionedValue> vv = co_await txn.ReadVersioned();
        Status st = vv.status();
        if (st.ok()) {
          st = co_await txn.Commit();
        } else {
          co_await txn.Abort();
        }
        if (st.ok()) {
          recorder->Complete(id, st, vv.value().version, std::move(vv.value().contents));
        } else {
          recorder->Complete(id, st, 0);
        }
        final_status = st;
      }
      if (final_status.ok()) {
        break;
      }
      co_await sim->Sleep(Duration::Millis(20 + static_cast<int64_t>(rng.NextBelow(80))));
    }
  }
}

// The post-heal convergence read: every fault has cleared, so a broadcast
// read must succeed and must observe every acknowledged write — this is the
// op that turns "lost ack" into a concrete durability violation.
Task<bool> RunFinalRead(SuiteClient* client, HistoryRecorder* recorder) {
  const uint64_t id = recorder->Invoke(-1, kSuiteName, ChaosOpType::kRead);
  SuiteTransaction txn = client->Begin();
  Result<VersionedValue> vv = co_await txn.ReadVersioned();
  Status st = vv.status();
  if (st.ok()) {
    st = co_await txn.Commit();
  } else {
    co_await txn.Abort();
  }
  if (st.ok()) {
    recorder->Complete(id, st, vv.value().version, std::move(vv.value().contents));
  } else {
    recorder->Complete(id, st, 0);
  }
  co_return st.ok();
}

// Rotates every workload client's probing policy on a fixed cadence for the
// duration of the fault schedule. Each switch retunes the plan cache (new
// tuning -> rebuild) while operations are in flight; in-flight gathers keep
// their snapshotted strategy (shared_ptr), new operations pick up the next
// policy. `*rotations` counts applied switches.
Task<void> RotateStrategies(Simulator* sim, std::vector<SuiteClient*> clients,
                            Duration horizon, uint64_t* rotations) {
  static constexpr QuorumStrategy kCycle[] = {
      QuorumStrategy::kLowestLatency,
      QuorumStrategy::kUniformSpread,
      QuorumStrategy::kLoadOptimal,
      QuorumStrategy::kFewestMessages,
  };
  const TimePoint end = sim->Now() + horizon;
  const Duration step = Duration::Micros(horizon.ToMicros() / 8);
  size_t next = 0;
  while (sim->Now() + step < end) {
    co_await sim->Sleep(step);
    const QuorumStrategy policy = kCycle[next++ % (sizeof(kCycle) / sizeof(kCycle[0]))];
    for (SuiteClient* client : clients) {
      client->SetStrategySpec(policy);
    }
    ++*rotations;
  }
}

SuiteConfig BuildConfig(const ChaosSuiteSpec& suite) {
  SuiteConfig config;
  config.suite_name = kSuiteName;
  for (size_t i = 0; i < suite.votes.size(); ++i) {
    config.AddRepresentative("rep-" + std::to_string(i), suite.votes[i]);
  }
  config.read_quorum = suite.read_quorum;
  config.write_quorum = suite.write_quorum;
  config.allow_unsafe_quorums = suite.unsafe;
  return config;
}

}  // namespace

std::vector<ChaosSuiteSpec> DefaultSuiteSpecs() {
  return {
      ChaosSuiteSpec{"r1w3x3", {1, 1, 1}, 1, 3, false},
      ChaosSuiteSpec{"r2w2x3", {1, 1, 1}, 2, 2, false},
      ChaosSuiteSpec{"r2w4x5", {1, 1, 1, 1, 1}, 2, 4, false},
      ChaosSuiteSpec{"weighted-r2w4", {2, 2, 1}, 2, 4, false},
  };
}

ChaosSuiteSpec NegativeControlSuite() {
  // V = 5, r + w = 5 <= V: a read quorum can miss the latest write quorum
  // entirely, so a partition that splits readers from the last writers
  // yields stale reads the checker must flag. 2w > V still holds — writes
  // stay totally ordered; the broken axiom is read/write intersection.
  return ChaosSuiteSpec{"broken-r2w3x5", {1, 1, 1, 1, 1}, 2, 3, true};
}

ChaosRunOutcome RunChaos(const ChaosRunSpec& spec) {
  ScheduleTemplateParams params;
  for (size_t i = 0; i < spec.suite.votes.size(); ++i) {
    params.rep_hosts.push_back("rep-" + std::to_string(i));
  }
  for (int c = 0; c < spec.clients; ++c) {
    params.client_hosts.push_back("client-" + std::to_string(c));
  }
  params.horizon = spec.horizon;
  FaultSchedule schedule =
      MakeScheduleFromTemplate(spec.schedule_template, spec.seed, params);
  return RunChaosWithSchedule(spec, schedule);
}

ChaosRunOutcome RunChaosWithSchedule(const ChaosRunSpec& spec,
                                     const FaultSchedule& schedule) {
  ClusterOptions opts;
  opts.seed = spec.seed;
  // Fast disks and a tight in-doubt watchdog keep one run's simulated
  // horizon (workload + fault clearance + convergence) in the tens of
  // seconds, so hundreds of seeds sweep in sensible wall time.
  opts.rep_options.disk_write_latency = LatencyModel::Fixed(Duration::Millis(2));
  opts.rep_options.disk_read_latency = LatencyModel::Fixed(Duration::Millis(1));
  opts.rep_options.participant.inquiry_interval = Duration::Millis(500);
  opts.rep_options.participant.indoubt_resolution_timeout = Duration::Seconds(3);
  // Orphan locks (client died / abort reply lost mid-fault) must sweep well
  // before the convergence read, or wait-die kills it as the youngest txn.
  // Still orders of magnitude above this workload's sub-second transactions.
  opts.rep_options.participant.lock_lease = Duration::Seconds(5);
  if (spec.scrape_resolution > Duration::Zero()) {
    opts.scrape_resolution = spec.scrape_resolution;
  }
  Cluster cluster(opts);
  if (spec.collect_trace) {
    cluster.tracer().Enable(true);
  }

  SuiteConfig config = BuildConfig(spec.suite);
  for (const RepresentativeInfo& rep : config.representatives) {
    cluster.AddRepresentative(rep.host_name);
  }
  WVOTE_CHECK_MSG(cluster.CreateSuite(config, kInitialContents).ok(),
                  "chaos suite bootstrap failed");

  SuiteClientOptions client_options;
  client_options.probe_timeout = Duration::Millis(300);
  client_options.data_timeout = Duration::Seconds(1);
  client_options.max_gather_rounds = static_cast<int>(config.representatives.size()) + 2;
  std::vector<SuiteClient*> clients;
  for (int c = 0; c < spec.clients; ++c) {
    clients.push_back(
        cluster.AddClient("client-" + std::to_string(c), config, client_options));
  }
  // The convergence observer probes everyone: after heal it must find a
  // read quorum whatever the faults did to individual representatives.
  SuiteClientOptions observer_options = client_options;
  observer_options.strategy = QuorumStrategy::kBroadcast;
  SuiteClient* observer = cluster.AddClient("observer", config, observer_options);

  HistoryRecorder recorder(&cluster.sim());
  Nemesis nemesis(&cluster, schedule);
  nemesis.Deploy();

  for (int c = 0; c < spec.clients; ++c) {
    Spawn(RunWorkloadClient(&cluster.sim(), clients[static_cast<size_t>(c)], &recorder, c,
                            spec.ops_per_client, spec.write_fraction,
                            spec.seed * 1000003u + static_cast<uint64_t>(c)));
  }
  uint64_t strategy_rotations = 0;
  if (spec.rotate_strategies) {
    // Workload clients only: the convergence observer stays on broadcast.
    Spawn(RotateStrategies(&cluster.sim(), clients, spec.horizon, &strategy_rotations));
  }

  // Drain the workload, the schedule, and every background convergence
  // mechanism (retriers, in-doubt watchdogs). Bounded, so a retrier parked
  // against a host the (possibly minimized) schedule never restarts cannot
  // hang the sweep.
  cluster.sim().RunFor(spec.horizon + Duration::Seconds(30));

  std::optional<bool> final_done =
      cluster.RunTaskFor(RunFinalRead(observer, &recorder), Duration::Seconds(30));

  ChaosRunOutcome outcome;
  outcome.schedule = schedule;
  outcome.history = recorder.ops();
  outcome.initial_contents = kInitialContents;
  outcome.nemesis_events_applied = nemesis.events_applied();
  outcome.nemesis_crashes = nemesis.stats().crashes;
  outcome.nemesis_phase_crashes = nemesis.stats().phase_crashes;
  outcome.strategy_rotations = strategy_rotations;
  outcome.check = CheckHistory(outcome.history, outcome.initial_contents);
  outcome.final_read_ok = final_done.value_or(false);
  if (!outcome.final_read_ok) {
    const bool have_ops = !outcome.history.empty();
    outcome.check.violations.push_back(ChaosViolation{
        "convergence",
        "post-heal broadcast read did not succeed: " +
            (have_ops ? outcome.history.back().ToString() : std::string("no ops")),
        have_ops ? std::vector<uint64_t>{outcome.history.back().id}
                 : std::vector<uint64_t>{}});
  }
  // Artifacts are byte-replayable records of the simulation; drop the
  // wall-clock throughput gauge (how fast *this machine* ran the event
  // loop), which would make two identical runs dump different bytes.
  MetricsSnapshot metrics_snapshot = cluster.metrics().Snapshot();
  metrics_snapshot.gauges.erase("sim.events_per_sec");
  outcome.metrics_json = metrics_snapshot.ToJson();
  if (spec.collect_trace) {
    bool first = true;
    cluster.tracer().AppendChromeEvents(&outcome.chrome_trace, &first, 0, "chaos");
  }
  if (cluster.scraper() != nullptr) {
    outcome.timeseries_json =
        cluster.scraper()->store().ExportJson(cluster.scraper()->store().capacity());
    outcome.flight_record = cluster.DumpFlightRecord();
    if (cluster.slo() != nullptr) {
      outcome.slo_breaches = cluster.slo()->total_breaches();
    }
  }
  return outcome;
}

FaultSchedule MinimizeSchedule(const ChaosRunSpec& spec, const FaultSchedule& failing) {
  FaultSchedule current = failing;
  // Shortest failing prefix first: one pass, biggest cuts.
  for (size_t n = 0; n < current.events.size(); ++n) {
    FaultSchedule candidate = current.Truncated(n);
    if (!RunChaosWithSchedule(spec, candidate).check.ok()) {
      current = candidate;
      break;
    }
  }
  // Greedy single-event removal to a fixpoint. Determinism makes each
  // replay an exact oracle: the failure either reproduces or it does not.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < current.events.size(); ++i) {
      FaultSchedule candidate = current.Without(i);
      if (!RunChaosWithSchedule(spec, candidate).check.ok()) {
        current = candidate;
        progress = true;
        break;
      }
    }
  }
  current.name = "minimized(" + failing.name + ")";
  return current;
}

std::string DumpArtifact(const ChaosRunSpec& spec, const FaultSchedule& schedule,
                         const ChaosRunOutcome& outcome) {
  char header[512];
  std::snprintf(header, sizeof(header),
                "spec seed=%" PRIu64
                " template=%s suite=%s votes=%s r=%d w=%d unsafe=%d clients=%d ops=%d "
                "write_fraction=%.9g horizon_us=%" PRId64 " rotate=%d\n",
                spec.seed, spec.schedule_template.c_str(), spec.suite.name.c_str(),
                JoinVotes(spec.suite.votes).c_str(), spec.suite.read_quorum,
                spec.suite.write_quorum, spec.suite.unsafe ? 1 : 0, spec.clients,
                spec.ops_per_client, spec.write_fraction, spec.horizon.ToMicros(),
                spec.rotate_strategies ? 1 : 0);
  std::string out = header;
  out += schedule.Serialize();
  out += "--- report (everything below is ignored on replay)\n";
  out += outcome.check.Report(schedule);
  out += "--- history\n";
  for (const ChaosOp& op : outcome.history) {
    out += op.ToString();
    out += '\n';
  }
  out += "--- metrics\n";
  out += outcome.metrics_json;
  out += '\n';
  if (!outcome.chrome_trace.empty()) {
    out += "--- trace\n{\"traceEvents\":[\n" + outcome.chrome_trace + "\n]}\n";
  }
  if (!outcome.flight_record.empty()) {
    // Like every section after "--- report", replay-invisible: the parser
    // stops at the first "---" line.
    out += "--- flight-recorder\n";
    out += outcome.flight_record;
    out += '\n';
  }
  return out;
}

Result<ChaosReplayFile> ParseArtifact(const std::string& text) {
  ChaosReplayFile file;
  bool saw_spec = false;
  std::string schedule_text;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("---", 0) == 0) {
      break;  // report sections; not needed for replay
    }
    if (line.rfind("spec ", 0) == 0) {
      std::map<std::string, std::string> kv;
      size_t p = 5;
      while (p < line.size()) {
        size_t sp = line.find(' ', p);
        if (sp == std::string::npos) {
          sp = line.size();
        }
        const std::string token = line.substr(p, sp - p);
        const size_t eq = token.find('=');
        if (eq != std::string::npos) {
          kv[token.substr(0, eq)] = token.substr(eq + 1);
        }
        p = sp + 1;
      }
      for (const char* required :
           {"seed", "template", "suite", "votes", "r", "w", "unsafe", "clients", "ops",
            "write_fraction", "horizon_us"}) {
        if (kv.find(required) == kv.end()) {
          return InvalidArgumentError("artifact spec line missing '" +
                                      std::string(required) + "'");
        }
      }
      file.spec.seed = std::strtoull(kv["seed"].c_str(), nullptr, 10);
      file.spec.schedule_template = kv["template"];
      file.spec.suite.name = kv["suite"];
      file.spec.suite.votes = SplitVotes(kv["votes"]);
      file.spec.suite.read_quorum = std::atoi(kv["r"].c_str());
      file.spec.suite.write_quorum = std::atoi(kv["w"].c_str());
      file.spec.suite.unsafe = kv["unsafe"] == "1";
      file.spec.clients = std::atoi(kv["clients"].c_str());
      file.spec.ops_per_client = std::atoi(kv["ops"].c_str());
      file.spec.write_fraction = std::strtod(kv["write_fraction"].c_str(), nullptr);
      file.spec.horizon = Duration::Micros(std::strtoll(kv["horizon_us"].c_str(), nullptr, 10));
      // Optional (absent in artifacts dumped before strategy rotation
      // existed; those replay with rotation off, matching their run).
      file.spec.rotate_strategies = kv.count("rotate") != 0 && kv["rotate"] == "1";
      saw_spec = true;
    } else if (!line.empty()) {
      schedule_text += line;
      schedule_text += '\n';
    }
  }
  if (!saw_spec) {
    return InvalidArgumentError("artifact missing 'spec ...' line");
  }
  Result<FaultSchedule> schedule = FaultSchedule::Parse(schedule_text);
  WVOTE_RETURN_IF_ERROR(schedule.status());
  file.schedule = std::move(schedule.value());
  return file;
}

}  // namespace wvote
