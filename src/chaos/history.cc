#include "src/chaos/history.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/common/check.h"

namespace wvote {

std::string ChaosOp::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "op %" PRIu64 " client=%d %s [%.3fms, %.3fms] %s v=%" PRIu64
                " value='%s' status=%s",
                id, client, type == ChaosOpType::kRead ? "read " : "write",
                invoke.ToMicros() / 1000.0, done ? response.ToMicros() / 1000.0 : -1.0,
                !done ? "pending" : (ok ? "ok" : "ambiguous"), version,
                value.size() > 40 ? (value.substr(0, 40) + "...").c_str() : value.c_str(),
                status.c_str());
  return buf;
}

uint64_t HistoryRecorder::Invoke(int client, const std::string& suite, ChaosOpType type,
                                 std::string value) {
  ChaosOp op;
  op.id = ops_.size() + 1;
  op.client = client;
  op.suite = suite;
  op.type = type;
  op.invoke = sim_->Now();
  op.value = std::move(value);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void HistoryRecorder::Complete(uint64_t id, const Status& st, Version version,
                               std::string value) {
  WVOTE_CHECK_MSG(id >= 1 && id <= ops_.size(), "unknown history op id");
  ChaosOp& op = ops_[id - 1];
  WVOTE_CHECK_MSG(!op.done, "history op completed twice");
  op.done = true;
  op.response = sim_->Now();
  op.ok = st.ok();
  op.status = st.ToString();
  op.version = version;
  if (op.type == ChaosOpType::kRead) {
    op.value = std::move(value);
  }
}

std::string HistoryRecorder::Dump() const {
  std::string out;
  for (const ChaosOp& op : ops_) {
    out += op.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace wvote
