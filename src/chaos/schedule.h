// Composable, seed-deterministic fault schedules.
//
// A FaultSchedule is a value object: an ordered list of FaultEvents, each an
// (offset, action, target) triple. Schedules are built once — either from a
// named template expanded under a seed, or parsed back from a dumped
// artifact — and then *applied* deterministically by the Nemesis; no
// randomness survives into application, so replaying a schedule against the
// same cluster seed reproduces the run bit-for-bit. That determinism is what
// makes greedy schedule minimization (drop an event, replay, keep the drop
// if the failure persists) an exact algorithm rather than a heuristic.
//
// Events cover every fault the simulator can express:
//   * crash/restart cycles on a named host (kCrashRestart);
//   * phase-targeted one-shot crashes keyed off TraceLog breadcrumbs
//     (kCrashOnTrace — crash-on-prepare, crash-after-decision-before-
//     phase-2, ...);
//   * partitions into named groups, with heal (kPartition / kHeal);
//   * network weather: loss, duplication, delay spikes on every link
//     (kLinkKnobs);
//   * stable-storage faults: probabilistic clean write failures
//     (kStoreFaults) and one-shot torn flushes (kStoreTearNextFlush).
//
// Schedules serialize to a line-based text form that round-trips exactly,
// so a failing run's schedule can be dumped, attached to a bug report, and
// replayed by chaos_cli.

#ifndef WVOTE_SRC_CHAOS_SCHEDULE_H_
#define WVOTE_SRC_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/trace/trace.h"

namespace wvote {

enum class FaultAction : uint8_t {
  kCrashRestart,        // crash `host` at `at`, restart after `duration`
  kCrashOnTrace,        // one-shot: crash `host` when it records `trace_kind`
  kPartition,           // split hosts into `groups` (by host name)
  kHeal,                // heal any partition
  kLinkKnobs,           // set loss/dup/spike knobs on every link
  kStoreFaults,         // set `host`'s store write_fail_probability = p1
  kStoreTearNextFlush,  // one-shot: tear `host`'s next stable-store flush
};

const char* FaultActionName(FaultAction action);

struct FaultEvent {
  Duration at;          // offset from run start
  FaultAction action = FaultAction::kHeal;
  std::string host;     // target host name (crash/store actions)
  std::vector<std::vector<std::string>> groups;  // kPartition only
  Duration duration;    // kCrashRestart / kCrashOnTrace downtime
  TraceKind trace_kind = TraceKind::kCustom;     // kCrashOnTrace only
  // Probability knobs: kLinkKnobs uses (p1=loss, p2=dup, p3=spike prob) and
  // `spike` as the spike size; kStoreFaults uses p1 = write-fail prob.
  double p1 = 0.0;
  double p2 = 0.0;
  double p3 = 0.0;
  Duration spike;

  std::string ToLine() const;
  static Result<FaultEvent> FromLine(const std::string& line);
  std::string ToString() const;  // human-readable one-liner
};

struct FaultSchedule {
  std::string name;  // template name (or "minimized(<name>)" etc.)
  std::vector<FaultEvent> events;

  // Text form: "schedule <name>" then one "event ..." line per event.
  // Parse(Serialize()) round-trips exactly.
  std::string Serialize() const;
  static Result<FaultSchedule> Parse(const std::string& text);

  // Copy with event `index` removed (minimization step).
  FaultSchedule Without(size_t index) const;
  // Copy truncated to the first `n` events.
  FaultSchedule Truncated(size_t n) const;

  std::string ToString() const;  // human-readable, one event per line
};

// Inputs a template needs to shape a schedule around a deployment.
struct ScheduleTemplateParams {
  std::vector<std::string> rep_hosts;
  std::vector<std::string> client_hosts;  // coordinator hosts
  // Workload horizon. Faults are injected inside [0, ~0.7*horizon] and every
  // template heals/restarts/clears by ~0.8*horizon, so a final convergence
  // read after the horizon exercises acknowledged-write durability with no
  // standing excuse.
  Duration horizon = Duration::Seconds(8);
};

// Names of the built-in templates, in sweep order.
std::vector<std::string> ScheduleTemplateNames();

// Expands `template_name` deterministically under `seed`. Aborts on an
// unknown name (ScheduleTemplateNames() is the contract).
FaultSchedule MakeScheduleFromTemplate(const std::string& template_name, uint64_t seed,
                                       const ScheduleTemplateParams& params);

}  // namespace wvote

#endif  // WVOTE_SRC_CHAOS_SCHEDULE_H_
