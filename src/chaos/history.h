// Jepsen-style operation history.
//
// Every client operation attempt is logged twice: Invoke() when the client
// issues it and Complete() when the response (or final error) arrives. An
// op that completed with ok=true carries the version it observed (reads) or
// installed (writes); an op that did not complete ok is *ambiguous* — it
// may or may not have taken effect (a commit whose ack was lost can still
// be durable), so the checker treats its effects as permitted but never
// required. Each write attempt uses a globally unique payload, which is
// what lets the checker map an observed value back to the exact attempt
// that produced it.

#ifndef WVOTE_SRC_CHAOS_HISTORY_H_
#define WVOTE_SRC_CHAOS_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/types.h"
#include "src/sim/simulator.h"

namespace wvote {

enum class ChaosOpType : uint8_t { kRead, kWrite };

struct ChaosOp {
  uint64_t id = 0;  // 1-based, in invocation order
  int client = 0;   // -1 = the runner's final convergence read
  std::string suite;
  ChaosOpType type = ChaosOpType::kRead;
  TimePoint invoke;
  TimePoint response;
  bool done = false;  // Complete() was called
  bool ok = false;    // completed successfully
  Version version = 0;   // read: observed; write: committed (when ok)
  std::string value;     // read: contents observed; write: payload attempted
  std::string status;    // final status string (for the counterexample dump)

  // Not ok: the op may or may not have taken effect.
  bool ambiguous() const { return !ok; }

  std::string ToString() const;
};

class HistoryRecorder {
 public:
  explicit HistoryRecorder(Simulator* sim) : sim_(sim) {}

  // Returns the op id to pass to Complete(). For writes, `value` is the
  // attempt's (unique) payload; for reads it is empty until completion.
  uint64_t Invoke(int client, const std::string& suite, ChaosOpType type,
                  std::string value = "");

  // `version`/`value` are meaningful when `st` is ok; for writes the value
  // recorded at Invoke() time is kept.
  void Complete(uint64_t id, const Status& st, Version version, std::string value = "");

  const std::vector<ChaosOp>& ops() const { return ops_; }

  // One line per op; part of the failure artifact.
  std::string Dump() const;

 private:
  Simulator* sim_;
  std::vector<ChaosOp> ops_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_CHAOS_HISTORY_H_
