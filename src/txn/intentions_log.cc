#include "src/txn/intentions_log.h"

#include "src/common/bytes.h"

namespace wvote {

std::string TxnRecord::Serialize() const {
  BufferWriter w;
  w.WriteI64(txn.timestamp_us);
  w.WriteU64(txn.serial);
  w.WriteU32(static_cast<uint32_t>(txn.coordinator));
  w.WriteU8(static_cast<uint8_t>(state));
  w.WriteU32(static_cast<uint32_t>(writes.size()));
  for (const WriteIntent& wi : writes) {
    w.WriteString(wi.key);
    w.WriteString(wi.value.str());
  }
  return w.Take();
}

Result<TxnRecord> TxnRecord::Parse(const std::string& bytes) {
  BufferReader r(bytes);
  TxnRecord rec;
  rec.txn.timestamp_us = r.ReadI64();
  rec.txn.serial = r.ReadU64();
  rec.txn.coordinator = static_cast<HostId>(r.ReadU32());
  rec.state = static_cast<TxnRecordState>(r.ReadU8());
  const uint32_t n = r.ReadU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    WriteIntent wi;
    wi.key = r.ReadString();
    wi.value = SharedPayload(r.ReadString());
    rec.writes.push_back(std::move(wi));
  }
  if (r.failed() || !r.AtEnd()) {
    return CorruptionError("bad txn record");
  }
  if (rec.state != TxnRecordState::kPrepared && rec.state != TxnRecordState::kCommitted) {
    return CorruptionError("bad txn record state");
  }
  return rec;
}

std::string IntentionsLog::KeyFor(const TxnId& txn) {
  return "txnlog/" + std::to_string(txn.timestamp_us) + "." + std::to_string(txn.serial) +
         "." + std::to_string(txn.coordinator);
}

Task<Status> IntentionsLog::Put(const TxnRecord& record, TraceContext ctx) {
  return store_->Write(KeyFor(record.txn), record.Serialize(), ctx);
}

Task<Status> IntentionsLog::Remove(const TxnId& txn, TraceContext ctx) {
  return store_->Delete(KeyFor(txn), ctx);
}

std::vector<TxnRecord> IntentionsLog::RecoverAll() const {
  std::vector<TxnRecord> records;
  for (const std::string& key : store_->KeysWithPrefix("txnlog/")) {
    Result<std::string> bytes = store_->ReadCommitted(key);
    if (!bytes.ok()) {
      continue;
    }
    Result<TxnRecord> rec = TxnRecord::Parse(bytes.value());
    if (rec.ok()) {
      records.push_back(std::move(rec.value()));
    }
  }
  return records;
}

Result<TxnRecord> IntentionsLog::Lookup(const TxnId& txn) const {
  Result<std::string> bytes = store_->ReadCommitted(KeyFor(txn));
  if (!bytes.ok()) {
    return bytes.status();
  }
  return TxnRecord::Parse(bytes.value());
}

}  // namespace wvote
