// Durable intentions log for two-phase commit participants.
//
// One log record per in-flight transaction, stored as a stable-storage page
// under "txnlog/<txn>". Lifecycle:
//
//   Prepare  -> record {kPrepared, writes} written durably (the yes-vote)
//   Commit   -> record rewritten as {kCommitted, writes}, then the writes
//               are applied to the data pages, then the record is deleted
//   Abort    -> record deleted
//
// Recovery scans the prefix: kCommitted records are re-applied (apply is
// idempotent full-page writes); kPrepared records are in doubt and resolved
// by asking the coordinator.

#ifndef WVOTE_SRC_TXN_INTENTIONS_LOG_H_
#define WVOTE_SRC_TXN_INTENTIONS_LOG_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/task.h"
#include "src/storage/stable_store.h"
#include "src/txn/messages.h"
#include "src/txn/txn_id.h"

namespace wvote {

enum class TxnRecordState : uint8_t { kPrepared = 1, kCommitted = 2 };

struct TxnRecord {
  TxnId txn;
  TxnRecordState state = TxnRecordState::kPrepared;
  std::vector<WriteIntent> writes;

  std::string Serialize() const;
  static Result<TxnRecord> Parse(const std::string& bytes);
};

class IntentionsLog {
 public:
  explicit IntentionsLog(StableStore* store) : store_(store) {}

  // `ctx` flows into the underlying stable-store write ("phase.disk" span).
  Task<Status> Put(const TxnRecord& record, TraceContext ctx = TraceContext());
  Task<Status> Remove(const TxnId& txn, TraceContext ctx = TraceContext());

  // Latency-free committed-state scan for crash recovery.
  std::vector<TxnRecord> RecoverAll() const;
  Result<TxnRecord> Lookup(const TxnId& txn) const;

  static std::string KeyFor(const TxnId& txn);

 private:
  StableStore* store_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_TXN_INTENTIONS_LOG_H_
