// Per-server lock manager with wait-die deadlock avoidance.
//
// Gifford's representatives serialize access with read (shared) and write
// (exclusive) locks held until transaction end (strict two-phase locking).
// Distributed deadlock is avoided with the classic wait-die rule: a
// requester older than every conflicting holder is allowed to wait; a
// younger requester is refused immediately (kConflict) and its transaction
// aborts and may retry — keeping its original timestamp so it eventually
// becomes the oldest and succeeds.
//
// The lock table is volatile: a crash clears it (callers re-acquire after
// recovery), which is exactly what happens to lock state on a real server.

#ifndef WVOTE_SRC_TXN_LOCK_MANAGER_H_
#define WVOTE_SRC_TXN_LOCK_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/sim/future.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/trace/span.h"
#include "src/txn/txn_id.h"

namespace wvote {

enum class LockMode { kShared, kExclusive };

inline const char* LockModeName(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

struct LockManagerStats {
  uint64_t grants_immediate = 0;
  uint64_t grants_after_wait = 0;
  uint64_t dies = 0;      // wait-die refusals
  uint64_t timeouts = 0;  // waiters that gave up
  uint64_t upgrades = 0;  // S -> X upgrades
  uint64_t leases_expired = 0;  // orphaned holders swept by the lease policy
  uint64_t waits_on_committing = 0;  // wait-die deaths converted to waits by
                                     // the committing-holder wait policy
  uint64_t waits_on_courtesy = 0;    // wait-die deaths converted to waits
                                     // because the holder is a courtesy txn

  void Reset() { *this = LockManagerStats{}; }
  // Registers every field as `txn.lock_manager.*{labels}`; this struct must
  // outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

class LockManager {
 public:
  explicit LockManager(Simulator* sim) : sim_(sim) {}

  // Acquires `mode` on `key` for `txn`, waiting up to `timeout` if the
  // wait-die rule permits waiting. Re-acquiring a held lock is a no-op;
  // S -> X upgrade succeeds immediately when txn is the sole holder.
  // A valid `ctx` records a "phase.lock_wait" child span — only when the
  // request actually parks (immediate grants and dies produce no span).
  Task<Status> Acquire(TxnId txn, std::string key, LockMode mode, Duration timeout,
                       TraceContext ctx = TraceContext());

  // Lock-wait spans are attributed to `host` (the owning participant).
  void SetTracer(Tracer* tracer, HostId host) {
    tracer_ = tracer;
    host_ = host;
  }

  // Releases every lock held by `txn` and wakes eligible waiters.
  void ReleaseAll(TxnId txn);

  // Installs the orphan-lock lease policy: when an Acquire encounters a
  // holder granted more than `lease` ago that `exempt` does not protect, the
  // holder's transaction is presumed dead and released. Zero disables.
  void SetLeasePolicy(Duration lease, std::function<bool(const TxnId&)> exempt);

  // Installs the committing-holder wait policy: a younger requester that
  // wait-die would refuse may instead WAIT (bounded by its timeout) when
  // `committing` reports every conflicting holder as committing. Safe
  // because a committing transaction acquires nothing further — it has no
  // outgoing wait edges, so waiting on it can never close a deadlock cycle.
  // This keeps back-to-back writes from aborting on the short lock tail the
  // asynchronous phase-2 commit leaves behind. Unset = classic wait-die.
  void SetWaitPolicy(std::function<bool(const TxnId&)> committing);

  // Lease sweep: releases every lock granted before `now - lease` whose
  // holder `exempt` does not protect (prepared transactions must keep their
  // locks until their 2PC outcome is known). Returns the released holders'
  // transaction ids. This is the orphan-lock backstop: a client that crashed
  // or lost its reply after a probe was granted never sends an explicit
  // release, and without leases that lock would stall the key forever.
  std::vector<TxnId> ReleaseExpired(Duration lease,
                                    const std::function<bool(const TxnId&)>& exempt);

  // Drops the whole table (host crash).
  void Clear();

  bool Holds(TxnId txn, const std::string& key, LockMode mode) const;
  size_t num_locked_keys() const { return table_.size(); }
  const LockManagerStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this table's counters plus a locked-key gauge. The lock
  // manager has no host identity of its own, so the owner supplies labels.
  void RegisterMetrics(MetricsRegistry* registry, const MetricLabels& labels);

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
    TimePoint granted_at;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    Promise<Status> wakeup;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  // True if `txn` may be granted `mode` given current holders (ignoring any
  // holding entry for txn itself, which is handled as reentry/upgrade).
  static bool Compatible(const Entry& entry, TxnId txn, LockMode mode);

  // Grants queued waiters that have become compatible, FIFO.
  void WakeWaiters(const std::string& key);

  // Applies the lease policy to `key`'s holders before a new acquire.
  void MaybeExpireHolders(const std::string& key);

  // True if wait-die must refuse `txn` requesting `mode` against the
  // current holders of `entry` (applies the committing-holder wait policy).
  bool MustDie(const Entry& entry, TxnId txn, LockMode mode);

  Simulator* sim_;
  Tracer* tracer_ = nullptr;
  HostId host_ = kInvalidHost;
  std::map<std::string, Entry> table_;
  Duration lease_ = Duration::Zero();
  std::function<bool(const TxnId&)> lease_exempt_;
  std::function<bool(const TxnId&)> committing_;
  LockManagerStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_TXN_LOCK_MANAGER_H_
