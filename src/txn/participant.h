// Transaction participant: the server-side half of the substrate.
//
// One Participant runs on each representative's host. It owns the volatile
// lock table, the durable intentions log, and the durable data pages, and
// serves the lock / transactional-read / prepare / commit / abort RPCs.
//
// Crash behavior: the lock table clears (Host crash listener); in-flight
// disk operations abort. On restart, recovery re-applies committed records,
// re-locks and resolves prepared (in-doubt) records by asking their
// coordinators, and only then opens for business.

#ifndef WVOTE_SRC_TXN_PARTICIPANT_H_
#define WVOTE_SRC_TXN_PARTICIPANT_H_

#include <set>
#include <string>

#include "src/rpc/rpc.h"
#include "src/storage/stable_store.h"
#include "src/txn/intentions_log.h"
#include "src/txn/lock_manager.h"
#include "src/txn/messages.h"

namespace wvote {

struct ParticipantStats {
  uint64_t prepares_ok = 0;
  uint64_t prepares_refused = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t recoveries = 0;
  uint64_t recovered_committed = 0;
  uint64_t recovered_in_doubt = 0;
  uint64_t leases_expired = 0;  // orphaned transactions swept
  uint64_t indoubt_timer_fired = 0;  // prepared txns resolved by the
                                     // in-doubt watchdog, not by phase 2

  void Reset() { *this = ParticipantStats{}; }
  // Registers every field as `txn.participant.*{labels}`; this struct must
  // outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

struct ParticipantOptions {
  // How long a lock request queues behind a conflicting holder before the
  // caller gives up.
  Duration lock_wait_timeout = Duration::Seconds(10);
  // Retransmission interval for in-doubt decision inquiries.
  Duration inquiry_interval = Duration::Seconds(1);
  // Orphan-lock lease: locks whose transaction shows no progress for this
  // long are presumed abandoned (crashed client, lost reply) and released —
  // EXCEPT locks of prepared transactions, which must hold until their 2PC
  // outcome is known. Zero disables the sweeper. Must be much longer than
  // any legitimate transaction.
  Duration lock_lease = Duration::Seconds(60);
  // How long a prepared transaction may sit undecided before this
  // participant asks the coordinator itself. With the coordinator's phase 2
  // running off the client's critical path, the coordinator can crash after
  // the decision is durable but before any CommitReq lands; this timer
  // guarantees convergence without waiting for a participant restart. Must
  // comfortably exceed a healthy phase-2 delivery (one round trip). Zero
  // disables the timer (in-doubt records then resolve only via recovery).
  Duration indoubt_resolution_timeout = Duration::Seconds(15);
};

class Participant {
 public:
  Participant(RpcEndpoint* rpc, StableStore* store, ParticipantOptions options = {});

  LockManager& locks() { return locks_; }
  StableStore& store() { return *store_; }
  const ParticipantStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this participant's counters and its lock manager's, labeled
  // by host name.
  void RegisterMetrics(MetricsRegistry* registry);

  // Key of the durable page backing application object `key`.
  static std::string DataKey(const std::string& key) { return "data/" + key; }

  // Latency-free committed read; the voting layer uses this for version
  // inquiries that do not take locks.
  Result<std::string> PeekCommitted(const std::string& key) const;

  // Local (same-host) transactional operations, used when a client or a
  // suite component is co-resident with the representative. A valid `ctx`
  // parents the lock-wait and disk child spans this work records.
  Task<Result<std::string>> TxnRead(TxnId txn, std::string key,
                                    TraceContext ctx = TraceContext());
  Task<Status> Lock(TxnId txn, std::string key, LockMode mode,
                    TraceContext ctx = TraceContext());
  Task<Status> Prepare(TxnId txn, std::vector<WriteIntent> writes,
                       TraceContext ctx = TraceContext());
  Task<Status> Commit(TxnId txn, TraceContext ctx = TraceContext());
  Task<Status> Abort(TxnId txn, TraceContext ctx = TraceContext());

 private:
  void RegisterHandlers();
  Task<void> Recover();

  // Applies a committed record's intents to the data pages (one
  // group-committed batch), then GCs it.
  Task<Status> ApplyCommitted(TxnRecord record, TraceContext ctx = TraceContext());
  // Resolves one in-doubt prepared record by querying its coordinator.
  Task<void> ResolveInDoubt(TxnRecord record);
  // Watchdog armed at prepare time: if the transaction is still undecided
  // after options_.indoubt_resolution_timeout, resolve it by inquiry.
  Task<void> ResolveIfStillInDoubt(TxnRecord record);

  RpcEndpoint* rpc_;
  StableStore* store_;
  ParticipantOptions options_;
  LockManager locks_;
  IntentionsLog log_;
  // Transactions currently prepared here (volatile mirror of the durable
  // log); their locks are exempt from lease expiry.
  std::set<TxnId> prepared_;
  // Transactions whose commit decision has reached this participant and are
  // in the apply/release tail. Their locks release within a few disk
  // writes, so the lock manager lets younger requesters wait on them
  // instead of dying (see LockManager::SetWaitPolicy).
  std::set<TxnId> committing_;
  ParticipantStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_TXN_PARTICIPANT_H_
