// Presumed-abort two-phase commit coordinator.
//
// Runs on a client host. The commit decision is logged durably on the
// coordinator's own stable storage *before* any participant learns it;
// recovering participants resolve in-doubt transactions by asking this host
// (DecisionInquiryReq), and a missing decision record safely means "abort"
// because the coordinator never reports success before logging.

#ifndef WVOTE_SRC_TXN_COORDINATOR_H_
#define WVOTE_SRC_TXN_COORDINATOR_H_

#include <map>
#include <vector>

#include "src/rpc/rpc.h"
#include "src/storage/stable_store.h"
#include "src/txn/messages.h"
#include "src/txn/txn_id.h"

namespace wvote {

struct CoordinatorOptions {
  Duration rpc_timeout = Duration::Seconds(5);
  int commit_retries = 3;
  // When false (the default), CommitTransaction returns success as soon as
  // the commit decision is durable and phase 2 runs as a background task:
  // the committed write costs the client two round trips (prepare + the
  // gather that granted its locks) instead of three. Safe because the
  // outcome is already decided — the decision record plus the retry /
  // inquiry machinery delivers it to every participant eventually, crash or
  // not. Set true to pin the literal synchronous protocol (the analytic
  // model's 3-RTT closed form); model-validating benches and protocol
  // tests do.
  bool sync_phase2 = false;
};

struct CoordinatorStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t inquiries_served = 0;
  uint64_t async_phase2_spawned = 0;    // phase-2 fan-outs moved off the
                                        // client's critical path
  uint64_t async_phase2_completed = 0;  // of those, fan-outs that delivered
                                        // (or handed off to retriers)

  void Reset() { *this = CoordinatorStats{}; }
  // Registers every field as `txn.coordinator.*{labels}`; this struct must
  // outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

class Coordinator {
 public:
  Coordinator(RpcEndpoint* rpc, StableStore* store, CoordinatorOptions options = {});

  TxnId Begin();

  // Begins a transaction with an explicit timestamp. Retrying an aborted
  // transaction with its ORIGINAL timestamp is what gives wait-die its
  // progress guarantee: the retry ages relative to newer transactions and
  // eventually wins every conflict.
  TxnId BeginAt(int64_t timestamp_us);

  // Drives 2PC: prepare at every writer, durably log the decision, commit.
  // Read-only participants just get their locks released. Returns OK only
  // after the decision is durable and commit messages are on their way —
  // with sync_phase2, only after every participant acknowledged (or was
  // handed to a background retrier). A valid `ctx` records phase.prepare /
  // phase.disk / phase.commit_ack child spans, and the background phase-2
  // fan-out and retriers continue the same trace after the client's ack.
  Task<Status> CommitTransaction(TxnId txn,
                                 std::map<HostId, std::vector<WriteIntent>> writes,
                                 std::vector<HostId> read_only_participants,
                                 TraceContext ctx = TraceContext());

  // Aborts everywhere; best-effort (participants presume abort anyway).
  Task<void> AbortTransaction(TxnId txn, std::vector<HostId> participants,
                              TraceContext ctx = TraceContext());

  const CoordinatorStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Flips between the asynchronous (2-RTT) and literal synchronous (3-RTT)
  // commit; benches toggle this per run on an already-deployed cluster.
  void set_sync_phase2(bool sync) { options_.sync_phase2 = sync; }
  bool sync_phase2() const { return options_.sync_phase2; }

  // Registers this coordinator's counters, labeled by host name.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  static std::string DecisionKey(const TxnId& txn);
  Task<Status> SendPhase2(TxnId txn, std::vector<HostId> writers,
                          std::vector<HostId> read_only, TraceContext ctx);
  // Spawned wrapper around SendPhase2 for the asynchronous commit path.
  Task<void> RunPhase2InBackground(TxnId txn, std::vector<HostId> writers,
                                   std::vector<HostId> read_only, TraceContext ctx);
  Task<void> RetryCommitForever(TxnId txn, HostId participant, TraceContext ctx);

  RpcEndpoint* rpc_;
  StableStore* store_;
  CoordinatorOptions options_;
  uint64_t next_serial_ = 1;
  CoordinatorStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_TXN_COORDINATOR_H_
