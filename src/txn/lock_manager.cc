#include "src/txn/lock_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace wvote {

void LockManagerStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("txn.lock_manager.grants_immediate", labels, &grants_immediate);
  registry->RegisterCounter("txn.lock_manager.grants_after_wait", labels, &grants_after_wait);
  registry->RegisterCounter("txn.lock_manager.dies", labels, &dies);
  registry->RegisterCounter("txn.lock_manager.timeouts", labels, &timeouts);
  registry->RegisterCounter("txn.lock_manager.upgrades", labels, &upgrades);
  registry->RegisterCounter("txn.lock_manager.leases_expired", labels, &leases_expired);
  registry->RegisterCounter("txn.lock_manager.waits_on_committing", labels,
                            &waits_on_committing);
  registry->RegisterCounter("txn.lock_manager.waits_on_courtesy", labels,
                            &waits_on_courtesy);
  registry->AddResetHook([this]() { Reset(); });
}

void LockManager::RegisterMetrics(MetricsRegistry* registry, const MetricLabels& labels) {
  stats_.RegisterWith(registry, labels);
  registry->RegisterGauge("txn.lock_manager.locked_keys", labels,
                          [this]() { return static_cast<double>(table_.size()); });
}

bool LockManager::Compatible(const Entry& entry, TxnId txn, LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      continue;  // own holdings never conflict (reentry / upgrade)
    }
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

void LockManager::SetLeasePolicy(Duration lease, std::function<bool(const TxnId&)> exempt) {
  lease_ = lease;
  lease_exempt_ = std::move(exempt);
}

void LockManager::SetWaitPolicy(std::function<bool(const TxnId&)> committing) {
  committing_ = std::move(committing);
}

bool LockManager::MustDie(const Entry& entry, TxnId txn, LockMode mode) {
  bool waited_on_committing = false;
  bool waited_on_courtesy = false;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      continue;
    }
    const bool conflicts = (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive);
    if (!conflicts) {
      continue;
    }
    // A courtesy holder (background refresh) locks exactly one key and never
    // requests another lock while holding it, so it has no outgoing wait
    // edges — waiting on it cannot close a deadlock cycle. Without this rule
    // every client transaction is younger than the courtesy sentinel
    // timestamp and would die on the short refresh install window.
    if (h.txn.courtesy()) {
      waited_on_courtesy = true;
      continue;
    }
    if (txn.OlderThan(h.txn)) {
      continue;  // classic wait-die: older requesters may always wait
    }
    // Younger than a conflicting holder. A committing holder is guaranteed
    // to release soon and acquires nothing more (no outgoing wait edges),
    // so waiting on it cannot deadlock; any other younger-than case dies.
    if (committing_ && committing_(h.txn)) {
      waited_on_committing = true;
      continue;
    }
    return true;
  }
  if (waited_on_committing) {
    ++stats_.waits_on_committing;
  }
  if (waited_on_courtesy) {
    ++stats_.waits_on_courtesy;
  }
  return false;
}

void LockManager::MaybeExpireHolders(const std::string& key) {
  if (lease_ <= Duration::Zero()) {
    return;
  }
  auto it = table_.find(key);
  if (it == table_.end()) {
    return;
  }
  const TimePoint cutoff =
      TimePoint::FromMicros(sim_->Now().ToMicros() - lease_.ToMicros());
  std::vector<TxnId> stale;
  for (const Holder& h : it->second.holders) {
    if (h.granted_at <= cutoff && (!lease_exempt_ || !lease_exempt_(h.txn))) {
      stale.push_back(h.txn);
    }
  }
  for (const TxnId& txn : stale) {
    ++stats_.leases_expired;
    ReleaseAll(txn);  // presumed dead everywhere, not just on this key
  }
}

Task<Status> LockManager::Acquire(TxnId txn, std::string key, LockMode mode,
                                  Duration timeout, TraceContext ctx) {
  MaybeExpireHolders(key);
  Entry& entry = table_[key];

  // Reentrant acquire / upgrade detection.
  Holder* own = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      own = &h;
      break;
    }
  }
  if (own != nullptr) {
    if (own->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      co_return Status::Ok();  // already strong enough
    }
    if (Compatible(entry, txn, LockMode::kExclusive)) {
      own->mode = LockMode::kExclusive;
      ++stats_.upgrades;
      co_return Status::Ok();
    }
    // Upgrade must wait for other S holders to drain; fall through to the
    // wait-die check below.
  }

  const bool can_grant_now =
      own == nullptr && entry.waiters.empty() && Compatible(entry, txn, mode);
  if (can_grant_now) {
    entry.holders.push_back(Holder{txn, mode, sim_->Now()});
    ++stats_.grants_immediate;
    co_return Status::Ok();
  }

  // Wait-die: we may wait only if we are older than every conflicting
  // holder — or the holder is committing (see SetWaitPolicy).
  if (MustDie(entry, txn, mode)) {
    ++stats_.dies;
    co_return ConflictError("wait-die: " + txn.ToString() +
                            " younger than a conflicting holder on " + key);
  }

  // We are about to park: open the lock-wait span (grants and dies above
  // never reach here, so uncontended acquires record nothing).
  TraceContext wait_span;
  if (tracer_ != nullptr) {
    wait_span = tracer_->StartChild(ctx, host_, "phase.lock_wait");
    if (wait_span.valid()) {
      tracer_->Annotate(wait_span,
                        "key=" + key + " mode=" + LockModeName(mode) + " txn=" + txn.ToString());
    }
  }

  Promise<Status> wakeup(sim_);
  Future<Status> woken = wakeup.GetFuture();
  entry.waiters.push_back(Waiter{txn, mode, wakeup});

  EventHandle timeout_event = sim_->Schedule(timeout, [this, wakeup]() mutable {
    if (wakeup.Set(TimeoutError("lock wait timeout"))) {
      ++stats_.timeouts;
    }
  });

  Status st = co_await std::move(woken);
  timeout_event.Cancel();
  if (tracer_ != nullptr && wait_span.valid()) {
    tracer_->EndWith(wait_span, st.ok() ? "granted" : st.ToString());
  }
  if (st.ok()) {
    ++stats_.grants_after_wait;
  } else {
    // Remove our dead waiter entry so it doesn't block the queue. The entry
    // may already be gone if Clear()/ReleaseAll ran.
    auto it = table_.find(key);
    if (it != table_.end()) {
      auto& waiters = it->second.waiters;
      waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                   [&](const Waiter& w) {
                                     return w.txn == txn && w.wakeup.IsSet();
                                   }),
                    waiters.end());
      WakeWaiters(key);
    }
  }
  co_return st;
}

void LockManager::WakeWaiters(const std::string& key) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return;
  }
  Entry& entry = it->second;
  while (!entry.waiters.empty()) {
    Waiter& front = entry.waiters.front();
    if (front.wakeup.IsSet()) {  // timed out / aborted; sweep
      entry.waiters.pop_front();
      continue;
    }
    // An upgrade waiter holds S already; it becomes grantable when it is the
    // sole holder. A fresh waiter needs plain compatibility.
    Holder* own = nullptr;
    for (Holder& h : entry.holders) {
      if (h.txn == front.txn) {
        own = &h;
        break;
      }
    }
    if (!Compatible(entry, front.txn, front.mode)) {
      // Re-apply the wait-die rule against the CURRENT holders: a waiter
      // that is now younger than a conflicting holder must die, or it could
      // close a deadlock cycle that the admission-time check permitted.
      if (MustDie(entry, front.txn, front.mode)) {
        ++stats_.dies;
        front.wakeup.Set(ConflictError("wait-die on regrant: " + front.txn.ToString()));
        entry.waiters.pop_front();
        continue;
      }
      break;  // FIFO: nothing behind an ungrantable head is granted
    }
    if (own != nullptr) {
      own->mode = front.mode;
      ++stats_.upgrades;
    } else {
      entry.holders.push_back(Holder{front.txn, front.mode, sim_->Now()});
    }
    // Grant and keep sweeping: remaining waiters either batch in (shared),
    // or hit the incompatible branch above, where the regrant wait-die
    // check decides whether they may keep waiting.
    front.wakeup.Set(Status::Ok());
    entry.waiters.pop_front();
  }
  if (entry.holders.empty() && entry.waiters.empty()) {
    table_.erase(it);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::vector<std::string> touched;
  for (auto& [key, entry] : table_) {
    const size_t before = entry.holders.size();
    entry.holders.erase(std::remove_if(entry.holders.begin(), entry.holders.end(),
                                       [&](const Holder& h) { return h.txn == txn; }),
                        entry.holders.end());
    bool waiter_removed = false;
    for (Waiter& w : entry.waiters) {
      if (w.txn == txn && !w.wakeup.IsSet()) {
        w.wakeup.Set(AbortedError("transaction released while waiting"));
        waiter_removed = true;
      }
    }
    if (entry.holders.size() != before || waiter_removed) {
      touched.push_back(key);
    }
  }
  for (const std::string& key : touched) {
    WakeWaiters(key);
  }
}

std::vector<TxnId> LockManager::ReleaseExpired(
    Duration lease, const std::function<bool(const TxnId&)>& exempt) {
  const TimePoint cutoff =
      TimePoint::FromMicros(sim_->Now().ToMicros() - lease.ToMicros());
  std::vector<TxnId> expired;
  for (const auto& [key, entry] : table_) {
    for (const Holder& h : entry.holders) {
      if (h.granted_at <= cutoff && !exempt(h.txn)) {
        expired.push_back(h.txn);
      }
    }
  }
  // Deduplicate and release whole transactions (a txn past its lease is
  // presumed dead everywhere, not just on one key).
  std::sort(expired.begin(), expired.end());
  expired.erase(std::unique(expired.begin(), expired.end()), expired.end());
  for (const TxnId& txn : expired) {
    ReleaseAll(txn);
  }
  return expired;
}

void LockManager::Clear() {
  for (auto& [key, entry] : table_) {
    for (Waiter& w : entry.waiters) {
      w.wakeup.Set(AbortedError("lock manager cleared (crash)"));
    }
  }
  table_.clear();
}

bool LockManager::Holds(TxnId txn, const std::string& key, LockMode mode) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return false;
  }
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) {
      return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
    }
  }
  return false;
}

}  // namespace wvote
