#include "src/txn/participant.h"

#include <utility>

#include "src/common/check.h"

namespace wvote {

void ParticipantStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("txn.participant.prepares_ok", labels, &prepares_ok);
  registry->RegisterCounter("txn.participant.prepares_refused", labels, &prepares_refused);
  registry->RegisterCounter("txn.participant.commits", labels, &commits);
  registry->RegisterCounter("txn.participant.aborts", labels, &aborts);
  registry->RegisterCounter("txn.participant.recoveries", labels, &recoveries);
  registry->RegisterCounter("txn.participant.recovered_committed", labels,
                            &recovered_committed);
  registry->RegisterCounter("txn.participant.recovered_in_doubt", labels,
                            &recovered_in_doubt);
  registry->RegisterCounter("txn.participant.leases_expired", labels, &leases_expired);
  registry->RegisterCounter("txn.participant.indoubt_timer_fired", labels,
                            &indoubt_timer_fired);
  registry->AddResetHook([this]() { Reset(); });
}

void Participant::RegisterMetrics(MetricsRegistry* registry) {
  const MetricLabels labels{{"host", rpc_->host()->name()}};
  stats_.RegisterWith(registry, labels);
  locks_.RegisterMetrics(registry, labels);
}

Participant::Participant(RpcEndpoint* rpc, StableStore* store, ParticipantOptions options)
    : rpc_(rpc),
      store_(store),
      options_(options),
      locks_(rpc->sim()),
      log_(store) {
  // The network's tracer is wired before hosts are populated (Cluster ctor),
  // so this picks it up; manual fixtures without one get a null no-op.
  locks_.SetTracer(rpc_->network()->tracer(), rpc_->host_id());
  RegisterHandlers();
  rpc_->host()->AddCrashListener([this]() {
    locks_.Clear();
    prepared_.clear();
    committing_.clear();
  });
  rpc_->host()->AddRestartListener([this]() { Spawn(Recover()); });
  // Orphan locks are expired lazily, at the moment a new acquire runs into
  // them; prepared transactions are exempt until their 2PC outcome arrives.
  locks_.SetLeasePolicy(options_.lock_lease,
                        [this](const TxnId& txn) { return prepared_.count(txn) != 0; });
  // Younger lock requesters may wait on a transaction in its commit tail
  // (decision known, apply/release imminent) instead of dying: with phase 2
  // off the client's critical path the previous write's locks are routinely
  // still draining when the next transaction's probes arrive.
  locks_.SetWaitPolicy([this](const TxnId& txn) { return committing_.count(txn) != 0; });
}

void Participant::RegisterHandlers() {
  rpc_->HandleTraced<LockReq, Ack>(
      [this](HostId from, LockReq req, TraceContext ctx) -> Task<Result<Ack>> {
        Status st = co_await Lock(req.txn, std::move(req.key), req.mode, ctx);
        if (!st.ok()) {
          co_return st;
        }
        co_return Ack{};
      });
  rpc_->HandleTraced<TxnReadReq, TxnReadResp>(
      [this](HostId from, TxnReadReq req, TraceContext ctx) -> Task<Result<TxnReadResp>> {
        Result<std::string> value = co_await TxnRead(req.txn, std::move(req.key), ctx);
        if (!value.ok()) {
          co_return value.status();
        }
        co_return TxnReadResp{std::move(value.value())};
      });
  rpc_->HandleTraced<PrepareReq, Ack>(
      [this](HostId from, PrepareReq req, TraceContext ctx) -> Task<Result<Ack>> {
        Status st = co_await Prepare(req.txn, std::move(req.writes), ctx);
        if (!st.ok()) {
          co_return st;
        }
        co_return Ack{};
      });
  rpc_->HandleTraced<CommitReq, Ack>(
      [this](HostId from, CommitReq req, TraceContext ctx) -> Task<Result<Ack>> {
        Status st = co_await Commit(req.txn, ctx);
        if (!st.ok()) {
          co_return st;
        }
        co_return Ack{};
      });
  rpc_->HandleTraced<AbortReq, Ack>(
      [this](HostId from, AbortReq req, TraceContext ctx) -> Task<Result<Ack>> {
        Status st = co_await Abort(req.txn, ctx);
        if (!st.ok()) {
          co_return st;
        }
        co_return Ack{};
      });
}

Result<std::string> Participant::PeekCommitted(const std::string& key) const {
  return store_->ReadCommitted(DataKey(key));
}

Task<Status> Participant::Lock(TxnId txn, std::string key, LockMode mode, TraceContext ctx) {
  return locks_.Acquire(txn, DataKey(key), mode, options_.lock_wait_timeout, ctx);
}

Task<Result<std::string>> Participant::TxnRead(TxnId txn, std::string key, TraceContext ctx) {
  const std::string data_key = DataKey(key);
  Status st = co_await locks_.Acquire(txn, data_key, LockMode::kShared,
                                      options_.lock_wait_timeout, ctx);
  if (!st.ok()) {
    co_return st;
  }
  co_return co_await store_->Read(data_key, ctx);
}

Task<Status> Participant::Prepare(TxnId txn, std::vector<WriteIntent> writes,
                                  TraceContext ctx) {
  // The client must already hold exclusive locks on every key it intends to
  // write; a crash since then cleared them, in which case serializability is
  // no longer guaranteed and we must vote no.
  for (const WriteIntent& w : writes) {
    if (!locks_.Holds(txn, DataKey(w.key), LockMode::kExclusive)) {
      ++stats_.prepares_refused;
      co_return AbortedError("prepare without exclusive lock on " + w.key);
    }
  }
  TxnRecord record;
  record.txn = txn;
  record.state = TxnRecordState::kPrepared;
  record.writes = std::move(writes);
  Status st = co_await log_.Put(record, ctx);
  if (!st.ok()) {
    ++stats_.prepares_refused;
    co_return st;
  }
  prepared_.insert(txn);
  ++stats_.prepares_ok;
  if (options_.indoubt_resolution_timeout > Duration::Zero()) {
    Spawn(ResolveIfStillInDoubt(record));
  }
  if (TraceLog* trace = rpc_->network()->trace()) {
    trace->Record(rpc_->host_id(), TraceKind::kTxnPrepared, txn.ToString());
  }
  co_return Status::Ok();
}

Task<Status> Participant::Commit(TxnId txn, TraceContext ctx) {
  Result<TxnRecord> record = log_.Lookup(txn);
  if (!record.ok()) {
    // Record already applied and garbage-collected (duplicate commit), or
    // this was a read-only participant. Commit is idempotent.
    locks_.ReleaseAll(txn);
    co_return Status::Ok();
  }
  // The decision is known from here on: younger lock requesters may queue
  // behind this transaction's short apply/release tail instead of dying.
  committing_.insert(txn);
  record.value().state = TxnRecordState::kCommitted;
  Status st = co_await log_.Put(record.value(), ctx);
  if (!st.ok()) {
    committing_.erase(txn);
    co_return st;
  }
  st = co_await ApplyCommitted(std::move(record.value()), ctx);
  committing_.erase(txn);
  if (!st.ok()) {
    co_return st;
  }
  ++stats_.commits;
  prepared_.erase(txn);
  locks_.ReleaseAll(txn);
  if (TraceLog* trace = rpc_->network()->trace()) {
    trace->Record(rpc_->host_id(), TraceKind::kTxnCommitted, txn.ToString());
  }
  co_return Status::Ok();
}

Task<Status> Participant::Abort(TxnId txn, TraceContext ctx) {
  if (log_.Lookup(txn).ok()) {
    Status st = co_await log_.Remove(txn, ctx);
    if (!st.ok()) {
      co_return st;
    }
  }
  ++stats_.aborts;
  prepared_.erase(txn);
  locks_.ReleaseAll(txn);
  if (TraceLog* trace = rpc_->network()->trace()) {
    trace->Record(rpc_->host_id(), TraceKind::kTxnAborted, txn.ToString());
  }
  co_return Status::Ok();
}

Task<Status> Participant::ApplyCommitted(TxnRecord record, TraceContext ctx) {
  // All of the transaction's pages install under one group-committed flush
  // (one latency charge) — and the batch is all-or-nothing across a crash,
  // so recovery re-applies from the intact committed record either way.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(record.writes.size());
  for (const WriteIntent& w : record.writes) {
    entries.emplace_back(DataKey(w.key), w.value.str());
  }
  Status st = co_await store_->WriteBatch(std::move(entries), ctx);
  if (!st.ok()) {
    co_return st;  // crash mid-apply; recovery will re-apply
  }
  co_return co_await log_.Remove(record.txn, ctx);
}

Task<void> Participant::Recover() {
  ++stats_.recoveries;
  if (TraceLog* trace = rpc_->network()->trace()) {
    trace->Record(rpc_->host_id(), TraceKind::kRecoveryStarted, "");
  }
  for (TxnRecord& record : log_.RecoverAll()) {
    if (record.state == TxnRecordState::kCommitted) {
      ++stats_.recovered_committed;
      Status st = co_await ApplyCommitted(std::move(record));
      (void)st;  // a crash during recovery just means recovering again later
      continue;
    }
    // Prepared and in doubt. Re-lock the written keys so new transactions
    // cannot slip in under the undecided writes, then resolve asynchronously.
    ++stats_.recovered_in_doubt;
    prepared_.insert(record.txn);
    for (const WriteIntent& w : record.writes) {
      // The table is empty right after a crash, so these grants are
      // immediate; timeouts only matter if two in-doubt records overlap.
      (void)co_await locks_.Acquire(record.txn, DataKey(w.key), LockMode::kExclusive,
                                    options_.lock_wait_timeout);
    }
    Spawn(ResolveInDoubt(std::move(record)));
  }
}

Task<void> Participant::ResolveIfStillInDoubt(TxnRecord record) {
  const uint64_t epoch = rpc_->host()->crash_epoch();
  co_await rpc_->sim()->Sleep(options_.indoubt_resolution_timeout);
  if (!rpc_->host()->up() || rpc_->host()->crash_epoch() != epoch) {
    co_return;  // crashed meanwhile; recovery owns in-doubt resolution now
  }
  if (prepared_.count(record.txn) == 0 || committing_.count(record.txn) != 0) {
    co_return;  // phase 2 arrived (or an abort did): nothing to resolve
  }
  // Still prepared and undecided long after prepare succeeded. The usual
  // cause is a coordinator that crashed after durably logging its decision
  // but before delivering phase 2 (the client may already hold a success
  // for this transaction!) — ask instead of waiting for our own restart.
  ++stats_.indoubt_timer_fired;
  co_await ResolveInDoubt(std::move(record));
}

Task<void> Participant::ResolveInDoubt(TxnRecord record) {
  for (;;) {
    if (!rpc_->host()->up()) {
      co_return;  // crashed again; next recovery restarts resolution
    }
    Result<DecisionResp> resp = co_await rpc_->Call<DecisionInquiryReq, DecisionResp>(
        record.txn.coordinator, DecisionInquiryReq{record.txn}, options_.inquiry_interval);
    if (resp.ok()) {
      if (TraceLog* trace = rpc_->network()->trace()) {
        trace->Record(rpc_->host_id(), TraceKind::kInDoubtResolved,
                      record.txn.ToString() + (resp.value().decision == TxnDecision::kCommitted
                                                   ? " -> commit"
                                                   : " -> abort"));
      }
      if (resp.value().decision == TxnDecision::kCommitted) {
        (void)co_await Commit(record.txn);
      } else {
        (void)co_await Abort(record.txn);
      }
      co_return;
    }
    if (resp.status().code() == StatusCode::kAborted) {
      co_return;  // our own host crashed
    }
    co_await rpc_->sim()->Sleep(options_.inquiry_interval);
  }
}

}  // namespace wvote
