// RPC message types for the transaction substrate (locking + presumed-abort
// two-phase commit). These are plain structs carried through the typed RPC
// layer; ApproxBytes() attributes realistic wire sizes to bulk carriers.
//
// NOTE (GCC 12 workaround): every struct that is passed BY VALUE into a
// coroutine declares a constructor. GCC 12 miscompiles braced
// aggregate-initialized prvalues used as coroutine arguments (the frame
// "copy" aliases the caller's temporary -> double free, see
// docs in src/sim/task.h); a user-declared constructor forces a real
// constructor call, which is handled correctly.

#ifndef WVOTE_SRC_TXN_MESSAGES_H_
#define WVOTE_SRC_TXN_MESSAGES_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/payload.h"
#include "src/txn/lock_manager.h"
#include "src/txn/txn_id.h"

namespace wvote {

// Empty successful reply.
struct Ack {};

// A buffered write that Prepare makes durable and Commit applies. The value
// is a SharedPayload: a commit that fans the same bytes out to a write
// quorum serializes them once and every intent (and every message hop —
// the net layer moves std::any bodies, never copies them) shares the
// buffer. ApproxBytes still charges the full value size per message, so
// wire accounting is unchanged.
struct WriteIntent {
  std::string key;
  SharedPayload value;

  WriteIntent() = default;
  WriteIntent(std::string k, SharedPayload v) : key(std::move(k)), value(std::move(v)) {}
};

// Acquire a lock at the participant on behalf of `txn` (strict 2PL: released
// only at commit/abort).
struct LockReq {
  TxnId txn;
  std::string key;
  LockMode mode = LockMode::kShared;

  LockReq() = default;
  LockReq(TxnId t, std::string k, LockMode m) : txn(t), key(std::move(k)), mode(m) {}
  static constexpr const char* kRpcName = "LockReq";
};

// S-lock `key` and return its committed value.
struct TxnReadReq {
  TxnId txn;
  std::string key;

  TxnReadReq() = default;
  TxnReadReq(TxnId t, std::string k) : txn(t), key(std::move(k)) {}
  static constexpr const char* kRpcName = "TxnReadReq";
};
struct TxnReadResp {
  std::string value;

  TxnReadResp() = default;
  explicit TxnReadResp(std::string v) : value(std::move(v)) {}
  size_t ApproxBytes() const { return 64 + value.size(); }
};

// Phase 1: persist the transaction's write intents. The participant votes
// yes by replying OK; any other outcome is a no-vote.
struct PrepareReq {
  TxnId txn;
  std::vector<WriteIntent> writes;

  PrepareReq() = default;
  PrepareReq(TxnId t, std::vector<WriteIntent> w) : txn(t), writes(std::move(w)) {}
  static constexpr const char* kRpcName = "PrepareReq";
  size_t ApproxBytes() const {
    size_t n = 64;
    for (const WriteIntent& w : writes) {
      n += w.key.size() + w.value.size() + 16;  // full value size: sharing
    }                                           // saves copies, not bytes
    return n;
  }
};

// Phase 2 decisions.
struct CommitReq {
  TxnId txn;

  CommitReq() = default;
  explicit CommitReq(TxnId t) : txn(t) {}
  static constexpr const char* kRpcName = "CommitReq";
};
struct AbortReq {
  TxnId txn;

  AbortReq() = default;
  explicit AbortReq(TxnId t) : txn(t) {}
  static constexpr const char* kRpcName = "AbortReq";
};

// Recovery: a participant with an in-doubt prepared record asks the
// coordinator's host what was decided.
struct DecisionInquiryReq {
  TxnId txn;

  DecisionInquiryReq() = default;
  explicit DecisionInquiryReq(TxnId t) : txn(t) {}
  static constexpr const char* kRpcName = "DecisionInquiryReq";
};
enum class TxnDecision : uint8_t { kCommitted = 1, kAborted = 2 };
struct DecisionResp {
  TxnDecision decision = TxnDecision::kAborted;

  DecisionResp() = default;
  explicit DecisionResp(TxnDecision d) : decision(d) {}
};

}  // namespace wvote

#endif  // WVOTE_SRC_TXN_MESSAGES_H_
