// Transaction identity.
//
// A TxnId is globally unique and totally ordered: (begin timestamp, serial,
// coordinator host). The order doubles as transaction age for the lock
// manager's wait-die deadlock avoidance — smaller means older means higher
// priority. The coordinator host id also tells a recovering participant who
// to ask about an in-doubt prepared transaction.

#ifndef WVOTE_SRC_TXN_TXN_ID_H_
#define WVOTE_SRC_TXN_TXN_ID_H_

#include <cstdint>
#include <string>

#include "src/net/message.h"

namespace wvote {

struct TxnId {
  // Courtesy transactions (background refreshes) carry this timestamp: it is
  // older than any real Begin() time (simulated time starts at 0), so the
  // courtesy txn itself always waits behind client locks, while requesters
  // that find a courtesy holder are allowed to wait instead of dying — see
  // LockManager::MustDie. Single-lock, never-waits-while-holding work only.
  static constexpr int64_t kCourtesyTimestamp = -1;

  int64_t timestamp_us = 0;  // simulated time at Begin()
  uint64_t serial = 0;       // per-coordinator counter (breaks timestamp ties)
  HostId coordinator = kInvalidHost;

  auto operator<=>(const TxnId&) const = default;

  bool valid() const { return coordinator != kInvalidHost; }
  bool courtesy() const { return timestamp_us < 0; }

  // True if this transaction is older (= higher priority) than `other`.
  bool OlderThan(const TxnId& other) const { return *this < other; }

  std::string ToString() const {
    return "txn(" + std::to_string(timestamp_us) + "." + std::to_string(serial) + "@" +
           std::to_string(coordinator) + ")";
  }
};

}  // namespace wvote

#endif  // WVOTE_SRC_TXN_TXN_ID_H_
