#include "src/txn/coordinator.h"

#include <utility>

#include "src/sim/join.h"

namespace wvote {
namespace {

using HostAck = std::pair<HostId, Result<Ack>>;

// Drives one participant's commit with bounded retries, tagging the result
// with the participant so completion-order joins stay correlated.
Task<HostAck> CallCommitAt(RpcEndpoint* rpc, HostId host, TxnId txn, Duration timeout,
                           int retries, TraceContext ctx) {
  Result<Ack> ack =
      co_await rpc->CallWithRetry<CommitReq, Ack>(host, CommitReq{txn}, timeout, retries, ctx);
  co_return HostAck{host, std::move(ack)};
}

// Fire-and-forget lock release at a read-only participant.
Task<void> SendAbortTo(RpcEndpoint* rpc, HostId host, TxnId txn, Duration timeout,
                       TraceContext ctx) {
  (void)co_await rpc->Call<AbortReq, Ack>(host, AbortReq{txn}, timeout, ctx);
}

}  // namespace

void CoordinatorStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("txn.coordinator.begun", labels, &begun);
  registry->RegisterCounter("txn.coordinator.committed", labels, &committed);
  registry->RegisterCounter("txn.coordinator.aborted", labels, &aborted);
  registry->RegisterCounter("txn.coordinator.inquiries_served", labels, &inquiries_served);
  registry->RegisterCounter("txn.coordinator.async_phase2_spawned", labels,
                            &async_phase2_spawned);
  registry->RegisterCounter("txn.coordinator.async_phase2_completed", labels,
                            &async_phase2_completed);
  registry->AddResetHook([this]() { Reset(); });
}

void Coordinator::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry, {{"host", rpc_->host()->name()}});
}

Coordinator::Coordinator(RpcEndpoint* rpc, StableStore* store, CoordinatorOptions options)
    : rpc_(rpc), store_(store), options_(options) {
  rpc_->HandleTraced<DecisionInquiryReq, DecisionResp>(
      [this](HostId from, DecisionInquiryReq req,
             TraceContext ctx) -> Task<Result<DecisionResp>> {
        ++stats_.inquiries_served;
        Result<std::string> rec = co_await store_->Read(DecisionKey(req.txn), ctx);
        if (rec.ok() && rec.value() == "C") {
          co_return DecisionResp{TxnDecision::kCommitted};
        }
        if (!rec.ok() && rec.status().code() == StatusCode::kAborted) {
          co_return rec.status();  // we crashed mid-read; caller retries
        }
        // No durable commit record: presumed abort.
        co_return DecisionResp{TxnDecision::kAborted};
      });
}

std::string Coordinator::DecisionKey(const TxnId& txn) {
  return "decision/" + std::to_string(txn.timestamp_us) + "." + std::to_string(txn.serial) +
         "." + std::to_string(txn.coordinator);
}

TxnId Coordinator::Begin() { return BeginAt(rpc_->sim()->Now().ToMicros()); }

TxnId Coordinator::BeginAt(int64_t timestamp_us) {
  ++stats_.begun;
  TxnId txn;
  txn.timestamp_us = timestamp_us;
  txn.serial = next_serial_++;
  txn.coordinator = rpc_->host_id();
  return txn;
}

Task<Status> Coordinator::CommitTransaction(TxnId txn,
                                            std::map<HostId, std::vector<WriteIntent>> writes,
                                            std::vector<HostId> read_only_participants,
                                            TraceContext ctx) {
  Tracer* tracer = rpc_->network()->tracer();
  std::vector<HostId> writers;
  writers.reserve(writes.size());
  for (const auto& [host, intents] : writes) {
    writers.push_back(host);
  }

  if (writers.empty()) {
    // Read-only transaction: nothing to prepare; release locks without
    // waiting for acknowledgements (the client's result does not depend on
    // them, and waiting would add a round trip to every read).
    for (HostId host : read_only_participants) {
      Spawn(SendAbortTo(rpc_, host, txn, options_.rpc_timeout, TraceContext()));
    }
    ++stats_.committed;
    co_return Status::Ok();
  }

  // Phase 1: prepare at every writer in parallel.
  TraceContext prepare_span;
  if (tracer != nullptr) {
    prepare_span = tracer->StartChild(ctx, rpc_->host_id(), "phase.prepare");
    if (prepare_span.valid()) {
      tracer->Annotate(prepare_span, "writers=" + std::to_string(writers.size()));
    }
  }
  std::vector<Task<Result<Ack>>> prepares;
  prepares.reserve(writers.size());
  for (auto& [host, intents] : writes) {
    prepares.push_back(rpc_->Call<PrepareReq, Ack>(host, PrepareReq{txn, std::move(intents)},
                                                   options_.rpc_timeout, prepare_span));
  }
  std::vector<Result<Ack>> votes =
      co_await JoinAll<Result<Ack>>(rpc_->sim(), std::move(prepares));

  Status failure = Status::Ok();
  for (const Result<Ack>& vote : votes) {
    if (!vote.ok()) {
      failure = vote.status();
      break;
    }
  }
  if (votes.size() != writers.size() && failure.ok()) {
    failure = InternalError("missing prepare votes");
  }
  if (tracer != nullptr) {
    tracer->EndWith(prepare_span, failure.ok() ? "all voted yes" : "no-vote");
  }
  if (!failure.ok()) {
    std::vector<HostId> everyone = writers;
    everyone.insert(everyone.end(), read_only_participants.begin(),
                    read_only_participants.end());
    co_await AbortTransaction(txn, std::move(everyone), ctx);
    ++stats_.aborted;
    co_return AbortedError("prepare failed: " + failure.ToString());
  }

  // Decision point: durably log commit before telling anyone. The ctx flows
  // straight through, so the decision log shows up as the transaction's
  // phase.disk span.
  Status logged = co_await store_->Write(DecisionKey(txn), "C", ctx);
  if (!logged.ok()) {
    // Crash while logging: no participant will ever see a commit record, so
    // presumed abort resolves every prepared branch consistently.
    ++stats_.aborted;
    co_return AbortedError("coordinator failed to log decision");
  }
  // The commit is now decided and durable but no participant knows yet —
  // the exact window phase-targeted chaos schedules crash into (the ack
  // must stand and convergence must come from inquiries alone).
  if (TraceLog* trace = rpc_->network()->trace()) {
    trace->Record(rpc_->host_id(), TraceKind::kDecisionLogged, txn.ToString());
  }

  if (options_.sync_phase2) {
    TraceContext ack_span;
    if (tracer != nullptr) {
      ack_span = tracer->StartChild(ctx, rpc_->host_id(), "phase.commit_ack");
    }
    Status phase2 = co_await SendPhase2(txn, std::move(writers),
                                        std::move(read_only_participants), ack_span);
    if (tracer != nullptr) {
      tracer->EndWith(ack_span, "sync");
    }
    if (!phase2.ok()) {
      co_return phase2;  // only possible if our host crashed
    }
    ++stats_.committed;
    co_return Status::Ok();
  }

  // The outcome is decided and durable; nothing the client learns depends
  // on phase-2 delivery, so fan it out off the critical path. If this host
  // crashes before any CommitReq lands, the decision record still answers
  // participant inquiries (their in-doubt watchdogs fire even without a
  // participant restart), so every prepared branch converges to commit.
  if (tracer != nullptr) {
    // Zero-length marker: the client pays nothing for phase 2 here.
    TraceContext ack_span = tracer->StartChild(ctx, rpc_->host_id(), "phase.commit_ack");
    tracer->EndWith(ack_span, "async: deferred to background fan-out");
  }
  ++stats_.async_phase2_spawned;
  Spawn(RunPhase2InBackground(txn, std::move(writers),
                              std::move(read_only_participants), ctx));
  ++stats_.committed;
  co_return Status::Ok();
}

Task<void> Coordinator::RunPhase2InBackground(TxnId txn, std::vector<HostId> writers,
                                              std::vector<HostId> read_only,
                                              TraceContext ctx) {
  Tracer* tracer = rpc_->network()->tracer();
  TraceContext span;
  if (tracer != nullptr) {
    span = tracer->StartChild(ctx, rpc_->host_id(), "phase2.background");
    if (span.valid()) {
      tracer->Annotate(span, "txn=" + txn.ToString() +
                                 " writers=" + std::to_string(writers.size()));
    }
  }
  Status st = co_await SendPhase2(txn, std::move(writers), std::move(read_only), span);
  if (st.ok()) {
    ++stats_.async_phase2_completed;
    // Completion event with the owning txn id: the write's observability
    // does not end at the client ack — tests assert causality on this.
    if (TraceLog* trace = rpc_->network()->trace()) {
      trace->Record(rpc_->host_id(), TraceKind::kPhase2Completed, txn.ToString() + " fanout");
    }
  }
  if (tracer != nullptr) {
    tracer->EndWith(span, st.ok() ? "delivered" : "coordinator crashed");
  }
  // !ok means this host crashed mid-fan-out; participants converge through
  // the decision record (recovery inquiry or in-doubt watchdog).
}

Task<Status> Coordinator::SendPhase2(TxnId txn, std::vector<HostId> writers,
                                     std::vector<HostId> read_only, TraceContext ctx) {
  const uint64_t epoch = rpc_->host()->crash_epoch();
  // Read-only participants only hold locks; an abort releases them and is
  // indistinguishable from a commit for them.
  for (HostId host : read_only) {
    Spawn(SendAbortTo(rpc_, host, txn, options_.rpc_timeout, ctx));
  }

  std::vector<Task<HostAck>> commits;
  commits.reserve(writers.size());
  for (HostId host : writers) {
    commits.push_back(CallCommitAt(rpc_, host, txn, options_.rpc_timeout,
                                   options_.commit_retries, ctx));
  }
  std::vector<HostAck> acks = co_await JoinAll<HostAck>(rpc_->sim(), std::move(commits));

  // Only our own crash ends the drive — check the epoch rather than trusting
  // the status code, because a live participant whose store write failed
  // (e.g. an injected torn flush) also replies Aborted/Unavailable and must
  // be retried, not abandoned with its locks held.
  if (!rpc_->host()->up() || rpc_->host()->crash_epoch() != epoch) {
    co_return AbortedError("coordinator crashed during phase-2 fan-out");
  }
  // Any participant that still hasn't acked gets a background retrier; it
  // will also converge on its own via recovery + decision inquiry.
  for (auto& [host, ack] : acks) {
    if (!ack.ok()) {
      Spawn(RetryCommitForever(txn, host, ctx));
    }
  }
  co_return Status::Ok();
}

Task<void> Coordinator::RetryCommitForever(TxnId txn, HostId participant, TraceContext ctx) {
  Tracer* tracer = rpc_->network()->tracer();
  TraceContext span;
  if (tracer != nullptr) {
    span = tracer->StartChild(ctx, rpc_->host_id(), "phase2.retrier");
    if (span.valid()) {
      tracer->Annotate(span, "txn=" + txn.ToString() +
                                 " participant=" + std::to_string(participant));
    }
  }
  const uint64_t epoch = rpc_->host()->crash_epoch();
  for (;;) {
    // Our crash epoch, not the ack's status code, decides when to stop: a
    // live participant can reply with an error (store fault injection) and
    // still needs the retrier to keep driving until the commit applies.
    if (!rpc_->host()->up() || rpc_->host()->crash_epoch() != epoch) {
      if (tracer != nullptr) {
        tracer->EndWith(span, "coordinator down");
      }
      co_return;
    }
    Result<Ack> ack = co_await rpc_->Call<CommitReq, Ack>(participant, CommitReq{txn},
                                                          options_.rpc_timeout, span);
    if (ack.ok()) {
      // Same causality breadcrumb as the fan-out: the retrier finishing IS
      // this transaction's convergence at `participant`.
      if (TraceLog* trace = rpc_->network()->trace()) {
        trace->Record(rpc_->host_id(), TraceKind::kPhase2Completed,
                      txn.ToString() + " retrier participant=" + std::to_string(participant));
      }
      if (tracer != nullptr) {
        tracer->EndWith(span, "delivered");
      }
      co_return;
    }
    co_await rpc_->sim()->Sleep(options_.rpc_timeout);
  }
}

Task<void> Coordinator::AbortTransaction(TxnId txn, std::vector<HostId> participants,
                                         TraceContext ctx) {
  std::vector<Task<Result<Ack>>> aborts;
  aborts.reserve(participants.size());
  for (HostId host : participants) {
    aborts.push_back(
        rpc_->Call<AbortReq, Ack>(host, AbortReq{txn}, options_.rpc_timeout, ctx));
  }
  (void)co_await JoinAll<Result<Ack>>(rpc_->sim(), std::move(aborts));
}

}  // namespace wvote
