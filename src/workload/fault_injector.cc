#include "src/workload/fault_injector.h"

#include "src/common/check.h"

namespace wvote {

void FaultInjectorStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("workload.fault_injector.crashes", labels, &crashes);
  registry->RegisterGauge("workload.fault_injector.downtime_seconds", labels,
                          [this]() { return total_downtime.ToSeconds(); });
  registry->AddResetHook([this]() { Reset(); });
}

FaultProfile ProfileForAvailability(double availability, Duration mttr) {
  WVOTE_CHECK(availability > 0.0 && availability < 1.0);
  // availability = mttf / (mttf + mttr)  =>  mttf = mttr * a / (1 - a)
  const double mttf_us = static_cast<double>(mttr.ToMicros()) * availability /
                         (1.0 - availability);
  return FaultProfile{Duration::Micros(static_cast<int64_t>(mttf_us)), mttr};
}

Task<void> RunCrashRestartCycle(Simulator* sim, Host* host, Duration mttf, Duration mttr,
                                TimePoint end, uint64_t seed, FaultInjectorStats* stats) {
  Rng rng(seed);
  while (sim->Now() < end) {
    const double up_us = rng.NextExponential(static_cast<double>(mttf.ToMicros()));
    co_await sim->Sleep(Duration::Micros(static_cast<int64_t>(up_us)));
    if (sim->Now() >= end) {
      break;
    }
    host->Crash();
    if (stats != nullptr) {
      ++stats->crashes;
    }
    const double down_us = rng.NextExponential(static_cast<double>(mttr.ToMicros()));
    const Duration downtime = Duration::Micros(static_cast<int64_t>(down_us));
    co_await sim->Sleep(downtime);
    if (stats != nullptr) {
      stats->total_downtime += downtime;
    }
    host->Restart();
  }
  if (!host->up()) {
    host->Restart();
  }
}

}  // namespace wvote
