#include "src/workload/fault_injector.h"

#include <memory>
#include <utility>

#include "src/common/check.h"

namespace wvote {

void FaultInjectorStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("workload.fault_injector.crashes", labels, &crashes);
  registry->RegisterCounter("workload.fault_injector.phase_crashes", labels, &phase_crashes);
  registry->RegisterGauge("workload.fault_injector.downtime_seconds", labels,
                          [this]() { return total_downtime.ToSeconds(); });
  registry->AddResetHook([this]() { Reset(); });
}

void ArmPhaseCrash(Simulator* sim, TraceLog* trace, Host* host, TraceKind kind,
                   Duration downtime, FaultInjectorStats* stats,
                   std::string detail_substring) {
  // shared_ptr guard: the observer outlives this frame and must both fire
  // at most once and tolerate re-entrant Record calls (Crash() itself
  // records kHostCrashed, which re-enters the observer list).
  auto fired = std::make_shared<bool>(false);
  trace->AddObserver([sim, host, kind, downtime, stats, fired,
                      substr = std::move(detail_substring)](const TraceEvent& ev) {
    if (*fired || ev.kind != kind || ev.host != host->id()) {
      return;
    }
    if (!substr.empty() && ev.detail.find(substr) == std::string::npos) {
      return;
    }
    if (!host->up()) {
      return;  // already down; the phase window will recur after restart
    }
    *fired = true;
    host->Crash();
    if (stats != nullptr) {
      ++stats->crashes;
      ++stats->phase_crashes;
      stats->total_downtime += downtime;
    }
    if (downtime > Duration::Zero()) {
      sim->Schedule(downtime, [host]() {
        if (!host->up()) {
          host->Restart();
        }
      });
    }
  });
}

FaultProfile ProfileForAvailability(double availability, Duration mttr) {
  WVOTE_CHECK(availability > 0.0 && availability < 1.0);
  // availability = mttf / (mttf + mttr)  =>  mttf = mttr * a / (1 - a)
  const double mttf_us = static_cast<double>(mttr.ToMicros()) * availability /
                         (1.0 - availability);
  return FaultProfile{Duration::Micros(static_cast<int64_t>(mttf_us)), mttr};
}

Task<void> RunCrashRestartCycle(Simulator* sim, Host* host, Duration mttf, Duration mttr,
                                TimePoint end, uint64_t seed, FaultInjectorStats* stats) {
  Rng rng(seed);
  while (sim->Now() < end) {
    const double up_us = rng.NextExponential(static_cast<double>(mttf.ToMicros()));
    co_await sim->Sleep(Duration::Micros(static_cast<int64_t>(up_us)));
    if (sim->Now() >= end) {
      break;
    }
    host->Crash();
    if (stats != nullptr) {
      ++stats->crashes;
    }
    const double down_us = rng.NextExponential(static_cast<double>(mttr.ToMicros()));
    const Duration downtime = Duration::Micros(static_cast<int64_t>(down_us));
    co_await sim->Sleep(downtime);
    if (stats != nullptr) {
      stats->total_downtime += downtime;
    }
    host->Restart();
  }
  if (!host->up()) {
    host->Restart();
  }
}

}  // namespace wvote
