// Closed-loop workload generator.
//
// Each client alternates exponentially distributed think time with one
// read or write (chosen by read_fraction), measuring end-to-end operation
// latency in simulated time. This is the knob set Gifford's evaluation
// reasons over: read/write mix, access rate, and object size.

#ifndef WVOTE_SRC_WORKLOAD_GENERATOR_H_
#define WVOTE_SRC_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/workload/replicated_store.h"

namespace wvote {

// Zipf(s) over ranks {0..n-1}: rank k is sampled with probability
// proportional to 1/(k+1)^s. s = 0 degenerates to uniform; s ~ 1 is the
// classic "few hot keys" web skew. Sampling is inverse-CDF over a
// precomputed cumulative table (O(log n) per draw, deterministic given the
// caller's Rng stream).
class ZipfianSampler {
 public:
  ZipfianSampler(size_t n, double s);

  size_t Sample(Rng* rng) const;
  // P[Sample() == rank]; handy for benches reporting expected skew.
  double ProbabilityOf(size_t rank) const;
  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

struct WorkloadOptions {
  double read_fraction = 0.9;
  Duration mean_think_time = Duration::Millis(100);
  Duration run_length = Duration::Seconds(60);
  size_t value_size = 1024;  // bytes written per update
};

struct WorkloadStats {
  uint64_t reads_ok = 0;
  uint64_t writes_ok = 0;
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
  LatencyHistogram read_latency;
  LatencyHistogram write_latency;

  uint64_t ops_ok() const { return reads_ok + writes_ok; }
  double throughput_per_sec(Duration run_length) const {
    const double secs = run_length.ToSeconds();
    return secs > 0 ? static_cast<double>(ops_ok()) / secs : 0.0;
  }
  void MergeFrom(const WorkloadStats& other);
  std::string Summary() const;

  void Reset() { *this = WorkloadStats{}; }
  // Registers counters as `workload.client.*{labels}` and the two latency
  // histograms; this struct must outlive `registry`'s use of it. Callers
  // label by client identity (stats from several clients sharing labels
  // aggregate in snapshots).
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Runs one closed-loop client against `store` until `options.run_length` of
// simulated time elapses (measured from the task's start). `stats` must
// outlive the task.
Task<void> RunClosedLoopClient(Simulator* sim, ReplicatedStore* store, WorkloadOptions options,
                               uint64_t seed, WorkloadStats* stats);

}  // namespace wvote

#endif  // WVOTE_SRC_WORKLOAD_GENERATOR_H_
