// Forwarding header: LatencyHistogram moved to src/obs/ so that every layer
// (including net/, which must not depend on workload/) can record latency
// distributions through the unified metrics registry. Include
// src/obs/histogram.h in new code.

#ifndef WVOTE_SRC_WORKLOAD_HISTOGRAM_H_
#define WVOTE_SRC_WORKLOAD_HISTOGRAM_H_

#include "src/obs/histogram.h"

#endif  // WVOTE_SRC_WORKLOAD_HISTOGRAM_H_
