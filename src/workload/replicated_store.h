// Scheme-neutral interface over one replicated object.
//
// The workload generator and the comparison benchmarks (Gifford's weighted
// voting vs the era's alternatives) drive every scheme through this
// interface: whole-object read, whole-object write. Implementations:
// SuiteStoreAdapter (weighted voting), plus the baselines in src/baselines.

#ifndef WVOTE_SRC_WORKLOAD_REPLICATED_STORE_H_
#define WVOTE_SRC_WORKLOAD_REPLICATED_STORE_H_

#include <string>

#include "src/common/status.h"
#include "src/core/suite_client.h"
#include "src/sim/task.h"

namespace wvote {

class ReplicatedStore {
 public:
  virtual ~ReplicatedStore() = default;

  virtual Task<Result<std::string>> Read() = 0;
  virtual Task<Status> Write(std::string contents) = 0;
  virtual const char* SchemeName() const = 0;
};

// Weighted voting, adapted to the neutral interface.
class SuiteStoreAdapter : public ReplicatedStore {
 public:
  explicit SuiteStoreAdapter(SuiteClient* client, int retries = 16)
      : client_(client), retries_(retries) {}

  Task<Result<std::string>> Read() override { return client_->ReadOnce(retries_); }
  Task<Status> Write(std::string contents) override {
    return client_->WriteOnce(std::move(contents), retries_);
  }
  const char* SchemeName() const override { return "weighted-voting"; }

 private:
  SuiteClient* client_;
  int retries_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_WORKLOAD_REPLICATED_STORE_H_
