#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace wvote {

ZipfianSampler::ZipfianSampler(size_t n, double s) {
  WVOTE_CHECK_MSG(n > 0, "zipfian domain must be non-empty");
  WVOTE_CHECK_MSG(s >= 0, "zipfian exponent must be non-negative");
  cumulative_.reserve(n);
  double acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cumulative_.push_back(acc);
  }
  for (double& c : cumulative_) {
    c /= acc;
  }
  cumulative_.back() = 1.0;  // absorb rounding
}

size_t ZipfianSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return it == cumulative_.end() ? cumulative_.size() - 1
                                 : static_cast<size_t>(it - cumulative_.begin());
}

double ZipfianSampler::ProbabilityOf(size_t rank) const {
  if (rank >= cumulative_.size()) {
    return 0.0;
  }
  return rank == 0 ? cumulative_[0] : cumulative_[rank] - cumulative_[rank - 1];
}

void WorkloadStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("workload.client.reads_ok", labels, &reads_ok);
  registry->RegisterCounter("workload.client.writes_ok", labels, &writes_ok);
  registry->RegisterCounter("workload.client.read_failures", labels, &read_failures);
  registry->RegisterCounter("workload.client.write_failures", labels, &write_failures);
  registry->RegisterHistogram("workload.client.read_latency", labels, &read_latency);
  registry->RegisterHistogram("workload.client.write_latency", labels, &write_latency);
  registry->AddResetHook([this]() { Reset(); });
}

void WorkloadStats::MergeFrom(const WorkloadStats& other) {
  reads_ok += other.reads_ok;
  writes_ok += other.writes_ok;
  read_failures += other.read_failures;
  write_failures += other.write_failures;
  read_latency.MergeFrom(other.read_latency);
  write_latency.MergeFrom(other.write_latency);
}

std::string WorkloadStats::Summary() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "reads ok=%llu fail=%llu [%s] | writes ok=%llu fail=%llu [%s]",
                static_cast<unsigned long long>(reads_ok),
                static_cast<unsigned long long>(read_failures),
                read_latency.Summary().c_str(),
                static_cast<unsigned long long>(writes_ok),
                static_cast<unsigned long long>(write_failures),
                write_latency.Summary().c_str());
  return buf;
}

Task<void> RunClosedLoopClient(Simulator* sim, ReplicatedStore* store, WorkloadOptions options,
                               uint64_t seed, WorkloadStats* stats) {
  Rng rng(seed);
  const TimePoint end = sim->Now() + options.run_length;
  uint64_t update_counter = 0;

  while (sim->Now() < end) {
    const double think_us = rng.NextExponential(
        static_cast<double>(options.mean_think_time.ToMicros()));
    co_await sim->Sleep(Duration::Micros(static_cast<int64_t>(think_us)));
    if (sim->Now() >= end) {
      break;
    }

    const TimePoint start = sim->Now();
    if (rng.NextBernoulli(options.read_fraction)) {
      Result<std::string> contents = co_await store->Read();
      const Duration latency = sim->Now() - start;
      if (contents.ok()) {
        ++stats->reads_ok;
        stats->read_latency.Record(latency);
      } else {
        ++stats->read_failures;
      }
    } else {
      // Fresh contents per update, padded to value_size.
      std::string contents = "update-" + std::to_string(seed) + "-" +
                             std::to_string(update_counter++);
      if (contents.size() < options.value_size) {
        contents.resize(options.value_size, 'x');
      }
      Status st = co_await store->Write(std::move(contents));
      const Duration latency = sim->Now() - start;
      if (st.ok()) {
        ++stats->writes_ok;
        stats->write_latency.Record(latency);
      } else {
        ++stats->write_failures;
      }
    }
  }
}

}  // namespace wvote
