// Crash/restart fault injection.
//
// Drives a host through an exponential crash/repair cycle: up for
// Exp(mttf), down for Exp(mttr). The steady-state availability of such a
// host is mttf / (mttf + mttr), which is what the analytic model's
// per-representative availability parameter means — so simulation sweeps
// and the closed-form blocking probabilities are directly comparable.

#ifndef WVOTE_SRC_WORKLOAD_FAULT_INJECTOR_H_
#define WVOTE_SRC_WORKLOAD_FAULT_INJECTOR_H_

#include "src/net/host.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace wvote {

struct FaultInjectorStats {
  uint64_t crashes = 0;
  Duration total_downtime;

  void Reset() { *this = FaultInjectorStats{}; }
  // Registers `workload.fault_injector.*{labels}` (downtime as a gauge in
  // seconds); this struct must outlive `registry`'s use of it. Callers
  // label by the injected host.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Cycles `host` until `end` of simulated time; the host is left up.
// `stats` (optional) must outlive the task.
Task<void> RunCrashRestartCycle(Simulator* sim, Host* host, Duration mttf, Duration mttr,
                                TimePoint end, uint64_t seed,
                                FaultInjectorStats* stats = nullptr);

// mttf/mttr pair whose steady-state availability is `availability`, with the
// given repair time.
struct FaultProfile {
  Duration mttf;
  Duration mttr;
};
FaultProfile ProfileForAvailability(double availability, Duration mttr);

}  // namespace wvote

#endif  // WVOTE_SRC_WORKLOAD_FAULT_INJECTOR_H_
