// Crash/restart fault injection.
//
// Drives a host through an exponential crash/repair cycle: up for
// Exp(mttf), down for Exp(mttr). The steady-state availability of such a
// host is mttf / (mttf + mttr), which is what the analytic model's
// per-representative availability parameter means — so simulation sweeps
// and the closed-form blocking probabilities are directly comparable.

#ifndef WVOTE_SRC_WORKLOAD_FAULT_INJECTOR_H_
#define WVOTE_SRC_WORKLOAD_FAULT_INJECTOR_H_

#include <string>

#include "src/net/host.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/trace/trace.h"

namespace wvote {

struct FaultInjectorStats {
  uint64_t crashes = 0;
  uint64_t phase_crashes = 0;  // one-shot crashes fired by ArmPhaseCrash
  Duration total_downtime;

  void Reset() { *this = FaultInjectorStats{}; }
  // Registers `workload.fault_injector.*{labels}` (downtime as a gauge in
  // seconds); this struct must outlive `registry`'s use of it. Callers
  // label by the injected host.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Cycles `host` until `end` of simulated time; the host is left up.
// `stats` (optional) must outlive the task.
Task<void> RunCrashRestartCycle(Simulator* sim, Host* host, Duration mttf, Duration mttr,
                                TimePoint end, uint64_t seed,
                                FaultInjectorStats* stats = nullptr);

// Phase-targeted one-shot crash: arms a TraceLog observer that crashes
// `host` the instant it records an event of `kind` at that host (optionally
// only when the event detail contains `detail_substring`), then restarts it
// after `downtime` (zero leaves it down). Fires at most once. This is how
// chaos schedules hit exact protocol windows — e.g. kind=kTxnPrepared
// crashes a participant between its yes-vote and the commit, and
// kind=kDecisionLogged crashes a coordinator after the decision is durable
// but before any phase-2 fan-out. `stats` (optional) must outlive the run.
void ArmPhaseCrash(Simulator* sim, TraceLog* trace, Host* host, TraceKind kind,
                   Duration downtime, FaultInjectorStats* stats = nullptr,
                   std::string detail_substring = "");

// mttf/mttr pair whose steady-state availability is `availability`, with the
// given repair time.
struct FaultProfile {
  Duration mttf;
  Duration mttr;
};
FaultProfile ProfileForAvailability(double availability, Duration mttr);

}  // namespace wvote

#endif  // WVOTE_SRC_WORKLOAD_FAULT_INJECTOR_H_
