// Crash-atomic stable storage, after Lampson & Sturgis.
//
// Gifford's representatives sit on file servers that provide stable storage:
// a write either happens completely or not at all, even across a crash in
// the middle of the write. We reproduce the classic two-slot ("careful
// write") scheme:
//
//   * Each page has two slots. A slot holds {sequence, checksum, data}.
//   * A write targets the slot holding the OLDER sequence. While the disk
//     write is in flight the target slot is torn (checksum invalid); the
//     other slot still holds the previous committed value.
//   * Read returns the valid slot with the highest sequence. A crash can
//     therefore lose an in-flight write but can never expose a torn value
//     or lose a completed one.
//
// Disk latency is simulated; a host crash during the latency window leaves
// the slot torn exactly as a power failure would. Pages survive crashes
// (they are "on disk"); only in-flight operations abort.
//
// Group commit: concurrent Write/WriteBatch calls that land while one disk
// latency window is already in flight coalesce into that flush — the leader
// (first writer) samples one latency charge, joiners stage their pages into
// the open batch and share the leader's wake-up. This is classic log group
// commit (DeWitt et al. '84): durability cost is paid per flush, not per
// write, and a crash during the window tears every staged write together
// (none was reported durable, so losing all of them is crash-atomic). A
// solitary write behaves exactly as before: one tear, one latency sample,
// one install.

#ifndef WVOTE_SRC_STORAGE_STABLE_STORE_H_
#define WVOTE_SRC_STORAGE_STABLE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/host.h"
#include "src/obs/metrics.h"
#include "src/sim/future.h"
#include "src/sim/latency.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/trace/span.h"

namespace wvote {

struct StableStoreStats {
  uint64_t writes_started = 0;
  uint64_t writes_completed = 0;  // pages installed by a successful flush
  uint64_t writes_torn = 0;  // in-flight writes lost to a crash
  uint64_t reads = 0;
  uint64_t recoveries_from_torn_slot = 0;
  uint64_t group_commit_batches = 0;    // flushes (one latency charge each)
  uint64_t group_commit_coalesced = 0;  // writes that joined an open flush
                                        // (latency charges saved)
  uint64_t injected_write_failures = 0;  // chaos: clean write errors injected
  uint64_t injected_torn_flushes = 0;    // chaos: flushes torn by injection

  void Reset() { *this = StableStoreStats{}; }
  // Registers every field as `storage.stable_store.*{labels}`; this struct
  // must outlive `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

// Chaos fault hooks. `write_fail_probability` makes Write/WriteBatch return
// kUnavailable before touching any slot (a disk that refuses the request:
// the old value is untouched and readable). `tear_next_flush` is a one-shot
// power-failure: the next flush that reaches its install point tears every
// staged page instead — the two-slot scheme must surface the old value of
// each page, never a mix. Both are deterministic under the host's forked
// rng stream.
struct StoreFaults {
  double write_fail_probability = 0.0;
  bool tear_next_flush = false;
};

class StableStore {
 public:
  StableStore(Simulator* sim, Host* host, LatencyModel write_latency,
              LatencyModel read_latency);

  // Durable, crash-atomic write of a whole page. Returns kAborted if the
  // host crashed while the write was in flight (the old value survives).
  // Concurrent writes group-commit: see the header comment. A valid `ctx`
  // records a "phase.disk" child span annotated with the group-commit batch
  // id and this writer's role (leader / coalesced joiner).
  Task<Status> Write(std::string key, std::string value, TraceContext ctx = TraceContext());

  // Durable write of several pages under ONE latency charge (and, like
  // Write, joining an already-open flush instead of paying at all). All
  // pages install together or — on a crash during the window — none do.
  Task<Status> WriteBatch(std::vector<std::pair<std::string, std::string>> entries,
                          TraceContext ctx = TraceContext());

  // Durable read with simulated disk latency. kNotFound if the page was
  // never completely written; kAborted on crash mid-read.
  Task<Result<std::string>> Read(std::string key, TraceContext ctx = TraceContext());

  // Durably removes a page (log garbage collection). A crash mid-delete may
  // leave the page present; deletes must therefore be idempotent upstream.
  Task<Status> Delete(std::string key, TraceContext ctx = TraceContext());

  // Disk spans are attributed to this store's host; null disables (default).
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  // Instant, latency-free read of the committed value; used during recovery
  // and by tests/invariant checks. Never observes torn state as a value.
  Result<std::string> ReadCommitted(const std::string& key) const;

  bool Contains(const std::string& key) const;
  std::vector<std::string> Keys() const;
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  // Installs (or clears, with a default-constructed value) the chaos fault
  // hooks; see StoreFaults.
  void SetFaults(StoreFaults faults) { faults_ = faults; }
  const StoreFaults& faults() const { return faults_; }

  const StableStoreStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this store's counters, labeled by host name.
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  struct Slot {
    uint64_t seq = 0;
    uint64_t checksum = 0;
    std::string data;
    bool valid = false;
  };
  struct Page {
    Slot slots[2];
  };

  // One in-flight flush: pages staged while the leader's latency window is
  // open, plus a wake-up promise per joiner. Shared so the leader can
  // resolve joiners that outlive `current_batch_` being replaced.
  struct FlushBatch {
    FlushBatch(uint64_t e, uint64_t id) : epoch(e), batch_id(id) {}
    uint64_t epoch;     // crash epoch the batch was opened in
    uint64_t batch_id;  // stable id for trace annotations
    bool open = true;   // accepting joiners until the leader wakes
    std::map<std::string, std::string> staged;  // key -> last value staged
    std::vector<Promise<Status>> waiters;       // one per joiner
  };

  // Index of the valid slot with the highest sequence, or -1.
  static int CommittedSlot(const Page& page);

  // Invalidates `key`'s target slot for the duration of a write window.
  void TearTarget(const std::string& key);
  // Installs `value` into `key`'s torn slot with the next sequence number.
  void Install(const std::string& key, std::string value);

  Simulator* sim_;
  Host* host_;
  LatencyModel write_latency_;
  LatencyModel read_latency_;
  std::map<std::string, Page> pages_;
  std::shared_ptr<FlushBatch> current_batch_;
  uint64_t next_batch_id_ = 1;
  StoreFaults faults_;
  Tracer* tracer_ = nullptr;
  StableStoreStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_STORAGE_STABLE_STORE_H_
