#include "src/storage/stable_store.h"

#include <utility>

#include "src/common/bytes.h"
#include "src/common/check.h"

namespace wvote {

StableStore::StableStore(Simulator* sim, Host* host, LatencyModel write_latency,
                         LatencyModel read_latency)
    : sim_(sim), host_(host), write_latency_(write_latency), read_latency_(read_latency) {}

void StableStoreStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("storage.stable_store.writes_started", labels, &writes_started);
  registry->RegisterCounter("storage.stable_store.writes_completed", labels,
                            &writes_completed);
  registry->RegisterCounter("storage.stable_store.writes_torn", labels, &writes_torn);
  registry->RegisterCounter("storage.stable_store.reads", labels, &reads);
  registry->RegisterCounter("storage.stable_store.recoveries_from_torn_slot", labels,
                            &recoveries_from_torn_slot);
  registry->RegisterCounter("storage.group_commit_batches", labels, &group_commit_batches);
  registry->RegisterCounter("storage.group_commit_writes_coalesced", labels,
                            &group_commit_coalesced);
  registry->RegisterCounter("storage.stable_store.injected_write_failures", labels,
                            &injected_write_failures);
  registry->RegisterCounter("storage.stable_store.injected_torn_flushes", labels,
                            &injected_torn_flushes);
  registry->AddResetHook([this]() { Reset(); });
}

void StableStore::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry, {{"host", host_->name()}});
}

int StableStore::CommittedSlot(const Page& page) {
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    const Slot& s = page.slots[i];
    if (s.valid && s.checksum == Fnv1a64(s.data)) {
      if (best < 0 || s.seq > page.slots[best].seq) {
        best = i;
      }
    }
  }
  return best;
}

void StableStore::TearTarget(const std::string& key) {
  Page& page = pages_[key];
  const int committed = CommittedSlot(page);
  const int target = (committed == 0) ? 1 : 0;

  // Tear the target slot for the duration of the disk write: a crash in
  // this window must not expose partial data. The untorn sibling keeps the
  // previous committed value readable throughout.
  Slot& torn = page.slots[target];
  torn.valid = false;
  torn.data.clear();
  torn.checksum = 0;
}

void StableStore::Install(const std::string& key, std::string value) {
  // Recompute the target at install time: the committed slot is the untorn
  // sibling, so this lands in exactly the slot TearTarget invalidated.
  Page& page = pages_[key];
  const int committed = CommittedSlot(page);
  const int target = (committed == 0) ? 1 : 0;
  const uint64_t next_seq = (committed >= 0) ? page.slots[committed].seq + 1 : 1;

  Slot& slot = page.slots[target];
  slot.seq = next_seq;
  slot.data = std::move(value);
  slot.checksum = Fnv1a64(slot.data);
  slot.valid = true;
}

Task<Status> StableStore::Write(std::string key, std::string value, TraceContext ctx) {
  std::vector<std::pair<std::string, std::string>> one;
  one.emplace_back(std::move(key), std::move(value));
  return WriteBatch(std::move(one), ctx);
}

Task<Status> StableStore::WriteBatch(
    std::vector<std::pair<std::string, std::string>> entries, TraceContext ctx) {
  if (entries.empty()) {
    co_return Status::Ok();
  }
  if (!host_->up()) {
    co_return AbortedError("host down");
  }
  if (faults_.write_fail_probability > 0.0 &&
      host_->rng().NextBernoulli(faults_.write_fail_probability)) {
    // Injected fail-stop write error: the disk refused the request before
    // any slot was touched, so the committed value is untouched.
    ++stats_.injected_write_failures;
    co_return UnavailableError("injected stable-store write failure");
  }
  stats_.writes_started += entries.size();
  const uint64_t epoch = host_->crash_epoch();
  TraceContext disk_span;
  if (tracer_ != nullptr) {
    disk_span = tracer_->StartChild(ctx, host_->id(), "phase.disk");
  }

  for (const auto& [key, value] : entries) {
    TearTarget(key);
  }

  if (current_batch_ != nullptr && current_batch_->open && current_batch_->epoch == epoch) {
    // A flush window is already open: stage into it and share the leader's
    // single latency charge. Last staged value per key wins — writers that
    // raced into one window are adjacent in the serial order, and only the
    // final state of the window becomes durable.
    std::shared_ptr<FlushBatch> batch = current_batch_;
    for (auto& [key, value] : entries) {
      batch->staged[key] = std::move(value);
    }
    stats_.group_commit_coalesced += entries.size();
    Promise<Status> done(sim_);
    Future<Status> woken = done.GetFuture();
    batch->waiters.push_back(std::move(done));
    Status joined = co_await std::move(woken);
    if (disk_span.valid()) {
      tracer_->EndWith(disk_span,
                       "batch=" + std::to_string(batch->batch_id) + " coalesced");
    }
    co_return joined;
  }

  // Leader: open a batch, pay one latency window, then flush everything
  // that staged into it while the disk was "busy".
  std::shared_ptr<FlushBatch> batch = std::make_shared<FlushBatch>(epoch, next_batch_id_++);
  for (auto& [key, value] : entries) {
    batch->staged[key] = std::move(value);
  }
  current_batch_ = batch;

  co_await sim_->Sleep(write_latency_.Sample(sim_->rng()));

  batch->open = false;
  if (current_batch_ == batch) {
    current_batch_.reset();
  }

  // One-shot injected power failure at the install point: consumed by the
  // leader whose flush it tears, whether the batch is solitary or a full
  // group-commit window (every joiner fails with it — crash-atomic).
  bool injected_tear = false;
  if (faults_.tear_next_flush) {
    faults_.tear_next_flush = false;
    injected_tear = true;
    ++stats_.injected_torn_flushes;
  }

  Status result = Status::Ok();
  if (!host_->up() || host_->crash_epoch() != epoch || injected_tear) {
    // Power failure mid-flush: every staged page stays torn; none was
    // acknowledged, so losing the whole batch is crash-atomic. An injected
    // tear is Unavailable, not Aborted: the host is still up, so callers
    // (e.g. the phase-2 retrier) must treat the failure as retryable.
    stats_.writes_torn += batch->staged.size();
    result = injected_tear ? UnavailableError("injected torn write during flush")
                           : AbortedError("crash during stable write window");
  } else {
    ++stats_.group_commit_batches;
    for (auto& [key, value] : batch->staged) {
      Install(key, std::move(value));
      ++stats_.writes_completed;
    }
  }
  if (disk_span.valid()) {
    tracer_->EndWith(disk_span, "batch=" + std::to_string(batch->batch_id) + " leader pages=" +
                                    std::to_string(batch->staged.size()) +
                                    (result.ok() ? "" : " torn"));
  }
  for (Promise<Status>& waiter : batch->waiters) {
    waiter.Set(result);
  }
  co_return result;
}

Task<Result<std::string>> StableStore::Read(std::string key, TraceContext ctx) {
  if (!host_->up()) {
    co_return AbortedError("host down");
  }
  ++stats_.reads;
  const uint64_t epoch = host_->crash_epoch();
  TraceContext disk_span;
  if (tracer_ != nullptr) {
    disk_span = tracer_->StartChild(ctx, host_->id(), "phase.disk");
  }

  co_await sim_->Sleep(read_latency_.Sample(sim_->rng()));

  if (disk_span.valid()) {
    tracer_->EndWith(disk_span, "read " + key);
  }
  if (!host_->up() || host_->crash_epoch() != epoch) {
    co_return AbortedError("crash during stable read of " + key);
  }
  co_return ReadCommitted(key);
}

Task<Status> StableStore::Delete(std::string key, TraceContext ctx) {
  if (!host_->up()) {
    co_return AbortedError("host down");
  }
  const uint64_t epoch = host_->crash_epoch();
  TraceContext disk_span;
  if (tracer_ != nullptr) {
    disk_span = tracer_->StartChild(ctx, host_->id(), "phase.disk");
  }
  co_await sim_->Sleep(write_latency_.Sample(sim_->rng()));
  if (disk_span.valid()) {
    tracer_->EndWith(disk_span, "delete " + key);
  }
  if (!host_->up() || host_->crash_epoch() != epoch) {
    co_return AbortedError("crash during stable delete of " + key);
  }
  pages_.erase(key);
  co_return Status::Ok();
}

Result<std::string> StableStore::ReadCommitted(const std::string& key) const {
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    return NotFoundError("no page " + key);
  }
  const int committed = CommittedSlot(it->second);
  if (committed < 0) {
    return NotFoundError("page " + key + " has no committed slot");
  }
  // A torn sibling slot is normal after a crash; count it once on read so
  // experiments can observe recovery activity.
  const Slot& other = it->second.slots[committed == 0 ? 1 : 0];
  if (!other.valid && !other.data.empty()) {
    ++const_cast<StableStore*>(this)->stats_.recoveries_from_torn_slot;
  }
  return it->second.slots[committed].data;
}

bool StableStore::Contains(const std::string& key) const {
  auto it = pages_.find(key);
  return it != pages_.end() && CommittedSlot(it->second) >= 0;
}

std::vector<std::string> StableStore::Keys() const {
  std::vector<std::string> keys;
  for (const auto& [key, page] : pages_) {
    if (CommittedSlot(page) >= 0) {
      keys.push_back(key);
    }
  }
  return keys;
}

std::vector<std::string> StableStore::KeysWithPrefix(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = pages_.lower_bound(prefix); it != pages_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (CommittedSlot(it->second) >= 0) {
      keys.push_back(it->first);
    }
  }
  return keys;
}

}  // namespace wvote
