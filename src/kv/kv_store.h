// A replicated key-value namespace built on a weighted-voting file suite.
//
// Gifford's suites replicate whole files; his system embeds them in a file
// system with directories. This layer shows how structured storage composes
// with the voting substrate under those 1979 whole-file semantics: the
// entire map is one suite, every mutation is a transactional
// read-modify-write of the suite contents, and atomicity/consistency come
// entirely from the underlying quorum machinery — Get sees the newest
// committed map, Put serializes against concurrent Puts via the suite's
// write locks, and a multi-key batch commits atomically because the map is
// one versioned object.
//
// Conflicts (wait-die aborts under contention) are retried internally with
// fresh transactions and jittered backoff.

#ifndef WVOTE_SRC_KV_KV_STORE_H_
#define WVOTE_SRC_KV_KV_STORE_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/suite_client.h"

namespace wvote {

struct KvStoreStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t batches = 0;
  uint64_t cas_failures = 0;
  uint64_t retries = 0;

  void Reset() { *this = KvStoreStats{}; }
  // Registers every field as `kv.store.*{labels}`; this struct must outlive
  // `registry`'s use of it.
  void RegisterWith(MetricsRegistry* registry, const MetricLabels& labels = {});
};

class ReplicatedKvStore {
 public:
  // `client` provides the backing suite; it should be created (bootstrapped)
  // with empty contents or a previously serialized map.
  explicit ReplicatedKvStore(SuiteClient* client, int max_retries = 16)
      : client_(client), max_retries_(max_retries) {}

  // Point read; nullopt if the key is absent.
  Task<Result<std::optional<std::string>>> Get(std::string key);

  // Inserts or overwrites one key.
  Task<Status> Put(std::string key, std::string value);

  // Removes one key (succeeds even if absent).
  Task<Status> Delete(std::string key);

  // Applies every entry atomically: other clients observe all or none.
  Task<Status> PutMany(std::vector<std::pair<std::string, std::string>> entries);

  // Compare-and-set: writes `value` iff the key currently holds `expected`
  // (nullopt = expected absent). Returns kFailedPrecondition on mismatch.
  Task<Status> CheckAndSet(std::string key, std::optional<std::string> expected,
                           std::string value);

  // All keys, sorted.
  Task<Result<std::vector<std::string>>> ListKeys();

  const KvStoreStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Registers this store's counters, labeled by host and backing suite.
  void RegisterMetrics(MetricsRegistry* registry);

  // Map <-> bytes; exposed for tests and for seeding initial suite contents.
  static std::string SerializeMap(const std::map<std::string, std::string>& map);
  static Result<std::map<std::string, std::string>> ParseMap(const std::string& bytes);

 private:
  // Runs one read-modify-write transaction: `mutate` edits the map in place
  // and returns OK to commit, or an error to abort (propagated verbatim).
  // Retries the whole transaction on lock conflicts.
  Task<Status> Mutate(std::function<Status(std::map<std::string, std::string>&)> mutate);

  // Reads and parses the current map in a read-only transaction.
  Task<Result<std::map<std::string, std::string>>> Snapshot();

  SuiteClient* client_;
  int max_retries_;
  KvStoreStats stats_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_KV_KV_STORE_H_
