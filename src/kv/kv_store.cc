#include "src/kv/kv_store.h"

#include "src/common/bytes.h"

namespace wvote {

void KvStoreStats::RegisterWith(MetricsRegistry* registry, const MetricLabels& labels) {
  registry->RegisterCounter("kv.store.gets", labels, &gets);
  registry->RegisterCounter("kv.store.puts", labels, &puts);
  registry->RegisterCounter("kv.store.deletes", labels, &deletes);
  registry->RegisterCounter("kv.store.batches", labels, &batches);
  registry->RegisterCounter("kv.store.cas_failures", labels, &cas_failures);
  registry->RegisterCounter("kv.store.retries", labels, &retries);
  registry->AddResetHook([this]() { Reset(); });
}

void ReplicatedKvStore::RegisterMetrics(MetricsRegistry* registry) {
  stats_.RegisterWith(registry, {{"host", client_->rpc()->host()->name()},
                                 {"suite", client_->config().suite_name}});
}

std::string ReplicatedKvStore::SerializeMap(const std::map<std::string, std::string>& map) {
  BufferWriter w;
  w.WriteU32(static_cast<uint32_t>(map.size()));
  for (const auto& [key, value] : map) {
    w.WriteString(key);
    w.WriteString(value);
  }
  return w.Take();
}

Result<std::map<std::string, std::string>> ReplicatedKvStore::ParseMap(
    const std::string& bytes) {
  std::map<std::string, std::string> map;
  if (bytes.empty()) {
    return map;  // a never-written or freshly created suite reads as empty
  }
  BufferReader r(bytes);
  const uint32_t n = r.ReadU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::string key = r.ReadString();
    std::string value = r.ReadString();
    map.emplace(std::move(key), std::move(value));
  }
  if (r.failed() || !r.AtEnd()) {
    return CorruptionError("bad kv map encoding");
  }
  return map;
}

Task<Result<std::map<std::string, std::string>>> ReplicatedKvStore::Snapshot() {
  Result<std::string> contents = co_await client_->ReadOnce(max_retries_);
  if (!contents.ok()) {
    co_return contents.status();
  }
  co_return ParseMap(contents.value());
}

Task<Status> ReplicatedKvStore::Mutate(
    std::function<Status(std::map<std::string, std::string>&)> mutate) {
  Status last = InternalError("no attempts");
  for (int attempt = 0; attempt < max_retries_; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      co_await client_->rpc()->sim()->Sleep(Duration::Micros(
          client_->rpc()->sim()->rng().NextInRange(1000, 20000) * (attempt + 1)));
    }
    SuiteTransaction txn = client_->Begin();
    Result<std::string> contents = co_await txn.Read();
    if (!contents.ok()) {
      last = contents.status();
      co_await txn.Abort();
    } else {
      Result<std::map<std::string, std::string>> map = ParseMap(contents.value());
      if (!map.ok()) {
        co_await txn.Abort();
        co_return map.status();
      }
      Status decision = mutate(map.value());
      if (!decision.ok()) {
        co_await txn.Abort();
        co_return decision;  // caller-level refusal (e.g. CAS mismatch)
      }
      Status st = txn.Write(SerializeMap(map.value()));
      if (st.ok()) {
        st = co_await txn.Commit();
      } else {
        co_await txn.Abort();
      }
      if (st.ok()) {
        co_return st;
      }
      last = st;
    }
    if (last.code() != StatusCode::kConflict && last.code() != StatusCode::kAborted &&
        last.code() != StatusCode::kTimeout) {
      co_return last;
    }
  }
  co_return last;
}

Task<Result<std::optional<std::string>>> ReplicatedKvStore::Get(std::string key) {
  ++stats_.gets;
  Result<std::map<std::string, std::string>> map = co_await Snapshot();
  if (!map.ok()) {
    co_return map.status();
  }
  auto it = map.value().find(key);
  if (it == map.value().end()) {
    co_return std::optional<std::string>();
  }
  co_return std::optional<std::string>(std::move(it->second));
}

Task<Status> ReplicatedKvStore::Put(std::string key, std::string value) {
  ++stats_.puts;
  std::function<Status(std::map<std::string, std::string>&)> mutate =
      [key = std::move(key), value = std::move(value)](
          std::map<std::string, std::string>& map) {
        map[key] = value;
        return Status::Ok();
      };
  co_return co_await Mutate(std::move(mutate));
}

Task<Status> ReplicatedKvStore::Delete(std::string key) {
  ++stats_.deletes;
  std::function<Status(std::map<std::string, std::string>&)> mutate =
      [key = std::move(key)](std::map<std::string, std::string>& map) {
        map.erase(key);
        return Status::Ok();
      };
  co_return co_await Mutate(std::move(mutate));
}

Task<Status> ReplicatedKvStore::PutMany(
    std::vector<std::pair<std::string, std::string>> entries) {
  ++stats_.batches;
  std::function<Status(std::map<std::string, std::string>&)> mutate =
      [entries = std::move(entries)](std::map<std::string, std::string>& map) {
        for (const auto& [key, value] : entries) {
          map[key] = value;
        }
        return Status::Ok();
      };
  co_return co_await Mutate(std::move(mutate));
}

Task<Status> ReplicatedKvStore::CheckAndSet(std::string key,
                                            std::optional<std::string> expected,
                                            std::string value) {
  KvStoreStats* stats = &stats_;
  std::function<Status(std::map<std::string, std::string>&)> mutate =
      [key = std::move(key), expected = std::move(expected), value = std::move(value),
       stats](std::map<std::string, std::string>& map) {
        auto it = map.find(key);
        const bool matches =
            expected.has_value() ? (it != map.end() && it->second == *expected)
                                 : (it == map.end());
        if (!matches) {
          ++stats->cas_failures;
          return FailedPreconditionError("compare-and-set mismatch on " + key);
        }
        map[key] = value;
        return Status::Ok();
      };
  co_return co_await Mutate(std::move(mutate));
}

Task<Result<std::vector<std::string>>> ReplicatedKvStore::ListKeys() {
  Result<std::map<std::string, std::string>> map = co_await Snapshot();
  if (!map.ok()) {
    co_return map.status();
  }
  std::vector<std::string> keys;
  keys.reserve(map.value().size());
  for (const auto& [key, value] : map.value()) {
    keys.push_back(key);
  }
  co_return keys;
}

}  // namespace wvote
