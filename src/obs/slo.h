// Windowed SLO engine: burn-rate rules evaluated over the time-series tail.
//
// Each rule watches an objective over the last `window` scrape windows and
// keeps a breach state machine: entering breach emits one event, and the
// rule must evaluate healthy for `recovery_windows` consecutive scrapes
// before a recovery event fires (hysteresis, so a single good window during
// an outage doesn't flap the state).
//
// Empty-window policy: a rule whose inputs carry no traffic in the
// evaluated tail (zero denominator, no histogram samples, no matching
// gauge windows) is SKIPPED — no state change either way. During a full
// partition the unavailability counters still move (gathers complete with
// UNAVAILABLE after their timeouts), so availability rules see the outage;
// what the skip avoids is judging idle phases, warm-up, and benches that
// never exercise a subsystem.
//
// The engine is a Scraper observer — wire engine->Evaluate into
// Scraper::AddObserver — and is itself observable through listeners, which
// is how breaches become TraceLog breadcrumbs without obs depending on the
// trace library.

#ifndef WVOTE_SRC_OBS_SLO_H_
#define WVOTE_SRC_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/obs/timeseries.h"

namespace wvote {

enum class SloKind {
  // error_fraction > burn_limit * (1 - target), where error_fraction is
  // err / (err + ok) with err = sum(numerator) and ok = sum(denominator)
  // over the window (the denominator lists SUCCESS counters; the engine
  // forms the attempt total itself, since this repo's success counters only
  // move on completed operations).
  kAvailabilityBurn,
  // max per-window p99 of `histogram` over the window > p99_limit_us.
  kP99Limit,
  // max per-window value of `gauge` (MaxTail across labels) > gauge_limit.
  kGaugeLimit,
  // sum(numerator) over the window > 0 — an invariant tripwire.
  kCounterZero,
};

const char* SloKindName(SloKind kind);

struct SloRule {
  std::string name;  // e.g. "read-availability"
  SloKind kind = SloKind::kAvailabilityBurn;

  // Metric names (before '{'); values aggregate across label variants.
  std::vector<std::string> numerator;    // error counters / tripwire counter
  std::vector<std::string> denominator;  // total counters (kAvailabilityBurn)
  std::string histogram;                 // kP99Limit
  std::string gauge;                     // kGaugeLimit

  double target = 0.999;     // availability objective (kAvailabilityBurn)
  double burn_limit = 10.0;  // error-budget burn multiplier
  int64_t p99_limit_us = 0;
  double gauge_limit = 0.0;

  size_t window = 8;            // scrape windows per evaluation
  size_t recovery_windows = 4;  // consecutive healthy evals to clear a breach
};

struct SloEvent {
  std::string rule;
  bool breach = false;  // true = entered breach, false = recovered
  int64_t t_us = 0;     // sim time of the evaluation
  double value = 0.0;   // measured quantity (fraction, p99 us, gauge, count)
  double limit = 0.0;   // threshold it was compared against
};

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloRule> rules);

  // One evaluation of every rule against the store's tail; call once per
  // sealed window (Scraper observer signature).
  void Evaluate(TimePoint now, const TimeSeriesStore& store);

  // Listeners fire on every breach/recovery transition, in order.
  using Listener = std::function<void(const SloEvent&)>;
  void AddListener(Listener listener) { listeners_.push_back(std::move(listener)); }

  const std::vector<SloRule>& rules() const { return rules_; }
  const std::vector<SloEvent>& events() const { return events_; }
  size_t total_breaches() const { return total_breaches_; }
  size_t active_breaches() const;

  // One line per rule: name, state, last measured value.
  std::string Summary() const;
  // [{"rule":"...","breach":true,"t_us":...,"value":...,"limit":...},...]
  std::string EventsJson() const;

  // The rules every Cluster gets by default: read/write quorum availability,
  // fastpath hit rate, committed-write p99, staleness-never, and per-rep
  // probe share. Thresholds are generous — healthy runs never breach; real
  // outages (partitions, crashed quorums) do.
  static std::vector<SloRule> DefaultRules();

 private:
  struct RuleState {
    bool breached = false;
    size_t healthy_streak = 0;
    double last_value = 0.0;
    bool ever_evaluated = false;
  };

  void Transition(size_t rule_idx, bool breach_now, int64_t t_us, double value, double limit);

  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<SloEvent> events_;
  std::vector<Listener> listeners_;
  size_t total_breaches_ = 0;
};

}  // namespace wvote

#endif  // WVOTE_SRC_OBS_SLO_H_
