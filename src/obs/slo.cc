#include "src/obs/slo.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace wvote {
namespace {

double SumAll(const TimeSeriesStore& store, const std::vector<std::string>& names,
              size_t window) {
  double total = 0.0;
  for (const std::string& name : names) {
    for (double v : store.SumTail(name, window)) {
      total += v;
    }
  }
  return total;
}

}  // namespace

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailabilityBurn:
      return "availability_burn";
    case SloKind::kP99Limit:
      return "p99_limit";
    case SloKind::kGaugeLimit:
      return "gauge_limit";
    case SloKind::kCounterZero:
      return "counter_zero";
  }
  return "unknown";
}

SloEngine::SloEngine(std::vector<SloRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

size_t SloEngine::active_breaches() const {
  size_t n = 0;
  for (const RuleState& s : states_) {
    if (s.breached) {
      ++n;
    }
  }
  return n;
}

void SloEngine::Transition(size_t rule_idx, bool breach_now, int64_t t_us, double value,
                           double limit) {
  RuleState& state = states_[rule_idx];
  state.last_value = value;
  state.ever_evaluated = true;
  if (breach_now) {
    state.healthy_streak = 0;
    if (!state.breached) {
      state.breached = true;
      ++total_breaches_;
      SloEvent ev{rules_[rule_idx].name, /*breach=*/true, t_us, value, limit};
      events_.push_back(ev);
      for (const Listener& l : listeners_) {
        l(ev);
      }
    }
    return;
  }
  if (state.breached) {
    ++state.healthy_streak;
    if (state.healthy_streak >= rules_[rule_idx].recovery_windows) {
      state.breached = false;
      state.healthy_streak = 0;
      SloEvent ev{rules_[rule_idx].name, /*breach=*/false, t_us, value, limit};
      events_.push_back(ev);
      for (const Listener& l : listeners_) {
        l(ev);
      }
    }
  }
}

void SloEngine::Evaluate(TimePoint now, const TimeSeriesStore& store) {
  const int64_t t_us = now.ToMicros();
  for (size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    switch (rule.kind) {
      case SloKind::kAvailabilityBurn: {
        const double err = SumAll(store, rule.numerator, rule.window);
        const double tot = err + SumAll(store, rule.denominator, rule.window);
        if (tot <= 0.0) {
          break;  // empty window: no traffic to judge
        }
        const double frac = err / tot;
        const double limit = rule.burn_limit * (1.0 - rule.target);
        Transition(i, frac > limit, t_us, frac, limit);
        break;
      }
      case SloKind::kP99Limit: {
        const std::vector<HistPoint> tail = store.SumHistTail(rule.histogram, rule.window);
        int64_t worst = -1;
        for (const HistPoint& p : tail) {
          if (p.count > 0) {
            worst = std::max(worst, p.p99_us);
          }
        }
        if (worst < 0) {
          break;  // no samples in the window
        }
        Transition(i, worst > rule.p99_limit_us, t_us, static_cast<double>(worst),
                   static_cast<double>(rule.p99_limit_us));
        break;
      }
      case SloKind::kGaugeLimit: {
        const std::vector<double> tail = store.MaxTail(rule.gauge, rule.window);
        if (tail.empty()) {
          break;
        }
        const double worst = *std::max_element(tail.begin(), tail.end());
        Transition(i, worst > rule.gauge_limit, t_us, worst, rule.gauge_limit);
        break;
      }
      case SloKind::kCounterZero: {
        if (store.windows_sealed() == 0) {
          break;
        }
        const double count = SumAll(store, rule.numerator, rule.window);
        Transition(i, count > 0.0, t_us, count, 0.0);
        break;
      }
    }
  }
}

std::string SloEngine::Summary() const {
  std::string out;
  char buf[192];
  for (size_t i = 0; i < rules_.size(); ++i) {
    const RuleState& s = states_[i];
    const char* state = !s.ever_evaluated ? "idle" : (s.breached ? "BREACH" : "ok");
    std::snprintf(buf, sizeof(buf), "%-22s %-6s last=%.4g\n", rules_[i].name.c_str(), state,
                  s.last_value);
    out += buf;
  }
  return out;
}

std::string SloEngine::EventsJson() const {
  std::string out = "[";
  char buf[96];
  for (size_t i = 0; i < events_.size(); ++i) {
    const SloEvent& e = events_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"rule\":\"" + e.rule + "\",\"breach\":";
    out += e.breach ? "true" : "false";
    std::snprintf(buf, sizeof(buf), ",\"t_us\":%lld,\"value\":%.6g,\"limit\":%.6g}",
                  static_cast<long long>(e.t_us), e.value, e.limit);
    out += buf;
  }
  out += "]";
  return out;
}

std::vector<SloRule> SloEngine::DefaultRules() {
  std::vector<SloRule> rules;

  {
    SloRule r;
    r.name = "read-availability";
    r.kind = SloKind::kAvailabilityBurn;
    r.numerator = {"core.suite_client.read_unavailable"};
    // reads counts successful gathers only, so attempts = reads + errors;
    // the engine adds the numerator into the total itself.
    r.denominator = {"core.suite_client.reads"};
    r.target = 0.999;
    r.burn_limit = 100.0;  // breach when >10% of read gathers fail
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "write-availability";
    r.kind = SloKind::kAvailabilityBurn;
    r.numerator = {"core.suite_client.write_unavailable"};
    r.denominator = {"core.suite_client.writes"};
    r.target = 0.999;
    r.burn_limit = 100.0;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "fastpath-hit-rate";
    r.kind = SloKind::kAvailabilityBurn;
    r.numerator = {"core.suite_client.fastpath_misses"};
    r.denominator = {"core.suite_client.fastpath_hits"};
    // Objective: at least 5% of fastpath-eligible reads hit; breach only
    // when the fast path is effectively dead (>95% misses).
    r.target = 0.05;
    r.burn_limit = 1.0;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "write-p99";
    r.kind = SloKind::kP99Limit;
    r.histogram = "workload.client.write_latency";
    // Healthy quorum commits run tens of ms at simulated WAN latencies; a
    // second means writes are riding fault timeouts.
    r.p99_limit_us = 1'000'000;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "staleness-never";
    r.kind = SloKind::kCounterZero;
    r.numerator = {"core.weak_rep.stale_serves"};
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "probe-balance";
    r.kind = SloKind::kGaugeLimit;
    r.gauge = "core.planner.load_max_share";
    // One representative absorbing >95% of a client's probes is a hotspot
    // regardless of policy (single-member quorums excepted — drop the rule
    // for V=1 suites).
    r.gauge_limit = 0.95;
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace wvote
