// Latency histogram with logarithmic buckets (HDR-style, base-10 decades
// with 90 linear sub-buckets each). Records microsecond durations; supports
// percentile, mean, and count queries. Memory is constant; recording is two
// integer ops — suitable for millions of samples per simulated run.

#ifndef WVOTE_SRC_OBS_HISTOGRAM_H_
#define WVOTE_SRC_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace wvote {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(Duration d);

  uint64_t count() const { return count_; }
  Duration Min() const;
  Duration Max() const;
  Duration Mean() const;
  // p in [0, 100]; returns the bucket lower bound containing the percentile.
  Duration Percentile(double p) const;

  // "n=1203 mean=75ms p50=75ms p99=210ms max=260ms"
  std::string Summary() const;

  void Reset();
  void MergeFrom(const LatencyHistogram& other);

  // Windowed sketch: the samples recorded in `*this` since `prev` was a
  // snapshot of the same monotone histogram (bucket-wise subtraction).
  // Percentiles of the result are the window's percentiles at bucket
  // resolution; min/max are bucket lower bounds (the exact extrema are not
  // recoverable from bucket deltas). A `prev` with more samples than `*this`
  // (the histogram was reset between snapshots) yields the full current
  // contents, treating the reset as the window start.
  LatencyHistogram DeltaSince(const LatencyHistogram& prev) const;

  // DeltaSince's summary stats in one bucket scan with no allocation —
  // count, p50/p99 bucket lower bounds, and max bucket lower bound of the
  // window — for callers on a per-tick path (the time-series scraper) that
  // would otherwise materialize and re-scan a whole histogram per window.
  void DeltaStatsSince(const LatencyHistogram& prev, uint64_t* count, int64_t* p50_us,
                       int64_t* p99_us, int64_t* max_us) const;

 private:
  static size_t BucketFor(int64_t us);
  static int64_t BucketLowerBound(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_us_ = 0;
  int64_t min_us_ = 0;
  int64_t max_us_ = 0;
};

}  // namespace wvote

#endif  // WVOTE_SRC_OBS_HISTOGRAM_H_
