#include "src/obs/histogram.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace wvote {
namespace {

// 90 linear buckets per decade, 8 decades: 1us .. 100s.
constexpr int kBucketsPerDecade = 90;
constexpr int kDecades = 8;
constexpr size_t kNumBuckets = kBucketsPerDecade * kDecades + 2;  // + under/overflow

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

size_t LatencyHistogram::BucketFor(int64_t us) {
  if (us < 1) {
    return 0;
  }
  int64_t decade_lo = 1;
  for (int d = 0; d < kDecades; ++d) {
    const int64_t decade_hi = decade_lo * 10;
    if (us < decade_hi) {
      // Linear position within [decade_lo, decade_hi).
      const int64_t step = std::max<int64_t>(1, (decade_hi - decade_lo) / kBucketsPerDecade);
      const size_t offset = static_cast<size_t>((us - decade_lo) / step);
      return 1 + static_cast<size_t>(d) * kBucketsPerDecade +
             std::min<size_t>(offset, kBucketsPerDecade - 1);
    }
    decade_lo = decade_hi;
  }
  return kNumBuckets - 1;  // overflow
}

int64_t LatencyHistogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  if (bucket >= kNumBuckets - 1) {
    return 100000000 * 100;  // 100s in us x overflow marker
  }
  const size_t d = (bucket - 1) / kBucketsPerDecade;
  const size_t offset = (bucket - 1) % kBucketsPerDecade;
  int64_t decade_lo = 1;
  for (size_t i = 0; i < d; ++i) {
    decade_lo *= 10;
  }
  const int64_t step = std::max<int64_t>(1, (decade_lo * 10 - decade_lo) / kBucketsPerDecade);
  return decade_lo + static_cast<int64_t>(offset) * step;
}

void LatencyHistogram::Record(Duration d) {
  const int64_t us = d.ToMicros();
  WVOTE_DCHECK(us >= 0);
  ++buckets_[BucketFor(us)];
  if (count_ == 0) {
    min_us_ = max_us_ = us;
  } else {
    min_us_ = std::min(min_us_, us);
    max_us_ = std::max(max_us_, us);
  }
  ++count_;
  sum_us_ += us;
}

Duration LatencyHistogram::Min() const { return Duration::Micros(count_ ? min_us_ : 0); }
Duration LatencyHistogram::Max() const { return Duration::Micros(count_ ? max_us_ : 0); }

Duration LatencyHistogram::Mean() const {
  return Duration::Micros(count_ ? sum_us_ / static_cast<int64_t>(count_) : 0);
}

Duration LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return Duration::Zero();
  }
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) {
      return Duration::Micros(BucketLowerBound(b));
    }
  }
  return Duration::Micros(max_us_);
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.2fms p50=%.2fms p99=%.2fms max=%.2fms",
                static_cast<unsigned long long>(count_), Mean().ToMillis(),
                Percentile(50).ToMillis(), Percentile(99).ToMillis(), Max().ToMillis());
  return buf;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_us_ = 0;
  min_us_ = 0;
  max_us_ = 0;
}

LatencyHistogram LatencyHistogram::DeltaSince(const LatencyHistogram& prev) const {
  LatencyHistogram out;
  if (prev.count_ > count_) {
    // A reset happened between the snapshots; everything currently recorded
    // belongs to the window.
    out = *this;
    return out;
  }
  WVOTE_CHECK(buckets_.size() == prev.buckets_.size());
  bool any = false;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    WVOTE_DCHECK(buckets_[i] >= prev.buckets_[i]);
    const uint64_t d = buckets_[i] - prev.buckets_[i];
    out.buckets_[i] = d;
    if (d > 0) {
      if (!any) {
        out.min_us_ = BucketLowerBound(i);
        any = true;
      }
      out.max_us_ = BucketLowerBound(i);
    }
  }
  out.count_ = count_ - prev.count_;
  out.sum_us_ = sum_us_ - prev.sum_us_;
  return out;
}

void LatencyHistogram::DeltaStatsSince(const LatencyHistogram& prev, uint64_t* count,
                                       int64_t* p50_us, int64_t* p99_us,
                                       int64_t* max_us) const {
  // Same reset semantics as DeltaSince: prev ahead of us means the sources
  // were reset, and everything currently recorded belongs to the window.
  const bool reset = prev.count_ > count_;
  const uint64_t n = reset ? count_ : count_ - prev.count_;
  *count = n;
  *p50_us = 0;
  *p99_us = 0;
  *max_us = 0;
  if (n == 0) {
    return;
  }
  WVOTE_CHECK(buckets_.size() == prev.buckets_.size());
  // Percentile()'s rank rule, applied to the bucket deltas.
  const uint64_t t50 = static_cast<uint64_t>(0.50 * static_cast<double>(n - 1));
  const uint64_t t99 = static_cast<uint64_t>(0.99 * static_cast<double>(n - 1));
  uint64_t seen = 0;
  bool have50 = false;
  bool have99 = false;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t d = reset ? buckets_[i] : buckets_[i] - prev.buckets_[i];
    if (d == 0) {
      continue;
    }
    seen += d;
    const int64_t lb = BucketLowerBound(i);
    if (!have50 && seen > t50) {
      *p50_us = lb;
      have50 = true;
    }
    if (!have99 && seen > t99) {
      *p99_us = lb;
      have99 = true;
    }
    *max_us = lb;
  }
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  WVOTE_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_us_ = other.min_us_;
      max_us_ = other.max_us_;
    } else {
      min_us_ = std::min(min_us_, other.min_us_);
      max_us_ = std::max(max_us_, other.max_us_);
    }
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
}

}  // namespace wvote
