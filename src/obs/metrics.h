// Unified metrics registry: the one observability layer every component
// reports through.
//
// Gifford's evaluation rests on counting things — probes sent, votes
// gathered, messages dropped, commits vs. aborts. Each layer keeps its
// counts in a plain `*Stats` struct (cheap inline `++stats_.field`
// recording, no indirection on the hot path) and registers the struct's
// fields here under a stable, label-tagged name. The registry then offers
// one shared snapshot / delta / reset / export path, so benches, tests, and
// the scenario CLI all read the same instrument instead of 15 disconnected
// ad-hoc structs.
//
// Naming scheme: `layer.component.metric{label=value,...}`, e.g.
//   net.network.messages_sent
//   rpc.endpoint.calls_started{host=client}
//   core.suite_client.probes_sent{host=client,suite=research.paper}
//
// Sources are registered by address (counters, histograms) or by callback
// (gauges); Snapshot() reads through them, so a registered source must
// outlive its registry entry. Metrics that render to the same key aggregate
// by summation (histograms merge) — deliberately, so several instances of
// one component (e.g. two clients on one host) roll up instead of clashing.

#ifndef WVOTE_SRC_OBS_METRICS_H_
#define WVOTE_SRC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/histogram.h"

namespace wvote {

using MetricLabels = std::map<std::string, std::string>;

// "name{k1=v1,k2=v2}"; bare "name" when labels are empty. Labels render in
// sorted key order, so equal label sets always produce equal keys.
std::string RenderMetricKey(const std::string& name, const MetricLabels& labels);

struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t mean_us = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t min_us = 0;
  int64_t max_us = 0;
};

// Point-in-time copy of every registered metric, keyed by rendered name.
// Value semantics: snapshots survive the registry and its sources, so tests
// and benches can take one before and one after a phase and diff them.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Lookup by rendered key; 0 / 0.0 when absent.
  uint64_t counter(const std::string& key) const;
  double gauge(const std::string& key) const;

  // Sum of every counter whose metric name (the part before '{') equals
  // `name` — i.e. the total across all label combinations.
  uint64_t SumCounters(const std::string& name) const;

  // This snapshot minus `base`, for counters and histogram counts (both are
  // monotone between resets); gauges pass through unchanged. Keys absent
  // from `base` are treated as zero there.
  MetricsSnapshot Delta(const MetricsSnapshot& base) const;

  // One "key value" line per metric, sorted by key.
  std::string ToText() const;
  // {"counters":{...},"gauges":{...},"histograms":{"k":{"count":...}}}
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned metrics: get-or-create by rendered key. The returned pointer is
  // stable for the registry's lifetime; instrumented code writes it
  // directly (one inc / one store — no lookup on the hot path).
  uint64_t* Counter(const std::string& name, const MetricLabels& labels = {});
  double* Gauge(const std::string& name, const MetricLabels& labels = {});
  LatencyHistogram* Histogram(const std::string& name, const MetricLabels& labels = {});

  // External sources, read at Snapshot() time. The source must outlive this
  // registry entry (components register members of themselves and are torn
  // down before — or with — the registry that observes them).
  void RegisterCounter(const std::string& name, const MetricLabels& labels,
                       const uint64_t* source);
  void RegisterGauge(const std::string& name, const MetricLabels& labels,
                     std::function<double()> source);
  void RegisterHistogram(const std::string& name, const MetricLabels& labels,
                         const LatencyHistogram* source);

  // Reset() zeroes owned metrics and then runs every hook, so externally
  // owned stats structs join the shared reset path (each struct's
  // RegisterWith adds a hook that calls its Reset()).
  void AddResetHook(std::function<void()> hook);
  void Reset();

  size_t num_metrics() const;
  bool Contains(const std::string& name, const MetricLabels& labels = {}) const;

  // Read-only source visitation in registration order, same-key sources
  // repeated (callers aggregate). The time-series Scraper builds its flat
  // sampling plan through these instead of paying Snapshot()'s map and
  // string construction on every sim-time tick. The visited pointers stay
  // valid until sources are registered or owned metrics created — callers
  // that cache them must rebuild when num_metrics() changes.
  void VisitCounterSources(
      const std::function<void(const std::string&, const uint64_t*)>& fn) const;
  void VisitGaugeSources(
      const std::function<void(const std::string&, const std::function<double()>*)>& fn) const;
  void VisitHistogramSources(
      const std::function<void(const std::string&, const LatencyHistogram*)>& fn) const;

  MetricsSnapshot Snapshot() const;
  MetricsSnapshot Delta(const MetricsSnapshot& base) const { return Snapshot().Delta(base); }
  std::string ExportText() const { return Snapshot().ToText(); }
  std::string ExportJson() const { return Snapshot().ToJson(); }

 private:
  struct CounterSource {
    std::string key;
    const uint64_t* source;
  };
  struct GaugeSource {
    std::string key;
    std::function<double()> source;
  };
  struct HistogramSource {
    std::string key;
    const LatencyHistogram* source;
  };

  // Owned storage lives in deques for address stability under growth.
  std::deque<uint64_t> owned_counters_;
  std::deque<double> owned_gauges_;
  std::deque<LatencyHistogram> owned_histograms_;
  std::map<std::string, uint64_t*> owned_counter_index_;
  std::map<std::string, double*> owned_gauge_index_;
  std::map<std::string, LatencyHistogram*> owned_histogram_index_;

  std::vector<CounterSource> counter_sources_;
  std::vector<GaugeSource> gauge_sources_;
  std::vector<HistogramSource> histogram_sources_;
  std::vector<std::function<void()>> reset_hooks_;
};

}  // namespace wvote

#endif  // WVOTE_SRC_OBS_METRICS_H_
