#include "src/obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace wvote {
namespace {

std::string BaseName(const std::string& key) {
  const size_t brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounterDelta:
      return "counter_delta";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

TimeSeriesStore::TimeSeriesStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), times_(capacity_, 0) {}

TimeSeriesStore::Series* TimeSeriesStore::GetOrCreate(const std::string& key, SeriesKind kind) {
  auto it = series_.find(key);
  if (it != series_.end()) {
    WVOTE_CHECK_MSG(it->second->kind == kind, "series kind changed across scrapes");
    return it->second.get();
  }
  auto s = std::make_unique<Series>();
  s->key = key;
  s->kind = kind;
  if (kind == SeriesKind::kHistogram) {
    s->hists.resize(capacity_);
  } else {
    s->vals.resize(capacity_, 0.0);
  }
  Series* raw = s.get();
  series_[key] = std::move(s);
  return raw;
}

void TimeSeriesStore::Push(Series* series, double value) {
  WVOTE_DCHECK(series->kind != SeriesKind::kHistogram);
  series->vals[series->head] = value;
  series->head = (series->head + 1) % capacity_;
  series->size = std::min(series->size + 1, capacity_);
}

void TimeSeriesStore::PushHist(Series* series, const HistPoint& point) {
  WVOTE_DCHECK(series->kind == SeriesKind::kHistogram);
  series->hists[series->head] = point;
  series->head = (series->head + 1) % capacity_;
  series->size = std::min(series->size + 1, capacity_);
}

void TimeSeriesStore::SealWindow(int64_t t_end_us) {
  times_[times_head_] = t_end_us;
  times_head_ = (times_head_ + 1) % capacity_;
  times_size_ = std::min(times_size_ + 1, capacity_);
  ++windows_;
}

std::vector<double> TimeSeriesStore::Tail(const std::string& key, size_t last_n) const {
  auto it = series_.find(key);
  if (it == series_.end() || it->second->kind == SeriesKind::kHistogram) {
    return {};
  }
  const Series& s = *it->second;
  const size_t n = std::min(last_n, s.size);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    // Index of the (n - i)-th most recent point.
    const size_t idx = (s.head + capacity_ - n + i) % capacity_;
    out[i] = s.vals[idx];
  }
  return out;
}

std::vector<HistPoint> TimeSeriesStore::HistTail(const std::string& key, size_t last_n) const {
  auto it = series_.find(key);
  if (it == series_.end() || it->second->kind != SeriesKind::kHistogram) {
    return {};
  }
  const Series& s = *it->second;
  const size_t n = std::min(last_n, s.size);
  std::vector<HistPoint> out(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (s.head + capacity_ - n + i) % capacity_;
    out[i] = s.hists[idx];
  }
  return out;
}

std::vector<double> TimeSeriesStore::SumTail(const std::string& name, size_t last_n) const {
  std::vector<double> out;
  for (const auto& [key, series] : series_) {
    if (series->kind == SeriesKind::kHistogram || BaseName(key) != name) {
      continue;
    }
    std::vector<double> tail = Tail(key, last_n);
    if (tail.size() > out.size()) {
      // Grow at the front: older windows the previous series never saw.
      out.insert(out.begin(), tail.size() - out.size(), 0.0);
    }
    // Tail-aligned add: both vectors end at the latest window.
    const size_t off = out.size() - tail.size();
    for (size_t i = 0; i < tail.size(); ++i) {
      out[off + i] += tail[i];
    }
  }
  return out;
}

std::vector<double> TimeSeriesStore::MaxTail(const std::string& name, size_t last_n) const {
  std::vector<double> out;
  for (const auto& [key, series] : series_) {
    if (series->kind == SeriesKind::kHistogram || BaseName(key) != name) {
      continue;
    }
    std::vector<double> tail = Tail(key, last_n);
    if (tail.size() > out.size()) {
      out.insert(out.begin(), tail.size() - out.size(), 0.0);
    }
    const size_t off = out.size() - tail.size();
    for (size_t i = 0; i < tail.size(); ++i) {
      out[off + i] = std::max(out[off + i], tail[i]);
    }
  }
  return out;
}

std::vector<HistPoint> TimeSeriesStore::SumHistTail(const std::string& name,
                                                    size_t last_n) const {
  std::vector<HistPoint> out;
  for (const auto& [key, series] : series_) {
    if (series->kind != SeriesKind::kHistogram || BaseName(key) != name) {
      continue;
    }
    std::vector<HistPoint> tail = HistTail(key, last_n);
    if (tail.size() > out.size()) {
      out.insert(out.begin(), tail.size() - out.size(), HistPoint{});
    }
    const size_t off = out.size() - tail.size();
    for (size_t i = 0; i < tail.size(); ++i) {
      HistPoint& dst = out[off + i];
      dst.count += tail[i].count;
      dst.p50_us = std::max(dst.p50_us, tail[i].p50_us);
      dst.p99_us = std::max(dst.p99_us, tail[i].p99_us);
      dst.max_us = std::max(dst.max_us, tail[i].max_us);
    }
  }
  return out;
}

std::vector<int64_t> TimeSeriesStore::TimesTail(size_t last_n) const {
  const size_t n = std::min(last_n, times_size_);
  std::vector<int64_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (times_head_ + capacity_ - n + i) % capacity_;
    out[i] = times_[idx];
  }
  return out;
}

std::string TimeSeriesStore::ExportJson(size_t last_n) const {
  char buf[128];
  std::string out = "{\"resolution_us\":";
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(resolution_us_));
  out += buf;
  out += ",\"windows_sealed\":";
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(windows_));
  out += buf;
  out += ",\"t_us\":[";
  const std::vector<int64_t> times = TimesTail(last_n);
  for (size_t i = 0; i < times.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(times[i]));
    out += buf;
  }
  out += "],\"series\":{";
  bool first = true;
  for (const auto& [key, series] : series_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"' + JsonEscape(key) + "\":{\"kind\":\"";
    out += SeriesKindName(series->kind);
    out += "\",\"points\":[";
    if (series->kind == SeriesKind::kHistogram) {
      const std::vector<HistPoint> tail = HistTail(key, last_n);
      for (size_t i = 0; i < tail.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        std::snprintf(buf, sizeof(buf),
                      "{\"n\":%llu,\"p50_us\":%lld,\"p99_us\":%lld,\"max_us\":%lld}",
                      static_cast<unsigned long long>(tail[i].count),
                      static_cast<long long>(tail[i].p50_us),
                      static_cast<long long>(tail[i].p99_us),
                      static_cast<long long>(tail[i].max_us));
        out += buf;
      }
    } else {
      const std::vector<double> tail = Tail(key, last_n);
      for (size_t i = 0; i < tail.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        AppendDouble(&out, tail[i]);
      }
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return "";
  }
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  out.reserve(values.size() * 3);
  for (double v : values) {
    int level = 0;
    if (span > 0.0) {
      level = static_cast<int>((v - lo) / span * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

Scraper::Scraper(const MetricsRegistry* registry, ScraperOptions options)
    : registry_(registry),
      options_(std::move(options)),
      store_(options_.window_capacity) {
  WVOTE_CHECK(registry_ != nullptr);
  store_.set_resolution_us(options_.resolution.ToMicros());
}

bool Scraper::Excluded(const std::string& key) const {
  const std::string base = BaseName(key);
  for (const std::string& name : options_.exclude) {
    if (base == name) {
      return true;
    }
  }
  return false;
}

void Scraper::RebuildPlan() {
  // Carry per-series scrape state across the rebuild so counter deltas and
  // histogram windows don't spike when the registry grows mid-run.
  std::map<const TimeSeriesStore::Series*, uint64_t> prev_counts;
  for (const CounterPlan& p : counters_) {
    prev_counts[p.series] = p.prev;
  }
  std::map<const TimeSeriesStore::Series*, LatencyHistogram> prev_hists;
  for (HistogramPlan& p : histograms_) {
    prev_hists[p.series] = std::move(p.prev);
  }
  counters_.clear();
  gauges_.clear();
  histograms_.clear();

  std::map<std::string, size_t> counter_index;
  registry_->VisitCounterSources([&](const std::string& key, const uint64_t* src) {
    if (Excluded(key)) {
      return;
    }
    auto it = counter_index.find(key);
    if (it == counter_index.end()) {
      CounterPlan plan;
      plan.series = store_.GetOrCreate(key, SeriesKind::kCounterDelta);
      auto carried = prev_counts.find(plan.series);
      if (carried != prev_counts.end()) {
        plan.prev = carried->second;
      }
      counter_index[key] = counters_.size();
      counters_.push_back(std::move(plan));
      it = counter_index.find(key);
    }
    counters_[it->second].sources.push_back(src);
  });

  std::map<std::string, size_t> gauge_index;
  registry_->VisitGaugeSources(
      [&](const std::string& key, const std::function<double()>* src) {
        if (Excluded(key)) {
          return;
        }
        auto it = gauge_index.find(key);
        if (it == gauge_index.end()) {
          GaugePlan plan;
          plan.series = store_.GetOrCreate(key, SeriesKind::kGauge);
          gauge_index[key] = gauges_.size();
          gauges_.push_back(std::move(plan));
          it = gauge_index.find(key);
        }
        gauges_[it->second].sources.push_back(src);
      });

  std::map<std::string, size_t> hist_index;
  registry_->VisitHistogramSources([&](const std::string& key, const LatencyHistogram* src) {
    if (Excluded(key)) {
      return;
    }
    auto it = hist_index.find(key);
    if (it == hist_index.end()) {
      HistogramPlan plan;
      plan.series = store_.GetOrCreate(key, SeriesKind::kHistogram);
      auto carried = prev_hists.find(plan.series);
      if (carried != prev_hists.end()) {
        plan.prev = std::move(carried->second);
      }
      hist_index[key] = histograms_.size();
      histograms_.push_back(std::move(plan));
      it = hist_index.find(key);
    }
    histograms_[it->second].sources.push_back(src);
  });

  planned_metrics_ = registry_->num_metrics();
}

void Scraper::ScrapeAt(TimePoint now) {
  if (registry_->num_metrics() != planned_metrics_) {
    RebuildPlan();
  }
  for (CounterPlan& p : counters_) {
    uint64_t total = 0;
    for (const uint64_t* src : p.sources) {
      total += *src;
    }
    // A total below prev means the sources were reset; the window restarts.
    const uint64_t delta = total >= p.prev ? total - p.prev : total;
    store_.Push(p.series, static_cast<double>(delta));
    p.prev = total;
  }
  for (GaugePlan& p : gauges_) {
    double total = 0.0;
    for (const auto* src : p.sources) {
      total += (*src)();
    }
    store_.Push(p.series, total);
  }
  for (HistogramPlan& p : histograms_) {
    // Idle fast path: the sample counts are cheap to read, and an unchanged
    // total means an empty window — skip the bucket scan entirely. (A reset
    // moves the total too, so resets take the slow path below.)
    uint64_t total = 0;
    for (const LatencyHistogram* src : p.sources) {
      total += src->count();
    }
    HistPoint point;
    if (total != p.prev.count()) {
      const LatencyHistogram* merged = p.sources[0];
      if (p.sources.size() > 1) {
        p.scratch.Reset();
        for (const LatencyHistogram* src : p.sources) {
          p.scratch.MergeFrom(*src);
        }
        merged = &p.scratch;
      }
      merged->DeltaStatsSince(p.prev, &point.count, &point.p50_us, &point.p99_us,
                              &point.max_us);
      if (p.sources.size() > 1) {
        std::swap(p.prev, p.scratch);
      } else {
        p.prev = *merged;  // bucket vector capacity is reused, no allocation
      }
    }
    store_.PushHist(p.series, point);
  }
  store_.SealWindow(now.ToMicros());
  ++scrapes_;
  for (const Observer& obs : observers_) {
    obs(now, store_);
  }
}

}  // namespace wvote
