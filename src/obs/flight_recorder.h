// Flight recorder: the "what were the last N windows like" dump attached to
// failures.
//
// When a chaos run fails its history check, or a bench trips a guard, the
// numbers that explain it are usually in the recent past — the windows
// leading up to the failure, the SLO transitions, the last trace records.
// DumpFlightRecord packages exactly that as one JSON object, built from the
// time-series tail (ring-buffered, so it is always available at constant
// memory) plus whatever trace tail the caller supplies.
//
// obs is a leaf library: it cannot read the TraceLog itself, so callers
// pass the trace tail as pre-rendered lines (Cluster and the chaos runner
// own both sides and do the plumbing).

#ifndef WVOTE_SRC_OBS_FLIGHT_RECORDER_H_
#define WVOTE_SRC_OBS_FLIGHT_RECORDER_H_

#include <string>
#include <vector>

#include "src/obs/slo.h"
#include "src/obs/timeseries.h"

namespace wvote {

// {"last_windows":N,"timeseries":{...},"slo_events":[...],"trace_tail":[...]}
// `slo` may be null (no engine attached); `trace_tail` lines are escaped.
std::string DumpFlightRecord(const TimeSeriesStore& store, const SloEngine* slo,
                             const std::vector<std::string>& trace_tail,
                             size_t last_windows = 64);

}  // namespace wvote

#endif  // WVOTE_SRC_OBS_FLIGHT_RECORDER_H_
